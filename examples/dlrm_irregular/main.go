// DLRM irregularity: §6.2 of the paper observes that history-based
// prefetching gains almost nothing on recommendation models, because the
// embedding-table lookups depend on the input batch. This example contrasts
// DeepUM's prefetch accuracy on BERT (fixed, repeated access pattern) with
// DLRM (input-dependent), and shows where DLRM's residual gains come from
// (pre-eviction and fault batching, not prediction).
//
//	go run ./examples/dlrm_irregular
package main

import (
	"fmt"
	"log"

	"deepum"
)

func run(w deepum.Workload, sys deepum.System) *deepum.Result {
	cfg := deepum.DefaultConfig()
	cfg.System = sys
	cfg.Scale = 32
	cfg.Iterations = 3
	res, err := deepum.Train(w, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	bert := deepum.Workload{Model: "bert-large", Batch: 16}
	dlrm := deepum.Workload{Model: "dlrm", Batch: 96000}

	fmt.Printf("%-12s %-10s %-12s %-16s %-12s\n",
		"model", "speedup", "faults kept", "prefetch hits", "accuracy")
	for _, w := range []deepum.Workload{bert, dlrm} {
		um := run(w, deepum.SystemUM)
		du := run(w, deepum.SystemDeepUM)
		accuracy := 0.0
		if du.PrefetchIssued > 0 {
			accuracy = 100 * float64(du.PrefetchUseful) / float64(du.PrefetchIssued)
		}
		fmt.Printf("%-12s %-10.2f %-12s %-16d %.1f%%\n",
			w.Model,
			float64(um.IterationTime)/float64(du.IterationTime),
			fmt.Sprintf("%.1f%%", 100*float64(du.PageFaultsPerIteration)/float64(um.PageFaultsPerIteration+1)),
			du.PrefetchUseful, accuracy)
	}
	fmt.Println()
	fmt.Println("BERT's launch/access pattern repeats exactly each iteration, so the")
	fmt.Println("correlation tables predict it; DLRM's lookups are resampled from the")
	fmt.Println("input every iteration and the chains mispredict.")
}
