// Quickstart: simulate fine-tuning BERT Large on a V100-32GB whose memory
// the workload oversubscribes, comparing naive CUDA Unified Memory with
// DeepUM's correlation prefetching.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deepum"
)

func main() {
	w := deepum.Workload{Model: "bert-large", Batch: 16}

	cfg := deepum.DefaultConfig()
	cfg.Scale = 32 // shrink everything 32x so this finishes in seconds

	cfg.System = deepum.SystemUM
	um, err := deepum.Train(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.System = deepum.SystemDeepUM
	du, err := deepum.Train(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("BERT Large, batch %d, on a (scaled) V100-32GB:\n\n", w.Batch)
	fmt.Printf("  naive UM  %12v/iteration   %9d page faults/iteration\n",
		um.IterationTime, um.PageFaultsPerIteration)
	fmt.Printf("  DeepUM    %12v/iteration   %9d page faults/iteration\n",
		du.IterationTime, du.PageFaultsPerIteration)
	fmt.Printf("\n  speedup          %.2fx\n", float64(um.IterationTime)/float64(du.IterationTime))
	fmt.Printf("  fault reduction  %.1f%% of UM's faults remain\n",
		100*float64(du.PageFaultsPerIteration)/float64(um.PageFaultsPerIteration))
	fmt.Printf("  energy           %.2fx of UM's consumption\n", du.EnergyJoules/um.EnergyJoules)
	fmt.Printf("  prefetches       %d issued, %d served a later access\n",
		du.PrefetchIssued, du.PrefetchUseful)
}
