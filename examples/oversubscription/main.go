// Oversubscription sweep: how far past the GPU's memory can a model go
// before each system falls over? This reproduces the motivation of the
// paper's Table 3 — DeepUM keeps running (bounded only by host memory)
// where tensor-level swapping hits device OOM, and shows the growing gap to
// naive UM as oversubscription deepens.
//
//	go run ./examples/oversubscription
package main

import (
	"fmt"
	"log"

	"deepum"
)

func main() {
	const scale = 32
	fmt.Println("GPT-2 Large on a (scaled) V100-32GB, growing batch size:")
	fmt.Println()
	fmt.Printf("%-6s %-12s %-14s %-14s %-14s\n", "batch", "footprint", "UM", "LMS", "DeepUM")

	for _, batch := range []int64{1, 3, 5, 7, 12, 24} {
		w := deepum.Workload{Model: "gpt2-l", Batch: batch}
		prog, err := deepum.BuildProgram(w, scale)
		if err != nil {
			log.Fatal(err)
		}
		ratio := float64(prog.FootprintBytes()) / float64(deepum.V100_32GB().Scale(scale).GPUMemory)

		cell := func(sys deepum.System) string {
			cfg := deepum.DefaultConfig()
			cfg.System = sys
			cfg.Scale = scale
			cfg.Iterations = 3
			res, err := deepum.Train(w, cfg)
			if err != nil {
				return "OOM"
			}
			return res.IterationTime.Round(1000 * 1000).String()
		}
		fmt.Printf("%-6d %-12s %-14s %-14s %-14s\n",
			batch, fmt.Sprintf("%.2fx GPU", ratio),
			cell(deepum.SystemUM), cell(deepum.SystemLMS), cell(deepum.SystemDeepUM))
	}
	fmt.Println()
	fmt.Println("DeepUM's virtual-memory path keeps running until the CPU backing store")
	fmt.Println("fills; the tensor-level swapper needs every kernel's operands resident")
	fmt.Println("at once and dies much earlier.")
}
