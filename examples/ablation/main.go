// Ablation: toggle DeepUM's three mechanisms one by one — correlation
// prefetching (§4.2), page pre-eviction (§5.1), and invalidation of UM
// blocks backing inactive PyTorch blocks (§5.2) — reproducing the structure
// of the paper's Figure 10 on a single workload, and sweep the prefetch
// degree N like Figure 11.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"

	"deepum"
)

func main() {
	w := deepum.Workload{Model: "gpt2-l", Batch: 5}
	const scale = 32

	base := deepum.DefaultConfig()
	base.Scale = scale
	base.Iterations = 3

	umCfg := base
	umCfg.System = deepum.SystemUM
	um, err := deepum.Train(w, umCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GPT-2 L, batch %d: naive UM iteration %v\n\n", w.Batch, um.IterationTime)
	fmt.Printf("%-34s %-14s %-10s\n", "configuration", "iteration", "vs UM")

	steps := []struct {
		name                           string
		prefetch, preevict, invalidate bool
	}{
		{"Prefetching", true, false, false},
		{"Prefetching+Pre-eviction", true, true, false},
		{"Prefetching+Pre-eviction+Inval", true, true, true},
	}
	for _, s := range steps {
		cfg := base
		cfg.Driver.Prefetch = s.prefetch
		cfg.Driver.Preevict = s.preevict
		cfg.Driver.Invalidate = s.invalidate
		res, err := deepum.Train(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %-14v %.2f\n", s.name, res.IterationTime,
			float64(res.IterationTime)/float64(um.IterationTime))
	}

	fmt.Println()
	fmt.Printf("%-34s %-14s\n", "prefetch degree N", "iteration")
	for _, n := range []int{1, 8, 32, 128} {
		cfg := base
		cfg.Driver = deepum.DefaultConfig().Driver
		cfg.Driver.Degree = n
		res, err := deepum.Train(w, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("N=%-32d %-14v\n", n, res.IterationTime)
	}
}
