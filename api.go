package deepum

// This file is the package's STABLE PUBLIC API FACADE. Everything an
// application should import lives here or in the handful of sibling files
// that define behaviour (Train/TrainContext in deepum.go, NewSupervisor in
// supervisor.go, NewObserver in observer.go); the internal/ packages are
// implementation detail and may change without notice.
//
// API stability: the names declared in this file — the type aliases, the
// typed errors, the run-state and run-status constants, and the discovery
// functions — are the compatibility surface of the module. They follow the
// usual Go convention: existing names keep their meaning and signatures
// across minor revisions; new capability arrives as new names. Callers
// should branch on the typed errors (errors.As / errors.Is) and the
// exported constants rather than matching error strings, and must not
// import internal/supervisor or any other internal package to do so.
//
// Discovery functions (Systems, Models, Experiments, ChaosScenarios)
// return deterministically ordered slices — same binary, same order — so
// their output is directly usable in golden tests, CLI listings, and
// documentation without re-sorting.

import (
	"net/http"
	"sort"

	"deepum/internal/admission"
	"deepum/internal/arbiter"
	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/engine"
	"deepum/internal/experiments"
	"deepum/internal/federation"
	"deepum/internal/health"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/policy"
	"deepum/internal/sim"
	"deepum/internal/store"
	"deepum/internal/supervisor"
)

// --- single-run types ---

// ChaosStats re-exports the fault-injection counters.
type ChaosStats = chaos.Stats

// RunStatus re-exports the engine's run-ending classification. Use
// RunStatus.Terminal to test for finality and Result.Succeeded for the
// common "did it complete cleanly" check.
type RunStatus = engine.RunStatus

// Run statuses: how a training run ended (Result.Status).
const (
	StatusCompleted        = engine.StatusCompleted
	StatusCancelled        = engine.StatusCancelled
	StatusDeadlineExceeded = engine.StatusDeadlineExceeded
	StatusDegraded         = engine.StatusDegraded
)

// IterStat re-exports the per-iteration measurement slice.
type IterStat = engine.IterStat

// BreakerStats re-exports the prefetch circuit breaker snapshot.
type BreakerStats = engine.BreakerStats

// InvariantError re-exports the typed invariant-checker violation.
type InvariantError = chaos.InvariantError

// --- health-controller types ---

// HealthOptions re-exports the health controller's tuning knobs (half-life,
// hysteresis thresholds, dwell, probe interval); the zero value selects the
// defaults. Set Config.Health to enable the controller on a run.
type HealthOptions = health.Options

// HealthReport re-exports a finished run's degradation-ladder summary
// (Result.Health): final and peak level, transition log, peak scores.
type HealthReport = health.Report

// HealthLevel re-exports the degradation-ladder level type.
type HealthLevel = health.Level

// HealthTransition re-exports one recorded ladder move.
type HealthTransition = health.Transition

// Degradation-ladder levels, from full speculation to pure demand paging.
const (
	// HealthL0 runs full prefetching and pre-eviction.
	HealthL0 = health.L0
	// HealthL1 restricts prefetching to chained correlations (degree cap).
	HealthL1 = health.L1
	// HealthL2 shrinks fault batches and disables pre-eviction.
	HealthL2 = health.L2
	// HealthL3 is pure demand paging: no speculation at all.
	HealthL3 = health.L3
)

// CorrelationState is the warm state of a DeepUM run: the execution-ID and
// UM-block correlation tables the driver learned. It is what checkpoint and
// resume move between runs (the residency and link state rebuild themselves
// within one iteration; the tables take a full warm-up epoch).
type CorrelationState = correlation.Tables

// DriverOptions re-exports the DeepUM driver knobs for callers tuning the
// prefetch degree (Fig. 11) or table parameters (Table 6 / Fig. 12).
type DriverOptions = core.Options

// BlockTableConfig re-exports the UM-block correlation-table parameters.
type BlockTableConfig = correlation.BlockTableConfig

// --- prefetch-policy types ---

// PrefetchPolicy re-exports the pluggable prefetch-policy seam: the driver
// owns the queue mechanics while a PrefetchPolicy decides what to fetch
// next from the kernel-launch and fault streams. Select a registered one by
// name through Config.Policy (see Policies); implementing new policies
// happens inside the module (internal/policy), not through this alias —
// the interface may grow methods between minor revisions.
type PrefetchPolicy = policy.Policy

// PrefetchCommand re-exports the prefetch queue's payload: a UM block
// paired with the execution ID of the kernel it is predicted to serve.
type PrefetchCommand = core.PrefetchCommand

// PolicyInfo describes one registered prefetch policy for discovery
// listings (Policies, deepum-sim -policy-list).
type PolicyInfo struct {
	// Name is the value for Config.Policy and the -policy CLI flags.
	Name string
	// Summary is a one-line human-readable description.
	Summary string
}

// PolicyState is a prefetch policy's serialized warm state: the unit the
// policy-agnostic checkpoint path moves between runs (SavePolicyCheckpoint,
// LoadPolicyCheckpoint, Config.ResumeState, Result.WarmState).
type PolicyState struct {
	// Policy is the registered name of the policy that produced Payload.
	Policy string
	// Payload is the policy's deterministic Save encoding.
	Payload []byte
}

// UnknownPolicyError: Config.Policy (or a checkpoint envelope) names a
// prefetch policy nobody registered. Never admittable — fix the name.
type UnknownPolicyError = policy.UnknownError

// PolicyUnsupportedError rejects Config.Policy on a system that runs no
// prefetch policy: only SystemDeepUM has the driver the policies plug into.
type PolicyUnsupportedError struct {
	System System
	Policy string
}

func (e *PolicyUnsupportedError) Error() string {
	return "deepum: Config.Policy selects prefetch policy \"" + e.Policy +
		"\"; system \"" + string(e.System) + "\" runs no prefetch policy (SystemDeepUM only)"
}

// PolicyKnown reports whether name is a registered prefetch policy (the
// empty name counts: it selects the default).
func PolicyKnown(name string) bool { return policy.Known(name) }

// Machine re-exports the hardware model for custom configurations.
type Machine = sim.Params

// Duration re-exports the simulation's virtual-time duration type
// (Config.Deadline, Result.IterationTime).
type Duration = sim.Duration

// Byte-size constants for configuring Machine fields and formatting
// Result traffic numbers without importing internal/sim.
const (
	KiB = sim.KiB
	MiB = sim.MiB
	GiB = sim.GiB
)

// ExperimentOptions scope a RunExperiment call; the zero value selects the
// defaults (scale 8, four measured iterations).
type ExperimentOptions = experiments.Options

// --- supervisor types ---

// Supervisor re-exports the multi-run supervision layer.
type Supervisor = supervisor.Supervisor

// SupervisorConfig re-exports the supervisor configuration. Runner and
// Estimate may be left nil: NewSupervisor fills them with the
// TrainContext-backed runner and the workload-footprint estimator.
type SupervisorConfig = supervisor.Config

// RunSpec re-exports one submitted run's description.
type RunSpec = supervisor.RunSpec

// RunInfo re-exports a run's point-in-time snapshot.
type RunInfo = supervisor.RunInfo

// RunOutcome re-exports a finished run's report.
type RunOutcome = supervisor.Outcome

// SupervisorStats re-exports the supervisor's aggregate snapshot.
type SupervisorStats = supervisor.Stats

// Runner executes one supervised run; implement it (or wrap a function in
// RunnerFunc) to drive the supervisor with custom work instead of the
// default TrainContext-backed runner.
type Runner = supervisor.Runner

// RunnerFunc adapts a function to the Runner interface.
type RunnerFunc = supervisor.RunnerFunc

// SubmitOptions re-exports the retry-safety extras a submission may attach:
// an idempotency key (a retried submit resolves to the run the first
// attempt created) and a propagated client deadline (shed at admission when
// the backlog cannot meet it). Pass to Supervisor.SubmitWithOptions or
// Federation.SubmitWithOptions.
type SubmitOptions = supervisor.SubmitOptions

// RunState is a supervised run's position in the supervisor's state
// machine; RunState.Terminal reports finality.
type RunState = supervisor.RunState

// Supervisor run states (RunInfo.State).
const (
	RunQueued           = supervisor.StateQueued
	RunRunning          = supervisor.StateRunning
	RunCompleted        = supervisor.StateCompleted
	RunCancelled        = supervisor.StateCancelled
	RunDeadlineExceeded = supervisor.StateDeadlineExceeded
	RunDegraded         = supervisor.StateDegraded
	RunFailed           = supervisor.StateFailed
	// RunSuspended is non-terminal: the oversubscription arbiter
	// checkpointed the run out of execution under memory pressure; it
	// resumes from its warm state once headroom exists.
	RunSuspended = supervisor.StateSuspended
)

// ArbiterStats re-exports the oversubscription arbiter's aggregate snapshot
// (SupervisorStats.Arbiter): budget, granted floors and bursts, the smoothed
// pressure signal, and revoke/restore/suspend counters.
type ArbiterStats = arbiter.Stats

// ArbiterOptions re-exports the arbiter's tuning knobs for
// SupervisorConfig.Arbiter; the zero value (with Budget filled from
// GPUMemoryBudget) selects the defaults.
type ArbiterOptions = arbiter.Options

// Typed admission and lookup failures, re-exported so callers can branch
// on rejection kind (retry later vs. reject outright) with errors.As
// without importing internal/supervisor.
type (
	// QueueFullError: the bounded submission queue is at capacity.
	QueueFullError = supervisor.QueueFullError
	// QuotaError: the run's memory demand does not fit. Retryable()
	// distinguishes transient budget pressure from a per-run quota the
	// spec can never satisfy.
	QuotaError = supervisor.QuotaError
	// RunNotFoundError: no run with the requested ID.
	RunNotFoundError = supervisor.NotFoundError
	// ShedError: the submission's propagated deadline cannot be met at the
	// current queue drain rate. Retryable() is true; RetryAfter carries a
	// jittered backoff hint priced from the observed drain.
	ShedError = supervisor.ShedError
)

// Sentinel supervisor errors, for errors.Is.
var (
	// ErrShuttingDown rejects submissions to a draining supervisor.
	ErrShuttingDown = supervisor.ErrShuttingDown
	// ErrRunAlreadyFinished rejects Cancel on a terminal run.
	ErrRunAlreadyFinished = supervisor.ErrAlreadyFinished
	// ErrRunNotSuspended rejects Resume on a run that is not suspended.
	ErrRunNotSuspended = supervisor.ErrNotSuspended
	// ErrRunNotRunning rejects Suspend on a run that is not executing.
	ErrRunNotRunning = supervisor.ErrNotRunning
)


// MaxIdempotencyKeyLen is the longest accepted idempotency key in bytes.
const MaxIdempotencyKeyLen = admission.MaxKeyLen

// ValidateIdempotencyKey reports whether key is usable as an idempotency
// key: 1 to MaxIdempotencyKeyLen bytes of printable ASCII. Serving layers
// call it before admission so a malformed key is a clean client error, not
// a supervisor rejection.
func ValidateIdempotencyKey(key string) error { return admission.ValidateKey(key) }

// MetricsRegistry re-exports the Prometheus-style registry returned by
// Supervisor.Metrics and Federation.Metrics, so serving layers can scrape
// (WriteText) without importing internal/metrics.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry (custom backends and test
// doubles that must satisfy a Metrics() *MetricsRegistry contract).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// --- checkpoint store types ---

// CheckpointStore re-exports the durable content-addressed checkpoint
// store: a single-file, append-only, CRC-framed blob store keyed by
// content hash, with torn-tail-truncating recovery on open, optional
// replicated frames, a scrubber that repairs bit rot from a surviving
// replica (or degrades the key to a cold restart), and crash-safe
// compaction. Wire one into SupervisorConfig.Checkpoints (or set
// FederationOptions.StorePath) and RecCheckpointed journal records shrink
// from full blobs to 16-byte references.
type CheckpointStore = store.Store

// CheckpointStoreOptions re-exports the store's Open options; the zero
// value is production-ready (OS filesystem, one replica, fsync per Put).
type CheckpointStoreOptions = store.Options

// CheckpointStoreStats re-exports the store's counters snapshot.
type CheckpointStoreStats = store.Stats

// CheckpointStoreOpenStats re-exports what Open's recovery scan found.
type CheckpointStoreOpenStats = store.OpenStats

// CheckpointKey is a blob's content-hash address in the store.
type CheckpointKey = store.Key

// StoreScrubReport re-exports one scrub pass's findings (frames verified,
// repaired, degraded keys, torn bytes).
type StoreScrubReport = store.ScrubReport

// StoreAuditReport re-exports the read-only audit summary
// (AuditCheckpointStore, deepum-inspect store).
type StoreAuditReport = store.AuditReport

// CheckpointNotFoundError: the requested key is not in the store's index —
// never written, scrub-degraded, or compacted away. Supervisors treat it
// as a cold restart, never a run failure.
type CheckpointNotFoundError = store.NotFoundError

// OpenCheckpointStore opens (creating if absent) the store at path,
// rebuilding its in-memory index and truncating any torn tail. The caller
// owns the store and must Close it after the supervisors using it have
// drained.
func OpenCheckpointStore(path string, opts CheckpointStoreOptions) (*CheckpointStore, CheckpointStoreOpenStats, error) {
	return store.Open(path, opts)
}

// AuditCheckpointStore scans a store file read-only — no truncation, no
// cleanup — and reports frames, keys, replica bounds, corrupt regions,
// and the torn-tail offset.
func AuditCheckpointStore(path string) (StoreAuditReport, error) {
	return store.Audit(path)
}

// --- federation types ---

// Federation re-exports the sharded supervisor fleet: a consistent-hash
// ring of supervisors behind one admission front-end, with per-shard WAL
// journals and kill/handoff failover. Build one with NewFederation.
type Federation = federation.Federation

// FederationOptions re-exports the federation configuration. The embedded
// Supervisor field is the per-shard template; its Runner and Estimate may
// be left nil (NewFederation fills the TrainContext-backed defaults).
type FederationOptions = federation.Config

// FederationStats re-exports the federation-wide aggregate snapshot.
type FederationStats = federation.Stats

// FederationShardStats re-exports one shard's status row (the /shards
// endpoint payload).
type FederationShardStats = federation.ShardStats

// ShardHandoffReport re-exports the summary of one journal handoff.
type ShardHandoffReport = federation.HandoffReport

// Typed federation failures, for errors.As.
type (
	// ShardHandoffError: the run (or a fresh run ID) maps to a dead shard
	// whose journal has not been handed off yet. Retryable() is true —
	// serving layers answer 503 + Retry-After until the handoff lands.
	ShardHandoffError = federation.HandoffError
	// ShardError wraps a shard-local rejection with the owning shard's
	// ordinal; Unwrap exposes the shard's typed error (QueueFullError,
	// QuotaError, ErrShuttingDown, ...).
	ShardError = federation.ShardError
)

// --- discovery ---

// Systems returns every supported system name in ascending order.
func Systems() []System {
	s := []System{SystemUM, SystemDeepUM, SystemIdeal, SystemLMS, SystemLMSMod,
		SystemVDNN, SystemAutoTM, SystemSwapAdvisor, SystemCapuchin, SystemSentinel}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}

// Models returns the supported model names (Table 2) in ascending order.
func Models() []string {
	m := models.Names()
	sort.Strings(m)
	return m
}

// ExperimentInfo identifies one reproducible paper artifact.
type ExperimentInfo struct {
	// ID names the artifact for RunExperiment (e.g. "fig9a", "table5").
	ID string
	// Title is the artifact's human-readable caption.
	Title string
}

// Experiments returns every reproducible paper artifact in ascending ID
// order; run one with RunExperiment.
func Experiments() []ExperimentInfo {
	all := experiments.All()
	out := make([]ExperimentInfo, 0, len(all))
	for _, e := range all {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ChaosScenarioInfo identifies one named fault-injection scenario.
type ChaosScenarioInfo struct {
	// Name is the value for Config.Chaos and deepum-sim -chaos.
	Name        string
	Description string
}

// ChaosScenarios returns the named fault-injection scenarios in ascending
// name order.
func ChaosScenarios() []ChaosScenarioInfo {
	all := chaos.Scenarios()
	out := make([]ChaosScenarioInfo, 0, len(all))
	for _, s := range all {
		out = append(out, ChaosScenarioInfo{Name: s.Name, Description: s.Description})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SupervisorChaosScenario re-exports the supervisor-level fault-injection
// scenario type for SupervisorConfig.Chaos.
type SupervisorChaosScenario = chaos.SupervisorScenario

// SupervisorChaosScenarios returns the named supervisor chaos scenarios.
func SupervisorChaosScenarios() []SupervisorChaosScenario {
	return chaos.SupervisorScenarios()
}

// SupervisorChaosScenarioByName resolves a supervisor chaos scenario; the
// error enumerates the known names.
func SupervisorChaosScenarioByName(name string) (SupervisorChaosScenario, error) {
	return chaos.SupervisorScenarioByName(name)
}

// FaultTransport re-exports the chaos HTTP round-tripper that injects
// client-visible network faults (post-send timeouts, slow responses, torn
// bodies) for retry-storm style harnesses.
type FaultTransport = chaos.FaultTransport

// NetFaultOptions re-exports FaultTransport's fault mix.
type NetFaultOptions = chaos.NetFaultOptions

// NewFaultTransport wraps base (nil = http.DefaultTransport) with the
// configured fault mix.
func NewFaultTransport(base http.RoundTripper, opts NetFaultOptions) *FaultTransport {
	return chaos.NewFaultTransport(base, opts)
}

// Policies returns every registered prefetch policy in ascending name
// order; select one with Config.Policy or the -policy CLI flags.
func Policies() []PolicyInfo {
	all := policy.Infos()
	out := make([]PolicyInfo, 0, len(all))
	for _, p := range all {
		out = append(out, PolicyInfo{Name: p.Name, Summary: p.Summary})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
