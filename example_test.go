package deepum_test

import (
	"bytes"
	"encoding/json"
	"fmt"

	"deepum"
)

// ExampleObserver traces a short DeepUM run: attach an Observer via
// Config.Observe, train, then export the event ring as a Chrome trace
// (loadable in Perfetto) and reduce it to summary statistics offline.
func ExampleObserver() {
	observer := deepum.NewObserver(deepum.TraceOptions{Capacity: 1 << 16})
	cfg := deepum.DefaultConfig()
	cfg.Scale = 64
	cfg.Iterations = 2
	cfg.Warmup = 2
	cfg.Observe = observer

	res, err := deepum.Train(deepum.Workload{Model: "bert-base", Batch: 8}, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	var trace bytes.Buffer
	if err := observer.WriteChromeTrace(&trace); err != nil {
		fmt.Println(err)
		return
	}
	analysis := observer.Analyze()

	fmt.Println("succeeded:", res.Succeeded())
	fmt.Println("events recorded:", observer.EventCount() > 0)
	fmt.Println("events dropped:", observer.Dropped())
	fmt.Println("iterations traced:", analysis.Iterations)
	fmt.Println("trace is valid json:", json.Valid(trace.Bytes()))
	// Output:
	// succeeded: true
	// events recorded: true
	// events dropped: 0
	// iterations traced: 4
	// trace is valid json: true
}
