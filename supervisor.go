package deepum

// Multi-run supervision. NewSupervisor lifts the single-run lifecycle
// machinery (TrainContext, typed RunStatus, warm-state checkpoints) to a
// production-shaped serving layer: a bounded worker pool executes many
// concurrent runs, admission control rejects overload with typed errors,
// per-run quotas partition a simulated GPU memory budget, watchdogs cancel
// hung runs, and a crash-safe journal lets a restarted supervisor resume
// interrupted runs from their latest checkpoints. cmd/deepum-serve exposes
// the same layer over HTTP.

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"deepum/internal/federation"
	"deepum/internal/supervisor"
)

// NewSupervisor builds a multi-run supervisor whose workers execute
// TrainContext. Zero-valued config fields get production defaults; set
// SupervisorConfig.JournalPath to survive process kills (the journal is
// replayed on the next NewSupervisor and interrupted runs resume from
// their last checkpoint).
func NewSupervisor(cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Runner == nil {
		cfg.Runner = TrainRunner()
	}
	if cfg.Estimate == nil {
		cfg.Estimate = EstimateMemoryDemand
	}
	return supervisor.New(cfg)
}

// NewFederation builds a sharded supervisor fleet: a consistent-hash ring
// of supervisors behind one admission front-end, each shard journaling to
// FederationOptions.JournalDir/shard-<n>.journal. When a shard is killed,
// Federation.Handoff replays its journal and the surviving peers adopt its
// runs (finished stay finished, queued restart cold, interrupted resume
// from their latest checkpoint). As with NewSupervisor, nil Runner and
// Estimate default to the TrainContext-backed runner and the
// workload-footprint estimator.
func NewFederation(cfg FederationOptions) (*Federation, error) {
	if cfg.Supervisor.Runner == nil {
		cfg.Supervisor.Runner = TrainRunner()
	}
	if cfg.Supervisor.Estimate == nil {
		cfg.Supervisor.Estimate = EstimateMemoryDemand
	}
	return federation.New(cfg)
}

// EstimateMemoryDemand is the default admission estimator: a run is
// charged its workload's scaled memory footprint against the supervisor's
// simulated GPU memory budget.
func EstimateMemoryDemand(spec RunSpec) (int64, error) {
	scale := spec.Scale
	if scale < 1 {
		scale = DefaultConfig().Scale
	}
	prog, err := BuildProgram(Workload{Model: spec.Model, Dataset: spec.Dataset, Batch: spec.Batch}, scale)
	if err != nil {
		return 0, err
	}
	return prog.FootprintBytes(), nil
}

// TrainRunner returns the supervisor runner backed by TrainContext. It
// honors context cancellation (watchdog, Cancel, drain escalation) at
// simulated-event granularity for the UM-side systems, and — for DeepUM
// runs with RunSpec.CheckpointEvery set — executes the run in iteration
// chunks, surfacing a warm-state checkpoint after each chunk so the
// supervisor can journal resumable progress mid-run. It also implements
// supervisor.LiveRunner: runs with RunSpec.Health set stream their
// degradation-ladder level to the supervisor as it changes.
func TrainRunner() supervisor.Runner { return trainRunner{} }

type trainRunner struct{}

func (r trainRunner) Run(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte)) (supervisor.Outcome, error) {
	return r.run(ctx, spec, resume, progress, nil)
}

// RunLive implements supervisor.LiveRunner: healthFn receives the new
// ladder level on every in-run health transition.
func (r trainRunner) RunLive(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte), healthFn func(int)) (supervisor.Outcome, error) {
	return r.run(ctx, spec, resume, progress, healthFn)
}

func (trainRunner) run(ctx context.Context, spec RunSpec, resume []byte, progress func([]byte), healthFn func(int)) (supervisor.Outcome, error) {
	w := Workload{Model: spec.Model, Dataset: spec.Dataset, Batch: spec.Batch}
	cfg := DefaultConfig()
	if spec.System != "" {
		cfg.System = System(spec.System)
	}
	if spec.Scale > 0 {
		cfg.Scale = spec.Scale
	}
	if spec.Iterations > 0 {
		cfg.Iterations = spec.Iterations
	}
	if spec.Warmup > 0 {
		cfg.Warmup = spec.Warmup
	}
	if spec.Seed != 0 {
		cfg.Seed = spec.Seed
	}
	cfg.Chaos = spec.Chaos
	cfg.ChaosSeed = spec.ChaosSeed
	cfg.Policy = spec.Policy
	if spec.Health {
		opt := HealthOptions{}
		if healthFn != nil {
			opt.OnTransition = func(t HealthTransition) { healthFn(int(t.To)) }
		}
		// Under oversubscription the supervisor attaches the arbiter's
		// pressure gauge to the run context; feeding it into the health
		// controller lets pressured runs shed prefetch aggressiveness
		// through the ordinary ladder gates instead of a side channel.
		if pf := supervisor.PressureFromContext(ctx); pf != nil {
			opt.Pressure = pf
		}
		cfg.Health = &opt
	}
	if len(resume) > 0 {
		if cfg.System != SystemDeepUM {
			return supervisor.Outcome{}, fmt.Errorf("deepum: resume checkpoint for system %q (only deepum has warm state)", cfg.System)
		}
		st, err := LoadPolicyCheckpoint(bytes.NewReader(resume))
		if err != nil {
			return supervisor.Outcome{}, fmt.Errorf("deepum: decoding resume checkpoint: %w", err)
		}
		cfg.ResumeState = st
		// TrainContext rejects a spec whose Policy disagrees with the
		// envelope's recorded policy name.
		// Policy state is warm; one warmup iteration rebuilds GPU residency.
		cfg.Warmup = 1
	}
	progress(nil) // liveness before the first (potentially long) chunk

	chunk := spec.CheckpointEvery
	if chunk <= 0 || cfg.System != SystemDeepUM {
		res, err := TrainContext(ctx, w, cfg)
		if err != nil {
			return supervisor.Outcome{}, err
		}
		var agg runAggregate
		agg.add(res)
		return agg.outcome(res, checkpointBytes(res)), nil
	}

	var agg runAggregate
	total := cfg.Iterations
	for agg.iterations < total {
		cfg.Iterations = min(chunk, total-agg.iterations)
		res, err := TrainContext(ctx, w, cfg)
		if err != nil {
			return supervisor.Outcome{}, err
		}
		agg.add(res)
		ck := checkpointBytes(res)
		if ck != nil {
			progress(ck)
		} else {
			progress(nil)
		}
		if res.Status.Interrupted() || res.Iterations == 0 {
			return agg.outcome(res, ck), nil
		}
		cfg.Resume = nil
		cfg.ResumeState = PolicyCheckpointOf(res)
		cfg.Warmup = 1
		if agg.iterations >= total {
			return agg.outcome(res, ck), nil
		}
	}
	// Unreachable: the loop always returns; keep the compiler satisfied.
	return supervisor.Outcome{}, fmt.Errorf("deepum: chunked run fell through")
}

// checkpointBytes serializes a run's warm policy state (any prefetch
// policy), or nil when there is none.
func checkpointBytes(res *Result) []byte {
	st := PolicyCheckpointOf(res)
	if st == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := SavePolicyCheckpoint(&buf, st); err != nil {
		return nil
	}
	return buf.Bytes()
}

// runAggregate folds per-chunk results into one outcome (chunked runs
// report totals across chunks, mirroring what one uninterrupted run would
// have measured — the PR-2 resume-equivalence guarantee makes the chunks
// steady-state comparable).
type runAggregate struct {
	iterations int
	faults     int64
	totalTime  int64 // virtual ns across measured iterations
	checksum   uint64
	degraded   bool

	// Health folding: each chunk runs a fresh controller (starting at L0),
	// so the aggregate keeps the worst level and the concatenated
	// transition log across chunks.
	healthSeen  bool
	healthMax   HealthLevel
	healthTrans int
	healthLog   []HealthTransition
}

func (a *runAggregate) add(res *Result) {
	a.iterations += res.Iterations
	a.faults += res.PageFaultsPerIteration * int64(res.Iterations)
	a.totalTime += int64(res.TotalTime)
	// Order-sensitive FNV fold: chunk N+1's access stream depends on the
	// warm state chunk N produced, so the folded checksum is a witness that
	// a resumed run replayed the same chunk sequence an uninterrupted run
	// would have (the failover-equivalence comparison).
	a.checksum = a.checksum*0x100000001b3 ^ res.AccessChecksum
	if res.Status == StatusDegraded {
		a.degraded = true
	}
	if res.Health != nil {
		a.healthSeen = true
		if lvl := res.Health.MaxLevelValue(); lvl > a.healthMax {
			a.healthMax = lvl
		}
		a.healthTrans += res.Health.Transitions
		a.healthLog = append(a.healthLog, res.Health.TransitionLog...)
	}
}

func (a *runAggregate) outcome(last *Result, ck []byte) supervisor.Outcome {
	status := last.Status
	if status == StatusCompleted && a.degraded {
		status = StatusDegraded
	}
	out := supervisor.Outcome{
		Status:         status.String(),
		Iterations:     a.iterations,
		AccessChecksum: a.checksum,
		Checkpoint:     ck,
	}
	if a.iterations > 0 {
		out.IterationTime = time.Duration(a.totalTime / int64(a.iterations))
		out.FaultsPerIteration = a.faults / int64(a.iterations)
	}
	if a.healthSeen && last.Health != nil {
		rep := *last.Health
		rep.MaxLevel = a.healthMax.String()
		rep.Transitions = a.healthTrans
		rep.TransitionLog = a.healthLog
		out.Health = &rep
	}
	return out
}
