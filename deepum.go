// Package deepum is a pure-Go reproduction of "DeepUM: Tensor Migration and
// Prefetching in Unified Memory" (Jung, Kim, Lee — ASPLOS 2023).
//
// DeepUM lets DNN training oversubscribe GPU memory by allocating everything
// in CUDA Unified Memory and hiding the page-migration cost with a
// correlation-prefetching technique at the UM-block level, plus two
// fault-handling optimizations: page pre-eviction and invalidation of UM
// blocks backing inactive PyTorch allocator blocks.
//
// Because the original system is a Linux kernel module driving an NVIDIA
// GPU, this library reproduces it on a calibrated discrete-event simulation
// of the whole substrate — GPU, UM page-fault pipeline, PCIe link, PyTorch
// caching allocator, nine DNN training workloads, and the six baseline
// swapping systems the paper compares against. The public API runs training
// simulations under any of the systems and regenerates every table and
// figure of the paper's evaluation; see DESIGN.md for the model and
// EXPERIMENTS.md for paper-versus-measured results.
//
// Quick start:
//
//	cfg := deepum.DefaultConfig()
//	res, err := deepum.Train(deepum.Workload{Model: "bert-large", Batch: 16}, cfg)
//	if err != nil { ... }
//	fmt.Println(res.IterationTime, res.PageFaultsPerIteration)
package deepum

import (
	"context"
	"fmt"
	"io"

	"deepum/internal/baselines"
	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/engine"
	"deepum/internal/experiments"
	"deepum/internal/health"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/policy"
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// System selects the memory-management system a training run uses.
type System string

// Supported systems: the naive CUDA Unified Memory baseline, DeepUM itself,
// the no-oversubscription upper bound, and the six swapping baselines from
// the paper's evaluation.
const (
	SystemUM          System = "um"
	SystemDeepUM      System = "deepum"
	SystemIdeal       System = "ideal"
	SystemLMS         System = "lms"
	SystemLMSMod      System = "lms-mod"
	SystemVDNN        System = "vdnn"
	SystemAutoTM      System = "autotm"
	SystemSwapAdvisor System = "swapadvisor"
	SystemCapuchin    System = "capuchin"
	SystemSentinel    System = "sentinel"
)

// Workload names a Table 2 model/dataset pair at a batch size.
type Workload struct {
	// Model is one of: gpt2-xl, gpt2-l, bert-large, bert-base, dlrm,
	// resnet152, resnet200, dcgan, mobilenet.
	Model string
	// Dataset selects a variant where the paper uses one (e.g. "cola" for
	// BERT Large fine-tuning, "cifar10" for ResNet-200). Empty picks the
	// Table 2 default.
	Dataset string
	Batch   int64
}

// Config parameterizes a simulated training run.
type Config struct {
	// System is the memory manager; defaults to SystemDeepUM.
	System System
	// Machine is the simulated hardware; defaults to the paper's
	// V100-32GB / 512 GiB configuration.
	Machine sim.Params
	// Driver configures the DeepUM driver (SystemDeepUM only).
	Driver core.Options
	// Scale divides model and machine sizes so runs finish quickly while
	// preserving footprint-to-capacity ratios; 1 simulates paper-sized
	// workloads. Defaults to 8.
	Scale int64
	// Iterations measured and Warmup iterations before measurement.
	Iterations, Warmup int
	// Seed drives input-dependent (irregular) access sampling.
	Seed int64
	// Chaos names a fault-injection scenario (see ChaosScenarios); empty or
	// "none" runs clean. Chaos applies to the UM-side systems only — the
	// tensor-level baselines do not model the UM substrate it perturbs.
	Chaos string
	// ChaosSeed seeds the injection PRNG; 0 reuses Seed, so a run is fully
	// reproducible from (Seed, Chaos) alone.
	ChaosSeed int64
	// Deadline bounds the run in VIRTUAL (simulated) time: the run stops at
	// the first event at or past the budget and returns a partial Result
	// with StatusDeadlineExceeded. Deterministic under a fixed seed, unlike
	// a context deadline. Zero means unbounded. UM-side systems only.
	Deadline sim.Duration
	// Resume seeds the DeepUM driver with warm correlation tables restored
	// from a checkpoint (LoadCheckpoint), skipping the table warm-up cost.
	// SystemDeepUM only; the driver adopts the tables' own configuration.
	// Requires the correlation policy (Policy empty or "correlation").
	Resume *CorrelationState
	// Policy names the prefetch policy the DeepUM driver runs; see
	// Policies() for the registered set. Empty selects the default
	// ("correlation", the paper's chaser). SystemDeepUM only: any other
	// system rejects a non-empty Policy with *PolicyUnsupportedError, and an
	// unregistered name is rejected with *UnknownPolicyError.
	Policy string
	// ResumeState seeds the named policy with its checkpointed warm state
	// (LoadPolicyCheckpoint) — the policy-agnostic resume path.
	// SystemDeepUM only; ResumeState.Policy must agree with Policy, and
	// setting both Resume and ResumeState is an error.
	ResumeState *PolicyState
	// BreakerThreshold and BreakerCooldown tune the prefetch circuit
	// breaker: after BreakerThreshold consecutive prefetch-transfer
	// failures prefetching is suspended (pure on-demand faulting) for
	// BreakerCooldown of virtual time, then probed again. Zero selects the
	// defaults (8 failures, 500us).
	BreakerThreshold int
	BreakerCooldown  sim.Duration
	// Health enables the closed-loop health controller: windowed health
	// scores per component (link, prefetcher, pipeline, migrator) drive a
	// graduated degradation ladder — L0 full prefetch+pre-eviction, L1
	// chained-correlation-only prefetch, L2 shrunk batches / no
	// pre-eviction, L3 pure demand paging — with hysteresis, dwell times,
	// and periodic recovery probes that walk back toward L0. The zero
	// Options value (&HealthOptions{}) selects the defaults. Nil (the
	// default) disables the controller at zero cost. The demand path is
	// never gated: every level is bit-identical on a fixed workload, only
	// slower. UM-side systems only.
	Health *HealthOptions
	// Observe attaches an event-trace observer (NewObserver) to the run:
	// fault batches, link transfers, prefetch lifecycle, evictions, breaker
	// transitions, and per-iteration spans are recorded into its ring
	// buffer for export as a Chrome trace or offline analysis. Nil (the
	// default) disables tracing at zero cost — the hot paths take a single
	// nil check. UM-side systems only; the tensor-level baselines do not
	// run the event simulation the observer instruments.
	Observe *Observer
}

// DefaultConfig returns the paper's headline configuration: DeepUM with all
// optimizations, N=32, Config9 tables, on a scaled V100-32GB machine.
func DefaultConfig() Config {
	return Config{
		System:     SystemDeepUM,
		Machine:    sim.DefaultParams(),
		Driver:     core.DefaultOptions(),
		Scale:      8,
		Iterations: 4,
		Warmup:     3,
		Seed:       1,
	}
}

// Result reports a training run's measurements. An interrupted run (Status
// cancelled or deadline-exceeded) returns a PARTIAL result with a nil
// error: Iterations counts only completed measured iterations and Status
// tells the supervisor why the run stopped.
//
// Degradation semantics: StatusDegraded means the run RAN TO COMPLETION
// but not cleanly — either the prefetch circuit breaker opened at least
// once (Breaker.EverOpened) or the invariant checker reported a violation
// (Invariant != nil). EverOpened is sticky: it stays true even when the
// breaker recovered and closed again before the run ended, so a run whose
// prefetching was suspended for any window is never reported as cleanly
// completed. The measurements of a degraded run are real but were taken
// partly under pure on-demand faulting; treat cross-run comparisons with
// suspicion.
type Result struct {
	System System
	// Status classifies how the run ended: completed, cancelled,
	// deadline-exceeded, or degraded (run finished but the prefetch breaker
	// opened or an invariant was violated — see Invariant).
	Status RunStatus
	// Iterations is the number of measured iterations that completed.
	Iterations int
	// IterationTime is the mean steady-state time per training iteration.
	IterationTime sim.Duration
	// TotalTime covers the measured iterations.
	TotalTime sim.Duration
	// PageFaultsPerIteration is the Table 5 metric (UM-side systems only).
	PageFaultsPerIteration int64
	// TrafficH2D and TrafficD2H are cumulative link bytes per direction.
	TrafficH2D, TrafficD2H int64
	// EnergyJoules integrates the full-system power model (Fig. 9c).
	EnergyJoules float64
	// CorrelationTableBytes is the driver's table memory (Table 4).
	CorrelationTableBytes int64
	// PrefetchIssued and PrefetchUseful count driver prefetch commands and
	// those that served a later access (SystemDeepUM only).
	PrefetchIssued, PrefetchUseful int64
	// ChaosStats counts injected perturbations and how the run degraded;
	// all zero when Config.Chaos was empty or "none".
	ChaosStats ChaosStats
	// IterStats is the per-iteration trace (warmup included): time, faults,
	// prefetch counts. It is the unit of the checkpoint/resume equivalence
	// guarantee. UM-side systems only.
	IterStats []IterStat
	// Invariant is the first invariant-checker violation, reported through
	// the result instead of failing the run; nil on a consistent run.
	Invariant *InvariantError
	// Breaker snapshots the prefetch circuit breaker (SystemDeepUM only).
	Breaker BreakerStats
	// DiscardedPrefetches counts queued prefetch commands thrown away when
	// the run was interrupted (demand work drains; speculation does not).
	DiscardedPrefetches int64
	// Health summarizes the degradation ladder when Config.Health enabled
	// the controller: final and peak level, the transition log, and peak
	// per-component scores. Nil when the controller was off. A run whose
	// ladder ever left L0 finishes StatusDegraded.
	Health *HealthReport
	// AccessChecksum fingerprints the ordered memory-access stream (FNV-1a
	// over every block touch). It depends only on the workload and Seed —
	// not on timing, chaos, or ladder level — so two runs of the same
	// workload at different degradation levels must report identical
	// checksums. UM-side systems only.
	AccessChecksum uint64
	// Warm exposes the driver's learned correlation tables for
	// checkpointing with SaveCheckpoint (SystemDeepUM under the correlation
	// policy only; nil under other prefetch policies).
	Warm *CorrelationState
	// Policy is the prefetch policy the driver ran ("correlation",
	// "learned", ...); empty for non-DeepUM systems.
	Policy string
	// WarmState exposes the policy's serialized warm state for
	// SavePolicyCheckpoint when the run used a non-correlation policy
	// (correlation runs expose Warm instead; PolicyCheckpointOf bridges
	// both). Nil for non-DeepUM systems.
	WarmState *PolicyState
}

// Succeeded reports whether the run completed every requested iteration
// cleanly: StatusCompleted, no degradation. A degraded, cancelled, or
// deadline-exceeded run returns false even though its (partial)
// measurements are real.
func (r *Result) Succeeded() bool {
	return r.Status == StatusCompleted
}

// SaveCheckpoint serializes warm correlation state (Result.Warm) to w using
// the versioned, CRC32-checksummed encoding of internal/correlation.
func SaveCheckpoint(w io.Writer, st *CorrelationState) error {
	return correlation.WriteCheckpoint(w, st)
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint, verifying
// magic, version, and checksum. Feed the result to Config.Resume. It
// accepts both legacy (v1) checkpoints and current envelopes carrying the
// correlation policy; envelopes written under another policy are rejected —
// use LoadPolicyCheckpoint for those.
func LoadCheckpoint(r io.Reader) (*CorrelationState, error) {
	return correlation.ReadCheckpoint(r)
}

// SavePolicyCheckpoint serializes any prefetch policy's warm state to w
// using the same versioned, CRC32-checksummed envelope as SaveCheckpoint,
// with the policy's name recorded in the frame.
func SavePolicyCheckpoint(w io.Writer, st *PolicyState) error {
	if st == nil {
		return fmt.Errorf("deepum: cannot checkpoint nil policy state")
	}
	return correlation.WriteEnvelope(w, st.Policy, st.Payload)
}

// LoadPolicyCheckpoint reads any checkpoint envelope — including legacy v1
// correlation blobs, which come back with Policy "correlation" — verifying
// magic, version, and checksum. Feed the result to Config.ResumeState.
func LoadPolicyCheckpoint(r io.Reader) (*PolicyState, error) {
	name, payload, err := correlation.ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	return &PolicyState{Policy: name, Payload: payload}, nil
}

// PolicyCheckpointOf extracts a run's warm policy state as a PolicyState
// regardless of which policy ran: correlation runs are re-encoded from
// Result.Warm, other policies pass Result.WarmState through. Nil when the
// run kept no warm state (non-DeepUM systems).
func PolicyCheckpointOf(res *Result) *PolicyState {
	if res == nil {
		return nil
	}
	if res.WarmState != nil {
		return res.WarmState
	}
	if res.Warm != nil {
		return &PolicyState{Policy: "correlation", Payload: correlation.EncodeTables(res.Warm)}
	}
	return nil
}

// Train simulates training the workload under the configured system. It
// returns an error when the system cannot run the workload — device OOM for
// the tensor-level baselines, host backing-store exhaustion for the UM-side
// systems, or an unsupported model (vDNN on non-CNNs).
func Train(w Workload, cfg Config) (*Result, error) {
	return TrainContext(context.Background(), w, cfg)
}

// TrainContext is Train under a supervising context. Cancelling ctx (or
// letting its deadline expire) stops the simulation at the next event:
// demand migrations drain, queued prefetches are discarded, and the partial
// measurements come back as a *Result tagged StatusCancelled or
// StatusDeadlineExceeded with a NIL error — the caller decides whether a
// partial run is useful. Config.Deadline adds a deterministic virtual-time
// bound on top.
func TrainContext(ctx context.Context, w Workload, cfg Config) (*Result, error) {
	if w.Batch <= 0 {
		return nil, fmt.Errorf("deepum: batch size must be positive, got %d", w.Batch)
	}
	if cfg.System == "" {
		cfg.System = SystemDeepUM
	}
	if cfg.Scale < 1 {
		cfg.Scale = 8
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 4
	}
	if cfg.Warmup < 1 {
		cfg.Warmup = 3
	}
	if cfg.Machine.GPUMemory == 0 {
		cfg.Machine = sim.DefaultParams()
	}
	params := cfg.Machine.Scale(cfg.Scale)
	if params.GPUMemory < sim.BlockSize {
		return nil, fmt.Errorf("deepum: scaled GPU memory %d bytes is smaller than one %d-byte UM block (GPUMemory %d at scale 1/%d); raise Machine.GPUMemory or lower Scale",
			params.GPUMemory, int64(sim.BlockSize), cfg.Machine.GPUMemory, cfg.Scale)
	}
	scenario, err := chaos.ByName(cfg.Chaos)
	if err != nil {
		return nil, fmt.Errorf("deepum: %w", err)
	}
	prog, err := models.Build(models.Spec{Model: w.Model, Dataset: w.Dataset}, w.Batch, cfg.Scale)
	if err != nil {
		return nil, err
	}
	if cfg.Resume != nil && cfg.System != SystemDeepUM {
		return nil, fmt.Errorf("deepum: Config.Resume carries DeepUM correlation tables; system %q has none to warm", cfg.System)
	}
	if cfg.System != SystemDeepUM {
		if cfg.Policy != "" {
			return nil, &PolicyUnsupportedError{System: cfg.System, Policy: cfg.Policy}
		}
		if cfg.ResumeState != nil {
			return nil, fmt.Errorf("deepum: Config.ResumeState carries prefetch-policy state; system %q runs no prefetch policy", cfg.System)
		}
	}
	if !policy.Known(cfg.Policy) {
		return nil, &UnknownPolicyError{Name: cfg.Policy}
	}
	if cfg.ResumeState != nil {
		if cfg.Resume != nil {
			return nil, fmt.Errorf("deepum: Config.Resume and Config.ResumeState are both set; pick one resume path")
		}
		if !policy.Known(cfg.ResumeState.Policy) {
			return nil, &UnknownPolicyError{Name: cfg.ResumeState.Policy}
		}
		if cfg.Policy != "" && cfg.ResumeState.Policy != cfg.Policy {
			return nil, fmt.Errorf("deepum: Config.ResumeState holds %q policy state but Config.Policy selects %q", cfg.ResumeState.Policy, cfg.Policy)
		}
	}
	if cfg.Resume != nil && cfg.Policy != "" && cfg.Policy != "correlation" {
		return nil, fmt.Errorf("deepum: Config.Resume carries correlation tables but Config.Policy selects %q; resume it through ResumeState", cfg.Policy)
	}
	switch cfg.System {
	case SystemUM, SystemDeepUM, SystemIdeal:
		policy := engine.PolicyUM
		drv := core.Options{}
		switch cfg.System {
		case SystemDeepUM:
			policy = engine.PolicyDeepUM
			drv = cfg.Driver
			if !drv.Prefetch && !drv.Preevict && !drv.Invalidate {
				drv = core.DefaultOptions()
			}
			if drv.Prefetch && drv.Degree < 1 {
				return nil, fmt.Errorf("deepum: prefetch degree must be >= 1, got %d (the paper sweeps 1-128, headline N=32)", drv.Degree)
			}
			drv.WarmTables = cfg.Resume
			drv.Policy = cfg.Policy
			if cfg.ResumeState != nil {
				drv.Policy = cfg.ResumeState.Policy
				drv.WarmPayload = cfg.ResumeState.Payload
			}
		case SystemIdeal:
			policy = engine.PolicyIdeal
		}
		var inj *chaos.Injector
		if scenario.Active() {
			seed := cfg.ChaosSeed
			if seed == 0 {
				seed = cfg.Seed
			}
			inj = chaos.NewInjector(scenario, seed)
		}
		var hc *health.Controller
		if cfg.Health != nil {
			hc = health.NewController(*cfg.Health)
		}
		r, err := engine.RunContext(ctx, engine.Config{
			Params:           params,
			Program:          prog,
			Policy:           policy,
			DriverOptions:    drv,
			Iterations:       cfg.Iterations,
			Warmup:           cfg.Warmup,
			Seed:             cfg.Seed,
			Chaos:            inj,
			Deadline:         cfg.Deadline,
			BreakerThreshold: cfg.BreakerThreshold,
			BreakerCooldown:  cfg.BreakerCooldown,
			Health:           hc,
			Obs:              cfg.Observe.recorder(),
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			System:                 cfg.System,
			Status:                 r.Status,
			Iterations:             r.Iterations,
			IterationTime:          r.IterTime(),
			TotalTime:              r.TotalTime,
			PageFaultsPerIteration: r.FaultsPerIter,
			TrafficH2D:             r.TrafficH2D,
			TrafficD2H:             r.TrafficD2H,
			EnergyJoules:           r.EnergyJoules,
			CorrelationTableBytes:  r.DriverTableBytes,
			PrefetchIssued:         r.Driver.PrefetchIssued,
			PrefetchUseful:         r.Driver.PrefetchUseful,
			ChaosStats:             r.Chaos,
			IterStats:              r.IterStats,
			Invariant:              r.Invariant,
			Breaker:                r.Breaker,
			DiscardedPrefetches:    r.DiscardedPrefetches,
			Health:                 r.Health,
			AccessChecksum:         r.AccessChecksum,
			Warm:                   r.Tables,
			Policy:                 r.PrefetchPolicy,
			WarmState:              warmStateOf(r),
		}, nil
	default:
		if scenario.Active() {
			return nil, fmt.Errorf("deepum: chaos scenario %q applies to the UM-side systems (um, deepum, ideal); %q manages memory at tensor level and has no UM substrate to perturb", scenario.Name, cfg.System)
		}
		if cfg.Deadline > 0 {
			return nil, fmt.Errorf("deepum: Config.Deadline bounds the UM-side event simulation; system %q does not run one", cfg.System)
		}
		if cfg.Observe != nil {
			return nil, fmt.Errorf("deepum: Config.Observe traces the UM-side event simulation; system %q does not run one", cfg.System)
		}
		if cfg.Health != nil {
			return nil, fmt.Errorf("deepum: Config.Health monitors the UM-side event simulation; system %q does not run one", cfg.System)
		}
		pl, err := plannerFor(cfg.System)
		if err != nil {
			return nil, err
		}
		r, err := baselines.Run(baselines.Config{
			Params:     params,
			Program:    prog,
			Planner:    pl,
			Iterations: cfg.Iterations,
			Warmup:     cfg.Warmup,
		})
		if err != nil {
			return nil, err
		}
		return &Result{
			System:        cfg.System,
			Status:        StatusCompleted,
			Iterations:    r.Iterations,
			IterationTime: r.IterTime(),
			TotalTime:     r.TotalTime,
			TrafficH2D:    r.TrafficH2D,
			TrafficD2H:    r.TrafficD2H,
			EnergyJoules:  r.EnergyJoules,
		}, nil
	}
}

// warmStateOf wraps an engine result's serialized policy payload; nil for
// correlation runs (Result.Warm carries the typed tables) and for runs with
// no driver.
func warmStateOf(r *engine.Result) *PolicyState {
	if r.PolicyPayload == nil {
		return nil
	}
	return &PolicyState{Policy: r.PrefetchPolicy, Payload: r.PolicyPayload}
}

func plannerFor(s System) (baselines.Planner, error) {
	switch s {
	case SystemLMS:
		return baselines.NewLMS(), nil
	case SystemLMSMod:
		return baselines.NewLMSMod(), nil
	case SystemVDNN:
		return baselines.VDNN{}, nil
	case SystemAutoTM:
		return baselines.AutoTM{}, nil
	case SystemSwapAdvisor:
		return baselines.NewSwapAdvisor(), nil
	case SystemCapuchin:
		return baselines.Capuchin{}, nil
	case SystemSentinel:
		return baselines.Sentinel{}, nil
	}
	return nil, fmt.Errorf("deepum: unknown system %q", s)
}

// RunExperiment regenerates one paper table or figure by ID (e.g. "fig9a",
// "table5") and returns the rendered result.
func RunExperiment(id string, opts ExperimentOptions) (*metrics.Table, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(opts)
}

// V100_32GB returns the paper's Table 1 machine.
func V100_32GB() sim.Params { return sim.DefaultParams() }

// V100_16GB returns the §6.4 comparison machine.
func V100_16GB() sim.Params { return sim.V100_16GB() }

// BuildProgram exposes the workload generator for custom engines and tools.
func BuildProgram(w Workload, scale int64) (*workload.Program, error) {
	return models.Build(models.Spec{Model: w.Model, Dataset: w.Dataset}, w.Batch, scale)
}
