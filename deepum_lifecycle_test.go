package deepum

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"deepum/internal/sim"
)

// TestTrainContextPreCancelled: a cancelled supervisor stops the run before
// any measured work; the partial Result still comes back with a nil error.
func TestTrainContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TrainContext(ctx, Workload{Model: "bert-large", Batch: 16}, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if len(res.IterStats) != 0 {
		t.Fatalf("pre-cancelled run reported %d iterations", len(res.IterStats))
	}
}

// TestTrainContextCancelMidRun is the public-API acceptance test: a
// cancellation landing mid-run returns the partial measurements with
// StatusCancelled and leaks no goroutines.
func TestTrainContextCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(2*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	cfg := testConfig(SystemDeepUM)
	cfg.Iterations, cfg.Warmup = 50, 3 // long enough that the 2ms cancel lands mid-run
	res, err := TrainContext(ctx, Workload{Model: "bert-large", Batch: 16}, cfg)
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if len(res.IterStats) >= 53 {
		t.Fatal("cancelled run completed every iteration; cancellation never landed")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked across cancellation: %d before, %d after", before, g)
	}
}

// TestTrainVirtualDeadline: Config.Deadline stops the run at a simulated
// timestamp — deterministically, unlike a wall-clock context deadline.
func TestTrainVirtualDeadline(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	clean, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(SystemDeepUM)
	cfg.Deadline = clean.IterStats[0].Time + clean.IterStats[1].Time/2
	res, err := Train(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDeadlineExceeded {
		t.Fatalf("status = %v, want deadline-exceeded", res.Status)
	}
	if len(res.IterStats) != 1 {
		t.Fatalf("deadline mid-iteration-1 left %d completed iterations, want 1", len(res.IterStats))
	}
	res2, err := Train(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.IterStats) != len(res.IterStats) || res2.PageFaultsPerIteration != res.PageFaultsPerIteration {
		t.Fatal("virtual deadline is not deterministic")
	}
}

// TestTrainDeadlineRejectedForBaselines: baseline systems replay analytic
// models, not an event simulation, so a virtual deadline is meaningless and
// must be rejected rather than silently ignored.
func TestTrainDeadlineRejectedForBaselines(t *testing.T) {
	cfg := testConfig(SystemAutoTM)
	cfg.Deadline = sim.Duration(1)
	_, err := Train(Workload{Model: "mobilenet", Dataset: "cifar100", Batch: 600}, cfg)
	if err == nil {
		t.Fatal("Deadline accepted for a baseline system")
	}
	if !strings.Contains(err.Error(), "Deadline") {
		t.Fatalf("deadline error not descriptive: %v", err)
	}
}

// TestTrainCheckpointResume: the full public checkpoint cycle — train, save
// Result.Warm, load, resume — and the resumed run's very first iteration
// already prefetches (warm tables), which a cold run's cannot.
func TestTrainCheckpointResume(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	first, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	if first.Warm == nil {
		t.Fatal("DeepUM run exposed no warm state")
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, first.Warm); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(SystemDeepUM)
	cfg.Resume = restored
	cfg.Warmup = 1
	resumed, err := Train(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Status != StatusCompleted {
		t.Fatalf("resumed run status = %v", resumed.Status)
	}
	if got := resumed.IterStats[0].PrefetchIssued; got == 0 {
		t.Fatal("resumed run issued no prefetches in its first iteration; tables arrived cold")
	}

	cold := testConfig(SystemDeepUM)
	cold.Warmup = 1
	coldRes, err := Train(w, cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldRes.IterStats[0].PrefetchIssued != 0 {
		t.Fatalf("cold run prefetched in iteration 0 (%d); the resume comparison is vacuous",
			coldRes.IterStats[0].PrefetchIssued)
	}
}

// TestTrainResumeRejectedForNonDeepUM: warm correlation tables only mean
// something to the DeepUM driver.
func TestTrainResumeRejectedForNonDeepUM(t *testing.T) {
	w := Workload{Model: "bert-large", Batch: 16}
	first, err := Train(w, testConfig(SystemDeepUM))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(SystemUM)
	cfg.Resume = first.Warm
	if _, err := Train(w, cfg); err == nil {
		t.Fatal("Resume accepted for a non-DeepUM system")
	} else if !strings.Contains(err.Error(), "Resume") {
		t.Fatalf("resume error not descriptive: %v", err)
	}
}
