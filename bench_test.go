package deepum

import (
	"testing"

	"deepum/internal/engine"
	"deepum/internal/experiments"
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// engineRun is a bench helper running one UM-policy simulation.
func engineRun(params sim.Params, prog *workload.Program, density bool) (*engine.Result, error) {
	return engine.Run(engine.Config{
		Params:            params,
		Program:           prog,
		Policy:            engine.PolicyUM,
		Iterations:        3,
		Warmup:            3,
		Seed:              1,
		UMDensityPrefetch: density,
	})
}

// Benchmarks regenerate the paper's tables and figures — one bench target
// per artifact (deliverable (d)). Each iteration runs the experiment's full
// workload matrix in Quick mode (one batch size per model) at scale 32 so
// `go test -bench=.` completes in minutes; run cmd/deepum-bench for the
// complete matrices, and pass -scale 1 there for paper-sized footprints.
//
// Reported metrics: ns/op is the wall-clock cost of regenerating the
// artifact; the table itself is logged once per benchmark via -v.

// benchOpts is the shared quick configuration for bench targets.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 32, Iterations: 3, Warmup: 4, Quick: true, Seed: 1}
}

func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		tbl, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tbl.String())
		}
	}
}

// BenchmarkFig9a regenerates Figure 9(a): speedup of LMS, LMS-mod, DeepUM
// and Ideal over naive UM on the V100-32GB.
func BenchmarkFig9a(b *testing.B) { runExperimentBench(b, "fig9a") }

// BenchmarkFig9b regenerates Figure 9(b): elapsed seconds per 100 training
// iterations for UM, LMS, LMS-mod and DeepUM.
func BenchmarkFig9b(b *testing.B) { runExperimentBench(b, "fig9b") }

// BenchmarkFig9c regenerates Figure 9(c): total energy consumption ratio of
// LMS and DeepUM over naive UM.
func BenchmarkFig9c(b *testing.B) { runExperimentBench(b, "fig9c") }

// BenchmarkTable3 regenerates Table 3: maximum possible batch sizes of LMS
// and DeepUM (binary search over actual runs).
func BenchmarkTable3(b *testing.B) { runExperimentBench(b, "table3") }

// BenchmarkTable4 regenerates Table 4: correlation table sizes.
func BenchmarkTable4(b *testing.B) { runExperimentBench(b, "table4") }

// BenchmarkTable5 regenerates Table 5: average page faults per training
// iteration under naive UM and DeepUM.
func BenchmarkTable5(b *testing.B) { runExperimentBench(b, "table5") }

// BenchmarkFig10 regenerates Figure 10: the cumulative ablation of
// prefetching, pre-eviction and invalidation.
func BenchmarkFig10(b *testing.B) { runExperimentBench(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: sensitivity to the prefetch degree
// N (speedup and energy versus N=8).
func BenchmarkFig11(b *testing.B) { runExperimentBench(b, "fig11") }

// BenchmarkFig12 regenerates Table 6 + Figure 12: the UM-block correlation
// table parameter sweep (Config0-Config12).
func BenchmarkFig12(b *testing.B) { runExperimentBench(b, "fig12") }

// BenchmarkTable7 regenerates Table 7: maximum batch sizes of the
// TensorFlow-based approaches and DeepUM on the V100-16GB.
func BenchmarkTable7(b *testing.B) { runExperimentBench(b, "table7") }

// BenchmarkFig13 regenerates Figure 13: speedup of vDNN, AutoTM,
// SwapAdvisor, Capuchin, Sentinel, DeepUM and Ideal over naive UM on the
// V100-16GB.
func BenchmarkFig13(b *testing.B) { runExperimentBench(b, "fig13") }

// --- Ablation benches for DESIGN.md §5's design choices --------------------

// BenchmarkAblationChainingOff measures classic single-table pair-based
// prefetching (no cross-kernel chaining) against DeepUM's two-table design:
// degree 1 stops the chain at the current kernel's boundary.
func BenchmarkAblationChainingOff(b *testing.B) {
	w := Workload{Model: "bert-large", Batch: 16}
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Scale = 32
		cfg.Iterations = 3
		cfg.Driver.Degree = 1
		if _, err := Train(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPageGranularityTables measures the memory cost of
// page-granularity history (the alternative §4.2 rejects): 512x the rows at
// the same associativity, on the same workload.
func BenchmarkAblationPageGranularityTables(b *testing.B) {
	w := Workload{Model: "bert-base", Batch: 16}
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Scale = 32
		cfg.Iterations = 2
		cfg.Driver.TableConfig = BlockTableConfig{NumRows: 65536, Assoc: 2, NumSuccs: 4, NumLevels: 1}
		res, err := Train(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.CorrelationTableBytes)/(1<<20), "tableMiB")
	}
}

// BenchmarkEngineKernel measures the simulation engine's own throughput:
// simulated kernels per second on a steady-state DeepUM run.
func BenchmarkEngineKernel(b *testing.B) {
	w := Workload{Model: "bert-large", Batch: 16}
	prog, err := BuildProgram(w, 32)
	if err != nil {
		b.Fatal(err)
	}
	kernels := prog.Kernels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Scale = 32
		cfg.Iterations = 3
		if _, err := Train(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(kernels*(3+3))*float64(b.N), "simKernels")
}

// BenchmarkAblationUMDensity contrasts three fault-coalescing strategies on
// the same oversubscribed workload: naive chunked UM, UM with the NVIDIA
// density (neighborhood) heuristic, and DeepUM's predictive whole-block
// prefetch — the spectrum DESIGN.md §5 calls out.
func BenchmarkAblationUMDensity(b *testing.B) {
	prog, err := BuildProgram(Workload{Model: "bert-large", Batch: 16}, 32)
	if err != nil {
		b.Fatal(err)
	}
	params := V100_32GB().Scale(32)
	for i := 0; i < b.N; i++ {
		for _, density := range []bool{false, true} {
			res, err := engineRun(params, prog, density)
			if err != nil {
				b.Fatal(err)
			}
			name := "umNaiveMs"
			if density {
				name = "umDensityMs"
			}
			b.ReportMetric(float64(res.IterTime().Milliseconds()), name)
		}
	}
}
