package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepum"
)

// testFederationServer builds the HTTP API over a shard federation with a
// fake runner, mirroring testServer for single-supervisor mode.
func testFederationServer(t *testing.T, shardCount int, runner deepum.Runner, grace time.Duration) (*httptest.Server, *deepum.Federation) {
	t.Helper()
	fed, err := deepum.NewFederation(deepum.FederationOptions{
		Shards: shardCount,
		Supervisor: deepum.SupervisorConfig{
			Runner:        runner,
			Estimate:      func(deepum.RunSpec) (int64, error) { return 1 << 20, nil },
			Workers:       2,
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = fed.Drain(ctx)
	})
	ts := httptest.NewServer(newFederationServer(fed, 10*time.Second, grace))
	t.Cleanup(ts.Close)
	return ts, fed
}

// submitOnEveryShard pushes quick runs through the API until every shard
// owns at least one completed run; returns one run ID per shard ordinal.
func submitOnEveryShard(t *testing.T, ts *httptest.Server, fed *deepum.Federation, shards int) map[int]uint64 {
	t.Helper()
	byShard := map[int]uint64{}
	for i := 0; len(byShard) < shards; i++ {
		if i > 200 {
			t.Fatalf("200 submissions covered only %d of %d shards", len(byShard), shards)
		}
		resp := postJSON(t, ts.URL+"/runs", fmt.Sprintf(`{"model":"bert-base","batch":8,"iterations":1,"seed":%d}`, i+1))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		id := decode[map[string]uint64](t, resp)["id"]
		if _, err := fed.Wait(id); err != nil {
			t.Fatal(err)
		}
		ord, ok := fed.Owner(id)
		if !ok {
			t.Fatalf("run %d has no owner", id)
		}
		if _, seen := byShard[ord]; !seen {
			byShard[ord] = id
		}
	}
	return byShard
}

// TestServeMetricsScrapeFederation: federation mode serves the federation
// registry — every per-shard series pre-registered (zeros at first scrape)
// plus the HTTP counters, and the series move after a failover.
func TestServeMetricsScrapeFederation(t *testing.T) {
	ts, fed := testFederationServer(t, 3, instant(), 0)

	scrape := func() string {
		t.Helper()
		r, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("metrics: status %d", r.StatusCode)
		}
		if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("metrics content type = %q", ct)
		}
		var sb strings.Builder
		if _, err := io.Copy(&sb, r.Body); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	// First scrape, before any run or failover: the whole fleet is visible
	// at zero (the pre-registration contract).
	body := scrape()
	for shard := 0; shard < 3; shard++ {
		for _, want := range []string{
			fmt.Sprintf(`deepum_shard_up{shard="%d"} 1`, shard),
			fmt.Sprintf(`deepum_shard_adopted_runs_total{shard="%d"} 0`, shard),
			fmt.Sprintf(`deepum_shard_submissions_total{shard="%d"} 0`, shard),
			fmt.Sprintf(`deepum_shard_queued_runs{shard="%d"} 0`, shard),
			fmt.Sprintf(`deepum_shard_running_runs{shard="%d"} 0`, shard),
		} {
			if !strings.Contains(body, want) {
				t.Errorf("first scrape missing %q", want)
			}
		}
	}
	for _, want := range []string{
		"deepum_federation_handoffs_total 0",
		"deepum_federation_ring_rebalances_total 0",
		"deepum_federation_handoff_rejections_total 0",
		"deepum_federation_shards_live 3",
		"# TYPE deepum_shard_up gauge",
		"# TYPE deepum_shard_adopted_runs_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("first scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full body:\n%s", body)
	}

	// Run work, fail a shard over, and the series move.
	submitOnEveryShard(t, ts, fed, 3)
	if _, err := fed.Failover(0); err != nil {
		t.Fatal(err)
	}
	body = scrape()
	for _, want := range []string{
		`deepum_shard_up{shard="0"} 0`,
		"deepum_federation_handoffs_total 1",
		"deepum_federation_ring_rebalances_total 1",
		"deepum_federation_shards_live 2",
		`deepum_http_requests_total{route="GET /metrics"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("post-failover scrape missing %q\n%s", want, body)
		}
	}
}

// TestServeFederationHandoffWindow drills the kill-to-handoff window over
// HTTP: 503 + Retry-After with the dead shard's ordinal in the JSON body
// while the window is young, hard 500 once it outlives -handoff-grace,
// and normal service again after the handoff.
func TestServeFederationHandoffWindow(t *testing.T) {
	const grace = time.Second
	ts, fed := testFederationServer(t, 2, instant(), grace)
	byShard := submitOnEveryShard(t, ts, fed, 2)

	const victim = 0
	if err := fed.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// A lookup routed to the dead shard answers 503 + Retry-After, and the
	// body names the shard and marks the rejection retryable.
	r, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, byShard[victim]))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("get in handoff window: status %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("handoff 503 carries no Retry-After header")
	}
	reject := decode[map[string]any](t, r)
	if shard, ok := reject["shard"].(float64); !ok || int(shard) != victim {
		t.Fatalf("handoff 503 body names shard %v, want %d: %v", reject["shard"], victim, reject)
	}
	if retryable, _ := reject["retryable"].(bool); !retryable {
		t.Fatalf("handoff 503 body not marked retryable: %v", reject)
	}

	// Fresh submissions whose ID hashes to the dead shard reject the same
	// way; the live shard keeps accepting.
	sawHandoff, sawAccepted := false, false
	for i := 0; i < 200 && !(sawHandoff && sawAccepted); i++ {
		resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"iterations":1}`)
		switch resp.StatusCode {
		case http.StatusAccepted:
			sawAccepted = true
		case http.StatusServiceUnavailable:
			body := decode[map[string]any](t, resp)
			if shard, ok := body["shard"].(float64); !ok || int(shard) != victim {
				t.Fatalf("submit 503 body names shard %v, want %d", body["shard"], victim)
			}
			sawHandoff = true
		default:
			t.Fatalf("submit in handoff window: status %d", resp.StatusCode)
		}
	}
	if !sawHandoff || !sawAccepted {
		t.Fatalf("handoff window admission: rejected=%v accepted=%v", sawHandoff, sawAccepted)
	}

	// /shards shows the dead shard pending handoff.
	sresp, err := http.Get(ts.URL + "/shards")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var shardsBody struct {
		Shards []deepum.FederationShardStats `json:"shards"`
		Stats  deepum.FederationStats        `json:"stats"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&shardsBody); err != nil {
		t.Fatal(err)
	}
	if len(shardsBody.Shards) != 2 || shardsBody.Shards[victim].Alive || !shardsBody.Shards[victim].HandoffPending {
		t.Fatalf("/shards = %+v", shardsBody.Shards)
	}
	if shardsBody.Stats.Live != 1 {
		t.Fatalf("/shards stats live = %d, want 1", shardsBody.Stats.Live)
	}

	// Past the grace window the 503 converts into a hard failure: a
	// handoff that never lands is an outage, not backpressure.
	time.Sleep(grace + 300*time.Millisecond)
	r2, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, byShard[victim]))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("get past handoff grace: status %d, want 500", r2.StatusCode)
	}
	if hard := decode[map[string]any](t, r2); hard["retryable"] == true {
		t.Fatalf("post-grace failure still marked retryable: %v", hard)
	}

	// Handoff lands: the run is served again, from a surviving shard.
	if _, err := fed.Handoff(victim); err != nil {
		t.Fatal(err)
	}
	r3, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, byShard[victim]))
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("get after handoff: status %d, want 200", r3.StatusCode)
	}
	info := decode[deepum.RunInfo](t, r3)
	if info.State != deepum.RunCompleted {
		t.Fatalf("adopted run state %s", info.State)
	}
	if ord, _ := fed.Owner(byShard[victim]); ord == victim {
		t.Fatalf("run still owned by dead shard %d", victim)
	}
}
