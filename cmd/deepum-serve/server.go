package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"deepum"
)

// backend is what the HTTP layer needs from the run-admission plane; both
// the single *deepum.Supervisor (via supervisorBackend) and the sharded
// *deepum.Federation satisfy it, so every route behaves identically in
// both modes.
type backend interface {
	Submit(deepum.RunSpec) (uint64, error)
	// SubmitWithOptions attaches an idempotency key and a propagated client
	// deadline; dedup reports the returned ID is an existing run the key
	// resolved to.
	SubmitWithOptions(deepum.RunSpec, deepum.SubmitOptions) (uint64, bool, error)
	Get(uint64) (deepum.RunInfo, error)
	Cancel(uint64) error
	// Resume force-resumes a suspended run (operator override of the
	// oversubscription arbiter's headroom gate).
	Resume(uint64) error
	List() []deepum.RunInfo
	Accepting() bool
	// RetryAfterHint prices a jittered Retry-After from the admission
	// queue's observed drain rate, for rejections that carry none of their
	// own (drain, handoff windows).
	RetryAfterHint() time.Duration
	Metrics() *deepum.MetricsRegistry
}

// supervisorBackend adapts the single supervisor's ID-taking submit
// signature to the backend interface (the federation assigns its own
// globally-unique IDs; a lone supervisor takes 0 = next local ID).
type supervisorBackend struct {
	*deepum.Supervisor
}

func (b supervisorBackend) SubmitWithOptions(spec deepum.RunSpec, opts deepum.SubmitOptions) (uint64, bool, error) {
	return b.Supervisor.SubmitWithOptions(0, spec, opts)
}

// newServer wires a single supervisor behind the JSON HTTP API. Typed
// admission rejections map onto distinct status codes so clients can tell
// "back off and retry" (429/503, both with Retry-After) from "this spec
// can never be admitted" (422). Every handler runs under a per-request
// context deadline (requestTimeout; 0 disables) so one slow request cannot
// hold a connection open indefinitely. GET /metrics scrapes the backend's
// Prometheus registry plus per-route HTTP request counters.
func newServer(sup *deepum.Supervisor, requestTimeout time.Duration) http.Handler {
	s := &server{b: supervisorBackend{sup}, stats: func() any { return sup.Stats() }}
	return buildServer(s, requestTimeout)
}

// newFederationServer wires a shard federation behind the same API, plus
// GET /shards for per-shard status. Requests landing on a dead shard
// mid-handoff answer 503 + Retry-After with the shard ordinal in the JSON
// error body; once the handoff window outlives handoffGrace the 503s
// convert into hard 500s — a stuck failover must page someone, not hide
// behind "retry later" forever. handoffGrace <= 0 never converts.
func newFederationServer(fed *deepum.Federation, requestTimeout, handoffGrace time.Duration) http.Handler {
	s := &server{b: fed, stats: func() any { return fed.Stats() }, fed: fed, grace: handoffGrace}
	return buildServer(s, requestTimeout)
}

func buildServer(s *server, requestTimeout time.Duration) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.submit)
	mux.HandleFunc("GET /runs", s.list)
	mux.HandleFunc("GET /runs/{id}", s.get)
	mux.HandleFunc("POST /runs/{id}/cancel", s.cancel)
	mux.HandleFunc("POST /runs/{id}/resume", s.resume)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.ready)
	mux.HandleFunc("GET /metrics", s.metrics)
	if s.fed != nil {
		mux.HandleFunc("GET /shards", s.shards)
	}
	// withDeadline wraps outside countRequests: the counter must hand the
	// mux the same *Request it later reads r.Pattern from (WithContext
	// copies the request, so a deadline layer between them would hide the
	// matched route).
	return withDeadline(requestTimeout, countRequests(s.b.Metrics(), mux))
}

// withDeadline bounds each request with a context deadline. Handlers that
// consult r.Context() (and the bodies they read) observe the cancellation;
// the connection-level Read/Write timeouts on the http.Server backstop
// handlers that do not.
func withDeadline(timeout time.Duration, next http.Handler) http.Handler {
	if timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// countRequests counts every request by method and matched route pattern
// (bounded label cardinality: unmatched paths collapse to their 404).
func countRequests(reg *deepum.MetricsRegistry, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		reg.Counter("deepum_http_requests_total",
			"HTTP requests served, by matched route.",
			map[string]string{"route": route}).Inc()
	})
}

type server struct {
	b     backend
	stats func() any
	fed   *deepum.Federation // nil in single-supervisor mode
	grace time.Duration      // handoff-window 503s older than this become 500s
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var opts deepum.SubmitOptions
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		if err := deepum.ValidateIdempotencyKey(key); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		opts.Key = key
	}
	// The client's wait budget rides an explicit header (Go duration
	// syntax), NOT the request context deadline: submit answers 202
	// immediately, so the wait the deadline must survive happens after this
	// response is long gone.
	if dl := r.Header.Get("X-Deadline"); dl != "" {
		d, err := time.ParseDuration(dl)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				errors.New("X-Deadline must be a positive Go duration (e.g. 30s)"))
			return
		}
		opts.Deadline = d
	}
	var spec deepum.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !deepum.PolicyKnown(spec.Policy) {
		// Never admittable: no amount of retrying makes an unregistered
		// prefetch policy exist. Same contract as the per-run quota reject.
		writeReject(w, http.StatusUnprocessableEntity,
			&deepum.UnknownPolicyError{Name: spec.Policy}, false)
		return
	}
	if spec.Policy != "" && spec.System != "" && spec.System != string(deepum.SystemDeepUM) {
		writeReject(w, http.StatusUnprocessableEntity,
			&deepum.PolicyUnsupportedError{System: deepum.System(spec.System), Policy: spec.Policy}, false)
		return
	}
	id, dedup, err := s.b.SubmitWithOptions(spec, opts)
	if err != nil {
		var he *deepum.ShardHandoffError
		var shed *deepum.ShedError
		var qf *deepum.QueueFullError
		var q *deepum.QuotaError
		// errors.As/Is see through the federation's ShardError wrapper, so
		// the shard-local rejection types keep their status codes; the
		// wrapper's shard ordinal surfaces in the JSON body (writeReject).
		switch {
		case errors.As(err, &he):
			s.rejectHandoff(w, he, err)
		case errors.As(err, &shed):
			// Deadline-aware shed: the queue may have room, but the client's
			// deadline will not survive the predicted wait. The hint is
			// priced from the drain rate and jittered by the shedder itself.
			setRetryAfter(w, shed.RetryAfter)
			writeReject(w, http.StatusServiceUnavailable, err, true)
		case errors.Is(err, deepum.ErrShuttingDown):
			// A draining server may be restarting; tell well-behaved
			// clients when to probe again rather than hammering it.
			setRetryAfter(w, s.b.RetryAfterHint())
			writeReject(w, http.StatusServiceUnavailable, err, true)
		case errors.As(err, &qf):
			setRetryAfter(w, qf.RetryAfter)
			writeReject(w, http.StatusTooManyRequests, err, true)
		case errors.As(err, &q) && q.Retryable():
			setRetryAfter(w, s.b.RetryAfterHint())
			writeReject(w, http.StatusTooManyRequests, err, true)
		case errors.As(err, &q):
			// Per-run quota: the spec can never fit; retrying is useless.
			writeReject(w, http.StatusUnprocessableEntity, err, false)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	if dedup {
		// A replayed submission: the key resolved to the run an earlier
		// attempt created. 200, not 202 — nothing new was admitted — and
		// the run's current state (terminal outcome included) rides along
		// so a post-completion retry gets the original result.
		body := map[string]any{"id": id, "deduplicated": true}
		if info, gerr := s.b.Get(id); gerr == nil {
			body["run"] = info
		}
		writeJSON(w, http.StatusOK, body)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]uint64{"id": id})
}

// setRetryAfter writes a Retry-After header from a computed hint,
// whole-second wire format, floored at 1s (0 falls back to 1s: a rejection
// must never tell the client "retry immediately").
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// rejectHandoff answers a request trapped in a shard's kill-to-handoff
// window: 503 + Retry-After while the window is younger than the grace
// budget, hard 500 once it overstays (a handoff that never lands is an
// outage, not backpressure).
func (s *server) rejectHandoff(w http.ResponseWriter, he *deepum.ShardHandoffError, err error) {
	if s.grace > 0 && !he.Since.IsZero() && time.Since(he.Since) > s.grace {
		writeReject(w, http.StatusInternalServerError, err, false)
		return
	}
	setRetryAfter(w, s.b.RetryAfterHint())
	writeReject(w, http.StatusServiceUnavailable, err, true)
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.b.List())
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	info, err := s.b.Get(id)
	if err != nil {
		var he *deepum.ShardHandoffError
		if errors.As(err, &he) {
			s.rejectHandoff(w, he, err)
			return
		}
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	err := s.b.Cancel(id)
	var nf *deepum.RunNotFoundError
	var he *deepum.ShardHandoffError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	case errors.As(err, &he):
		s.rejectHandoff(w, he, err)
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, deepum.ErrRunAlreadyFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// resume force-resumes an arbiter-suspended run. 409 tells the client the
// run is not suspended right now (already resumed, still running, or
// terminal) — a state conflict, not a missing resource.
func (s *server) resume(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	err := s.b.Resume(id)
	var nf *deepum.RunNotFoundError
	var he *deepum.ShardHandoffError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "resuming"})
	case errors.As(err, &he):
		s.rejectHandoff(w, he, err)
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, deepum.ErrRunNotSuspended):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) ready(w http.ResponseWriter, r *http.Request) {
	if !s.b.Accepting() {
		setRetryAfter(w, s.b.RetryAfterHint())
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "stats": s.stats()})
}

// shards reports per-shard status (federation mode only): liveness,
// pending handoffs, per-shard queue/run counts, and the fleet aggregate.
func (s *server) shards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards": s.fed.Shards(),
		"stats":  s.fed.Stats(),
	})
}

// metrics serves the Prometheus text exposition format (version 0.0.4).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.b.Metrics().WriteText(w)
}

func runID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("run id must be a positive integer"))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeReject writes an admission rejection. In federation mode the
// rejecting shard's ordinal rides along in the body so a client (or an
// operator tailing logs) can see which shard is pushing back; retryable
// tells clients whether waiting can help.
func writeReject(w http.ResponseWriter, code int, err error, retryable bool) {
	body := map[string]any{"error": err.Error()}
	var he *deepum.ShardHandoffError
	var se *deepum.ShardError
	switch {
	case errors.As(err, &he):
		body["shard"] = he.Shard
	case errors.As(err, &se):
		body["shard"] = se.Shard
	}
	if retryable {
		body["retryable"] = true
	}
	writeJSON(w, code, body)
}
