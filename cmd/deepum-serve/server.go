package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"deepum"
)

// newServer wires the supervisor behind a JSON HTTP API. Typed admission
// rejections map onto distinct status codes so clients can tell "back off
// and retry" (429/503, both with Retry-After) from "this spec can never be
// admitted" (422). Every handler runs under a per-request context deadline
// (requestTimeout; 0 disables) so one slow request cannot hold a
// connection open indefinitely. GET /metrics scrapes the supervisor's
// Prometheus registry (admission results, runs by state, queue depth, run
// durations, health-ladder levels) plus per-route HTTP request counters.
func newServer(sup *deepum.Supervisor, requestTimeout time.Duration) http.Handler {
	s := &server{sup: sup}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.submit)
	mux.HandleFunc("GET /runs", s.list)
	mux.HandleFunc("GET /runs/{id}", s.get)
	mux.HandleFunc("POST /runs/{id}/cancel", s.cancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", s.ready)
	mux.HandleFunc("GET /metrics", s.metrics)
	// withDeadline wraps outside countRequests: the counter must hand the
	// mux the same *Request it later reads r.Pattern from (WithContext
	// copies the request, so a deadline layer between them would hide the
	// matched route).
	return withDeadline(requestTimeout, countRequests(sup, mux))
}

// withDeadline bounds each request with a context deadline. Handlers that
// consult r.Context() (and the bodies they read) observe the cancellation;
// the connection-level Read/Write timeouts on the http.Server backstop
// handlers that do not.
func withDeadline(timeout time.Duration, next http.Handler) http.Handler {
	if timeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), timeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// countRequests counts every request by method and matched route pattern
// (bounded label cardinality: unmatched paths collapse to their 404).
func countRequests(sup *deepum.Supervisor, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(w, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		sup.Metrics().Counter("deepum_http_requests_total",
			"HTTP requests served, by matched route.",
			map[string]string{"route": route}).Inc()
	})
}

type server struct {
	sup *deepum.Supervisor
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec deepum.RunSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.sup.Submit(spec)
	if err != nil {
		var qf *deepum.QueueFullError
		var q *deepum.QuotaError
		switch {
		case errors.Is(err, deepum.ErrShuttingDown):
			// A draining server may be restarting; tell well-behaved
			// clients when to probe again rather than hammering it.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &qf):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.As(err, &q) && q.Retryable():
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err)
		case errors.As(err, &q):
			// Per-run quota: the spec can never fit; retrying is useless.
			writeError(w, http.StatusUnprocessableEntity, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]uint64{"id": id})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sup.List())
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	info, err := s.sup.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	id, ok := runID(w, r)
	if !ok {
		return
	}
	err := s.sup.Cancel(id)
	var nf *deepum.RunNotFoundError
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
	case errors.As(err, &nf):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, deepum.ErrRunAlreadyFinished):
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *server) ready(w http.ResponseWriter, r *http.Request) {
	if !s.sup.Accepting() {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "stats": s.sup.Stats()})
}

// metrics serves the Prometheus text exposition format (version 0.0.4).
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.sup.Metrics().WriteText(w)
}

func runID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, errors.New("run id must be a positive integer"))
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
