package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepum"
)

// FuzzSubmitSpec feeds the POST /runs decoder adversarial bodies and
// headers. The contract under fuzz: malformed input is a clean 4xx — never
// a 5xx, never a panic — and syntactically valid submissions reach the
// backend. The fake backend accepts everything, so any 5xx the recorder
// sees was minted by the handler itself.
func FuzzSubmitSpec(f *testing.F) {
	valid := `{"model":"bert-base","batch":8,"iterations":3,"seed":1}`
	f.Add(valid, "", "")
	f.Add(valid, "retry-key-1", "30s")
	f.Add("", "", "")                     // empty body
	f.Add("{", "", "")                    // truncated JSON
	f.Add(`{"model": nope`, "", "")       // bare token mid-object
	f.Add(`{"unknown_field": 1}`, "", "") // DisallowUnknownFields
	f.Add(`{"model":3}`, "", "")          // type confusion
	f.Add(`{"batch":"eight"}`, "", "")    // string where int64 expected
	f.Add(`{"batch":1e999}`, "", "")      // float overflow
	f.Add(`{"timeout":-9223372036854775808}`, "", "")
	f.Add(`[]`, "", "") // wrong top-level shape
	f.Add(`{"model":"`+strings.Repeat("x", 4096)+`"}`, "", "")
	f.Add(strings.Repeat("[", 1<<12), "", "") // deep nesting
	f.Add(valid+valid, "", "")                // trailing garbage after object
	f.Add("\x00\xff\xfe", "", "")             // binary junk
	// MaxBytesReader boundary: exactly at the 1<<20 cap and one byte over.
	pad := func(n int) string {
		return `{"model":"bert-base","batch":8,"dataset":"` + strings.Repeat("a", n) + `"}`
	}
	f.Add(pad(1<<20-44), "", "")
	f.Add(pad(1<<20), "", "")
	// Policy field: registered, unknown, hostile, and system mismatches.
	f.Add(`{"model":"bert-base","batch":8,"policy":"correlation"}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":"learned"}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":"gpuvm-window"}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":"nope"}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":""}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":"`+strings.Repeat("p", 4096)+`"}`, "", "")
	f.Add("{\"model\":\"bert-base\",\"batch\":8,\"policy\":\"\x00\x07\"}", "", "")
	f.Add(`{"model":"bert-base","batch":8,"system":"lms","policy":"correlation"}`, "", "")
	f.Add(`{"model":"bert-base","batch":8,"policy":3}`, "", "")
	// Hostile headers.
	f.Add(valid, strings.Repeat("k", deepum.MaxIdempotencyKeyLen+1), "")
	f.Add(valid, "bad key with spaces", "")
	f.Add(valid, "ok-key", "not-a-duration")
	f.Add(valid, "ok-key", "-5s")
	f.Add(valid, "ok-key", "99999999999999999999h")

	f.Fuzz(func(t *testing.T, body, key, deadline string) {
		if len(body) > 2<<20 {
			body = body[:2<<20]
		}
		fb := &fakeBackend{reg: deepum.NewMetricsRegistry()}
		srv := &server{b: fb, stats: func() any { return nil }}
		req := httptest.NewRequest("POST", "/runs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		// Header values with control bytes would be rejected by a real
		// net/http transport before reaching the server; setting them via
		// the map mimics a hand-rolled client that skips validation.
		if key != "" {
			req.Header["Idempotency-Key"] = []string{key}
		}
		if deadline != "" {
			req.Header["X-Deadline"] = []string{deadline}
		}
		rec := httptest.NewRecorder()
		srv.submit(rec, req)
		code := rec.Code
		if code >= 500 {
			t.Fatalf("submit answered %d for body %q key %q deadline %q (want 2xx/4xx)", code, truncate(body), key, deadline)
		}
		if code != http.StatusAccepted && code != http.StatusOK && (code < 400 || code > 499) {
			t.Fatalf("submit answered %d, outside the accept/4xx contract", code)
		}
	})
}

func truncate(s string) string {
	if len(s) > 128 {
		return s[:128] + "..."
	}
	return s
}

// TestSubmitPolicyRejection pins the status codes outside the fuzzer: an
// unknown prefetch policy (or a policy on a system that runs none) is a
// 422 with retryable=false — never admittable — while registered policies
// pass validation and reach the backend.
func TestSubmitPolicyRejection(t *testing.T) {
	ts := newFakeServer(t, &fakeBackend{})
	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, name := range []string{"", "correlation", "learned", "gpuvm-window"} {
		if code := post(`{"model":"bert-base","batch":8,"policy":"` + name + `"}`); code != http.StatusAccepted {
			t.Errorf("policy %q: status %d, want 202", name, code)
		}
	}
	if code := post(`{"model":"bert-base","batch":8,"policy":"nope"}`); code != http.StatusUnprocessableEntity {
		t.Errorf("unknown policy: status %d, want 422", code)
	}
	if code := post(`{"model":"bert-base","batch":8,"system":"lms","policy":"correlation"}`); code != http.StatusUnprocessableEntity {
		t.Errorf("policy on lms: status %d, want 422", code)
	}
}

// TestSubmitOversizedBody pins the MaxBytesReader boundary outside the
// fuzzer: a body one byte over 1<<20 is a 4xx, not a connection-level 5xx.
func TestSubmitOversizedBody(t *testing.T) {
	ts := newFakeServer(t, &fakeBackend{})
	big := `{"model":"bert-base","batch":8,"dataset":"` + strings.Repeat("a", 1<<20) + `"}`
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode > 499 {
		t.Fatalf("oversized submit: status %d, want 4xx", resp.StatusCode)
	}
	_ = time.Second // keep the import set stable if assertions change
}
