// deepum-serve exposes the multi-run supervisor over an HTTP JSON API:
// submit training runs, watch their lifecycle, cancel them, and survive
// process restarts through the crash-safe run journal.
//
//	deepum-serve -addr :8080 -workers 4 -journal runs.journal
//
// With -shards N (and -journal-dir) the server fronts a federation of N
// supervisor shards on a consistent-hash ring instead of one supervisor;
// requests owned by a dead shard answer 503 + Retry-After (with the shard
// ordinal in the error body) until its journal is handed off, and after
// -handoff-grace those 503s convert into hard failures.
//
//	deepum-serve -addr :8080 -shards 4 -journal-dir /var/lib/deepum
//
// -store points both modes at a durable content-addressed checkpoint
// store: journals then carry 16-byte references instead of checkpoint
// blobs, identical checkpoints dedup across runs (and across shards in
// federation mode), and -scrub-every starts a background scrubber that
// repairs bit rot from a surviving replica or degrades the affected run
// to a cold restart.
//
//	deepum-serve -addr :8080 -journal runs.journal -store ck.store -scrub-every 1m
//
// With -oversubscribe (and a positive -gpu-budget), aggregate demand may
// exceed the budget: the memory arbiter hands every admitted run a
// guaranteed floor plus a revocable burst, revokes bursts under sustained
// pressure, and as a last resort suspends a victim to its checkpoint
// (state "suspended" in GET /runs/{id}) until headroom returns.
//
//	POST /runs              submit a run (RunSpec JSON) -> {"id": N}
//	GET  /runs              list all runs
//	GET  /runs/{id}         one run's snapshot
//	POST /runs/{id}/cancel  request cancellation
//	POST /runs/{id}/resume  force-resume a suspended run (409 otherwise)
//	GET  /healthz           process liveness
//	GET  /readyz            admission readiness (503 while draining)
//	GET  /shards            per-shard status (federation mode)
//
// SIGINT/SIGTERM triggers a graceful drain: admission closes, queued and
// running work finishes (up to -drain-timeout, then runs are cancelled),
// and the journals are closed cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deepum"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "HTTP listen address")
		workers      = flag.Int("workers", 4, "concurrent training runs")
		queue        = flag.Int("queue", 16, "submission queue depth (backpressure bound)")
		gpuBudget    = flag.Int64("gpu-budget", 0, "simulated GPU memory budget in bytes shared by all runs (0 = unlimited)")
		oversub      = flag.Bool("oversubscribe", false, "admit runs past -gpu-budget under the memory arbiter (soft grants, burst revocation, suspend-to-checkpoint) instead of hard quota rejections")
		storeGC      = flag.Float64("store-gc", 0, "compact the checkpoint store when its garbage ratio exceeds this fraction (0 = no automatic GC; single-supervisor mode with -store)")
		journalPath  = flag.String("journal", "", "crash-safe run journal path (empty = no persistence; single-supervisor mode)")
		storePath    = flag.String("store", "", "content-addressed checkpoint store path; journals then carry 16-byte references instead of blobs (empty = inline checkpoints)")
		storeReplica = flag.Int("store-replicas", 2, "frames written per checkpoint blob; 2 lets the scrubber repair bit rot from the surviving twin")
		scrubEvery   = flag.Duration("scrub-every", 0, "background store scrub interval (0 = no background scrubbing; requires -store)")
		shards       = flag.Int("shards", 0, "shard count for federation mode (0 = one supervisor, no federation)")
		journalDir   = flag.String("journal-dir", "", "per-shard journal directory (federation mode; required with -shards)")
		handoffGrace = flag.Duration("handoff-grace", 30*time.Second, "how long a dead shard may answer 503 before rejections become hard failures (0 = forever)")
		watchdog     = flag.Duration("watchdog", 0, "cancel runs with no progress for this long (0 = no watchdog)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on shutdown before runs are cancelled")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "per-request context deadline for API handlers (0 = none)")
		chaosName    = flag.String("chaos", "", "supervisor chaos scenario (empty = none; -chaos list to enumerate)")
		chaosSeed    = flag.Int64("chaos-seed", 1, "seed for chaos injection draws")
	)
	flag.Parse()

	if *chaosName == "list" {
		for _, sc := range deepum.SupervisorChaosScenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Description)
		}
		return
	}
	cfg := deepum.SupervisorConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		GPUMemoryBudget:  *gpuBudget,
		Oversubscribe:    *oversub,
		WatchdogTimeout:  *watchdog,
		JournalPath:      *journalPath,
		ChaosSeed:        *chaosSeed,
		StoreGCThreshold: *storeGC,
	}
	if *oversub && *gpuBudget <= 0 {
		log.Fatalf("deepum-serve: -oversubscribe requires a positive -gpu-budget (the arbiter needs a budget to arbitrate)")
	}
	if *chaosName != "" {
		sc, err := deepum.SupervisorChaosScenarioByName(*chaosName)
		if err != nil {
			log.Fatalf("deepum-serve: %v", err)
		}
		cfg.Chaos = sc
	}
	var handler http.Handler
	var drain func(context.Context) error
	if *shards > 0 {
		if *journalDir == "" {
			log.Fatalf("deepum-serve: federation mode (-shards %d) requires -journal-dir", *shards)
		}
		fed, err := deepum.NewFederation(deepum.FederationOptions{
			Shards:          *shards,
			Supervisor:      cfg,
			JournalDir:      *journalDir,
			StorePath:       *storePath,
			StoreReplicas:   *storeReplica,
			StoreScrubEvery: *scrubEvery,
		})
		if err != nil {
			log.Fatalf("deepum-serve: %v", err)
		}
		for _, sh := range fed.Shards() {
			if sh.Recovered > 0 {
				log.Printf("shard %d journal replay re-admitted %d interrupted run(s)", sh.Ordinal, sh.Recovered)
			}
		}
		handler = newFederationServer(fed, *reqTimeout, *handoffGrace)
		drain = fed.Drain
	} else {
		if *storePath != "" {
			st, stats, err := deepum.OpenCheckpointStore(*storePath, deepum.CheckpointStoreOptions{
				Replicas:   *storeReplica,
				ScrubEvery: *scrubEvery,
				OnScrub: func(rep deepum.StoreScrubReport, err error) {
					if err != nil {
						log.Printf("store scrub: %v", err)
						return
					}
					if rep.Repaired > 0 || len(rep.Lost) > 0 || rep.TornBytes > 0 {
						log.Printf("store scrub: repaired %d frame(s), lost %d key(s), truncated %d torn byte(s)", rep.Repaired, len(rep.Lost), rep.TornBytes)
					}
				},
			})
			if err != nil {
				log.Fatalf("deepum-serve: %v", err)
			}
			if stats.TornBytes > 0 || len(stats.CorruptRegions) > 0 {
				log.Printf("store recovery: %d torn byte(s) truncated, %d corrupt region(s) skipped", stats.TornBytes, len(stats.CorruptRegions))
			}
			cfg.Checkpoints = st
			defer st.Close()
		}
		sup, err := deepum.NewSupervisor(cfg)
		if err != nil {
			log.Fatalf("deepum-serve: %v", err)
		}
		if st := sup.Stats(); st.Recovered > 0 {
			log.Printf("journal replay re-admitted %d interrupted run(s)", st.Recovered)
		}
		handler = newServer(sup, *reqTimeout)
		drain = sup.Drain
	}

	// Connection-level timeouts backstop the per-handler deadline: slowloris
	// headers, dribbled bodies, and stalled response writes all get bounded
	// even when a handler never looks at its context.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if *shards > 0 {
		log.Printf("deepum-serve listening on %s (%d shards, %d workers/shard, queue %d)", *addr, *shards, *workers, *queue)
	} else {
		log.Printf("deepum-serve listening on %s (%d workers, queue %d)", *addr, *workers, *queue)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (budget %v)", sig, *drainTimeout)
	case err := <-errc:
		log.Fatalf("deepum-serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}
