package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepum"
)

// testServer builds the HTTP API over a supervisor with a fake runner so
// handler behavior is tested without simulating training.
func testServer(t *testing.T, cfg deepum.SupervisorConfig, runner deepum.Runner) (*httptest.Server, *deepum.Supervisor) {
	t.Helper()
	cfg.Runner = runner
	cfg.Estimate = func(deepum.RunSpec) (int64, error) { return 1 << 20, nil }
	sup, err := deepum.NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sup, 10*time.Second))
	t.Cleanup(ts.Close)
	return ts, sup
}

func instant() deepum.Runner {
	return deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		return deepum.RunOutcome{Status: string(deepum.RunCompleted), Iterations: spec.Iterations}, nil
	})
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServeSubmitStatusCancelList(t *testing.T) {
	block := make(chan struct{})
	runner := deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		if spec.Seed == 99 { // the run the test cancels
			select {
			case <-block:
			case <-ctx.Done():
				return deepum.RunOutcome{Status: string(deepum.RunCancelled)}, nil
			}
		}
		return deepum.RunOutcome{Status: string(deepum.RunCompleted), Iterations: spec.Iterations}, nil
	})
	ts, sup := testServer(t, deepum.SupervisorConfig{Workers: 2}, runner)
	defer close(block)

	// Submit -> 202 with an ID.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"iterations":3,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]uint64](t, resp)["id"]
	if id == 0 {
		t.Fatal("submit returned no run ID")
	}
	if _, err := sup.Wait(id); err != nil {
		t.Fatal(err)
	}

	// GET /runs/{id} -> completed snapshot.
	get, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", get.StatusCode)
	}
	info := decode[deepum.RunInfo](t, get)
	if info.ID != id || info.State != deepum.RunCompleted {
		t.Fatalf("get snapshot = id %d state %s", info.ID, info.State)
	}
	if info.Outcome == nil || info.Outcome.Iterations != 3 {
		t.Fatalf("snapshot outcome = %+v", info.Outcome)
	}

	// Cancel a hung run -> 200, then it goes terminal as cancelled.
	resp = postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"seed":99}`)
	blocked := decode[map[string]uint64](t, resp)["id"]
	waitRunning(t, sup, blocked)
	cresp := postJSON(t, fmt.Sprintf("%s/runs/%d/cancel", ts.URL, blocked), "")
	if cresp_code := cresp.StatusCode; cresp_code != http.StatusOK {
		t.Fatalf("cancel: status %d", cresp_code)
	}
	cinfo, err := sup.Wait(blocked)
	if err != nil {
		t.Fatal(err)
	}
	if cinfo.State != deepum.RunCancelled {
		t.Fatalf("cancelled run state = %s", cinfo.State)
	}

	// Cancel again -> 409; unknown ID -> 404; junk ID -> 400.
	if code := postJSON(t, fmt.Sprintf("%s/runs/%d/cancel", ts.URL, blocked), "").StatusCode; code != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", code)
	}
	if code := postJSON(t, ts.URL+"/runs/12345/cancel", "").StatusCode; code != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/runs/banana/cancel", "").StatusCode; code != http.StatusBadRequest {
		t.Fatalf("cancel junk id: status %d, want 400", code)
	}

	// GET /runs lists both.
	lresp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if runs := decode[[]deepum.RunInfo](t, lresp); len(runs) != 2 {
		t.Fatalf("list returned %d runs, want 2", len(runs))
	}
}

func TestServeAdmissionStatusCodes(t *testing.T) {
	gate := make(chan struct{})
	runner := deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return deepum.RunOutcome{Status: string(deepum.RunCompleted)}, nil
	})
	ts, sup := testServer(t, deepum.SupervisorConfig{
		Workers:         1,
		QueueDepth:      1,
		GPUMemoryBudget: 4 << 20,
		PerRunQuota:     2 << 20,
	}, runner)
	defer close(gate)

	// Spec over the per-run quota -> 422, never admissible.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"memory_demand":16777216}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("per-run quota violation: status %d, want 422", resp.StatusCode)
	}

	// Fill the worker + queue, then the next submit -> 429 with Retry-After.
	okCodes := 0
	var throttled *http.Response
	for i := 0; i < 8; i++ {
		r := postJSON(t, ts.URL+"/runs", fmt.Sprintf(`{"model":"bert-base","batch":8,"seed":%d}`, i))
		if r.StatusCode == http.StatusAccepted {
			okCodes++
			continue
		}
		throttled = r
		break
	}
	if throttled == nil {
		t.Fatalf("no backpressure after %d accepted submissions", okCodes)
	}
	if throttled.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure: status %d, want 429", throttled.StatusCode)
	}
	if throttled.Header.Get("Retry-After") == "" {
		t.Fatal("429 rejection carries no Retry-After header")
	}

	// Malformed body -> 400.
	if code := postJSON(t, ts.URL+"/runs", `{"model": nope`).StatusCode; code != http.StatusBadRequest {
		t.Fatalf("malformed submit: status %d, want 400", code)
	}

	// Drain: readyz flips to 503 and submits are refused with 503.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sup.Drain(ctx)
	}()
	waitNotAccepting(t, sup)
	if r, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else if r.Body.Close(); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", r.StatusCode)
	} else if r.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz 503 carries no Retry-After header")
	}
	drained := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", drained.StatusCode)
	}
	if drained.Header.Get("Retry-After") == "" {
		t.Fatal("draining submit 503 carries no Retry-After header")
	}
}

// TestWithDeadline: the middleware installs a context deadline on every
// request it wraps, and a zero timeout disables it without wrapping.
func TestWithDeadline(t *testing.T) {
	var deadlineSet bool
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, deadlineSet = r.Context().Deadline()
	})
	withDeadline(50*time.Millisecond, probe).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !deadlineSet {
		t.Fatal("handler context carries no deadline under withDeadline")
	}
	withDeadline(0, probe).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if deadlineSet {
		t.Fatal("zero timeout must not install a deadline")
	}
}

func TestServeHealthz(t *testing.T) {
	ts, _ := testServer(t, deepum.SupervisorConfig{Workers: 1}, instant())
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", r.StatusCode)
	}
}

func TestServeMetricsScrape(t *testing.T) {
	ts, sup := testServer(t, deepum.SupervisorConfig{Workers: 1}, instant())

	// Submit one run to completion so the counters have moved.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"iterations":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if _, err := sup.Wait(decode[map[string]uint64](t, resp)["id"]); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, r.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE deepum_supervisor_submissions_total counter",
		`deepum_supervisor_submissions_total{result="accepted"} 1`,
		`deepum_supervisor_runs_finished_total{state="completed"} 1`,
		// Pre-registered at startup: terminal states nothing reached yet
		// still scrape at zero.
		`deepum_supervisor_runs_finished_total{state="failed"} 0`,
		`deepum_supervisor_runs_finished_total{state="cancelled"} 0`,
		"# TYPE deepum_supervisor_runs gauge",
		"deepum_supervisor_run_seconds_count 1",
		`deepum_http_requests_total{route="POST /runs"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full body:\n%s", body)
	}
}

func waitRunning(t *testing.T, sup *deepum.Supervisor, id uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := sup.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == deepum.RunRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %d never started", id)
}

func waitNotAccepting(t *testing.T, sup *deepum.Supervisor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !sup.Accepting() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("supervisor still accepting after drain started")
}
