package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"deepum"
)

// testServer builds the HTTP API over a supervisor with a fake runner so
// handler behavior is tested without simulating training.
func testServer(t *testing.T, cfg deepum.SupervisorConfig, runner deepum.Runner) (*httptest.Server, *deepum.Supervisor) {
	t.Helper()
	cfg.Runner = runner
	cfg.Estimate = func(deepum.RunSpec) (int64, error) { return 1 << 20, nil }
	sup, err := deepum.NewSupervisor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(sup, 10*time.Second))
	t.Cleanup(ts.Close)
	return ts, sup
}

func instant() deepum.Runner {
	return deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		return deepum.RunOutcome{Status: string(deepum.RunCompleted), Iterations: spec.Iterations}, nil
	})
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServeSubmitStatusCancelList(t *testing.T) {
	block := make(chan struct{})
	runner := deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		if spec.Seed == 99 { // the run the test cancels
			select {
			case <-block:
			case <-ctx.Done():
				return deepum.RunOutcome{Status: string(deepum.RunCancelled)}, nil
			}
		}
		return deepum.RunOutcome{Status: string(deepum.RunCompleted), Iterations: spec.Iterations}, nil
	})
	ts, sup := testServer(t, deepum.SupervisorConfig{Workers: 2}, runner)
	defer close(block)

	// Submit -> 202 with an ID.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"iterations":3,"seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := decode[map[string]uint64](t, resp)["id"]
	if id == 0 {
		t.Fatal("submit returned no run ID")
	}
	if _, err := sup.Wait(id); err != nil {
		t.Fatal(err)
	}

	// GET /runs/{id} -> completed snapshot.
	get, err := http.Get(fmt.Sprintf("%s/runs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", get.StatusCode)
	}
	info := decode[deepum.RunInfo](t, get)
	if info.ID != id || info.State != deepum.RunCompleted {
		t.Fatalf("get snapshot = id %d state %s", info.ID, info.State)
	}
	if info.Outcome == nil || info.Outcome.Iterations != 3 {
		t.Fatalf("snapshot outcome = %+v", info.Outcome)
	}

	// Cancel a hung run -> 200, then it goes terminal as cancelled.
	resp = postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"seed":99}`)
	blocked := decode[map[string]uint64](t, resp)["id"]
	waitRunning(t, sup, blocked)
	cresp := postJSON(t, fmt.Sprintf("%s/runs/%d/cancel", ts.URL, blocked), "")
	if cresp_code := cresp.StatusCode; cresp_code != http.StatusOK {
		t.Fatalf("cancel: status %d", cresp_code)
	}
	cinfo, err := sup.Wait(blocked)
	if err != nil {
		t.Fatal(err)
	}
	if cinfo.State != deepum.RunCancelled {
		t.Fatalf("cancelled run state = %s", cinfo.State)
	}

	// Cancel again -> 409; unknown ID -> 404; junk ID -> 400.
	if code := postJSON(t, fmt.Sprintf("%s/runs/%d/cancel", ts.URL, blocked), "").StatusCode; code != http.StatusConflict {
		t.Fatalf("re-cancel: status %d, want 409", code)
	}
	if code := postJSON(t, ts.URL+"/runs/12345/cancel", "").StatusCode; code != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", code)
	}
	if code := postJSON(t, ts.URL+"/runs/banana/cancel", "").StatusCode; code != http.StatusBadRequest {
		t.Fatalf("cancel junk id: status %d, want 400", code)
	}

	// GET /runs lists both.
	lresp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if runs := decode[[]deepum.RunInfo](t, lresp); len(runs) != 2 {
		t.Fatalf("list returned %d runs, want 2", len(runs))
	}
}

func TestServeAdmissionStatusCodes(t *testing.T) {
	gate := make(chan struct{})
	runner := deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return deepum.RunOutcome{Status: string(deepum.RunCompleted)}, nil
	})
	ts, sup := testServer(t, deepum.SupervisorConfig{
		Workers:         1,
		QueueDepth:      1,
		GPUMemoryBudget: 4 << 20,
		PerRunQuota:     2 << 20,
	}, runner)
	defer close(gate)

	// Spec over the per-run quota -> 422, never admissible.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"memory_demand":16777216}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("per-run quota violation: status %d, want 422", resp.StatusCode)
	}

	// Fill the worker + queue, then the next submit -> 429 with Retry-After.
	okCodes := 0
	var throttled *http.Response
	for i := 0; i < 8; i++ {
		r := postJSON(t, ts.URL+"/runs", fmt.Sprintf(`{"model":"bert-base","batch":8,"seed":%d}`, i))
		if r.StatusCode == http.StatusAccepted {
			okCodes++
			continue
		}
		throttled = r
		break
	}
	if throttled == nil {
		t.Fatalf("no backpressure after %d accepted submissions", okCodes)
	}
	if throttled.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure: status %d, want 429", throttled.StatusCode)
	}
	if throttled.Header.Get("Retry-After") == "" {
		t.Fatal("429 rejection carries no Retry-After header")
	}

	// Malformed body -> 400.
	if code := postJSON(t, ts.URL+"/runs", `{"model": nope`).StatusCode; code != http.StatusBadRequest {
		t.Fatalf("malformed submit: status %d, want 400", code)
	}

	// Drain: readyz flips to 503 and submits are refused with 503.
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		sup.Drain(ctx)
	}()
	waitNotAccepting(t, sup)
	if r, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else if r.Body.Close(); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", r.StatusCode)
	} else if r.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz 503 carries no Retry-After header")
	}
	drained := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", drained.StatusCode)
	}
	if drained.Header.Get("Retry-After") == "" {
		t.Fatal("draining submit 503 carries no Retry-After header")
	}
}

// TestWithDeadline: the middleware installs a context deadline on every
// request it wraps, and a zero timeout disables it without wrapping.
func TestWithDeadline(t *testing.T) {
	var deadlineSet bool
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, deadlineSet = r.Context().Deadline()
	})
	withDeadline(50*time.Millisecond, probe).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !deadlineSet {
		t.Fatal("handler context carries no deadline under withDeadline")
	}
	withDeadline(0, probe).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if deadlineSet {
		t.Fatal("zero timeout must not install a deadline")
	}
}

func TestServeHealthz(t *testing.T) {
	ts, _ := testServer(t, deepum.SupervisorConfig{Workers: 1}, instant())
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", r.StatusCode)
	}
}

func TestServeMetricsScrape(t *testing.T) {
	ts, sup := testServer(t, deepum.SupervisorConfig{Workers: 1}, instant())

	// Submit one run to completion so the counters have moved.
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8,"iterations":2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if _, err := sup.Wait(decode[map[string]uint64](t, resp)["id"]); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type = %q", ct)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, r.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE deepum_supervisor_submissions_total counter",
		`deepum_supervisor_submissions_total{result="accepted"} 1`,
		`deepum_supervisor_runs_finished_total{state="completed"} 1`,
		// Pre-registered at startup: terminal states nothing reached yet
		// still scrape at zero.
		`deepum_supervisor_runs_finished_total{state="failed"} 0`,
		`deepum_supervisor_runs_finished_total{state="cancelled"} 0`,
		"# TYPE deepum_supervisor_runs gauge",
		"deepum_supervisor_run_seconds_count 1",
		`deepum_http_requests_total{route="POST /runs"} 1`,
		// Admission retry-safety family: pre-registered, so a scrape before
		// any shed or dedup event still shows the series at zero.
		"# TYPE deepum_admission_shed_total counter",
		"deepum_admission_shed_total 0",
		"# TYPE deepum_admission_dedup_hits_total counter",
		"deepum_admission_dedup_hits_total 0",
		// The completed run was a best-effort (no deadline) submission, so
		// its queue wait landed in that class; the deadline class scrapes
		// at zero.
		`deepum_admission_queue_wait_seconds_count{class="best_effort"} 1`,
		`deepum_admission_queue_wait_seconds_count{class="deadline"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full body:\n%s", body)
	}
}

// TestServeIdempotencyKey: a retried POST /runs carrying the same
// Idempotency-Key resolves to the original run — 200 (not 202), the same
// ID, and the run's current state (outcome included once terminal) in the
// body. Malformed keys and deadlines are clean 400s.
func TestServeIdempotencyKey(t *testing.T) {
	ts, sup := testServer(t, deepum.SupervisorConfig{Workers: 1}, instant())

	req := func(key, deadline, body string) *http.Response {
		t.Helper()
		r, err := http.NewRequest("POST", ts.URL+"/runs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r.Header.Set("Content-Type", "application/json")
		if key != "" {
			r.Header.Set("Idempotency-Key", key)
		}
		if deadline != "" {
			r.Header.Set("X-Deadline", deadline)
		}
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	spec := `{"model":"bert-base","batch":8,"iterations":2,"seed":7}`
	first := req("retry-test-1", "", spec)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first keyed submit: status %d, want 202", first.StatusCode)
	}
	id := decode[map[string]uint64](t, first)["id"]
	if _, err := sup.Wait(id); err != nil {
		t.Fatal(err)
	}

	// Retry after completion: same key, same ID, original outcome attached.
	retry := req("retry-test-1", "", spec)
	if retry.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit: status %d, want 200", retry.StatusCode)
	}
	body := decode[map[string]json.RawMessage](t, retry)
	var gotID uint64
	if err := json.Unmarshal(body["id"], &gotID); err != nil || gotID != id {
		t.Fatalf("replayed submit id = %s (err %v), want %d", body["id"], err, id)
	}
	if string(body["deduplicated"]) != "true" {
		t.Fatalf("replayed submit body = %v, want deduplicated true", body)
	}
	var info deepum.RunInfo
	if err := json.Unmarshal(body["run"], &info); err != nil {
		t.Fatal(err)
	}
	if info.State != deepum.RunCompleted || info.Outcome == nil {
		t.Fatalf("replayed run = state %s outcome %v, want completed with outcome", info.State, info.Outcome)
	}

	// A different key admits a fresh run.
	second := req("retry-test-2", "", spec)
	if second.StatusCode != http.StatusAccepted {
		t.Fatalf("fresh keyed submit: status %d, want 202", second.StatusCode)
	}
	if id2 := decode[map[string]uint64](t, second)["id"]; id2 == id {
		t.Fatal("distinct keys resolved to the same run")
	}

	// Oversized key -> 400; malformed deadline -> 400; negative -> 400.
	if code := req(strings.Repeat("k", deepum.MaxIdempotencyKeyLen+1), "", spec).StatusCode; code != http.StatusBadRequest {
		t.Fatalf("oversized key: status %d, want 400", code)
	}
	if code := req("", "soon", spec).StatusCode; code != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400", code)
	}
	if code := req("", "-3s", spec).StatusCode; code != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", code)
	}
	// A generous deadline against an idle supervisor admits normally.
	if code := req("", "30s", spec).StatusCode; code != http.StatusAccepted {
		t.Fatalf("deadline submit: status %d, want 202", code)
	}
}

// fakeBackend scripts backend responses so handler mappings can be tested
// without arranging real supervisor state.
type fakeBackend struct {
	submitErr error
	hint      time.Duration
	reg       *deepum.MetricsRegistry
}

func (f *fakeBackend) Submit(deepum.RunSpec) (uint64, error) { return 1, f.submitErr }
func (f *fakeBackend) SubmitWithOptions(deepum.RunSpec, deepum.SubmitOptions) (uint64, bool, error) {
	return 1, false, f.submitErr
}
func (f *fakeBackend) Get(uint64) (deepum.RunInfo, error) { return deepum.RunInfo{ID: 1}, nil }
func (f *fakeBackend) Cancel(uint64) error                { return nil }
func (f *fakeBackend) Resume(uint64) error                { return nil }
func (f *fakeBackend) List() []deepum.RunInfo             { return nil }
func (f *fakeBackend) Accepting() bool                    { return true }
func (f *fakeBackend) RetryAfterHint() time.Duration      { return f.hint }
func (f *fakeBackend) Metrics() *deepum.MetricsRegistry   { return f.reg }

func newFakeServer(t *testing.T, fb *fakeBackend) *httptest.Server {
	t.Helper()
	fb.reg = deepum.NewMetricsRegistry()
	srv := &server{b: fb, stats: func() any { return nil }}
	ts := httptest.NewServer(buildServer(srv, 10*time.Second))
	t.Cleanup(ts.Close)
	return ts
}

// TestServeShedResponse: a *ShedError maps to 503 with the shedder's own
// jittered Retry-After on the wire, distinct from queue-full's 429.
func TestServeShedResponse(t *testing.T) {
	ts := newFakeServer(t, &fakeBackend{submitErr: &deepum.ShedError{
		Deadline:      200 * time.Millisecond,
		PredictedWait: 2 * time.Second,
		RetryAfter:    7 * time.Second,
	}})
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("shed Retry-After = %q, want \"7\" (the error's own hint)", ra)
	}
	body := decode[map[string]any](t, resp)
	if body["retryable"] != true {
		t.Fatalf("shed body = %v, want retryable true", body)
	}
}

// TestServeComputedRetryAfter: rejection paths with no typed hint of their
// own (queue-full without an observation, drain) price Retry-After from the
// backend's drain model instead of a hardcoded constant.
func TestServeComputedRetryAfter(t *testing.T) {
	ts := newFakeServer(t, &fakeBackend{
		submitErr: &deepum.QueueFullError{Depth: 4, RetryAfter: 3 * time.Second},
		hint:      9 * time.Second,
	})
	resp := postJSON(t, ts.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("queue-full Retry-After = %q, want \"3\"", ra)
	}

	drain := newFakeServer(t, &fakeBackend{submitErr: deepum.ErrShuttingDown, hint: 9 * time.Second})
	resp = postJSON(t, drain.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "9" {
		t.Fatalf("drain Retry-After = %q, want the backend hint \"9\"", ra)
	}

	// A zero hint still floors at 1 second — never "retry immediately".
	floor := newFakeServer(t, &fakeBackend{submitErr: deepum.ErrShuttingDown})
	resp = postJSON(t, floor.URL+"/runs", `{"model":"bert-base","batch":8}`)
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("floored Retry-After = %q, want \"1\"", ra)
	}
}

func waitRunning(t *testing.T, sup *deepum.Supervisor, id uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		info, err := sup.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == deepum.RunRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %d never started", id)
}

func waitNotAccepting(t *testing.T, sup *deepum.Supervisor) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !sup.Accepting() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("supervisor still accepting after drain started")
}
