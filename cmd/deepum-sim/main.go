// Command deepum-sim runs a single simulated training run of one model under
// one memory-management system and prints its measurements.
//
//	deepum-sim -model bert-large -batch 16 -system deepum
//	deepum-sim -model resnet152 -batch 1280 -system um -scale 16
//	deepum-sim -model gpt2-xl -batch 5 -system deepum -degree 64
//	deepum-sim -model bert-large -batch 16 -checkpoint warm.ckpt
//	deepum-sim -model bert-large -batch 16 -resume warm.ckpt -warmup 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"deepum"
)

func main() {
	var (
		model   = flag.String("model", "bert-large", "model name (see -models)")
		dataset = flag.String("dataset", "", "dataset variant (cola, cifar10, ...)")
		batch   = flag.Int64("batch", 16, "batch size")
		system  = flag.String("system", "deepum", "memory system (see -systems)")
		scale   = flag.Int64("scale", 8, "size divisor: 1 = paper-sized")
		iters   = flag.Int("iters", 4, "measured iterations")
		warmup  = flag.Int("warmup", 3, "warmup iterations")
		degree  = flag.Int("degree", 32, "prefetch degree N (deepum only)")
		gpu16   = flag.Bool("v100-16g", false, "use the 16 GiB V100 configuration")
		seed    = flag.Int64("seed", 1, "irregular-access seed")
		chaosSc = flag.String("chaos", "", "fault-injection scenario (see -chaos-list)")
		chaosSd = flag.Int64("chaos-seed", 0, "injection seed (0 reuses -seed)")
		healthF = flag.Bool("health", false, "enable the closed-loop health controller (degradation ladder; UM-side systems only)")
		timeout = flag.Duration("timeout", 0, "wall-clock bound; an expired run returns its partial measurements")
		deadln  = flag.Duration("deadline", 0, "virtual-time bound (deterministic under a fixed seed)")
		ckpt    = flag.String("checkpoint", "", "write the learned correlation tables here after the run (deepum only)")
		trace   = flag.String("trace", "", "write a Chrome trace-event JSON of the run here (open in Perfetto; UM-side systems only)")
		resume  = flag.String("resume", "", "seed the driver from a checkpoint written by -checkpoint (deepum only)")
		policyF = flag.String("policy", "", "prefetch policy (see -policy-list; empty = correlation)")
		listM   = flag.Bool("models", false, "list model names and exit")
		listS   = flag.Bool("systems", false, "list system names and exit")
		listC   = flag.Bool("chaos-list", false, "list chaos scenarios and exit")
		listP   = flag.Bool("policy-list", false, "list prefetch policies and exit")
	)
	flag.Parse()

	if *listM {
		for _, m := range deepum.Models() {
			fmt.Println(m)
		}
		return
	}
	if *listS {
		for _, s := range deepum.Systems() {
			fmt.Println(s)
		}
		return
	}
	if *listC {
		for _, sc := range deepum.ChaosScenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return
	}
	if *listP {
		for _, p := range deepum.Policies() {
			fmt.Printf("%-14s %s\n", p.Name, p.Summary)
		}
		return
	}

	cfg := deepum.DefaultConfig()
	cfg.System = deepum.System(*system)
	cfg.Scale = *scale
	cfg.Iterations = *iters
	cfg.Warmup = *warmup
	cfg.Seed = *seed
	cfg.Driver.Degree = *degree
	cfg.Chaos = *chaosSc
	cfg.ChaosSeed = *chaosSd
	cfg.Policy = *policyF
	cfg.Deadline = deepum.Duration(*deadln)
	if *gpu16 {
		cfg.Machine = deepum.V100_16GB()
	}
	if *resume != "" {
		f, err := os.Open(*resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		st, err := deepum.LoadPolicyCheckpoint(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "resume %s: %v\n", *resume, err)
			os.Exit(1)
		}
		cfg.ResumeState = st
	}
	if *trace != "" {
		cfg.Observe = deepum.NewObserver(deepum.TraceOptions{})
	}
	if *healthF {
		cfg.Health = &deepum.HealthOptions{}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	res, err := deepum.TrainContext(ctx, deepum.Workload{Model: *model, Dataset: *dataset, Batch: *batch}, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *ckpt != "" {
		st := deepum.PolicyCheckpointOf(res)
		if st == nil {
			fmt.Fprintf(os.Stderr, "-checkpoint: system %s has no prefetch-policy state to save\n", res.System)
			os.Exit(1)
		}
		f, err := os.Create(*ckpt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := deepum.SavePolicyCheckpoint(f, st); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "checkpoint %s: %v\n", *ckpt, err)
			os.Exit(1)
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := cfg.Observe.WriteChromeTrace(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace %s: %v\n", *trace, err)
			os.Exit(1)
		}
	}
	prog, err := deepum.BuildProgram(deepum.Workload{Model: *model, Dataset: *dataset, Batch: *batch}, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("model      %s (dataset %q, batch %d, scale 1/%d)\n", *model, *dataset, *batch, *scale)
	fmt.Printf("system     %s\n", res.System)
	if res.Status != deepum.StatusCompleted {
		fmt.Printf("status     %s (%d/%d measured iterations; %d queued prefetches discarded)\n",
			res.Status, res.Iterations, *iters, res.DiscardedPrefetches)
		if res.Invariant != nil {
			fmt.Printf("invariant  %v\n", res.Invariant)
		}
	}
	if res.Breaker.EverOpened {
		fmt.Printf("breaker    opened %d time(s) at %d consecutive prefetch failures; %d prefetches short-circuited; final state %s\n",
			res.Breaker.Opens, res.Breaker.Threshold, res.Breaker.ShortCircuited, res.Breaker.State)
	}
	if *resume != "" {
		fmt.Printf("resume     %s policy state restored from %s\n", res.Policy, *resume)
	}
	if res.Health != nil {
		fmt.Printf("health     final %s, peak %s, %d ladder transition(s)\n",
			res.Health.Level, res.Health.MaxLevel, res.Health.Transitions)
	}
	fmt.Printf("footprint  %.2f GiB (scaled), %d kernels/iteration\n",
		float64(prog.FootprintBytes())/float64(deepum.GiB), prog.Kernels())
	fmt.Printf("iteration  %v (mean over %d measured iterations)\n", res.IterationTime, res.Iterations)
	fmt.Printf("100 iters  %.1f s (extrapolated)\n", (100 * res.IterationTime).Seconds())
	if res.PageFaultsPerIteration > 0 || res.System == deepum.SystemDeepUM || res.System == deepum.SystemUM {
		fmt.Printf("faults     %d pages/iteration\n", res.PageFaultsPerIteration)
	}
	fmt.Printf("traffic    %.2f GiB H2D, %.2f GiB D2H\n",
		float64(res.TrafficH2D)/float64(deepum.GiB), float64(res.TrafficD2H)/float64(deepum.GiB))
	fmt.Printf("energy     %.1f J (measured window)\n", res.EnergyJoules)
	if res.Policy != "" {
		fmt.Printf("policy     %s (%.1f MiB state, %d prefetches issued, %d useful)\n",
			res.Policy, float64(res.CorrelationTableBytes)/float64(deepum.MiB), res.PrefetchIssued, res.PrefetchUseful)
	}
	if *ckpt != "" {
		fmt.Printf("checkpoint %s policy state saved to %s\n", res.Policy, *ckpt)
	}
	if *trace != "" {
		fmt.Printf("trace      %d events written to %s (%d overwritten)\n",
			cfg.Observe.EventCount(), *trace, cfg.Observe.Dropped())
	}
	if *chaosSc != "" && *chaosSc != "none" {
		cs := res.ChaosStats
		fmt.Printf("chaos      %s: %d transfer failures, %d demand retries, %d prefetch retries (%d gave up)\n",
			*chaosSc, cs.TransferFailures, cs.DemandRetries, cs.PrefetchRetries, cs.PrefetchGiveUps)
		fmt.Printf("           %d batch caps, %d dropped + %d duped notifies, %d migrator stalls, %d pressure windows\n",
			cs.BatchCapHits, cs.DroppedNotifies, cs.DupNotifies, cs.MigratorStalls, cs.PressureWindows)
	}
}
