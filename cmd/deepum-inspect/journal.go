package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"deepum/internal/supervisor/journal"
)

// runJournal implements `deepum-inspect journal <path>`: dump and verify a
// supervisor run journal without opening it for writing — record counts by
// type, a per-run lifecycle summary, and integrity findings (CRC failures,
// torn-tail offset). Exit status 0 means the file parsed cleanly to EOF;
// 2 means a torn tail or CRC failure was found (the intact prefix is still
// reported — that prefix is exactly what a restarted supervisor replays).
func runJournal(args []string) {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	verbose := fs.Bool("v", false, "dump every record, not just the summary")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: deepum-inspect journal [-v] <path>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(1)
	}
	path := fs.Arg(0)

	recs, stats, err := journal.ReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepum-inspect: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("== journal %s ==\n", path)
	fmt.Printf("records      %d intact\n", stats.Records)
	for _, t := range []journal.RecordType{journal.RecSubmitted, journal.RecStarted, journal.RecCheckpointed, journal.RecFinished} {
		fmt.Printf("  %-12s %d\n", t, stats.ByType[t])
	}
	fmt.Printf("crc failures %d\n", stats.CRCFailures)
	if stats.TornOffset >= 0 {
		what := "unreadable frame"
		if stats.TruncatedFrame {
			what = "torn tail (truncated frame)"
		}
		fmt.Printf("integrity    %s at byte offset %d; records after it are lost\n", what, stats.TornOffset)
	} else {
		fmt.Printf("integrity    clean to EOF\n")
	}

	// Per-run lifecycle: last record type wins as the run's state.
	type runSummary struct {
		id          uint64
		submitted   bool
		attempts    int
		checkpoints int
		finished    bool
		state       string
	}
	runs := map[uint64]*runSummary{}
	var order []uint64
	for _, r := range recs {
		rs := runs[r.RunID]
		if rs == nil {
			rs = &runSummary{id: r.RunID}
			runs[r.RunID] = rs
			order = append(order, r.RunID)
		}
		switch r.Type {
		case journal.RecSubmitted:
			rs.submitted = true
		case journal.RecStarted:
			rs.attempts++
		case journal.RecCheckpointed:
			if len(r.Data) > 0 {
				rs.checkpoints++
			}
		case journal.RecFinished:
			rs.finished = true
			// The finish payload is JSON with a "state" field; stay
			// tolerant of records this build cannot parse.
			var fin struct {
				State string `json:"state"`
			}
			if json.Unmarshal(r.Data, &fin) == nil && fin.State != "" {
				rs.state = fin.State
			} else {
				rs.state = "finished"
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("\n%-8s %-10s %-8s %-11s %s\n", "run", "submitted", "starts", "checkpoints", "state")
	interrupted := 0
	for _, id := range order {
		rs := runs[id]
		state := rs.state
		if !rs.finished {
			state = "interrupted (would resume on restart)"
			interrupted++
		}
		fmt.Printf("%-8d %-10v %-8d %-11d %s\n", rs.id, rs.submitted, rs.attempts, rs.checkpoints, state)
	}
	fmt.Printf("\n%d run(s), %d interrupted\n", len(order), interrupted)

	if *verbose {
		fmt.Println()
		for i, r := range recs {
			fmt.Printf("%6d  %-12s run=%d bytes=%d\n", i, r.Type, r.RunID, len(r.Data))
		}
	}
	if stats.TornOffset >= 0 || stats.CRCFailures > 0 {
		os.Exit(2)
	}
}
