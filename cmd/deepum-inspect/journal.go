package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"deepum/internal/supervisor/journal"
)

// runJournal implements `deepum-inspect journal <path>`: dump and verify a
// supervisor run journal without opening it for writing — record counts by
// type, a per-run lifecycle summary, and integrity findings (CRC failures,
// torn-tail offset). Exit status 0 means the file parsed cleanly to EOF;
// 2 means a torn tail or CRC failure was found (the intact prefix is still
// reported — that prefix is exactly what a restarted supervisor replays).
//
// With -audit and two or more journal paths it instead cross-checks a shard
// federation's journals (see auditJournals): every run must live on exactly
// one live shard; exit status 2 reports orphaned or duplicated runs.
func runJournal(args []string) {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	verbose := fs.Bool("v", false, "dump every record, not just the summary")
	audit := fs.Bool("audit", false, "cross-shard audit over several journals (*.adopted = retired dead shard)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: deepum-inspect journal [-v] <path>")
		fmt.Fprintln(os.Stderr, "       deepum-inspect journal -audit <path>...")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if *audit {
		if fs.NArg() < 1 {
			fs.Usage()
			os.Exit(1)
		}
		auditJournals(fs.Args())
		return
	}
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(1)
	}
	path := fs.Arg(0)

	recs, stats, err := journal.ReplayFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepum-inspect: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("== journal %s ==\n", path)
	fmt.Printf("records      %d intact\n", stats.Records)
	for _, t := range []journal.RecordType{journal.RecSubmitted, journal.RecStarted, journal.RecCheckpointed, journal.RecFinished, journal.RecAdmissionKey} {
		fmt.Printf("  %-12s %d\n", t, stats.ByType[t])
	}
	fmt.Printf("crc failures %d\n", stats.CRCFailures)
	if stats.TornOffset >= 0 {
		what := "unreadable frame"
		if stats.TruncatedFrame {
			what = "torn tail (truncated frame)"
		}
		fmt.Printf("integrity    %s at byte offset %d; records after it are lost\n", what, stats.TornOffset)
	} else {
		fmt.Printf("integrity    clean to EOF\n")
	}

	// Per-run lifecycle: last record type wins as the run's state.
	type runSummary struct {
		id          uint64
		key         string
		submitted   bool
		attempts    int
		checkpoints int
		finished    bool
		state       string
	}
	runs := map[uint64]*runSummary{}
	var order []uint64
	for _, r := range recs {
		rs := runs[r.RunID]
		if rs == nil {
			rs = &runSummary{id: r.RunID}
			runs[r.RunID] = rs
			order = append(order, r.RunID)
		}
		switch r.Type {
		case journal.RecAdmissionKey:
			rs.key = string(r.Data)
		case journal.RecSubmitted:
			rs.submitted = true
		case journal.RecStarted:
			rs.attempts++
		case journal.RecCheckpointed:
			if len(r.Data) > 0 {
				rs.checkpoints++
			}
		case journal.RecFinished:
			rs.finished = true
			// The finish payload is JSON with a "state" field; stay
			// tolerant of records this build cannot parse.
			var fin struct {
				State string `json:"state"`
			}
			if json.Unmarshal(r.Data, &fin) == nil && fin.State != "" {
				rs.state = fin.State
			} else {
				rs.state = "finished"
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("\n%-8s %-10s %-8s %-11s %-22s %s\n", "run", "submitted", "starts", "checkpoints", "key", "state")
	interrupted, keyed := 0, 0
	for _, id := range order {
		rs := runs[id]
		state := rs.state
		if !rs.finished {
			state = "interrupted (would resume on restart)"
			interrupted++
		}
		key := "-"
		if rs.key != "" {
			keyed++
			key = rs.key
			if len(key) > 20 {
				key = key[:17] + "..."
			}
		}
		fmt.Printf("%-8d %-10v %-8d %-11d %-22s %s\n", rs.id, rs.submitted, rs.attempts, rs.checkpoints, key, state)
	}
	fmt.Printf("\n%d run(s), %d interrupted, %d keyed\n", len(order), interrupted, keyed)

	if *verbose {
		fmt.Println()
		for i, r := range recs {
			fmt.Printf("%6d  %-12s run=%d bytes=%d\n", i, r.Type, r.RunID, len(r.Data))
		}
	}
	if stats.TornOffset >= 0 || stats.CRCFailures > 0 {
		os.Exit(2)
	}
}

// auditJournals cross-checks a shard federation's journals after a failover
// drill. Paths ending in .adopted are retired journals of dead shards (the
// handoff's on-disk commit point renames them); everything else is a live
// shard's journal. The invariant under audit is the federation's no-loss /
// no-duplication contract: every run ID seen anywhere — including on a dead
// shard — must appear on exactly one live shard. Zero live copies means the
// handoff orphaned the run; two or more means it was adopted twice.
//
// The audit also cross-checks admission keys: a key journaled against two
// different run IDs anywhere in the set is a duplicated admission — a
// retry that should have deduped created a second run instead. (The same
// key appearing in a dead shard's retired journal and its adopter's is
// fine, as long as both name the same run.)
//
// Exit status: 0 clean; 2 for orphaned or duplicated runs, split admission
// keys, or for journals whose integrity findings (torn tail, CRC failure)
// mean records may be missing and the audit cannot vouch for the set it
// read.
func auditJournals(paths []string) {
	type shardFile struct {
		path  string
		live  bool
		ids   map[uint64]bool
		dirty bool
	}
	files := make([]*shardFile, 0, len(paths))
	liveOn := map[uint64][]string{} // run ID -> live journals holding it
	every := map[uint64]bool{}
	keyTo := map[string]map[uint64]bool{} // admission key -> distinct run IDs
	exit := 0
	for _, path := range paths {
		recs, stats, err := journal.ReplayFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepum-inspect: %v\n", err)
			os.Exit(1)
		}
		sf := &shardFile{
			path:  path,
			live:  !strings.HasSuffix(path, ".adopted"),
			ids:   map[uint64]bool{},
			dirty: stats.TornOffset >= 0 || stats.CRCFailures > 0,
		}
		for _, r := range recs {
			sf.ids[r.RunID] = true
			every[r.RunID] = true
			if r.Type == journal.RecAdmissionKey {
				key := string(r.Data)
				if keyTo[key] == nil {
					keyTo[key] = map[uint64]bool{}
				}
				keyTo[key][r.RunID] = true
			}
		}
		if sf.live {
			for id := range sf.ids {
				liveOn[id] = append(liveOn[id], path)
			}
		}
		files = append(files, sf)
		if sf.dirty {
			exit = 2
		}
	}

	fmt.Printf("== federation journal audit: %d journal(s) ==\n", len(files))
	for _, sf := range files {
		role := "live"
		if !sf.live {
			role = "dead (adopted)"
		}
		integ := "clean"
		if sf.dirty {
			integ = "INTEGRITY FAILURE (torn tail or CRC)"
		}
		fmt.Printf("%-14s %4d run(s)  %s  %s\n", role, len(sf.ids), integ, sf.path)
	}

	var orphaned, duplicated []uint64
	for id := range every {
		switch n := len(liveOn[id]); {
		case n == 0:
			orphaned = append(orphaned, id)
		case n > 1:
			duplicated = append(duplicated, id)
		}
	}
	sort.Slice(orphaned, func(i, j int) bool { return orphaned[i] < orphaned[j] })
	sort.Slice(duplicated, func(i, j int) bool { return duplicated[i] < duplicated[j] })

	const listCap = 20
	report := func(kind string, ids []uint64) {
		if len(ids) == 0 {
			return
		}
		exit = 2
		shown := ids
		if len(shown) > listCap {
			shown = shown[:listCap]
		}
		fmt.Printf("\n%s run(s): %d\n", kind, len(ids))
		for _, id := range shown {
			where := liveOn[id]
			if len(where) == 0 {
				fmt.Printf("  run %-8d on no live shard\n", id)
				continue
			}
			fmt.Printf("  run %-8d on %s\n", id, strings.Join(where, ", "))
		}
		if len(ids) > listCap {
			fmt.Printf("  ... and %d more\n", len(ids)-listCap)
		}
	}
	report("ORPHANED", orphaned)
	report("DUPLICATED", duplicated)

	// Admission keys: one key, one run — across every journal in the set.
	var splitKeys []string
	for key, ids := range keyTo {
		if len(ids) > 1 {
			splitKeys = append(splitKeys, key)
		}
	}
	sort.Strings(splitKeys)
	if len(splitKeys) > 0 {
		exit = 2
		shown := splitKeys
		if len(shown) > listCap {
			shown = shown[:listCap]
		}
		fmt.Printf("\nSPLIT admission key(s): %d (a retry created a second run)\n", len(splitKeys))
		for _, key := range shown {
			ids := make([]uint64, 0, len(keyTo[key]))
			for id := range keyTo[key] {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			fmt.Printf("  key %q bound to runs %v\n", key, ids)
		}
		if len(splitKeys) > listCap {
			fmt.Printf("  ... and %d more\n", len(splitKeys)-listCap)
		}
	}

	if exit == 0 {
		fmt.Printf("\n%d distinct run(s), each on exactly one live shard; %d admission key(s), none split\n",
			len(every), len(keyTo))
	} else {
		fmt.Printf("\naudit FAILED: %d orphaned, %d duplicated, %d split key(s)\n",
			len(orphaned), len(duplicated), len(splitKeys))
	}
	os.Exit(exit)
}
