package main

// The trace subcommand analyzes a Chrome trace-event JSON written by
// deepum-sim -trace: it validates the schema and the trace's physical
// invariants (non-overlapping link transfers, consistent prefetch
// accounting), then prints the offline reduction — link utilisation,
// fault-batch size histogram, prefetch lead-time distribution, eviction
// classification.
//
//	deepum-sim -model bert-base -batch 8 -trace run.json
//	deepum-inspect trace run.json
//
// Exit status: 0 on a clean trace, 1 on I/O errors, 2 when the file is
// not a valid deepum trace or an invariant is violated.

import (
	"fmt"
	"os"

	"deepum/internal/obs"
)

func runTrace(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: deepum-inspect trace <trace.json>")
		os.Exit(1)
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	events, err := obs.ReadChromeTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepum-inspect: %s: %v\n", args[0], err)
		os.Exit(2)
	}
	if err := obs.Check(events); err != nil {
		fmt.Fprintf(os.Stderr, "deepum-inspect: %s: invariant violated: %v\n", args[0], err)
		os.Exit(2)
	}
	fmt.Print(obs.Analyze(events).String())
}
