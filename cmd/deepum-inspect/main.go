// Command deepum-inspect runs a short training simulation under DeepUM and
// dumps the driver's internal state: execution-ID table statistics, UM-block
// correlation tables (entries, Start/End anchors), and driver counters. It
// is the debugging lens a kernel-module developer would want.
//
//	deepum-inspect -model bert-base -batch 8
//	deepum-inspect -model dlrm -batch 96000 -top 20
//
// The journal subcommand instead dumps and verifies a supervisor run
// journal (record counts, per-run lifecycle, CRC failures, torn-tail
// offset) without modifying it:
//
//	deepum-inspect journal runs.journal
//
// The trace subcommand validates and summarizes a Chrome trace written by
// deepum-sim -trace (see trace.go):
//
//	deepum-inspect trace run.json
//
// The store subcommand audits a content-addressed checkpoint store —
// frame/CRC/index verification — and cross-checks journal checkpoint
// references against it (see store.go); exit status 2 flags corruption or
// a dangling reference:
//
//	deepum-inspect store ck.store shard-0.journal shard-1.journal
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/engine"
	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "journal" {
		runJournal(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		runTrace(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "store" {
		runStore(os.Args[2:])
		return
	}
	var (
		model   = flag.String("model", "bert-base", "model name")
		dataset = flag.String("dataset", "", "dataset variant")
		batch   = flag.Int64("batch", 8, "batch size")
		scale   = flag.Int64("scale", 32, "size divisor")
		iters   = flag.Int("iters", 2, "measured iterations")
		top     = flag.Int("top", 10, "how many block tables to list")
		doTrace = flag.Bool("trace", false, "record and summarize the event trace")
	)
	flag.Parse()

	prog, err := models.Build(models.Spec{Model: *model, Dataset: *dataset}, *batch, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rec *trace.Recorder
	if *doTrace {
		rec = trace.NewRecorder(1 << 20)
	}
	res, err := engine.Run(engine.Config{
		Params:        sim.DefaultParams().Scale(*scale),
		Program:       prog,
		Policy:        engine.PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Iterations:    *iters,
		Warmup:        3,
		Seed:          1,
		Tracer:        rec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("== run ==\n")
	fmt.Printf("model %s batch %d scale 1/%d: %d kernels/iteration, footprint %.2f GiB\n",
		*model, *batch, *scale, prog.Kernels(), float64(prog.FootprintBytes())/float64(sim.GiB))
	fmt.Printf("iteration time %v, %d page faults/iteration\n\n", res.IterTime(), res.FaultsPerIter)

	fmt.Printf("== driver counters ==\n")
	d := res.Driver
	fmt.Printf("kernel launches      %d\n", d.KernelLaunches)
	fmt.Printf("prefetch issued      %d\n", d.PrefetchIssued)
	fmt.Printf("prefetch useful      %d\n", d.PrefetchUseful)
	fmt.Printf("chain restarts       %d\n", d.ChainRestarts)
	fmt.Printf("prediction failures  %d (noexec %d, anchorless %d)\n",
		d.PredictionFails, d.DeathNoExec, d.DeathSkips)
	fmt.Printf("pre-evictions        %d\n", d.Preevictions)
	fmt.Printf("invalidations        %d\n", d.Invalidations)
	fmt.Printf("window misses        %d\n\n", d.WindowMisses)

	tables := res.Tables
	if tables == nil {
		fmt.Println("(no correlation tables: prefetch disabled)")
		return
	}
	fmt.Printf("== correlation tables ==\n")
	fmt.Printf("execution table: %d entries, %d records, %.1f KiB\n",
		tables.Exec.Entries(), tables.Exec.Records(), float64(tables.Exec.SizeBytes())/1024)
	fmt.Printf("block tables: %d allocated, %.1f MiB total\n\n",
		tables.NumBlockTables(), float64(tables.SizeBytes())/float64(sim.MiB))

	ids := tables.ExecIDs()
	type row struct {
		id      correlation.ExecID
		entries int
	}
	rows := make([]row, 0, len(ids))
	for _, id := range ids {
		rows = append(rows, row{id, tables.Block(id).Entries()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].entries > rows[j].entries })
	if *top > len(rows) {
		*top = len(rows)
	}
	fmt.Printf("%-8s %-8s %-12s %-12s\n", "execID", "entries", "start", "end")
	for _, r := range rows[:*top] {
		bt := tables.Block(r.id)
		fmt.Printf("%-8d %-8d %-12d %-12d\n", r.id, r.entries, bt.Start, bt.End)
	}

	if rec != nil {
		fmt.Printf("\n== event trace ==\n")
		fmt.Print(trace.Summarize(rec.Events()))
		if rec.Dropped() > 0 {
			fmt.Printf("(%d oldest events dropped)\n", rec.Dropped())
		}
	}
}
