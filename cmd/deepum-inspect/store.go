package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"deepum/internal/store"
	"deepum/internal/supervisor/journal"
)

// runStore implements `deepum-inspect store <store> [journal...]`: a
// read-only audit of a content-addressed checkpoint store — frame and CRC
// verification, the rebuilt index with replica-count bounds, corrupt
// regions and torn-tail offset — plus, when journal paths follow, a
// cross-check that every journal checkpoint reference resolves in the
// store's index.
//
// Only each run's LATEST checkpoint reference must resolve: superseded
// checkpoints are legitimate compaction garbage, and a finished run's
// references may be reclaimed wholesale. A dangling latest reference on an
// unfinished run is the real failure — that run would cold-restart.
//
// Exit status: 0 clean; 2 for store corruption (corrupt regions or a torn
// tail) or a dangling latest reference; 1 for files that cannot be read at
// all.
func runStore(args []string) {
	fs := flag.NewFlagSet("store", flag.ExitOnError)
	verbose := fs.Bool("v", false, "list every key with its replica count")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: deepum-inspect store [-v] <store> [journal...]")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() < 1 {
		fs.Usage()
		os.Exit(1)
	}
	path := fs.Arg(0)

	rep, err := store.Audit(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "deepum-inspect: %v\n", err)
		os.Exit(1)
	}
	exit := 0

	fmt.Printf("== store %s ==\n", path)
	fmt.Printf("bytes        %d\n", rep.Bytes)
	fmt.Printf("frames       %d intact\n", rep.Frames)
	fmt.Printf("keys         %d distinct (replicas %d..%d)\n", rep.Keys, rep.MinReplicas, rep.MaxReplicas)
	if rep.Clean() {
		fmt.Printf("integrity    clean to EOF\n")
	} else {
		exit = 2
		for _, cr := range rep.CorruptRegions {
			fmt.Printf("integrity    CORRUPT region at byte %d (%d bytes skipped)\n", cr.Off, cr.Len)
		}
		if rep.TornOffset >= 0 {
			fmt.Printf("integrity    torn tail at byte offset %d; a writable Open would truncate it\n", rep.TornOffset)
		}
	}

	if *verbose {
		keys := make([]store.Key, 0, len(rep.Index))
		for k := range rep.Index {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		fmt.Printf("\n%-18s %s\n", "key", "replicas")
		for _, k := range keys {
			fmt.Printf("%-18s %d\n", k, rep.Index[k])
		}
	}

	// Journal cross-check: fold each journal the way a restarting
	// supervisor would (latest checkpoint per run wins) and resolve what
	// it would actually dereference.
	var (
		refRecords    int
		inlineRecords int
		dangling      = map[store.Key][]string{} // key -> "journal#run" holders
		live          = map[store.Key]bool{}     // latest refs of unfinished runs
	)
	for _, jpath := range fs.Args()[1:] {
		type latest struct {
			key      store.Key
			isRef    bool
			finished bool
		}
		runs := map[uint64]*latest{}
		_, err := journal.ReplayStreamFile(jpath, func(rec journal.Record) error {
			switch rec.Type {
			case journal.RecCheckpointed:
				l := runs[rec.RunID]
				if l == nil {
					l = &latest{}
					runs[rec.RunID] = l
				}
				if k, ok := store.DecodeRef(rec.Data); ok {
					refRecords++
					l.key, l.isRef = k, true
				} else if len(rec.Data) > 0 {
					inlineRecords++
					l.isRef = false
				}
			case journal.RecFinished:
				if l := runs[rec.RunID]; l != nil {
					l.finished = true
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepum-inspect: %v\n", err)
			os.Exit(1)
		}
		ids := make([]uint64, 0, len(runs))
		for id := range runs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			l := runs[id]
			if !l.isRef || l.finished {
				continue
			}
			live[l.key] = true
			if rep.Index[l.key] == 0 {
				dangling[l.key] = append(dangling[l.key],
					fmt.Sprintf("%s#run%d", jpath, id))
			}
		}
	}

	if fs.NArg() > 1 {
		fmt.Printf("\n== journal cross-check: %d journal(s) ==\n", fs.NArg()-1)
		fmt.Printf("checkpoint records   %d by reference, %d inline\n", refRecords, inlineRecords)
		// Garbage ratio: the fraction of store keys no unfinished run's
		// latest reference holds — what a compaction against these journals
		// would reclaim (supervisors auto-compact past
		// Config.StoreGCThreshold; federations via Federation.StoreGC).
		if rep.Keys > 0 {
			liveKeys := 0
			for k := range live {
				if rep.Index[k] > 0 {
					liveKeys++
				}
			}
			garbage := rep.Keys - liveKeys
			fmt.Printf("garbage              %d of %d key(s) unreferenced (ratio %.2f; reclaimable by compaction)\n",
				garbage, rep.Keys, float64(garbage)/float64(rep.Keys))
		}
		if len(dangling) == 0 {
			fmt.Printf("references           every unfinished run's latest reference resolves\n")
		} else {
			exit = 2
			keys := make([]store.Key, 0, len(dangling))
			for k := range dangling {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				for _, holder := range dangling[k] {
					fmt.Printf("references           DANGLING %s held by %s (would cold-restart)\n", k, holder)
				}
			}
		}
	}

	if exit != 0 {
		fmt.Printf("\naudit FAILED\n")
	}
	os.Exit(exit)
}
