package main

// Contention-storm soak (-contention): the multi-tenant oversubscription
// drill. -con-runs wall-paced stub runs whose aggregate memory demand is a
// multiple of the GPU budget (each run demands 40% of it, so 8 runs = 3.2x
// oversubscription) are admitted together under the arbiter. The sustained
// pressure must walk the whole escalation ladder — soft grants, burst
// revocation, suspend-to-checkpoint — and every run must still finish:
//
//   - no submission is rejected with a hard QuotaError (every run fits the
//     budget alone, so rejecting any of them is the wart this mode guards
//     against),
//   - every run reaches completed with its AccessChecksum equal to the
//     solo oracle for its seed (a suspended-and-resumed run is
//     bit-identical to an uninterrupted one),
//   - at least one suspend-to-checkpoint cycle actually happened, and at
//     least one burst revocation preceded it (suspension is the last rung,
//     not the first),
//   - no run is lost or duplicated, and the harness leaks no goroutines
//     after drain.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"deepum"
)

type contentionOptions struct {
	runs    int // concurrent runs; aggregate demand = runs * 40% of budget
	workers int
	iters   int
	seed    int64
}

const (
	// conBudget is the simulated GPU budget; each run demands 40% of it.
	conBudget   = int64(1) << 30
	conDemand   = conBudget * 2 / 5
	conCkptEach = 10
	// conPace is the wall time per iteration: slow enough that the arbiter's
	// sustain windows elapse mid-run, fast enough to keep the soak brisk.
	conPace = time.Millisecond
)

// conExpect is the solo oracle: the checksum an uninterrupted, solo
// execution of (seed, iters) produces — the same fold as the federation
// soak's, generalized over the iteration count.
func conExpect(seed int64, iters int) uint64 {
	h := fedSeedBase(seed)
	for i := 0; i < iters; i++ {
		h = fedStep(h, seed, i)
	}
	return h
}

// contentionRunner is the wall-paced stub: one hash-fold iteration per
// conPace tick, checkpointing every conCkptEach iterations. On context
// cancellation — the arbiter's suspend path — it reports a cancelled
// partial outcome carrying its complete state as the checkpoint, so a
// resumed execution is bit-identical by construction.
func contentionRunner() deepum.Runner {
	return deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		st := fedCkpt{Hash: fedSeedBase(spec.Seed)}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return deepum.RunOutcome{}, err
			}
		}
		tick := time.NewTicker(conPace)
		defer tick.Stop()
		for st.Iter < spec.Iterations {
			select {
			case <-ctx.Done():
				b, err := json.Marshal(st)
				if err != nil {
					return deepum.RunOutcome{}, err
				}
				return deepum.RunOutcome{
					Status:         string(deepum.RunCancelled),
					Iterations:     st.Iter,
					AccessChecksum: st.Hash,
					Checkpoint:     b,
				}, nil
			case <-tick.C:
			}
			st.Hash = fedStep(st.Hash, spec.Seed, st.Iter)
			st.Iter++
			if st.Iter%conCkptEach == 0 && st.Iter < spec.Iterations {
				b, err := json.Marshal(st)
				if err != nil {
					return deepum.RunOutcome{}, err
				}
				progress(b)
			}
		}
		return deepum.RunOutcome{
			Status:         string(deepum.RunCompleted),
			Iterations:     st.Iter,
			AccessChecksum: st.Hash,
		}, nil
	})
}

// runContentionSoak executes the drill and returns the process exit code.
func runContentionSoak(opts contentionOptions) int {
	if opts.runs < 8 {
		opts.runs = 8
	}
	if opts.workers < opts.runs {
		// Every run gets a worker: contention must come from memory, not
		// from worker starvation hiding the oversubscription.
		opts.workers = opts.runs
	}
	if opts.iters <= 0 {
		opts.iters = 300
	}
	startGoroutines := runtime.NumGoroutine()
	start := time.Now()

	sup, err := deepum.NewSupervisor(deepum.SupervisorConfig{
		Runner:          contentionRunner(),
		Estimate:        func(deepum.RunSpec) (int64, error) { return conDemand, nil },
		Workers:         opts.workers,
		QueueDepth:      opts.runs,
		GPUMemoryBudget: conBudget,
		Oversubscribe:   true,
		// Brisk escalation so the ladder is walked within a few hundred
		// milliseconds of wall time; the thresholds stay at their defaults.
		Arbiter: deepum.ArbiterOptions{
			HalfLife: (10 * time.Millisecond).Nanoseconds(),
			Sustain:  (30 * time.Millisecond).Nanoseconds(),
		},
		ArbiterTick: 5 * time.Millisecond,
	})
	if err != nil {
		fmt.Printf("FAIL contention soak: %v\n", err)
		return 1
	}
	aggregate := float64(int64(opts.runs)*conDemand) / float64(conBudget)
	fmt.Printf("contention %d runs x %d iters, demand %.1fx budget, %d workers\n",
		opts.runs, opts.iters, aggregate, opts.workers)

	failures := 0
	ids := make([]uint64, 0, opts.runs)
	seeds := map[uint64]int64{}
	for i := 0; i < opts.runs; i++ {
		seed := opts.seed*1000 + int64(i) + 1
		// Two priority classes so revocation and suspension exercise the
		// lowest-priority-first victim policy.
		id, _, err := sup.SubmitWithOptions(0, deepum.RunSpec{
			Model:           "bert-base",
			Batch:           8,
			Seed:            seed,
			Iterations:      opts.iters,
			CheckpointEvery: conCkptEach,
		}, deepum.SubmitOptions{Priority: i % 2})
		if err != nil {
			// A QuotaError here is exactly the regression this soak exists
			// to catch: each run fits the budget alone, so oversubscribed
			// admission must never hard-reject it.
			var q *deepum.QuotaError
			if errors.As(err, &q) {
				fmt.Printf("FAIL submit run %d: hard quota rejection for an individually-fitting run: %v\n", i, err)
			} else {
				fmt.Printf("FAIL submit run %d: %v\n", i, err)
			}
			failures++
			continue
		}
		ids = append(ids, id)
		seeds[id] = seed
	}

	badState, badSum := 0, 0
	for _, id := range ids {
		done, err := sup.Done(id)
		if err != nil {
			fmt.Printf("FAIL done chan run %d: %v\n", id, err)
			failures++
			continue
		}
		select {
		case <-done:
		case <-time.After(5 * time.Minute):
			fmt.Printf("FAIL run %d did not finish within 5m\n", id)
			failures++
			continue
		}
		info, err := sup.Get(id)
		if err != nil {
			fmt.Printf("FAIL get run %d: %v\n", id, err)
			failures++
			continue
		}
		if info.State != deepum.RunCompleted {
			if badState == 0 {
				fmt.Printf("FAIL run %d ended %s (%s)\n", id, info.State, info.Reason)
			}
			badState++
			continue
		}
		if want := conExpect(seeds[id], opts.iters); info.Outcome.AccessChecksum != want {
			if badSum == 0 {
				fmt.Printf("FAIL run %d checksum %016x, want %016x (seed %d, %d suspend(s))\n",
					id, info.Outcome.AccessChecksum, want, seeds[id], info.Suspends)
			}
			badSum++
		}
	}
	if badState > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) did not complete\n", badState)
	}
	if badSum > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) diverged from the solo checksum\n", badSum)
	}

	// No run lost, none duplicated: the roster holds exactly the accepted
	// IDs, each one terminal exactly once.
	roster := map[uint64]int{}
	for _, info := range sup.List() {
		roster[info.ID]++
	}
	lost, dup := 0, 0
	for _, id := range ids {
		switch n := roster[id]; {
		case n == 0:
			lost++
		case n > 1:
			dup++
		}
	}
	if lost > 0 || dup > 0 || len(roster) != len(ids) {
		failures++
		fmt.Printf("FAIL run accounting: %d lost, %d duplicated, %d rostered (want %d)\n",
			lost, dup, len(roster), len(ids))
	}

	st := sup.Stats()
	if st.Suspends < 1 || st.Resumes < 1 {
		failures++
		fmt.Printf("FAIL escalation: %d suspend(s), %d resume(s); the storm must force at least one suspend-to-checkpoint cycle\n",
			st.Suspends, st.Resumes)
	}
	if st.Arbiter.Revocations < 1 {
		failures++
		fmt.Printf("FAIL escalation order: no burst revocation recorded before suspension\n")
	}
	fmt.Printf("arbiter    %d grant(s), %d revocation(s), %d restore(s), %d suspension(s), %d resume(s), peak pressure path complete\n",
		st.Arbiter.Grants, st.Arbiter.Revocations, st.Arbiter.Restores, st.Suspends, st.Resumes)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Drain(ctx); err != nil {
		failures++
		fmt.Printf("FAIL drain: %v\n", err)
	}
	if leaked := goroutineLeak(startGoroutines); leaked > 0 {
		failures++
		fmt.Printf("FAIL goroutines: %d leaked (started with %d)\n", leaked, startGoroutines)
	}

	if failures > 0 {
		fmt.Printf("contention soak FAILED: %d failure(s) in %v\n", failures, time.Since(start).Round(time.Millisecond))
		return 1
	}
	fmt.Printf("contention soak OK: %d runs at %.1fx budget all completed bit-identical, %d suspend/resume cycle(s), %v\n",
		len(ids), aggregate, st.Suspends, time.Since(start).Round(time.Millisecond))
	return 0
}
