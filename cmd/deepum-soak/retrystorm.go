package main

// Retry-storm soak (-retry-storm): the exactly-once admission drill. A
// federation of supervisor shards sits behind a minimal HTTP submit
// endpoint (the same SubmitWithOptions contract deepum-serve speaks), and a
// fleet of clients whose transport injects timeouts-after-send — the server
// admitted the submission, the client never saw the 202 — retries EVERY
// submit under its idempotency key until a response lands. Mid-storm, one
// shard is kill-9'd and handed off, so a slice of the retries cross the
// failover: the key must follow the run through the journal handoff and
// still dedup on the adopting shard.
//
// Asserted after the storm drains:
//
//   - exactly one execution per key: the counting runner saw each seed
//     complete exactly once, no matter how many times its submit was
//     retried (the dedup path, not re-admission, absorbed every retry),
//   - every HTTP response for a key named the same run ID,
//   - every run completed with AccessChecksum equal to the pure-function
//     oracle for its seed,
//   - no run ID lost or duplicated across the surviving shards,
//   - the transport provably injected timeouts and the federation provably
//     deduped (a storm that never ambiguated proves nothing),
//   - no goroutines leak after drain.
//
// The shard journals survive in -fed-dir so CI re-audits them with
// deepum-inspect journal -audit afterwards.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deepum"
)

type retryStormOptions struct {
	runs    int
	shards  int
	workers int
	dir     string
	seed    int64
}

// stormRunner wraps the deterministic fed stub runner and counts COMPLETED
// executions per seed — the exactly-once ledger. A run interrupted by the
// shard kill and resumed later still completes once; a duplicated
// admission would complete twice and fail the audit.
func stormRunner(gate <-chan struct{}, completions *sync.Map) deepum.Runner {
	base := fedRunner(gate)
	return deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		out, err := base.Run(ctx, spec, resume, progress)
		if err == nil && out.Status == string(deepum.RunCompleted) {
			c, _ := completions.LoadOrStore(spec.Seed, new(atomic.Int64))
			c.(*atomic.Int64).Add(1)
		}
		return out, err
	})
}

// stormHandler is the minimal submit endpoint: the SubmitWithOptions
// contract over HTTP, with the same status mapping deepum-serve uses for
// the admission errors the storm exercises.
func stormHandler(fed *deepum.Federation) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec deepum.RunSpec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		var opts deepum.SubmitOptions
		if key := r.Header.Get("Idempotency-Key"); key != "" {
			if err := deepum.ValidateIdempotencyKey(key); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			opts.Key = key
		}
		id, dedup, err := fed.SubmitWithOptions(spec, opts)
		if err != nil {
			var he *deepum.ShardHandoffError
			var shed *deepum.ShedError
			var qf *deepum.QueueFullError
			var q *deepum.QuotaError
			switch {
			case errors.As(err, &he):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.As(err, &shed):
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			case errors.As(err, &qf), errors.As(err, &q) && q.Retryable():
				http.Error(w, err.Error(), http.StatusTooManyRequests)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		status := http.StatusAccepted
		if dedup {
			status = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]uint64{"id": id})
	})
}

// runRetryStorm executes the drill and returns the process exit code.
func runRetryStorm(opts retryStormOptions) int {
	if opts.runs < 100 {
		opts.runs = 100
	}
	if opts.shards < 2 {
		opts.shards = 2
	}
	if opts.workers < 1 {
		opts.workers = 4
	}
	dir := opts.dir
	if dir == "" {
		d, err := os.MkdirTemp("", "deepum-retrystorm-")
		if err != nil {
			fatalf("retry storm: %v", err)
		}
		dir = d
	}
	startGoroutines := runtime.NumGoroutine()
	start := time.Now()

	gate := make(chan struct{})
	var completions sync.Map
	fed, err := deepum.NewFederation(deepum.FederationOptions{
		Shards: opts.shards,
		Supervisor: deepum.SupervisorConfig{
			Runner:        stormRunner(gate, &completions),
			Estimate:      func(deepum.RunSpec) (int64, error) { return 1 << 20, nil },
			Workers:       opts.workers,
			QueueDepth:    256,
			JournalNoSync: true,
		},
		JournalDir: dir,
	})
	if err != nil {
		fatalf("retry storm: %v", err)
	}
	ts := httptest.NewServer(stormHandler(fed))
	defer ts.Close()
	fmt.Printf("retry-storm %d shards x %d workers, %d keys, journals in %s\n",
		opts.shards, opts.workers, opts.runs, dir)

	// Every client shares one fault transport: ~35% of round trips complete
	// on the wire but surface as client timeouts, so a third of all submits
	// are retried blind. Slow and torn faults ride along to exercise the
	// retry loop's read-error path.
	ft := deepum.NewFaultTransport(ts.Client().Transport, deepum.NetFaultOptions{
		TimeoutAfterSendProb: 0.35,
		SlowProb:             0.05,
		SlowDelay:            2 * time.Millisecond,
		TornBodyProb:         0.05,
		Seed:                 opts.seed,
	})
	client := &http.Client{Transport: ft, Timeout: 5 * time.Second}

	var (
		mu        sync.Mutex
		keyRun    = map[string]uint64{} // idempotency key -> the ONE run ID it resolved to
		keySeed   = map[string]int64{}
		disagree  int64 // responses for a key naming a different ID than recorded
		dedupSeen atomic.Int64
		failed    atomic.Int64
	)

	// submitKey retries one submission under its key until a definitive
	// response arrives, recording every ID the server ever names for it.
	submitKey := func(seed int64, hang bool) {
		key := "storm-" + strconv.FormatInt(seed, 10)
		spec := deepum.RunSpec{
			Model:           "bert-base",
			Batch:           8,
			Seed:            seed,
			Iterations:      fedIters,
			CheckpointEvery: fedCkptEach,
		}
		if hang {
			spec.Chaos = "hang"
			spec.Warmup = fedHangAt
		}
		body, _ := json.Marshal(spec)
		for attempt := 0; ; attempt++ {
			if attempt > 10000 {
				fmt.Printf("FAIL key %s: no definitive response after %d attempts\n", key, attempt)
				failed.Add(1)
				return
			}
			req, _ := http.NewRequest("POST", ts.URL, bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Idempotency-Key", key)
			resp, err := client.Do(req)
			if err != nil {
				continue // injected timeout: retry blind, same key
			}
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				var out struct {
					ID uint64 `json:"id"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if derr != nil {
					continue // torn body: the ID was lost in transit, retry
				}
				if resp.StatusCode == http.StatusOK {
					dedupSeen.Add(1)
				}
				mu.Lock()
				if prev, ok := keyRun[key]; ok && prev != out.ID {
					disagree++
				}
				keyRun[key] = out.ID
				keySeed[key] = seed
				mu.Unlock()
				return
			case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				resp.Body.Close()
				time.Sleep(500 * time.Microsecond)
			default:
				resp.Body.Close()
				fmt.Printf("FAIL key %s: status %d\n", key, resp.StatusCode)
				failed.Add(1)
				return
			}
		}
	}

	failures := 0
	var seedCount atomic.Int64
	// Hang runs first, so the victim shard wedges on checkpointed runs.
	for i := 0; i < fedHangRuns; i++ {
		submitKey(seedCount.Add(1), true)
	}

	// Mid-storm killer: same shape as the federation soak — pick a wedged
	// victim, kill it, hand off while the retry storm keeps hammering.
	var report deepum.ShardHandoffReport
	var victim int
	var accepted = func() int { mu.Lock(); defer mu.Unlock(); return len(keyRun) }
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for accepted() < opts.runs/2 {
			time.Sleep(time.Millisecond)
		}
		victim = chooseFedVictim(fed, opts.shards)
		if err := fed.Kill(victim); err != nil {
			fmt.Printf("FAIL kill shard %d: %v\n", victim, err)
			failed.Add(1)
			close(gate)
			return
		}
		time.Sleep(2 * time.Millisecond)
		rep, err := fed.Handoff(victim)
		if err != nil {
			fmt.Printf("FAIL handoff shard %d: %v\n", victim, err)
			failed.Add(1)
			close(gate)
			return
		}
		report = rep
		close(gate)
	}()

	storm := opts.runs - fedHangRuns
	const submitters = 8
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		n := storm / submitters
		if w < storm%submitters {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				submitKey(seedCount.Add(1), false)
			}
		}(n)
	}
	wg.Wait()
	<-killDone
	failures += int(failed.Load())

	nf := ft.Stats()
	fmt.Printf("storm      %d keys over %d round trips: %d timeouts-after-send, %d slowed, %d torn; kill+handoff on shard %d\n",
		accepted(), nf.Requests, nf.TimeoutsAfterSend, nf.Slowed, nf.Torn, victim)
	fmt.Printf("handoff    %d runs: %d finished history, %d re-queued (%d resumed), %d skipped\n",
		report.Runs, report.Finished, report.Queued, report.Resumed, report.Skipped)

	// A storm that never ambiguated, or never deduped, proves nothing.
	if nf.TimeoutsAfterSend == 0 {
		failures++
		fmt.Printf("FAIL no timeouts-after-send injected; the storm never created retry ambiguity\n")
	}
	if dedupSeen.Load() == 0 && fed.Stats().DedupHits == 0 {
		failures++
		fmt.Printf("FAIL no dedup observed anywhere; retries were not absorbed by keys\n")
	}
	if disagree > 0 {
		failures++
		fmt.Printf("FAIL %d response(s) named a different run ID for an already-resolved key\n", disagree)
	}
	if got := accepted(); got != opts.runs {
		failures++
		fmt.Printf("FAIL %d keys resolved, want %d\n", got, opts.runs)
	}

	// Wait out every run; assert the checksum oracle per key.
	mu.Lock()
	resolved := make(map[string]uint64, len(keyRun))
	seeds := make(map[string]int64, len(keySeed))
	for k, id := range keyRun {
		resolved[k] = id
		seeds[k] = keySeed[k]
	}
	mu.Unlock()
	idSeen := map[uint64]string{}
	badState, badSum, collide := 0, 0, 0
	for key, id := range resolved {
		if prev, ok := idSeen[id]; ok {
			collide++
			if collide == 1 {
				fmt.Printf("FAIL run %d claimed by keys %q and %q\n", id, prev, key)
			}
		}
		idSeen[id] = key
		info, err := fed.Wait(id)
		if err != nil {
			fmt.Printf("FAIL wait run %d (key %s): %v\n", id, key, err)
			failures++
			continue
		}
		if info.State != deepum.RunCompleted {
			if badState == 0 {
				fmt.Printf("FAIL run %d (key %s) ended %s (%s)\n", id, key, info.State, info.Reason)
			}
			badState++
			continue
		}
		if want := fedExpect(seeds[key]); info.Outcome.AccessChecksum != want {
			if badSum == 0 {
				fmt.Printf("FAIL run %d checksum %016x, want %016x (key %s)\n",
					id, info.Outcome.AccessChecksum, want, key)
			}
			badSum++
		}
	}
	if collide > 0 {
		failures++
		fmt.Printf("FAIL %d run ID(s) shared between distinct keys\n", collide)
	}
	if badState > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) did not complete\n", badState)
	}
	if badSum > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) diverged from the clean-execution checksum\n", badSum)
	}

	// The exactly-once ledger: every seed completed exactly once.
	multi, never := 0, 0
	for key, seed := range seeds {
		c, ok := completions.Load(seed)
		n := int64(0)
		if ok {
			n = c.(*atomic.Int64).Load()
		}
		switch {
		case n == 0:
			never++
			if never == 1 {
				fmt.Printf("FAIL key %s (seed %d) never executed\n", key, seed)
			}
		case n > 1:
			multi++
			if multi == 1 {
				fmt.Printf("FAIL key %s (seed %d) executed %d times\n", key, seed, n)
			}
		}
	}
	if never > 0 || multi > 0 {
		failures++
		fmt.Printf("FAIL exactly-once: %d key(s) never executed, %d executed more than once\n", never, multi)
	}

	// No run lost, none duplicated across the surviving shards.
	seen := map[uint64]int{}
	for ord := 0; ord < opts.shards; ord++ {
		if ord == victim {
			continue
		}
		for _, info := range fed.Supervisor(ord).List() {
			if o, _ := fed.Owner(info.ID); o == ord {
				seen[info.ID]++
			}
		}
	}
	lost, dup := 0, 0
	for id := range idSeen {
		switch n := seen[id]; {
		case n == 0:
			lost++
		case n > 1:
			dup++
		}
	}
	if lost > 0 || dup > 0 {
		failures++
		fmt.Printf("FAIL run accounting: %d lost, %d duplicated across live shards\n", lost, dup)
	}

	fst := fed.Stats()
	if fst.Handoffs != 1 || fst.Live != opts.shards-1 {
		failures++
		fmt.Printf("FAIL federation stats: %+v (want 1 handoff, %d live)\n", fst, opts.shards-1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fed.Drain(ctx); err != nil {
		failures++
		fmt.Printf("FAIL drain: %v\n", err)
	}
	ts.Close()
	client.CloseIdleConnections()
	if leaked := goroutineLeak(startGoroutines); leaked > 0 {
		failures++
		fmt.Printf("FAIL goroutines: %d leaked (started with %d)\n", leaked, startGoroutines)
	}

	if failures > 0 {
		fmt.Printf("retry storm FAILED: %d failure(s) in %v\n", failures, time.Since(start).Round(time.Millisecond))
		return 1
	}
	fmt.Printf("retry storm OK: %d keys exactly-once through %d injected timeouts and a shard %d failover, %d dedup hits, %v\n",
		accepted(), nf.TimeoutsAfterSend, victim, fst.DedupHits, time.Since(start).Round(time.Millisecond))
	return 0
}
