package main

// Federation failover soak (-federation): an admission storm of -fed-runs
// deterministic stub runs across -fed-shards supervisor shards, with one
// shard kill-9'd mid-storm and handed off while submissions keep coming.
// The harness then waits out every run and asserts the federation's
// contract at storm scale:
//
//   - every accepted run reaches completed, with its AccessChecksum equal
//     to the pure-function expectation for its seed (adopted and resumed
//     runs are bit-identical to uninterrupted execution),
//   - no run ID is lost or duplicated across the surviving shards,
//   - exactly one handoff happened and the dead shard's journal was
//     retired to *.adopted (CI re-audits the journals with
//     deepum-inspect journal -audit afterwards),
//   - the harness leaks no goroutines after drain.
//
// The shards journal with fsync disabled: the storm kills supervisors
// in-process (the page cache survives), and 10^4+ synced appends would
// make the soak about disk latency instead of failover correctness.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deepum"
	"deepum/internal/store"
	"deepum/internal/supervisor/journal"
)

type fedSoakOptions struct {
	runs    int
	shards  int
	workers int
	dir     string
	store   bool // back checkpoints with a shared content-addressed store
}

// fedCkpt is the stub runner's checkpoint: its entire state, so a resumed
// run is bit-identical to an uninterrupted one by construction.
type fedCkpt struct {
	Iter int    `json:"iter"`
	Hash uint64 `json:"hash"`
}

const (
	fedIters    = 6
	fedCkptEach = 2
	fedHangAt   = 4 // hang runs block here, after the iteration-4 checkpoint
	fedHangRuns = 8 // submitted first so they wedge workers before the kill
)

func fedSeedBase(seed int64) uint64 {
	return 0xcbf29ce484222325 ^ uint64(seed)*0x100000001b3
}

func fedStep(h uint64, seed int64, iter int) uint64 {
	h ^= uint64(iter)*0x9E3779B97F4A7C15 + uint64(seed)
	return h * 0x100000001b3
}

// fedExpect is the oracle: the checksum any uninterrupted execution of
// (seed, fedIters) produces — and therefore what every adopted, resumed,
// or cold-restarted execution must reproduce.
func fedExpect(seed int64) uint64 {
	h := fedSeedBase(seed)
	for i := 0; i < fedIters; i++ {
		h = fedStep(h, seed, i)
	}
	return h
}

// fedRunner folds (seed, iter) into a rolling hash, checkpointing every
// fedCkptEach iterations. Runs with Chaos="hang" block at fedHangAt until
// gate closes or they are cancelled (the kill path), so the victim shard
// dies holding interrupted runs with journaled mid-run state.
func fedRunner(gate <-chan struct{}) deepum.Runner {
	return deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		st := fedCkpt{Hash: fedSeedBase(spec.Seed)}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return deepum.RunOutcome{}, err
			}
		}
		for st.Iter < spec.Iterations {
			if spec.Chaos == "hang" && st.Iter == fedHangAt {
				select {
				case <-gate:
				case <-ctx.Done():
					return deepum.RunOutcome{
						Status:         string(deepum.RunCancelled),
						Iterations:     st.Iter,
						AccessChecksum: st.Hash,
					}, nil
				}
			}
			st.Hash = fedStep(st.Hash, spec.Seed, st.Iter)
			st.Iter++
			if st.Iter%fedCkptEach == 0 && st.Iter < spec.Iterations {
				b, err := json.Marshal(st)
				if err != nil {
					return deepum.RunOutcome{}, err
				}
				progress(b)
			}
		}
		return deepum.RunOutcome{
			Status:         string(deepum.RunCompleted),
			Iterations:     st.Iter,
			AccessChecksum: st.Hash,
		}, nil
	})
}

// runFederationSoak executes the drill and returns the process exit code.
func runFederationSoak(opts fedSoakOptions) int {
	if opts.runs < 100 {
		opts.runs = 100
	}
	if opts.shards < 2 {
		opts.shards = 2
	}
	if opts.workers < 1 {
		opts.workers = 4
	}
	dir := opts.dir
	if dir == "" {
		d, err := os.MkdirTemp("", "deepum-fedsoak-")
		if err != nil {
			fatalf("federation soak: %v", err)
		}
		dir = d
	}
	startGoroutines := runtime.NumGoroutine()
	start := time.Now()

	gate := make(chan struct{})
	fcfg := deepum.FederationOptions{
		Shards: opts.shards,
		Supervisor: deepum.SupervisorConfig{
			Runner:        fedRunner(gate),
			Estimate:      func(deepum.RunSpec) (int64, error) { return 1 << 20, nil },
			Workers:       opts.workers,
			QueueDepth:    256,
			JournalNoSync: true,
		},
		JournalDir: dir,
	}
	if opts.store {
		// Same in-process-kill rationale as JournalNoSync: the page cache
		// survives, and a synced Put per checkpoint would make the storm
		// about disk latency.
		fcfg.StorePath = filepath.Join(dir, "ck.store")
		fcfg.StoreNoSync = true
	}
	fed, err := deepum.NewFederation(fcfg)
	if err != nil {
		fatalf("federation soak: %v", err)
	}
	if opts.store {
		fmt.Printf("federation %d shards x %d workers, %d-run storm, journals + checkpoint store in %s\n",
			opts.shards, opts.workers, opts.runs, dir)
	} else {
		fmt.Printf("federation %d shards x %d workers, %d-run storm, journals in %s\n",
			opts.shards, opts.workers, opts.runs, dir)
	}

	var (
		mu        sync.Mutex
		specs     = map[uint64]int64{} // accepted run ID -> seed
		accepted  atomic.Int64
		rejected  atomic.Int64 // handoff-window rejections observed (IDs burned)
		seedCount atomic.Int64
	)
	submitOne := func(hang bool) bool {
		seed := seedCount.Add(1)
		spec := deepum.RunSpec{
			Model:           "bert-base",
			Batch:           8,
			Seed:            seed,
			Iterations:      fedIters,
			CheckpointEvery: fedCkptEach,
		}
		if hang {
			spec.Chaos = "hang"
			spec.Warmup = fedHangAt
		}
		for {
			id, err := fed.Submit(spec)
			if err == nil {
				mu.Lock()
				specs[id] = seed
				mu.Unlock()
				accepted.Add(1)
				return true
			}
			var he *deepum.ShardHandoffError
			var qf *deepum.QueueFullError
			var q *deepum.QuotaError
			switch {
			case errors.As(err, &he):
				// The 503 window: the ID burned onto the dead shard; retry
				// draws a fresh ID that may land on a live one.
				rejected.Add(1)
				time.Sleep(500 * time.Microsecond)
			case errors.As(err, &qf), errors.As(err, &q) && q.Retryable():
				time.Sleep(500 * time.Microsecond)
			default:
				fmt.Printf("FAIL submit (seed %d): %v\n", seed, err)
				return false
			}
		}
	}

	failures := 0
	// The hang runs go in first so workers wedge on them with journaled
	// checkpoints before the mid-storm kill.
	for i := 0; i < fedHangRuns; i++ {
		if !submitOne(true) {
			failures++
		}
	}

	// Mid-storm killer: waits for half the storm, picks a victim that is
	// actually holding a wedged, checkpointed run, kills it, hands off,
	// then opens the gate so every hung and adopted run can finish.
	var report deepum.ShardHandoffReport
	var victim int
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		for accepted.Load() < int64(opts.runs/2) {
			time.Sleep(time.Millisecond)
		}
		victim = chooseFedVictim(fed, opts.shards)
		if err := fed.Kill(victim); err != nil {
			fmt.Printf("FAIL kill shard %d: %v\n", victim, err)
			failures++
			close(gate)
			return
		}
		// Leave the handoff window open briefly so the storm provably runs
		// through it (rejected counter below).
		time.Sleep(2 * time.Millisecond)
		rep, err := fed.Handoff(victim)
		if err != nil {
			fmt.Printf("FAIL handoff shard %d: %v\n", victim, err)
			failures++
			close(gate)
			return
		}
		report = rep
		close(gate)
	}()

	storm := opts.runs - fedHangRuns
	const submitters = 8
	var wg sync.WaitGroup
	var submitFailed atomic.Int64
	for w := 0; w < submitters; w++ {
		n := storm / submitters
		if w < storm%submitters {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if !submitOne(false) {
					submitFailed.Add(1)
				}
			}
		}(n)
	}
	wg.Wait()
	<-killDone
	failures += int(submitFailed.Load())
	fmt.Printf("storm      %d accepted, %d handoff-window rejections (IDs burned), kill+handoff on shard %d\n",
		accepted.Load(), rejected.Load(), victim)
	fmt.Printf("handoff    %d runs: %d finished history, %d re-queued (%d resumed from checkpoints), %d skipped\n",
		report.Runs, report.Finished, report.Queued, report.Resumed, report.Skipped)

	// Wait out every accepted run and check the bit-identity oracle.
	mu.Lock()
	all := make(map[uint64]int64, len(specs))
	for id, seed := range specs {
		all[id] = seed
	}
	mu.Unlock()
	badState, badSum := 0, 0
	for id, seed := range all {
		info, err := fed.Wait(id)
		if err != nil {
			fmt.Printf("FAIL wait run %d: %v\n", id, err)
			failures++
			continue
		}
		if info.State != deepum.RunCompleted {
			if badState == 0 {
				fmt.Printf("FAIL run %d ended %s (%s)\n", id, info.State, info.Reason)
			}
			badState++
			continue
		}
		if want := fedExpect(seed); info.Outcome.AccessChecksum != want {
			if badSum == 0 {
				fmt.Printf("FAIL run %d checksum %016x, want %016x (seed %d)\n",
					id, info.Outcome.AccessChecksum, want, seed)
			}
			badSum++
		}
	}
	if badState > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) did not complete\n", badState)
	}
	if badSum > 0 {
		failures++
		fmt.Printf("FAIL %d run(s) diverged from the uninterrupted checksum\n", badSum)
	}

	// No run lost, none duplicated: every accepted ID on exactly one live
	// shard, and the rosters agree with the ownership map.
	seen := map[uint64]int{}
	for ord := 0; ord < opts.shards; ord++ {
		if ord == victim {
			continue
		}
		for _, info := range fed.Supervisor(ord).List() {
			if o, _ := fed.Owner(info.ID); o == ord {
				seen[info.ID]++
			}
		}
	}
	lost, dup := 0, 0
	for id := range all {
		switch n := seen[id]; {
		case n == 0:
			lost++
		case n > 1:
			dup++
		}
	}
	if lost > 0 || dup > 0 {
		failures++
		fmt.Printf("FAIL run accounting: %d lost, %d duplicated across live shards\n", lost, dup)
	}

	st := fed.Stats()
	if st.Handoffs != 1 || st.Live != opts.shards-1 {
		failures++
		fmt.Printf("FAIL federation stats: %+v (want 1 handoff, %d live)\n", st, opts.shards-1)
	}
	if retired, _ := filepath.Glob(filepath.Join(dir, "*.adopted")); len(retired) != 1 {
		failures++
		fmt.Printf("FAIL dead journal not retired: %d *.adopted files\n", len(retired))
	}

	if opts.store {
		failures += auditFedStore(fed, dir)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fed.Drain(ctx); err != nil {
		failures++
		fmt.Printf("FAIL drain: %v\n", err)
	}
	if leaked := goroutineLeak(startGoroutines); leaked > 0 {
		failures++
		fmt.Printf("FAIL goroutines: %d leaked (started with %d)\n", leaked, startGoroutines)
	}

	if failures > 0 {
		fmt.Printf("federation soak FAILED: %d failure(s) in %v\n", failures, time.Since(start).Round(time.Millisecond))
		return 1
	}
	fmt.Printf("federation soak OK: %d runs, shard %d failed over (%d adopted, %d resumed), %v\n",
		accepted.Load(), victim, report.Queued+report.Finished, report.Resumed,
		time.Since(start).Round(time.Millisecond))
	return 0
}

// auditFedStore is the post-storm store-reference audit (-fed-store): a
// scrub pass over the shared store must find nothing to repair or degrade,
// every checkpoint record in every journal — live shards and the dead
// shard's retired *.adopted — must be a 16-byte reference (the blobs never
// touch a WAL), and every one of those references must resolve in the
// store: the mid-storm kill and handoff may not have dangled a single
// checkpoint. Returns the number of failed assertions.
func auditFedStore(fed *deepum.Federation, dir string) int {
	failures := 0
	st := fed.Store()
	if st == nil {
		fmt.Printf("FAIL store audit: federation has no store\n")
		return 1
	}
	srep, err := st.Scrub()
	if err != nil {
		fmt.Printf("FAIL store scrub: %v\n", err)
		return 1
	}
	if srep.CorruptFrames > 0 || srep.Repaired > 0 || len(srep.Lost) > 0 || srep.TornBytes > 0 {
		failures++
		fmt.Printf("FAIL store scrub found damage after a clean-disk storm: %+v\n", srep)
	}

	journals, _ := filepath.Glob(filepath.Join(dir, "*.journal"))
	adopted, _ := filepath.Glob(filepath.Join(dir, "*.adopted"))
	refs, inline, dangling := 0, 0, 0
	for _, path := range append(journals, adopted...) {
		_, err := journal.ReplayStreamFile(path, func(rec journal.Record) error {
			if rec.Type != journal.RecCheckpointed || len(rec.Data) == 0 {
				return nil
			}
			key, ok := store.DecodeRef(rec.Data)
			if !ok {
				inline++
				return nil
			}
			refs++
			if !st.Has(key) {
				dangling++
			}
			return nil
		})
		if err != nil {
			failures++
			fmt.Printf("FAIL store audit: replaying %s: %v\n", path, err)
		}
	}
	if inline > 0 {
		failures++
		fmt.Printf("FAIL store audit: %d checkpoint record(s) hold inline blobs, want references only\n", inline)
	}
	if dangling > 0 {
		failures++
		fmt.Printf("FAIL store audit: %d of %d journal reference(s) dangle\n", dangling, refs)
	}
	if refs == 0 {
		failures++
		fmt.Printf("FAIL store audit: no checkpoint references journaled at all\n")
	}
	sstats := st.Stats()
	fmt.Printf("store      %d journal refs across %d journal(s), all resolve; %d keys, %d dedup hits, %d frames scrubbed clean\n",
		refs, len(journals)+len(adopted), sstats.Keys, sstats.DedupHits, srep.Frames)
	return failures
}

// chooseFedVictim prefers a shard wedged on a checkpointed hang run — the
// kill then provably interrupts mid-run state — falling back to shard 0.
func chooseFedVictim(fed *deepum.Federation, shards int) int {
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		for ord := 0; ord < shards; ord++ {
			for _, info := range fed.Supervisor(ord).List() {
				if info.State == deepum.RunRunning && info.Spec.Chaos == "hang" && info.Checkpoints >= 2 {
					return ord
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	return 0
}
