// Command deepum-soak is a deterministic randomized soak harness for the
// self-healing stack: it composes schedules of the builtin chaos scenarios
// — random onset, duration, and overlap under a fixed seed — runs each
// schedule through the engine with the closed-loop health controller
// attached, and asserts the robustness invariants end-to-end:
//
//   - the invariant checker reports no violation,
//   - the degradation ladder converges back to L0 after injection ends,
//   - the memory-access stream is bit-identical to an uninjected baseline
//     (degradation is monotone-safe: every ladder level computes the same
//     thing, only slower),
//   - re-running a schedule reproduces the run bit-for-bit (checksums,
//     ladder transitions, chaos counters).
//
// On failure the harness greedily minimizes the schedule (dropping phases
// while the failure persists) and prints a one-line reproducer: the seed,
// the phase list, and the flags to replay it.
//
//	deepum-soak                         # default soak (3 schedules x 3 phases)
//	deepum-soak -seed 7 -schedules 5
//	deepum-soak -trace soak.trace.json  # Chrome trace of the last run
//
// With -federation the harness instead soaks the sharded supervisor
// federation: an admission storm across -fed-shards shards with one shard
// killed and handed off mid-storm, asserting every run completes with the
// uninterrupted checksum and no run ID is lost or duplicated (see
// federation.go). The shard journals survive in -fed-dir so
// deepum-inspect journal -audit can re-verify the same invariant from
// disk.
//
//	deepum-soak -federation -fed-runs 10000 -fed-shards 4 -fed-dir /tmp/fedsoak
//
// -fed-store additionally backs the federation with a shared
// content-addressed checkpoint store and audits it after the storm: the
// scrubber must find nothing to repair, every journaled checkpoint record
// (including the dead shard's retired journal) must be a 16-byte store
// reference, and every reference must resolve — the mid-storm kill and
// handoff may not dangle a single checkpoint.
//
//	deepum-soak -federation -fed-store -fed-runs 10000 -fed-shards 4
//
// With -retry-storm the harness drills exactly-once admission instead:
// clients whose transport injects timeouts-after-send retry every submit
// under its idempotency key through a mid-storm shard kill and handoff,
// and the harness asserts one execution per key, response/ID agreement,
// and the clean-execution checksum oracle (see retrystorm.go). Shares the
// -fed-* sizing flags and -seed.
//
//	deepum-soak -retry-storm -fed-runs 2000 -fed-shards 4 -fed-dir /tmp/storm
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/engine"
	"deepum/internal/health"
	"deepum/internal/models"
	"deepum/internal/obs"
	"deepum/internal/sim"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed; everything derives from it")
		schedules = flag.Int("schedules", 3, "randomized chaos schedules to soak")
		phasesN   = flag.Int("phases", 3, "chaos phases per schedule")
		model     = flag.String("model", "bert-large", "workload model")
		batch     = flag.Int64("batch", 16, "batch size (oversubscribed at the default scale)")
		scale     = flag.Int64("scale", 8, "size divisor")
		iters     = flag.Int("iters", 2, "measured iterations per run")
		warmup    = flag.Int("warmup", 1, "warmup iterations per run")
		tracePath = flag.String("trace", "", "write a Chrome trace of the final run here")

		federation = flag.Bool("federation", false, "run the federation failover soak instead of the chaos-schedule soak")
		fedRuns    = flag.Int("fed-runs", 10000, "federation soak: admission-storm size")
		fedShards  = flag.Int("fed-shards", 4, "federation soak: shard count")
		fedWorkers = flag.Int("fed-workers", 4, "federation soak: workers per shard")
		fedDir     = flag.String("fed-dir", "", "federation soak: shard journal directory, kept for post-hoc audit (empty = temp dir)")
		fedStore   = flag.Bool("fed-store", false, "federation soak: back checkpoints with a shared content-addressed store and audit every journal reference after the storm")

		retryStorm = flag.Bool("retry-storm", false, "run the exactly-once retry-storm soak (aggressive-timeout clients + idempotency keys through a mid-storm shard kill); shares the -fed-* sizing flags")

		contention = flag.Bool("contention", false, "run the multi-tenant oversubscription soak: concurrent runs demanding a multiple of the GPU budget under the memory arbiter, suspend-to-checkpoint included")
		conRuns    = flag.Int("con-runs", 8, "contention soak: concurrent runs (each demands 40% of the budget)")
		conWorkers = flag.Int("con-workers", 8, "contention soak: worker pool size (raised to -con-runs if smaller)")
		conIters   = flag.Int("con-iters", 300, "contention soak: wall-paced iterations per run")
	)
	flag.Parse()
	if os.Getenv("DEEPUM_SOAK_SHORT") != "" {
		*schedules, *phasesN = 2, 3
		if *fedRuns > 2000 {
			*fedRuns = 2000
		}
		if *conIters > 150 {
			*conIters = 150
		}
	}

	if *contention {
		os.Exit(runContentionSoak(contentionOptions{
			runs:    *conRuns,
			workers: *conWorkers,
			iters:   *conIters,
			seed:    *seed,
		}))
	}
	if *retryStorm {
		os.Exit(runRetryStorm(retryStormOptions{
			runs:    *fedRuns,
			shards:  *fedShards,
			workers: *fedWorkers,
			dir:     *fedDir,
			seed:    *seed,
		}))
	}
	if *federation {
		os.Exit(runFederationSoak(fedSoakOptions{
			runs:    *fedRuns,
			shards:  *fedShards,
			workers: *fedWorkers,
			dir:     *fedDir,
			store:   *fedStore,
		}))
	}

	h := &harness{
		seed:   *seed,
		model:  *model,
		batch:  *batch,
		scale:  *scale,
		iters:  *iters,
		warmup: *warmup,
		pool:   eligibleScenarios(),
	}
	if len(h.pool) < 6 {
		fatalf("only %d non-interrupting chaos scenarios available; soak needs >= 6", len(h.pool))
	}

	startGoroutines := runtime.NumGoroutine()
	start := time.Now()

	// The uninjected, controller-less baseline pins the access-stream
	// checksum every soaked run must reproduce.
	base, err := h.runOnce(nil, nil)
	if err != nil {
		fatalf("baseline run: %v", err)
	}
	h.baseChecksum = base.checksum
	fmt.Printf("baseline   %s batch %d scale 1/%d: checksum %016x, %d faults/iter\n",
		h.model, h.batch, h.scale, base.checksum, base.faultsPerIter)

	failures := 0
	phaseRot := 0 // global rotation over the pool guarantees scenario coverage
	covered := map[string]bool{}
	for s := 0; s < *schedules; s++ {
		phases := h.buildSchedule(s, *phasesN, &phaseRot)
		for _, p := range phases {
			covered[p.Scenario.Name] = true
		}
		fmt.Printf("schedule %d %s\n", s, chaos.FormatPhases(phases))
		if d, msg := h.soakSchedule(phases); msg == "" {
			fmt.Printf("  ok: peak %s, %d transition(s), %d impulse(s), %s\n",
				d.maxLevel, strings.Count(d.transitions, ";"), d.impulses, d.chaosCounts)
		} else {
			failures++
			min := h.minimize(phases)
			fmt.Printf("FAIL schedule %d: %s\n", s, msg)
			fmt.Printf("  reproducer: deepum-soak -seed %d -model %s -batch %d -scale %d -iters %d -warmup %d\n",
				h.seed, h.model, h.batch, h.scale, h.iters, h.warmup)
			fmt.Printf("  minimized phases: %s\n", chaos.FormatPhases(min))
		}
	}
	if len(covered) < 6 {
		failures++
		fmt.Printf("FAIL coverage: only %d distinct scenarios soaked, want >= 6\n", len(covered))
	}

	if *tracePath != "" {
		if err := h.writeTrace(*tracePath, *schedules, *phasesN); err != nil {
			fatalf("trace: %v", err)
		}
		fmt.Printf("trace      written to %s\n", *tracePath)
	}

	// The engine is synchronous, so a soak that leaks goroutines points at
	// the harness or a regression in something it pulled in.
	if leaked := goroutineLeak(startGoroutines); leaked > 0 {
		failures++
		fmt.Printf("FAIL goroutines: %d leaked (started with %d)\n", leaked, startGoroutines)
	}

	if failures > 0 {
		fmt.Printf("soak FAILED: %d failure(s) in %v\n", failures, time.Since(start).Round(time.Millisecond))
		os.Exit(1)
	}
	fmt.Printf("soak OK: %d schedules, %d scenarios covered, %v\n",
		*schedules, len(covered), time.Since(start).Round(time.Millisecond))
}

// harness carries the fixed workload and the baseline fingerprint.
type harness struct {
	seed          int64
	model         string
	batch, scale  int64
	iters, warmup int
	pool          []chaos.Scenario
	baseChecksum  uint64
}

// eligibleScenarios returns the active, non-interrupting builtin scenarios —
// the ones a phase schedule may compose.
func eligibleScenarios() []chaos.Scenario {
	var out []chaos.Scenario
	for _, sc := range chaos.Scenarios() {
		if sc.Active() && !sc.Interrupts() {
			out = append(out, sc)
		}
	}
	return out
}

// buildSchedule derives one schedule's phases deterministically from the
// master seed and schedule index: the scenario rotates through the pool
// (coverage), onset and duration are drawn from the schedule's own PRNG so
// phases overlap at random.
func (h *harness) buildSchedule(idx, n int, rot *int) []chaos.Phase {
	rng := rand.New(rand.NewSource(h.seed + int64(idx)*1_000_003))
	phases := make([]chaos.Phase, 0, n)
	for i := 0; i < n; i++ {
		sc := h.pool[*rot%len(h.pool)]
		*rot++
		// Onsets span the warm bulk of the run (the default workload runs
		// ~3s of virtual time and prefetching only starts once the tables
		// have learned) but every phase ends well before the run does, so
		// the convergence assertion has room to walk the ladder back down.
		onset := sim.Duration(rng.Int63n(int64(1500 * time.Millisecond)))
		duration := sim.Duration(int64(50*time.Millisecond) + rng.Int63n(int64(250*time.Millisecond)))
		phases = append(phases, chaos.Phase{Scenario: sc, Onset: onset, Duration: duration})
	}
	return phases
}

// digest is everything a soak run asserts on, comparable across reruns.
type digest struct {
	status        string
	invariant     string
	checksum      uint64
	faultsPerIter int64
	totalTime     sim.Duration
	finalLevel    string
	maxLevel      string
	transitions   string // rendered log: "at:from->to;..."
	impulses      int64
	chaosCounts   string
}

// runOnce executes the fixed workload under the given phase schedule (nil =
// clean, controller-less baseline) and fingerprints the run. rec, when
// non-nil, captures the run's event trace.
func (h *harness) runOnce(phases []chaos.Phase, rec *obs.Recorder) (digest, error) {
	prog, err := models.Build(models.Spec{Model: h.model}, h.batch, h.scale)
	if err != nil {
		return digest{}, err
	}
	cfg := engine.Config{
		Params:        sim.DefaultParams().Scale(h.scale),
		Program:       prog,
		Policy:        engine.PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Iterations:    h.iters,
		Warmup:        h.warmup,
		Seed:          h.seed,
		Obs:           rec,
	}
	if phases != nil {
		inj, err := chaos.NewScheduledInjector(chaos.Scenario{Name: "soak"}, phases, h.seed)
		if err != nil {
			return digest{}, err
		}
		cfg.Chaos = inj
		// The controller clock scales with the failure density it watches:
		// soak phases are 50-300ms windows of moderate injection (vs. the
		// engine default tuned for sustained full-run chaos), so scores
		// remember a few milliseconds and the ladder moves on a
		// milliseconds cadence — several escalate/recover cycles fit in
		// one phase, and convergence still has >1s of clean tail.
		cfg.Health = health.NewController(health.Options{
			HalfLife:      int64(2 * time.Millisecond),
			Dwell:         int64(5 * time.Millisecond),
			ProbeInterval: int64(10 * time.Millisecond),
		})
	}
	r, err := engine.RunContext(context.Background(), cfg)
	if err != nil {
		return digest{}, err
	}
	d := digest{
		status:        r.Status.String(),
		checksum:      r.AccessChecksum,
		faultsPerIter: r.FaultsPerIter,
		totalTime:     r.TotalTime,
		chaosCounts: fmt.Sprintf("tf=%d dr=%d pr=%d pg=%d bc=%d dn=%d dup=%d ms=%d pw=%d",
			r.Chaos.TransferFailures, r.Chaos.DemandRetries, r.Chaos.PrefetchRetries,
			r.Chaos.PrefetchGiveUps, r.Chaos.BatchCapHits, r.Chaos.DroppedNotifies,
			r.Chaos.DupNotifies, r.Chaos.MigratorStalls, r.Chaos.PressureWindows),
	}
	if r.Invariant != nil {
		d.invariant = r.Invariant.Error()
	}
	if r.Health != nil {
		d.finalLevel = r.Health.Level
		d.maxLevel = r.Health.MaxLevel
		d.impulses = r.Health.Impulses
		for _, t := range r.Health.TransitionLog {
			d.transitions += fmt.Sprintf("%d:%s->%s;", t.At, t.FromName, t.ToName)
		}
	}
	return d, nil
}

// soakSchedule runs one schedule twice and returns the first run's digest
// plus a failure message ("" when every soak invariant holds).
func (h *harness) soakSchedule(phases []chaos.Phase) (digest, string) {
	d1, err := h.runOnce(phases, nil)
	if err != nil {
		return d1, fmt.Sprintf("run error: %v", err)
	}
	if d1.invariant != "" {
		return d1, fmt.Sprintf("invariant violated: %s", d1.invariant)
	}
	if d1.finalLevel != "L0" {
		return d1, fmt.Sprintf("health controller did not converge: final level %s (peak %s)", d1.finalLevel, d1.maxLevel)
	}
	if d1.checksum != h.baseChecksum {
		return d1, fmt.Sprintf("access stream diverged from baseline: %016x != %016x (degradation is not monotone-safe)", d1.checksum, h.baseChecksum)
	}
	d2, err := h.runOnce(phases, nil)
	if err != nil {
		return d1, fmt.Sprintf("rerun error: %v", err)
	}
	if d1 != d2 {
		return d1, fmt.Sprintf("non-deterministic under fixed seed:\n  run1 %+v\n  run2 %+v", d1, d2)
	}
	return d1, ""
}

// minimize greedily drops phases while the failure persists, returning the
// smallest failing subset it finds (possibly empty: the failure does not
// depend on injection at all).
func (h *harness) minimize(phases []chaos.Phase) []chaos.Phase {
	cur := append([]chaos.Phase{}, phases...)
	for changed := true; changed; {
		changed = false
		for i := range cur {
			cand := append(append([]chaos.Phase{}, cur[:i]...), cur[i+1:]...)
			if _, msg := h.soakSchedule(cand); msg != "" {
				cur = cand
				changed = true
				break
			}
		}
	}
	return cur
}

// writeTrace re-runs the last schedule with the observer attached and
// writes its Chrome trace (the CI soak job feeds it to deepum-inspect).
func (h *harness) writeTrace(path string, schedules, phasesN int) error {
	rot := (schedules - 1) * phasesN
	phases := h.buildSchedule(schedules-1, phasesN, &rot)
	rec := obs.NewRecorder(0)
	if _, err := h.runOnce(phases, rec); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, rec.Events()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// goroutineLeak settles briefly and reports how many goroutines beyond the
// starting count are still alive.
func goroutineLeak(start int) int {
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= start {
			return 0
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	return runtime.NumGoroutine() - start
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "deepum-soak: "+format+"\n", args...)
	os.Exit(1)
}
