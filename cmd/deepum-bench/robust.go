package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"deepum"
)

// robustReport is the BENCH_9.json schema: the robustness-layer throughput
// numbers the ROADMAP's committed perf trajectory tracks across PRs, plus
// the fault-handler hot-path cost and the prefetch-policy tournament.
// Every throughput figure is wall-clock cost of a real code path, not
// simulated time: faults and events through one traced training run,
// admissions through a journaled supervisor, checkpoint bytes through the
// content-addressed store with its per-Put fsync (save) and a cold reopen
// (load), and HandleGroups through testing.Benchmark on the untraced
// demand-migration cycle. The tournament ranks every registered prefetch
// policy per workload by simulated iteration time.
type robustReport struct {
	Bench   int    `json:"bench"`
	GoOS    string `json:"goos"`
	GoArch  string `json:"goarch"`
	NumCPU  int    `json:"num_cpu"`
	Workers int    `json:"workers"`

	FaultsPerSec     float64 `json:"faults_per_sec"`
	EventsPerSec     float64 `json:"events_per_sec"`
	AdmissionsPerSec float64 `json:"admissions_per_sec"`
	CkptSaveMBPerSec float64 `json:"checkpoint_save_mb_per_sec"`
	CkptLoadMBPerSec float64 `json:"checkpoint_load_mb_per_sec"`

	HandleGroups     deepum.HandleGroupsPerf `json:"handle_groups"`
	PolicyTournament []tournamentWorkload    `json:"policy_tournament"`

	Detail struct {
		Faults        int64   `json:"faults"`
		Events        int64   `json:"events"`
		TrainMillis   float64 `json:"train_millis"`
		Admissions    int     `json:"admissions"`
		AdmitMillis   float64 `json:"admit_millis"`
		CkptBlobs     int     `json:"ckpt_blobs"`
		CkptBlobBytes int     `json:"ckpt_blob_bytes"`
		CkptDedupKeys int     `json:"ckpt_dedup_keys"`
		SaveMillis    float64 `json:"save_millis"`
		LoadMillis    float64 `json:"load_millis"`
	} `json:"detail"`
}

// runRobustBench measures the four robustness throughputs and writes the
// JSON report to path.
func runRobustBench(path string) error {
	rep := robustReport{Bench: 9, GoOS: runtime.GOOS, GoArch: runtime.GOARCH, NumCPU: runtime.NumCPU()}

	// Faults/sec and events/sec: one traced DeepUM training run; both
	// rates are events processed per second of WALL time, the simulator's
	// real throughput.
	observer := deepum.NewObserver(deepum.TraceOptions{Capacity: 1 << 20})
	// Default scale 8 oversubscribes GPU memory, so the run actually
	// faults; at smaller footprints the working set fits and faults/sec
	// degenerates to zero.
	cfg := deepum.DefaultConfig()
	cfg.Iterations = 3
	cfg.Warmup = 2
	cfg.Observe = observer
	start := time.Now()
	res, err := deepum.Train(deepum.Workload{Model: "bert-base", Batch: 32}, cfg)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	wall := time.Since(start)
	rep.Detail.Faults = res.PageFaultsPerIteration * int64(res.Iterations)
	rep.Detail.Events = int64(observer.EventCount()) + observer.Dropped()
	rep.Detail.TrainMillis = float64(wall.Microseconds()) / 1e3
	rep.FaultsPerSec = float64(rep.Detail.Faults) / wall.Seconds()
	rep.EventsPerSec = float64(rep.Detail.Events) / wall.Seconds()

	dir, err := os.MkdirTemp("", "deepum-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Admissions/sec: submissions accepted and completed by a journaled
	// supervisor running a trivial workload — the admission path (quota,
	// queue, WAL append) is the measurand, so the journal skips fsync and
	// the runner does no work.
	rep.Workers = runtime.NumCPU()
	runner := deepum.RunnerFunc(func(ctx context.Context, spec deepum.RunSpec, resume []byte, progress func([]byte)) (deepum.RunOutcome, error) {
		return deepum.RunOutcome{Status: "completed"}, nil
	})
	sup, err := deepum.NewSupervisor(deepum.SupervisorConfig{
		Runner:        runner,
		Workers:       rep.Workers,
		QueueDepth:    4096,
		JournalPath:   filepath.Join(dir, "bench.journal"),
		JournalNoSync: true,
	})
	if err != nil {
		return fmt.Errorf("supervisor: %w", err)
	}
	const admissions = 4096
	start = time.Now()
	ids := make([]uint64, 0, admissions)
	for i := 0; i < admissions; i++ {
		id, err := sup.Submit(deepum.RunSpec{Model: "bert-base", Batch: 8, Iterations: 1, Seed: int64(i + 1)})
		if err != nil {
			return fmt.Errorf("submit %d: %w", i, err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := sup.Wait(id); err != nil {
			return fmt.Errorf("wait %d: %w", id, err)
		}
	}
	wall = time.Since(start)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sup.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	rep.Detail.Admissions = admissions
	rep.Detail.AdmitMillis = float64(wall.Microseconds()) / 1e3
	rep.AdmissionsPerSec = admissions / wall.Seconds()

	// Checkpoint save/load MB/s through the content-addressed store. Save
	// keeps the per-Put fsync — that IS the durable-save cost; load is a
	// cold reopen (index rebuild from the file) plus a Get per key.
	const (
		blobs    = 64
		blobSize = 1 << 20
	)
	blob := make([]byte, blobSize)
	st, _, err := deepum.OpenCheckpointStore(filepath.Join(dir, "bench.store"), deepum.CheckpointStoreOptions{})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	keys := make([]deepum.CheckpointKey, 0, blobs)
	start = time.Now()
	for i := 0; i < blobs; i++ {
		// Distinct pseudo-random content per blob (splitmix64 stream), so
		// dedup stores every one.
		x := uint64(i)*0x9e3779b97f4a7c15 + 1
		for off := 0; off < blobSize; off += 8 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			z ^= z >> 31
			for b := 0; b < 8 && off+b < blobSize; b++ {
				blob[off+b] = byte(z >> (8 * b))
			}
		}
		key, err := st.Put(blob)
		if err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
		keys = append(keys, key)
	}
	saveWall := time.Since(start)
	if err := st.Close(); err != nil {
		return err
	}

	st, _, err = deepum.OpenCheckpointStore(filepath.Join(dir, "bench.store"), deepum.CheckpointStoreOptions{})
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	start = time.Now()
	for _, key := range keys {
		if _, err := st.Get(key); err != nil {
			return fmt.Errorf("get %s: %w", key, err)
		}
	}
	loadWall := time.Since(start)
	rep.Detail.CkptDedupKeys = st.Len()
	if err := st.Close(); err != nil {
		return err
	}
	mb := float64(blobs*blobSize) / (1 << 20)
	rep.Detail.CkptBlobs = blobs
	rep.Detail.CkptBlobBytes = blobSize
	rep.Detail.SaveMillis = float64(saveWall.Microseconds()) / 1e3
	rep.Detail.LoadMillis = float64(loadWall.Microseconds()) / 1e3
	rep.CkptSaveMBPerSec = mb / saveWall.Seconds()
	rep.CkptLoadMBPerSec = mb / loadWall.Seconds()

	// HandleGroups ns/op and allocs/op: the fault-handler hot path under
	// testing.Benchmark, with tracing off (the zero-alloc contract).
	rep.HandleGroups = deepum.MeasureHandleGroups()

	// Policy tournament: every registered prefetch policy over the short
	// suite, ranked per workload by mean iteration time.
	tour, err := runTournament(16, 2, 1, 7, false)
	if err != nil {
		return fmt.Errorf("tournament: %w", err)
	}
	rep.PolicyTournament = tour

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("== robustness bench -> %s ==\n", path)
	fmt.Printf("faults/sec           %.0f\n", rep.FaultsPerSec)
	fmt.Printf("events/sec           %.0f\n", rep.EventsPerSec)
	fmt.Printf("admissions/sec       %.0f\n", rep.AdmissionsPerSec)
	fmt.Printf("checkpoint save MB/s %.1f\n", rep.CkptSaveMBPerSec)
	fmt.Printf("checkpoint load MB/s %.1f\n", rep.CkptLoadMBPerSec)
	fmt.Printf("HandleGroups         %.1f ns/op, %d allocs/op\n",
		rep.HandleGroups.NsPerOp, rep.HandleGroups.AllocsPerOp)
	for _, w := range rep.PolicyTournament {
		fmt.Printf("tournament %-10s b%-5d winner %s\n", w.Model, w.Batch, w.Ranking[0].Policy)
	}
	return nil
}
