// Command deepum-bench regenerates the tables and figures of the DeepUM
// paper's evaluation (§6). With no arguments it runs every experiment at the
// default scale; -run selects one; -scale 1 runs paper-sized footprints.
//
//	deepum-bench -run fig9a
//	deepum-bench -run table5 -scale 4 -iters 8
//	deepum-bench -list
//
// -json instead runs the robustness micro-bench (see robust.go) and writes
// its throughput report — faults/sec, events/sec, admissions/sec,
// checkpoint save/load MB/s, HandleGroups ns/op, and the prefetch-policy
// tournament — to the given path:
//
//	deepum-bench -json BENCH_9.json
//
// -tournament races every registered prefetch policy (-policy-list) over a
// small workload suite and prints the per-workload ranking; any policy
// that fails to complete cleanly, or that perturbs the workload's
// AccessChecksum, exits nonzero — CI runs this as a gate:
//
//	deepum-bench -tournament -quick -scale 32 -iters 2 -warmup 1
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"deepum"
)

func main() {
	var (
		run     = flag.String("run", "", "experiment id to run (default: all)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Int64("scale", 8, "size divisor: 1 = paper-sized footprints")
		iters   = flag.Int("iters", 4, "measured training iterations per run")
		warm    = flag.Int("warmup", 3, "warmup iterations before measurement")
		quick   = flag.Bool("quick", false, "one batch size per model")
		seed    = flag.Int64("seed", 1, "seed for input-dependent access sampling")
		timeout = flag.Duration("timeout", 0, "wall-clock budget for the whole bench; experiments past it are skipped")
		chaosN  = flag.String("chaos", "", "fault-injection scenario for UM-side runs (baselines stay clean); \"list\" enumerates")
		chaosS  = flag.Int64("chaos-seed", 0, "seed for chaos injection draws (0 = reuse -seed)")
		jsonOut = flag.String("json", "", "run the robustness micro-bench and write its JSON report here (e.g. BENCH_9.json)")
		policyN = flag.String("policy", "", "prefetch policy for the DeepUM runs (see -policy-list; default correlation)")
		listPol = flag.Bool("policy-list", false, "list registered prefetch policies and exit")
		tourney = flag.Bool("tournament", false, "race every prefetch policy over a workload suite and print the ranking")
	)
	flag.Parse()

	if *listPol {
		for _, p := range deepum.Policies() {
			fmt.Printf("%-14s %s\n", p.Name, p.Summary)
		}
		return
	}
	if *policyN != "" && !deepum.PolicyKnown(*policyN) {
		fmt.Fprintf(os.Stderr, "deepum-bench: unknown prefetch policy %q (see -policy-list)\n", *policyN)
		os.Exit(1)
	}
	if *tourney {
		rows, err := runTournament(*scale, *iters, *warm, *seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "deepum-bench: tournament: %v\n", err)
			os.Exit(1)
		}
		printTournament(rows)
		return
	}

	if *jsonOut != "" {
		if err := runRobustBench(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "deepum-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range deepum.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *chaosN == "list" {
		for _, sc := range deepum.ChaosScenarios() {
			fmt.Printf("%-16s %s\n", sc.Name, sc.Description)
		}
		return
	}
	if *chaosN != "" && *chaosN != "none" && !knownScenario(*chaosN) {
		fmt.Fprintf(os.Stderr, "deepum-bench: unknown chaos scenario %q (see -chaos list)\n", *chaosN)
		os.Exit(1)
	}
	opts := deepum.ExperimentOptions{
		Scale:      *scale,
		Iterations: *iters,
		Warmup:     *warm,
		Quick:      *quick,
		Seed:       *seed,
		Chaos:      *chaosN,
		ChaosSeed:  *chaosS,
		Policy:     *policyN,
	}
	var ids []string
	if *run != "" {
		ids = []string{*run}
	} else {
		for _, e := range deepum.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	for i, id := range ids {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "timeout: %d of %d experiments done; skipped %v onward\n",
				i, len(ids), id)
			os.Exit(3)
		}
		start := time.Now()
		tbl, err := runExperiment(ctx, id, opts)
		if err == context.DeadlineExceeded {
			fmt.Fprintf(os.Stderr, "timeout: %s interrupted after %v (%d of %d experiments done)\n",
				id, time.Since(start).Round(time.Millisecond), i, len(ids))
			os.Exit(3)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// knownScenario checks the name against the public scenario listing.
func knownScenario(name string) bool {
	for _, sc := range deepum.ChaosScenarios() {
		if sc.Name == name {
			return true
		}
	}
	return false
}

// runExperiment bounds one experiment by the context's deadline. Experiments
// are synchronous batch jobs, so the bound is a supervisor: on expiry the
// bench reports partial progress and exits while the abandoned experiment's
// goroutine dies with the process.
func runExperiment(ctx context.Context, id string, opts deepum.ExperimentOptions) (fmt.Stringer, error) {
	if ctx.Done() == nil {
		return deepum.RunExperiment(id, opts)
	}
	type outcome struct {
		tbl fmt.Stringer
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		tbl, err := deepum.RunExperiment(id, opts)
		ch <- outcome{tbl, err}
	}()
	select {
	case o := <-ch:
		return o.tbl, o.err
	case <-ctx.Done():
		return nil, context.DeadlineExceeded
	}
}
