// Command deepum-bench regenerates the tables and figures of the DeepUM
// paper's evaluation (§6). With no arguments it runs every experiment at the
// default scale; -run selects one; -scale 1 runs paper-sized footprints.
//
//	deepum-bench -run fig9a
//	deepum-bench -run table5 -scale 4 -iters 8
//	deepum-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"deepum/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		scale = flag.Int64("scale", 8, "size divisor: 1 = paper-sized footprints")
		iters = flag.Int("iters", 4, "measured training iterations per run")
		warm  = flag.Int("warmup", 3, "warmup iterations before measurement")
		quick = flag.Bool("quick", false, "one batch size per model")
		seed  = flag.Int64("seed", 1, "seed for input-dependent access sampling")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := experiments.Options{
		Scale:      *scale,
		Iterations: *iters,
		Warmup:     *warm,
		Quick:      *quick,
		Seed:       *seed,
	}
	var exps []experiments.Experiment
	if *run != "" {
		e, err := experiments.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		exps = []experiments.Experiment{e}
	} else {
		exps = experiments.All()
	}
	for _, e := range exps {
		start := time.Now()
		tbl, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(tbl)
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
