package main

import (
	"fmt"
	"sort"
	"strings"

	"deepum"
)

// tournamentRow is one prefetch policy's score on one workload. Rank 1 is
// the fastest mean iteration time; Winner marks it. FaultsPerIter is the
// secondary figure — a policy can buy speed with prefetch traffic, so the
// table keeps both visible.
type tournamentRow struct {
	Policy         string `json:"policy"`
	IterTimeNs     int64  `json:"iter_time_ns"`
	FaultsPerIter  int64  `json:"faults_per_iter"`
	PrefetchIssued int64  `json:"prefetch_issued"`
	PrefetchUseful int64  `json:"prefetch_useful"`
	Rank           int    `json:"rank"`
	Winner         bool   `json:"winner,omitempty"`
}

// tournamentWorkload is one workload's full ranking.
type tournamentWorkload struct {
	Model   string          `json:"model"`
	Batch   int64           `json:"batch"`
	Ranking []tournamentRow `json:"ranking"`
}

// tournamentSuite is the fixed workload slate: one regular-access
// transformer, one input-dependent recommender, one small CNN. quick
// drops to the first two for CI's short run.
func tournamentSuite(quick bool) []deepum.Workload {
	suite := []deepum.Workload{
		{Model: "bert-base", Batch: 32},
		{Model: "dlrm", Batch: 512},
		{Model: "mobilenet", Batch: 256},
	}
	if quick {
		return suite[:2]
	}
	return suite
}

// runTournament races every registered prefetch policy over the suite and
// ranks them per workload by mean iteration time. Every run must finish
// cleanly — StatusCompleted, no invariant violation — and all policies on
// a workload must report the same AccessChecksum (policies reorder
// migration, never computation); any breach is an error, which is what
// makes -tournament a CI gate and not just a scoreboard.
func runTournament(scale int64, iters, warmup int, seed int64, quick bool) ([]tournamentWorkload, error) {
	policies := deepum.Policies()
	if len(policies) < 2 {
		return nil, fmt.Errorf("tournament needs >= 2 registered policies, have %d", len(policies))
	}
	var out []tournamentWorkload
	for _, w := range tournamentSuite(quick) {
		entry := tournamentWorkload{Model: w.Model, Batch: w.Batch}
		var checksum uint64
		for _, p := range policies {
			cfg := deepum.DefaultConfig()
			cfg.Scale = scale
			cfg.Iterations = iters
			cfg.Warmup = warmup
			cfg.Seed = seed
			cfg.Policy = p.Name
			res, err := deepum.Train(w, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s b%d under %s: %w", w.Model, w.Batch, p.Name, err)
			}
			if !res.Succeeded() {
				return nil, fmt.Errorf("%s b%d under %s: status %s, want completed", w.Model, w.Batch, p.Name, res.Status)
			}
			if res.Invariant != nil {
				return nil, fmt.Errorf("%s b%d under %s: invariant violation: %v", w.Model, w.Batch, p.Name, res.Invariant)
			}
			if checksum == 0 {
				checksum = res.AccessChecksum
			} else if res.AccessChecksum != checksum {
				return nil, fmt.Errorf("%s b%d under %s: AccessChecksum %016x != suite's %016x — policy changed computation",
					w.Model, w.Batch, p.Name, res.AccessChecksum, checksum)
			}
			entry.Ranking = append(entry.Ranking, tournamentRow{
				Policy:         p.Name,
				IterTimeNs:     int64(res.IterationTime),
				FaultsPerIter:  res.PageFaultsPerIteration,
				PrefetchIssued: res.PrefetchIssued,
				PrefetchUseful: res.PrefetchUseful,
			})
		}
		sort.SliceStable(entry.Ranking, func(i, j int) bool {
			return entry.Ranking[i].IterTimeNs < entry.Ranking[j].IterTimeNs
		})
		for i := range entry.Ranking {
			entry.Ranking[i].Rank = i + 1
		}
		entry.Ranking[0].Winner = true
		out = append(out, entry)
	}
	return out, nil
}

// printTournament renders the per-workload ranking as a text table.
func printTournament(rows []tournamentWorkload) {
	for _, w := range rows {
		fmt.Printf("== policy tournament: %s b%d ==\n", w.Model, w.Batch)
		fmt.Printf("%-4s %-14s %14s %12s %10s %10s\n",
			"rank", "policy", "iter-time", "faults/iter", "issued", "useful")
		for _, r := range w.Ranking {
			mark := ""
			if r.Winner {
				mark = "  <- winner"
			}
			fmt.Printf("%-4d %-14s %12.3fms %12d %10d %10d%s\n",
				r.Rank, r.Policy, float64(r.IterTimeNs)/1e6,
				r.FaultsPerIter, r.PrefetchIssued, r.PrefetchUseful, mark)
		}
		fmt.Println(strings.Repeat("-", 70))
	}
}
