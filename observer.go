package deepum

// Observability. An Observer is the only way application code attaches
// tracing to a run: pass one in Config.Observe and the engine records
// typed events — fault batches, link transfers, the full prefetch
// lifecycle (issue, transfer, hit, waste), evictions, breaker transitions,
// per-iteration and per-kernel spans — into a fixed-capacity ring buffer.
// Afterwards, export the buffer as a Chrome trace (WriteChromeTrace, loads
// in Perfetto / chrome://tracing) or reduce it offline (Analyze).
//
// Cost model: a nil Config.Observe is the zero-cost path — every emit site
// in the engine and fault handler is guarded by a single pointer nil
// check, adds no allocations, and is verified by BenchmarkTrainNoObserver
// to leave the fault-handler hot path at 0 allocs/op. With an observer
// attached, recording one event is a mutex-guarded struct copy into a
// preallocated ring; memory is bounded by TraceOptions.Capacity and old
// events are overwritten (Dropped counts the overwrites).

import (
	"io"

	"deepum/internal/obs"
)

// TraceOptions parameterize an Observer. The zero value is ready to use.
type TraceOptions struct {
	// Capacity bounds the event ring buffer (in events, not bytes). Once
	// full, the oldest events are overwritten and counted in Dropped.
	// 0 selects the default (1M events, ~56 MB).
	Capacity int
}

// Observer collects a run's trace events. Create one with NewObserver,
// attach it via Config.Observe, and export after the run. An Observer is
// safe for concurrent use but records a single run at a time — reusing one
// across sequential runs concatenates their events.
type Observer struct {
	rec *obs.Recorder
}

// NewObserver builds an Observer with a preallocated event ring.
func NewObserver(opts TraceOptions) *Observer {
	cap := opts.Capacity
	if cap <= 0 {
		cap = obs.DefaultCapacity
	}
	return &Observer{rec: obs.NewRecorder(cap)}
}

// recorder returns the underlying ring, nil-safely: a nil *Observer (the
// Config.Observe default) yields a nil recorder, which every engine emit
// site treats as tracing-off.
func (o *Observer) recorder() *obs.Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// WriteChromeTrace exports the recorded events as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Timestamps
// are virtual (simulated) time except the pipeline track, which is
// wall-clock relative to observer attachment.
func (o *Observer) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChromeTrace(w, o.rec.Events())
}

// TraceAnalysis is the offline reduction of a trace: link utilisation,
// fault-batch histogram, prefetch lead-time distribution, eviction
// classification. Its String method renders a human-readable report.
type TraceAnalysis = obs.Analysis

// Analyze reduces the recorded events to summary statistics.
func (o *Observer) Analyze() *TraceAnalysis {
	return obs.Analyze(o.rec.Events())
}

// EventCount reports how many events are currently buffered.
func (o *Observer) EventCount() int { return o.rec.Len() }

// Dropped reports how many events were overwritten after the ring filled;
// 0 means the trace is complete.
func (o *Observer) Dropped() int64 { return o.rec.Dropped() }
