// Package core implements the DeepUM driver — the paper's primary
// contribution (§3.1, §4.2, §5): prefetching of UM blocks, page
// pre-eviction coupled with the prefetcher's predicted set, and
// invalidation of UM blocks belonging to inactive PyTorch blocks.
//
// The driver is mechanism only: it owns the bounded prefetch queue, the
// dedup and protected-set bookkeeping, the residency probe, observer hooks,
// and health-gate plumbing. *What to fetch next* is delegated to a
// pluggable policy (internal/policy); the paper's correlation chaser
// (internal/policy/correlation) is the default, selected by Options.Policy.
//
// On a real system the driver is a Linux kernel module with four kernel
// threads; here its policy logic is a deterministic state machine driven by
// the simulation engine (internal/engine), while internal/pipeline provides
// a faithful four-goroutine realization of the queue structure.
package core

import (
	"fmt"
	"io"

	"deepum/internal/correlation"
	"deepum/internal/obs"
	"deepum/internal/policy"
	"deepum/internal/sim"
	"deepum/internal/um"

	// The default policy registers itself; the driver must always be able
	// to resolve policy.DefaultName.
	_ "deepum/internal/policy/correlation"
)

// Options select which DeepUM mechanisms are active; the Figure 10 ablation
// toggles them one by one.
type Options struct {
	// Prefetch enables correlation prefetching (§4.2).
	Prefetch bool
	// Preevict enables page pre-eviction off the fault-handling critical
	// path (§5.1).
	Preevict bool
	// Invalidate enables dropping victim blocks that belong to inactive
	// PyTorch blocks instead of writing them back (§5.2).
	Invalidate bool
	// Degree is N, the number of kernels ahead the prefetcher chains before
	// pausing (§4.2); the paper's sweet spot is 32 (Figure 11).
	Degree int
	// TableConfig parameterizes the UM-block correlation tables (Table 6).
	TableConfig correlation.BlockTableConfig
	// PreevictWatermark is the fraction of device memory kept free by the
	// pre-evictor, expressed as a divisor (free >= capacity/divisor).
	PreevictWatermark int
	// TakeWindow overrides the migration thread's service window (how many
	// queue-front commands count as effectively in flight); zero keeps the
	// default of 64, which models roughly ten milliseconds of link work at
	// full block size. Scaled-down simulations shrink it proportionally.
	TakeWindow int
	// CapacityBytes is the device memory size; the prefetcher throttles the
	// outstanding predicted set to a fraction of it so aggressive chaining
	// cannot displace blocks that will be accessed sooner (§6.2: "aggressive
	// prefetching may hurt performance ... and evicts pages that will be
	// accessed soon"). Zero disables the throttle. The engine fills it in
	// from the simulated machine.
	CapacityBytes int64
	// WarmTables, when set, seeds the correlation policy with tables restored
	// from a checkpoint instead of empty ones; the driver adopts the tables'
	// own configuration (overriding TableConfig) so the set-index hash and
	// successor limits match the state being resumed. Policies without
	// correlation tables reject it — resume them through WarmPayload.
	WarmTables *correlation.Tables
	// Policy names the prefetch policy deciding what to fetch next; the
	// empty string selects the default ("correlation", the paper's chaser).
	// See internal/policy for the registry.
	Policy string
	// WarmPayload, when set, seeds the policy with its own checkpoint
	// payload (the policy-agnostic resume path; the envelope's policy name
	// must match Policy). Ignored when WarmTables is set.
	WarmPayload []byte
}

// DefaultOptions returns the configuration used for the paper's headline
// results: all optimizations on, N=32, Config9 tables.
func DefaultOptions() Options {
	return Options{
		Prefetch:          true,
		Preevict:          true,
		Invalidate:        true,
		Degree:            32,
		TableConfig:       correlation.DefaultBlockTableConfig(),
		PreevictWatermark: 48,
	}
}

// PrefetchCommand pairs a UM block address with the execution ID of the
// kernel it is predicted to serve, exactly the payload of the paper's
// prefetch queue. It is the policy seam's Command type.
type PrefetchCommand = policy.Command

// Stats aggregates driver-side counters.
type Stats struct {
	KernelLaunches   int64
	PrefetchIssued   int64 // commands enqueued
	PrefetchUseful   int64 // prefetched blocks later hit by the kernel
	Preevictions     int64 // blocks evicted off the critical path
	Invalidations    int64 // victim blocks dropped without transfer
	ChainRestarts    int64
	PredictionFails  int64 // chain died because the next kernel was unknown
	DeathNoExec      int64 // chain deaths: no execution-table prediction
	DeathSkips       int64 // chain deaths: too many anchorless kernels
	WindowMisses     int64 // queued block touched outside the service window
	ProtectedSkipped int64 // eviction candidates skipped by the N-kernel rule
}

// Driver is the DeepUM driver state machine. It implements umrt.Driver (to
// receive kernel-launch callbacks), um.EvictionPolicy (the §5.1 victim
// policy), and um.Invalidator (§5.2).
type Driver struct {
	opts Options

	// pol decides what to fetch next; the driver feeds it the launch and
	// fault streams and drains its prediction steps into the queue.
	pol policy.Policy

	// current is the execution ID of the running kernel, tracked so
	// NoteEviction requeues attribute their command to it.
	current correlation.ExecID

	queue []PrefetchCommand
	// head indexes the logical front of queue (popped entries are not
	// copied away on every pop).
	head int
	// queued tracks blocks currently in the prefetch queue to avoid
	// duplicate commands.
	queued map[um.BlockID]struct{}
	// protected holds blocks predicted for the current and next N kernels:
	// the pre-eviction policy must not evict them (§5.1).
	protected map[um.BlockID]struct{}

	// activeBytes tracks, per UM block, how many bytes belong to active
	// PyTorch blocks; a block with zero active bytes is invalidatable.
	activeBytes map[um.BlockID]int64

	// resident, when set, lets the prefetching thread skip blocks already
	// on the device — it still marks them protected (they are predicted for
	// the next N kernels) but issues no command for them.
	resident func(um.BlockID) bool

	// obs receives a prefetch-issue event per enqueued command; obsClock
	// supplies the timestamp (the driver itself has no clock — the engine
	// drives it in virtual time, the pipeline in wall time).
	obs      *obs.Recorder
	obsClock func() int64

	// gate, when set, lets the health controller's degradation ladder
	// throttle speculation at the enqueue point.
	gate HealthGate

	Stats Stats
}

// HealthGate is the slice of the degradation ladder the prefetching thread
// consults before creating new speculation (internal/health implements it).
// It is the policy seam's Gate type: the driver forwards it to the policy,
// which consults AllowPrefetchEnqueue and DegreeCap before emitting, while
// the driver itself applies SpeculativeRequeue on the requeue path.
type HealthGate = policy.Gate

// Compile-time interface checks.
var (
	_ um.EvictionPolicy = (*Driver)(nil)
	_ um.Invalidator    = (*Driver)(nil)
)

// NewDriverFor returns a driver running the policy named by opts.Policy
// (empty selects the default correlation chaser). It fails when the policy
// is unknown or its warm state cannot be decoded — both conditions callers
// want as typed errors before any run state exists.
func NewDriverFor(opts Options) (*Driver, error) {
	if opts.Degree < 1 {
		opts.Degree = 1
	}
	if opts.PreevictWatermark < 2 {
		opts.PreevictWatermark = 48
	}
	if opts.TableConfig.NumRows == 0 {
		opts.TableConfig = correlation.DefaultBlockTableConfig()
	}
	pol, err := policy.New(opts.Policy, policy.Options{
		Prefetch:    opts.Prefetch,
		Degree:      opts.Degree,
		TableConfig: opts.TableConfig,
		WarmTables:  opts.WarmTables,
		WarmPayload: opts.WarmPayload,
	})
	if err != nil {
		return nil, err
	}
	// A policy carrying correlation tables publishes their configuration;
	// adopt it so Options() reflects the resumed state, exactly as the
	// pre-policy driver adopted WarmTables' config.
	if t := tablesOf(pol); t != nil {
		opts.TableConfig = t.Config()
	}
	d := &Driver{
		opts:        opts,
		pol:         pol,
		current:     correlation.NoExec,
		queued:      make(map[um.BlockID]struct{}),
		protected:   make(map[um.BlockID]struct{}),
		activeBytes: make(map[um.BlockID]int64),
	}
	return d, nil
}

// NewDriver returns a driver with the given options, panicking on a policy
// error. With a registered (or empty) Policy name and no hostile warm
// payload, construction cannot fail; tests and the pipeline use this form.
func NewDriver(opts Options) *Driver {
	d, err := NewDriverFor(opts)
	if err != nil {
		panic(fmt.Sprintf("core: NewDriver: %v", err))
	}
	return d
}

// tablesOf extracts correlation tables from policies that keep them
// (the correlation chaser); nil for every other policy.
func tablesOf(p policy.Policy) *correlation.Tables {
	if tp, ok := p.(interface{ Tables() *correlation.Tables }); ok {
		return tp.Tables()
	}
	return nil
}

// Options returns the driver's configuration.
func (d *Driver) Options() Options { return d.opts }

// Tables exposes the correlation tables when the active policy keeps them
// (Table 4 sizes, cmd/deepum-inspect); nil under table-less policies.
func (d *Driver) Tables() *correlation.Tables { return tablesOf(d.pol) }

// PolicyName returns the active prefetch policy's registered name.
func (d *Driver) PolicyName() string { return d.pol.Name() }

// PolicySizeBytes returns the active policy's state-memory estimate.
func (d *Driver) PolicySizeBytes() int64 { return d.pol.SizeBytes() }

// SavePolicyState writes the active policy's deterministic warm-state
// payload (the body of a checkpoint envelope carrying PolicyName).
func (d *Driver) SavePolicyState(w io.Writer) error { return d.pol.Save(w) }

// KernelLaunch receives the execution ID of the kernel about to run — the
// ioctl callback of §3.1 — and forwards it to the policy's learner.
func (d *Driver) KernelLaunch(id correlation.ExecID) {
	d.Stats.KernelLaunches++
	d.current = id
	d.pol.KernelLaunch(id)
}

// KernelComplete slides the policy's lookahead window: a paused chain may
// resume because one more kernel of budget is available (§4.2: "The
// prefetching thread resumes after the currently executing kernel
// finishes"). Refilling is unconditional — an idle policy simply pauses.
func (d *Driver) KernelComplete(id correlation.ExecID) {
	d.pol.KernelComplete(id)
	d.fillQueue(refillBatch)
}

// Current returns the execution ID of the kernel the driver believes is
// running.
func (d *Driver) Current() correlation.ExecID { return d.current }

// OnFault is invoked by the fault-handling path for every faulted UM block.
// The correlator updates the block table of the current kernel, and — when
// prefetching is enabled — the prefetching thread restarts chaining from the
// faulted block (§4.2: "The chaining ends when a new page fault interrupt
// signal is raised", i.e. each fault restarts the chain).
func (d *Driver) OnFault(b um.BlockID) {
	if !d.pol.OnFault(b) {
		return // the policy learned from the fault but restarts nothing
	}
	// The fault obsoletes the old prediction's outstanding commands: the GPU
	// has demonstrably diverged from the prediction that produced them, and
	// the new prediction's commands must reach the front of the queue to be
	// timely.
	d.queue = d.queue[:0]
	d.head = 0
	clear(d.queued)
	d.Stats.ChainRestarts++
	d.fillQueue(restartFill)
}

// maxQueue bounds the prefetch queue, as the single-producer/single-consumer
// queue between the prefetching and migration threads is on a real system.
// A full queue pauses the chain; consumption resumes it as commands drain.
const (
	maxQueue    = 8192
	restartFill = 256  // commands emitted synchronously on a chain restart
	refillBatch = 1024 // commands emitted when consumption drains the queue
	refillBelow = 512  // queue depth that triggers a refill
)

// fillQueue drains the policy's prediction stream into the prefetch queue
// until the given budget of new commands is emitted, the policy pauses (at
// the degree boundary or a gated ladder level), the queue fills, or the
// prediction dies.
func (d *Driver) fillQueue(budget int) {
	// Throttle: the predicted set must fit comfortably in device memory or
	// prefetching would evict its own earlier predictions.
	protectLimit := int64(1) << 62
	if d.opts.CapacityBytes > 0 {
		protectLimit = d.opts.CapacityBytes * 4 / sim.BlockSize
	}
	for budget > 0 && d.qlen() < maxQueue &&
		int64(len(d.protected)) < protectLimit {
		st := d.pol.Next()
		switch st.Out {
		case policy.Pause:
			return
		case policy.Dead:
			d.Stats.PredictionFails++
			switch st.Cause {
			case "noexec":
				d.Stats.DeathNoExec++
			case "skips":
				d.Stats.DeathSkips++
			}
			return
		}
		b := st.Cmd.Block
		if _, dup := d.queued[b]; dup {
			continue
		}
		if d.resident != nil && d.resident(b) {
			continue // already on the device: nothing to migrate
		}
		d.protected[b] = struct{}{}
		d.queued[b] = struct{}{}
		d.queue = append(d.queue, st.Cmd)
		d.Stats.PrefetchIssued++
		d.noteIssue(b)
		budget--
	}
}

// SetResidencyProbe installs the device-residency check used to filter
// prefetch commands.
func (d *Driver) SetResidencyProbe(probe func(um.BlockID) bool) { d.resident = probe }

// SetObserver installs the tracing recorder and the clock that timestamps
// its events; a nil recorder disables emission.
func (d *Driver) SetObserver(rec *obs.Recorder, clock func() int64) {
	d.obs = rec
	d.obsClock = clock
}

// SetHealthGate installs the degradation-ladder gate consulted before new
// speculation is queued; nil disables gating. The gate is shared with the
// policy (enqueue/degree capabilities) while the driver applies the
// requeue capability itself.
func (d *Driver) SetHealthGate(g HealthGate) {
	d.gate = g
	d.pol.SetGate(g)
}

// noteIssue emits a prefetch-issue event when tracing is attached.
func (d *Driver) noteIssue(b um.BlockID) {
	if d.obs != nil {
		d.obs.Instant(obs.KindPrefetchIssue, obs.TrackDriver, d.obsClock(), d.pol.Name(), int64(b), 0, 0)
	}
}

// NoteEviction tells the driver a block left the device. If the block is
// still predicted for the next N kernels (it was evicted through the
// fallback path under extreme pressure), the prefetching thread immediately
// re-queues a command for it so the upcoming access finds an in-flight
// migration instead of faulting.
func (d *Driver) NoteEviction(b um.BlockID) {
	if !d.opts.Prefetch {
		return
	}
	d.pol.NoteEviction(b)
	if d.gate != nil && !d.gate.SpeculativeRequeue() {
		return // ladder at L1+: only the chain itself may issue commands
	}
	if _, p := d.protected[b]; !p {
		return
	}
	if _, dup := d.queued[b]; dup {
		return
	}
	if d.qlen() >= maxQueue {
		return
	}
	d.queued[b] = struct{}{}
	d.queue = append(d.queue, PrefetchCommand{Block: b, Exec: d.current})
	d.Stats.PrefetchIssued++
	d.noteIssue(b)
}

// NextPrefetch pops the next prefetch command, or ok=false when the queue is
// empty. The migration thread calls this whenever the fault queue is empty
// (§3.1 queue priority). Commands whose block was already taken out of turn
// (TakeQueued) are skipped.
func (d *Driver) NextPrefetch() (PrefetchCommand, bool) {
	for d.qlen() > 0 {
		cmd := d.queue[d.head]
		d.head++
		d.compact()
		if d.qlen() < refillBelow {
			d.fillQueue(refillBatch) // resume a paused chain
		}
		if _, live := d.queued[cmd.Block]; !live {
			continue
		}
		delete(d.queued, cmd.Block)
		return cmd, true
	}
	d.fillQueue(refillBatch)
	return PrefetchCommand{}, false
}

func (d *Driver) qlen() int { return len(d.queue) - d.head }

func (d *Driver) compact() {
	if d.head > maxQueue {
		d.queue = append(d.queue[:0], d.queue[d.head:]...)
		d.head = 0
	}
}

// IsQueued reports whether a prefetch command for block b is outstanding.
func (d *Driver) IsQueued(b um.BlockID) bool {
	_, ok := d.queued[b]
	return ok
}

// takeWindow is how far into the prefetch queue the migration thread has
// visibility when the GPU is about to touch a block: a command near the
// front is effectively in flight and the GPU merely waits for it; a command
// buried deep in the queue will not start before the access faults. The
// window is what preserves the §6.2 DLRM behaviour — with input-dependent
// access order, the stale queue order almost never matches the demanded
// order, so commands are not at the front when needed and prefetching stops
// helping.
const takeWindow = 64

// window returns the effective service window.
func (d *Driver) window() int {
	if d.opts.TakeWindow > 0 {
		return d.opts.TakeWindow
	}
	return takeWindow
}

// TakeQueued claims the outstanding prefetch command for block b if it sits
// within the migration thread's service window, converting a would-be fault
// into an in-flight migration the GPU merely waits on. It returns false
// when no timely command for b exists.
func (d *Driver) TakeQueued(b um.BlockID) bool {
	if _, ok := d.queued[b]; !ok {
		return false
	}
	end := d.head + d.window()
	if end > len(d.queue) {
		end = len(d.queue)
	}
	found := false
	for i := d.head; i < end; i++ {
		if d.queue[i].Block != b {
			continue
		}
		found = true
		// Swap the head command into the vacated slot; order within the
		// service window is immaterial.
		d.queue[i] = d.queue[d.head]
		d.head++
		d.compact()
		delete(d.queued, b)
		if d.qlen() < refillBelow {
			d.fillQueue(refillBatch)
		}
		return true
	}
	if !found {
		d.Stats.WindowMisses++
	}
	return false
}

// PendingPrefetches returns the prefetch-queue depth.
func (d *Driver) PendingPrefetches() int { return d.qlen() }

// DiscardPrefetches drops every outstanding prefetch command and kills the
// active chain. The run-lifecycle supervisor calls it when a run is
// cancelled: demand work drains, speculative work is thrown away. It returns
// how many live commands were discarded.
func (d *Driver) DiscardPrefetches() int64 {
	var n int64
	for i := d.head; i < len(d.queue); i++ {
		if _, live := d.queued[d.queue[i].Block]; live {
			n++
		}
	}
	d.queue = d.queue[:0]
	d.head = 0
	clear(d.queued)
	d.pol.Discard()
	return n
}

// ProtectedCount returns the size of the predicted (protected) set.
func (d *Driver) ProtectedCount() int { return len(d.protected) }

// CheckInvariants audits the driver's queue and protection bookkeeping; the
// chaos invariant checker runs it at iteration boundaries under every
// scenario. It verifies the queue indices are coherent, every entry of the
// dedup map corresponds to a live queue command (a stale entry would
// silently swallow future prefetches for that block), and the protected set
// respects the capacity throttle — the "no protected block silently lost"
// accounting: protection is only ever granted alongside a queued command,
// and NoteEviction re-queues any protected block evicted under pressure.
func (d *Driver) CheckInvariants() error {
	if d.head < 0 || d.head > len(d.queue) {
		return fmt.Errorf("core: invariant violated: queue head %d out of range [0,%d]", d.head, len(d.queue))
	}
	live := make(map[um.BlockID]struct{}, d.qlen())
	for i := d.head; i < len(d.queue); i++ {
		live[d.queue[i].Block] = struct{}{}
	}
	for b := range d.queued {
		if _, ok := live[b]; !ok {
			return fmt.Errorf("core: invariant violated: block %d marked queued but has no live queue entry", b)
		}
	}
	if d.opts.CapacityBytes > 0 {
		limit := d.opts.CapacityBytes * 4 / sim.BlockSize
		if int64(len(d.protected)) > limit {
			return fmt.Errorf("core: invariant violated: protected set %d exceeds capacity throttle %d", len(d.protected), limit)
		}
	}
	return nil
}

// BeginIteration clears the protected set; the engine calls it at iteration
// boundaries so stale predictions do not pin blocks forever.
func (d *Driver) BeginIteration() {
	d.protected = make(map[um.BlockID]struct{})
}

// Unprotect removes b from the predicted set — the engine calls it when the
// running kernel touches the block, so protection covers only outstanding
// predictions, not history. Shrinking the set may unblock a throttled chain.
func (d *Driver) Unprotect(b um.BlockID) {
	if _, ok := d.protected[b]; !ok {
		return
	}
	delete(d.protected, b)
	// A chain paused on the capacity throttle resumes as soon as the
	// predicted set shrinks; fillQueue re-checks the limit and early-exits
	// when still over it.
	d.fillQueue(64)
}

// VictimsForPrefetch selects eviction victims for a background prefetch:
// unlike the demand path it never falls back to evicting protected blocks —
// displacing a block predicted for the next N kernels to make room for a
// later prediction is self-defeating. ok is false when not enough
// unprotected memory exists; the prefetch then waits.
func (d *Driver) VictimsForPrefetch(r *um.Residency, need int64) ([]um.BlockID, bool) {
	var victims []um.BlockID
	var freed int64
	r.WalkLRM(func(b um.BlockID) bool {
		if _, p := d.protected[b]; p {
			return true
		}
		victims = append(victims, b)
		freed += r.BlockResidentBytes(b)
		return freed < need
	})
	return victims, freed >= need
}

// --- §5.1: pre-eviction policy -------------------------------------------

// SelectVictims implements the DeepUM eviction policy: least recently
// migrated, excluding blocks expected to be accessed by the currently
// executing kernel and the next N kernels (the protected set maintained from
// the correlation tables). When every resident block is protected it falls
// back to plain LRM — the driver must free space to make progress.
func (d *Driver) SelectVictims(r *um.Residency, need int64) []um.BlockID {
	var victims []um.BlockID
	var freed int64
	r.WalkLRM(func(b um.BlockID) bool {
		if _, p := d.protected[b]; p {
			d.Stats.ProtectedSkipped++
			return true
		}
		victims = append(victims, b)
		freed += blockBytes(r, b)
		return freed < need
	})
	if freed >= need {
		return victims
	}
	// Fallback when everything resident is predicted for upcoming kernels:
	// sacrifice the most recently migrated blocks — those carry the
	// farthest-future predictions, so dropping them wastes the least.
	victims = victims[:0]
	freed = 0
	r.WalkMRM(func(b um.BlockID) bool {
		victims = append(victims, b)
		freed += blockBytes(r, b)
		return freed < need
	})
	return victims
}

func blockBytes(r *um.Residency, b um.BlockID) int64 {
	return r.BlockResidentBytes(b)
}

// PreevictTarget returns how many bytes the pre-evictor should free right
// now to restore the watermark, or zero when disabled or satisfied.
func (d *Driver) PreevictTarget(r *um.Residency) int64 {
	if !d.opts.Preevict {
		return 0
	}
	watermark := r.Capacity() / int64(d.opts.PreevictWatermark)
	if r.Free() >= watermark {
		return 0
	}
	return watermark - r.Free()
}

// NotePreeviction counts a block evicted off the critical path.
func (d *Driver) NotePreeviction() { d.Stats.Preevictions++ }

// --- §5.2: invalidation ----------------------------------------------------

// OnPTActive is wired to the allocator's OnActive callback.
func (d *Driver) OnPTActive(base um.Addr, size int64) { d.adjustActive(base, size, +1) }

// OnPTInactive is wired to the allocator's OnInactive callback: the "few
// lines of code added to the PyTorch memory allocator" of §5.2.
func (d *Driver) OnPTInactive(base um.Addr, size int64) { d.adjustActive(base, size, -1) }

func (d *Driver) adjustActive(base um.Addr, size int64, sign int64) {
	end := int64(base) + size
	for off := int64(base); off < end; {
		b := um.BlockOf(um.Addr(off))
		blockEnd := (int64(b) + 1) * sim.BlockSize
		span := blockEnd - off
		if end-off < span {
			span = end - off
		}
		d.activeBytes[b] += sign * span
		if d.activeBytes[b] <= 0 {
			delete(d.activeBytes, b)
		}
		off += span
	}
}

// CanInvalidate reports whether no active PyTorch block overlaps UM block b,
// in which case an eviction victim's content is dead and the driver simply
// invalidates the UM block in GPU memory (§5.2).
func (d *Driver) CanInvalidate(b um.BlockID) bool {
	if !d.opts.Invalidate {
		return false
	}
	_, active := d.activeBytes[b]
	return !active
}

// NoteInvalidation counts a dropped victim.
func (d *Driver) NoteInvalidation() { d.Stats.Invalidations++ }

// NotePrefetchUseful counts a prefetched block that a kernel subsequently
// accessed while resident.
func (d *Driver) NotePrefetchUseful() { d.Stats.PrefetchUseful++ }
