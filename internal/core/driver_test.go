package core

import (
	"testing"

	"deepum/internal/correlation"
	"deepum/internal/sim"
	"deepum/internal/um"
)

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if !o.Prefetch || !o.Preevict || !o.Invalidate {
		t.Fatal("default options must enable all optimizations")
	}
	if o.Degree != 32 {
		t.Fatalf("default degree = %d, want the paper's sweet spot 32", o.Degree)
	}
	cfg := o.TableConfig
	if cfg.NumRows != 2048 || cfg.Assoc != 2 || cfg.NumSuccs != 4 {
		t.Fatalf("default table config = %+v, want Config9", cfg)
	}
}

func TestNewDriverClampsOptions(t *testing.T) {
	d := NewDriver(Options{Degree: 0, PreevictWatermark: 1})
	if d.Options().Degree != 1 {
		t.Fatalf("degree = %d", d.Options().Degree)
	}
	if d.Options().PreevictWatermark != 48 {
		t.Fatalf("watermark = %d", d.Options().PreevictWatermark)
	}
	if d.Options().TableConfig.NumRows == 0 {
		t.Fatal("table config not defaulted")
	}
}

// trainIteration drives the driver through one "iteration" of a toy
// two-kernel workload: kernel 0 faults on blocks 10,11,12 and kernel 1 on
// 20,21.
func trainIteration(d *Driver) {
	d.KernelLaunch(0)
	for _, b := range []um.BlockID{10, 11, 12} {
		d.OnFault(b)
	}
	d.KernelComplete(0)
	d.KernelLaunch(1)
	for _, b := range []um.BlockID{20, 21} {
		d.OnFault(b)
	}
	d.KernelComplete(1)
}

func drainQueue(d *Driver) []PrefetchCommand {
	var cmds []PrefetchCommand
	for {
		c, ok := d.NextPrefetch()
		if !ok {
			return cmds
		}
		cmds = append(cmds, c)
	}
}

func TestDriverLearnsAndPrefetchesAcrossKernels(t *testing.T) {
	d := NewDriver(DefaultOptions())
	// Warm-up iteration: tables learn, predictions may fail.
	trainIteration(d)
	drainQueue(d)
	// Second iteration: a fault on the first block of kernel 0 must chain
	// through kernel 0's blocks and across the boundary into kernel 1.
	d.KernelLaunch(0)
	d.OnFault(10)
	cmds := drainQueue(d)
	want := map[um.BlockID]correlation.ExecID{11: 0, 12: 0, 20: 1, 21: 1}
	if len(cmds) < len(want) {
		t.Fatalf("prefetch commands = %v, want at least %d", cmds, len(want))
	}
	got := map[um.BlockID]correlation.ExecID{}
	for _, c := range cmds {
		got[c.Block] = c.Exec
	}
	for b, e := range want {
		if got[b] != e {
			t.Fatalf("block %d predicted for exec %d, want %d (cmds %v)", b, got[b], e, cmds)
		}
	}
	if d.Stats.PrefetchIssued < int64(len(want)) {
		t.Fatalf("stats.PrefetchIssued = %d", d.Stats.PrefetchIssued)
	}
}

func TestDriverPrefetchDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Prefetch = false
	d := NewDriver(opts)
	trainIteration(d)
	d.KernelLaunch(0)
	d.OnFault(10)
	if _, ok := d.NextPrefetch(); ok {
		t.Fatal("prefetch disabled but commands issued")
	}
	// Correlation tables still learn (the correlator thread always runs).
	if d.Tables().Block(0).Start == um.NoBlock {
		t.Fatal("correlator must record misses even without prefetching")
	}
}

func TestDriverDegreeLimitsChaining(t *testing.T) {
	opts := DefaultOptions()
	opts.Degree = 1
	d := NewDriver(opts)
	// Three-kernel workload so the chain could run two kernels ahead.
	iter := func() {
		for k := correlation.ExecID(0); k < 3; k++ {
			d.KernelLaunch(k)
			base := um.BlockID(10 * (int64(k) + 1))
			d.OnFault(base)
			d.OnFault(base + 1)
			d.KernelComplete(k)
		}
	}
	iter()
	drainQueue(d)
	d.KernelLaunch(0)
	d.OnFault(10)
	cmds := drainQueue(d)
	for _, c := range cmds {
		if c.Exec == 2 {
			t.Fatalf("degree 1 chained two kernels ahead: %v", cmds)
		}
	}
	// Completing kernel 0 resumes the paused chain into kernel 2's window.
	d.KernelComplete(0)
	d.KernelLaunch(1)
	resumed := drainQueue(d)
	foundK2 := false
	for _, c := range resumed {
		if c.Exec == 2 {
			foundK2 = true
		}
	}
	if !foundK2 {
		t.Fatalf("chain did not resume after kernel completion: %v", resumed)
	}
}

func TestDriverFaultRestartsChain(t *testing.T) {
	d := NewDriver(DefaultOptions())
	trainIteration(d)
	d.KernelLaunch(0)
	d.OnFault(10)
	before := d.Stats.ChainRestarts
	d.OnFault(11) // a new fault restarts chaining from the new block
	if d.Stats.ChainRestarts != before+1 {
		t.Fatal("fault did not restart the chain")
	}
}

func TestDriverNoDuplicateQueueEntries(t *testing.T) {
	d := NewDriver(DefaultOptions())
	trainIteration(d)
	trainIteration(d)
	d.KernelLaunch(0)
	d.OnFault(10)
	cmds := drainQueue(d)
	seen := map[um.BlockID]bool{}
	for _, c := range cmds {
		if seen[c.Block] {
			t.Fatalf("duplicate prefetch command for block %d", c.Block)
		}
		seen[c.Block] = true
	}
}

func newResidency(blocks int64) (*um.Residency, *um.Space) {
	s := um.NewSpace(0)
	r := um.NewResidency(s, blocks*sim.BlockSize)
	return r, s
}

func TestSelectVictimsSkipsProtected(t *testing.T) {
	d := NewDriver(DefaultOptions())
	r, s := newResidency(4)
	a, _ := s.Malloc(4 * sim.BlockSize)
	bs := um.BlocksOf(a, 4*sim.BlockSize)
	for i, b := range bs {
		r.Insert(b, sim.PagesPerBlock, sim.Time(i), sim.Time(i))
	}
	// Protect the two oldest blocks via the prediction set.
	d.protected[bs[0]] = struct{}{}
	d.protected[bs[1]] = struct{}{}
	victims := d.SelectVictims(r, sim.BlockSize)
	if len(victims) != 1 || victims[0] != bs[2] {
		t.Fatalf("victims = %v, want [%d]", victims, bs[2])
	}
	if d.Stats.ProtectedSkipped < 2 {
		t.Fatalf("protected skips = %d", d.Stats.ProtectedSkipped)
	}
}

func TestSelectVictimsFallbackWhenAllProtected(t *testing.T) {
	d := NewDriver(DefaultOptions())
	r, s := newResidency(2)
	a, _ := s.Malloc(2 * sim.BlockSize)
	bs := um.BlocksOf(a, 2*sim.BlockSize)
	for i, b := range bs {
		r.Insert(b, sim.PagesPerBlock, sim.Time(i), sim.Time(i))
		d.protected[b] = struct{}{}
	}
	victims := d.SelectVictims(r, sim.BlockSize)
	if len(victims) != 1 || victims[0] != bs[1] {
		t.Fatalf("fallback victims = %v, want most-recently-migrated [%d] (farthest prediction)", victims, bs[1])
	}
}

func TestPreevictTarget(t *testing.T) {
	opts := DefaultOptions()
	opts.PreevictWatermark = 4 // keep 1/4 free
	d := NewDriver(opts)
	r, s := newResidency(8)
	a, _ := s.Malloc(7 * sim.BlockSize)
	for i, b := range um.BlocksOf(a, 7*sim.BlockSize) {
		r.Insert(b, sim.PagesPerBlock, sim.Time(i), sim.Time(i))
	}
	// 1 of 8 blocks free; watermark is 2 blocks.
	if got := d.PreevictTarget(r); got != sim.BlockSize {
		t.Fatalf("preevict target = %d, want one block", got)
	}
	opts.Preevict = false
	d2 := NewDriver(opts)
	if d2.PreevictTarget(r) != 0 {
		t.Fatal("disabled pre-eviction must return zero target")
	}
}

func TestInvalidationTracksPTActivity(t *testing.T) {
	d := NewDriver(DefaultOptions())
	base := um.Addr(0)
	size := int64(3 * sim.BlockSize)
	if !d.CanInvalidate(0) {
		t.Fatal("untouched block must be invalidatable")
	}
	d.OnPTActive(base, size)
	for b := um.BlockID(0); b < 3; b++ {
		if d.CanInvalidate(b) {
			t.Fatalf("active block %d reported invalidatable", b)
		}
	}
	d.OnPTInactive(base, size)
	for b := um.BlockID(0); b < 3; b++ {
		if !d.CanInvalidate(b) {
			t.Fatalf("inactive block %d not invalidatable", b)
		}
	}
	// Overlapping activity: two PT blocks share UM block 0.
	d.OnPTActive(0, sim.PageSize)
	d.OnPTActive(um.Addr(sim.PageSize), sim.PageSize)
	d.OnPTInactive(0, sim.PageSize)
	if d.CanInvalidate(0) {
		t.Fatal("block with one remaining active PT block must not be invalidatable")
	}
	d.OnPTInactive(um.Addr(sim.PageSize), sim.PageSize)
	if !d.CanInvalidate(0) {
		t.Fatal("block with no active PT blocks must be invalidatable")
	}
}

func TestInvalidationDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.Invalidate = false
	d := NewDriver(opts)
	if d.CanInvalidate(0) {
		t.Fatal("invalidation disabled but CanInvalidate returned true")
	}
}

func TestBeginIterationClearsProtection(t *testing.T) {
	d := NewDriver(DefaultOptions())
	d.protected[1] = struct{}{}
	d.BeginIteration()
	if len(d.protected) != 0 {
		t.Fatal("BeginIteration did not clear the protected set")
	}
}

func TestDriverStatsCounters(t *testing.T) {
	d := NewDriver(DefaultOptions())
	d.NotePreeviction()
	d.NoteInvalidation()
	d.NotePrefetchUseful()
	if d.Stats.Preevictions != 1 || d.Stats.Invalidations != 1 || d.Stats.PrefetchUseful != 1 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}
