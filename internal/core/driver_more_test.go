package core

import (
	"testing"

	"deepum/internal/correlation"
	"deepum/internal/sim"
	"deepum/internal/um"
)

// TestTakeQueuedWindow: only commands near the queue front convert; deeper
// ones report a window miss.
func TestTakeQueuedWindow(t *testing.T) {
	opts := DefaultOptions()
	opts.TakeWindow = 2
	d := NewDriver(opts)
	// Learn a long chain within one kernel: blocks 1..10 in order, twice so
	// successors exist.
	for it := 0; it < 2; it++ {
		d.KernelLaunch(0)
		for b := um.BlockID(1); b <= 10; b++ {
			d.OnFault(b)
		}
		d.KernelComplete(0)
	}
	d.KernelLaunch(0)
	d.OnFault(1) // chain emits 2..10 in order
	if d.PendingPrefetches() < 5 {
		t.Fatalf("queue too small: %d", d.PendingPrefetches())
	}
	// Block 2 is at the front: timely.
	if !d.TakeQueued(2) {
		t.Fatal("front command must convert")
	}
	// Block 9 is deep in the queue: not timely.
	if d.TakeQueued(9) {
		t.Fatal("deep command must not convert within window 2")
	}
	if d.Stats.WindowMisses == 0 {
		t.Fatal("window miss not counted")
	}
	// A block never queued is not a window miss, just absent.
	before := d.Stats.WindowMisses
	if d.TakeQueued(999) {
		t.Fatal("unqueued block converted")
	}
	if d.Stats.WindowMisses != before {
		t.Fatal("absent block counted as window miss")
	}
}

// TestQueueFlushOnFault: a new fault discards the previous chain's commands.
func TestQueueFlushOnFault(t *testing.T) {
	d := NewDriver(DefaultOptions())
	for it := 0; it < 2; it++ {
		d.KernelLaunch(0)
		for b := um.BlockID(1); b <= 5; b++ {
			d.OnFault(b)
		}
		d.KernelComplete(0)
	}
	d.KernelLaunch(0)
	d.OnFault(1)
	if !d.IsQueued(2) {
		t.Fatal("successor of 1 not queued")
	}
	d.OnFault(4) // restart: chain from 4 (plus the Start anchor)
	if !d.IsQueued(5) {
		t.Fatal("successor of 4 not queued after restart")
	}
	// The new chain's commands lead the queue: the Start anchor first, then
	// the faulted block's direct successor, all well within the service
	// window.
	first, ok1 := d.NextPrefetch()
	second, ok2 := d.NextPrefetch()
	if !ok1 || !ok2 || first.Block != 1 || second.Block != 5 {
		t.Fatalf("queue front after restart = %v, %v; want Start anchor 1 then successor 5", first, second)
	}
}

// TestNoteEvictionRequeues: a protected block evicted through the fallback
// is immediately re-queued.
func TestNoteEvictionRequeues(t *testing.T) {
	d := NewDriver(DefaultOptions())
	d.KernelLaunch(0)
	d.protected[77] = struct{}{}
	d.NoteEviction(77)
	if !d.IsQueued(77) {
		t.Fatal("evicted protected block not re-queued")
	}
	// Unprotected evictions are not re-queued.
	d.NoteEviction(88)
	if d.IsQueued(88) {
		t.Fatal("unprotected eviction re-queued")
	}
	// Prefetch disabled: no requeue.
	opts := DefaultOptions()
	opts.Prefetch = false
	d2 := NewDriver(opts)
	d2.protected[5] = struct{}{}
	d2.NoteEviction(5)
	if d2.IsQueued(5) {
		t.Fatal("requeue with prefetching disabled")
	}
}

// TestResidencyProbeFiltersCommands: resident blocks are predicted (and
// protected) but produce no migration command.
func TestResidencyProbeFiltersCommands(t *testing.T) {
	d := NewDriver(DefaultOptions())
	resident := map[um.BlockID]bool{2: true}
	d.SetResidencyProbe(func(b um.BlockID) bool { return resident[b] })
	for it := 0; it < 2; it++ {
		d.KernelLaunch(0)
		for b := um.BlockID(1); b <= 3; b++ {
			d.OnFault(b)
		}
		d.KernelComplete(0)
	}
	d.KernelLaunch(0)
	d.OnFault(1)
	if d.IsQueued(2) {
		t.Fatal("resident block got a migration command")
	}
	if !d.IsQueued(3) {
		t.Fatal("non-resident successor missing from the queue")
	}
}

// TestUnprotectResumesThrottledChain: shrinking the protected set below the
// capacity throttle resumes a paused chain.
func TestUnprotectResumesThrottledChain(t *testing.T) {
	opts := DefaultOptions()
	opts.CapacityBytes = 2 * sim.BlockSize // throttle: <= 8x capacity in blocks
	d := NewDriver(opts)
	for it := 0; it < 2; it++ {
		d.KernelLaunch(0)
		for b := um.BlockID(1); b <= 30; b++ {
			d.OnFault(b)
		}
		d.KernelComplete(0)
	}
	d.KernelLaunch(0)
	d.OnFault(1)
	queuedBefore := d.PendingPrefetches()
	if queuedBefore >= 29 {
		t.Skip("throttle did not bind at this geometry")
	}
	// Consume protections: the chain resumes and queues more.
	for b := um.BlockID(2); b <= 10; b++ {
		d.Unprotect(b)
	}
	if d.PendingPrefetches() <= queuedBefore-9 {
		t.Fatalf("chain did not resume after unprotect: %d -> %d", queuedBefore, d.PendingPrefetches())
	}
}

// TestVictimsForPrefetchNeverFallsBack: unlike the demand path, prefetch
// eviction reports failure instead of touching protected blocks.
func TestVictimsForPrefetchNeverFallsBack(t *testing.T) {
	d := NewDriver(DefaultOptions())
	s := um.NewSpace(0)
	r := um.NewResidency(s, 4*sim.BlockSize)
	a, _ := s.Malloc(2 * sim.BlockSize)
	bs := um.BlocksOf(a, 2*sim.BlockSize)
	for i, b := range bs {
		r.Insert(b, sim.PagesPerBlock, sim.Time(i), sim.Time(i))
		d.protected[b] = struct{}{}
	}
	victims, ok := d.VictimsForPrefetch(r, sim.BlockSize)
	if ok || len(victims) != 0 {
		t.Fatalf("prefetch eviction touched protected blocks: %v %v", victims, ok)
	}
	// Unprotect one: now it is a victim.
	d.Unprotect(bs[0])
	victims, ok = d.VictimsForPrefetch(r, sim.BlockSize)
	if !ok || len(victims) != 1 || victims[0] != bs[0] {
		t.Fatalf("victims = %v ok=%v", victims, ok)
	}
}

// TestQueueCompaction: heavy pop traffic keeps the backing slice bounded.
func TestQueueCompaction(t *testing.T) {
	d := NewDriver(DefaultOptions())
	for i := 0; i < 3*maxQueue; i++ {
		d.queued[um.BlockID(i)] = struct{}{}
		d.queue = append(d.queue, PrefetchCommand{Block: um.BlockID(i)})
		if _, ok := d.NextPrefetch(); !ok {
			t.Fatal("pop failed")
		}
		if len(d.queue) > 2*maxQueue+1 {
			t.Fatalf("queue slice grew unbounded: %d", len(d.queue))
		}
	}
}

// TestChainCursorDeathCauses distinguishes the two chain-death reasons.
func TestChainCursorDeathCauses(t *testing.T) {
	ts := correlation.NewTables(correlation.DefaultBlockTableConfig())
	ts.Block(0).RecordMiss(1)
	ts.Block(0).RecordMiss(2)
	h := [3]correlation.ExecID{correlation.NoExec, correlation.NoExec, correlation.NoExec}
	c := ts.NewChainCursor(0, h, 1)
	for {
		b, _ := c.Next()
		if b == um.NoBlock {
			break
		}
	}
	if c.DeathCause != "noexec" {
		t.Fatalf("death cause = %q, want noexec", c.DeathCause)
	}
}
