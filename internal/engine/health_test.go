package engine

import (
	"testing"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/health"
	"deepum/internal/sim"
)

// TestLadderEquivalence is the monotone-safety acceptance test: every rung
// of the degradation ladder trades speculation for safety but must never
// change WHAT the GPU computes — the ordered access stream (and therefore
// its checksum) is bit-identical from L0 (full prefetch + pre-eviction)
// down to L3 (pure demand faulting), on a clean substrate, with the
// invariant checker green throughout.
func TestLadderEquivalence(t *testing.T) {
	p := lifecycleProgram(t)
	base := lifecycleConfig(p)
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.AccessChecksum == 0 {
		t.Fatal("baseline run produced no access checksum")
	}
	for l := health.L0; l <= health.L3; l++ {
		l := l
		t.Run(l.String(), func(t *testing.T) {
			cfg := lifecycleConfig(p)
			cfg.Health = health.Fixed(l)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// A level pinned above L0 reports StatusDegraded by definition
			// (MaxLevel > L0); the run itself must still be clean.
			want := StatusCompleted
			if l > health.L0 {
				want = StatusDegraded
			}
			if res.Status != want {
				t.Fatalf("status %v, want %v (invariant: %v)", res.Status, want, res.Invariant)
			}
			if res.Invariant != nil {
				t.Fatalf("invariant violation at %s: %v", l, res.Invariant)
			}
			if res.AccessChecksum != ref.AccessChecksum {
				t.Fatalf("access checksum at %s = %#x, baseline %#x — degradation changed the computation",
					l, res.AccessChecksum, ref.AccessChecksum)
			}
			if res.Iterations != base.Iterations {
				t.Fatalf("completed %d iterations, want %d", res.Iterations, base.Iterations)
			}
			// Sanity on the trade itself: L3 must actually fault more than
			// L0 (it disabled all speculation), or the gates aren't wired.
			if l == health.L3 && res.FaultsPerIter <= ref.FaultsPerIter {
				t.Fatalf("L3 faults/iter %d not above L0's %d — ladder gates inert",
					res.FaultsPerIter, ref.FaultsPerIter)
			}
		})
	}
}

// TestBreakerFlappingBounded: on a wedged link with a short cooldown the
// raw circuit breaker flaps as fast as it can — every half-open probe
// fails and reopens it, once per cooldown. With the health ladder driving,
// the oscillation is bounded two ways: the ladder itself moves at most one
// rung per dwell (with recovery additionally rate-limited by the probe
// interval), and by parking at L3 it suspends the prefetch probe loop, so
// the breaker flips far less than it does fending for itself.
func TestBreakerFlappingBounded(t *testing.T) {
	wedged := func(hc *health.Controller) *Result {
		cfg := lifecycleConfig(lifecycleProgram(t))
		cfg.Chaos = chaos.NewInjector(chaos.Scenario{
			Name:                "wedged-link",
			TransferFailProb:    0.9,
			MaxConsecutiveFails: 64,
		}, 1)
		cfg.BreakerThreshold = 4
		cfg.BreakerCooldown = sim.Duration(50 * time.Microsecond)
		cfg.Health = hc
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != StatusDegraded {
			t.Fatalf("status %v, want degraded", res.Status)
		}
		if res.Iterations != cfg.Iterations {
			t.Fatalf("run did not complete under the flapping breaker: %d/%d iterations",
				res.Iterations, cfg.Iterations)
		}
		return res
	}

	solo := wedged(nil)
	if !solo.Breaker.EverOpened || solo.Breaker.Opens < 10 {
		t.Fatalf("ladderless breaker did not flap (opens=%d) — the scenario no longer exercises oscillation",
			solo.Breaker.Opens)
	}

	hc := health.NewController(health.Options{})
	laddered := wedged(hc)
	trans := hc.Transitions()
	if len(trans) == 0 || hc.MaxLevel() < health.L2 {
		t.Fatalf("ladder never engaged: max %s, %d transitions", hc.MaxLevel(), len(trans))
	}
	// Damping: with the ladder cutting speculation off, the breaker flips
	// far less often than when it is the only adaptive mechanism. (The runs
	// have different virtual lengths, so compare with headroom, not 1:1.)
	if laddered.Breaker.Opens*3 >= solo.Breaker.Opens*2 {
		t.Fatalf("ladder did not damp the breaker: %d opens with vs %d without",
			laddered.Breaker.Opens, solo.Breaker.Opens)
	}
	// Rate bound: moves are dwell-spaced and single-rung, and consecutive
	// de-escalations are at least one probe interval apart.
	lastProbe := int64(-1)
	for i, tr := range trans {
		d := int(tr.To) - int(tr.From)
		if d != 1 && d != -1 {
			t.Fatalf("transition %d jumps %s->%s", i, tr.FromName, tr.ToName)
		}
		if i > 0 && tr.At-trans[i-1].At < int64(health.DefaultDwell) {
			t.Fatalf("transitions %d and %d only %dns apart (dwell %dns)",
				i-1, i, tr.At-trans[i-1].At, health.DefaultDwell)
		}
		if d == -1 {
			if lastProbe >= 0 && tr.At-lastProbe < int64(health.DefaultProbeInterval) {
				t.Fatalf("recovery probes %dns apart (interval %dns)",
					tr.At-lastProbe, health.DefaultProbeInterval)
			}
			lastProbe = tr.At
		}
	}
}
