package engine

import (
	"testing"

	"deepum/internal/core"
	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// smallParams returns a tiny machine so tests run in microseconds of
// simulated hardware: 64 MiB GPU, 1 GiB host.
func smallParams() sim.Params {
	p := sim.DefaultParams()
	p.GPUMemory = 64 * sim.MiB
	p.HostMemory = 1 * sim.GiB
	return p
}

// toyProgram builds a two-layer workload whose working set oversubscribes
// the 64 MiB test GPU: two 24 MiB weights plus a 24 MiB activation chain.
func toyProgram(t *testing.T) *workload.Program {
	t.Helper()
	b := workload.NewBuilder("toy", 1)
	w1 := b.Tensor("w1", 24<<20, workload.Weight, true)
	w2 := b.Tensor("w2", 24<<20, workload.Weight, true)
	g1 := b.Tensor("g1", 24<<20, workload.Gradient, true)
	g2 := b.Tensor("g2", 24<<20, workload.Gradient, true)
	in := b.Tensor("in", 4<<20, workload.Input, true)
	a1 := b.Tensor("a1", 24<<20, workload.Activation, false)
	a2 := b.Tensor("a2", 24<<20, workload.Activation, false)

	b.Alloc(a1)
	b.Launch(&workload.Kernel{Name: "fwd1", Args: []uint64{1}, FLOPs: 1e9,
		Accesses: []workload.Access{{Tensor: in}, {Tensor: w1}, {Tensor: a1, Write: true}}})
	b.Alloc(a2)
	b.Launch(&workload.Kernel{Name: "fwd2", Args: []uint64{2}, FLOPs: 1e9,
		Accesses: []workload.Access{{Tensor: a1}, {Tensor: w2}, {Tensor: a2, Write: true}}})
	b.Launch(&workload.Kernel{Name: "bwd2", Args: []uint64{3}, FLOPs: 2e9,
		Accesses: []workload.Access{{Tensor: a2}, {Tensor: a1}, {Tensor: w2}, {Tensor: g2, Write: true}}})
	b.Free(a2)
	b.Launch(&workload.Kernel{Name: "bwd1", Args: []uint64{4}, FLOPs: 2e9,
		Accesses: []workload.Access{{Tensor: a1}, {Tensor: in}, {Tensor: w1}, {Tensor: g1, Write: true}}})
	b.Free(a1)
	b.Launch(&workload.Kernel{Name: "sgd", Args: []uint64{5}, FLOPs: 1e8,
		Accesses: []workload.Access{{Tensor: w1, Write: true}, {Tensor: g1}, {Tensor: w2, Write: true}, {Tensor: g2}}})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runPolicy(t *testing.T, p *workload.Program, policy Policy, opts core.Options) *Result {
	t.Helper()
	res, err := Run(Config{
		Params:        smallParams(),
		Program:       p,
		Policy:        policy,
		DriverOptions: opts,
		Iterations:    5,
		Warmup:        3,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNaiveUMFaultsEveryIteration(t *testing.T) {
	p := toyProgram(t)
	res := runPolicy(t, p, PolicyUM, core.Options{})
	if res.FaultsPerIter == 0 {
		t.Fatal("oversubscribed naive UM must fault in steady state")
	}
	if res.Handler.BlocksEvicted == 0 {
		t.Fatal("oversubscription must evict")
	}
	if res.TotalTime <= 0 || res.IterTime() <= 0 {
		t.Fatal("no time elapsed")
	}
	if res.EnergyJoules <= 0 {
		t.Fatal("no energy recorded")
	}
}

func TestDeepUMBeatsNaiveUM(t *testing.T) {
	p := toyProgram(t)
	um := runPolicy(t, p, PolicyUM, core.Options{})
	du := runPolicy(t, p, PolicyDeepUM, core.DefaultOptions())
	if du.TotalTime >= um.TotalTime {
		t.Fatalf("DeepUM (%v) not faster than UM (%v)", du.TotalTime, um.TotalTime)
	}
	if du.FaultsPerIter >= um.FaultsPerIter {
		t.Fatalf("DeepUM faults/iter %d not below UM %d", du.FaultsPerIter, um.FaultsPerIter)
	}
	if du.Driver.PrefetchIssued == 0 || du.Driver.PrefetchUseful == 0 {
		t.Fatalf("no useful prefetching happened: %+v", du.Driver)
	}
	if du.DriverTableBytes == 0 {
		t.Fatal("correlation tables report zero size")
	}
}

func TestIdealIsFastest(t *testing.T) {
	p := toyProgram(t)
	ideal := runPolicy(t, p, PolicyIdeal, core.Options{})
	du := runPolicy(t, p, PolicyDeepUM, core.DefaultOptions())
	if ideal.TotalTime > du.TotalTime {
		t.Fatalf("Ideal (%v) slower than DeepUM (%v)", ideal.TotalTime, du.TotalTime)
	}
	if ideal.Handler.BlocksEvicted != 0 {
		t.Fatal("Ideal must never evict")
	}
	// After warmup, the only faults are the host-refreshed input pages
	// (the 4 MiB minibatch = 1024 pages); everything else stays resident.
	inputPages := int64(4 << 20 / sim.PageSize)
	if ideal.FaultsPerIter > inputPages {
		t.Fatalf("Ideal faults/iter = %d, want <= %d (input refresh only)",
			ideal.FaultsPerIter, inputPages)
	}
}

func TestAblationOrdering(t *testing.T) {
	p := toyProgram(t)
	base := core.Options{Prefetch: true, Degree: 32}
	pre := core.Options{Prefetch: true, Preevict: true, Degree: 32}
	all := core.Options{Prefetch: true, Preevict: true, Invalidate: true, Degree: 32}
	um := runPolicy(t, p, PolicyUM, core.Options{})
	r1 := runPolicy(t, p, PolicyDeepUM, base)
	r2 := runPolicy(t, p, PolicyDeepUM, pre)
	r3 := runPolicy(t, p, PolicyDeepUM, all)
	if r1.TotalTime >= um.TotalTime {
		t.Fatalf("prefetching alone did not help: %v vs UM %v", r1.TotalTime, um.TotalTime)
	}
	if r2.TotalTime > r1.TotalTime {
		t.Fatalf("pre-eviction regressed: %v vs %v", r2.TotalTime, r1.TotalTime)
	}
	if r3.TotalTime > r2.TotalTime {
		t.Fatalf("invalidation regressed: %v vs %v", r3.TotalTime, r2.TotalTime)
	}
	if r3.Handler.BlocksDropped+r3.Driver.Invalidations == 0 {
		t.Fatal("invalidation never fired")
	}
	// Invalidation must reduce D2H traffic.
	if r3.TrafficD2H >= r2.TrafficD2H {
		t.Fatalf("invalidation did not reduce D2H: %d vs %d", r3.TrafficD2H, r2.TrafficD2H)
	}
}

func TestDeterminism(t *testing.T) {
	p := toyProgram(t)
	a := runPolicy(t, p, PolicyDeepUM, core.DefaultOptions())
	b := runPolicy(t, p, PolicyDeepUM, core.DefaultOptions())
	if a.TotalTime != b.TotalTime || a.FaultsPerIter != b.FaultsPerIter ||
		a.TrafficH2D != b.TrafficH2D || a.EnergyJoules != b.EnergyJoules {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestHostMemoryWallSurfaces(t *testing.T) {
	b := workload.NewBuilder("huge", 1)
	b.Tensor("w", 2<<30, workload.Weight, true) // 2 GiB > 1 GiB host
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Params: smallParams(), Program: p, Policy: PolicyUM, Iterations: 1})
	if err == nil {
		t.Fatal("allocation beyond the host backing store must fail")
	}
}

func TestRealModelEndToEnd(t *testing.T) {
	// BERT Base at scale 64 on a proportionally scaled machine.
	p, err := models.Build(models.Spec{Model: "bert-base", Dataset: "wikitext"}, 31, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	um, err := Run(Config{Params: params, Program: p, Policy: PolicyUM, Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	du, err := Run(Config{Params: params, Program: p, Policy: PolicyDeepUM,
		DriverOptions: core.DefaultOptions(), Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if du.TotalTime >= um.TotalTime {
		t.Fatalf("DeepUM %v not faster than UM %v on bert-base", du.TotalTime, um.TotalTime)
	}
	ratio := float64(du.FaultsPerIter) / float64(um.FaultsPerIter+1)
	if ratio > 0.5 {
		t.Fatalf("DeepUM fault reduction too weak: %d vs %d (ratio %.2f)",
			du.FaultsPerIter, um.FaultsPerIter, ratio)
	}
}

func TestDLRMIrregularDefeatsPrefetch(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "dlrm", Dataset: "criteo"}, 96000, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	um, err := Run(Config{Params: params, Program: p, Policy: PolicyUM, Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	du, err := Run(Config{Params: params, Program: p, Policy: PolicyDeepUM,
		DriverOptions: core.DefaultOptions(), Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// §6.2: "DLRM shows almost no speedup over UM" (paper measures
	// 1.2-1.3x; at the realistic scales of the bench suite this
	// reproduction lands at 1.1-1.25x). Correlation prefetching gains
	// nothing from the input-dependent lookups, so the speedup stays near
	// break-even — far below the 3x+ of dense models. The band is wide at
	// this tiny test scale (18-block tables) where sampling noise is large.
	speedup := float64(um.TotalTime) / float64(du.TotalTime)
	if speedup < 0.4 || speedup > 2.5 {
		t.Fatalf("DLRM speedup = %.2f, out of plausible band", speedup)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil program must fail")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyUM.String() != "UM" || PolicyDeepUM.String() != "DeepUM" || PolicyIdeal.String() != "Ideal" {
		t.Fatal("Policy.String broken")
	}
	if Policy(99).String() != "unknown" {
		t.Fatal("unknown policy string")
	}
}
