// Package engine executes a training workload against the Unified Memory
// substrate under a configurable policy: naive UM (the NVIDIA driver alone),
// or DeepUM with any subset of its mechanisms. It is the measurement
// apparatus behind every UM-side number of the paper's evaluation —
// iteration times (Fig. 9), fault counts (Table 5), ablation (Fig. 10),
// degree sensitivity (Fig. 11), table parameters (Fig. 12), and energy
// (Fig. 9c/11b).
package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"

	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/health"
	"deepum/internal/obs"

	// All built-in prefetch policies register themselves so run configs and
	// discovery listings resolve them anywhere the engine is linked.
	_ "deepum/internal/policy/gpuvm"
	_ "deepum/internal/policy/learned"
	"deepum/internal/sim"
	"deepum/internal/torchalloc"
	"deepum/internal/trace"
	"deepum/internal/um"
	"deepum/internal/umrt"
	"deepum/internal/workload"
)

// Policy selects the memory-management stack.
type Policy uint8

const (
	// PolicyUM is the naive CUDA Unified Memory baseline: on-demand fault
	// migration, stock least-recently-migrated eviction, no prefetching.
	PolicyUM Policy = iota
	// PolicyDeepUM runs the DeepUM driver with the options in
	// Config.DriverOptions.
	PolicyDeepUM
	// PolicyIdeal gives the device unbounded memory: the no-oversubscription
	// upper bound used for the "Ideal" bars of Figures 9 and 13.
	PolicyIdeal
)

func (p Policy) String() string {
	switch p {
	case PolicyUM:
		return "UM"
	case PolicyDeepUM:
		return "DeepUM"
	case PolicyIdeal:
		return "Ideal"
	}
	return "unknown"
}

// Config parameterizes one simulated training run.
type Config struct {
	Params  sim.Params
	Program *workload.Program
	Policy  Policy
	// DriverOptions configure the DeepUM driver (PolicyDeepUM only).
	DriverOptions core.Options
	// Iterations is the number of measured training iterations.
	Iterations int
	// Warmup iterations run before measurement starts (the correlation
	// tables learn during them). Defaults to 2 when zero.
	Warmup int
	// Seed drives the irregular-access sampler.
	Seed int64
	// MaxFaultBatch bounds how many UM blocks one fault-handling cycle
	// covers (the fault buffer is finite). Defaults to 64.
	MaxFaultBatch int
	// UMDensityPrefetch enables the NVIDIA driver's neighborhood heuristic
	// on the fault path (whole-block coalescing for dense faults) — an
	// ablation point between naive UM and DeepUM.
	UMDensityPrefetch bool
	// Tracer, when set, records the run's event stream (launches, faults,
	// migrations, evictions, prefetches, stalls) for offline analysis.
	Tracer *trace.Recorder
	// Obs, when set, attaches the structured observability layer: typed
	// spans and instants (iterations, kernels, fault batches, the prefetch
	// lifecycle, evictions, link occupancy, breaker transitions, queue
	// depths) in virtual time, exportable as a Chrome/Perfetto trace. Nil —
	// the default — costs one branch per emit site and zero allocations.
	Obs *obs.Recorder
	// Chaos, when set, perturbs the run: link degradation and jitter,
	// transient transfer failures (retried with backoff; prefetches give up
	// and fall back to on-demand faulting), fault-buffer overflow, dropped
	// and duplicated driver notifications, host-pressure spikes, and
	// migration-thread stalls. Injection is deterministic per injector seed.
	// The invariant checker runs regardless of whether Chaos is set.
	Chaos *chaos.Injector
	// Health, when set, attaches the closed-loop health controller: the
	// run's degradation telemetry (transfer failures/retries, prefetch
	// waste and late hits, fault-batch latency, breaker transitions,
	// migrator stalls) feeds per-component EWMA scores, and the resulting
	// ladder level gates speculation — prefetch issue and enqueue, chaining
	// degree, pre-eviction, fault-batch size, eviction policy. Nil (the
	// default) disables the ladder entirely; the demand path is never
	// gated, so correctness is identical at every level.
	Health *health.Controller

	// Ctx supervises the run: once it is cancelled or its deadline expires,
	// the run stops at the next simulated event, drains demand work,
	// discards prefetches, and returns a partial Result tagged with the
	// matching RunStatus. RunContext fills it in; nil never interrupts.
	Ctx context.Context
	// Deadline bounds the run in VIRTUAL (simulated) time: the run stops at
	// the first event at or past this budget with StatusDeadlineExceeded.
	// Unlike a context deadline it is deterministic under a fixed seed —
	// the chaos scenario "deadline-tight" uses it. Zero means unbounded.
	Deadline sim.Duration
	// BreakerThreshold is the consecutive prefetch-transfer-failure count
	// that opens the prefetch circuit breaker (default 8); BreakerCooldown
	// is the virtual time the breaker stays open before half-opening to
	// probe (default 500us). See breaker.go.
	BreakerThreshold int
	BreakerCooldown  sim.Duration
}

// Result aggregates the measurements of a run. Interrupted runs (Status
// cancelled or deadline-exceeded) return a partial Result: Iterations and
// the per-iteration slices cover only what completed, and the aggregate
// counters cover the run up to the stop event.
type Result struct {
	Policy Policy
	// Iterations is the number of measured iterations that actually
	// completed — equal to the configured count only for uninterrupted runs.
	Iterations int
	// Status classifies how the run ended; see RunStatus.
	Status RunStatus

	TotalTime sim.Duration // measured iterations only
	IterTimes []sim.Duration
	// IterStats covers every completed iteration, warmup included, with
	// per-iteration fault and prefetch counts (the checkpoint/resume
	// equivalence trace).
	IterStats []IterStat
	GPUBusy   sim.Duration // SM-active time within measured iterations
	LinkBusy  sim.Duration // link-active (either direction) time

	// FaultsPerIter is the average page-fault count per measured iteration
	// (Table 5).
	FaultsPerIter int64
	Handler       um.HandlerStats
	Driver        core.Stats
	// PrefetchPolicy is the registered name of the prefetch policy the
	// driver ran ("correlation", "learned", ...); empty for non-DeepUM
	// system policies.
	PrefetchPolicy string
	// DriverTableBytes is the prefetch policy's state memory — the
	// correlation-table bytes of Table 4 under the default policy.
	DriverTableBytes int64
	// Tables exposes the driver's correlation tables for inspection
	// (cmd/deepum-inspect); nil for non-DeepUM policies and for prefetch
	// policies that keep no correlation tables.
	Tables *correlation.Tables
	// PolicyPayload is the serialized warm state of a non-correlation
	// prefetch policy (correlation state travels typed through Tables); nil
	// otherwise.
	PolicyPayload []byte

	TrafficH2D, TrafficD2H int64
	PeakAllocBytes         int64
	EnergyJoules           float64

	// Chaos reports what the injector delivered; zero without injection.
	Chaos chaos.Stats

	// Invariant is the first invariant-checker violation, reported through
	// the result (Status degraded) instead of aborting the caller; nil on a
	// consistent run.
	Invariant *chaos.InvariantError
	// Breaker snapshots the prefetch circuit breaker (zero value for
	// policies without a driver).
	Breaker BreakerStats
	// DiscardedPrefetches counts queued prefetch commands thrown away when
	// the run was interrupted (demand work drains; speculation does not).
	DiscardedPrefetches int64
	// Health summarizes the degradation ladder when Config.Health was set
	// (nil otherwise): final and max level, transition log, peak scores.
	Health *health.Report
	// AccessChecksum is an FNV-1a digest of the ordered GPU access sequence
	// (block, pages, write per touch). The sequence depends only on the
	// workload and Seed — never on timing, chaos, or the ladder level — so
	// equal checksums across configurations certify that degradation
	// changed scheduling, not computation.
	AccessChecksum uint64
}

// IterTime returns the mean measured iteration time.
func (r *Result) IterTime() sim.Duration {
	if r.Iterations == 0 {
		return 0
	}
	return r.TotalTime / sim.Duration(r.Iterations)
}

// Run executes the configured training run and returns its measurements.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a supervising context: cancellation or deadline
// expiry stops the run at the next simulated event and returns a partial
// Result (nil error) tagged StatusCancelled or StatusDeadlineExceeded.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx != nil {
		cfg.Ctx = ctx
	}
	if cfg.Program == nil {
		return nil, fmt.Errorf("engine: nil program")
	}
	if cfg.Iterations < 1 {
		cfg.Iterations = 1
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2
	}
	if cfg.MaxFaultBatch <= 0 {
		cfg.MaxFaultBatch = 64
	}
	e, err := newExec(cfg)
	if err != nil {
		return nil, err
	}
	return e.run()
}

// touch is one UM-block access of a kernel.
type touch struct {
	block um.BlockID
	pages int64
	write bool
}

type exec struct {
	cfg     Config
	params  sim.Params
	space   *um.Space
	res     *um.Residency
	link    *sim.Duplex
	linkTL  *sim.Timeline
	alloc   *torchalloc.Allocator
	handler *um.Handler
	rt      *umrt.Runtime
	driver  *core.Driver // nil for PolicyUM / PolicyIdeal
	rng     *rand.Rand
	chaos   *chaos.Injector    // nil-safe: methods on a nil injector inject nothing
	health  *health.Controller // nil-safe: a nil controller never degrades

	bases      map[workload.TensorID]um.Addr
	inputs     []workload.TensorID
	prefetched map[um.BlockID]bool
	// everPrefetched tracks blocks prefetched within the current iteration,
	// for the diagnostics DebugHook only.
	everPrefetched map[um.BlockID]bool
	// pending is a prefetch command parked because eviction would have
	// displaced protected blocks; retried on the next pump.
	pending *core.PrefetchCommand
	// evictedInCycle records blocks evicted while the current fault cycle
	// runs, so the served-invariant check can tell "served then displaced"
	// (legitimate; the GPU replays) from "silently lost" (a bug).
	evictedInCycle map[um.BlockID]bool

	now     sim.Time
	cmdTime sim.Time // when the pending prefetch commands became available
	gpuBusy sim.Duration

	// Run-lifecycle supervision (lifecycle.go): the supervising context, the
	// absolute virtual-time deadline (0 = none), the status recorded by the
	// first interrupt check that fired, and the first invariant violation.
	ctx       context.Context
	deadline  sim.Time
	status    RunStatus
	invariant *chaos.InvariantError
	// breaker is the prefetch circuit breaker (breaker.go); nil (and
	// nil-safe) for policies without a driver.
	breaker *prefetchBreaker

	touchBuf []touch
	groupBuf []um.FaultGroup

	// accessSum folds every touch in program order (see Result.AccessChecksum).
	accessSum uint64

	tracer        *trace.Recorder
	obs           *obs.Recorder
	currentKernel string
}

func newExec(cfg Config) (*exec, error) {
	params := cfg.Params
	// The UM address space is virtual: untouched segment tails consume no
	// host RAM, so the space itself is unbounded and the backing-store wall
	// is enforced on live (active PT block) bytes below.
	space := um.NewSpace(0)
	capacity := params.GPUMemory
	if cfg.Policy == PolicyIdeal {
		capacity = 1 << 62 // ideal runs also ignore the host wall
	}
	linkTL := &sim.Timeline{}
	e := &exec{
		cfg:        cfg,
		params:     params,
		space:      space,
		res:        um.NewResidency(space, capacity),
		link:       sim.NewDuplex(params, linkTL),
		linkTL:     linkTL,
		alloc:      torchalloc.New(space),
		rng:        rand.New(rand.NewSource(cfg.Seed + 1)),
		chaos:      cfg.Chaos,
		health:     cfg.Health,
		bases:      make(map[workload.TensorID]um.Addr),
		prefetched: make(map[um.BlockID]bool),
		accessSum:  fnvOffset,
	}
	if e.chaos != nil {
		e.link.SetPerturber(e.chaos)
		// Phased (scheduled) injection needs to locate itself in virtual
		// time; static scenarios ignore the clock.
		e.chaos.SetClock(func() sim.Time { return e.now })
	}
	if e.health != nil {
		e.health.SetObserver(cfg.Obs)
	}
	e.ctx = cfg.Ctx
	// Virtual-time deadline: explicit config first, else the chaos
	// scenario's. Runs start at virtual time zero, so the budget is the
	// absolute deadline.
	if cfg.Deadline > 0 {
		e.deadline = sim.Time(cfg.Deadline)
	} else if vd := e.chaos.VirtualDeadline(); vd > 0 {
		e.deadline = sim.Time(vd)
	}
	var policy um.EvictionPolicy = um.LRMPolicy{}
	var invalidator um.Invalidator = um.NoInvalidate{}
	if cfg.Policy == PolicyDeepUM {
		if cfg.DriverOptions.CapacityBytes == 0 {
			cfg.DriverOptions.CapacityBytes = capacity
		}
		if cfg.DriverOptions.TakeWindow == 0 && params.ScaleDivisor > 1 {
			w := 64 / int(params.ScaleDivisor)
			if w < 4 {
				w = 4
			}
			cfg.DriverOptions.TakeWindow = w
		}
		if e.chaos != nil {
			// Table capacity pressure: shrink the row count before the driver
			// sizes its tables (default the config first so the divisor has
			// something to act on).
			if cfg.DriverOptions.TableConfig.NumRows == 0 {
				cfg.DriverOptions.TableConfig = correlation.DefaultBlockTableConfig()
			}
			cfg.DriverOptions.TableConfig = e.chaos.ShrinkTables(cfg.DriverOptions.TableConfig)
		}
		drv, err := core.NewDriverFor(cfg.DriverOptions)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		e.driver = drv
		policy = e.driver
		invalidator = e.driver
		if e.health != nil {
			// The ladder gates speculation at its source (the enqueue point)
			// and, at L3, drops victim selection back to stock LRM — the
			// protected-set predictions are speculation the run no longer
			// honors.
			e.driver.SetHealthGate(e.health)
			policy = um.SwitchPolicy{
				Base:        e.driver,
				Fallback:    um.LRMPolicy{},
				UseFallback: e.health.UseFallbackEviction,
			}
		}
		if e.driver.Options().Prefetch {
			e.breaker = newPrefetchBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
			e.breaker.obs = cfg.Obs
			if e.health != nil {
				// The breaker stays intact as a fast local mechanism; its
				// transitions become one (severe) input to the ladder.
				hc := e.health
				e.breaker.onTransition = func(now sim.Time, from, to string) {
					hc.ObserveBreaker(int64(now), from, to)
				}
			}
		}
		e.driver.SetResidencyProbe(func(b um.BlockID) bool {
			return e.space.Block(b).Resident
		})
		e.alloc.OnActive = e.driver.OnPTActive
		e.alloc.OnInactive = e.driver.OnPTInactive
	}
	e.tracer = cfg.Tracer
	e.obs = cfg.Obs
	e.handler = &um.Handler{
		Params:          params,
		Space:           space,
		Res:             e.res,
		Link:            e.link,
		Policy:          policy,
		Invalidator:     invalidator,
		DensityPrefetch: cfg.UMDensityPrefetch,
		Ctx:             cfg.Ctx,
		Obs:             cfg.Obs,
	}
	if e.health != nil {
		hc := e.health
		e.handler.OnBatch = func(start, end sim.Time, blocks int) {
			hc.ObserveFaultBatch(int64(end), int64(end.Sub(start)))
		}
		e.handler.OnTransferRetry = func(at sim.Time) {
			hc.ObserveTransferFailure(int64(at))
		}
	}
	if rec := cfg.Obs; rec != nil {
		// Link occupancy: every reservation on either lane becomes one span,
		// tagged with the lane track so Perfetto renders per-direction rows.
		e.link.SetObserver(func(start, end sim.Time, n int64, dir sim.Direction, failed bool) {
			track, name := obs.TrackLinkH2D, "h2d"
			if dir == sim.DeviceToHost {
				track, name = obs.TrackLinkD2H, "d2h"
			}
			var failedArg int64
			if failed {
				failedArg = 1
			}
			rec.Span(obs.KindLinkTransfer, track, int64(start), int64(end), name, 0, n, failedArg)
		})
		if e.driver != nil {
			e.driver.SetObserver(rec, func() int64 { return int64(e.now) })
		}
	}
	e.handler.OnMigrated = func(b um.BlockID, at sim.Time) {
		if e.driver != nil {
			// Chaos can lose the notification (interrupt coalescing: the
			// handler served the block but the driver never learns of it) or
			// deliver it twice (a replayed interrupt; the correlator and
			// prefetcher must tolerate duplicates without corrupting state).
			if !e.chaos.DropNotify() {
				e.driver.OnFault(b)
				if e.chaos.DupNotify() {
					e.driver.OnFault(b)
				}
			}
		}
		if e.tracer != nil {
			e.tracer.Record(trace.Event{At: at, Kind: trace.KindMigrate, Kernel: e.currentKernel, Block: b})
		}
	}
	e.handler.OnEvicted = func(b um.BlockID, invalidated bool) {
		if e.prefetched[b] {
			// Prefetched, never accessed, now evicted: the transfer was waste.
			if e.obs != nil {
				e.obs.Instant(obs.KindPrefetchWaste, obs.TrackDriver, int64(e.now), "", int64(b), 0, 0)
			}
			e.health.ObservePrefetchWaste(int64(e.now))
		}
		delete(e.prefetched, b)
		if e.evictedInCycle != nil {
			e.evictedInCycle[b] = true
		}
		if e.driver != nil {
			e.driver.NoteEviction(b)
		}
		if e.tracer != nil {
			kind := trace.KindEvict
			if invalidated {
				kind = trace.KindInvalidate
			}
			e.tracer.Record(trace.Event{At: e.now, Kind: kind, Kernel: e.currentKernel, Block: b})
		}
	}
	e.rt = umrt.New(space, e.driver)
	if e.driver == nil {
		e.rt = umrt.New(space, nil)
	}

	// Setup phase: allocate persistent tensors through the caching
	// allocator, exactly as PyTorch would.
	for _, s := range cfg.Program.Setup {
		if s.Kind != workload.StepAlloc {
			continue
		}
		if err := e.allocTensor(s.Tensor); err != nil {
			return nil, fmt.Errorf("engine: setup allocation of %q: %w",
				cfg.Program.Tensors[s.Tensor].Name, err)
		}
	}
	// Input tensors are written by the host every iteration: their content
	// starts (and stays) host-populated.
	for _, t := range cfg.Program.Tensors {
		if t.Kind == workload.Input && t.Persistent {
			e.inputs = append(e.inputs, t.ID)
			e.markHostPopulated(t.ID)
		}
	}
	return e, nil
}

func (e *exec) allocTensor(id workload.TensorID) error {
	t := e.cfg.Program.Tensors[id]
	b, err := e.alloc.Alloc(t.Bytes)
	if err != nil {
		return err
	}
	if e.cfg.Policy != PolicyIdeal && e.params.HostMemory > 0 &&
		e.alloc.Stats().ActiveBytes > e.params.HostMemory {
		return fmt.Errorf("engine: %w: %d live bytes exceed the CPU backing store",
			um.ErrHostExhausted, e.alloc.Stats().ActiveBytes)
	}
	e.bases[id] = b.Base
	return nil
}

func (e *exec) markHostPopulated(id workload.TensorID) {
	t := e.cfg.Program.Tensors[id]
	base := e.bases[id]
	for _, b := range um.BlocksOf(base, t.Bytes) {
		e.space.Block(b).HostPopulated = true
	}
}

func (e *exec) run() (*Result, error) {
	res := &Result{Policy: e.cfg.Policy}
	var measureStart sim.Time
	var faultsAtMeasureStart int64
	var busyAtMeasureStart sim.Duration
	var prevFaults, prevIssued, prevUseful int64

	total := e.cfg.Warmup + e.cfg.Iterations
	for iter := 0; iter < total; iter++ {
		if e.interrupted() {
			break
		}
		if iter == e.cfg.Warmup {
			measureStart = e.now
			faultsAtMeasureStart = e.handler.Stats.PageFaults
			busyAtMeasureStart = e.gpuBusy
		}
		iterStart := e.now
		err := e.iteration()
		stopped := errors.Is(err, errRunInterrupted)
		if err != nil && !stopped {
			// An invariant violation is reported through the result (Status
			// degraded) so supervised callers decide policy; any other error
			// (OOM, bad workload) still fails the run outright.
			var inv *chaos.InvariantError
			if !errors.As(err, &inv) {
				return nil, err
			}
			e.invariant = inv
			break
		}
		// Always-on invariant checker: residency accounting balanced, link
		// timeline well-formed, driver bookkeeping coherent — under every
		// chaos scenario and under none, including after a partial
		// (interrupted) iteration: stopping must not corrupt state.
		if err := e.checkInvariants(); err != nil {
			var inv *chaos.InvariantError
			if !errors.As(err, &inv) {
				return nil, fmt.Errorf("engine: after iteration %d: %w", iter, err)
			}
			e.invariant = inv
			break
		}
		if stopped {
			break
		}
		stat := IterStat{
			Warmup: iter < e.cfg.Warmup,
			Time:   e.now.Sub(iterStart),
			Faults: e.handler.Stats.PageFaults - prevFaults,
		}
		if e.driver != nil {
			stat.PrefetchIssued = e.driver.Stats.PrefetchIssued - prevIssued
			stat.PrefetchUseful = e.driver.Stats.PrefetchUseful - prevUseful
			prevIssued = e.driver.Stats.PrefetchIssued
			prevUseful = e.driver.Stats.PrefetchUseful
		}
		prevFaults = e.handler.Stats.PageFaults
		res.IterStats = append(res.IterStats, stat)
		if e.obs != nil {
			var warm int64
			if stat.Warmup {
				warm = 1
			}
			e.obs.Span(obs.KindIteration, obs.TrackRun, int64(iterStart), int64(e.now),
				"", int64(iter), stat.Faults, warm)
		}
		if iter >= e.cfg.Warmup {
			res.IterTimes = append(res.IterTimes, stat.Time)
		}
	}

	// Finalize — valid for complete and partial runs alike. A run cut during
	// warmup never opened the measurement window, so the window degenerates
	// to [0, now) with zero measured iterations.
	// A final ladder tick so post-injection recovery observed up to the last
	// event is reflected in the report.
	e.health.Tick(int64(e.now))
	if e.status == StatusCompleted && (e.invariant != nil ||
		(e.breaker != nil && e.breaker.opens > 0) || e.health.MaxLevel() > health.L0) {
		e.status = StatusDegraded
	}
	res.Status = e.status
	res.Invariant = e.invariant
	res.Iterations = len(res.IterTimes)
	res.TotalTime = e.now.Sub(measureStart)
	res.GPUBusy = e.gpuBusy - busyAtMeasureStart
	res.LinkBusy = e.linkTL.Busy()
	if res.Iterations > 0 {
		res.FaultsPerIter = (e.handler.Stats.PageFaults - faultsAtMeasureStart) / int64(res.Iterations)
	}
	res.Handler = e.handler.Stats
	if e.driver != nil {
		if e.status == StatusCancelled || e.status == StatusDeadlineExceeded {
			// Shutdown policy (mirrors pipeline.Stop): demand work already
			// drained at the event boundary; speculative work is discarded.
			res.DiscardedPrefetches = e.driver.DiscardPrefetches()
		}
		res.Driver = e.driver.Stats
		res.PrefetchPolicy = e.driver.PolicyName()
		res.DriverTableBytes = e.driver.PolicySizeBytes()
		res.Tables = e.driver.Tables()
		if res.Tables == nil {
			var warm bytes.Buffer
			if err := e.driver.SavePolicyState(&warm); err != nil {
				return nil, fmt.Errorf("engine: serializing %s policy state: %w", res.PrefetchPolicy, err)
			}
			res.PolicyPayload = warm.Bytes()
		}
	}
	res.Breaker = e.breaker.snapshot()
	res.Health = e.health.Report()
	res.AccessChecksum = e.accessSum
	res.TrafficH2D, res.TrafficD2H = e.link.Traffic()
	res.PeakAllocBytes = e.alloc.Stats().PeakActiveBytes
	res.EnergyJoules = e.energy(res)
	if e.chaos != nil {
		res.Chaos = e.chaos.Stats
		// Demand-path retries live in the handler's stats (um cannot import
		// chaos); fold them in so Result.Chaos is the complete picture.
		res.Chaos.DemandRetries += e.handler.Stats.TransferRetries
		res.Chaos.BackoffTime += e.handler.Stats.RetryStall
	}
	return res, nil
}

// checkInvariants runs the always-on consistency audit at an iteration
// boundary.
func (e *exec) checkInvariants() error {
	var dc chaos.DriverChecker
	if e.driver != nil {
		dc = e.driver
	}
	return chaos.CheckAll(e.res, e.linkTL, dc)
}

// energy integrates the full-system power model over the measured window,
// the stand-in for the Hioki power meter of Table 1.
func (e *exec) energy(r *Result) float64 {
	secs := r.TotalTime.Seconds()
	return (e.params.PowerSystemBase+e.params.PowerGPUIdle)*secs +
		e.params.PowerGPUBusy*r.GPUBusy.Seconds() +
		e.params.PowerLinkActive*r.LinkBusy.Seconds()
}

func (e *exec) iteration() error {
	if e.driver != nil {
		e.driver.BeginIteration()
	}
	if DebugHook != nil {
		e.everPrefetched = make(map[um.BlockID]bool)
	}
	// The host wrote a fresh minibatch: device copies of the input tensors
	// are stale and get unmapped without writeback.
	for _, id := range e.inputs {
		t := e.cfg.Program.Tensors[id]
		for _, b := range um.BlocksOf(e.bases[id], t.Bytes) {
			e.res.Remove(b)
			e.space.Block(b).HostPopulated = true
		}
	}
	for _, s := range e.cfg.Program.Iteration {
		switch s.Kind {
		case workload.StepAlloc:
			if err := e.allocTensor(s.Tensor); err != nil {
				return fmt.Errorf("engine: allocation of %q: %w",
					e.cfg.Program.Tensors[s.Tensor].Name, err)
			}
		case workload.StepFree:
			if err := e.alloc.Free(e.bases[s.Tensor]); err != nil {
				return err
			}
			delete(e.bases, s.Tensor)
		case workload.StepLaunch:
			if err := e.kernel(s.Kernel); err != nil {
				return err
			}
		}
	}
	return nil
}

// kernel simulates one launch: the runtime callback, the faulting walk over
// the kernel's UM-block accesses, and the roofline compute time, with the
// migration thread pumping prefetch and pre-eviction work in the background.
func (e *exec) kernel(k *workload.Kernel) error {
	if e.interrupted() {
		return errRunInterrupted
	}
	// An injected supervisor kill (scenario cancel-mid-iteration) fires on a
	// launch count, deliberately unaligned to iteration boundaries.
	if e.chaos.NoteKernelLaunch() {
		e.status = StatusCancelled
		return errRunInterrupted
	}
	// The ladder is clocked at kernel boundaries: scores decay to the
	// current time and a pending escalation or recovery probe fires here,
	// deterministically in virtual time.
	e.health.Tick(int64(e.now))
	id := e.rt.Launch(k.Name, k.Args)
	e.currentKernel = k.Name
	kernelStart := e.now
	if e.tracer != nil {
		e.tracer.Record(trace.Event{At: e.now, Kind: trace.KindLaunch, Kernel: k.Name, Arg: int64(id)})
	}
	if e.obs != nil && e.driver != nil {
		e.obs.Counter(obs.TrackDriver, int64(e.now), "prefetch-queue", int64(e.driver.PendingPrefetches()))
	}
	e.cmdTime = e.now
	// An injected migration-thread stall delays when queued commands become
	// serviceable; demand faults still handle at full priority.
	if st := e.chaos.MigratorStall(); st > 0 {
		e.cmdTime = e.cmdTime.Add(st)
		e.health.ObserveMigratorStall(int64(e.now), int64(st))
	}
	e.pump(e.now)

	touches := e.touches(k)
	var bytesTouched int64
	for _, t := range touches {
		bytesTouched += t.pages * sim.PageSize
		e.accessSum = fnvFold(e.accessSum, t)
	}

	i := 0
	for i < len(touches) {
		if e.interrupted() {
			return errRunInterrupted
		}
		t := touches[i]
		blk := e.space.Block(t.block)
		if !blk.Resident && e.driver != nil && e.breaker.allow(e.now) &&
			e.health.AllowPrefetch() && e.driver.TakeQueued(t.block) {
			// A prefetch command for this block is already in the queue:
			// the migration thread runs it ahead of the remaining queue
			// (fault avoided; the GPU stalls on the in-flight transfer).
			e.materialize(t.block)
		}
		if blk.Resident {
			// Lead time before the stall adjustment: positive means the block
			// was ready ahead of the access, negative means the GPU waits.
			lead := int64(e.now) - int64(blk.ReadyAt)
			if blk.ReadyAt > e.now {
				// Prefetch in flight: stall until the transfer lands.
				if e.tracer != nil {
					e.tracer.Record(trace.Event{At: e.now, Kind: trace.KindStall,
						Kernel: k.Name, Block: t.block, Arg: int64(blk.ReadyAt.Sub(e.now))})
				}
				if e.obs != nil {
					e.obs.Instant(obs.KindStall, obs.TrackGPU, int64(e.now),
						"", int64(t.block), int64(blk.ReadyAt.Sub(e.now)), 0)
				}
				e.now = blk.ReadyAt
			}
			// Materialize pages of the block this access covers that an
			// earlier partial fault did not (co-located tensors).
			e.res.TopUp(t.block, t.pages)
			e.res.Touch(t.block, t.write)
			if e.driver != nil {
				e.driver.Unprotect(t.block)
			}
			if e.prefetched[t.block] {
				delete(e.prefetched, t.block)
				if e.driver != nil {
					e.driver.NotePrefetchUseful()
				}
				if e.obs != nil {
					e.obs.Instant(obs.KindPrefetchHit, obs.TrackGPU, int64(e.now),
						"", int64(t.block), lead, 0)
				}
				if lead < 0 {
					e.health.ObserveLateHit(int64(e.now))
				}
			}
			i++
			continue
		}
		// Batch consecutive non-resident blocks into one fault cycle; a block
		// with a timely prefetch command is not part of the batch — its
		// migration starts as queue work instead.
		e.groupBuf = e.groupBuf[:0]
		// Fault-buffer overflow chaos shrinks the cycle: excess entries
		// replay in the next cycle, as a full hardware buffer forces.
		batchCap := e.health.FaultBatchCap(e.chaos.FaultBatchCap(e.cfg.MaxFaultBatch))
		j := i
		for j < len(touches) && len(e.groupBuf) < batchCap {
			tj := touches[j]
			if e.space.Block(tj.block).Resident {
				break
			}
			if e.driver != nil && e.breaker.allow(e.now) &&
				e.health.AllowPrefetch() && e.driver.TakeQueued(tj.block) {
				e.materialize(tj.block)
				break
			}
			if DebugHook != nil {
				tag := "never-predicted"
				switch {
				case e.everPrefetched[tj.block]:
					tag = "evicted-after-prefetch"
				case e.driver != nil && e.driver.IsQueued(tj.block):
					tag = "queued-too-deep"
				}
				DebugHook(tag)
				if DebugFaultHook != nil {
					DebugFaultHook(k.Name, j, tag)
				}
			}
			e.groupBuf = append(e.groupBuf, um.FaultGroup{Block: tj.block, Count: tj.pages, Write: tj.write})
			j++
		}
		// Let background transfers that start before the fault finish their
		// reservations, then handle the fault with priority.
		e.pump(e.now)
		if e.tracer != nil {
			var pages int64
			for _, g := range e.groupBuf {
				pages += g.PageCount()
			}
			e.tracer.Record(trace.Event{At: e.now, Kind: trace.KindFault,
				Kernel: k.Name, Block: e.groupBuf[0].Block, Arg: pages})
		}
		if e.evictedInCycle == nil {
			e.evictedInCycle = make(map[um.BlockID]bool)
		} else {
			clear(e.evictedInCycle)
		}
		e.now = e.handler.HandleGroups(e.now, e.groupBuf)
		// A cancellation observed during the handling cycle means the handler
		// may have legitimately abandoned trailing groups — skip the served
		// audit for the interrupted cycle and stop.
		if e.interrupted() {
			return errRunInterrupted
		}
		// Every access eventually served: a handling cycle may be slowed by
		// chaos but may never lose a faulted block.
		if err := chaos.CheckServed(e.space, e.groupBuf, e.evictedInCycle); err != nil {
			return err
		}
		i = j
	}

	// Compute phase: the SMs run while the migration thread keeps pumping.
	dur := e.params.KernelTime(k.FLOPs, bytesTouched+k.ExtraBytes)
	e.gpuBusy += dur
	e.now = e.now.Add(dur)
	e.pump(e.now)
	e.rt.Complete(id)
	e.cmdTime = e.now
	e.pump(e.now)
	if e.obs != nil {
		e.obs.Span(obs.KindKernel, obs.TrackGPU, int64(kernelStart), int64(e.now), k.Name, 0, 0, 0)
	}
	return nil
}

// touches expands a kernel's accesses into an ordered UM-block touch list.
func (e *exec) touches(k *workload.Kernel) []touch {
	e.touchBuf = e.touchBuf[:0]
	for _, a := range k.Accesses {
		base, ok := e.bases[a.Tensor]
		if !ok {
			continue // tensor not allocated (defensive; Build validates)
		}
		bytes := e.cfg.Program.Tensors[a.Tensor].Bytes
		blocks := um.BlocksOf(base, bytes)
		if !a.Irregular {
			for _, b := range blocks {
				e.touchBuf = append(e.touchBuf, touch{b, um.PagesIn(base, bytes, b), a.Write})
			}
			continue
		}
		// Irregular sparse access: sample the block subset fresh each call
		// and visit it in input-dependent (shuffled) order — both the set
		// and the order defeat history-based prediction (§6.2).
		frac := a.Fraction
		if frac <= 0 || frac > 1 {
			frac = 1
		}
		pf := a.PageFraction
		if pf <= 0 || pf > frac {
			pf = frac
		}
		pagesPerBlock := pf / frac * float64(sim.PagesPerBlock)
		if pagesPerBlock < 1 {
			pagesPerBlock = 1
		}
		start := len(e.touchBuf)
		for _, b := range blocks {
			if frac < 1 && e.rng.Float64() >= frac {
				continue
			}
			pg := int64(pagesPerBlock)
			if full := um.PagesIn(base, bytes, b); pg > full {
				pg = full
			}
			e.touchBuf = append(e.touchBuf, touch{b, pg, a.Write})
		}
		// The driver's fault preprocessing sorts each batch by address, so
		// the handler sees short address-ordered runs arriving in
		// input-dependent order: shuffle runs of blocks, not single blocks.
		sub := e.touchBuf[start:]
		const runLen = 8
		nRuns := (len(sub) + runLen - 1) / runLen
		e.rng.Shuffle(nRuns, func(i, j int) {
			for k := 0; k < runLen; k++ {
				a, b := i*runLen+k, j*runLen+k
				if a < len(sub) && b < len(sub) {
					sub[a], sub[b] = sub[b], sub[a]
				}
			}
		})
	}
	return e.touchBuf
}

// pump advances the migration thread's background work up to the given GPU
// time: pre-evictions keep the watermark of free device memory (§5.1), and
// prefetch commands stream over the H2D lane while it is idle. A transfer
// whose start would land at or beyond `until` stays queued so a future fault
// can jump ahead of it (fault queue > prefetch queue, §3.1).
func (e *exec) pump(until sim.Time) {
	if e.driver == nil {
		return
	}
	// Pre-eviction off the critical path, on the D2H lane. Victims are
	// never blocks predicted for the next N kernels (§5.1). The ladder
	// disables it from L2 up — a sick substrate keeps the D2H lane for
	// demand writebacks only.
	if target := e.driver.PreevictTarget(e.res); target > 0 && e.health.AllowPreevict() {
		victims, _ := e.driver.VictimsForPrefetch(e.res, target)
		for _, v := range victims {
			if e.link.BusyUntil(sim.DeviceToHost) >= until {
				break
			}
			e.evictBackground(v, true)
		}
	}
	// Prefetch stream on the H2D lane. An open circuit breaker short-circuits
	// the whole stream: the run is in pure on-demand mode until the cooldown
	// half-opens it.
	for {
		if e.link.BusyUntil(sim.HostToDevice) >= until {
			return
		}
		if !e.breaker.allow(until) || !e.health.AllowPrefetch() {
			return
		}
		cmd, ok := e.nextPrefetch()
		if !ok {
			return
		}
		blk := e.space.Block(cmd.Block)
		if blk.Resident || blk.AllocatedPages == 0 {
			continue
		}
		need := blk.Bytes()
		if e.res.Free() < need {
			// Make room without touching protected blocks; victims stream
			// out on the D2H lane, so this does not delay the prefetch.
			victims, enough := e.driver.VictimsForPrefetch(e.res, need-e.res.Free())
			if !enough {
				// Everything evictable is predicted for upcoming kernels:
				// displacing it would be self-defeating. Park the command
				// and let demand faults or future frees make room.
				e.pending = &cmd
				return
			}
			for _, v := range victims {
				e.evictBackground(v, false)
			}
		}
		at := sim.Max(e.cmdTime, e.link.BusyUntil(sim.HostToDevice))
		var ready sim.Time
		if blk.HostPopulated {
			var ok bool
			if ready, ok = e.prefetchTransfer(at, need); !ok {
				continue // abandoned: the block falls back to on-demand faulting
			}
		} else {
			ready = at // zero-fill populate: free
		}
		e.res.Insert(cmd.Block, blk.AllocatedPages, ready, ready)
		e.prefetched[cmd.Block] = true
		if e.everPrefetched != nil {
			e.everPrefetched[cmd.Block] = true
		}
		if e.tracer != nil {
			e.tracer.Record(trace.Event{At: e.now, Kind: trace.KindPrefetch, Kernel: e.currentKernel, Block: cmd.Block})
		}
		if e.obs != nil {
			e.obs.Span(obs.KindPrefetch, obs.TrackDriver, int64(at), int64(ready), "", int64(cmd.Block), need, 0)
		}
	}
}

// materialize starts the whole-block migration of a queued prefetch command
// the GPU is about to need: one full-bandwidth transfer (or a zero-fill),
// making room without touching protected blocks first.
func (e *exec) materialize(b um.BlockID) {
	blk := e.space.Block(b)
	if blk.Resident || blk.AllocatedPages == 0 {
		return
	}
	need := blk.Bytes()
	if e.res.Free() < need {
		victims, enough := e.driver.VictimsForPrefetch(e.res, need-e.res.Free())
		if !enough {
			return // demand fault path will evict synchronously
		}
		for _, v := range victims {
			e.evictBackground(v, false)
		}
	}
	at := sim.Max(e.cmdTime, e.link.BusyUntil(sim.HostToDevice))
	var ready sim.Time
	if blk.HostPopulated {
		var ok bool
		if ready, ok = e.prefetchTransfer(at, need); !ok {
			return // abandoned: the access demand-faults instead
		}
	} else {
		ready = sim.Max(at, e.now)
	}
	e.res.Insert(b, blk.AllocatedPages, ready, ready)
	e.prefetched[b] = true
	if e.everPrefetched != nil {
		e.everPrefetched[b] = true
	}
	if e.tracer != nil {
		e.tracer.Record(trace.Event{At: e.now, Kind: trace.KindPrefetch, Kernel: e.currentKernel, Block: b})
	}
	if e.obs != nil {
		e.obs.Span(obs.KindPrefetch, obs.TrackDriver, int64(at), int64(ready), "", int64(b), need, 0)
	}
}

// prefetchTransfer moves a whole block H2D for a prefetch, retrying an
// injected transient failure with bounded exponential backoff. Unlike the
// demand path, a prefetch may give up: past MaxPrefetchRetries the command
// is abandoned and the block is served by an on-demand fault when the GPU
// reaches it — the graceful-degradation path that keeps a flaky link from
// wedging the background pipeline. Without injection the first attempt
// always succeeds.
func (e *exec) prefetchTransfer(at sim.Time, need int64) (ready sim.Time, ok bool) {
	for attempt := 0; ; attempt++ {
		_, end, delivered := e.link.ReserveChecked(at, need, sim.HostToDevice)
		if delivered {
			e.breaker.success(end)
			e.health.ObserveTransferSuccess(int64(end))
			return end, true
		}
		e.breaker.failure(end)
		e.health.ObserveTransferFailure(int64(end))
		if attempt >= chaos.MaxPrefetchRetries {
			e.chaos.NotePrefetchGiveUp()
			e.health.ObservePrefetchGiveUp(int64(end))
			return end, false
		}
		if !e.breaker.allow(end) {
			// The breaker opened on this failure: abandon the command without
			// burning the remaining retries — on-demand faulting serves it.
			e.chaos.NotePrefetchGiveUp()
			e.health.ObservePrefetchGiveUp(int64(end))
			return end, false
		}
		e.chaos.NotePrefetchRetry()
		e.health.ObservePrefetchRetry(int64(end))
		at = end.Add(e.chaos.Backoff(attempt))
	}
}

// nextPrefetch returns the parked command first, then the driver queue.
func (e *exec) nextPrefetch() (core.PrefetchCommand, bool) {
	if e.pending != nil {
		cmd := *e.pending
		e.pending = nil
		return cmd, true
	}
	return e.driver.NextPrefetch()
}

// evictBackground removes one victim off the critical path: invalidated
// blocks drop for free, the rest stream out on the D2H lane.
func (e *exec) evictBackground(v um.BlockID, countPreevict bool) {
	vb := e.space.Block(v)
	if e.driver.CanInvalidate(v) {
		e.res.Remove(v)
		e.driver.NoteInvalidation()
		if e.obs != nil {
			e.obs.Instant(obs.KindEvict, obs.TrackDriver, int64(e.now), "", int64(v), 0, obs.EvictInvalidated)
		}
		return
	}
	wb := vb.ResidentBytes()
	_, end := e.link.Reserve(sim.Max(e.cmdTime, e.link.BusyUntil(sim.DeviceToHost)), wb, sim.DeviceToHost)
	vb.HostPopulated = true
	if e.prefetched[v] {
		if e.obs != nil {
			e.obs.Instant(obs.KindPrefetchWaste, obs.TrackDriver, int64(e.now), "", int64(v), 0, 0)
		}
		e.health.ObservePrefetchWaste(int64(e.now))
	}
	if e.obs != nil {
		e.obs.Instant(obs.KindEvict, obs.TrackDriver, int64(end), "", int64(v), wb, 0)
	}
	e.res.Remove(v)
	delete(e.prefetched, v)
	e.driver.NoteEviction(v)
	if countPreevict {
		e.driver.NotePreeviction()
	}
}

// FNV-1a over the touch stream (Result.AccessChecksum).
const (
	fnvOffset = uint64(14695981039346656037)
	fnvPrime  = uint64(1099511628211)
)

func fnvFold(h uint64, t touch) uint64 {
	for _, v := range [3]uint64{uint64(t.block), uint64(t.pages), boolBit(t.write)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// DebugHook, when set, is called for every demand-faulted block with a tag
// classifying its history: "evicted-after-prefetch", "never-predicted".
// Used by diagnostics tests only.
var DebugHook func(tag string)

// DebugFaultHook, when set, receives (kernel name, touch index, tag) per
// demand-faulted block. Diagnostics only.
var DebugFaultHook func(kernel string, idx int, tag string)
