package engine

import (
	"testing"

	"deepum/internal/core"
	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/um"
)

// TestResidencyNeverOverCapacity: device usage stays bounded through a full
// oversubscribed run. TopUp can transiently exceed capacity until the next
// eviction point, so the bound allows one iteration's worth of slack but
// never runaway growth.
func TestResidencyNeverOverCapacity(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-large", Dataset: "wikitext"}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	e, err := newExec(Config{Params: params, Program: p, Policy: PolicyDeepUM,
		DriverOptions: core.DefaultOptions(), Iterations: 1, Warmup: 1, Seed: 1, MaxFaultBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	limit := params.GPUMemory + params.GPUMemory/4
	for i := 0; i < 4; i++ {
		if err := e.iteration(); err != nil {
			t.Fatal(err)
		}
		if e.res.Used() > limit {
			t.Fatalf("iteration %d: device usage %d exceeds capacity %d by more than 25%%",
				i, e.res.Used(), params.GPUMemory)
		}
		if e.res.Count() < 0 {
			t.Fatal("negative resident count")
		}
	}
}

// TestTrafficConservation: H2D traffic can never exceed what was ever
// populated host-side plus re-fetches, and both directions stay positive
// and finite on an oversubscribed run.
func TestTrafficConservation(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "gpt2-l", Dataset: "wikitext"}, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	res, err := Run(Config{Params: params, Program: p, Policy: PolicyDeepUM,
		DriverOptions: core.DefaultOptions(), Iterations: 4, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficH2D <= 0 || res.TrafficD2H <= 0 {
		t.Fatalf("traffic = (%d, %d)", res.TrafficH2D, res.TrafficD2H)
	}
	// Every byte fetched H2D must have been written back D2H at some point
	// (weights zero-fill on first touch; activations are invalidated):
	// H2D cannot exceed D2H by more than one full footprint per iteration.
	slack := int64(6+2) * p.FootprintBytes()
	if res.TrafficH2D > res.TrafficD2H+slack {
		t.Fatalf("H2D %d exceeds D2H %d + slack %d: bytes fetched that never existed",
			res.TrafficH2D, res.TrafficD2H, slack)
	}
}

// TestMonotoneNonDecreasingClock: simulated time advances monotonically
// through all events; the final clock covers GPU busy time.
func TestMonotoneNonDecreasingClock(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "mobilenet", Dataset: "cifar100"}, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	res, err := Run(Config{Params: params, Program: p, Policy: PolicyDeepUM,
		DriverOptions: core.DefaultOptions(), Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range res.IterTimes {
		if it <= 0 {
			t.Fatalf("iteration %d has non-positive duration %v", i, it)
		}
	}
	if res.GPUBusy > res.TotalTime {
		t.Fatalf("GPU busy %v exceeds wall time %v", res.GPUBusy, res.TotalTime)
	}
	if res.LinkBusy < 0 {
		t.Fatal("negative link busy time")
	}
}

// TestSeedChangesIrregularOnly: different seeds change DLRM (irregular)
// results but leave BERT (deterministic access pattern) identical.
func TestSeedChangesIrregularOnly(t *testing.T) {
	params := sim.DefaultParams().Scale(64)
	run := func(model, ds string, batch, seed int64) *Result {
		p, err := models.Build(models.Spec{Model: model, Dataset: ds}, batch, 64)
		if err != nil {
			t.Fatal(err)
		}
		r, err := Run(Config{Params: params, Program: p, Policy: PolicyDeepUM,
			DriverOptions: core.DefaultOptions(), Iterations: 3, Warmup: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	b1 := run("bert-base", "wikitext", 16, 1)
	b2 := run("bert-base", "wikitext", 16, 99)
	if b1.TotalTime != b2.TotalTime {
		t.Fatalf("seed changed a deterministic workload: %v vs %v", b1.TotalTime, b2.TotalTime)
	}
	d1 := run("dlrm", "criteo", 96000, 1)
	d2 := run("dlrm", "criteo", 96000, 99)
	if d1.TotalTime == d2.TotalTime {
		t.Fatal("seed did not affect the irregular workload")
	}
}

// TestInputRefreshFaultsEachIteration: the host rewrites input tensors, so
// even fully-resident runs re-migrate them every iteration.
func TestInputRefreshFaultsEachIteration(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-base", Dataset: "wikitext"}, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	params.GPUMemory *= 16 // plenty of room: no oversubscription
	res, err := Run(Config{Params: params, Program: p, Policy: PolicyUM,
		Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultsPerIter == 0 {
		t.Fatal("input refresh must fault even without oversubscription")
	}
	// But only a handful of pages: the minibatch, not the model.
	if res.FaultsPerIter > 100 {
		t.Fatalf("too many steady-state faults without oversubscription: %d", res.FaultsPerIter)
	}
}

// TestBlockIDsStableAcrossIterations: the caching allocator hands the same
// addresses to the same tensors every iteration — the property that makes
// execution IDs and block correlations repeat.
func TestBlockIDsStableAcrossIterations(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-base", Dataset: "wikitext"}, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	e, err := newExec(Config{Params: params, Program: p, Policy: PolicyUM,
		Iterations: 1, Warmup: 1, Seed: 1, MaxFaultBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	record := func() map[int32]um.Addr {
		out := map[int32]um.Addr{}
		if err := e.iteration(); err != nil {
			t.Fatal(err)
		}
		// Snapshot after the iteration: transient tensors are freed, so we
		// compare persistent bases plus allocator determinism via a second
		// full iteration below.
		for id, base := range e.bases {
			out[int32(id)] = base
		}
		return out
	}
	a := record()
	b := record()
	for id, base := range a {
		if b[id] != base {
			t.Fatalf("tensor %d moved between iterations: %d -> %d", id, base, b[id])
		}
	}
}

// TestUMDensityPrefetchHelps: the NVIDIA neighborhood heuristic sits
// between naive UM and DeepUM for dense workloads.
func TestUMDensityPrefetchHelps(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-large", Dataset: "wikitext"}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	params := sim.DefaultParams().Scale(64)
	naive, err := Run(Config{Params: params, Program: p, Policy: PolicyUM,
		Iterations: 3, Warmup: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Run(Config{Params: params, Program: p, Policy: PolicyUM,
		Iterations: 3, Warmup: 2, Seed: 1, UMDensityPrefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if dense.TotalTime >= naive.TotalTime {
		t.Fatalf("density heuristic did not help: %v vs %v", dense.TotalTime, naive.TotalTime)
	}
}
