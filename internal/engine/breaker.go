package engine

import (
	"fmt"
	"time"

	"deepum/internal/metrics"
	"deepum/internal/obs"
	"deepum/internal/sim"
)

// The prefetch circuit breaker. Prefetching is a pure optimization: when the
// link is so unhealthy that prefetch transfers keep failing, continuing to
// issue them wastes link occupancy and backoff time that the demand path —
// which cannot give up — then has to wait behind. After BreakerThreshold
// consecutive failed prefetch-transfer attempts the breaker opens and the
// run falls back to pure on-demand faulting (correct, merely slower — the
// same graceful-degradation contract as the rest of the chaos hardening).
// After a cooldown in virtual time it half-opens and probes with real
// prefetches; one delivered transfer closes it, one failure reopens it.
// Every transition is recorded in a metrics.TransitionLog for post-run
// audit, and a run whose breaker ever opened finishes as StatusDegraded.

// Breaker state names, as reported in BreakerStats and the transition log.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

const (
	// defaultBreakerThreshold is the consecutive-failure count that opens
	// the breaker. The chaos injector's default MaxConsecutiveFails is 4, so
	// the builtin scenarios degrade via retries without ever tripping it;
	// only a genuinely wedged link (or a test that asks for one) does.
	defaultBreakerThreshold = 8
	// defaultBreakerCooldown is the virtual time the breaker stays open
	// before probing again — long enough to skip past a transient outage,
	// short enough to re-enable prefetching within an iteration.
	defaultBreakerCooldown = sim.Duration(500 * time.Microsecond)
)

// BreakerStats snapshots the prefetch circuit breaker for the run result.
type BreakerStats struct {
	Threshold int
	Cooldown  sim.Duration
	// State is the breaker's state when the run ended.
	State string
	// Opens counts closed/half-open -> open transitions.
	Opens int64
	// EverOpened is true when the breaker tripped at least once; it marks
	// the run StatusDegraded.
	EverOpened bool
	// ShortCircuited counts prefetch opportunities skipped while open.
	ShortCircuited int64
	// Transitions is the full state-transition log, virtual-time stamped.
	Transitions []metrics.StateTransition
}

// prefetchBreaker is the engine's breaker state machine. All methods are
// nil-safe: a nil breaker (non-DeepUM policies) always allows and records
// nothing, mirroring the nil-injector convention in internal/chaos.
type prefetchBreaker struct {
	threshold int
	cooldown  sim.Duration

	state       string
	consecFails int
	openedAt    sim.Time
	opens       int64
	short       int64
	log         metrics.TransitionLog

	// obs, when attached, receives a breaker event per transition.
	obs *obs.Recorder
	// onTransition, when attached, feeds transitions to the health
	// controller (the breaker is one ladder input, see internal/health).
	onTransition func(now sim.Time, from, to string)
}

func newPrefetchBreaker(threshold int, cooldown sim.Duration) *prefetchBreaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &prefetchBreaker{threshold: threshold, cooldown: cooldown, state: BreakerClosed}
}

// allow reports whether prefetch work may proceed at virtual time now. In
// the open state it counts the short-circuited opportunity, unless the
// cooldown has elapsed — then it half-opens and lets one probe through.
func (b *prefetchBreaker) allow(now sim.Time) bool {
	if b == nil {
		return true
	}
	if b.state != BreakerOpen {
		return true
	}
	if now.Sub(b.openedAt) >= b.cooldown {
		b.transition(now, BreakerHalfOpen, "cooldown elapsed, probing")
		return true
	}
	b.short++
	return false
}

// success records a delivered prefetch transfer.
func (b *prefetchBreaker) success(now sim.Time) {
	if b == nil {
		return
	}
	b.consecFails = 0
	if b.state == BreakerHalfOpen {
		b.transition(now, BreakerClosed, "probe transfer delivered")
	}
}

// failure records one failed prefetch-transfer attempt.
func (b *prefetchBreaker) failure(now sim.Time) {
	if b == nil {
		return
	}
	b.consecFails++
	switch b.state {
	case BreakerHalfOpen:
		b.open(now, "probe transfer failed")
	case BreakerClosed:
		if b.consecFails >= b.threshold {
			b.open(now, fmt.Sprintf("%d consecutive prefetch-transfer failures", b.consecFails))
		}
	}
}

func (b *prefetchBreaker) open(now sim.Time, reason string) {
	b.openedAt = now
	b.opens++
	b.transition(now, BreakerOpen, reason)
}

func (b *prefetchBreaker) transition(now sim.Time, to, reason string) {
	b.log.Record(int64(now), b.state, to, reason)
	if b.obs != nil {
		b.obs.Instant(obs.KindBreaker, obs.TrackBreaker, int64(now), b.state+"->"+to, 0, 0, 0)
	}
	if b.onTransition != nil {
		b.onTransition(now, b.state, to)
	}
	b.state = to
}

// snapshot freezes the breaker into the run result.
func (b *prefetchBreaker) snapshot() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	return BreakerStats{
		Threshold:      b.threshold,
		Cooldown:       b.cooldown,
		State:          b.state,
		Opens:          b.opens,
		EverOpened:     b.opens > 0,
		ShortCircuited: b.short,
		Transitions:    b.log.Transitions(),
	}
}
