package engine

import (
	"testing"

	"deepum/internal/core"
	"deepum/internal/health"
	"deepum/internal/models"
	"deepum/internal/policy"
	"deepum/internal/sim"
)

// TestPolicyEquivalence pins the correlation policy to the pre-refactor
// driver: the goldens below were captured from the monolithic
// internal/core.Driver (commit 028a3a7, before the policy seam existed)
// across four workloads at every forced health-ladder rung. AccessChecksum
// proves the computation is untouched; the prefetch counters and the total
// simulated time prove the *decisions* are untouched — every command the
// old chaser issued, the extracted policy issues, in the same order at the
// same virtual instant.
func TestPolicyEquivalence(t *testing.T) {
	type golden struct {
		model     string
		batch     int64
		level     health.Level
		checksum  uint64
		issued    int64
		useful    int64
		restarts  int64
		fails     int64
		deaths    int64
		faults    int64
		totalTime sim.Duration
	}
	goldens := []golden{
		{"bert-base", 32, 0, 0x014b30caf8bec700, 5087, 2083, 948, 636, 636, 30880, 349365617},
		{"bert-base", 32, 1, 0x014b30caf8bec700, 3290, 2207, 814, 636, 636, 16191, 364705446},
		{"bert-base", 32, 2, 0x014b30caf8bec700, 3304, 2187, 750, 627, 627, 16260, 340304336},
		{"bert-base", 32, 3, 0x014b30caf8bec700, 0, 0, 2927, 0, 0, 258993, 515771259},
		{"bert-large", 16, 0, 0xbf6714142a7a64ed, 8752, 2574, 1714, 1012, 1012, 67542, 858595754},
		{"bert-large", 16, 1, 0xbf6714142a7a64ed, 7186, 2533, 1627, 1012, 1012, 52855, 758596878},
		{"bert-large", 16, 2, 0xbf6714142a7a64ed, 3813, 2467, 1677, 1002, 1002, 39317, 819839206},
		{"bert-large", 16, 3, 0xbf6714142a7a64ed, 0, 0, 4137, 0, 0, 323167, 1768443585},
		{"dlrm", 512, 0, 0xcdc8e319fae4f8d0, 0, 0, 908, 562, 562, 48, 5710524},
		{"dlrm", 512, 1, 0xcdc8e319fae4f8d0, 0, 0, 908, 562, 562, 48, 5710524},
		{"dlrm", 512, 2, 0xcdc8e319fae4f8d0, 0, 0, 908, 562, 562, 48, 5710524},
		{"dlrm", 512, 3, 0xcdc8e319fae4f8d0, 0, 0, 908, 0, 0, 48, 5710524},
		{"resnet152", 128, 0, 0x6d04fcea72f5da6e, 4, 0, 462, 454, 454, 588, 180193470},
		{"resnet152", 128, 1, 0x6d04fcea72f5da6e, 4, 0, 462, 454, 454, 588, 180193470},
		{"resnet152", 128, 2, 0x6d04fcea72f5da6e, 4, 0, 462, 454, 454, 588, 180193470},
		{"resnet152", 128, 3, 0x6d04fcea72f5da6e, 0, 0, 462, 0, 0, 588, 180193470},
	}

	const scale = 32
	progs := map[string]int64{}
	for _, g := range goldens {
		progs[g.model] = g.batch
	}
	for _, g := range goldens {
		prog, err := models.Build(models.Spec{Model: g.model}, g.batch, scale)
		if err != nil {
			t.Fatalf("build %s: %v", g.model, err)
		}
		res, err := Run(Config{
			Params:        sim.DefaultParams().Scale(scale),
			Program:       prog,
			Policy:        PolicyDeepUM,
			DriverOptions: core.DefaultOptions(),
			Iterations:    3,
			Warmup:        2,
			Seed:          7,
			Health:        health.Fixed(g.level),
		})
		if err != nil {
			t.Fatalf("%s L%d: %v", g.model, g.level, err)
		}
		if res.PrefetchPolicy != policy.DefaultName {
			t.Fatalf("%s L%d: ran policy %q, want %q", g.model, g.level, res.PrefetchPolicy, policy.DefaultName)
		}
		d := res.Driver
		got := golden{g.model, g.batch, g.level, res.AccessChecksum,
			d.PrefetchIssued, d.PrefetchUseful, d.ChainRestarts, d.PredictionFails,
			d.DeathNoExec + d.DeathSkips, res.FaultsPerIter, res.TotalTime}
		if got != g {
			t.Errorf("%s L%d diverged from pre-refactor driver:\n got  %+v\n want %+v", g.model, g.level, got, g)
		}
	}
	_ = progs
}

// TestPolicyEquivalenceExplicitName pins that naming the default policy
// explicitly changes nothing: Options.Policy "correlation" and "" build the
// same driver.
func TestPolicyEquivalenceExplicitName(t *testing.T) {
	prog, err := models.Build(models.Spec{Model: "bert-base"}, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Params:        sim.DefaultParams().Scale(32),
		Program:       prog,
		Policy:        PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Iterations:    2,
		Warmup:        1,
		Seed:          7,
	}
	implicit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	named := base
	named.DriverOptions.Policy = "correlation"
	explicit, err := Run(named)
	if err != nil {
		t.Fatal(err)
	}
	if implicit.AccessChecksum != explicit.AccessChecksum ||
		implicit.Driver != explicit.Driver ||
		implicit.TotalTime != explicit.TotalTime {
		t.Fatalf("explicit policy name diverged: %+v vs %+v", implicit.Driver, explicit.Driver)
	}
}
