package engine

import (
	"context"
	"errors"

	"deepum/internal/sim"
)

// RunStatus classifies how a simulated training run ended. A run that did
// not complete cleanly still returns a (partial) *Result with a nil error —
// the status, not the error, tells a supervisor why it stopped, so partial
// measurements are never thrown away.
type RunStatus uint8

const (
	// StatusCompleted: every configured iteration ran and no degradation was
	// observed.
	StatusCompleted RunStatus = iota
	// StatusCancelled: the supervising context was cancelled (or a chaos
	// scenario injected a supervisor kill); the run stopped at the next
	// simulated event, drained demand work, and discarded prefetches.
	StatusCancelled
	// StatusDeadlineExceeded: the context deadline or the virtual-time
	// budget (Config.Deadline) expired mid-run.
	StatusDeadlineExceeded
	// StatusDegraded: the run completed, but not cleanly — the prefetch
	// circuit breaker opened at least once, or the invariant checker
	// reported a violation (Result.Invariant). Measurements exist but a
	// supervisor should treat them with suspicion.
	StatusDegraded
)

// Interrupted reports whether the run was stopped before completing its
// configured iterations (supervisor cancellation or a deadline) — the cue
// for a multi-run supervisor to stop resubmitting continuation chunks and,
// if warm state was captured, to resume from it later. Degraded runs ran
// to completion and are NOT interrupted.
func (s RunStatus) Interrupted() bool {
	return s == StatusCancelled || s == StatusDeadlineExceeded
}

// Terminal reports whether s is a defined end-of-run classification. Every
// RunStatus a finished run carries is terminal; the method exists so callers
// holding a status of unknown provenance (deserialized, zero-valued struct
// fields) can distinguish "this run ended as X" from garbage.
func (s RunStatus) Terminal() bool {
	switch s {
	case StatusCompleted, StatusCancelled, StatusDeadlineExceeded, StatusDegraded:
		return true
	}
	return false
}

func (s RunStatus) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusCancelled:
		return "cancelled"
	case StatusDeadlineExceeded:
		return "deadline-exceeded"
	case StatusDegraded:
		return "degraded"
	}
	return "unknown"
}

// IterStat is the per-iteration slice of a run's measurements, recorded for
// warmup and measured iterations alike. It is the unit of the
// checkpoint/resume equivalence guarantee: a resumed run's IterStats match
// the uninterrupted run's from the second post-resume iteration onward.
type IterStat struct {
	// Warmup marks iterations that ran before the measurement window.
	Warmup bool
	Time   sim.Duration
	// Faults is the page-fault count of this iteration.
	Faults int64
	// PrefetchIssued / PrefetchUseful are the driver's prefetch commands
	// issued and the prefetched blocks a kernel subsequently hit during this
	// iteration (zero for non-DeepUM policies).
	PrefetchIssued int64
	PrefetchUseful int64
}

// errRunInterrupted unwinds the kernel -> iteration -> run call chain when
// the supervisor (context, virtual deadline, or injected cancel) ends the
// run early. It never escapes the engine: run() converts it into a partial
// Result tagged with the RunStatus the interrupt check recorded.
var errRunInterrupted = errors.New("engine: run interrupted")

// interrupted reports whether the run should stop now, recording why in
// e.status on the first positive answer. It is checked between simulated
// events — before each iteration, each kernel launch, and each fault cycle —
// so a cancelled run stops at the next event boundary with consistent state.
func (e *exec) interrupted() bool {
	if e.status != StatusCompleted {
		return true
	}
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				e.status = StatusDeadlineExceeded
			} else {
				e.status = StatusCancelled
			}
			return true
		}
	}
	if e.deadline > 0 && e.now >= e.deadline {
		e.status = StatusDeadlineExceeded
		return true
	}
	return false
}
