package engine

import (
	"errors"
	"testing"

	"deepum/internal/core"
	"deepum/internal/health"
	"deepum/internal/models"
	"deepum/internal/policy"
	"deepum/internal/sim"
)

// TestPolicySuiteCleanInvariants drives every registered prefetch policy
// through a pair of workloads (one regular-access transformer, one
// input-dependent DLRM) and requires a clean finish: StatusOK, no invariant
// violation, and the workload-defined AccessChecksum — policies may change
// scheduling, never computation.
func TestPolicySuiteCleanInvariants(t *testing.T) {
	type wl struct {
		model string
		batch int64
	}
	suite := []wl{{"bert-base", 32}, {"dlrm", 512}}
	names := policy.Names()
	if len(names) < 3 {
		t.Fatalf("want >= 3 registered policies, have %v", names)
	}
	for _, w := range suite {
		prog, err := models.Build(models.Spec{Model: w.model}, w.batch, 32)
		if err != nil {
			t.Fatal(err)
		}
		var checksum uint64
		for _, name := range names {
			opts := core.DefaultOptions()
			opts.Policy = name
			res, err := Run(Config{
				Params:        sim.DefaultParams().Scale(32),
				Program:       prog,
				Policy:        PolicyDeepUM,
				DriverOptions: opts,
				Iterations:    2,
				Warmup:        1,
				Seed:          7,
				Health:        health.Fixed(health.L0),
			})
			if err != nil {
				t.Fatalf("%s under %s: %v", w.model, name, err)
			}
			if res.Status != StatusCompleted {
				t.Errorf("%s under %s: status %v, want OK", w.model, name, res.Status)
			}
			if res.Invariant != nil {
				t.Errorf("%s under %s: invariant violation: %v", w.model, name, res.Invariant)
			}
			if res.PrefetchPolicy != name {
				t.Errorf("%s: ran %q, want %q", w.model, res.PrefetchPolicy, name)
			}
			if checksum == 0 {
				checksum = res.AccessChecksum
			} else if res.AccessChecksum != checksum {
				t.Errorf("%s under %s: AccessChecksum %016x differs from suite's %016x — a policy changed computation",
					w.model, name, res.AccessChecksum, checksum)
			}
		}
	}
}

// TestUnknownPolicyRejected pins the typed rejection: an unregistered
// policy name fails construction before any run state exists.
func TestUnknownPolicyRejected(t *testing.T) {
	prog, err := models.Build(models.Spec{Model: "mobilenet"}, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Policy = "no-such-policy"
	_, err = Run(Config{
		Params:        sim.DefaultParams().Scale(32),
		Program:       prog,
		Policy:        PolicyDeepUM,
		DriverOptions: opts,
		Iterations:    1,
	})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	var ue *policy.UnknownError
	if !errors.As(err, &ue) || ue.Name != "no-such-policy" {
		t.Fatalf("want *policy.UnknownError for no-such-policy, got %v", err)
	}
}
