package engine

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// countdownCtx is a context whose Err flips to the configured error after a
// fixed number of Err calls — a deterministic stand-in for "the supervisor
// cancelled us mid-run", since the engine polls Err at every event boundary.
type countdownCtx struct {
	context.Context
	calls  int
	fireAt int
	err    error
}

func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls >= c.fireAt {
		return c.err
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return nil }

func lifecycleProgram(t *testing.T) *workload.Program {
	t.Helper()
	p, err := models.Build(models.Spec{Model: "bert-large", Dataset: "wikitext"}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func lifecycleConfig(p *workload.Program) Config {
	return Config{
		Params:        sim.DefaultParams().Scale(64),
		Program:       p,
		Policy:        PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Warmup:        2,
		Iterations:    2,
		Seed:          1,
	}
}

// TestRunContextPreCancelled: a context cancelled before the run starts stops
// it at the very first event — zero iterations, StatusCancelled, nil error.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, lifecycleConfig(lifecycleProgram(t)))
	if err != nil {
		t.Fatalf("pre-cancelled run errored: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if res.Iterations != 0 || len(res.IterStats) != 0 {
		t.Fatalf("pre-cancelled run reported %d iterations, %d iter stats",
			res.Iterations, len(res.IterStats))
	}
}

// TestRunContextCancelMidRun: a cancellation landing mid-run (after a fixed
// number of event-boundary polls) returns the partial measurements with
// StatusCancelled, leaves consistent state (the invariant checker runs on the
// partial iteration), and leaks no goroutines — the engine is synchronous,
// and cancellation must not change that.
func TestRunContextCancelMidRun(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx := &countdownCtx{Context: context.Background(), fireAt: 2000, err: context.Canceled}
	res, err := RunContext(ctx, lifecycleConfig(lifecycleProgram(t)))
	if err != nil {
		t.Fatalf("cancelled run errored: %v", err)
	}
	if res.Status != StatusCancelled {
		t.Fatalf("status = %v, want cancelled", res.Status)
	}
	if res.Iterations >= 2 {
		t.Fatalf("cancelled run completed all %d measured iterations", res.Iterations)
	}
	if res.Invariant != nil {
		t.Fatalf("cancellation corrupted state: %v", res.Invariant)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked across cancellation: %d before, %d after", before, g)
	}
}

// TestRunContextDeadlineError: a context whose Err reports DeadlineExceeded
// classifies the stop as deadline-exceeded, not cancelled.
func TestRunContextDeadlineError(t *testing.T) {
	ctx := &countdownCtx{Context: context.Background(), fireAt: 2000, err: context.DeadlineExceeded}
	res, err := RunContext(ctx, lifecycleConfig(lifecycleProgram(t)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDeadlineExceeded {
		t.Fatalf("status = %v, want deadline-exceeded", res.Status)
	}
}

// TestVirtualDeadlineDiscardsPrefetches: a virtual-time deadline calibrated
// to land inside a measured iteration (tables warm, prefetch queue busy)
// stops the run deterministically: demand work has drained at the event
// boundary, and the queued speculation is discarded and counted.
func TestVirtualDeadlineDiscardsPrefetches(t *testing.T) {
	p := lifecycleProgram(t)
	clean, err := Run(lifecycleConfig(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.IterStats) != 4 {
		t.Fatalf("calibration run has %d iter stats, want 4", len(clean.IterStats))
	}
	cfg := lifecycleConfig(p)
	cfg.Deadline = clean.IterStats[0].Time + clean.IterStats[1].Time + clean.IterStats[2].Time/2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusDeadlineExceeded {
		t.Fatalf("status = %v, want deadline-exceeded", res.Status)
	}
	if len(res.IterStats) != 2 {
		t.Fatalf("run past a mid-iteration-2 deadline completed %d iterations, want 2", len(res.IterStats))
	}
	if res.DiscardedPrefetches == 0 {
		t.Fatal("no queued prefetches discarded at a mid-iteration stop (queue should be busy)")
	}
	if res.Invariant != nil {
		t.Fatalf("deadline stop corrupted state: %v", res.Invariant)
	}
	// Determinism: the virtual deadline cuts at the same event every time.
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.TotalTime != res.TotalTime || res2.DiscardedPrefetches != res.DiscardedPrefetches ||
		res2.Handler.PageFaults != res.Handler.PageFaults {
		t.Fatal("virtual deadline stop is not deterministic")
	}
}

// TestBreakerStateMachine pins the prefetch breaker's transitions: threshold
// consecutive failures open it, the cooldown half-opens it, a delivered probe
// closes it, a failed probe reopens it — every step logged.
func TestBreakerStateMachine(t *testing.T) {
	cd := sim.Duration(100 * time.Microsecond)
	b := newPrefetchBreaker(3, cd)
	at := sim.Time(1000)
	if !b.allow(at) {
		t.Fatal("fresh breaker not closed")
	}
	b.failure(at)
	b.failure(at)
	if b.state != BreakerClosed {
		t.Fatalf("state after 2/3 failures = %s", b.state)
	}
	b.success(at)
	b.failure(at)
	b.failure(at)
	if b.state != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.failure(at)
	if b.state != BreakerOpen || b.opens != 1 {
		t.Fatalf("state after 3 consecutive failures = %s (opens %d)", b.state, b.opens)
	}
	if b.allow(at.Add(cd / 2)) {
		t.Fatal("open breaker allowed work inside the cooldown")
	}
	if b.short != 1 {
		t.Fatalf("short-circuit count = %d, want 1", b.short)
	}
	if !b.allow(at.Add(cd)) || b.state != BreakerHalfOpen {
		t.Fatalf("cooldown elapsed but state = %s", b.state)
	}
	b.failure(at.Add(cd))
	if b.state != BreakerOpen || b.opens != 2 {
		t.Fatalf("failed probe did not reopen: state %s, opens %d", b.state, b.opens)
	}
	reopenAt := at.Add(cd)
	if !b.allow(reopenAt.Add(cd)) {
		t.Fatal("second cooldown did not half-open")
	}
	b.success(reopenAt.Add(cd))
	if b.state != BreakerClosed {
		t.Fatalf("delivered probe did not close: state %s", b.state)
	}

	snap := b.snapshot()
	if snap.Opens != 2 || !snap.EverOpened || snap.State != BreakerClosed ||
		snap.Threshold != 3 || snap.Cooldown != cd {
		t.Fatalf("snapshot %+v", snap)
	}
	// The transition log is a connected chain starting from closed.
	tr := snap.Transitions
	if len(tr) == 0 || tr[0].From != BreakerClosed {
		t.Fatalf("transition log %v", tr)
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].From != tr[i-1].To || tr[i].At < tr[i-1].At {
			t.Fatalf("transition chain broken at %d: %v", i, tr)
		}
	}

	// Nil breaker (non-DeepUM policies): inert on every path.
	var nb *prefetchBreaker
	if !nb.allow(0) {
		t.Fatal("nil breaker blocked work")
	}
	nb.success(0)
	nb.failure(0)
	if s := nb.snapshot(); s.EverOpened || s.State != "" {
		t.Fatalf("nil snapshot %+v", s)
	}
}

// TestBreakerOpensOnWedgedLink: a link failing nearly every transfer trips
// the breaker; the run survives in pure on-demand mode and finishes
// StatusDegraded with the trip recorded in the transition log.
func TestBreakerOpensOnWedgedLink(t *testing.T) {
	cfg := lifecycleConfig(lifecycleProgram(t))
	cfg.Chaos = chaos.NewInjector(chaos.Scenario{
		Name:                "wedged-link",
		TransferFailProb:    0.9,
		MaxConsecutiveFails: 64,
	}, 1)
	cfg.BreakerThreshold = 4
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Breaker.EverOpened || res.Breaker.Opens == 0 {
		t.Fatalf("breaker never opened under a 90%%-failure link: %+v", res.Breaker)
	}
	if res.Status != StatusDegraded {
		t.Fatalf("status = %v, want degraded (breaker opened but run completed)", res.Status)
	}
	if res.Iterations != 2 {
		t.Fatalf("degraded run completed %d measured iterations, want 2 (breaker must not end the run)", res.Iterations)
	}
	if res.FaultsPerIter == 0 {
		t.Fatal("no demand faults while prefetching was suspended")
	}
	opens := int64(0)
	for _, tr := range res.Breaker.Transitions {
		if tr.To == BreakerOpen {
			opens++
		}
	}
	if opens != res.Breaker.Opens {
		t.Fatalf("transition log records %d opens, stats say %d", opens, res.Breaker.Opens)
	}
}

// TestBreakerUntrippedByBuiltinScenarios: the builtin chaos scenarios degrade
// via retries but must never trip the breaker (their consecutive-failure
// bound sits below the default threshold) — prefetching keeps working under
// ordinary chaos.
func TestBreakerUntrippedByBuiltinScenarios(t *testing.T) {
	cfg := lifecycleConfig(lifecycleProgram(t))
	sc, err := chaos.ByName("flaky-link")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos.NewInjector(sc, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breaker.EverOpened {
		t.Fatalf("flaky-link tripped the breaker: %+v", res.Breaker)
	}
	if res.Status != StatusCompleted {
		t.Fatalf("status = %v, want completed", res.Status)
	}
}

// TestCheckpointKillResumeEquivalence is the acceptance test for warm-state
// checkpoint/resume: a run killed mid-iteration checkpoints its correlation
// tables; a resumed run (one warmup iteration to rebuild residency) produces
// a per-iteration trace — faults, prefetches issued, prefetch hits, even
// iteration time — identical to the uninterrupted run's from its second
// post-resume iteration onward.
func TestCheckpointKillResumeEquivalence(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "dcgan", Dataset: "celeba"}, 1400, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Params:        sim.DefaultParams().Scale(64),
		Program:       p,
		Policy:        PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Seed:          1,
	}

	// The uninterrupted reference: 2 warmup + 4 measured iterations.
	ucfg := base
	ucfg.Warmup, ucfg.Iterations = 2, 4
	u, err := Run(ucfg)
	if err != nil {
		t.Fatal(err)
	}
	if u.Status != StatusCompleted || len(u.IterStats) != 6 {
		t.Fatalf("reference run: status %v, %d iter stats", u.Status, len(u.IterStats))
	}

	// Kill a second run mid-iteration-2 via a virtual deadline (deterministic,
	// unaligned to an iteration boundary), then checkpoint its tables through
	// the full save/load path.
	acfg := base
	acfg.Warmup, acfg.Iterations = 2, 4
	acfg.Deadline = u.IterStats[0].Time + u.IterStats[1].Time + u.IterStats[2].Time/2
	a, err := Run(acfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != StatusDeadlineExceeded {
		t.Fatalf("killed run status = %v", a.Status)
	}
	if len(a.IterStats) >= len(u.IterStats) {
		t.Fatalf("killed run completed %d iterations, reference %d", len(a.IterStats), len(u.IterStats))
	}
	var ckpt bytes.Buffer
	if err := correlation.WriteCheckpoint(&ckpt, a.Tables); err != nil {
		t.Fatal(err)
	}
	restored, err := correlation.ReadCheckpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}

	// Resume from the checkpoint: one warmup iteration rebuilds residency.
	bcfg := base
	bcfg.DriverOptions.WarmTables = restored
	bcfg.Warmup, bcfg.Iterations = 1, 3
	b, err := Run(bcfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Status != StatusCompleted || len(b.IterStats) != 4 {
		t.Fatalf("resumed run: status %v, %d iter stats", b.Status, len(b.IterStats))
	}

	// Equivalence from the resumed run's iteration 2 onward: B[2..3] must be
	// identical to the uninterrupted steady state U[4..5], field by field.
	for i := 2; i < len(b.IterStats); i++ {
		got, want := b.IterStats[i], u.IterStats[i+2]
		if got.Faults != want.Faults || got.PrefetchIssued != want.PrefetchIssued ||
			got.PrefetchUseful != want.PrefetchUseful || got.Time != want.Time {
			t.Fatalf("resumed iteration %d diverges from reference: %+v vs %+v", i, got, want)
		}
	}
	// And the steady state is not vacuous: the workload faults every iteration.
	if last := b.IterStats[len(b.IterStats)-1]; last.Faults == 0 {
		t.Fatal("steady state has zero faults; the equivalence check checks nothing")
	}
}
