package engine

import (
	"testing"

	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/trace"
	"deepum/internal/workload"
)

// chaosProgram builds the oversubscribed workload the scenario suite runs:
// BERT Large at scale 64 does not fit the scaled V100, so every substrate
// the injector perturbs (link, fault path, eviction) is actually exercised.
func chaosProgram(t *testing.T) *workload.Program {
	t.Helper()
	p, err := models.Build(models.Spec{Model: "bert-large", Dataset: "wikitext"}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func chaosRun(t *testing.T, p *workload.Program, policy Policy, sc chaos.Scenario, seed int64, tr *trace.Recorder) *Result {
	t.Helper()
	var inj *chaos.Injector
	if sc.Active() {
		inj = chaos.NewInjector(sc, seed)
	}
	res, err := Run(Config{
		Params:        sim.DefaultParams().Scale(64),
		Program:       p,
		Policy:        policy,
		DriverOptions: core.DefaultOptions(),
		Iterations:    2,
		Warmup:        2,
		Seed:          seed,
		Tracer:        tr,
		Chaos:         inj,
	})
	if err != nil {
		t.Fatalf("%v under scenario %q: %v", policy, sc.Name, err)
	}
	return res
}

// TestChaosScenarioSuite: every named scenario completes on an
// oversubscribed workload with the always-on invariant checker green (Run
// fails the iteration otherwise), and DeepUM under chaos stays no slower
// than naive UM under the same chaos — degraded, never worse than not
// having the driver at all.
func TestChaosScenarioSuite(t *testing.T) {
	p := chaosProgram(t)
	for _, sc := range chaos.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			deep := chaosRun(t, p, PolicyDeepUM, sc, 1, nil)
			um := chaosRun(t, p, PolicyUM, sc, 1, nil)
			if sc.Interrupts() {
				// Run-ending scenarios assert the lifecycle contract instead
				// of the timing one: the run returns a partial result tagged
				// with the matching status, under both policies.
				want := StatusCancelled
				if sc.VirtualDeadline > 0 {
					want = StatusDeadlineExceeded
				}
				if deep.Status != want || um.Status != want {
					t.Fatalf("status under %q: deepum %v, um %v, want %v",
						sc.Name, deep.Status, um.Status, want)
				}
				if deep.Iterations >= 2 || um.Iterations >= 2 {
					t.Fatalf("interrupting scenario completed all measured iterations: deepum %d, um %d",
						deep.Iterations, um.Iterations)
				}
				return
			}
			if deep.Status != StatusCompleted {
				t.Fatalf("non-interrupting scenario %q ended %v (invariant: %v)",
					sc.Name, deep.Status, deep.Invariant)
			}
			if deep.TotalTime <= 0 || um.TotalTime <= 0 {
				t.Fatalf("degenerate times: deepum %v, um %v", deep.TotalTime, um.TotalTime)
			}
			// 5% tolerance: chaos randomizes per-run costs, and the claim is
			// "no worse", not "always strictly faster on every draw".
			if float64(deep.TotalTime) > 1.05*float64(um.TotalTime) {
				t.Fatalf("DeepUM under %q is slower than naive UM: %v vs %v", sc.Name, deep.TotalTime, um.TotalTime)
			}
		})
	}
}

// TestChaosStatsFire: each scenario's perturbations actually land — the
// injector's counters show the substrate it targets was hit, and the
// consumers' degradation counters show they coped.
func TestChaosStatsFire(t *testing.T) {
	p := chaosProgram(t)
	byName := func(name string) chaos.Scenario {
		sc, err := chaos.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}

	t.Run("flaky-link", func(t *testing.T) {
		res := chaosRun(t, p, PolicyDeepUM, byName("flaky-link"), 1, nil)
		if res.Chaos.TransferFailures == 0 {
			t.Fatal("no transfer failures injected at 5% over an oversubscribed run")
		}
		retries := res.Handler.TransferRetries + res.Chaos.PrefetchRetries
		if retries == 0 {
			t.Fatal("failures injected but nothing retried")
		}
	})
	t.Run("fault-storm", func(t *testing.T) {
		res := chaosRun(t, p, PolicyDeepUM, byName("fault-storm"), 1, nil)
		if res.Chaos.BatchCapHits == 0 {
			t.Fatal("fault-buffer overflow never capped a batch")
		}
		if res.Chaos.DroppedNotifies == 0 {
			t.Fatal("no notifications dropped at 20%")
		}
	})
	t.Run("host-pressure", func(t *testing.T) {
		res := chaosRun(t, p, PolicyDeepUM, byName("host-pressure"), 1, nil)
		if res.Chaos.PressureWindows == 0 {
			t.Fatal("no transfer hit a pressure spike covering 30% of virtual time")
		}
	})
	t.Run("stalled-migrator", func(t *testing.T) {
		res := chaosRun(t, p, PolicyDeepUM, byName("stalled-migrator"), 1, nil)
		if res.Chaos.MigratorStalls == 0 {
			t.Fatal("no migrator stalls at 30% of kernel launches")
		}
	})
	t.Run("tiny-tables", func(t *testing.T) {
		clean := chaosRun(t, p, PolicyDeepUM, chaos.Scenario{}, 1, nil)
		tiny := chaosRun(t, p, PolicyDeepUM, byName("tiny-tables"), 1, nil)
		if tiny.DriverTableBytes >= clean.DriverTableBytes {
			t.Fatalf("table pressure did not shrink the tables: %d vs %d bytes",
				tiny.DriverTableBytes, clean.DriverTableBytes)
		}
	})
	t.Run("degraded-link", func(t *testing.T) {
		clean := chaosRun(t, p, PolicyDeepUM, chaos.Scenario{}, 1, nil)
		slow := chaosRun(t, p, PolicyDeepUM, byName("degraded-link"), 1, nil)
		if slow.TotalTime <= clean.TotalTime {
			t.Fatalf("quarter-bandwidth link did not slow the run: %v vs %v", slow.TotalTime, clean.TotalTime)
		}
	})
}

// TestChaosDeterministicTrace: same scenario + same seed reproduces a
// byte-identical event trace and identical measurements; a different chaos
// seed diverges. This is the property that makes chaos failures debuggable.
func TestChaosDeterministicTrace(t *testing.T) {
	p := chaosProgram(t)
	sc, err := chaos.ByName("everything")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) ([]trace.Event, *Result) {
		tr := trace.NewRecorder(1 << 21)
		res := chaosRun(t, p, PolicyDeepUM, sc, seed, tr)
		return tr.Events(), res
	}
	ev1, r1 := run(1)
	ev2, r2 := run(1)
	if len(ev1) == 0 {
		t.Fatal("empty trace")
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("traces diverge at event %d: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if r1.TotalTime != r2.TotalTime || r1.Chaos != r2.Chaos ||
		r1.TrafficH2D != r2.TrafficH2D || r1.TrafficD2H != r2.TrafficD2H {
		t.Fatalf("same seed, different measurements:\n%+v\n%+v", r1.Chaos, r2.Chaos)
	}
	ev3, _ := run(2)
	same := len(ev1) == len(ev3)
	if same {
		for i := range ev1 {
			if ev1[i] != ev3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces (injection not wired to the seed)")
	}
}

// TestChaosPrefetchGiveUpFallsBack: a hostile link makes prefetches give up,
// and the abandoned blocks are still served — by demand faulting — without
// tripping the served-invariant. The run completing IS the assertion (the
// checker runs every iteration); the counter proves the path was taken.
func TestChaosPrefetchGiveUpFallsBack(t *testing.T) {
	p := chaosProgram(t)
	sc := chaos.Scenario{
		Name:                "hostile-link",
		TransferFailProb:    0.5,
		MaxConsecutiveFails: 8,
	}
	res := chaosRun(t, p, PolicyDeepUM, sc, 1, nil)
	if res.Chaos.PrefetchGiveUps == 0 {
		t.Skip("no prefetch gave up at 50% failure; retune the scenario")
	}
	if res.FaultsPerIter == 0 {
		t.Fatal("give-ups recorded but no demand faults served the abandoned blocks")
	}
}
