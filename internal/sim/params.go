// Package sim provides the discrete-event simulation core shared by every
// subsystem of the DeepUM reproduction: a virtual nanosecond clock, a
// serialized PCIe link resource with priority preemption at transfer
// granularity, and busy-interval timelines used by the energy meter.
package sim

import "time"

// Duration aliases time.Duration for readability; all simulated time is
// virtual and measured in nanoseconds from the start of a run.
type Duration = time.Duration

// Time is a point on the virtual clock, nanoseconds since run start.
type Time int64

// Add returns t advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Max returns the later of two instants.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of two instants.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

const (
	// KiB, MiB and GiB are byte-size units.
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30

	// PageSize is the UM page size (§2.2 of the paper).
	PageSize int64 = 4 * KiB
	// PagesPerBlock is the maximum number of contiguous pages grouped into a
	// UM block by the NVIDIA driver (§2.3).
	PagesPerBlock int64 = 512
	// BlockSize is the maximum UM block size: 4KiB x 512 = 2MiB.
	BlockSize int64 = PageSize * PagesPerBlock
)

// Params holds the calibrated hardware timing model. Zero values are not
// usable; construct with DefaultParams and override fields as needed.
type Params struct {
	// LinkBandwidth is the effective PCIe bandwidth per direction in
	// bytes/second. PCIe 3.0 x16 peaks at 15.75 GB/s; sustained page
	// migration reaches roughly 12 GiB/s.
	LinkBandwidth int64
	// LinkLatency is the fixed per-transfer setup latency on the link.
	LinkLatency Duration
	// FaultBatchOverhead is the fixed cost of one GPU fault-handling cycle:
	// interrupt delivery, fault-buffer fetch and preprocessing (§2.3 steps
	// 1-2). Measured far-fault costs on Volta are in the tens of
	// microseconds.
	FaultBatchOverhead Duration
	// FaultBlockOverhead is the per-faulted-UM-block bookkeeping cost inside
	// one handling cycle (steps 3-7 excluding the transfer itself).
	FaultBlockOverhead Duration
	// ReplayLatency is the cost of sending the replay signal and restarting
	// the stalled SMs (step 9).
	ReplayLatency Duration
	// EvictBlockOverhead is the bookkeeping cost of selecting and unmapping
	// one victim block during eviction (the transfer is charged separately).
	EvictBlockOverhead Duration
	// FaultChunkPages is how many pages one on-demand fault-handling round
	// trip migrates. The GPU raises faults as threads touch pages, so
	// migrating a whole 2 MiB block on demand takes many fault cycles and
	// many small, latency-dominated transfers — the overhead correlation
	// prefetching hides by moving whole UM blocks ahead of time.
	FaultChunkPages int64
	// FaultChunkOverhead is the service cost of one such round trip: fault
	// delivery, unmap, copy setup and replay. Published V100 measurements
	// put far-fault service in the tens of microseconds, which yields the
	// ~1.5-2 GiB/s effective oversubscription throughput seen in practice.
	FaultChunkOverhead Duration

	// GPUFlops is the effective compute throughput in FLOP/s used by the
	// roofline kernel-time model. The V100 peaks at 15.7 TFLOP/s FP32, but
	// sustained training utilization (MFU) is near a third of peak, which is
	// what iteration times reflect.
	GPUFlops float64
	// GPUMemBandwidth is the effective device-memory bandwidth in
	// bytes/second for the roofline model.
	GPUMemBandwidth float64

	// GPUMemory is the device memory capacity in bytes.
	GPUMemory int64
	// ScaleDivisor records the factor Scale() divided capacities by, so
	// count-valued model constants (e.g. the migration thread's service
	// window) can shrink consistently. 0 or 1 means unscaled.
	ScaleDivisor int64
	// HostMemory is the CPU memory capacity in bytes (the UM backing store).
	HostMemory int64

	// Power model for the integrating energy meter (full system, watts).
	PowerSystemBase float64 // CPUs, DIMMs, board: always drawn
	PowerGPUIdle    float64 // GPU powered but idle
	PowerGPUBusy    float64 // additional draw while SMs compute
	PowerLinkActive float64 // additional draw while the link transfers
}

// DefaultParams returns the V100-32GB PCIe configuration from Table 1 of the
// paper, with timing constants calibrated to published UM measurements.
func DefaultParams() Params {
	return Params{
		LinkBandwidth:      12 * GiB,
		LinkLatency:        8 * time.Microsecond,
		FaultBatchOverhead: 25 * time.Microsecond,
		FaultBlockOverhead: 5 * time.Microsecond,
		ReplayLatency:      5 * time.Microsecond,
		EvictBlockOverhead: 2 * time.Microsecond,
		FaultChunkPages:    16,
		FaultChunkOverhead: 25 * time.Microsecond,

		GPUFlops:        4.5e12,
		GPUMemBandwidth: 800e9,

		GPUMemory:  32 * GiB,
		HostMemory: 512 * GiB,

		PowerSystemBase: 320,
		PowerGPUIdle:    55,
		PowerGPUBusy:    195,
		PowerLinkActive: 30,
	}
}

// V100_16GB returns the Table 1 configuration with the smaller 16 GiB device
// memory used for the TensorFlow-based comparison (§6.4).
func V100_16GB() Params {
	p := DefaultParams()
	p.GPUMemory = 16 * GiB
	return p
}

// Scale divides all capacity-like quantities by f so that a full experiment
// suite runs quickly while preserving the footprint-to-capacity ratios that
// determine every reported shape. Timing constants are left untouched:
// transfers of the scaled-down tensors simply take proportionally less time,
// exactly as the real workload would on a proportionally smaller machine.
func (p Params) Scale(f int64) Params {
	if f <= 1 {
		return p
	}
	p.GPUMemory /= f
	p.HostMemory /= f
	p.ScaleDivisor = f
	return p
}

// TransferTime returns the link occupancy for moving n bytes.
func (p Params) TransferTime(n int64) Duration {
	if n <= 0 {
		return 0
	}
	return p.LinkLatency + Duration(float64(n)/float64(p.LinkBandwidth)*1e9)
}

// KernelTime returns the roofline execution time of a kernel that performs
// flops floating-point operations and touches bytes of device memory,
// assuming all pages are resident (fault stalls are added by the engine).
func (p Params) KernelTime(flops float64, bytes int64) Duration {
	compute := flops / p.GPUFlops * 1e9
	memory := float64(bytes) / p.GPUMemBandwidth * 1e9
	t := compute
	if memory > t {
		t = memory
	}
	// Launch overhead floor: no kernel completes faster than ~6us end to end.
	if t < 6000 {
		t = 6000
	}
	return Duration(t)
}
