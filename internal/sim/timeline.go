package sim

import "fmt"

// Timeline accumulates busy time of a resource as a sum of possibly
// overlapping intervals, merging on the fly. It is the integration substrate
// for the energy meter: total busy duration within [0, end) is what the
// power model multiplies by the resource's active draw.
//
// Intervals arrive mostly in nondecreasing start order (the link serializes
// reservations), so the merge is amortized O(1) per Add with a small sorted
// tail for out-of-order inserts.
type Timeline struct {
	intervals []interval // sorted by start, non-overlapping
	busy      Duration
}

type interval struct{ start, end Time }

// Add records the busy interval [start, end). Empty or inverted intervals
// are ignored.
func (t *Timeline) Add(start, end Time) {
	if end <= start {
		return
	}
	n := len(t.intervals)
	if n == 0 || start > t.intervals[n-1].end {
		t.intervals = append(t.intervals, interval{start, end})
		t.busy += end.Sub(start)
		return
	}
	if start == t.intervals[n-1].end {
		t.intervals[n-1].end = end
		t.busy += end.Sub(start)
		return
	}
	// Overlaps or precedes the tail: find insertion point from the back.
	i := n
	for i > 0 && t.intervals[i-1].start > start {
		i--
	}
	// Merge [start,end) with everything it touches from position i-1 on.
	lo := i
	if lo > 0 && t.intervals[lo-1].end >= start {
		lo--
	}
	mergedStart, mergedEnd := start, end
	hi := lo
	for hi < n && t.intervals[hi].start <= mergedEnd {
		if t.intervals[hi].start < mergedStart {
			mergedStart = t.intervals[hi].start
		}
		if t.intervals[hi].end > mergedEnd {
			mergedEnd = t.intervals[hi].end
		}
		hi++
	}
	// Recompute busy time over the replaced span.
	var removed Duration
	for j := lo; j < hi; j++ {
		removed += t.intervals[j].end.Sub(t.intervals[j].start)
	}
	t.busy += mergedEnd.Sub(mergedStart) - removed
	t.intervals = append(t.intervals[:lo], append([]interval{{mergedStart, mergedEnd}}, t.intervals[hi:]...)...)
}

// Busy returns the total non-overlapping busy duration recorded so far.
func (t *Timeline) Busy() Duration { return t.busy }

// Len returns the number of merged intervals (useful in tests).
func (t *Timeline) Len() int { return len(t.intervals) }

// Reset discards all recorded intervals.
func (t *Timeline) Reset() {
	t.intervals = t.intervals[:0]
	t.busy = 0
}

// Validate checks the timeline's structural invariants: intervals sorted by
// start, strictly disjoint (touching intervals are merged on Add), each
// non-empty, and the busy counter equal to their summed lengths. The
// invariant checker runs it under every chaos scenario — a racy or
// double-booked reservation would surface here.
func (t *Timeline) Validate() error {
	var sum Duration
	for i, iv := range t.intervals {
		if iv.end <= iv.start {
			return fmt.Errorf("sim: timeline interval %d is empty or inverted [%d,%d)", i, iv.start, iv.end)
		}
		if i > 0 && iv.start <= t.intervals[i-1].end {
			return fmt.Errorf("sim: timeline intervals %d and %d overlap or are unmerged ([%d,%d) then [%d,%d))",
				i-1, i, t.intervals[i-1].start, t.intervals[i-1].end, iv.start, iv.end)
		}
		sum += iv.end.Sub(iv.start)
	}
	if sum != t.busy {
		return fmt.Errorf("sim: timeline busy counter %v does not match interval sum %v", t.busy, sum)
	}
	return nil
}
