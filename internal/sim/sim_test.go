package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTime(t *testing.T) {
	p := DefaultParams()
	if got := p.TransferTime(0); got != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", got)
	}
	// One UM block at 12 GiB/s: 2MiB / 12GiB/s ~= 162.8us plus latency.
	d := p.TransferTime(BlockSize)
	if d < 150*time.Microsecond || d > 200*time.Microsecond {
		t.Fatalf("TransferTime(2MiB) = %v, want ~170us", d)
	}
	// Monotone in n.
	if p.TransferTime(2*BlockSize) <= d {
		t.Fatalf("transfer time not monotone")
	}
}

func TestKernelTimeRoofline(t *testing.T) {
	p := DefaultParams()
	// Compute bound: 4.5e9 flops at the 4.5e12 flop/s effective (MFU-
	// adjusted) throughput = 1ms.
	d := p.KernelTime(4.5e9, 1000)
	if d < 900*time.Microsecond || d > 1100*time.Microsecond {
		t.Fatalf("compute-bound kernel time = %v, want ~1ms", d)
	}
	// Memory bound: 800MB at 800GB/s = 1ms, tiny flops.
	d = p.KernelTime(1, 800_000_000)
	if d < 900*time.Microsecond || d > 1100*time.Microsecond {
		t.Fatalf("memory-bound kernel time = %v, want ~1ms", d)
	}
	// Floor applies.
	if d := p.KernelTime(1, 1); d < 6*time.Microsecond {
		t.Fatalf("kernel time %v below launch floor", d)
	}
}

func TestParamsScale(t *testing.T) {
	p := DefaultParams().Scale(8)
	if p.GPUMemory != 4*GiB {
		t.Fatalf("scaled GPUMemory = %d, want 4GiB", p.GPUMemory)
	}
	if p.HostMemory != 64*GiB {
		t.Fatalf("scaled HostMemory = %d, want 64GiB", p.HostMemory)
	}
	if got := DefaultParams().Scale(1).GPUMemory; got != 32*GiB {
		t.Fatalf("Scale(1) must be identity, got %d", got)
	}
	if got := DefaultParams().Scale(0).GPUMemory; got != 32*GiB {
		t.Fatalf("Scale(0) must be identity, got %d", got)
	}
}

func TestLinkSerializes(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, nil)
	s1, e1 := l.Reserve(0, BlockSize, HostToDevice)
	if s1 != 0 {
		t.Fatalf("first transfer should start immediately, started %v", s1)
	}
	s2, e2 := l.Reserve(0, BlockSize, HostToDevice)
	if s2 != e1 {
		t.Fatalf("second transfer must queue behind first: start %v, want %v", s2, e1)
	}
	if e2.Sub(s2) != e1.Sub(s1) {
		t.Fatalf("equal-size transfers must take equal time")
	}
	// A request after the link drained starts at its own time.
	s3, _ := l.Reserve(e2.Add(time.Millisecond), PageSize, DeviceToHost)
	if s3 != e2.Add(time.Millisecond) {
		t.Fatalf("idle link must start at request time, got %v", s3)
	}
	h2d, d2h := l.Traffic()
	if h2d != 2*BlockSize || d2h != PageSize {
		t.Fatalf("traffic = (%d,%d), want (%d,%d)", h2d, d2h, 2*BlockSize, PageSize)
	}
	nh, nd := l.Transfers()
	if nh != 2 || nd != 1 {
		t.Fatalf("transfer counts = (%d,%d), want (2,1)", nh, nd)
	}
}

func TestLinkZeroByteReservation(t *testing.T) {
	l := NewLink(DefaultParams(), nil)
	s, e := l.Reserve(100, 0, HostToDevice)
	if s != 100 || e != 100 {
		t.Fatalf("zero-byte reserve = [%v,%v), want empty at 100", s, e)
	}
	if l.BusyUntil() != 0 {
		t.Fatalf("zero-byte reserve must not occupy the link")
	}
}

func TestLinkIdleUntil(t *testing.T) {
	p := DefaultParams()
	l := NewLink(p, nil)
	dur := p.TransferTime(BlockSize)
	if !l.IdleUntil(0, BlockSize, Time(dur)) {
		t.Fatalf("fresh link must fit a block before its own transfer time")
	}
	if l.IdleUntil(0, BlockSize, Time(dur-1)) {
		t.Fatalf("deadline one ns too early must fail")
	}
	l.Reserve(0, BlockSize, HostToDevice)
	if l.IdleUntil(0, BlockSize, Time(dur)) {
		t.Fatalf("busy link must not fit a second block in the same window")
	}
}

func TestLinkReset(t *testing.T) {
	tl := &Timeline{}
	l := NewLink(DefaultParams(), tl)
	l.Reserve(0, BlockSize, HostToDevice)
	l.Reset()
	if l.BusyUntil() != 0 {
		t.Fatalf("reset link still busy")
	}
	if h, d := l.Traffic(); h != 0 || d != 0 {
		t.Fatalf("reset link has traffic (%d,%d)", h, d)
	}
	if tl.Busy() != 0 {
		t.Fatalf("reset link timeline still busy")
	}
}

func TestTimelineMerge(t *testing.T) {
	var tl Timeline
	tl.Add(0, 10)
	tl.Add(20, 30)
	if tl.Busy() != 20 {
		t.Fatalf("busy = %v, want 20", tl.Busy())
	}
	tl.Add(5, 25) // bridges both
	if tl.Busy() != 30 {
		t.Fatalf("busy after bridge = %v, want 30", tl.Busy())
	}
	if tl.Len() != 1 {
		t.Fatalf("intervals = %d, want 1 merged", tl.Len())
	}
	tl.Add(30, 40) // adjacent extends
	if tl.Busy() != 40 || tl.Len() != 1 {
		t.Fatalf("adjacent add: busy=%v len=%d", tl.Busy(), tl.Len())
	}
	tl.Add(10, 20) // fully contained, no-op
	if tl.Busy() != 40 {
		t.Fatalf("contained add changed busy to %v", tl.Busy())
	}
	tl.Add(7, 3) // inverted ignored
	if tl.Busy() != 40 {
		t.Fatalf("inverted interval changed busy to %v", tl.Busy())
	}
}

func TestTimelineOutOfOrder(t *testing.T) {
	var tl Timeline
	tl.Add(100, 200)
	tl.Add(0, 50)
	if tl.Busy() != 150 || tl.Len() != 2 {
		t.Fatalf("out-of-order add: busy=%v len=%d", tl.Busy(), tl.Len())
	}
	tl.Add(40, 110)
	if tl.Busy() != 200 || tl.Len() != 1 {
		t.Fatalf("bridging add: busy=%v len=%d", tl.Busy(), tl.Len())
	}
}

// TestTimelineQuick checks against a brute-force boolean-array oracle with
// randomized interval sets.
func TestTimelineQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var tl Timeline
		covered := make([]bool, 2048)
		for i := 0; i+1 < len(raw); i += 2 {
			a := Time(raw[i] % 2048)
			b := Time(raw[i+1] % 2048)
			tl.Add(a, b)
			for x := a; x < b; x++ {
				covered[x] = true
			}
		}
		var want Duration
		for _, c := range covered {
			if c {
				want++
			}
		}
		return tl.Busy() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 || Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Fatal("Max/Min broken")
	}
	if Time(5).Add(3) != 8 {
		t.Fatal("Time.Add broken")
	}
	if Time(8).Sub(5) != 3 {
		t.Fatal("Time.Sub broken")
	}
}

func TestDirectionString(t *testing.T) {
	if HostToDevice.String() != "H2D" || DeviceToHost.String() != "D2H" {
		t.Fatal("Direction.String broken")
	}
}
