package sim

// Direction labels a transfer on the link.
type Direction uint8

const (
	// HostToDevice moves pages from CPU memory to GPU memory.
	HostToDevice Direction = iota
	// DeviceToHost moves pages from GPU memory back to the CPU backing store.
	DeviceToHost
)

func (d Direction) String() string {
	if d == HostToDevice {
		return "H2D"
	}
	return "D2H"
}

// TransferPerturber lets a fault-injection layer (internal/chaos) perturb
// individual transfers: it receives the scheduled start time, size,
// direction, and unperturbed occupancy of a transfer and returns the
// occupancy to charge plus whether the transfer transiently fails. A failed
// transfer still occupies the link (the attempt ran and delivered garbage);
// the caller decides whether and when to retry.
type TransferPerturber interface {
	PerturbTransfer(at Time, n int64, dir Direction, base Duration) (Duration, bool)
}

// Link models the PCIe interconnect as a single serialized resource. The
// DeepUM migration thread owns it: fault migrations always run before queued
// prefetch commands, but an in-flight transfer is never aborted (transfers
// preempt at transfer granularity, matching the migration thread of §3.1).
//
// Link keeps only the end of the current reservation plus aggregate traffic
// counters; callers supply the earliest start time and receive the interval
// actually occupied.
type Link struct {
	params   Params
	busyUnt  Time
	timeline *Timeline
	perturb  TransferPerturber
	observe  TransferObserver

	bytesH2D int64
	bytesD2H int64
	nH2D     int64
	nD2H     int64
	failures int64
}

// TransferObserver receives every completed link reservation: the occupied
// interval, size, direction, and whether the attempt transiently failed.
// Installed by the tracing layer; sim itself stays observer-agnostic (a
// plain callback, so this package never imports the obs event taxonomy).
type TransferObserver func(start, end Time, n int64, dir Direction, failed bool)

// NewLink returns an idle link using the transfer-time model of p. The
// timeline, if non-nil, records busy intervals for energy integration.
func NewLink(p Params, tl *Timeline) *Link {
	return &Link{params: p, timeline: tl}
}

// BusyUntil reports the instant the link becomes free.
func (l *Link) BusyUntil() Time { return l.busyUnt }

// SetPerturber installs a fault injector; nil removes it.
func (l *Link) SetPerturber(p TransferPerturber) { l.perturb = p }

// SetObserver installs a transfer observer; nil removes it.
func (l *Link) SetObserver(o TransferObserver) { l.observe = o }

// Failures returns how many reservation attempts transiently failed.
func (l *Link) Failures() int64 { return l.failures }

// Reserve schedules a transfer of n bytes not earlier than at, returning the
// interval [start, end) it occupies. A zero-byte transfer returns an empty
// interval at the requested time without occupying the link. Under fault
// injection, Reserve retries a transiently failing transfer internally with
// a short fixed backoff — callers that cannot express a retry policy (the
// baseline executors) observe only slowdown, never failure. The migration
// engine's hot paths use ReserveChecked and their own backoff instead.
func (l *Link) Reserve(at Time, n int64, dir Direction) (start, end Time) {
	const internalRetryBackoff = Duration(10_000) // 10us
	for attempt := 0; ; attempt++ {
		s, e, ok := l.ReserveChecked(at, n, dir)
		// The injector bounds consecutive failures, so the attempt cap is a
		// defensive backstop: past it the transfer counts as delivered.
		if ok || attempt >= 16 {
			return s, e
		}
		at = e.Add(internalRetryBackoff << min(attempt, 6))
	}
}

// ReserveChecked is Reserve exposed to the fault injector: ok is false when
// the transfer transiently failed. The failed attempt occupies the returned
// interval anyway; the caller retries (with its own backoff) or gives up.
func (l *Link) ReserveChecked(at Time, n int64, dir Direction) (start, end Time, ok bool) {
	if n <= 0 {
		return at, at, true
	}
	start = Max(at, l.busyUnt)
	d := l.params.TransferTime(n)
	fail := false
	if l.perturb != nil {
		d, fail = l.perturb.PerturbTransfer(start, n, dir, d)
	}
	end = start.Add(d)
	l.busyUnt = end
	switch dir {
	case HostToDevice:
		l.bytesH2D += n
		l.nH2D++
	case DeviceToHost:
		l.bytesD2H += n
		l.nD2H++
	}
	if fail {
		l.failures++
	}
	if l.timeline != nil {
		l.timeline.Add(start, end)
	}
	if l.observe != nil {
		l.observe(start, end, n, dir, fail)
	}
	return start, end, !fail
}

// IdleUntil reports whether the link is free for the whole interval ending at
// deadline, i.e. whether a background transfer starting now would not push
// past it. It is used by the pre-evictor to stay off the critical path.
func (l *Link) IdleUntil(now Time, n int64, deadline Time) bool {
	start := Max(now, l.busyUnt)
	return start.Add(l.params.TransferTime(n)) <= deadline
}

// Traffic returns cumulative transferred bytes per direction.
func (l *Link) Traffic() (h2d, d2h int64) { return l.bytesH2D, l.bytesD2H }

// Transfers returns cumulative transfer counts per direction.
func (l *Link) Transfers() (h2d, d2h int64) { return l.nH2D, l.nD2H }

// Reset clears reservations and counters, keeping the parameter set.
func (l *Link) Reset() {
	l.busyUnt = 0
	l.bytesH2D, l.bytesD2H = 0, 0
	l.nH2D, l.nD2H = 0, 0
	if l.timeline != nil {
		l.timeline.Reset()
	}
}

// Duplex models the PCIe interconnect as two independent serialized lanes,
// one per direction — PCIe is full duplex, so evictions (D2H) overlap with
// migrations and prefetches (H2D). Both lanes feed one shared timeline so
// the energy meter sees link-active time without double counting overlap.
type Duplex struct {
	h2d, d2h *Link
}

// NewDuplex returns an idle duplex link; tl may be nil.
func NewDuplex(p Params, tl *Timeline) *Duplex {
	return &Duplex{h2d: NewLink(p, tl), d2h: NewLink(p, tl)}
}

// SetPerturber installs a fault injector on both lanes; nil removes it.
func (d *Duplex) SetPerturber(p TransferPerturber) {
	d.h2d.SetPerturber(p)
	d.d2h.SetPerturber(p)
}

// SetObserver installs a transfer observer on both lanes; nil removes it.
func (d *Duplex) SetObserver(o TransferObserver) {
	d.h2d.SetObserver(o)
	d.d2h.SetObserver(o)
}

// Failures returns transiently failed reservation attempts across lanes.
func (d *Duplex) Failures() int64 { return d.h2d.Failures() + d.d2h.Failures() }

// Reserve schedules a transfer on the lane of dir.
func (d *Duplex) Reserve(at Time, n int64, dir Direction) (start, end Time) {
	return d.lane(dir).Reserve(at, n, dir)
}

// ReserveChecked schedules a transfer on the lane of dir, surfacing
// injected transient failures to the caller.
func (d *Duplex) ReserveChecked(at Time, n int64, dir Direction) (start, end Time, ok bool) {
	return d.lane(dir).ReserveChecked(at, n, dir)
}

// BusyUntil reports when the lane of dir drains.
func (d *Duplex) BusyUntil(dir Direction) Time { return d.lane(dir).BusyUntil() }

// Traffic returns cumulative bytes per direction across both lanes.
func (d *Duplex) Traffic() (h2d, d2h int64) {
	a, _ := d.h2d.Traffic()
	_, b := d.d2h.Traffic()
	return a, b
}

// Transfers returns cumulative transfer counts per direction.
func (d *Duplex) Transfers() (h2d, d2h int64) {
	a, _ := d.h2d.Transfers()
	_, b := d.d2h.Transfers()
	return a, b
}

// Reset clears both lanes.
func (d *Duplex) Reset() {
	d.h2d.Reset()
	d.d2h.Reset()
}

func (d *Duplex) lane(dir Direction) *Link {
	if dir == HostToDevice {
		return d.h2d
	}
	return d.d2h
}
