// Package arbiter is the shared GPU-memory arbiter behind oversubscribed
// admission. Where the strict quota path rejects any run that would push the
// aggregate committed demand past GPUMemoryBudget, the arbiter admits it and
// keeps every admitted run alive under pressure, escalating through three
// rungs (after the oversubscription-manager design of arXiv 2204.02974):
//
//  1. Soft grants. Every running run holds a guaranteed floor (a fraction of
//     the budget, never revoked while the run executes) plus a revocable
//     burst share topping the grant up to its declared demand. The ratio of
//     granted bytes to budget is folded into an EWMA pressure signal in
//     [0..1+] — smoothed exactly like internal/health's component scores —
//     which the supervisor feeds into each run's health ladder as a
//     migrator-style impulse, so pressured runs shed prefetch aggressiveness
//     (degree caps, batch caps, pre-evict off) before anyone is evicted.
//  2. Cross-run revocation. Under sustained pressure the arbiter revokes
//     burst shares one victim per tick — lowest priority class first, then
//     largest burst holder — shrinking the victim's grant to its floor. A
//     revoked run sees its personal pressure pinned to 1.0, driving its
//     ladder to the top rung; the engine honors the squeeze through the
//     existing per-level gates. Bursts are restored when pressure decays.
//  3. Suspend-to-checkpoint. When every burst is revoked and pressure still
//     holds above the suspend threshold, the arbiter names suspend victims —
//     lowest priority, then largest grant — and the supervisor checkpoints
//     them through the warm-state envelope, journals them as suspended, and
//     requeues them. Resumption is gated on raw (instantaneous, unsmoothed)
//     headroom so a suspended run is not throttled by EWMA decay latency.
//
// Like internal/health and internal/obs the package is clock-agnostic:
// timestamps are plain int64 nanoseconds on whatever clock the owner feeds
// (the supervisor feeds wall time). All methods are safe for concurrent use.
package arbiter

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Default tuning. Thresholds are ratios of granted bytes to budget; the
// half-life is sized for a wall-clock supervisor tick of a few milliseconds.
const (
	// DefaultFloorFraction is each run's guaranteed floor as a fraction of
	// the budget. 0.25 means four floors fill the device exactly.
	DefaultFloorFraction = 0.25
	// DefaultHalfLife is the pressure EWMA half-life in nanoseconds.
	DefaultHalfLife = int64(50_000_000) // 50ms
	// DefaultRevokeAt: smoothed pressure that starts burst revocation.
	DefaultRevokeAt = 0.85
	// DefaultSuspendAt: smoothed pressure that starts suspensions once no
	// bursts remain. Above 1.0 so floors that exactly fill the budget are
	// stable (hysteresis against the resume gate at DefaultResumeAt).
	DefaultSuspendAt = 1.05
	// DefaultResumeAt: raw post-resume pressure a resumption may reach.
	DefaultResumeAt = 1.0
	// DefaultSustain is how long smoothed pressure must hold above a
	// threshold before the arbiter acts on it.
	DefaultSustain = int64(100_000_000) // 100ms
)

// Options tune an Arbiter. Budget must be positive; the zero value of every
// other field selects the defaults above.
type Options struct {
	// Budget is the shared GPU memory budget in bytes.
	Budget int64
	// FloorFraction bounds each run's guaranteed floor to this fraction of
	// Budget (a run demanding less gets its full demand as floor).
	FloorFraction float64
	// HalfLife is the pressure EWMA half-life in nanoseconds.
	HalfLife int64
	// RevokeAt and SuspendAt are smoothed-pressure thresholds for rungs 2
	// and 3; ResumeAt caps the raw pressure a resumption may produce.
	// Sane ordering is RevokeAt < ResumeAt <= SuspendAt.
	RevokeAt, SuspendAt, ResumeAt float64
	// Sustain is how long (ns) smoothed pressure must hold above RevokeAt /
	// SuspendAt before the arbiter revokes / suspends.
	Sustain int64
	// OnEvent, when set, is called (unlocked) for every grant-state change —
	// the hook the supervisor's obs/metrics export rides on.
	OnEvent func(Event)
}

func (o Options) withDefaults() Options {
	if o.FloorFraction <= 0 || o.FloorFraction > 1 {
		o.FloorFraction = DefaultFloorFraction
	}
	if o.HalfLife <= 0 {
		o.HalfLife = DefaultHalfLife
	}
	if o.RevokeAt <= 0 {
		o.RevokeAt = DefaultRevokeAt
	}
	if o.SuspendAt <= 0 {
		o.SuspendAt = DefaultSuspendAt
	}
	if o.ResumeAt <= 0 {
		o.ResumeAt = DefaultResumeAt
	}
	if o.Sustain <= 0 {
		o.Sustain = DefaultSustain
	}
	return o
}

// EventKind tags a grant-state change.
type EventKind uint8

// Event kinds.
const (
	EventGrant   EventKind = iota // a run acquired its soft grant
	EventRelease                  // a run released its grant
	EventRevoke                   // a burst share was revoked
	EventRestore                  // a revoked burst share was restored
	EventSuspend                  // a run was named a suspend victim
)

func (k EventKind) String() string {
	switch k {
	case EventGrant:
		return "grant"
	case EventRelease:
		return "release"
	case EventRevoke:
		return "revoke"
	case EventRestore:
		return "restore"
	case EventSuspend:
		return "suspend"
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Event is one grant-state change, delivered through Options.OnEvent.
type Event struct {
	Kind     EventKind
	RunID    uint64
	Priority int
	// Bytes is the grant delta the event moved (grant size for grant/release
	// /suspend, burst size for revoke/restore).
	Bytes int64
	// Pressure is the smoothed pressure after the change.
	Pressure float64
}

// grant is one running run's share of the budget.
type grant struct {
	id         uint64
	priority   int
	demand     int64
	floor      int64 // guaranteed while running
	burst      int64 // current revocable share (0 after revocation)
	fullBurst  int64 // burst as originally granted
	revoked    bool  // burst revoked; personal pressure pinned to 1
	suspending bool  // named a suspend victim; awaiting Release
}

// Decision is what one Tick resolved: burst revocations and restorations
// already applied to the ledger, and runs the owner must now suspend
// (checkpoint + requeue, then Release).
type Decision struct {
	Revoked  []uint64
	Restored []uint64
	Suspend  []uint64
}

// Stats is a point-in-time arbiter snapshot.
type Stats struct {
	Budget  int64   `json:"budget"`
	Granted int64   `json:"granted"` // floors + bursts of running runs
	Floors  int64   `json:"floors"`
	Bursts  int64   `json:"bursts"`
	Running int     `json:"running"`
	// Pressure is the smoothed signal clamped to [0,1]; Raw is the
	// instantaneous granted/budget ratio (exceeds 1 when oversubscribed).
	Pressure    float64 `json:"pressure"`
	Raw         float64 `json:"raw_pressure"`
	Revocations int64   `json:"revocations"`
	Restores    int64   `json:"restores"`
	Suspensions int64   `json:"suspensions"`
	Grants      int64   `json:"grants"`
	Releases    int64   `json:"releases"`
}

// Arbiter is the grant ledger and pressure controller. Construct with New;
// a nil *Arbiter is the oversubscription-off mode: every method no-ops and
// every gate answers permissively, mirroring the nil-controller convention.
type Arbiter struct {
	mu  sync.Mutex
	opt Options

	grants  map[uint64]*grant
	granted int64 // sum of floor+burst over grants

	smoothed float64 // EWMA of raw pressure
	lastTS   int64   // clock of the last smoothing step

	revokeSince  int64 // when smoothed first held >= RevokeAt (0 = below)
	suspendSince int64 // when smoothed first held >= SuspendAt (0 = below)

	revocations, restores, suspensions int64
	grantCount, releaseCount           int64
}

// New builds an arbiter over the given budget. Returns an error when the
// budget is not positive — an arbiter without a budget is meaningless; run
// with a nil *Arbiter instead to disable oversubscription.
func New(opt Options) (*Arbiter, error) {
	if opt.Budget <= 0 {
		return nil, fmt.Errorf("arbiter: budget must be positive, got %d", opt.Budget)
	}
	return &Arbiter{opt: opt.withDefaults(), grants: map[uint64]*grant{}}, nil
}

// FloorOf returns the guaranteed floor a run with the given demand would
// hold: min(demand, FloorFraction*Budget).
func (a *Arbiter) FloorOf(demand int64) int64 {
	if a == nil || demand <= 0 {
		return 0
	}
	f := int64(a.opt.FloorFraction * float64(a.opt.Budget))
	if demand < f {
		return demand
	}
	return f
}

// Acquire records a soft grant — floor plus burst up to the declared demand
// — for a run entering execution. It always succeeds: admission control is
// the owner's queue, not the ledger. ts is the owner's clock in ns.
func (a *Arbiter) Acquire(ts int64, id uint64, demand int64, priority int) {
	if a == nil {
		return
	}
	floor := a.FloorOf(demand)
	burst := demand - floor
	if burst < 0 {
		burst = 0
	}
	a.mu.Lock()
	a.stepLocked(ts)
	if old, ok := a.grants[id]; ok {
		// Re-acquire (a resumed run): replace the stale grant.
		a.granted -= old.floor + old.burst
	}
	g := &grant{id: id, priority: priority, demand: demand, floor: floor, burst: burst, fullBurst: burst}
	a.grants[id] = g
	a.granted += floor + burst
	a.grantCount++
	ev := a.eventLocked(EventGrant, g, floor+burst)
	a.mu.Unlock()
	a.fire(ev)
}

// Release drops a run's grant when it leaves execution (finished, failed,
// cancelled, or suspended).
func (a *Arbiter) Release(ts int64, id uint64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	g, ok := a.grants[id]
	if !ok {
		a.mu.Unlock()
		return
	}
	a.stepLocked(ts)
	delete(a.grants, id)
	a.granted -= g.floor + g.burst
	a.releaseCount++
	ev := a.eventLocked(EventRelease, g, g.floor+g.burst)
	a.mu.Unlock()
	a.fire(ev)
}

// Pressure returns the smoothed pressure signal clamped to [0,1].
func (a *Arbiter) Pressure() float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return clamp01(a.smoothed)
}

// PressureFor returns the pressure signal a specific run should fold into
// its health ladder: the global smoothed signal, pinned to 1.0 while the
// run's burst is revoked (the squeeze must reach the top rung even if the
// aggregate has relaxed since).
func (a *Arbiter) PressureFor(id uint64) float64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if g, ok := a.grants[id]; ok && g.revoked {
		return 1
	}
	return clamp01(a.smoothed)
}

// CanResume reports whether a suspended run with the given demand may
// re-enter execution now. The gate is raw, instantaneous headroom — not the
// EWMA — so resumption is not delayed by decay latency: the run's floor must
// fit under ResumeAt×Budget alongside the currently granted bytes.
func (a *Arbiter) CanResume(demand int64) bool {
	if a == nil {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(a.granted+a.FloorOf(demand)) <= a.opt.ResumeAt*float64(a.opt.Budget)
}

// Tick advances the pressure clock and resolves the escalation ladder for
// this instant. Revocations and restorations are applied to the ledger
// before Tick returns; suspend victims are only *named* — the owner
// checkpoints and requeues them, then calls Release.
func (a *Arbiter) Tick(ts int64) Decision {
	if a == nil {
		return Decision{}
	}
	var evs []Event
	a.mu.Lock()
	a.stepLocked(ts)
	var d Decision

	// Rung 2: sustained pressure over RevokeAt revokes one burst per tick;
	// decayed pressure under RevokeAt/2 restores one per tick.
	switch {
	case a.smoothed >= a.opt.RevokeAt:
		if a.revokeSince == 0 {
			a.revokeSince = ts
		} else if ts-a.revokeSince >= a.opt.Sustain {
			if g := a.revokeVictimLocked(); g != nil {
				a.granted -= g.burst
				b := g.burst
				g.burst, g.revoked = 0, true
				a.revocations++
				d.Revoked = append(d.Revoked, g.id)
				evs = append(evs, a.eventLocked(EventRevoke, g, b))
			}
		}
	case a.smoothed < a.opt.RevokeAt/2:
		a.revokeSince = 0
		if g := a.restoreCandidateLocked(); g != nil {
			g.burst, g.revoked = g.fullBurst, false
			a.granted += g.burst
			a.restores++
			d.Restored = append(d.Restored, g.id)
			evs = append(evs, a.eventLocked(EventRestore, g, g.burst))
		}
	default:
		a.revokeSince = 0
	}

	// Rung 3: bursts exhausted and pressure still sustained over SuspendAt
	// names one suspend victim per tick.
	if a.smoothed >= a.opt.SuspendAt {
		if a.suspendSince == 0 {
			a.suspendSince = ts
		} else if ts-a.suspendSince >= a.opt.Sustain && !a.anyBurstLocked() {
			if g := a.suspendVictimLocked(); g != nil {
				g.suspending = true
				a.suspensions++
				d.Suspend = append(d.Suspend, g.id)
				evs = append(evs, a.eventLocked(EventSuspend, g, g.floor+g.burst))
			}
		}
	} else {
		a.suspendSince = 0
	}
	a.mu.Unlock()
	for _, ev := range evs {
		a.fire(ev)
	}
	return d
}

// Stats snapshots the ledger.
func (a *Arbiter) Stats() Stats {
	if a == nil {
		return Stats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := Stats{
		Budget:      a.opt.Budget,
		Granted:     a.granted,
		Running:     len(a.grants),
		Pressure:    clamp01(a.smoothed),
		Raw:         a.rawLocked(),
		Revocations: a.revocations,
		Restores:    a.restores,
		Suspensions: a.suspensions,
		Grants:      a.grantCount,
		Releases:    a.releaseCount,
	}
	for _, g := range a.grants {
		st.Floors += g.floor
		st.Bursts += g.burst
	}
	return st
}

// --- internals --------------------------------------------------------------

func (a *Arbiter) rawLocked() float64 {
	return float64(a.granted) / float64(a.opt.Budget)
}

// stepLocked advances the EWMA toward the current raw pressure. Like
// health.decayAll, time never runs backwards.
func (a *Arbiter) stepLocked(ts int64) {
	if ts <= a.lastTS {
		return
	}
	if a.lastTS != 0 {
		dt := float64(ts - a.lastTS)
		k := 1 - math.Exp2(-dt/float64(a.opt.HalfLife))
		a.smoothed += (a.rawLocked() - a.smoothed) * k
	} else {
		a.smoothed = a.rawLocked()
	}
	a.lastTS = ts
}

// revokeVictimLocked picks the burst to revoke: lowest priority class first,
// then largest burst holder. Nil when no revocable burst remains.
func (a *Arbiter) revokeVictimLocked() *grant {
	var v *grant
	for _, g := range a.sortedLocked() {
		if g.burst <= 0 || g.suspending {
			continue
		}
		if v == nil || g.priority < v.priority || (g.priority == v.priority && g.burst > v.burst) {
			v = g
		}
	}
	return v
}

// restoreCandidateLocked picks the revoked burst to restore: highest
// priority first, then smallest burst (the cheapest to re-grant).
func (a *Arbiter) restoreCandidateLocked() *grant {
	var v *grant
	for _, g := range a.sortedLocked() {
		if !g.revoked || g.suspending || g.fullBurst <= 0 {
			continue
		}
		if v == nil || g.priority > v.priority || (g.priority == v.priority && g.fullBurst < v.fullBurst) {
			v = g
		}
	}
	return v
}

// suspendVictimLocked picks the run to suspend: lowest priority class, then
// largest grant. Zero-grant runs are never victims — suspending them frees
// nothing.
func (a *Arbiter) suspendVictimLocked() *grant {
	var v *grant
	for _, g := range a.sortedLocked() {
		if g.suspending || g.floor+g.burst <= 0 {
			continue
		}
		if v == nil || g.priority < v.priority ||
			(g.priority == v.priority && g.floor+g.burst > v.floor+v.burst) {
			v = g
		}
	}
	return v
}

func (a *Arbiter) anyBurstLocked() bool {
	for _, g := range a.grants {
		if g.burst > 0 && !g.suspending {
			return true
		}
	}
	return false
}

// sortedLocked returns grants in deterministic (run-ID) order so victim
// selection ties break identically across runs of the same schedule.
func (a *Arbiter) sortedLocked() []*grant {
	out := make([]*grant, 0, len(a.grants))
	for _, g := range a.grants {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (a *Arbiter) eventLocked(k EventKind, g *grant, bytes int64) Event {
	return Event{Kind: k, RunID: g.id, Priority: g.priority, Bytes: bytes, Pressure: clamp01(a.smoothed)}
}

func (a *Arbiter) fire(ev Event) {
	if a.opt.OnEvent != nil {
		a.opt.OnEvent(ev)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
