package arbiter

import (
	"sync"
	"testing"
)

const ms = int64(1_000_000)

// opts returns tuning with short sustain/half-life so tests drive the
// ladder in a handful of ticks.
func opts(budget int64) Options {
	return Options{
		Budget:   budget,
		HalfLife: 1 * ms,
		Sustain:  5 * ms,
	}
}

// tickUntil ticks every millisecond until pred is satisfied by a decision
// or maxTicks elapse, folding decisions together.
func tickUntil(t *testing.T, a *Arbiter, start int64, maxTicks int, pred func(Decision) bool) (Decision, int64) {
	t.Helper()
	ts := start
	for i := 0; i < maxTicks; i++ {
		ts += ms
		if d := a.Tick(ts); pred(d) {
			return d, ts
		}
	}
	t.Fatalf("no qualifying decision within %d ticks", maxTicks)
	return Decision{}, ts
}

func TestNewRejectsZeroBudget(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("want error for zero budget")
	}
}

func TestNilArbiterIsPermissive(t *testing.T) {
	var a *Arbiter
	a.Acquire(1, 1, 100, 0)
	a.Release(2, 1)
	if !a.CanResume(1 << 40) {
		t.Fatal("nil arbiter must always allow resume")
	}
	if p := a.Pressure(); p != 0 {
		t.Fatalf("nil pressure = %v, want 0", p)
	}
	if d := a.Tick(3); len(d.Suspend) != 0 {
		t.Fatal("nil tick must decide nothing")
	}
}

func TestSoftGrantsAndPressure(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	// One run demanding 400 on a 1000 budget: floor 250, burst 150.
	a.Acquire(0, 1, 400, 0)
	st := a.Stats()
	if st.Floors != 250 || st.Bursts != 150 || st.Granted != 400 {
		t.Fatalf("grant split = floors %d bursts %d granted %d, want 250/150/400", st.Floors, st.Bursts, st.Granted)
	}
	// A small run gets its whole demand as floor.
	a.Acquire(0, 2, 100, 0)
	if st = a.Stats(); st.Floors != 350 || st.Bursts != 150 {
		t.Fatalf("after small grant: floors %d bursts %d, want 350/150", st.Floors, st.Bursts)
	}
	// Raw pressure is granted/budget; smoothed converges toward it.
	if st.Raw != 0.5 {
		t.Fatalf("raw = %v, want 0.5", st.Raw)
	}
	for ts := ms; ts <= 20*ms; ts += ms {
		a.Tick(ts)
	}
	if p := a.Pressure(); p < 0.45 || p > 0.5 {
		t.Fatalf("smoothed pressure = %v, want ~0.5", p)
	}
	a.Release(21*ms, 1)
	a.Release(21*ms, 2)
	if st = a.Stats(); st.Granted != 0 || st.Running != 0 {
		t.Fatalf("after release: granted %d running %d, want 0/0", st.Granted, st.Running)
	}
}

func TestSustainedPressureRevokesLowestPriorityLargestBurst(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	a.Acquire(0, 1, 400, 1) // high priority, burst 150
	a.Acquire(0, 2, 350, 0) // low priority, burst 100
	a.Acquire(0, 3, 400, 0) // low priority, burst 150  <- first victim
	// Raw 1.15: over RevokeAt once smoothed converges and sustains.
	d, ts := tickUntil(t, a, 0, 100, func(d Decision) bool { return len(d.Revoked) > 0 })
	if d.Revoked[0] != 3 {
		t.Fatalf("first victim = run %d, want 3 (lowest priority, largest burst)", d.Revoked[0])
	}
	if p := a.PressureFor(3); p != 1 {
		t.Fatalf("revoked run pressure = %v, want pinned 1.0", p)
	}
	d, _ = tickUntil(t, a, ts, 100, func(d Decision) bool { return len(d.Revoked) > 0 })
	if d.Revoked[0] != 2 {
		t.Fatalf("second victim = run %d, want 2", d.Revoked[0])
	}
	st := a.Stats()
	if st.Revocations != 2 || st.Bursts != 150 {
		t.Fatalf("revocations %d bursts %d, want 2 revocations, only run 1's 150 burst left", st.Revocations, st.Bursts)
	}
}

func TestDecayedPressureRestoresBursts(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	a.Acquire(0, 1, 400, 0)
	a.Acquire(0, 2, 400, 0)
	a.Acquire(0, 3, 400, 0) // raw 1.2
	_, ts := tickUntil(t, a, 0, 200, func(d Decision) bool { return len(d.Revoked) > 0 })
	// Drop two runs: raw falls to the survivor's floor, pressure decays.
	a.Release(ts, 2)
	a.Release(ts, 3)
	d, _ := tickUntil(t, a, ts, 200, func(d Decision) bool { return len(d.Restored) > 0 })
	if d.Restored[0] != 1 {
		t.Fatalf("restored run %d, want 1", d.Restored[0])
	}
	if p := a.PressureFor(1); p == 1 {
		t.Fatal("restored run must no longer be pinned to pressure 1.0")
	}
	if st := a.Stats(); st.Bursts != 150 {
		t.Fatalf("bursts after restore = %d, want 150", st.Bursts)
	}
}

func TestSuspendOnlyAfterBurstsExhausted(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	// Floors alone exceed the budget: 8 × 250 = 2000 on 1000.
	for id := uint64(1); id <= 8; id++ {
		a.Acquire(0, id, 400, 0)
	}
	var sawRevoke bool
	var suspended []uint64
	ts := int64(0)
	for i := 0; i < 500 && len(suspended) == 0; i++ {
		ts += ms
		d := a.Tick(ts)
		if len(d.Suspend) > 0 {
			if !sawRevoke {
				t.Fatal("suspension fired before any burst revocation")
			}
			if a.anyBurst() {
				t.Fatal("suspension fired while revocable bursts remained")
			}
			suspended = append(suspended, d.Suspend...)
		}
		if len(d.Revoked) > 0 {
			sawRevoke = true
		}
	}
	if len(suspended) == 0 {
		t.Fatal("floors 2× budget never produced a suspension")
	}
	// The named victim is not re-picked on the next tick (marked suspending).
	d := a.Tick(ts + ms)
	for _, id := range d.Suspend {
		if id == suspended[0] {
			t.Fatalf("run %d named a suspend victim twice", id)
		}
	}
	// Owner suspends it: release drops its grant.
	before := a.Stats().Granted
	a.Release(ts+2*ms, suspended[0])
	if after := a.Stats().Granted; after != before-250 {
		t.Fatalf("granted after suspend release = %d, want %d", after, before-250)
	}
}

func (a *Arbiter) anyBurst() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.anyBurstLocked()
}

func TestCanResumeUsesRawHeadroom(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		a.Acquire(0, id, 250, 0) // three floors of 250 => granted 750
	}
	// A 250-floor resume lands exactly at ResumeAt (1.0): allowed.
	if !a.CanResume(400) {
		t.Fatal("resume to exactly ResumeAt×budget must be allowed")
	}
	a.Acquire(ms, 4, 250, 0) // granted 1000
	if a.CanResume(400) {
		t.Fatal("resume past ResumeAt×budget must be denied")
	}
	// Raw gate: a release opens headroom immediately, no EWMA decay wait.
	a.Release(2*ms, 4)
	if !a.CanResume(400) {
		t.Fatal("resume must be allowed the instant raw headroom exists")
	}
}

func TestReacquireReplacesStaleGrant(t *testing.T) {
	a, err := New(opts(1000))
	if err != nil {
		t.Fatal(err)
	}
	a.Acquire(0, 1, 400, 0)
	a.Acquire(ms, 1, 600, 2) // resumed with different demand/priority
	st := a.Stats()
	if st.Running != 1 || st.Granted != 600 {
		t.Fatalf("running %d granted %d, want 1 running with the fresh 600 grant", st.Running, st.Granted)
	}
}

func TestEventsFireForEveryTransition(t *testing.T) {
	var mu sync.Mutex
	var kinds []EventKind
	o := opts(1000)
	o.OnEvent = func(ev Event) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	}
	a, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 8; id++ {
		a.Acquire(0, id, 400, 0)
	}
	_, ts := tickUntil(t, a, 0, 500, func(d Decision) bool { return len(d.Suspend) > 0 })
	a.Release(ts+ms, 1)
	want := map[EventKind]bool{EventGrant: false, EventRevoke: false, EventSuspend: false, EventRelease: false}
	mu.Lock()
	defer mu.Unlock()
	for _, k := range kinds {
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("no %s event observed", k)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	a, err := New(opts(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := uint64(w*1000 + i)
				ts := int64(w*1000+i) * ms
				a.Acquire(ts, id, 1<<18, w%3)
				a.PressureFor(id)
				a.Tick(ts + ms/2)
				a.CanResume(1 << 18)
				a.Release(ts+ms, id)
			}
		}(w)
	}
	wg.Wait()
	if st := a.Stats(); st.Running != 0 || st.Granted != 0 {
		t.Fatalf("ledger not empty after churn: running %d granted %d", st.Running, st.Granted)
	}
}
