// Package admission makes the run-admission front door safe under overload
// and retry storms. It contributes two mechanisms the supervisor (and,
// through it, the federation and the HTTP serving layer) compose:
//
//   - Idempotency keys (KeyTable): a client-supplied key per submission,
//     journaled write-ahead alongside the run's spec, so a retried submit —
//     after a client timeout, a torn response, or a mid-handoff shard kill —
//     resolves to the run the first attempt created instead of executing a
//     duplicate. The key table is the in-memory index; the journal is the
//     durable truth it is rebuilt from on replay.
//
//   - Deadline-aware load shedding (Shedder): the shedder watches the
//     admission queue drain — an EWMA over inter-departure intervals and
//     observed queue waits — and predicts how long a new arrival would sit
//     queued. A submission that propagates a client deadline the backlog
//     cannot meet is rejected at the door with a typed *ShedError (distinct
//     from queue-full: the queue may have room, the deadline just will not
//     survive the wait). The same drain model prices Retry-After hints:
//     instead of a hardcoded constant that synchronizes every rejected
//     client into the next retry wave, the hint is the predicted time for
//     the backlog to clear one slot, spread by deterministic-per-shedder
//     jitter.
//
// Both mechanisms are allocation-light and take one mutex each; they are
// meant to sit inside the supervisor's admission path, which already
// serializes on the supervisor lock.
package admission

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// MaxKeyLen bounds one idempotency key. Keys are journaled verbatim; an
// unbounded key would let one hostile client grow WAL frames without limit.
const MaxKeyLen = 256

// ValidateKey reports whether key is usable as an idempotency key: 1 to
// MaxKeyLen bytes of printable ASCII (no control characters — keys appear
// in journals, logs, and HTTP headers).
func ValidateKey(key string) error {
	if key == "" {
		return fmt.Errorf("admission: empty idempotency key")
	}
	if len(key) > MaxKeyLen {
		return fmt.Errorf("admission: idempotency key %d bytes long, max %d", len(key), MaxKeyLen)
	}
	for i := 0; i < len(key); i++ {
		if key[i] < 0x21 || key[i] > 0x7e {
			return fmt.Errorf("admission: idempotency key contains byte 0x%02x at %d (printable ASCII only)", key[i], i)
		}
	}
	return nil
}

// KeyTable maps idempotency keys to the run ID their first submission
// created. It is an in-memory index rebuilt from the journal on replay;
// binding order is first-writer-wins, which mirrors the federation's
// first-seen duplicate resolution after a mid-handoff crash.
type KeyTable struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewKeyTable returns an empty table.
func NewKeyTable() *KeyTable {
	return &KeyTable{m: map[string]uint64{}}
}

// Lookup resolves a key to the run ID it is bound to.
func (t *KeyTable) Lookup(key string) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.m[key]
	return id, ok
}

// Bind records key -> id. If the key is already bound, the existing binding
// wins and Bind reports it (a replayed handoff or a duplicate journal entry
// must never re-point a key at a different run).
func (t *KeyTable) Bind(key string, id uint64) (uint64, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if prev, ok := t.m[key]; ok {
		return prev, prev == id
	}
	t.m[key] = id
	return id, true
}

// Len reports how many keys are bound.
func (t *KeyTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// Snapshot copies the table (federation restart rebuilds its global key map
// from each shard's snapshot).
func (t *KeyTable) Snapshot() map[string]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]uint64, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

// ShedError rejects a submission whose propagated client deadline cannot be
// met by the current drain rate. It is distinct from queue-full: the queue
// may have room; admitting the run would only burn a worker slot on work
// the client will have abandoned by the time it starts.
type ShedError struct {
	// Deadline is the client's propagated budget.
	Deadline time.Duration
	// PredictedWait is the queue wait the shedder forecast for this arrival.
	PredictedWait time.Duration
	// RetryAfter is the jittered backoff hint priced from the drain rate.
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed: predicted queue wait %v exceeds client deadline %v; retry in %v or submit without a deadline",
		e.PredictedWait.Round(time.Millisecond), e.Deadline.Round(time.Millisecond), e.RetryAfter.Round(time.Second))
}

// Retryable reports that backing off (or relaxing the deadline) can clear
// the rejection.
func (e *ShedError) Retryable() bool { return true }

// ShedOptions tune a Shedder; the zero value selects production defaults.
type ShedOptions struct {
	// Headroom multiplies the predicted wait before comparing it to the
	// deadline, so marginal requests are shed rather than admitted into a
	// coin flip. Default 1.2.
	Headroom float64
	// HalfLife is the EWMA half-life in observations (not wall time): after
	// this many samples an old observation's weight has halved. Default 16.
	HalfLife int
	// MinRetryAfter / MaxRetryAfter clamp the computed hint.
	// Defaults 1s / 60s.
	MinRetryAfter time.Duration
	MaxRetryAfter time.Duration
	// JitterFrac spreads Retry-After by ±JitterFrac of its value so rejected
	// clients do not re-arrive as one synchronized wave. Default 0.25.
	JitterFrac float64
	// Seed makes the jitter stream deterministic (0 uses 1).
	Seed int64
}

func (o ShedOptions) withDefaults() ShedOptions {
	if o.Headroom <= 0 {
		o.Headroom = 1.2
	}
	if o.HalfLife <= 0 {
		o.HalfLife = 16
	}
	if o.MinRetryAfter <= 0 {
		o.MinRetryAfter = time.Second
	}
	if o.MaxRetryAfter <= 0 {
		o.MaxRetryAfter = 60 * time.Second
	}
	if o.JitterFrac <= 0 {
		o.JitterFrac = 0.25
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Shedder models the admission queue's drain from two observation streams —
// inter-departure intervals (a run leaving the queue for a worker) and the
// queue wait each departing run actually suffered — and answers two
// questions: "can this deadline survive the current backlog?" and "when
// should a rejected client come back?". All methods are safe for concurrent
// use.
type Shedder struct {
	opts ShedOptions

	mu sync.Mutex
	// interDepart is the EWMA of seconds between queue departures: the
	// reciprocal of drain rate, already aggregated across all workers.
	interDepart ewma
	// queueWait is the EWMA of observed queue waits (seconds), a reality
	// check on the Little's-law prediction when service times are bursty.
	queueWait  ewma
	lastDepart time.Time
	rng        *rand.Rand
	sheds      int64
}

// NewShedder builds a shedder.
func NewShedder(opts ShedOptions) *Shedder {
	opts = opts.withDefaults()
	return &Shedder{
		opts:        opts,
		interDepart: newEWMA(opts.HalfLife),
		queueWait:   newEWMA(opts.HalfLife),
		rng:         rand.New(rand.NewSource(opts.Seed)),
	}
}

// ObserveStart records one queue departure: a worker picked a run up after
// it waited `wait` in the queue. Call it from the dequeue path.
func (s *Shedder) ObserveStart(wait time.Duration) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.lastDepart.IsZero() {
		s.interDepart.observe(now.Sub(s.lastDepart).Seconds())
	}
	s.lastDepart = now
	s.queueWait.observe(wait.Seconds())
}

// PredictWait forecasts the queue wait a new arrival would suffer with
// queueLen runs already ahead of it: Little's law over the observed drain
// rate, floored by the queue-wait EWMA scaled to the backlog (bursty
// service times make the pure drain model optimistic). A cold shedder (no
// departures observed yet) predicts zero — admit until there is evidence.
func (s *Shedder) PredictWait(queueLen int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.predictLocked(queueLen)
}

func (s *Shedder) predictLocked(queueLen int) time.Duration {
	inter := s.interDepart.value()
	if inter <= 0 {
		return 0
	}
	model := float64(queueLen+1) * inter
	if qw := s.queueWait.value(); qw > model {
		model = qw
	}
	return time.Duration(model * float64(time.Second))
}

// Decide is the admission gate: with queueLen runs queued ahead and a
// propagated client deadline (0 = none, never shed), it either admits (nil)
// or returns a *ShedError carrying the prediction and a priced, jittered
// Retry-After.
func (s *Shedder) Decide(queueLen int, deadline time.Duration) error {
	if deadline <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	predicted := s.predictLocked(queueLen)
	if float64(predicted)*s.opts.Headroom <= float64(deadline) {
		return nil
	}
	s.sheds++
	return &ShedError{
		Deadline:      deadline,
		PredictedWait: predicted,
		RetryAfter:    s.retryAfterLocked(queueLen),
	}
}

// RetryAfter prices a backoff hint from the drain rate: roughly the time
// for the backlog to clear one slot, clamped to [Min, Max] and spread by
// ±JitterFrac so a storm of rejected clients de-synchronizes instead of
// re-arriving as one wave.
func (s *Shedder) RetryAfter(queueLen int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked(queueLen)
}

func (s *Shedder) retryAfterLocked(queueLen int) time.Duration {
	inter := s.interDepart.value()
	base := time.Duration(inter * float64(time.Second))
	if queueLen > 0 && inter > 0 {
		// A deeper backlog earns a longer hint: half the predicted drain of
		// the backlog ahead, so retries interleave with departures instead of
		// all waiting out the whole queue.
		base = time.Duration(inter * float64(queueLen) / 2 * float64(time.Second))
	}
	if base < s.opts.MinRetryAfter {
		base = s.opts.MinRetryAfter
	}
	if base > s.opts.MaxRetryAfter {
		base = s.opts.MaxRetryAfter
	}
	// Uniform jitter in [1-f, 1+f].
	f := s.opts.JitterFrac
	scale := 1 - f + 2*f*s.rng.Float64()
	d := time.Duration(float64(base) * scale)
	if d < time.Second {
		d = time.Second // Retry-After is whole seconds on the wire
	}
	return d
}

// Stats is a point-in-time snapshot of the shedder's model.
type Stats struct {
	// InterDeparture is the EWMA seconds between queue departures (0 until
	// the second departure).
	InterDeparture float64
	// QueueWait is the EWMA observed queue wait in seconds.
	QueueWait float64
	// Sheds counts deadline-based rejections issued.
	Sheds int64
}

// Stats snapshots the model.
func (s *Shedder) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		InterDeparture: s.interDepart.value(),
		QueueWait:      s.queueWait.value(),
		Sheds:          s.sheds,
	}
}

// ewma is a fixed-alpha exponentially weighted moving average where alpha
// is derived from a half-life expressed in observations.
type ewma struct {
	alpha float64
	v     float64
	seen  bool
}

func newEWMA(halfLifeObs int) ewma {
	// After n observations an old sample's weight is (1-alpha)^n = 1/2.
	// alpha = 1 - 2^(-1/n).
	n := float64(halfLifeObs)
	return ewma{alpha: 1 - math.Exp2(-1/n)}
}

func (e *ewma) observe(x float64) {
	if !e.seen {
		e.v, e.seen = x, true
		return
	}
	e.v += e.alpha * (x - e.v)
}

func (e *ewma) value() float64 {
	if !e.seen {
		return 0
	}
	return e.v
}
