package admission

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestValidateKey(t *testing.T) {
	for _, ok := range []string{"a", "run-7", "k:2026-08-07/retry", strings.Repeat("x", MaxKeyLen)} {
		if err := ValidateKey(ok); err != nil {
			t.Errorf("ValidateKey(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", MaxKeyLen+1), "has space", "tab\there", "nul\x00", "høst"} {
		if err := ValidateKey(bad); err == nil {
			t.Errorf("ValidateKey(%q) = nil, want error", bad)
		}
	}
}

func TestKeyTableFirstBindingWins(t *testing.T) {
	kt := NewKeyTable()
	if _, ok := kt.Lookup("k"); ok {
		t.Fatal("empty table resolved a key")
	}
	if id, fresh := kt.Bind("k", 7); id != 7 || !fresh {
		t.Fatalf("first Bind = (%d, %v), want (7, true)", id, fresh)
	}
	// Re-binding the same pair is idempotent; a different ID loses.
	if id, same := kt.Bind("k", 7); id != 7 || !same {
		t.Fatalf("idempotent re-Bind = (%d, %v), want (7, true)", id, same)
	}
	if id, same := kt.Bind("k", 9); id != 7 || same {
		t.Fatalf("conflicting Bind = (%d, %v), want (7, false)", id, same)
	}
	if id, ok := kt.Lookup("k"); !ok || id != 7 {
		t.Fatalf("Lookup = (%d, %v), want (7, true)", id, ok)
	}
	if kt.Len() != 1 {
		t.Fatalf("Len = %d, want 1", kt.Len())
	}
	snap := kt.Snapshot()
	if len(snap) != 1 || snap["k"] != 7 {
		t.Fatalf("Snapshot = %v", snap)
	}
	snap["k"] = 99 // a snapshot is a copy
	if id, _ := kt.Lookup("k"); id != 7 {
		t.Fatal("mutating a snapshot leaked into the table")
	}
}

func TestShedderColdAdmitsEverything(t *testing.T) {
	s := NewShedder(ShedOptions{})
	if err := s.Decide(1000, time.Nanosecond); err != nil {
		t.Fatalf("cold shedder shed: %v", err)
	}
	if got := s.PredictWait(1000); got != 0 {
		t.Fatalf("cold PredictWait = %v, want 0", got)
	}
}

func TestShedderNoDeadlineNeverSheds(t *testing.T) {
	s := NewShedder(ShedOptions{})
	feed(s, 100*time.Millisecond, 500*time.Millisecond, 64)
	if err := s.Decide(1<<20, 0); err != nil {
		t.Fatalf("deadline-less submission shed: %v", err)
	}
}

// feed simulates n queue departures spaced `inter` apart, each having
// waited `wait` in the queue, by driving the EWMAs directly through
// ObserveStart with a rigged clock: ObserveStart uses wall time for
// inter-departure spacing, so the test uses the wait EWMA (deterministic)
// plus real observations for the departure clock.
func feed(s *Shedder, inter, wait time.Duration, n int) {
	// Drive the internal model deterministically: wall-clock spacing in a
	// unit test is noise, so poke the EWMAs the way n observations would.
	s.mu.Lock()
	for i := 0; i < n; i++ {
		s.interDepart.observe(inter.Seconds())
		s.queueWait.observe(wait.Seconds())
	}
	s.lastDepart = time.Now()
	s.mu.Unlock()
}

func TestShedderDeadlineGate(t *testing.T) {
	s := NewShedder(ShedOptions{Seed: 42})
	// Drain: one departure per 100ms. Queue of 9 ahead -> ~1s predicted.
	feed(s, 100*time.Millisecond, 0, 64)

	// A generous deadline is admitted.
	if err := s.Decide(9, 10*time.Second); err != nil {
		t.Fatalf("10s deadline shed against ~1s wait: %v", err)
	}
	// A deadline tighter than the predicted wait is shed with a typed error.
	err := s.Decide(9, 200*time.Millisecond)
	if err == nil {
		t.Fatal("200ms deadline admitted against ~1s predicted wait")
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("shed rejection is %T, want *ShedError", err)
	}
	if !shed.Retryable() {
		t.Fatal("ShedError must be retryable")
	}
	if shed.PredictedWait < 500*time.Millisecond || shed.PredictedWait > 5*time.Second {
		t.Fatalf("PredictedWait = %v, want ~1s", shed.PredictedWait)
	}
	if shed.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, below the 1s floor", shed.RetryAfter)
	}
	if st := s.Stats(); st.Sheds != 1 {
		t.Fatalf("Stats.Sheds = %d, want 1", st.Sheds)
	}
}

func TestShedderQueueWaitFloorsPrediction(t *testing.T) {
	s := NewShedder(ShedOptions{})
	// Fast departures but observed waits are long (bursty service): the
	// reality check must floor the optimistic drain model.
	feed(s, time.Millisecond, 2*time.Second, 64)
	if got := s.PredictWait(0); got < time.Second {
		t.Fatalf("PredictWait = %v; queue-wait EWMA (2s) should floor it", got)
	}
}

func TestRetryAfterJitterAndClamp(t *testing.T) {
	s := NewShedder(ShedOptions{Seed: 7, MinRetryAfter: time.Second, MaxRetryAfter: 8 * time.Second})
	feed(s, 50*time.Millisecond, 0, 64)

	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		d := s.RetryAfter(100)
		if d < time.Second || d > time.Duration(float64(8*time.Second)*1.3) {
			t.Fatalf("RetryAfter = %v outside clamp+jitter envelope", d)
		}
		seen[d] = true
	}
	if len(seen) < 8 {
		t.Fatalf("RetryAfter produced only %d distinct values over 64 draws; jitter is not spreading retries", len(seen))
	}

	// Deterministic under a fixed seed.
	a := NewShedder(ShedOptions{Seed: 9})
	b := NewShedder(ShedOptions{Seed: 9})
	feed(a, 50*time.Millisecond, 0, 16)
	feed(b, 50*time.Millisecond, 0, 16)
	for i := 0; i < 16; i++ {
		if da, db := a.RetryAfter(10), b.RetryAfter(10); da != db {
			t.Fatalf("draw %d: %v != %v under the same seed", i, da, db)
		}
	}
}

func TestShedderObserveStartFeedsModel(t *testing.T) {
	s := NewShedder(ShedOptions{})
	s.ObserveStart(300 * time.Millisecond)
	s.ObserveStart(300 * time.Millisecond)
	st := s.Stats()
	if st.QueueWait <= 0 {
		t.Fatal("queue-wait EWMA did not move after ObserveStart")
	}
	if st.InterDeparture < 0 {
		t.Fatal("negative inter-departure EWMA")
	}
}

func TestEWMAHalfLife(t *testing.T) {
	e := newEWMA(8)
	e.observe(1)
	for i := 0; i < 8; i++ {
		e.observe(0)
	}
	// After one half-life of zeros, the initial 1 should have decayed to
	// roughly half or below.
	if v := e.value(); v > 0.55 {
		t.Fatalf("after 8 zero observations value = %v, want <= ~0.5", v)
	}
}
