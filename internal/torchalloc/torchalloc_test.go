package torchalloc

import (
	"testing"
	"testing/quick"

	"deepum/internal/um"
)

func newUMAlloc() (*Allocator, *um.Space) {
	s := um.NewSpace(0)
	return New(s), s
}

func TestRoundSize(t *testing.T) {
	if RoundSize(0) != 512 || RoundSize(-1) != 512 {
		t.Fatal("non-positive sizes must round to one granule")
	}
	if RoundSize(1) != 512 || RoundSize(512) != 512 || RoundSize(513) != 1024 {
		t.Fatal("rounding broken")
	}
}

func TestAllocSmallPoolSegment(t *testing.T) {
	a, s := newUMAlloc()
	b, err := a.Alloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Active || b.Size != 1024 {
		t.Fatalf("block = %+v", b)
	}
	// A small allocation pulls a full 2MiB segment from the backend.
	if s.AllocatedBytes() != 2<<20 {
		t.Fatalf("backend allocation = %d, want 2MiB", s.AllocatedBytes())
	}
	// Second small allocation reuses the same segment: no new backend call.
	if _, err := a.Alloc(1000); err != nil {
		t.Fatal(err)
	}
	if s.AllocatedBytes() != 2<<20 {
		t.Fatalf("second small alloc grew backend to %d", s.AllocatedBytes())
	}
}

func TestAllocLargePool(t *testing.T) {
	a, s := newUMAlloc()
	b, err := a.Alloc(5 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if b.Size != 5<<20 {
		t.Fatalf("size = %d", b.Size)
	}
	// Requests under 10MiB draw a 20MiB segment.
	if s.AllocatedBytes() != 20<<20 {
		t.Fatalf("backend = %d, want 20MiB", s.AllocatedBytes())
	}
	// A huge request gets its own segment rounded to 2MiB.
	if _, err := a.Alloc(33<<20 + 100); err != nil {
		t.Fatal(err)
	}
	if s.AllocatedBytes() != 20<<20+34<<20 {
		t.Fatalf("backend = %d", s.AllocatedBytes())
	}
}

func TestBestFitSmallest(t *testing.T) {
	a, _ := newUMAlloc()
	big, _ := a.Alloc(8 << 20)
	small, _ := a.Alloc(2 << 20)
	if err := a.Free(big.Base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(small.Base); err != nil {
		t.Fatal(err)
	}
	// Pool now holds an 8MiB block, a 2MiB block, and the 10MiB tail
	// (merged with the 2MiB neighbour depending on order). Best fit for
	// 1.5MiB must pick the smallest adequate block.
	got, _ := a.Alloc(3 << 19) // 1.5MiB -> large pool
	if got.Size > 2<<20 {
		t.Fatalf("best fit returned %d-byte block", got.Size)
	}
}

func TestFreeMergesNeighbours(t *testing.T) {
	a, _ := newUMAlloc()
	b1, _ := a.Alloc(4 << 20)
	b2, _ := a.Alloc(4 << 20)
	b3, _ := a.Alloc(4 << 20)
	if b2.Base != b1.Base+um.Addr(b1.Size) || b3.Base != b2.Base+um.Addr(b2.Size) {
		t.Skip("segment layout not contiguous; splitting scheme changed")
	}
	if err := a.Free(b1.Base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b3.Base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b2.Base); err != nil {
		t.Fatal(err)
	}
	// All three (plus the segment tail) must have merged into one block able
	// to satisfy a request for the whole segment.
	got, err := a.Alloc(20 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 20<<20 {
		t.Fatalf("merged block size = %d, want full segment", got.Size)
	}
}

func TestFreeUnknown(t *testing.T) {
	a, _ := newUMAlloc()
	if err := a.Free(um.Addr(12345)); err == nil {
		t.Fatal("free of unknown block must fail")
	}
	b, _ := a.Alloc(1024)
	if err := a.Free(b.Base); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b.Base); err == nil {
		t.Fatal("double free must fail")
	}
}

func TestCallbacks(t *testing.T) {
	a, _ := newUMAlloc()
	var activeEvents, inactiveEvents int
	var lastActive um.Addr
	a.OnActive = func(base um.Addr, size int64) { activeEvents++; lastActive = base }
	a.OnInactive = func(base um.Addr, size int64) { inactiveEvents++ }
	b, _ := a.Alloc(1 << 20)
	if activeEvents != 1 || lastActive != b.Base {
		t.Fatalf("active events = %d", activeEvents)
	}
	if err := a.Free(b.Base); err != nil {
		t.Fatal(err)
	}
	if inactiveEvents != 1 {
		t.Fatalf("inactive events = %d", inactiveEvents)
	}
	// Reuse reactivates.
	_, _ = a.Alloc(1 << 20)
	if activeEvents != 2 {
		t.Fatalf("active events after reuse = %d", activeEvents)
	}
}

func TestEmptyCacheReleasesWholeSegments(t *testing.T) {
	a, s := newUMAlloc()
	b, _ := a.Alloc(15 << 20) // dedicated-ish segment of 20MiB? 15MiB > cutoff -> own 16MiB segment
	keep, _ := a.Alloc(1024)
	if err := a.Free(b.Base); err != nil {
		t.Fatal(err)
	}
	before := s.AllocatedBytes()
	a.EmptyCache()
	after := s.AllocatedBytes()
	if after >= before {
		t.Fatalf("EmptyCache freed nothing: %d -> %d", before, after)
	}
	// The small segment hosting an active block must survive.
	if after < 2<<20 {
		t.Fatalf("EmptyCache freed a segment with active blocks")
	}
	_ = keep
	st := a.Stats()
	if st.CacheFlushes != 1 {
		t.Fatalf("flushes = %d", st.CacheFlushes)
	}
}

type failingBackend struct{ fails int }

func (f *failingBackend) Malloc(n int64) (um.Addr, error) {
	if f.fails > 0 {
		f.fails--
		return 0, um.ErrHostExhausted
	}
	return 0, nil
}
func (f *failingBackend) Free(um.Addr, int64) {}

func TestAllocRetriesAfterEmptyCache(t *testing.T) {
	fb := &failingBackend{fails: 1}
	a := New(fb)
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("retry after EmptyCache should succeed: %v", err)
	}
	fb.fails = 2
	a2 := New(fb)
	if _, err := a2.Alloc(4 << 20); err == nil {
		t.Fatal("persistent backend failure must surface")
	}
}

func TestStatsAccounting(t *testing.T) {
	a, _ := newUMAlloc()
	b1, _ := a.Alloc(1 << 20)
	b2, _ := a.Alloc(4 << 20)
	size1, size2 := b1.Size, b2.Size // snapshot: Free merges mutate Size
	st := a.Stats()
	if st.Allocs != 2 || st.ActiveBytes != size1+size2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PeakActiveBytes != st.ActiveBytes {
		t.Fatalf("peak = %d, want %d", st.PeakActiveBytes, st.ActiveBytes)
	}
	if a.ActiveBlocks() != 2 {
		t.Fatalf("active blocks = %d", a.ActiveBlocks())
	}
	_ = a.Free(b2.Base)
	st = a.Stats()
	if st.Frees != 1 || st.ActiveBytes != size1 {
		t.Fatalf("stats after free = %+v", st)
	}
	if st.CachedBytes != st.SegmentBytes-st.ActiveBytes {
		t.Fatalf("cached bytes inconsistent: %+v", st)
	}
	if st.PeakActiveBytes != size1+size2 {
		t.Fatal("peak must not drop on free")
	}
}

// TestAllocFreeQuick: random alloc/free sequences preserve the invariants
// that active blocks never overlap and active byte accounting matches.
func TestAllocFreeQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		a, _ := newUMAlloc()
		type rec struct {
			base um.Addr
			size int64
		}
		var live []rec
		var activeBytes int64
		for _, op := range ops {
			if op%4 != 0 || len(live) == 0 {
				n := int64(op%2048+1) * 1024 // up to 2MiB: exercises both pools
				b, err := a.Alloc(n)
				if err != nil {
					return false
				}
				for _, l := range live {
					if b.Base < l.base+um.Addr(l.size) && l.base < b.Base+um.Addr(b.Size) {
						return false // overlap
					}
				}
				live = append(live, rec{b.Base, b.Size})
				activeBytes += b.Size
			} else {
				i := int(op>>2) % len(live)
				if err := a.Free(live[i].base); err != nil {
					return false
				}
				activeBytes -= live[i].size
				live = append(live[:i], live[i+1:]...)
			}
			if a.Stats().ActiveBytes != activeBytes {
				return false
			}
		}
		return a.ActiveBlocks() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
