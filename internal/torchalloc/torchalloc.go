// Package torchalloc reimplements the behaviour of PyTorch's caching GPU
// memory allocator that §5.2 of the DeepUM paper depends on: memory objects
// (PT blocks) are carved out of segments requested from the CUDA runtime,
// kept in a large pool (blocks over 1 MiB) or a small pool (1 MiB and
// under), returned to the pool and marked inactive when the model releases
// them, and only freed back to the runtime when the pool cannot satisfy an
// allocation.
//
// DeepUM's change to PyTorch — "a few lines of code ... to tell the DeepUM
// driver when a PT block is marked inactive" — is modeled by the OnActive
// and OnInactive callbacks, which the driver uses to invalidate UM blocks of
// inactive PT blocks instead of evicting them through the link.
package torchalloc

import (
	"fmt"
	"sort"

	"deepum/internal/um"
)

// Backend is where the allocator gets segments from: unified memory on
// DeepUM (um.Space) or a fixed-size device heap for the non-UM baselines.
type Backend interface {
	Malloc(n int64) (um.Addr, error)
	Free(base um.Addr, n int64)
}

const (
	// roundTo is the minimum allocation granularity.
	roundTo = 512
	// smallLimit splits the pools: requests of at most 1 MiB go to the
	// small pool (§5.2: "The large pool consists of PT blocks larger than
	// 1MB, and the small pool consists of PT blocks less than or equal to
	// 1MB").
	smallLimit = 1 << 20
	// smallSegment is the segment size backing small-pool blocks.
	smallSegment = 2 << 20
	// largeSegment is the segment size backing large-pool requests under
	// largeSegmentCutoff; bigger requests get a dedicated rounded segment.
	largeSegment       = 20 << 20
	largeSegmentCutoff = 10 << 20
	// splitRemainder is the smallest usable remainder: a block is split only
	// when the leftover piece is at least this big.
	splitRemainderSmall = 512
	splitRemainderLarge = 1 << 20
)

// PTBlock is one memory object managed by the allocator. Splitting links
// blocks of the same segment through prev/next for merging on free.
type PTBlock struct {
	Base   um.Addr
	Size   int64
	Active bool
	small  bool
	// segment chain for split/merge
	prev, next *PTBlock
}

// Allocator is the caching allocator. The zero value is not usable;
// construct with New.
type Allocator struct {
	backend Backend

	smallPool pool
	largePool pool

	// OnActive is called when a PT block becomes active (handed to the
	// model); OnInactive when it is returned to a pool. The DeepUM driver
	// registers here for the §5.2 invalidation optimization.
	OnActive   func(base um.Addr, size int64)
	OnInactive func(base um.Addr, size int64)

	// NoRetryAfterFlush disables the free-cache-and-retry fallback when the
	// backend rejects a segment request. Stock IBM LMS runs with the cached
	// pool intact, which is why it hits fragmentation OOMs that LMS-mod's
	// periodic flush avoids (§6.2).
	NoRetryAfterFlush bool

	active map[um.Addr]*PTBlock

	// stats
	allocs, frees   int64
	segmentBytes    int64
	activeBytes     int64
	peakActiveBytes int64
	cacheFlushes    int64
}

// pool keeps inactive PT blocks sorted by size then address, matching the
// best-fit "smallest available PT block" rule of §5.2.
type pool struct{ blocks []*PTBlock }

func (p *pool) insert(b *PTBlock) {
	i := sort.Search(len(p.blocks), func(i int) bool {
		if p.blocks[i].Size != b.Size {
			return p.blocks[i].Size > b.Size
		}
		return p.blocks[i].Base >= b.Base
	})
	p.blocks = append(p.blocks, nil)
	copy(p.blocks[i+1:], p.blocks[i:])
	p.blocks[i] = b
}

func (p *pool) remove(b *PTBlock) bool {
	for i, x := range p.blocks {
		if x == b {
			p.blocks = append(p.blocks[:i], p.blocks[i+1:]...)
			return true
		}
	}
	return false
}

// takeBestFit removes and returns the smallest block of at least size.
func (p *pool) takeBestFit(size int64) *PTBlock {
	i := sort.Search(len(p.blocks), func(i int) bool { return p.blocks[i].Size >= size })
	if i == len(p.blocks) {
		return nil
	}
	b := p.blocks[i]
	p.blocks = append(p.blocks[:i], p.blocks[i+1:]...)
	return b
}

// New returns an allocator drawing segments from backend.
func New(backend Backend) *Allocator {
	return &Allocator{backend: backend, active: make(map[um.Addr]*PTBlock)}
}

// RoundSize returns the allocator's internal size for a request.
func RoundSize(n int64) int64 {
	if n <= 0 {
		return roundTo
	}
	return (n + roundTo - 1) / roundTo * roundTo
}

// Alloc returns an active PT block of at least n bytes.
func (a *Allocator) Alloc(n int64) (*PTBlock, error) {
	size := RoundSize(n)
	small := size <= smallLimit
	p := &a.largePool
	if small {
		p = &a.smallPool
	}
	b := p.takeBestFit(size)
	if b == nil {
		if err := a.newSegment(size, small); err != nil {
			return nil, err
		}
		b = p.takeBestFit(size)
		if b == nil {
			return nil, fmt.Errorf("torchalloc: segment allocation did not produce a usable block")
		}
	}
	// Split when the block is much larger than the request.
	remainder := b.Size - size
	minRem := int64(splitRemainderSmall)
	if !small {
		minRem = splitRemainderLarge
	}
	if remainder >= minRem {
		rest := &PTBlock{Base: b.Base + um.Addr(size), Size: remainder, small: small, prev: b, next: b.next}
		if b.next != nil {
			b.next.prev = rest
		}
		b.next = rest
		b.Size = size
		p.insert(rest)
	}
	b.Active = true
	a.active[b.Base] = b
	a.allocs++
	a.activeBytes += b.Size
	if a.activeBytes > a.peakActiveBytes {
		a.peakActiveBytes = a.activeBytes
	}
	if a.OnActive != nil {
		a.OnActive(b.Base, b.Size)
	}
	return b, nil
}

// newSegment requests device (or UM) memory and seeds the pool with one
// inactive block covering it.
func (a *Allocator) newSegment(size int64, small bool) error {
	segSize := size
	if small {
		segSize = smallSegment
	} else if size < largeSegmentCutoff {
		segSize = largeSegment
	} else {
		segSize = (size + (2 << 20) - 1) / (2 << 20) * (2 << 20)
	}
	base, err := a.backend.Malloc(segSize)
	if err != nil {
		if a.NoRetryAfterFlush {
			return err
		}
		// Free cached memory and retry once, like
		// cudaMalloc-retry-after-emptying-cache in PyTorch.
		a.EmptyCache()
		base, err = a.backend.Malloc(segSize)
		if err != nil {
			return err
		}
	}
	a.segmentBytes += segSize
	b := &PTBlock{Base: base, Size: segSize, small: small}
	if small {
		a.smallPool.insert(b)
	} else {
		a.largePool.insert(b)
	}
	return nil
}

// Free returns the PT block at base to its pool and marks it inactive,
// merging it with adjacent inactive blocks of the same segment.
func (a *Allocator) Free(base um.Addr) error {
	b, ok := a.active[base]
	if !ok {
		return fmt.Errorf("torchalloc: free of unknown or inactive block at %d", base)
	}
	delete(a.active, base)
	b.Active = false
	a.frees++
	a.activeBytes -= b.Size
	if a.OnInactive != nil {
		a.OnInactive(b.Base, b.Size)
	}
	p := &a.largePool
	if b.small {
		p = &a.smallPool
	}
	// Merge with inactive neighbours within the segment.
	for b.prev != nil && !b.prev.Active {
		prev := b.prev
		p.remove(prev)
		prev.Size += b.Size
		prev.next = b.next
		if b.next != nil {
			b.next.prev = prev
		}
		b = prev
	}
	for b.next != nil && !b.next.Active {
		next := b.next
		p.remove(next)
		b.Size += next.Size
		b.next = next.next
		if next.next != nil {
			next.next.prev = b
		}
	}
	p.insert(b)
	return nil
}

// EmptyCache releases whole inactive segments back to the backend, the
// periodic cleanup LMS-mod performs to reduce out-of-memory errors from
// fragmentation (§6.2).
func (a *Allocator) EmptyCache() {
	a.cacheFlushes++
	for _, p := range []*pool{&a.smallPool, &a.largePool} {
		kept := p.blocks[:0]
		for _, b := range p.blocks {
			if b.prev == nil && b.next == nil {
				a.backend.Free(b.Base, b.Size)
				a.segmentBytes -= b.Size
			} else {
				kept = append(kept, b)
			}
		}
		p.blocks = kept
	}
}

// Stats reports allocator counters.
type Stats struct {
	Allocs, Frees   int64
	SegmentBytes    int64 // bytes requested from the backend and still held
	ActiveBytes     int64 // bytes in active PT blocks
	PeakActiveBytes int64
	CachedBytes     int64 // bytes sitting inactive in the pools
	CacheFlushes    int64
}

// Stats returns a snapshot of the allocator counters.
func (a *Allocator) Stats() Stats {
	return Stats{
		Allocs:          a.allocs,
		Frees:           a.frees,
		SegmentBytes:    a.segmentBytes,
		ActiveBytes:     a.activeBytes,
		PeakActiveBytes: a.peakActiveBytes,
		CachedBytes:     a.segmentBytes - a.activeBytes,
		CacheFlushes:    a.cacheFlushes,
	}
}

// ActiveBlocks returns the number of currently active PT blocks.
func (a *Allocator) ActiveBlocks() int { return len(a.active) }
