package health

import (
	"testing"

	"deepum/internal/obs"
)

// testOptions gives a slow half-life (negligible decay across the short
// timestamps the tests use) and tight dwell/probe clocks so sequences stay
// readable: dwell 100ns, probes every 1000ns.
func testOptions() Options {
	return Options{
		HalfLife:      1_000_000,
		UpThreshold:   0.6,
		DownThreshold: 0.15,
		Dwell:         100,
		ProbeInterval: 1000,
	}
}

func TestEscalationOneLevelPerDwell(t *testing.T) {
	c := NewController(testOptions())
	// Two transfer failures stack to 0.6 — exactly the up threshold.
	c.ObserveTransferFailure(200)
	if got := c.Level(); got != L0 {
		t.Fatalf("after one failure: level %s, want L0", got)
	}
	c.ObserveTransferFailure(200)
	if got := c.Level(); got != L1 {
		t.Fatalf("after two failures: level %s, want L1", got)
	}
	// Score is still over the threshold, but the dwell clock just reset:
	// more impulses at the same instant must not ratchet further.
	c.ObserveTransferFailure(200)
	c.ObserveTransferFailure(200)
	if got := c.Level(); got != L1 {
		t.Fatalf("impulses inside dwell: level %s, want L1", got)
	}
	// One level per elapsed dwell, and the ladder tops out at L3.
	c.ObserveTransferFailure(301)
	c.ObserveTransferFailure(402)
	c.ObserveTransferFailure(503)
	c.ObserveTransferFailure(604)
	if got := c.Level(); got != L3 {
		t.Fatalf("saturated ladder: level %s, want L3", got)
	}
	if got := c.MaxLevel(); got != L3 {
		t.Fatalf("max level %s, want L3", got)
	}
	for i, tr := range c.Transitions() {
		if tr.To != tr.From+1 {
			t.Errorf("transition %d jumps %s->%s", i, tr.FromName, tr.ToName)
		}
	}
}

func TestRecoveryWalksDownOneLevelPerProbe(t *testing.T) {
	opt := testOptions()
	c := NewController(opt)
	c.ObserveBreaker(100, "closed", "open") // 0.9: straight past the threshold
	c.ObserveTransferFailure(201)
	c.ObserveTransferFailure(302)
	if got := c.Level(); got != L3 {
		t.Fatalf("setup: level %s, want L3", got)
	}
	// Let the scores decay to ~0 (many half-lives), then tick repeatedly:
	// recovery must step one rung per probe interval, not collapse to L0.
	base := int64(302 + 40*opt.HalfLife)
	c.Tick(base)
	if got := c.Level(); got != L2 {
		t.Fatalf("first probe: level %s, want L2", got)
	}
	c.Tick(base + 1) // inside the probe interval
	if got := c.Level(); got != L2 {
		t.Fatalf("tick inside probe interval moved the ladder: level %s", got)
	}
	c.Tick(base + opt.ProbeInterval)
	c.Tick(base + 2*opt.ProbeInterval)
	if got := c.Level(); got != L0 {
		t.Fatalf("after three probes: level %s, want L0", got)
	}
	c.Tick(base + 3*opt.ProbeInterval)
	if got := c.Level(); got != L0 {
		t.Fatalf("probe below L0: level %s", got)
	}
	// MaxLevel keeps the high-water mark through recovery.
	if got := c.MaxLevel(); got != L3 {
		t.Fatalf("max level %s, want L3", got)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	opt := testOptions()
	c := NewController(opt)
	c.ObserveTransferFailure(100)
	c.ObserveTransferFailure(100) // 0.6 -> L1
	if got := c.Level(); got != L1 {
		t.Fatalf("setup: level %s, want L1", got)
	}
	// One half-life decays 0.6 to 0.3 — inside (Down, Up): the ladder must
	// hold L1 in both directions no matter how often it is re-evaluated.
	ts := 100 + opt.HalfLife
	for i := int64(0); i < 5; i++ {
		c.Tick(ts + i*opt.ProbeInterval)
		if got := c.Level(); got != L1 {
			t.Fatalf("tick %d in hysteresis band: level %s, want L1", i, got)
		}
	}
}

func TestNilControllerPermissive(t *testing.T) {
	var c *Controller
	if c.Level() != L0 || c.MaxLevel() != L0 {
		t.Fatal("nil controller not at L0")
	}
	if !c.AllowPrefetch() || !c.AllowPreevict() || !c.AllowPrefetchEnqueue() || !c.SpeculativeRequeue() {
		t.Fatal("nil controller gated something")
	}
	if c.UseFallbackEviction() {
		t.Fatal("nil controller forced fallback eviction")
	}
	if got := c.DegreeCap(8); got != 8 {
		t.Fatalf("nil DegreeCap(8) = %d", got)
	}
	if got := c.FaultBatchCap(64); got != 64 {
		t.Fatalf("nil FaultBatchCap(64) = %d", got)
	}
	// Every input must be a no-op, not a nil dereference.
	c.ObserveTransferFailure(1)
	c.ObserveTransferSuccess(2)
	c.ObservePrefetchRetry(3)
	c.ObservePrefetchGiveUp(4)
	c.ObservePrefetchWaste(5)
	c.ObserveLateHit(6)
	c.ObserveBreaker(7, "closed", "open")
	c.ObserveFaultBatch(8, 1000)
	c.ObserveMigratorStall(9, 1000)
	c.ObservePipelineRestart(10)
	c.Tick(11)
	c.SetObserver(obs.NewRecorder(0))
	if c.Report() != nil || c.Transitions() != nil {
		t.Fatal("nil controller produced a report")
	}
}

func TestFixedNeverTransitions(t *testing.T) {
	c := Fixed(L2)
	for ts := int64(0); ts < 100_000; ts += 50 {
		c.ObserveBreaker(ts, "closed", "open")
	}
	if got := c.Level(); got != L2 {
		t.Fatalf("frozen controller moved to %s", got)
	}
	if n := len(c.Transitions()); n != 0 {
		t.Fatalf("frozen controller logged %d transitions", n)
	}
	// Gates reflect the pinned level.
	if c.AllowPreevict() {
		t.Fatal("L2 allows pre-eviction")
	}
	if !c.AllowPrefetch() {
		t.Fatal("L2 blocks prefetch")
	}
	// Signals still score (the report stays useful for diagnostics).
	if rep := c.Report(); rep.Impulses == 0 || rep.Level != "L2" || rep.MaxLevel != "L2" {
		t.Fatalf("frozen report %+v", rep)
	}
	if Fixed(numLevels+3).Level() != L3 {
		t.Fatal("out-of-range Fixed level not clamped to L3")
	}
}

func TestLadderGatesByLevel(t *testing.T) {
	cases := []struct {
		level                           Level
		prefetch, preevict, specRequeue bool
		fallbackEvict                   bool
		degreeCap8, batchCap64          int
	}{
		{L0, true, true, true, false, 8, 64},
		{L1, true, true, false, false, 4, 64},
		{L2, true, false, false, false, 1, 32},
		{L3, false, false, false, true, 0, 16},
	}
	for _, tc := range cases {
		c := Fixed(tc.level)
		if c.AllowPrefetch() != tc.prefetch {
			t.Errorf("%s: AllowPrefetch = %v", tc.level, c.AllowPrefetch())
		}
		if c.AllowPreevict() != tc.preevict {
			t.Errorf("%s: AllowPreevict = %v", tc.level, c.AllowPreevict())
		}
		if c.SpeculativeRequeue() != tc.specRequeue {
			t.Errorf("%s: SpeculativeRequeue = %v", tc.level, c.SpeculativeRequeue())
		}
		if c.UseFallbackEviction() != tc.fallbackEvict {
			t.Errorf("%s: UseFallbackEviction = %v", tc.level, c.UseFallbackEviction())
		}
		if got := c.DegreeCap(8); got != tc.degreeCap8 {
			t.Errorf("%s: DegreeCap(8) = %d, want %d", tc.level, got, tc.degreeCap8)
		}
		if got := c.FaultBatchCap(64); got != tc.batchCap64 {
			t.Errorf("%s: FaultBatchCap(64) = %d, want %d", tc.level, got, tc.batchCap64)
		}
	}
}

func TestOnTransitionCallback(t *testing.T) {
	var seen []Transition
	opt := testOptions()
	opt.OnTransition = func(tr Transition) { seen = append(seen, tr) }
	c := NewController(opt)
	c.ObserveBreaker(200, "closed", "open")
	c.ObserveTransferFailure(301)
	if len(seen) != 2 {
		t.Fatalf("callback fired %d times, want 2", len(seen))
	}
	if seen[0].From != L0 || seen[0].To != L1 || seen[1].To != L2 {
		t.Fatalf("callback transitions %+v", seen)
	}
	if seen[0].Component != "link" {
		t.Fatalf("transition component %q, want link", seen[0].Component)
	}
}

func TestSlowFaultBatchDetection(t *testing.T) {
	c := NewController(testOptions())
	// Establish the latency baseline: the first batches never alarm, even
	// wild ones, until slowBatchMinSamples have been seen.
	ts := int64(100)
	for i := 0; i < slowBatchMinSamples; i++ {
		c.ObserveFaultBatch(ts, 1_000)
		ts += 10
	}
	if rep := c.Report(); rep.Scores["migrator"] != 0 {
		t.Fatalf("baseline batches scored migrator %.2f", rep.Scores["migrator"])
	}
	// A batch 10x over the mean is a migrator impulse...
	c.ObserveFaultBatch(ts, 10_000)
	if rep := c.Report(); rep.Scores["migrator"] <= 0 {
		t.Fatal("slow batch did not score the migrator")
	}
	// ...and it also raises the baseline, so detection adapts rather than
	// alarming forever on a persistently slow handler.
	before := c.Report().Scores["migrator"]
	c.ObserveFaultBatch(ts+10, 3_000)
	if after := c.Report().Scores["migrator"]; after > before {
		t.Fatalf("in-band batch raised the score %.3f -> %.3f", before, after)
	}
}

func TestScoreDecay(t *testing.T) {
	opt := testOptions()
	c := NewController(opt)
	c.ObserveTransferFailure(0) // 0.30
	c.Tick(opt.HalfLife)
	rep := c.Report()
	if s := rep.Scores["link"]; s < 0.14 || s > 0.16 {
		t.Fatalf("one half-life: link score %.3f, want ~0.15", s)
	}
	if p := rep.PeakScores["link"]; p < 0.29 || p > 0.31 {
		t.Fatalf("peak score %.3f, want ~0.30", p)
	}
	// Clock regression must not re-inflate scores or panic.
	c.Tick(opt.HalfLife / 2)
	if s := c.Report().Scores["link"]; s > 0.16 {
		t.Fatalf("backwards tick inflated score to %.3f", s)
	}
}

func TestObserverEmitsHealthEvents(t *testing.T) {
	rec := obs.NewRecorder(0)
	c := NewController(testOptions())
	c.SetObserver(rec)
	c.ObserveBreaker(200, "closed", "open") // L0->L1 plus a score sample
	var transitions, samples int
	for _, e := range rec.Events() {
		if e.Kind != obs.KindHealth || e.Track != obs.TrackHealth {
			t.Fatalf("unexpected event %+v", e)
		}
		if e.Name == "L0->L1" {
			transitions++
			if e.Arg != int64(L1) {
				t.Fatalf("transition event Arg = %d, want %d", e.Arg, L1)
			}
		} else {
			samples++
		}
	}
	if transitions != 1 || samples == 0 {
		t.Fatalf("got %d transition events, %d score samples", transitions, samples)
	}
}

func TestLevelNames(t *testing.T) {
	for l := L0; l < numLevels; l++ {
		back, ok := LevelByName(l.String())
		if !ok || back != l {
			t.Errorf("level %s did not round trip", l)
		}
	}
	if _, ok := LevelByName("L9"); ok {
		t.Error("LevelByName accepted L9")
	}
	if numLevels.String() != "L?" {
		t.Errorf("out-of-range level prints %q", numLevels.String())
	}
}

func TestOptionsDefaults(t *testing.T) {
	got := Options{}.withDefaults()
	if got.HalfLife != DefaultHalfLife || got.Dwell != DefaultDwell ||
		got.ProbeInterval != DefaultProbeInterval ||
		got.UpThreshold != DefaultUpThreshold || got.DownThreshold != DefaultDownThreshold {
		t.Fatalf("zero options resolved to %+v", got)
	}
	// An inverted threshold pair (no hysteresis) falls back whole.
	bad := Options{UpThreshold: 0.2, DownThreshold: 0.5}.withDefaults()
	if bad.UpThreshold != DefaultUpThreshold || bad.DownThreshold != DefaultDownThreshold {
		t.Fatalf("inverted thresholds resolved to %+v", bad)
	}
}

func TestReportContents(t *testing.T) {
	c := NewController(testOptions())
	c.ObserveTransferFailure(100)
	c.ObserveTransferFailure(100)
	rep := c.Report()
	if rep.Level != "L1" || rep.MaxLevel != "L1" || rep.Transitions != 1 ||
		len(rep.TransitionLog) != 1 || rep.Impulses != 2 {
		t.Fatalf("report %+v", rep)
	}
	if rep.MaxLevelValue() != L1 {
		t.Fatalf("MaxLevelValue = %s", rep.MaxLevelValue())
	}
	var nilRep *Report
	if nilRep.MaxLevelValue() != L0 {
		t.Fatal("nil report MaxLevelValue != L0")
	}
}

func TestPressureGaugeDrivesMigratorScore(t *testing.T) {
	opt := testOptions()
	opt.HalfLife = 100 // sample every 100ns so the test stays short
	gauge := 0.0
	calls := 0
	opt.Pressure = func() float64 { calls++; return gauge }
	c := NewController(opt)

	// Zero pressure: ticks sample the gauge but fold no impulse.
	for ts := int64(100); ts <= 1000; ts += 100 {
		c.Tick(ts)
	}
	if calls == 0 {
		t.Fatal("gauge never sampled")
	}
	if got := c.Level(); got != L0 {
		t.Fatalf("zero pressure escalated to %s", got)
	}

	// Full pressure sustained across samples: steady state ~2·wPressure
	// crosses UpThreshold and the ladder escalates.
	gauge = 1.0
	for ts := int64(1100); ts <= 20_000; ts += 100 {
		c.Tick(ts)
	}
	if got := c.Level(); got == L0 {
		t.Fatal("sustained full pressure never escalated the ladder")
	}
	rep := c.Report()
	if rep.Scores[Migrator.String()] < 0.5 {
		t.Fatalf("migrator score %v under sustained pressure, want >= 0.5", rep.Scores[Migrator.String()])
	}

	// Sampling is throttled: ticks inside one half-life reuse the last
	// sample.
	before := calls
	c.Tick(20_010)
	c.Tick(20_020)
	if calls != before {
		t.Fatalf("gauge sampled %d extra times inside one half-life", calls-before)
	}

	// Moderate pressure (0.5) decays back below the threshold: recovery.
	gauge = 0.0
	for ts := int64(21_000); ts <= 60_000; ts += 100 {
		c.Tick(ts)
	}
	if got := c.Level(); got != L0 {
		t.Fatalf("pressure released but ladder stuck at %s", got)
	}
}

func TestModeratePressureStaysBelowThreshold(t *testing.T) {
	opt := testOptions()
	opt.HalfLife = 100
	opt.Pressure = func() float64 { return 0.5 }
	c := NewController(opt)
	for ts := int64(100); ts <= 50_000; ts += 100 {
		c.Tick(ts)
	}
	if got := c.Level(); got != L0 {
		t.Fatalf("moderate pressure 0.5 escalated to %s, want L0", got)
	}
}
