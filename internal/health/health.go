// Package health is the closed-loop health controller of the UM substrate.
// It consumes the degradation telemetry the rest of the system already
// produces — link transfer failures and retries, prefetch waste and late
// hits, fault-batch latency, circuit-breaker transitions, migration-thread
// stalls, pipeline stage restarts — folds each signal into a windowed EWMA
// health score per component (link, prefetcher, pipeline, migrator), and
// drives a graduated degradation ladder:
//
//	L0  full prefetch + pre-eviction (the paper's headline configuration)
//	L1  chained-correlation-only prefetch: speculative re-queueing of
//	    evicted predictions stops and the chaining degree is halved
//	L2  shrunken prefetch batches (degree floor), pre-eviction disabled,
//	    fault batches capped so handler cycles stay short
//	L3  pure demand faulting: no speculation at all, stock LRM eviction
//
// Escalation is hysteretic: a level is only raised when the worst component
// score crosses UpThreshold AND the controller has dwelt at the current
// level for at least Dwell; recovery is probed, not assumed — once scores
// decay under DownThreshold the controller walks back down ONE level per
// ProbeInterval, so a flapping fault source cannot make the ladder oscillate
// faster than the dwell/probe clock.
//
// The controller subsumes the engine's prefetch circuit breaker: a breaker
// opening is one (severe) link-health input rather than the only adaptive
// mechanism. Every degradation decision trades speculation for safety and
// never touches the demand path, so correctness is level-invariant — the
// engine's equivalence tests pin a bit-identical GPU access sequence at
// every forced ladder level.
//
// Like internal/obs, the package is clock-agnostic: timestamps are plain
// int64 nanoseconds, so the engine feeds virtual (simulated) time while the
// concurrent pipeline feeds wall time to its own controller instance. All
// methods are safe for concurrent use and nil-safe — a nil *Controller
// (health monitoring off) answers every gate permissively, mirroring the
// nil-injector and nil-recorder conventions.
package health

import (
	"fmt"
	"math"
	"sync"

	"deepum/internal/obs"
)

// Level is a rung of the degradation ladder. Higher levels trade more
// speculation away for stability; L3 is pure on-demand faulting.
type Level uint8

// Ladder levels, mildest first.
const (
	L0 Level = iota // full prefetch + pre-eviction
	L1              // chained-correlation-only prefetch, halved degree
	L2              // shrunken batches, pre-eviction off
	L3              // pure demand
	numLevels
)

func (l Level) String() string {
	if l < numLevels {
		return fmt.Sprintf("L%d", uint8(l))
	}
	return "L?"
}

// LevelByName is the inverse of Level.String.
func LevelByName(s string) (Level, bool) {
	for l := L0; l < numLevels; l++ {
		if l.String() == s {
			return l, true
		}
	}
	return L0, false
}

// Component identifies one scored subsystem.
type Component uint8

// Scored components.
const (
	Link       Component = iota // transfer failures, retries, breaker opens
	Prefetcher                  // waste, late hits, give-ups
	Pipeline                    // concurrent-pipeline stage restarts
	Migrator                    // fault-batch latency, injected stalls
	numComponents
)

func (c Component) String() string {
	switch c {
	case Link:
		return "link"
	case Prefetcher:
		return "prefetcher"
	case Pipeline:
		return "pipeline"
	case Migrator:
		return "migrator"
	}
	return "unknown"
}

// Default tuning. The virtual-time constants are sized against the engine's
// event scale (fault cycles are tens of microseconds, iterations are
// milliseconds): scores forget a failure burst within a few hundred
// microseconds, the ladder moves at most one level per dwell, and a fully
// degraded run walks back to L0 within roughly a millisecond of clean
// operation.
const (
	DefaultHalfLife      = int64(50_000)  // 50us score half-life
	DefaultUpThreshold   = 0.6            // worst score that escalates
	DefaultDownThreshold = 0.15           // worst score that allows recovery
	DefaultDwell         = int64(100_000) // 100us minimum between escalations
	DefaultProbeInterval = int64(250_000) // 250us between recovery probes
)

// Impulse weights: how hard one observation of each signal pushes its
// component's score toward 1. Scores are clamped to [0,1], so weights
// express "how many of these in one half-life mean trouble".
const (
	wTransferFail    = 0.30 // one failed transfer attempt
	wPrefetchRetry   = 0.10 // a retried prefetch attempt
	wPrefetchGiveUp  = 0.20 // a prefetch abandoned to demand faulting
	wPrefetchWaste   = 0.08 // a prefetched block evicted unused
	wLateHit         = 0.05 // a prefetch the GPU still stalled on
	wBreakerOpen     = 0.90 // the circuit breaker tripping
	wSlowFaultBatch  = 0.25 // a handler cycle far over its running mean
	wMigratorStall   = 0.30 // an injected/observed migration-thread stall
	wPipelineRestart = 0.50 // a stage goroutine panic-restart
	// wPressure scales the sampled memory-pressure gauge (0..1) into a
	// migrator impulse. Sampled once per half-life, a sustained gauge of p
	// holds the score near 2·wPressure·p, so full pressure (1.0) crosses
	// the default UpThreshold while moderate pressure (≤0.8) does not.
	wPressure = 0.35
)

// slowBatchFactor is how far over the running-mean duration a fault batch
// must be to count as a migrator-health impulse, and slowBatchMinSamples is
// how many batches establish the baseline first.
const (
	slowBatchFactor     = 4.0
	slowBatchMinSamples = 8
)

// Options tune a Controller. The zero value selects the defaults above.
type Options struct {
	// HalfLife is the EWMA score half-life in nanoseconds (on whatever
	// clock the owner feeds the controller).
	HalfLife int64
	// UpThreshold escalates the ladder when the worst component score
	// reaches it; DownThreshold permits recovery probes once the worst
	// score decays under it. Up must exceed Down (hysteresis); invalid
	// pairs fall back to the defaults.
	UpThreshold, DownThreshold float64
	// Dwell is the minimum nanoseconds between ladder moves in either
	// direction — the flap damper.
	Dwell int64
	// ProbeInterval is the minimum nanoseconds between recovery probes
	// (de-escalations); recovery walks down one level per probe.
	ProbeInterval int64
	// OnTransition, when set, is called (with the controller unlocked) for
	// every ladder transition — the live-monitoring hook the supervisor's
	// Prometheus export rides on.
	OnTransition func(Transition)
	// Pressure, when set, is a memory-pressure gauge in [0,1] (the
	// arbiter's EWMA-smoothed grant pressure). The controller samples it at
	// most once per half-life on its own clock and folds the reading into
	// the migrator score as a wPressure-weighted impulse, so a pressured
	// run sheds prefetch aggressiveness through the ordinary ladder gates
	// before the arbiter has to revoke or suspend anyone.
	Pressure func() float64
}

func (o Options) withDefaults() Options {
	if o.HalfLife <= 0 {
		o.HalfLife = DefaultHalfLife
	}
	if o.UpThreshold <= 0 || o.DownThreshold < 0 || o.UpThreshold <= o.DownThreshold {
		o.UpThreshold, o.DownThreshold = DefaultUpThreshold, DefaultDownThreshold
	}
	if o.Dwell <= 0 {
		o.Dwell = DefaultDwell
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	return o
}

// Transition is one ladder move.
type Transition struct {
	// At is the controller-clock timestamp (ns) of the move.
	At int64 `json:"at_ns"`
	// From and To are adjacent ladder levels — the controller never jumps.
	From Level `json:"-"`
	To   Level `json:"-"`
	// FromName/ToName are the JSON-friendly level names.
	FromName string `json:"from"`
	ToName   string `json:"to"`
	// Component is the subsystem whose score drove an escalation; for
	// recovery probes it is the (recovered) worst component.
	Component string `json:"component"`
	// Reason is a human-readable explanation.
	Reason string `json:"reason"`
}

// Report is the JSON-friendly end-of-run health summary carried on run
// results and supervisor outcomes.
type Report struct {
	// Level is the ladder level when the report was taken; a converged run
	// reports "L0".
	Level string `json:"level"`
	// MaxLevel is the highest rung the run ever reached — what marks a
	// completed run StatusDegraded when above L0.
	MaxLevel string `json:"max_level"`
	// Transitions counts ladder moves; TransitionLog lists them in order.
	Transitions   int          `json:"transitions"`
	TransitionLog []Transition `json:"transition_log,omitempty"`
	// Scores are the final (decayed) component scores; PeakScores the
	// per-component maxima observed.
	Scores     map[string]float64 `json:"scores,omitempty"`
	PeakScores map[string]float64 `json:"peak_scores,omitempty"`
	// Impulses counts degradation signals folded into the scores.
	Impulses int64 `json:"impulses"`
}

// MaxLevelValue parses Report.MaxLevel back into a Level (L0 when absent).
func (r *Report) MaxLevelValue() Level {
	if r == nil {
		return L0
	}
	l, _ := LevelByName(r.MaxLevel)
	return l
}

// Controller is the ladder state machine. Construct with NewController (or
// Fixed, for tests pinning a level); a nil *Controller is the monitoring-off
// mode and answers every query permissively.
type Controller struct {
	mu  sync.Mutex
	opt Options

	level, maxLevel Level
	lastMove        int64 // ts of the last ladder move
	lastProbe       int64 // ts of the last recovery probe
	frozen          bool  // Fixed(): never transitions

	scores [numComponents]float64
	peak   [numComponents]float64
	lastTS [numComponents]int64

	transitions []Transition
	impulses    int64

	// Running fault-batch latency baseline for slow-batch detection.
	batchMean float64
	batchN    int64

	// lastPressure throttles Options.Pressure sampling to once per
	// half-life.
	lastPressure int64

	// rec, when attached, receives a KindHealth event per transition and
	// per significant score movement, on TrackHealth.
	rec *obs.Recorder
	// scoreBucket throttles score-sample emission: one event per component
	// per 1/8th-of-scale bucket crossing.
	scoreBucket [numComponents]int
}

// NewController builds a controller at L0 with the given options.
func NewController(opt Options) *Controller {
	return &Controller{opt: opt.withDefaults()}
}

// Fixed returns a controller frozen at the given level: it scores signals
// and reports normally but never transitions. The ladder-equivalence tests
// use it to pin each rung.
func Fixed(l Level) *Controller {
	c := NewController(Options{})
	if l >= numLevels {
		l = L3
	}
	c.level, c.maxLevel, c.frozen = l, l, true
	return c
}

// SetObserver attaches the tracing recorder health events are emitted into.
func (c *Controller) SetObserver(rec *obs.Recorder) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rec = rec
	c.mu.Unlock()
}

// --- ladder gates (nil-safe, read-only) ------------------------------------

// Level returns the current rung (L0 for a nil controller).
func (c *Controller) Level() Level {
	if c == nil {
		return L0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.level
}

// MaxLevel returns the highest rung ever reached.
func (c *Controller) MaxLevel() Level {
	if c == nil {
		return L0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxLevel
}

// AllowPrefetch reports whether any prefetch work (queued-command takeover,
// background streaming) may run: false only at L3.
func (c *Controller) AllowPrefetch() bool { return c.Level() < L3 }

// AllowPreevict reports whether background pre-eviction may run: false from
// L2 up.
func (c *Controller) AllowPreevict() bool { return c.Level() < L2 }

// AllowPrefetchEnqueue reports whether the driver may enqueue new prefetch
// commands (the chain may keep learning regardless): false only at L3. This
// is the core.Driver fillQueue gate.
func (c *Controller) AllowPrefetchEnqueue() bool { return c.Level() < L3 }

// SpeculativeRequeue reports whether the driver may re-queue evicted
// protected blocks (prediction-driven speculation beyond the chain): false
// from L1 up — L1 is chained-correlation-only prefetching.
func (c *Controller) SpeculativeRequeue() bool { return c.Level() < L1 }

// DegreeCap bounds the effective prefetch chaining degree for the current
// level: full at L0, halved at L1, floored to 1 at L2, zero at L3.
func (c *Controller) DegreeCap(base int) int {
	switch c.Level() {
	case L0:
		return base
	case L1:
		return max(1, base/2)
	case L2:
		return 1
	default:
		return 0
	}
}

// FaultBatchCap bounds how many UM blocks one fault-handling cycle covers:
// unlimited through L1, halved at L2, quartered at L3 — sick-substrate runs
// take smaller bites so each handler cycle stays short and interruptible.
func (c *Controller) FaultBatchCap(base int) int {
	switch c.Level() {
	case L0, L1:
		return base
	case L2:
		return max(1, base/2)
	default:
		return max(1, base/4)
	}
}

// UseFallbackEviction reports whether victim selection should ignore the
// driver's protected-set predictions and use plain LRM: true at L3, where
// predictions are unhonored speculation.
func (c *Controller) UseFallbackEviction() bool { return c.Level() >= L3 }

// --- signal inputs ----------------------------------------------------------

// ObserveTransferFailure folds one failed prefetch-transfer attempt.
func (c *Controller) ObserveTransferFailure(ts int64) { c.impulse(ts, Link, wTransferFail) }

// ObserveTransferSuccess records a delivered transfer: no impulse, but the
// decay clock advances and the ladder is re-evaluated (this is how recovery
// probes fire during clean operation).
func (c *Controller) ObserveTransferSuccess(ts int64) { c.Tick(ts) }

// ObservePrefetchRetry folds one prefetch retry attempt.
func (c *Controller) ObservePrefetchRetry(ts int64) { c.impulse(ts, Link, wPrefetchRetry) }

// ObservePrefetchGiveUp folds one prefetch abandoned to demand faulting.
func (c *Controller) ObservePrefetchGiveUp(ts int64) { c.impulse(ts, Prefetcher, wPrefetchGiveUp) }

// ObservePrefetchWaste folds one prefetched-but-never-used eviction.
func (c *Controller) ObservePrefetchWaste(ts int64) { c.impulse(ts, Prefetcher, wPrefetchWaste) }

// ObserveLateHit folds one prefetch hit the GPU still had to stall on
// (negative lead time).
func (c *Controller) ObserveLateHit(ts int64) { c.impulse(ts, Prefetcher, wLateHit) }

// ObserveBreaker folds a circuit-breaker transition: an opening is a severe
// link signal; other transitions merely advance the clock.
func (c *Controller) ObserveBreaker(ts int64, from, to string) {
	if c == nil {
		return
	}
	if to == "open" {
		c.impulse(ts, Link, wBreakerOpen)
		return
	}
	c.Tick(ts)
}

// ObserveFaultBatch folds one fault-handling cycle's latency: cycles far
// over the running mean are a migrator-health impulse.
func (c *Controller) ObserveFaultBatch(ts, durNs int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	slow := false
	if c.batchN >= slowBatchMinSamples && float64(durNs) > slowBatchFactor*c.batchMean {
		slow = true
	}
	// Running mean over all batches (slow ones included, so a persistently
	// slow handler raises its own baseline instead of alarming forever).
	c.batchN++
	c.batchMean += (float64(durNs) - c.batchMean) / float64(c.batchN)
	c.mu.Unlock()
	if slow {
		c.impulse(ts, Migrator, wSlowFaultBatch)
	} else {
		c.Tick(ts)
	}
}

// ObserveMigratorStall folds one migration-thread stall.
func (c *Controller) ObserveMigratorStall(ts, durNs int64) { c.impulse(ts, Migrator, wMigratorStall) }

// ObservePipelineRestart folds one panic-recovered stage restart.
func (c *Controller) ObservePipelineRestart(ts int64) { c.impulse(ts, Pipeline, wPipelineRestart) }

// Tick advances the controller's clock without an impulse: scores decay and
// the ladder is re-evaluated (escalation on stale-but-high scores, recovery
// probes on decayed ones). The engine calls it at kernel boundaries.
func (c *Controller) Tick(ts int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.decayAll(ts)
	c.samplePressureLocked(ts)
	t := c.stepLocked(ts)
	c.mu.Unlock()
	c.fire(t)
}

// impulse folds one weighted degradation signal and re-evaluates the ladder.
func (c *Controller) impulse(ts int64, comp Component, w float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.decayAll(ts)
	c.samplePressureLocked(ts)
	c.addLocked(ts, comp, w)
	t := c.stepLocked(ts)
	c.mu.Unlock()
	c.fire(t)
}

// addLocked folds one weighted impulse into a component score; caller holds
// mu and has already decayed to ts.
func (c *Controller) addLocked(ts int64, comp Component, w float64) {
	c.impulses++
	s := c.scores[comp] + w
	if s > 1 {
		s = 1
	}
	c.scores[comp] = s
	if s > c.peak[comp] {
		c.peak[comp] = s
	}
	c.emitScoreLocked(ts, comp)
}

// samplePressureLocked reads the memory-pressure gauge at most once per
// half-life and folds it into the migrator score; caller holds mu. The
// gauge is called under the lock and must not call back into the
// controller.
func (c *Controller) samplePressureLocked(ts int64) {
	if c.opt.Pressure == nil || ts-c.lastPressure < c.opt.HalfLife {
		return
	}
	c.lastPressure = ts
	p := c.opt.Pressure()
	if p <= 0 {
		return
	}
	if p > 1 {
		p = 1
	}
	c.addLocked(ts, Migrator, wPressure*p)
}

// decayAll decays every component score to ts. Timestamps may regress
// (the engine occasionally observes an event whose completion time precedes
// the current clock); decay simply does not run backwards.
func (c *Controller) decayAll(ts int64) {
	for i := range c.scores {
		last := c.lastTS[i]
		if ts > last {
			if last != 0 || c.scores[i] != 0 {
				dt := float64(ts - last)
				c.scores[i] *= math.Exp2(-dt / float64(c.opt.HalfLife))
			}
			c.lastTS[i] = ts
		}
	}
}

// worst returns the highest component score and its component.
func (c *Controller) worst() (float64, Component) {
	w, wc := c.scores[0], Component(0)
	for i := 1; i < int(numComponents); i++ {
		if c.scores[i] > w {
			w, wc = c.scores[i], Component(i)
		}
	}
	return w, wc
}

// stepLocked evaluates the ladder; caller holds mu. Returns a non-zero
// transition to fire (unlocked) when a move happened.
func (c *Controller) stepLocked(ts int64) *Transition {
	if c.frozen {
		return nil
	}
	score, comp := c.worst()
	switch {
	case score >= c.opt.UpThreshold && c.level < L3 && ts-c.lastMove >= c.opt.Dwell:
		return c.moveLocked(ts, c.level+1, comp,
			fmt.Sprintf("%s score %.2f over %.2f", comp, score, c.opt.UpThreshold))
	case score <= c.opt.DownThreshold && c.level > L0 &&
		ts-c.lastMove >= c.opt.Dwell && ts-c.lastProbe >= c.opt.ProbeInterval:
		c.lastProbe = ts
		return c.moveLocked(ts, c.level-1, comp,
			fmt.Sprintf("recovery probe: worst score %.2f under %.2f", score, c.opt.DownThreshold))
	}
	return nil
}

// moveLocked performs one ladder move; caller holds mu.
func (c *Controller) moveLocked(ts int64, to Level, comp Component, reason string) *Transition {
	t := Transition{
		At: ts, From: c.level, To: to,
		FromName: c.level.String(), ToName: to.String(),
		Component: comp.String(), Reason: reason,
	}
	c.level = to
	if to > c.maxLevel {
		c.maxLevel = to
	}
	c.lastMove = ts
	c.transitions = append(c.transitions, t)
	if c.rec != nil {
		c.rec.Instant(obs.KindHealth, obs.TrackHealth, ts,
			t.FromName+"->"+t.ToName, 0, int64(to), int64(comp))
	}
	return &t
}

// emitScoreLocked emits a score sample when the component's score crossed
// into a new 1/8th bucket; caller holds mu. Bucketing bounds event volume
// to a handful per component per burst.
func (c *Controller) emitScoreLocked(ts int64, comp Component) {
	if c.rec == nil {
		return
	}
	b := int(c.scores[comp] * 8)
	if b == c.scoreBucket[comp] {
		return
	}
	c.scoreBucket[comp] = b
	c.rec.Instant(obs.KindHealth, obs.TrackHealth, ts,
		comp.String(), 0, int64(c.scores[comp]*1e6), int64(comp))
}

// fire invokes the transition callback outside the lock.
func (c *Controller) fire(t *Transition) {
	if t != nil && c.opt.OnTransition != nil {
		c.opt.OnTransition(*t)
	}
}

// Transitions returns the ladder moves so far, in order.
func (c *Controller) Transitions() []Transition {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Transition, len(c.transitions))
	copy(out, c.transitions)
	return out
}

// Report snapshots the controller into the JSON-friendly run summary; nil
// for a nil controller.
func (c *Controller) Report() *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{
		Level:       c.level.String(),
		MaxLevel:    c.maxLevel.String(),
		Transitions: len(c.transitions),
		Impulses:    c.impulses,
		Scores:      map[string]float64{},
		PeakScores:  map[string]float64{},
	}
	r.TransitionLog = make([]Transition, len(c.transitions))
	copy(r.TransitionLog, c.transitions)
	for i := Component(0); i < numComponents; i++ {
		r.Scores[i.String()] = c.scores[i]
		if c.peak[i] > 0 {
			r.PeakScores[i.String()] = c.peak[i]
		}
	}
	return r
}
