package correlation

import (
	"testing"
	"testing/quick"

	"deepum/internal/um"
)

func TestExecTableRecordPredict(t *testing.T) {
	et := NewExecTable()
	hist := [3]ExecID{7, 9, 92}
	et.Record(0, hist, 75)
	if got := et.Predict(0, hist); got != 75 {
		t.Fatalf("Predict = %d, want 75", got)
	}
	if got := et.Predict(1, hist); got != NoExec {
		t.Fatalf("unknown entry Predict = %d, want NoExec", got)
	}
	// Different history for the same kernel adds another record.
	hist2 := [3]ExecID{1, 2, 3}
	et.Record(0, hist2, 42)
	if got := et.Predict(0, hist2); got != 42 {
		t.Fatalf("Predict with hist2 = %d, want 42", got)
	}
	if got := et.Predict(0, hist); got != 75 {
		t.Fatalf("Predict with hist = %d, want 75", got)
	}
	if et.Records() != 2 || et.Entries() != 1 {
		t.Fatalf("records=%d entries=%d", et.Records(), et.Entries())
	}
}

func TestExecTableMRUDedup(t *testing.T) {
	et := NewExecTable()
	h := [3]ExecID{1, 2, 3}
	et.Record(5, h, 10)
	et.Record(5, [3]ExecID{4, 5, 6}, 11)
	et.Record(5, h, 10) // duplicate: moves to front, no new record
	if et.Records() != 2 {
		t.Fatalf("records = %d, want 2 (dedup)", et.Records())
	}
	// Unmatched history falls back to the MRU record.
	if got := et.Predict(5, [3]ExecID{99, 98, 97}); got != 10 {
		t.Fatalf("MRU fallback = %d, want 10", got)
	}
}

func TestExecTableSuffixMatch(t *testing.T) {
	et := NewExecTable()
	et.Record(5, [3]ExecID{1, 2, 3}, 10)
	et.Record(5, [3]ExecID{9, 2, 3}, 20)
	// Exact match wins over suffix match regardless of MRU order.
	if got := et.Predict(5, [3]ExecID{1, 2, 3}); got != 10 {
		t.Fatalf("exact match = %d, want 10", got)
	}
	// Only the last two match: first record in MRU order with that suffix.
	if got := et.Predict(5, [3]ExecID{7, 2, 3}); got != 20 {
		t.Fatalf("suffix match = %d, want 20 (MRU)", got)
	}
}

func TestExecTableSizeBytes(t *testing.T) {
	et := NewExecTable()
	if et.SizeBytes() != 0 {
		t.Fatalf("empty table size = %d", et.SizeBytes())
	}
	et.Record(0, [3]ExecID{1, 2, 3}, 4)
	if et.SizeBytes() <= 0 {
		t.Fatal("non-empty table must have positive size")
	}
}

func TestBlockTableRecordLookup(t *testing.T) {
	bt := NewBlockTable(DefaultBlockTableConfig())
	// Miss sequence a, b, c: b is successor of a, c of b.
	bt.RecordMiss(10)
	bt.RecordMiss(20)
	bt.RecordMiss(30)
	if s := bt.Successors(10); len(s) != 1 || s[0] != 20 {
		t.Fatalf("succ(10) = %v, want [20]", s)
	}
	if s := bt.Successors(20); len(s) != 1 || s[0] != 30 {
		t.Fatalf("succ(20) = %v, want [30]", s)
	}
	if bt.Start != 10 || bt.End != 30 {
		t.Fatalf("start=%d end=%d, want 10/30", bt.Start, bt.End)
	}
	if bt.Successors(99) != nil {
		t.Fatal("unknown block must have no successors")
	}
}

func TestBlockTableMRUSuccessors(t *testing.T) {
	cfg := DefaultBlockTableConfig()
	cfg.NumSuccs = 2
	bt := NewBlockTable(cfg)
	bt.RecordMiss(1)
	bt.RecordMiss(2) // 1 -> 2
	bt.ResetCursor()
	bt.RecordMiss(1)
	bt.RecordMiss(3) // 1 -> 3 (MRU)
	if s := bt.Successors(1); len(s) != 2 || s[0] != 3 || s[1] != 2 {
		t.Fatalf("succ(1) = %v, want [3 2]", s)
	}
	bt.ResetCursor()
	bt.RecordMiss(1)
	bt.RecordMiss(4) // 1 -> 4 evicts 2 (NumSuccs=2)
	if s := bt.Successors(1); len(s) != 2 || s[0] != 4 || s[1] != 3 {
		t.Fatalf("succ(1) = %v, want [4 3]", s)
	}
	bt.ResetCursor()
	bt.RecordMiss(1)
	bt.RecordMiss(3) // re-promotion, no growth
	if s := bt.Successors(1); len(s) != 2 || s[0] != 3 || s[1] != 4 {
		t.Fatalf("succ(1) = %v, want [3 4]", s)
	}
}

func TestBlockTableSelfSuccessorSkipped(t *testing.T) {
	bt := NewBlockTable(DefaultBlockTableConfig())
	bt.RecordMiss(5)
	bt.RecordMiss(5) // repeated miss on the same block: no self edge
	if s := bt.Successors(5); len(s) != 0 {
		t.Fatalf("self successor recorded: %v", s)
	}
}

func TestBlockTableAssociativityEviction(t *testing.T) {
	cfg := BlockTableConfig{NumRows: 1, Assoc: 2, NumSuccs: 4, NumLevels: 1}
	bt := NewBlockTable(cfg)
	// All blocks map to row 0. Create entries for 1 and 2.
	bt.RecordMiss(1)
	bt.RecordMiss(2) // entry for 1
	bt.ResetCursor()
	bt.RecordMiss(2)
	bt.RecordMiss(3) // entry for 2
	if bt.Entries() != 2 {
		t.Fatalf("entries = %d, want 2", bt.Entries())
	}
	bt.ResetCursor()
	bt.RecordMiss(3)
	bt.RecordMiss(4) // entry for 3 evicts the LRU way (entry for 1)
	if bt.Entries() != 2 {
		t.Fatalf("entries = %d, want 2 (assoc cap)", bt.Entries())
	}
	if bt.Successors(1) != nil {
		t.Fatal("LRU way should have been evicted")
	}
	if s := bt.Successors(3); len(s) != 1 || s[0] != 4 {
		t.Fatalf("succ(3) = %v, want [4]", s)
	}
}

func TestBlockTableTwoLevels(t *testing.T) {
	cfg := BlockTableConfig{NumRows: 64, Assoc: 2, NumSuccs: 4, NumLevels: 2}
	bt := NewBlockTable(cfg)
	bt.RecordMiss(1)
	bt.RecordMiss(2)
	bt.RecordMiss(3)
	// Level 0: 1->2, 2->3. Level 1: 1->3 (3 follows 1 via 2), like Figure 5.
	if s := bt.SuccessorsAt(1, 0); len(s) != 1 || s[0] != 2 {
		t.Fatalf("L0 succ(1) = %v", s)
	}
	if s := bt.SuccessorsAt(1, 1); len(s) != 1 || s[0] != 3 {
		t.Fatalf("L1 succ(1) = %v", s)
	}
	if s := bt.SuccessorsAt(1, 5); s != nil {
		t.Fatalf("out-of-range level = %v", s)
	}
}

func TestBlockTableConfigClamp(t *testing.T) {
	bt := NewBlockTable(BlockTableConfig{})
	cfg := bt.Config()
	if cfg.NumRows != 1 || cfg.Assoc != 1 || cfg.NumSuccs != 1 || cfg.NumLevels != 1 {
		t.Fatalf("zero config not clamped: %+v", cfg)
	}
}

func TestBlockTableSizeBytes(t *testing.T) {
	cfg := BlockTableConfig{NumRows: 2048, Assoc: 2, NumSuccs: 4, NumLevels: 1}
	bt := NewBlockTable(cfg)
	want := int64(2048)*2*(8+4*8) + 64
	if got := bt.SizeBytes(); got != want {
		t.Fatalf("size = %d, want %d", got, want)
	}
}

func TestTablesLazyAllocation(t *testing.T) {
	ts := NewTables(DefaultBlockTableConfig())
	if ts.HasBlock(3) {
		t.Fatal("table should not exist yet")
	}
	if ts.NumBlockTables() != 0 {
		t.Fatal("no tables should be allocated")
	}
	ts.Block(3).RecordMiss(1)
	if !ts.HasBlock(3) || ts.NumBlockTables() != 1 {
		t.Fatal("table not allocated on first use")
	}
	base := NewBlockTable(DefaultBlockTableConfig()).SizeBytes()
	if got := ts.SizeBytes(); got < base {
		t.Fatalf("SizeBytes = %d, want >= %d", got, base)
	}
	ids := ts.ExecIDs()
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("ExecIDs = %v", ids)
	}
}

// buildTwoKernelTables constructs the Figure 7 scenario: kernel 0 faults on
// blocks a,b,q (End q, Start a), kernel 1 faults on k,g,u (Start k, End u),
// and the execution table knows 0 -> 1.
func buildTwoKernelTables() *Tables {
	ts := NewTables(DefaultBlockTableConfig())
	h := [3]ExecID{NoExec, NoExec, NoExec}
	ts.Exec.Record(0, h, 1)

	bt0 := ts.Block(0)
	bt0.RecordMiss(100) // a
	bt0.RecordMiss(101) // b
	bt0.RecordMiss(102) // q = End
	bt1 := ts.Block(1)
	bt1.RecordMiss(200) // k
	bt1.RecordMiss(201) // g
	bt1.RecordMiss(202) // u = End
	return ts
}

func TestChainCursorWithinKernel(t *testing.T) {
	ts := buildTwoKernelTables()
	h := [3]ExecID{NoExec, NoExec, NoExec}
	c := ts.NewChainCursor(0, h, 100)
	b, e := c.Next()
	if b != 101 || e != 0 {
		t.Fatalf("first = (%d,%d), want (101,0)", b, e)
	}
	b, e = c.Next()
	if b != 102 || e != 0 {
		t.Fatalf("second = (%d,%d), want (102,0)", b, e)
	}
}

func TestChainCursorCrossesKernelBoundary(t *testing.T) {
	ts := buildTwoKernelTables()
	h := [3]ExecID{NoExec, NoExec, NoExec}
	c := ts.NewChainCursor(0, h, 100)
	var got []um.BlockID
	var execs []ExecID
	for {
		b, e := c.Next()
		if b == um.NoBlock {
			break
		}
		got = append(got, b)
		execs = append(execs, e)
	}
	// 101, 102 for kernel 0, then Start 200 and chain 201, 202 for kernel 1,
	// then prediction for kernel 1 fails (no record) and the chain dies.
	want := []um.BlockID{101, 102, 200, 201, 202}
	if len(got) != len(want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain = %v, want %v", got, want)
		}
	}
	if execs[2] != 1 || execs[4] != 1 {
		t.Fatalf("exec ids = %v", execs)
	}
	if c.Kernels() != 1 {
		t.Fatalf("kernel transitions = %d, want 1", c.Kernels())
	}
}

func TestChainCursorDeadWithoutPrediction(t *testing.T) {
	ts := NewTables(DefaultBlockTableConfig())
	ts.Block(0).RecordMiss(1) // only one miss: no successors
	h := [3]ExecID{NoExec, NoExec, NoExec}
	c := ts.NewChainCursor(0, h, 1)
	if b, _ := c.Next(); b != um.NoBlock {
		t.Fatalf("expected dead chain, got %d", b)
	}
	// Exhausted cursor stays exhausted.
	if b, _ := c.Next(); b != um.NoBlock {
		t.Fatalf("dead cursor revived: %d", b)
	}
}

func TestChainCursorNoDuplicateEmission(t *testing.T) {
	ts := NewTables(DefaultBlockTableConfig())
	bt := ts.Block(0)
	// Build a cycle: 1 -> 2 -> 3 -> 1.
	bt.RecordMiss(1)
	bt.RecordMiss(2)
	bt.RecordMiss(3)
	bt.RecordMiss(1)
	h := [3]ExecID{NoExec, NoExec, NoExec}
	c := ts.NewChainCursor(0, h, 1)
	seen := map[um.BlockID]bool{}
	for i := 0; i < 10; i++ {
		b, _ := c.Next()
		if b == um.NoBlock {
			break
		}
		if seen[b] {
			t.Fatalf("block %d emitted twice", b)
		}
		seen[b] = true
	}
	if len(seen) == 0 || len(seen) > 3 {
		t.Fatalf("emitted %d blocks from a 3-cycle", len(seen))
	}
}

// TestBlockTableQuickNoLoss: every recorded pair (pred, succ) with a live
// entry is retrievable while within associativity and successor limits.
func TestBlockTableQuickNoLoss(t *testing.T) {
	f := func(seq []uint8) bool {
		cfg := BlockTableConfig{NumRows: 4096, Assoc: 8, NumSuccs: 16, NumLevels: 1}
		bt := NewBlockTable(cfg)
		var prev um.BlockID = um.NoBlock
		pairs := map[[2]um.BlockID]bool{}
		for _, s := range seq {
			b := um.BlockID(s % 32)
			if prev != um.NoBlock && prev != b {
				pairs[[2]um.BlockID{prev, b}] = true
			}
			bt.RecordMiss(b)
			prev = b
		}
		// With 32 distinct blocks, 4096 rows and assoc 8, collisions cannot
		// evict, and 16 successor slots cannot overflow with <=31 distinct
		// successors only when sequence is short; bound the check.
		if len(seq) > 16 {
			return true
		}
		for p := range pairs {
			found := false
			for _, s := range bt.Successors(p[0]) {
				if s == p[1] {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
