package correlation

import (
	"bytes"
	"hash/crc32"
	"strings"
	"testing"

	"deepum/internal/um"
)

// buildWarmTables populates a table set the way a few training iterations
// would: execution records with several histories per kernel (exercising MRU
// order and dedup), multi-level block tables with successor promotion, and a
// cursor reset pending its next Start — every piece of state the encoding
// must carry.
func buildWarmTables() *Tables {
	cfg := BlockTableConfig{NumRows: 64, Assoc: 2, NumSuccs: 4, NumLevels: 2}
	ts := NewTables(cfg)
	ts.Exec.Record(0, [3]ExecID{NoExec, NoExec, NoExec}, 1)
	ts.Exec.Record(1, [3]ExecID{NoExec, NoExec, 0}, 2)
	ts.Exec.Record(1, [3]ExecID{7, 8, 9}, 3)
	ts.Exec.Record(1, [3]ExecID{NoExec, NoExec, 0}, 2) // dedup: MRU re-promotion

	bt0 := ts.Block(0)
	for _, b := range []um.BlockID{100, 101, 102, 103} {
		bt0.RecordMiss(b)
	}
	bt0.ResetCursor()
	for _, b := range []um.BlockID{100, 110, 102} { // 100->110 becomes MRU over 100->101
		bt0.RecordMiss(b)
	}
	bt1 := ts.Block(1)
	for _, b := range []um.BlockID{200, 201, 202} {
		bt1.RecordMiss(b)
	}
	bt1.ResetCursor() // leaves the cursor pending its next Start
	return ts
}

// TestCheckpointRoundtripLossless: Write -> Read reproduces the tables
// byte-for-byte — re-encoding the restored set yields the identical stream,
// which (because the encoding is deterministic and covers MRU order, the
// miss-history cursor, and the pending-Start flag) proves nothing was lost.
func TestCheckpointRoundtripLossless(t *testing.T) {
	ts := buildWarmTables()
	var a bytes.Buffer
	if err := WriteCheckpoint(&a, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != ts.Config() {
		t.Fatalf("config changed across roundtrip: %+v vs %+v", got.Config(), ts.Config())
	}
	var b bytes.Buffer
	if err := WriteCheckpoint(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("re-encoded checkpoint differs: %d vs %d bytes", a.Len(), b.Len())
	}
	if got.Exec.Records() != ts.Exec.Records() || got.Exec.Entries() != ts.Exec.Entries() {
		t.Fatalf("exec table shape changed: %d/%d records, %d/%d entries",
			got.Exec.Records(), ts.Exec.Records(), got.Exec.Entries(), ts.Exec.Entries())
	}
}

// TestCheckpointChainEquivalence: the restored tables drive the chain cursor
// to exactly the prefetch sequence the originals would — the property resume
// actually needs.
func TestCheckpointChainEquivalence(t *testing.T) {
	ts := buildWarmTables()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hist := [3]ExecID{NoExec, NoExec, NoExec}
	for _, seed := range []struct {
		exec ExecID
		blk  um.BlockID
	}{{0, 100}, {0, 102}, {1, 200}} {
		oc := ts.NewChainCursor(seed.exec, hist, seed.blk)
		rc := got.NewChainCursor(seed.exec, hist, seed.blk)
		for step := 0; step < 32; step++ {
			ob, oe := oc.Next()
			rb, re := rc.Next()
			if ob != rb || oe != re {
				t.Fatalf("chain from (%d,%d) diverges at step %d: original (%d,%d), restored (%d,%d)",
					seed.exec, seed.blk, step, ob, oe, rb, re)
			}
			if ob == um.NoBlock {
				break
			}
		}
	}
}

// TestCheckpointDeterministic: encoding the same tables twice yields
// identical bytes (maps are serialized in sorted order).
func TestCheckpointDeterministic(t *testing.T) {
	ts := buildWarmTables()
	var a, b bytes.Buffer
	if err := WriteCheckpoint(&a, ts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(&b, ts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same tables encoded to different bytes")
	}
}

func TestCheckpointEmptyTables(t *testing.T) {
	ts := NewTables(DefaultBlockTableConfig())
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumBlockTables() != 0 || got.Exec.Entries() != 0 {
		t.Fatalf("empty tables came back non-empty: %d block tables, %d exec entries",
			got.NumBlockTables(), got.Exec.Entries())
	}
	if WriteCheckpoint(&buf, nil) == nil {
		t.Fatal("nil tables accepted")
	}
}

// reseal recomputes the trailing CRC over a tampered body so corruption
// deeper than the checksum can be tested in isolation.
func reseal(body []byte) []byte {
	out := append([]byte(nil), body...)
	sum := crc32.ChecksumIEEE(out)
	return append(out, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

// TestCheckpointRejectsCorruption: every layer of the envelope is verified —
// truncation, bit flips (CRC), wrong magic, wrong version, trailing garbage —
// with a distinct error, and none of them panics.
func TestCheckpointRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, buildWarmTables()); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	body := stream[:len(stream)-4]

	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "truncated"},
		{"short", stream[:10], "truncated"},
		{"bit-flip", flipByte(stream, len(stream)/2), "crc mismatch"},
		{"crc-zeroed", append(append([]byte(nil), body...), 0, 0, 0, 0), "crc mismatch"},
		{"bad-magic", reseal(flipByte(body, 0)), "bad magic"},
		{"bad-version", reseal(flipByte(body, 8)), "unsupported checkpoint version"},
		{"trailing-garbage", reseal(append(append([]byte(nil), body...), 0xAA)), ""},
		{"truncated-payload", reseal(body[:len(body)-3]), ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ReadCheckpoint(bytes.NewReader(c.data))
			if err == nil {
				t.Fatalf("corrupt checkpoint accepted (tables: %v)", got != nil)
			}
			if c.wantSub != "" && !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}
