package correlation

import (
	"deepum/internal/um"
)

// BlockTableConfig holds the tunable parameters of a UM-block correlation
// table, the subject of the §6.3 sensitivity analysis (Table 6 / Figure 12).
type BlockTableConfig struct {
	// NumRows is the number of sets in the table.
	NumRows int
	// Assoc is the set associativity: how many distinct UM blocks can map to
	// the same row before replacement.
	Assoc int
	// NumSuccs is the number of immediate successor blocks kept per entry,
	// MRU-ordered.
	NumSuccs int
	// NumLevels is the number of predecessor levels updated per miss. DeepUM
	// uses a single level because the prefetching thread does chaining
	// (§4.2); the classic pair-based prefetcher of §4.1 uses two.
	NumLevels int
}

// DefaultBlockTableConfig is the paper's best configuration (Config9 of
// Table 6, used for all headline results): 2048 rows, 2-way, 4 successors,
// one level.
func DefaultBlockTableConfig() BlockTableConfig {
	return BlockTableConfig{NumRows: 2048, Assoc: 2, NumSuccs: 4, NumLevels: 1}
}

// entry is one way of a set: a tag block and its successor lists.
type entry struct {
	tag   um.BlockID
	valid bool
	// succs[level] holds up to NumSuccs successor blocks, MRU first.
	succs [][]um.BlockID
}

// BlockTable records the history of UM-block accesses within the kernel of
// one execution ID (Figure 7). Besides the set-associative correlation
// array it keeps the Start block (first faulted block after the kernel
// began) and the End block (last faulted block before the next kernel), the
// anchors of cross-kernel chaining.
type BlockTable struct {
	cfg  BlockTableConfig
	sets [][]entry // sets[row][way], way 0 = MRU

	// Start is the first faulted UM block observed right after the
	// transition into this execution ID.
	Start um.BlockID
	// End is the last faulted UM block observed right before the transition
	// out of this execution ID.
	End um.BlockID

	// last[level] are the most recent misses: last[0] is the previous miss,
	// last[1] the one before it, and so on (Last/SecondLast of §4.1).
	last []um.BlockID
	// pendingStart marks that the next miss is the first of a new kernel
	// invocation and should re-capture Start (§4.2: "Start UM block is the
	// UM block where the first faulted page resides that occurred right
	// after the execution ID transition").
	pendingStart bool
}

// NewBlockTable returns an empty table with the given configuration.
// Invalid configuration fields are raised to 1.
func NewBlockTable(cfg BlockTableConfig) *BlockTable {
	if cfg.NumRows < 1 {
		cfg.NumRows = 1
	}
	if cfg.Assoc < 1 {
		cfg.Assoc = 1
	}
	if cfg.NumSuccs < 1 {
		cfg.NumSuccs = 1
	}
	if cfg.NumLevels < 1 {
		cfg.NumLevels = 1
	}
	t := &BlockTable{
		cfg:          cfg,
		sets:         make([][]entry, cfg.NumRows),
		Start:        um.NoBlock,
		End:          um.NoBlock,
		last:         make([]um.BlockID, cfg.NumLevels),
		pendingStart: true,
	}
	for i := range t.last {
		t.last[i] = um.NoBlock
	}
	return t
}

// Config returns the table's configuration.
func (t *BlockTable) Config() BlockTableConfig { return t.cfg }

func (t *BlockTable) row(b um.BlockID) int {
	// Multiplicative hash over the block number; block numbers of one model
	// are dense, so a simple mix spreads them across rows.
	x := uint64(b) * 0x9E3779B97F4A7C15
	return int(x % uint64(t.cfg.NumRows))
}

// find returns the entry for b, optionally allocating (and replacing the
// LRU way) when insert is set.
func (t *BlockTable) find(b um.BlockID, insert bool) *entry {
	row := t.row(b)
	set := t.sets[row]
	for i := range set {
		if set[i].valid && set[i].tag == b {
			// Move to front: MRU within the set.
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			return &set[0]
		}
	}
	if !insert {
		return nil
	}
	e := entry{tag: b, valid: true, succs: make([][]um.BlockID, t.cfg.NumLevels)}
	if len(set) < t.cfg.Assoc {
		set = append([]entry{e}, set...)
	} else {
		copy(set[1:], set[:len(set)-1]) // drop LRU way
		set[0] = e
	}
	t.sets[row] = set
	return &t.sets[row][0]
}

// RecordMiss feeds one faulted UM block into the table: b becomes the
// level-l successor of the l-th previous miss for every level, MRU-ordered
// and deduplicated, exactly like the pair-based scheme of Figure 5 restricted
// to the configured number of levels.
func (t *BlockTable) RecordMiss(b um.BlockID) {
	for level := 0; level < t.cfg.NumLevels; level++ {
		pred := t.last[level]
		if pred == um.NoBlock || pred == b {
			continue
		}
		e := t.find(pred, true)
		e.succs[level] = mruInsert(e.succs[level], b, t.cfg.NumSuccs)
	}
	// Shift the miss history.
	copy(t.last[1:], t.last[:len(t.last)-1])
	t.last[0] = b
	if t.pendingStart {
		t.Start = b
		t.pendingStart = false
	}
	t.End = b
}

// mruInsert puts b at the front of list, removing an existing occurrence and
// truncating to limit.
func mruInsert(list []um.BlockID, b um.BlockID, limit int) []um.BlockID {
	for i, x := range list {
		if x == b {
			copy(list[1:i+1], list[:i])
			list[0] = b
			return list
		}
	}
	list = append(list, um.NoBlock)
	copy(list[1:], list[:len(list)-1])
	list[0] = b
	if len(list) > limit {
		list = list[:limit]
	}
	return list
}

// Successors returns the level-0 successor blocks of b, MRU first, or nil if
// b has no entry. The returned slice is shared; callers must not modify it.
func (t *BlockTable) Successors(b um.BlockID) []um.BlockID {
	e := t.find(b, false)
	if e == nil {
		return nil
	}
	return e.succs[0]
}

// SuccessorsAt returns the successor list at the given level.
func (t *BlockTable) SuccessorsAt(b um.BlockID, level int) []um.BlockID {
	e := t.find(b, false)
	if e == nil || level >= len(e.succs) {
		return nil
	}
	return e.succs[level]
}

// ResetCursor clears the miss-history pointers at a kernel-invocation
// boundary so that the first miss of the next invocation does not correlate
// with the last miss of an unrelated kernel. Start/End survive: they anchor
// chaining.
func (t *BlockTable) ResetCursor() {
	for i := range t.last {
		t.last[i] = um.NoBlock
	}
	t.pendingStart = true
}

// Entries returns the number of valid entries across all sets.
func (t *BlockTable) Entries() int {
	n := 0
	for _, set := range t.sets {
		n += len(set)
	}
	return n
}

// SizeBytes estimates the memory footprint of the table as allocated by the
// DeepUM driver: the full NumRows x Assoc array of entries, each holding a
// tag and NumLevels x NumSuccs successor slots, plus the table header. This
// matches the paper's Table 4 accounting, where a table is allocated in full
// when a new execution ID appears.
func (t *BlockTable) SizeBytes() int64 {
	entryBytes := int64(8 + t.cfg.NumLevels*t.cfg.NumSuccs*8)
	return int64(t.cfg.NumRows)*int64(t.cfg.Assoc)*entryBytes + 64
}
