package correlation

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// envelope wraps a raw payload in a syntactically valid checkpoint frame
// (magic + version + payload + correct CRC). This is what a malicious or
// corrupted-but-CRC-valid stream looks like: the checksum passes, so every
// defense must live in the payload decoder itself.
func envelope(payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	writeU32(&buf, CheckpointVersion)
	buf.Write(payload)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// u32le / i32le build little-endian fields for crafted payloads.
func u32le(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

// envelopeV2 builds a CRC-valid current-format frame with an arbitrary
// (possibly hostile) name-length field, name, and payload.
func envelopeV2(nameLen uint32, name string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	writeU32(&buf, EnvelopeVersion)
	writeU32(&buf, nameLen)
	buf.WriteString(name)
	buf.Write(payload)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// FuzzReadCheckpoint feeds ReadCheckpoint adversarial streams. Whatever the
// input — truncated, bit-flipped, or CRC-valid with hostile length fields —
// the decoder must either return working tables or an error: never panic,
// and never size an allocation from an unvalidated count (a hostile count
// claiming more elements than the stream has bytes must be rejected before
// the make()).
func FuzzReadCheckpoint(f *testing.F) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, buildWarmTables()); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DEEPUMCK"))
	f.Add(valid[:len(valid)/2])   // truncated mid-payload
	f.Add(valid[:len(valid)-1])   // truncated CRC
	flipped := bytes.Clone(valid) // bit flip in the payload
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	// CRC-valid hostile payloads: the length fields lie.
	f.Add(envelope(nil))                // empty payload: config truncated
	f.Add(envelope(bytes.Join([][]byte{ // NumRows = 2^31-1: block table would be ~48 GB
		u32le(0x7fffffff), u32le(1), u32le(1), u32le(1), // cfg rows/assoc/succs/levels
		u32le(0),           // no exec entries
		u32le(1), u32le(7), // one block table, id 7
	}, nil)))
	f.Add(envelope(bytes.Join([][]byte{ // NumLevels huge: per-entry allocation bomb
		u32le(1), u32le(1), u32le(1), u32le(0x7fffffff),
		u32le(0),
		u32le(1), u32le(7),
	}, nil)))
	f.Add(envelope(bytes.Join([][]byte{ // exec record count far beyond the stream
		u32le(1), u32le(1), u32le(1), u32le(1),
		u32le(1), u32le(3), u32le(0x40000000), // one exec id with 2^30 records
	}, nil)))
	f.Add(envelope(bytes.Join([][]byte{ // way count beyond the stream
		u32le(1), u32le(0x7fffffff), u32le(1), u32le(1),
		u32le(0),
		u32le(1), u32le(7),
		make([]byte, 8+8+8+1), // start/end/last/pending
		u32le(0x7ffffff0),     // nWays
	}, nil)))
	// Current (v2, named) envelopes: a valid frame, and hostile name fields.
	// The decoder must reject a bad name BEFORE touching the payload; the
	// correlation reader must reject well-formed frames naming another
	// policy rather than misparse their payloads as tables.
	tablesPayload := EncodeTables(buildWarmTables())
	f.Add(envelopeV2(uint32(len("correlation")), "correlation", tablesPayload))
	f.Add(envelopeV2(uint32(len("learned")), "learned", []byte{1, 2, 3}))
	f.Add(envelopeV2(0, "", tablesPayload))                       // zero-length name
	longName := string(bytes.Repeat([]byte{'p'}, 65))             // one over the cap
	f.Add(envelopeV2(65, longName, nil))                          //
	f.Add(envelopeV2(11, "corr\x00lation", tablesPayload))        // NUL inside the name
	f.Add(envelopeV2(4, "tab\tx", tablesPayload))                 // control char
	f.Add(envelopeV2(0xffffffff, "correlation", tablesPayload))   // nameLen lies huge
	f.Add(envelopeV2(64, "correlation", tablesPayload))           // nameLen overruns into payload
	f.Add(envelope(nil)[:13])                                     // v1 truncated inside version field
	v2 := envelopeV2(uint32(len("correlation")), "correlation", tablesPayload)
	f.Add(v2[:14]) // v2 truncated before the name length completes

	f.Fuzz(func(t *testing.T, data []byte) {
		// The input size bounds every legitimate allocation; anything the
		// decoder accepts must also re-encode and re-decode identically.
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		tbl, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			if tbl != nil {
				t.Fatal("ReadCheckpoint returned tables alongside an error")
			}
			return
		}
		var out bytes.Buffer
		if err := WriteCheckpoint(&out, tbl); err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		again, err := ReadCheckpoint(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if again.Config() != tbl.Config() {
			t.Fatalf("config drifted across roundtrip: %+v vs %+v", again.Config(), tbl.Config())
		}
	})
}
