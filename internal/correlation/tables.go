package correlation

import (
	"sort"

	"deepum/internal/um"
)

// Tables bundles the execution-ID table with the per-execution-ID UM-block
// tables, which the DeepUM driver allocates lazily when a kernel with a new
// execution ID appears (§6.2, Table 4).
type Tables struct {
	Exec   *ExecTable
	cfg    BlockTableConfig
	blocks map[ExecID]*BlockTable
}

// NewTables returns an empty table set using cfg for every block table.
func NewTables(cfg BlockTableConfig) *Tables {
	return &Tables{
		Exec:   NewExecTable(),
		cfg:    cfg,
		blocks: make(map[ExecID]*BlockTable),
	}
}

// Block returns the UM-block correlation table of id, allocating it on first
// use.
func (t *Tables) Block(id ExecID) *BlockTable {
	bt, ok := t.blocks[id]
	if !ok {
		bt = NewBlockTable(t.cfg)
		t.blocks[id] = bt
	}
	return bt
}

// HasBlock reports whether a block table exists for id without allocating.
func (t *Tables) HasBlock(id ExecID) bool {
	_, ok := t.blocks[id]
	return ok
}

// NumBlockTables returns how many block tables have been allocated.
func (t *Tables) NumBlockTables() int { return len(t.blocks) }

// SizeBytes returns the total correlation-table memory: the execution table
// plus every allocated block table. The tables live in CPU memory (§6.2).
func (t *Tables) SizeBytes() int64 {
	total := t.Exec.SizeBytes()
	for _, bt := range t.blocks {
		total += bt.SizeBytes()
	}
	return total
}

// ExecIDs returns the execution IDs with allocated block tables, ascending.
func (t *Tables) ExecIDs() []ExecID {
	ids := make([]ExecID, 0, len(t.blocks))
	for id := range t.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ChainCursor walks correlated UM blocks the way the DeepUM prefetching
// thread does (§4.2): within a kernel it follows the MRU successor chain
// from a seed block, and when it reaches the kernel's End block it consults
// the execution table to predict the next kernel and restarts from that
// kernel's Start block. Next returns blocks one at a time so the caller (the
// prefetcher) can stop, pause at the degree-N boundary, or be preempted by a
// new fault at any point.
type ChainCursor struct {
	tables *Tables

	execID   ExecID             // kernel currently being prefetched for
	history  [HistoryLen]ExecID // launch history used for prediction
	emit     []um.BlockID       // blocks discovered but not yet handed out
	frontier []um.BlockID       // blocks whose successors are yet to be visited
	seen     map[um.BlockID]struct{}
	kernels  int  // kernel transitions taken so far
	dead     bool // prediction failed; chain exhausted
	sawEnd   bool // End block emitted for the current kernel

	// DeathCause records why the chain died: "" while alive, "noexec" when
	// the execution table had no prediction, "skips" when too many
	// consecutive kernels had no fault history.
	DeathCause string
}

// NewChainCursor starts a chain for the kernel execID whose fault on seed
// triggered prefetching. history holds the three launches before execID
// (oldest first). The seed block itself is not emitted — the fault handler
// is already migrating it — but its successors are. The kernel's Start
// anchor joins the frontier as well: the exact miss sequence shifts between
// iterations (it depends on what happened to be resident), so a fault on a
// block with no recorded successors must still reach the kernel's canonical
// access graph.
func (t *Tables) NewChainCursor(execID ExecID, history [HistoryLen]ExecID, seed um.BlockID) *ChainCursor {
	c := &ChainCursor{
		tables:  t,
		execID:  execID,
		history: history,
		seen:    map[um.BlockID]struct{}{},
	}
	if seed != um.NoBlock {
		c.frontier = append(c.frontier, seed)
		c.seen[seed] = struct{}{}
	}
	if t.HasBlock(execID) {
		if start := t.Block(execID).Start; start != um.NoBlock && start != seed {
			c.frontier = append(c.frontier, start)
			c.seen[start] = struct{}{}
			c.emit = append(c.emit, start)
		}
	}
	return c
}

// ExecID returns the execution ID the cursor is currently prefetching for.
func (c *ChainCursor) ExecID() ExecID { return c.execID }

// Kernels returns how many kernel transitions the chain has taken; the
// prefetcher pauses when this reaches the prefetch degree N.
func (c *ChainCursor) Kernels() int { return c.kernels }

// Next returns the next UM block to prefetch together with the execution ID
// it is predicted for, or (NoBlock, NoExec) when the chain is exhausted —
// the next-kernel prediction failed or no history exists (§4.2: "the
// chaining ends ... when the prefetching thread fails to predict the next
// kernel to execute").
func (c *ChainCursor) Next() (um.BlockID, ExecID) {
	for {
		if c.dead {
			return um.NoBlock, NoExec
		}
		if len(c.emit) > 0 {
			b := c.emit[0]
			c.emit = c.emit[1:]
			if b == c.tables.Block(c.execID).End {
				// Meeting the End block ends prefetching for this kernel.
				c.sawEnd = true
			}
			return b, c.execID
		}
		if c.sawEnd || len(c.frontier) == 0 {
			if !c.advanceKernel() {
				return um.NoBlock, NoExec
			}
			continue
		}
		head := c.frontier[0]
		c.frontier = c.frontier[1:]
		for _, s := range c.tables.Block(c.execID).Successors(head) {
			if s == um.NoBlock {
				continue
			}
			if _, dup := c.seen[s]; dup {
				continue
			}
			c.seen[s] = struct{}{}
			c.frontier = append(c.frontier, s)
			c.emit = append(c.emit, s)
		}
	}
}

// maxAnchorlessSkips bounds how many consecutive kernels without a fault
// history the chain steps over before giving up.
const maxAnchorlessSkips = 64

// advanceKernel predicts the next kernel via the execution table and
// restarts the walk from its Start block (which is itself emitted). Kernels
// that have never faulted — their working set is always resident, so they
// contribute nothing to prefetch — are stepped over. It returns false when
// prediction fails.
func (c *ChainCursor) advanceKernel() bool {
	for skip := 0; skip <= maxAnchorlessSkips; skip++ {
		next := c.tables.Exec.Predict(c.execID, c.history)
		if next == NoExec {
			c.dead = true
			c.DeathCause = "noexec"
			return false
		}
		// Slide the history window: the current kernel becomes the most
		// recent.
		copy(c.history[:], c.history[1:])
		c.history[HistoryLen-1] = c.execID
		c.execID = next
		c.kernels++
		c.sawEnd = false
		if !c.tables.HasBlock(next) {
			continue
		}
		start := c.tables.Block(next).Start
		if start == um.NoBlock {
			continue
		}
		c.seen = map[um.BlockID]struct{}{start: {}}
		c.frontier = append(c.frontier[:0], start)
		c.emit = append(c.emit[:0], start)
		return true
	}
	c.dead = true
	c.DeathCause = "skips"
	return false
}
