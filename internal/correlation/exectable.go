// Package correlation implements the two correlation-table structures of
// DeepUM (§4.2): the execution-ID correlation table that records kernel
// launch history, and the per-execution-ID UM-block correlation tables that
// record the page (UM block) access history within each kernel. Together
// they drive prefetch chaining across kernel boundaries.
package correlation

// ExecID identifies a distinct CUDA kernel launch command, assigned by the
// DeepUM runtime from the hash of the kernel's name and arguments (§3.1).
type ExecID int32

// NoExec is the nil execution ID.
const NoExec ExecID = -1

// HistoryLen is the number of previously executed kernels each record of the
// execution table stores; a record is (prev3, prev2, prev1, next) relative
// to the entry's own execution ID (Figure 6).
const HistoryLen = 3

// ExecRecord is one record of an execution-table entry: the three execution
// IDs launched immediately before the entry's kernel, and the kernel
// launched right after it.
type ExecRecord struct {
	Prev [HistoryLen]ExecID
	Next ExecID
}

// ExecTable is the single execution-ID correlation table. Each entry holds a
// variable number of records so that the full successor history of every
// kernel is retained: a wrong next-kernel prediction is expensive, so the
// table trades memory for accuracy (§4.2).
type ExecTable struct {
	entries map[ExecID][]ExecRecord // records MRU-ordered, newest first
	records int64
}

// NewExecTable returns an empty execution-ID correlation table.
func NewExecTable() *ExecTable {
	return &ExecTable{entries: make(map[ExecID][]ExecRecord)}
}

// Record stores that kernel next was launched right after kernel cur, with
// prev holding the three kernels launched before cur (oldest first). A
// record identical to an existing one is moved to the front (MRU) instead of
// duplicated.
func (t *ExecTable) Record(cur ExecID, prev [HistoryLen]ExecID, next ExecID) {
	recs := t.entries[cur]
	rec := ExecRecord{Prev: prev, Next: next}
	for i, r := range recs {
		if r == rec {
			copy(recs[1:i+1], recs[:i])
			recs[0] = rec
			return
		}
	}
	t.entries[cur] = append([]ExecRecord{rec}, recs...)
	t.records++
}

// Predict returns the execution ID expected to run after cur, given the
// actual last three launched kernels (oldest first). Records are matched
// against the history most-specific first: full three-kernel match, then the
// two most recent, then one, then the most recent record of the entry.
// It returns NoExec when cur has never been observed.
func (t *ExecTable) Predict(cur ExecID, prev [HistoryLen]ExecID) ExecID {
	recs := t.entries[cur]
	if len(recs) == 0 {
		return NoExec
	}
	for suffix := HistoryLen; suffix >= 1; suffix-- {
		for _, r := range recs {
			if matchSuffix(r.Prev, prev, suffix) {
				return r.Next
			}
		}
	}
	return recs[0].Next
}

func matchSuffix(a, b [HistoryLen]ExecID, n int) bool {
	for i := HistoryLen - n; i < HistoryLen; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Entries returns the number of distinct execution IDs with records.
func (t *ExecTable) Entries() int { return len(t.entries) }

// Records returns the total record count across all entries.
func (t *ExecTable) Records() int64 { return t.records }

// SizeBytes estimates the memory the table occupies: each record stores four
// execution IDs (Figure 6) plus per-entry bookkeeping.
func (t *ExecTable) SizeBytes() int64 {
	const recordBytes = (HistoryLen + 1) * 4
	const entryOverhead = 24 // map entry + slice header
	return t.records*recordBytes + int64(len(t.entries))*entryOverhead
}
