package correlation

// Warm-state checkpointing (DeepUM run-lifecycle supervision). The
// correlation tables are the only state worth persisting across runs: UM
// residency and link occupancy are rebuilt by the first iteration anyway,
// but the tables take a full warm-up epoch to learn (§3.2), so a resumed
// run that starts cold repays the entire warm-up cost. The encoding below
// serializes the execution-ID table and every UM-block table losslessly —
// including MRU order, the miss-history cursor, and the pending-Start flag —
// so a resumed run reproduces the prefetch decisions of an uninterrupted
// one from its first post-resume iteration.
//
// Format (little-endian throughout):
//
//	magic   [8]byte  "DEEPUMCK"
//	version uint32   (currently 1)
//	payload          (see encode below)
//	crc32   uint32   IEEE, over magic+version+payload
//
// Everything in the payload is written in deterministic order (maps sorted
// by ExecID, ways and successor lists in MRU order), so encoding the same
// tables twice yields identical bytes — which the tests exploit.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"deepum/internal/um"
)

// checkpointMagic identifies a DeepUM correlation checkpoint stream.
var checkpointMagic = [8]byte{'D', 'E', 'E', 'P', 'U', 'M', 'C', 'K'}

// CheckpointVersion is the current encoding version. A reader rejects any
// other version rather than guessing at the layout.
const CheckpointVersion uint32 = 1

// WriteCheckpoint serializes t (versioned, CRC32-checksummed) to w.
func WriteCheckpoint(w io.Writer, t *Tables) error {
	if t == nil {
		return fmt.Errorf("correlation: cannot checkpoint nil tables")
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	writeU32(&buf, CheckpointVersion)
	encodePayload(&buf, t)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadCheckpoint decodes a checkpoint previously produced by
// WriteCheckpoint, verifying magic, version, and checksum before touching
// the payload. It returns fresh tables that share nothing with the stream.
func ReadCheckpoint(r io.Reader) (*Tables, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("correlation: reading checkpoint: %w", err)
	}
	const minLen = 8 + 4 + 4 // magic + version + crc
	if len(raw) < minLen {
		return nil, fmt.Errorf("correlation: checkpoint truncated (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("correlation: checkpoint corrupt: crc mismatch (stored %08x, computed %08x)", sum, got)
	}
	if !bytes.Equal(body[:8], checkpointMagic[:]) {
		return nil, fmt.Errorf("correlation: not a checkpoint (bad magic %q)", body[:8])
	}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != CheckpointVersion {
		return nil, fmt.Errorf("correlation: unsupported checkpoint version %d (want %d)", v, CheckpointVersion)
	}
	d := &decoder{buf: body[12:]}
	t := decodePayload(d)
	if d.err != nil {
		return nil, fmt.Errorf("correlation: decoding checkpoint: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("correlation: checkpoint has %d trailing bytes", len(d.buf))
	}
	return t, nil
}

// Config returns the block-table configuration every table of this set is
// built with.
func (t *Tables) Config() BlockTableConfig { return t.cfg }

// --- encoding ---

func encodePayload(buf *bytes.Buffer, t *Tables) {
	// Block-table configuration (4 x i32).
	writeI32(buf, int32(t.cfg.NumRows))
	writeI32(buf, int32(t.cfg.Assoc))
	writeI32(buf, int32(t.cfg.NumSuccs))
	writeI32(buf, int32(t.cfg.NumLevels))

	// Execution-ID table: entries sorted by ID, records in MRU order.
	ids := make([]ExecID, 0, len(t.Exec.entries))
	for id := range t.Exec.entries {
		ids = append(ids, id)
	}
	sortExecIDs(ids)
	writeU32(buf, uint32(len(ids)))
	for _, id := range ids {
		recs := t.Exec.entries[id]
		writeI32(buf, int32(id))
		writeU32(buf, uint32(len(recs)))
		for _, r := range recs {
			for _, p := range r.Prev {
				writeI32(buf, int32(p))
			}
			writeI32(buf, int32(r.Next))
		}
	}

	// UM-block tables, sorted by execution ID.
	bids := t.ExecIDs()
	writeU32(buf, uint32(len(bids)))
	for _, id := range bids {
		bt := t.blocks[id]
		writeI32(buf, int32(id))
		writeI64(buf, int64(bt.Start))
		writeI64(buf, int64(bt.End))
		for _, b := range bt.last {
			writeI64(buf, int64(b))
		}
		if bt.pendingStart {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		for _, set := range bt.sets {
			writeU32(buf, uint32(len(set)))
			for _, e := range set {
				writeI64(buf, int64(e.tag))
				for level := 0; level < bt.cfg.NumLevels; level++ {
					succs := e.succs[level]
					writeU32(buf, uint32(len(succs)))
					for _, s := range succs {
						writeI64(buf, int64(s))
					}
				}
			}
		}
	}
}

func decodePayload(d *decoder) *Tables {
	cfg := BlockTableConfig{
		NumRows:   int(d.i32()),
		Assoc:     int(d.i32()),
		NumSuccs:  int(d.i32()),
		NumLevels: int(d.i32()),
	}
	if d.err != nil {
		return nil
	}
	if cfg.NumRows < 1 || cfg.Assoc < 1 || cfg.NumSuccs < 1 || cfg.NumLevels < 1 {
		d.fail("invalid block-table config %+v", cfg)
		return nil
	}
	t := NewTables(cfg)

	// Execution-ID table. Records arrive in MRU order; appending preserves it.
	nExec := int(d.u32())
	for i := 0; i < nExec && d.err == nil; i++ {
		id := ExecID(d.i32())
		nRecs := int(d.u32())
		if d.err != nil || !d.fits(nRecs, (HistoryLen+1)*4) {
			return nil
		}
		recs := make([]ExecRecord, 0, nRecs)
		for j := 0; j < nRecs; j++ {
			var r ExecRecord
			for k := range r.Prev {
				r.Prev[k] = ExecID(d.i32())
			}
			r.Next = ExecID(d.i32())
			recs = append(recs, r)
		}
		t.Exec.entries[id] = recs
		t.Exec.records += int64(nRecs)
	}

	// UM-block tables.
	nBlocks := int(d.u32())
	for i := 0; i < nBlocks && d.err == nil; i++ {
		id := ExecID(d.i32())
		// Every decoded block table spends >= 4 bytes per row (the way
		// count) and 8 per level (the last-miss block), so a config whose
		// dimensions outrun the remaining stream is corrupt; reject it
		// BEFORE NewBlockTable allocates NumRows sets from a hostile count.
		if !d.fits(cfg.NumRows, 4) || !d.fits(cfg.NumLevels, 8) {
			return nil
		}
		bt := NewBlockTable(cfg)
		bt.Start = um.BlockID(d.i64())
		bt.End = um.BlockID(d.i64())
		for l := range bt.last {
			bt.last[l] = um.BlockID(d.i64())
		}
		bt.pendingStart = d.u8() != 0
		for row := 0; row < cfg.NumRows && d.err == nil; row++ {
			nWays := int(d.u32())
			if !d.fits(nWays, 8+4*cfg.NumLevels) {
				return nil
			}
			if nWays > cfg.Assoc {
				d.fail("row %d has %d ways (assoc %d)", row, nWays, cfg.Assoc)
				return nil
			}
			set := make([]entry, 0, nWays)
			for way := 0; way < nWays; way++ {
				e := entry{tag: um.BlockID(d.i64()), valid: true,
					succs: make([][]um.BlockID, cfg.NumLevels)}
				for level := 0; level < cfg.NumLevels; level++ {
					nSuccs := int(d.u32())
					if d.err != nil || !d.fits(nSuccs, 8) || nSuccs > cfg.NumSuccs {
						d.fail("entry has %d successors (limit %d)", nSuccs, cfg.NumSuccs)
						return nil
					}
					if nSuccs > 0 {
						succs := make([]um.BlockID, 0, nSuccs)
						for s := 0; s < nSuccs; s++ {
							succs = append(succs, um.BlockID(d.i64()))
						}
						e.succs[level] = succs
					}
				}
				set = append(set, e)
			}
			bt.sets[row] = set
		}
		t.blocks[id] = bt
	}
	if d.err != nil {
		return nil
	}
	return t
}

// --- little-endian helpers ---

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeI32(buf *bytes.Buffer, v int32) { writeU32(buf, uint32(v)) }

func writeI64(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

func sortExecIDs(ids []ExecID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// decoder is a cursor over the payload with sticky error state, so decode
// code reads linearly without per-field error plumbing.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// fits reports whether n elements of elemBytes each could possibly remain
// in the stream — a cheap guard against allocating from a corrupt count.
func (d *decoder) fits(n, elemBytes int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || n*elemBytes > len(d.buf) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.fail("truncated: need %d bytes, have %d", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
