package correlation

// Warm-state checkpointing (DeepUM run-lifecycle supervision). The
// correlation tables are the only state worth persisting across runs: UM
// residency and link occupancy are rebuilt by the first iteration anyway,
// but the tables take a full warm-up epoch to learn (§3.2), so a resumed
// run that starts cold repays the entire warm-up cost. The encoding below
// serializes the execution-ID table and every UM-block table losslessly —
// including MRU order, the miss-history cursor, and the pending-Start flag —
// so a resumed run reproduces the prefetch decisions of an uninterrupted
// one from its first post-resume iteration.
//
// Format (little-endian throughout):
//
//	magic   [8]byte  "DEEPUMCK"
//	version uint32   (currently 2)
//	nameLen uint32   (v2 only; 1..64)
//	name    []byte   (v2 only; printable ASCII policy name)
//	payload          (policy-defined; for "correlation" see encode below)
//	crc32   uint32   IEEE, over everything preceding it
//
// Version 1 streams (pre-policy checkpoints) carry no name field; readers
// treat them as policy "correlation", so old blobs keep loading. Everything
// in the correlation payload is written in deterministic order (maps sorted
// by ExecID, ways and successor lists in MRU order), so encoding the same
// tables twice yields identical bytes — which the tests exploit.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"deepum/internal/um"
)

// checkpointMagic identifies a DeepUM correlation checkpoint stream.
var checkpointMagic = [8]byte{'D', 'E', 'E', 'P', 'U', 'M', 'C', 'K'}

// CheckpointVersion is the legacy (nameless) encoding version; readers
// still accept it and treat it as policy "correlation".
const CheckpointVersion uint32 = 1

// EnvelopeVersion is the current encoding version: the envelope carries the
// name of the prefetch policy whose warm state the payload holds.
const EnvelopeVersion uint32 = 2

// maxPolicyNameLen bounds the envelope's policy-name field; the registry
// never holds names anywhere near it, so anything longer is hostile input.
const maxPolicyNameLen = 64

// validPolicyName reports whether name fits the envelope contract:
// non-empty, bounded, printable ASCII with no spaces.
func validPolicyName(name string) bool {
	if len(name) == 0 || len(name) > maxPolicyNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; c <= 0x20 || c >= 0x7f {
			return false
		}
	}
	return true
}

// WriteEnvelope frames an arbitrary policy payload: magic, version,
// policy name, payload, CRC32 over everything preceding it.
func WriteEnvelope(w io.Writer, policyName string, payload []byte) error {
	if !validPolicyName(policyName) {
		return fmt.Errorf("correlation: invalid policy name %q in checkpoint envelope", policyName)
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	writeU32(&buf, EnvelopeVersion)
	writeU32(&buf, uint32(len(policyName)))
	buf.WriteString(policyName)
	buf.Write(payload)
	writeU32(&buf, crc32.ChecksumIEEE(buf.Bytes()))
	_, err := w.Write(buf.Bytes())
	return err
}

// ReadEnvelope verifies magic, version, and checksum and returns the policy
// name plus its opaque payload. Version-1 streams (written before the
// policy seam existed) have no name field and decode as "correlation".
func ReadEnvelope(r io.Reader) (policyName string, payload []byte, err error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return "", nil, fmt.Errorf("correlation: reading checkpoint: %w", err)
	}
	const minLen = 8 + 4 + 4 // magic + version + crc
	if len(raw) < minLen {
		return "", nil, fmt.Errorf("correlation: checkpoint truncated (%d bytes)", len(raw))
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return "", nil, fmt.Errorf("correlation: checkpoint corrupt: crc mismatch (stored %08x, computed %08x)", sum, got)
	}
	if !bytes.Equal(body[:8], checkpointMagic[:]) {
		return "", nil, fmt.Errorf("correlation: not a checkpoint (bad magic %q)", body[:8])
	}
	switch v := binary.LittleEndian.Uint32(body[8:12]); v {
	case CheckpointVersion:
		return "correlation", body[12:], nil
	case EnvelopeVersion:
		rest := body[12:]
		if len(rest) < 4 {
			return "", nil, fmt.Errorf("correlation: checkpoint truncated before policy name")
		}
		nameLen := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if nameLen == 0 || nameLen > maxPolicyNameLen || int(nameLen) > len(rest) {
			return "", nil, fmt.Errorf("correlation: checkpoint policy-name length %d invalid (remaining %d bytes)", nameLen, len(rest))
		}
		name := string(rest[:nameLen])
		if !validPolicyName(name) {
			return "", nil, fmt.Errorf("correlation: checkpoint policy name %q is not printable ASCII", name)
		}
		return name, rest[nameLen:], nil
	default:
		return "", nil, fmt.Errorf("correlation: unsupported checkpoint version %d (want %d or %d)", v, CheckpointVersion, EnvelopeVersion)
	}
}

// EncodeTables serializes correlation tables to their deterministic
// checkpoint payload (the body a WriteEnvelope frame wraps).
func EncodeTables(t *Tables) []byte {
	var buf bytes.Buffer
	encodePayload(&buf, t)
	return buf.Bytes()
}

// DecodeTables rebuilds tables from an EncodeTables payload. It returns
// fresh tables that share nothing with the input slice.
func DecodeTables(payload []byte) (*Tables, error) {
	d := &decoder{buf: payload}
	t := decodePayload(d)
	if d.err != nil {
		return nil, fmt.Errorf("correlation: decoding checkpoint: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("correlation: checkpoint has %d trailing bytes", len(d.buf))
	}
	return t, nil
}

// WriteCheckpoint serializes t (versioned, CRC32-checksummed) to w under
// the "correlation" policy name.
func WriteCheckpoint(w io.Writer, t *Tables) error {
	if t == nil {
		return fmt.Errorf("correlation: cannot checkpoint nil tables")
	}
	return WriteEnvelope(w, "correlation", EncodeTables(t))
}

// ReadCheckpoint decodes a correlation checkpoint — a v2 envelope carrying
// policy "correlation", or any legacy v1 stream. Checkpoints written under
// a different policy are rejected; use ReadEnvelope to dispatch on name.
func ReadCheckpoint(r io.Reader) (*Tables, error) {
	name, payload, err := ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	if name != "correlation" {
		return nil, fmt.Errorf("correlation: checkpoint holds policy %q state, not correlation tables", name)
	}
	return DecodeTables(payload)
}

// Config returns the block-table configuration every table of this set is
// built with.
func (t *Tables) Config() BlockTableConfig { return t.cfg }

// --- encoding ---

func encodePayload(buf *bytes.Buffer, t *Tables) {
	// Block-table configuration (4 x i32).
	writeI32(buf, int32(t.cfg.NumRows))
	writeI32(buf, int32(t.cfg.Assoc))
	writeI32(buf, int32(t.cfg.NumSuccs))
	writeI32(buf, int32(t.cfg.NumLevels))

	// Execution-ID table: entries sorted by ID, records in MRU order.
	ids := make([]ExecID, 0, len(t.Exec.entries))
	for id := range t.Exec.entries {
		ids = append(ids, id)
	}
	sortExecIDs(ids)
	writeU32(buf, uint32(len(ids)))
	for _, id := range ids {
		recs := t.Exec.entries[id]
		writeI32(buf, int32(id))
		writeU32(buf, uint32(len(recs)))
		for _, r := range recs {
			for _, p := range r.Prev {
				writeI32(buf, int32(p))
			}
			writeI32(buf, int32(r.Next))
		}
	}

	// UM-block tables, sorted by execution ID.
	bids := t.ExecIDs()
	writeU32(buf, uint32(len(bids)))
	for _, id := range bids {
		bt := t.blocks[id]
		writeI32(buf, int32(id))
		writeI64(buf, int64(bt.Start))
		writeI64(buf, int64(bt.End))
		for _, b := range bt.last {
			writeI64(buf, int64(b))
		}
		if bt.pendingStart {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
		for _, set := range bt.sets {
			writeU32(buf, uint32(len(set)))
			for _, e := range set {
				writeI64(buf, int64(e.tag))
				for level := 0; level < bt.cfg.NumLevels; level++ {
					succs := e.succs[level]
					writeU32(buf, uint32(len(succs)))
					for _, s := range succs {
						writeI64(buf, int64(s))
					}
				}
			}
		}
	}
}

func decodePayload(d *decoder) *Tables {
	cfg := BlockTableConfig{
		NumRows:   int(d.i32()),
		Assoc:     int(d.i32()),
		NumSuccs:  int(d.i32()),
		NumLevels: int(d.i32()),
	}
	if d.err != nil {
		return nil
	}
	if cfg.NumRows < 1 || cfg.Assoc < 1 || cfg.NumSuccs < 1 || cfg.NumLevels < 1 {
		d.fail("invalid block-table config %+v", cfg)
		return nil
	}
	t := NewTables(cfg)

	// Execution-ID table. Records arrive in MRU order; appending preserves it.
	nExec := int(d.u32())
	for i := 0; i < nExec && d.err == nil; i++ {
		id := ExecID(d.i32())
		nRecs := int(d.u32())
		if d.err != nil || !d.fits(nRecs, (HistoryLen+1)*4) {
			return nil
		}
		recs := make([]ExecRecord, 0, nRecs)
		for j := 0; j < nRecs; j++ {
			var r ExecRecord
			for k := range r.Prev {
				r.Prev[k] = ExecID(d.i32())
			}
			r.Next = ExecID(d.i32())
			recs = append(recs, r)
		}
		t.Exec.entries[id] = recs
		t.Exec.records += int64(nRecs)
	}

	// UM-block tables.
	nBlocks := int(d.u32())
	for i := 0; i < nBlocks && d.err == nil; i++ {
		id := ExecID(d.i32())
		// Every decoded block table spends >= 4 bytes per row (the way
		// count) and 8 per level (the last-miss block), so a config whose
		// dimensions outrun the remaining stream is corrupt; reject it
		// BEFORE NewBlockTable allocates NumRows sets from a hostile count.
		if !d.fits(cfg.NumRows, 4) || !d.fits(cfg.NumLevels, 8) {
			return nil
		}
		bt := NewBlockTable(cfg)
		bt.Start = um.BlockID(d.i64())
		bt.End = um.BlockID(d.i64())
		for l := range bt.last {
			bt.last[l] = um.BlockID(d.i64())
		}
		bt.pendingStart = d.u8() != 0
		for row := 0; row < cfg.NumRows && d.err == nil; row++ {
			nWays := int(d.u32())
			if !d.fits(nWays, 8+4*cfg.NumLevels) {
				return nil
			}
			if nWays > cfg.Assoc {
				d.fail("row %d has %d ways (assoc %d)", row, nWays, cfg.Assoc)
				return nil
			}
			set := make([]entry, 0, nWays)
			for way := 0; way < nWays; way++ {
				e := entry{tag: um.BlockID(d.i64()), valid: true,
					succs: make([][]um.BlockID, cfg.NumLevels)}
				for level := 0; level < cfg.NumLevels; level++ {
					nSuccs := int(d.u32())
					if d.err != nil || !d.fits(nSuccs, 8) || nSuccs > cfg.NumSuccs {
						d.fail("entry has %d successors (limit %d)", nSuccs, cfg.NumSuccs)
						return nil
					}
					if nSuccs > 0 {
						succs := make([]um.BlockID, 0, nSuccs)
						for s := 0; s < nSuccs; s++ {
							succs = append(succs, um.BlockID(d.i64()))
						}
						e.succs[level] = succs
					}
				}
				set = append(set, e)
			}
			bt.sets[row] = set
		}
		t.blocks[id] = bt
	}
	if d.err != nil {
		return nil
	}
	return t
}

// --- little-endian helpers ---

func writeU32(buf *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	buf.Write(b[:])
}

func writeI32(buf *bytes.Buffer, v int32) { writeU32(buf, uint32(v)) }

func writeI64(buf *bytes.Buffer, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	buf.Write(b[:])
}

func sortExecIDs(ids []ExecID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// decoder is a cursor over the payload with sticky error state, so decode
// code reads linearly without per-field error plumbing.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// fits reports whether n elements of elemBytes each could possibly remain
// in the stream — a cheap guard against allocating from a corrupt count.
func (d *decoder) fits(n, elemBytes int) bool {
	if d.err != nil {
		return false
	}
	if n < 0 || n*elemBytes > len(d.buf) {
		d.fail("count %d exceeds remaining %d bytes", n, len(d.buf))
		return false
	}
	return true
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.fail("truncated: need %d bytes, have %d", n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) i64() int64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(b))
}
