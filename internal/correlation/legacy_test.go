package correlation

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestLegacyCheckpointLoad pins backward compatibility against a REAL
// pre-envelope blob: testdata/legacy_v1.ckpt was written by the v1
// (nameless) WriteCheckpoint before the policy seam existed, and is
// committed verbatim so no amount of refactoring can quietly regenerate
// it. Both readers must keep accepting it: ReadEnvelope decodes it as
// policy "correlation", and ReadCheckpoint yields the original tables.
func TestLegacyCheckpointLoad(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "legacy_v1.ckpt"))
	if err != nil {
		t.Fatal(err)
	}

	name, payload, err := ReadEnvelope(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadEnvelope on v1 blob: %v", err)
	}
	if name != "correlation" {
		t.Fatalf("v1 blob decoded as policy %q, want correlation", name)
	}
	if len(payload) != len(raw)-12-4 { // minus magic+version header and CRC
		t.Fatalf("v1 payload is %d bytes, want %d", len(payload), len(raw)-16)
	}

	tbl, err := ReadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadCheckpoint on v1 blob: %v", err)
	}
	if cfg := tbl.Config(); cfg != (BlockTableConfig{NumRows: 8, Assoc: 2, NumSuccs: 4, NumLevels: 2}) {
		t.Fatalf("legacy config drifted: %+v", cfg)
	}
	ids := tbl.ExecIDs()
	if len(ids) != 4 || ids[0] != 1 || ids[3] != 4 {
		t.Fatalf("legacy block tables drifted: exec IDs %v, want [1 2 3 4]", ids)
	}

	// Re-encoding upgrades the frame to the current envelope (v2, with the
	// policy name) while keeping the payload decodable and equivalent.
	var out bytes.Buffer
	if err := WriteCheckpoint(&out, tbl); err != nil {
		t.Fatal(err)
	}
	upgraded := out.Bytes()
	if bytes.Equal(upgraded, raw) {
		t.Fatal("re-encoded legacy checkpoint kept the v1 frame; want v2 envelope")
	}
	name2, payload2, err := ReadEnvelope(bytes.NewReader(upgraded))
	if err != nil {
		t.Fatal(err)
	}
	if name2 != "correlation" || !bytes.Equal(payload2, payload) {
		t.Fatalf("upgrade changed the payload: policy %q, %d vs %d bytes", name2, len(payload2), len(payload))
	}
}
