package chaos

import (
	"fmt"
	"sort"
	"time"

	"deepum/internal/sim"
)

// Scenario is one named perturbation regime. The zero value injects
// nothing; fields compose freely, and every named scenario below stresses
// one substrate the related UVM literature identifies as a failure regime
// (oversubscription pressure, fault-buffer overflow, link contention).
type Scenario struct {
	Name        string
	Description string

	// --- link degradation and transfer reliability ---

	// LinkDegradeFactor multiplies every transfer's occupancy (>1 degrades;
	// e.g. a link renegotiated to fewer lanes). 0 or 1 disables.
	LinkDegradeFactor float64
	// LinkJitterFrac adds uniform +/- jitter of this fraction to every
	// transfer's occupancy (shared-switch contention). 0 disables.
	LinkJitterFrac float64
	// TransferFailProb is the per-transfer probability of a transient
	// failure: the attempt occupies the link, delivers nothing, and the
	// migration engine retries with exponential backoff.
	TransferFailProb float64
	// MaxConsecutiveFails bounds failures in a row, guaranteeing every
	// retry loop terminates. Defaults to 4 when TransferFailProb > 0.
	MaxConsecutiveFails int

	// --- fault-handling path ---

	// FaultBatchCap caps UM blocks per fault-handling cycle (fault-buffer
	// overflow: excess entries replay in the next cycle). 0 disables.
	FaultBatchCap int
	// DropNotifyProb is the probability a per-block fault notification to
	// the DeepUM driver is lost; the block is still served, the tables
	// just do not learn from it.
	DropNotifyProb float64
	// DupNotifyProb is the probability a notification is delivered twice.
	DupNotifyProb float64

	// --- host-memory pressure ---

	// HostPressureFactor slows transfers during periodic pressure spikes
	// (host under memory reclaim); 0 or 1 disables.
	HostPressureFactor float64
	// HostPressurePeriod and HostPressureDuration shape the spike train:
	// every period, transfers run HostPressureFactor times slower for the
	// first HostPressureDuration.
	HostPressurePeriod   sim.Duration
	HostPressureDuration sim.Duration

	// --- correlation-table capacity pressure ---

	// TableRowsDivisor divides the block-table row count (conflict-miss
	// pressure on the correlation tables). 0 or 1 disables.
	TableRowsDivisor int

	// --- migration-thread responsiveness ---

	// MigratorStallProb is the per-kernel-launch probability the migration
	// thread is descheduled for MigratorStallTime before serving commands.
	MigratorStallProb float64
	MigratorStallTime sim.Duration

	// --- run-lifecycle supervision ---

	// CancelAfterKernels, when positive, simulates a supervisor killing the
	// run: the engine's lifecycle check cancels after this many kernel
	// launches (deliberately not aligned to an iteration boundary), and the
	// run returns a partial result with RunStatus cancelled. Deterministic:
	// launch counting needs no PRNG draw.
	CancelAfterKernels int64
	// VirtualDeadline, when positive, bounds the run in simulated time: the
	// engine stops at the first event past the deadline and returns a partial
	// result with RunStatus deadline-exceeded. Virtual (not wall-clock) time
	// keeps the scenario deterministic under a fixed seed.
	VirtualDeadline sim.Duration
}

// withDefaults fills derived defaults.
func (s Scenario) withDefaults() Scenario {
	if s.TransferFailProb > 0 && s.MaxConsecutiveFails <= 0 {
		s.MaxConsecutiveFails = 4
	}
	return s
}

// ScenarioNone is the name of the identity scenario.
const ScenarioNone = "none"

// builtin returns the named scenario table. A fresh slice each call so
// callers can't corrupt the registry.
func builtin() []Scenario {
	return []Scenario{
		{
			Name:        ScenarioNone,
			Description: "no injection (baseline)",
		},
		{
			Name:                "flaky-link",
			Description:         "5% transient transfer failures plus 10% jitter; migration engine retries with backoff",
			TransferFailProb:    0.05,
			LinkJitterFrac:      0.10,
			MaxConsecutiveFails: 4,
		},
		{
			Name:              "degraded-link",
			Description:       "link at quarter bandwidth with 25% jitter (lane renegotiation / switch contention)",
			LinkDegradeFactor: 4,
			LinkJitterFrac:    0.25,
		},
		{
			Name:           "fault-storm",
			Description:    "fault-buffer overflow (4-block cycles) with 20% dropped and 10% duplicated driver notifications",
			FaultBatchCap:  4,
			DropNotifyProb: 0.20,
			DupNotifyProb:  0.10,
		},
		{
			Name:                 "host-pressure",
			Description:          "periodic host-memory pressure spikes: transfers 6x slower for 300us of every 1ms",
			HostPressureFactor:   6,
			HostPressurePeriod:   sim.Duration(1 * time.Millisecond),
			HostPressureDuration: sim.Duration(300 * time.Microsecond),
		},
		{
			Name:             "tiny-tables",
			Description:      "correlation-table capacity pressure: block-table rows divided by 16",
			TableRowsDivisor: 16,
		},
		{
			Name:              "stalled-migrator",
			Description:       "migration thread descheduled for 200us after 30% of kernel launches",
			MigratorStallProb: 0.30,
			MigratorStallTime: sim.Duration(200 * time.Microsecond),
		},
		{
			Name:               "cancel-mid-iteration",
			Description:        "supervisor cancels the run after 500 kernel launches (mid-iteration, tables warm); partial result, demand drained, prefetches discarded",
			CancelAfterKernels: 500,
		},
		{
			Name:            "deadline-tight",
			Description:     "3ms virtual-time deadline expires mid-run; partial result with deadline-exceeded status",
			VirtualDeadline: sim.Duration(3 * time.Millisecond),
		},
		{
			Name:        "everything",
			Description: "all perturbations at moderate intensity",

			LinkDegradeFactor:   2,
			LinkJitterFrac:      0.10,
			TransferFailProb:    0.02,
			MaxConsecutiveFails: 3,

			FaultBatchCap:  8,
			DropNotifyProb: 0.10,
			DupNotifyProb:  0.05,

			HostPressureFactor:   3,
			HostPressurePeriod:   sim.Duration(2 * time.Millisecond),
			HostPressureDuration: sim.Duration(400 * time.Microsecond),

			TableRowsDivisor: 4,

			MigratorStallProb: 0.15,
			MigratorStallTime: sim.Duration(100 * time.Microsecond),
		},
	}
}

// Scenarios returns every named scenario, the identity scenario first and
// the rest sorted by name.
func Scenarios() []Scenario {
	s := builtin()
	sort.Slice(s[1:], func(i, j int) bool { return s[1+i].Name < s[1+j].Name })
	return s
}

// Names returns the scenario names in Scenarios order.
func Names() []string {
	all := Scenarios()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// ByName resolves a scenario; the empty string resolves to "none".
func ByName(name string) (Scenario, error) {
	if name == "" {
		name = ScenarioNone
	}
	for _, s := range builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
}

// Active reports whether the scenario perturbs anything.
func (s Scenario) Active() bool {
	return s.LinkDegradeFactor > 1 || s.LinkJitterFrac > 0 || s.TransferFailProb > 0 ||
		s.FaultBatchCap > 0 || s.DropNotifyProb > 0 || s.DupNotifyProb > 0 ||
		(s.HostPressureFactor > 1 && s.HostPressurePeriod > 0) ||
		s.TableRowsDivisor > 1 || s.MigratorStallProb > 0 ||
		s.CancelAfterKernels > 0 || s.VirtualDeadline > 0
}

// Interrupts reports whether the scenario ends the run early (supervisor
// cancellation or a virtual deadline) rather than merely degrading it.
func (s Scenario) Interrupts() bool {
	return s.CancelAfterKernels > 0 || s.VirtualDeadline > 0
}
