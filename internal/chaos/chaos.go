// Package chaos is a deterministic, seeded fault-injection layer for the
// DeepUM reproduction. It perturbs every substrate the simulation is built
// on — link bandwidth and latency (degradation, jitter), transfer
// reliability (transient failures the migration engine must retry), the
// fault-handling path (fault-buffer overflow, dropped and duplicated fault
// notifications to the driver), host-memory pressure spikes, correlation-
// table capacity, and the migration thread's responsiveness — so the engine
// can demonstrate the paper's central resilience claim: a driver-level
// prefetcher whose predictions fail merely loses speed, never correctness
// (§6.2 DLRM, §6.4 host-memory wall).
//
// All injection decisions come from one seeded PRNG consulted in simulation
// order, so a run under any scenario is exactly reproducible: same seed,
// same scenario, byte-identical event trace. The package also houses the
// always-on invariant checker (invariants.go) the engine runs under every
// scenario, and a real-time injector for the concurrent pipeline
// (pipeline.go).
package chaos

import (
	"math/rand"

	"deepum/internal/correlation"
	"deepum/internal/sim"
)

// Stats counts the perturbations an Injector delivered and how the
// consumers degraded. All counters are written from the single simulation
// goroutine.
type Stats struct {
	TransferFailures int64        // transfers that transiently failed
	DemandRetries    int64        // demand-migration retry attempts
	PrefetchRetries  int64        // prefetch retry attempts
	PrefetchGiveUps  int64        // prefetches abandoned to on-demand faulting
	BackoffTime      sim.Duration // virtual time spent backing off
	BatchCapHits     int64        // fault batches truncated by buffer overflow
	DroppedNotifies  int64        // fault notifications the driver never saw
	DupNotifies      int64        // fault notifications delivered twice
	MigratorStalls   int64        // injected migration-thread stalls
	StallTime        sim.Duration // total injected stall time
	PressureWindows  int64        // transfers slowed by a host-pressure spike
	InjectedCancels  int64        // supervisor cancellations delivered
}

// Injector perturbs a simulated run according to one Scenario. It
// implements sim.TransferPerturber for the link-level faults and exposes
// query methods the engine consults on the fault and migration paths.
// It is not safe for concurrent use: the discrete-event engine is
// single-threaded, which is what keeps injection deterministic.
type Injector struct {
	sc  Scenario
	rng *rand.Rand

	// clock, when set, lets the timeless query methods (FaultBatchCap,
	// DropNotify, DupNotify, MigratorStall) locate themselves on the
	// virtual timeline; phased injection needs it. Nil means time zero.
	clock func() sim.Time
	// phases, when non-empty, overlay scheduled scenarios on top of sc;
	// effMask/effCache memoize the merge for the current activation set.
	phases   []Phase
	effMask  uint64
	effCache Scenario

	// consecFails bounds how many transfer failures can occur in a row, so
	// a retry loop in the migration engine always terminates.
	consecFails int
	// kernelLaunches counts launches toward CancelAfterKernels.
	kernelLaunches int64

	Stats Stats
}

// NewInjector returns an injector for the scenario, with every decision
// drawn from a PRNG seeded by seed.
func NewInjector(sc Scenario, seed int64) *Injector {
	sc = sc.withDefaults()
	return &Injector{sc: sc, rng: rand.New(rand.NewSource(seed))}
}

// Scenario returns the base scenario the injector was built from (phased
// overlays, if any, are not folded in).
func (in *Injector) Scenario() Scenario { return in.sc }

// SetClock installs the virtual-time source the timeless query methods use
// to locate themselves on the schedule. The engine installs its event
// clock; without one, phased injection evaluates at time zero. Nil-safe.
func (in *Injector) SetClock(fn func() sim.Time) {
	if in != nil {
		in.clock = fn
	}
}

func (in *Injector) now() sim.Time {
	if in.clock != nil {
		return in.clock()
	}
	return 0
}

// PerturbTransfer implements sim.TransferPerturber: it returns the perturbed
// occupancy for a transfer of n bytes whose unperturbed duration is base,
// and whether the transfer transiently fails (the attempt still occupies
// the link; the caller retries). A nil *Injector perturbs nothing.
func (in *Injector) PerturbTransfer(at sim.Time, n int64, dir sim.Direction, base sim.Duration) (sim.Duration, bool) {
	if in == nil {
		return base, false
	}
	sc := in.eff(at)
	d := base
	if sc.LinkDegradeFactor > 1 {
		d = sim.Duration(float64(d) * sc.LinkDegradeFactor)
	}
	if sc.LinkJitterFrac > 0 {
		// Uniform jitter in [-frac, +frac] around the (possibly degraded)
		// duration; never below zero.
		j := 1 + sc.LinkJitterFrac*(2*in.rng.Float64()-1)
		if j < 0 {
			j = 0
		}
		d = sim.Duration(float64(d) * j)
	}
	if f := hostPressure(sc, at); f > 1 {
		d = sim.Duration(float64(d) * f)
		in.Stats.PressureWindows++
	}
	fail := false
	if sc.TransferFailProb > 0 && in.consecFails < sc.MaxConsecutiveFails &&
		in.rng.Float64() < sc.TransferFailProb {
		fail = true
		in.consecFails++
		in.Stats.TransferFailures++
	} else {
		in.consecFails = 0
	}
	return d, fail
}

// hostPressure returns the transfer slowdown factor active at virtual time
// at: during a pressure spike the host's memory subsystem is saturated and
// every UM transfer runs slower.
func hostPressure(sc *Scenario, at sim.Time) float64 {
	if sc.HostPressureFactor <= 1 || sc.HostPressurePeriod <= 0 {
		return 1
	}
	phase := sim.Duration(at) % sc.HostPressurePeriod
	if phase < sc.HostPressureDuration {
		return sc.HostPressureFactor
	}
	return 1
}

// FaultBatchCap returns the effective number of UM blocks one fault-handling
// cycle may cover, modeling fault-buffer overflow: entries beyond the cap
// are replayed in the next cycle, exactly as a full hardware buffer stalls
// the SMs into retrying.
func (in *Injector) FaultBatchCap(base int) int {
	if in == nil {
		return base
	}
	sc := in.eff(in.now())
	if sc.FaultBatchCap <= 0 || sc.FaultBatchCap >= base {
		return base
	}
	in.Stats.BatchCapHits++
	return sc.FaultBatchCap
}

// DropNotify reports whether the next fault notification to the driver is
// lost (interrupt coalescing under pressure). The block is still served by
// the handler — only the driver's learning is perturbed.
func (in *Injector) DropNotify() bool {
	if in == nil {
		return false
	}
	sc := in.eff(in.now())
	if sc.DropNotifyProb <= 0 {
		return false
	}
	if in.rng.Float64() < sc.DropNotifyProb {
		in.Stats.DroppedNotifies++
		return true
	}
	return false
}

// DupNotify reports whether the next fault notification is delivered twice
// (a replayed interrupt): consumers must tolerate duplicates without
// corrupting their tables or queues.
func (in *Injector) DupNotify() bool {
	if in == nil {
		return false
	}
	sc := in.eff(in.now())
	if sc.DupNotifyProb <= 0 {
		return false
	}
	if in.rng.Float64() < sc.DupNotifyProb {
		in.Stats.DupNotifies++
		return true
	}
	return false
}

// MigratorStall returns how long the migration thread is unresponsive after
// the current kernel launch (scheduling pressure on the host CPU); zero
// when no stall is injected.
func (in *Injector) MigratorStall() sim.Duration {
	if in == nil {
		return 0
	}
	sc := in.eff(in.now())
	if sc.MigratorStallProb <= 0 {
		return 0
	}
	if in.rng.Float64() < sc.MigratorStallProb {
		in.Stats.MigratorStalls++
		in.Stats.StallTime += sc.MigratorStallTime
		return sc.MigratorStallTime
	}
	return 0
}

// NoteKernelLaunch counts one kernel launch toward the scenario's supervisor
// cancellation and reports whether the cancellation fires at this launch. The
// count consumes no PRNG draw, so enabling it does not shift the other
// perturbations' decision sequence.
func (in *Injector) NoteKernelLaunch() bool {
	if in == nil || in.sc.CancelAfterKernels <= 0 {
		return false
	}
	in.kernelLaunches++
	if in.kernelLaunches == in.sc.CancelAfterKernels {
		in.Stats.InjectedCancels++
		return true
	}
	return false
}

// VirtualDeadline returns the scenario's simulated-time budget for the whole
// run, or zero when the scenario imposes none.
func (in *Injector) VirtualDeadline() sim.Duration {
	if in == nil {
		return 0
	}
	return in.sc.VirtualDeadline
}

// ShrinkTables applies the scenario's correlation-table capacity pressure:
// row count divided by TableRowsDivisor (floor 1), modeling a driver built
// with far less CPU memory for tables than Table 4 budgets.
func (in *Injector) ShrinkTables(cfg correlation.BlockTableConfig) correlation.BlockTableConfig {
	if in == nil || in.sc.TableRowsDivisor <= 1 {
		return cfg
	}
	cfg.NumRows /= in.sc.TableRowsDivisor
	if cfg.NumRows < 1 {
		cfg.NumRows = 1
	}
	return cfg
}

// Retry/backoff policy shared by the migration engine's consumers. Backoff
// is exponential in virtual time and bounded, so a flaky link degrades
// throughput without ever wedging the clock.
const (
	// RetryBackoffBase is the virtual-time wait before the first retry.
	RetryBackoffBase = 10 * sim.Duration(1000) // 10us
	// MaxPrefetchRetries bounds retries for background prefetch transfers;
	// past it the command is abandoned and the block falls back to
	// on-demand faulting (correct, merely slower).
	MaxPrefetchRetries = 3
	// MaxDemandRetries bounds retries on the demand path. The injector's
	// MaxConsecutiveFails guarantee means this bound is never reached, but
	// the handler enforces it anyway: past it the transfer is taken as
	// delivered (a real driver would reset the link) so forward progress
	// is unconditional.
	MaxDemandRetries = 16
)

// Backoff returns the bounded exponential backoff before retry attempt
// (0-indexed), and records it in the stats.
func (in *Injector) Backoff(attempt int) sim.Duration {
	if attempt > 6 {
		attempt = 6
	}
	d := RetryBackoffBase << attempt
	if in != nil {
		in.Stats.BackoffTime += d
	}
	return d
}

// NoteDemandRetry counts one demand-path retry attempt.
func (in *Injector) NoteDemandRetry() {
	if in != nil {
		in.Stats.DemandRetries++
	}
}

// NotePrefetchRetry counts one prefetch retry attempt.
func (in *Injector) NotePrefetchRetry() {
	if in != nil {
		in.Stats.PrefetchRetries++
	}
}

// NotePrefetchGiveUp counts one abandoned prefetch command.
func (in *Injector) NotePrefetchGiveUp() {
	if in != nil {
		in.Stats.PrefetchGiveUps++
	}
}
