package chaos

import (
	"errors"
	"sync"

	"deepum/internal/store"
)

// Disk-fault injection for the checkpoint store. FaultFS implements
// store.FS over an in-memory store.MemFS and injects scripted faults at
// exact operation ordinals, so every failure mode the store claims to
// survive — a write torn mid-frame, a bit flipped under the page cache, an
// fsync the device lied about, a volume filling mid-append, a power cut at
// any fsync/rename boundary — is reproduced deterministically, not
// sampled. The crash model is pessimistic: Surviving() returns only the
// fsync'd prefix of every file, the least a real power cut preserves.

// Injected fault errors. The store does not need to recognize them — any
// error on the seam must leave it consistent — but tests assert on them.
var (
	// ErrTornWrite reports a write that landed only partially.
	ErrTornWrite = errors.New("chaos: write torn mid-frame")
	// ErrNoSpace reports a device that filled mid-append.
	ErrNoSpace = errors.New("chaos: no space left on device")
	// ErrSyncFail reports an fsync the device refused; the written bytes
	// remain volatile.
	ErrSyncFail = errors.New("chaos: fsync failed")
	// ErrCrashed reports any operation attempted after the scripted crash
	// boundary; the filesystem is dead until rebuilt from Surviving().
	ErrCrashed = errors.New("chaos: filesystem crashed")
)

// DiskFaults scripts one injector. Ordinals are 1-based and count
// operations across the whole filesystem, not per file; zero disables the
// corresponding fault, so the zero value injects nothing.
type DiskFaults struct {
	// TornWriteAt tears the Nth Write: only TornKeep bytes of the payload
	// land and the write reports ErrTornWrite.
	TornWriteAt int
	TornKeep    int

	// BitFlipAt XORs BitFlipMask (default 0x01) into the byte at
	// BitFlipOff within the Nth Write's payload after it lands — the write
	// itself reports success, as silent corruption does.
	BitFlipAt   int
	BitFlipOff  int64
	BitFlipMask byte

	// FailSyncAt fails the Nth Sync with ErrSyncFail. The bytes stay
	// volatile: a later crash drops them. A failed sync does not count as
	// a completed crash boundary.
	FailSyncAt int

	// NoSpaceAt fails the Nth Write with ErrNoSpace after NoSpaceKeep
	// bytes land (device full mid-append; the partial frame is the
	// store's problem to roll back).
	NoSpaceAt   int
	NoSpaceKeep int

	// CrashAtBoundary kills the filesystem at the Nth fsync/rename
	// boundary: boundaries 1..N-1 complete, the Nth fails without taking
	// effect, and every operation after it returns ErrCrashed. Sweeping N
	// from 1 until the workload completes visits every commit point.
	CrashAtBoundary int
}

// FaultFS is a store.FS that injects the scripted faults. Safe for
// concurrent use.
type FaultFS struct {
	mu      sync.Mutex
	inner   *store.MemFS
	plan    DiskFaults
	writes  int
	syncs   int
	bounds  int
	crashed bool
}

// NewFaultFS returns an empty fault-injecting filesystem running plan.
func NewFaultFS(plan DiskFaults) *FaultFS {
	if plan.BitFlipMask == 0 {
		plan.BitFlipMask = 0x01
	}
	return &FaultFS{inner: store.NewMemFS(), plan: plan}
}

// Inner exposes the backing MemFS (corpus setup and raw inspection).
func (f *FaultFS) Inner() *store.MemFS { return f.inner }

// Crashed reports whether the scripted crash boundary has been hit.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Boundaries reports how many fsync/rename boundaries completed — the
// sweep's upper bound: a clean run's count is the number of distinct crash
// points worth visiting.
func (f *FaultFS) Boundaries() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bounds
}

// Surviving snapshots what a power cut at this instant would preserve:
// every file cut to its fsync'd prefix. Reopen the store on the result to
// model a post-crash restart.
func (f *FaultFS) Surviving() *store.MemFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.inner.Clone(true)
}

// boundaryLocked advances the crash-boundary counter and kills the
// filesystem when the scripted boundary is reached. The dying operation
// does not take effect.
func (f *FaultFS) boundaryLocked() error {
	if f.crashed {
		return ErrCrashed
	}
	f.bounds++
	if f.plan.CrashAtBoundary > 0 && f.bounds >= f.plan.CrashAtBoundary {
		f.crashed = true
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(path string) (store.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenFile(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, inner: inner}, nil
}

// Rename is a crash boundary: a compaction commits here, so the sweep must
// be able to die on either side of it.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.boundaryLocked(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return f.inner.Remove(path)
}

type faultFile struct {
	fs    *FaultFS
	path  string
	inner store.File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writes++
	switch n := f.writes; {
	case n == f.plan.TornWriteAt:
		keep := f.plan.TornKeep
		if keep > len(p) {
			keep = len(p)
		}
		_, _ = ff.inner.Write(p[:keep])
		return keep, ErrTornWrite
	case n == f.plan.NoSpaceAt:
		keep := f.plan.NoSpaceKeep
		if keep > len(p) {
			keep = len(p)
		}
		_, _ = ff.inner.Write(p[:keep])
		return keep, ErrNoSpace
	case n == f.plan.BitFlipAt:
		wrote, err := ff.inner.Write(p)
		if err == nil && f.plan.BitFlipOff >= 0 && f.plan.BitFlipOff < int64(len(p)) {
			size, _ := ff.inner.Size()
			off := size - int64(len(p)) + f.plan.BitFlipOff
			_ = f.inner.CorruptByte(ff.path, off, f.plan.BitFlipMask)
		}
		return wrote, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.syncs == f.plan.FailSyncAt {
		return ErrSyncFail
	}
	if err := f.boundaryLocked(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Truncate(size int64) error {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Size() (int64, error) {
	f := ff.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	return ff.inner.Size()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
