package chaos

import (
	"fmt"
	"sort"
	"strings"

	"deepum/internal/sim"
)

// Phased injection: the soak harness composes schedules where several
// scenarios switch on and off (and overlap) at random virtual-time offsets
// under a fixed seed. A phase overlays one scenario on the injector's base
// scenario for a window of virtual time; the effective scenario at any
// instant is the deterministic fold of the base and every active phase.

// Phase is one scheduled scenario window.
type Phase struct {
	// Scenario is the overlay. It must be non-interrupting: lifecycle
	// fields (CancelAfterKernels, VirtualDeadline) cannot be windowed and
	// are rejected by NewScheduledInjector.
	Scenario Scenario
	// Onset is when the phase activates (virtual time from run start).
	Onset sim.Duration
	// Duration is how long it stays active; 0 means until the end of the
	// run.
	Duration sim.Duration
}

// active reports whether the phase covers virtual time at.
func (p Phase) active(at sim.Time) bool {
	if sim.Duration(at) < p.Onset {
		return false
	}
	return p.Duration <= 0 || sim.Duration(at) < p.Onset+p.Duration
}

// String renders "name@onset+duration" for reproducer output.
func (p Phase) String() string {
	return fmt.Sprintf("%s@%dus+%dus", p.Scenario.Name,
		int64(p.Onset)/1000, int64(p.Duration)/1000)
}

// FormatPhases renders a schedule compactly for logs and reproducers.
func FormatPhases(phases []Phase) string {
	parts := make([]string, len(phases))
	for i, p := range phases {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

// NewScheduledInjector builds an injector whose effective scenario varies
// over virtual time: base everywhere, with each phase's scenario folded in
// while its window is active. All randomness still comes from the one
// seeded PRNG, so a scheduled run is exactly as reproducible as a static
// one. Callers must install a clock (the engine does) or every timeless
// query evaluates at time zero.
//
// Two whole-run exceptions, by construction: correlation tables are sized
// once at startup, so the largest TableRowsDivisor across base and phases
// applies for the entire run; and lifecycle fields are rejected on phases
// because "cancel the run, but only between t1 and t2" is not meaningful.
func NewScheduledInjector(base Scenario, phases []Phase, seed int64) (*Injector, error) {
	for i, p := range phases {
		if p.Scenario.Interrupts() {
			return nil, fmt.Errorf("chaos: phase %d (%s) uses an interrupting scenario; lifecycle fields cannot be windowed",
				i, p.Scenario.Name)
		}
		if p.Onset < 0 || p.Duration < 0 {
			return nil, fmt.Errorf("chaos: phase %d (%s) has a negative onset or duration", i, p.Scenario.Name)
		}
	}
	if len(phases) > 64 {
		return nil, fmt.Errorf("chaos: %d phases exceed the 64-phase mask", len(phases))
	}
	in := NewInjector(base, seed)
	in.phases = make([]Phase, len(phases))
	copy(in.phases, phases)
	sort.SliceStable(in.phases, func(i, j int) bool { return in.phases[i].Onset < in.phases[j].Onset })
	// Fold table pressure once: tables are built at startup.
	for _, p := range in.phases {
		if p.Scenario.TableRowsDivisor > in.sc.TableRowsDivisor {
			in.sc.TableRowsDivisor = p.Scenario.TableRowsDivisor
		}
	}
	in.effMask = ^uint64(0) // force the first eff() to merge
	return in, nil
}

// Phases returns the injector's schedule (nil for a static injector).
func (in *Injector) Phases() []Phase {
	if in == nil {
		return nil
	}
	out := make([]Phase, len(in.phases))
	copy(out, in.phases)
	return out
}

// eff returns the effective scenario at virtual time at. For a static
// injector this is the base scenario; with phases the fold is memoized per
// activation bitmask, so the merge reruns only when a phase switches on or
// off — not per query.
func (in *Injector) eff(at sim.Time) *Scenario {
	if len(in.phases) == 0 {
		return &in.sc
	}
	var mask uint64
	for i, p := range in.phases {
		if p.active(at) {
			mask |= 1 << i
		}
	}
	if mask != in.effMask {
		in.effCache = in.sc
		for i, p := range in.phases {
			if mask&(1<<i) != 0 {
				in.effCache = mergeScenario(in.effCache, p.Scenario)
			}
		}
		in.effCache = in.effCache.withDefaults()
		in.effMask = mask
	}
	return &in.effCache
}

// mergeScenario folds overlay p into dst. Composition is chosen so that
// overlapping phases degrade monotonically (two active faults are never
// milder than one):
//
//   - degrade factors multiply, jitter fractions add
//   - failure/drop/dup/stall probabilities combine as complements
//     (1-(1-a)(1-b)): independent fault sources
//   - MaxConsecutiveFails takes the max (loosest bound that still
//     terminates), batch caps take the tightest non-zero cap
//   - host pressure takes the strongest spike train
//   - stall time takes the max
//
// TableRowsDivisor and lifecycle fields are handled at construction (see
// NewScheduledInjector).
func mergeScenario(dst, p Scenario) Scenario {
	if p.LinkDegradeFactor > 1 {
		if dst.LinkDegradeFactor < 1 {
			dst.LinkDegradeFactor = 1
		}
		dst.LinkDegradeFactor *= p.LinkDegradeFactor
	}
	dst.LinkJitterFrac += p.LinkJitterFrac
	dst.TransferFailProb = combineProb(dst.TransferFailProb, p.TransferFailProb)
	if p.MaxConsecutiveFails > dst.MaxConsecutiveFails {
		dst.MaxConsecutiveFails = p.MaxConsecutiveFails
	}
	if p.FaultBatchCap > 0 && (dst.FaultBatchCap == 0 || p.FaultBatchCap < dst.FaultBatchCap) {
		dst.FaultBatchCap = p.FaultBatchCap
	}
	dst.DropNotifyProb = combineProb(dst.DropNotifyProb, p.DropNotifyProb)
	dst.DupNotifyProb = combineProb(dst.DupNotifyProb, p.DupNotifyProb)
	if p.HostPressureFactor > dst.HostPressureFactor {
		dst.HostPressureFactor = p.HostPressureFactor
		dst.HostPressurePeriod = p.HostPressurePeriod
		dst.HostPressureDuration = p.HostPressureDuration
	}
	dst.MigratorStallProb = combineProb(dst.MigratorStallProb, p.MigratorStallProb)
	if p.MigratorStallTime > dst.MigratorStallTime {
		dst.MigratorStallTime = p.MigratorStallTime
	}
	return dst
}

// combineProb combines two independent fault probabilities: the chance at
// least one fires.
func combineProb(a, b float64) float64 {
	if a <= 0 {
		return b
	}
	if b <= 0 {
		return a
	}
	return 1 - (1-a)*(1-b)
}
