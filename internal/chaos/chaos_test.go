package chaos

import (
	"sync"
	"testing"

	"deepum/internal/correlation"
	"deepum/internal/sim"
)

func TestScenarioRegistry(t *testing.T) {
	names := Names()
	if len(names) < 7 {
		t.Fatalf("only %d scenarios: %v", len(names), names)
	}
	if names[0] != ScenarioNone {
		t.Fatalf("first scenario = %q, want %q", names[0], ScenarioNone)
	}
	for _, n := range names {
		sc, err := ByName(n)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if sc.Name != n {
			t.Fatalf("ByName(%q).Name = %q", n, sc.Name)
		}
		if sc.Description == "" {
			t.Fatalf("scenario %q has no description", n)
		}
		if n == ScenarioNone {
			if sc.Active() {
				t.Fatal("the none scenario must be inactive")
			}
		} else if !sc.Active() {
			t.Fatalf("scenario %q perturbs nothing", n)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("unknown scenario name accepted")
	}
	if sc, err := ByName(""); err != nil || sc.Name != ScenarioNone {
		t.Fatalf("ByName(\"\") = (%v, %v), want the none scenario", sc.Name, err)
	}
}

// TestNilInjectorInert: every method is safe and inert on a nil *Injector,
// so callers never branch on "chaos enabled".
func TestNilInjectorInert(t *testing.T) {
	var in *Injector
	if d, fail := in.PerturbTransfer(0, 1<<20, sim.HostToDevice, 100); d != 100 || fail {
		t.Fatalf("nil PerturbTransfer = (%d, %v)", d, fail)
	}
	if got := in.FaultBatchCap(64); got != 64 {
		t.Fatalf("nil FaultBatchCap = %d", got)
	}
	if in.DropNotify() || in.DupNotify() {
		t.Fatal("nil injector dropped or duplicated a notify")
	}
	if in.MigratorStall() != 0 {
		t.Fatal("nil injector stalled the migrator")
	}
	cfg := correlation.DefaultBlockTableConfig()
	if in.ShrinkTables(cfg) != cfg {
		t.Fatal("nil injector shrank the tables")
	}
	in.NoteDemandRetry()
	in.NotePrefetchRetry()
	in.NotePrefetchGiveUp()
	if in.NoteKernelLaunch() {
		t.Fatal("nil injector fired a supervisor cancel")
	}
	if in.VirtualDeadline() != 0 {
		t.Fatal("nil injector imposed a deadline")
	}
}

// TestSupervisorCancelFiresOnce: the launch counter fires exactly at the
// configured launch, once, and never on an inactive scenario.
func TestSupervisorCancelFiresOnce(t *testing.T) {
	in := NewInjector(Scenario{CancelAfterKernels: 3}, 1)
	fired := 0
	for i := 0; i < 10; i++ {
		if in.NoteKernelLaunch() {
			if i != 2 {
				t.Fatalf("cancel fired at launch %d, want launch 3", i+1)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Fatalf("cancel fired %d times, want once", fired)
	}
	if in.Stats.InjectedCancels != 1 {
		t.Fatalf("InjectedCancels = %d", in.Stats.InjectedCancels)
	}
	quiet := NewInjector(Scenario{TransferFailProb: 0.5}, 1)
	for i := 0; i < 100; i++ {
		if quiet.NoteKernelLaunch() {
			t.Fatal("cancel fired without CancelAfterKernels")
		}
	}
}

// TestInterrupts: the Interrupts classifier covers exactly the two
// run-ending fields, and the builtin interrupting scenarios carry them.
func TestInterrupts(t *testing.T) {
	if (Scenario{}).Interrupts() {
		t.Fatal("zero scenario interrupts")
	}
	if !(Scenario{CancelAfterKernels: 1}).Interrupts() ||
		!(Scenario{VirtualDeadline: 1}).Interrupts() {
		t.Fatal("interrupting field not classified")
	}
	for _, name := range []string{"cancel-mid-iteration", "deadline-tight"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.Interrupts() {
			t.Fatalf("builtin scenario %q does not interrupt", name)
		}
	}
	for _, name := range []string{"none", "flaky-link", "everything"} {
		sc, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Interrupts() {
			t.Fatalf("scenario %q unexpectedly interrupts", name)
		}
	}
}

// TestInjectorDeterminism: two injectors with the same scenario and seed
// produce byte-identical perturbation sequences; a different seed diverges.
func TestInjectorDeterminism(t *testing.T) {
	sc, err := ByName("everything")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) ([]sim.Duration, []bool, Stats) {
		in := NewInjector(sc, seed)
		durs := make([]sim.Duration, 0, 500)
		fails := make([]bool, 0, 500)
		at := sim.Time(0)
		for i := 0; i < 500; i++ {
			d, fail := in.PerturbTransfer(at, sim.BlockSize, sim.HostToDevice, 1000)
			durs = append(durs, d)
			fails = append(fails, fail)
			at = at.Add(d)
			in.DropNotify()
			in.DupNotify()
			in.MigratorStall()
		}
		return durs, fails, in.Stats
	}
	d1, f1, s1 := run(7)
	d2, f2, s2 := run(7)
	if s1 != s2 {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", s1, s2)
	}
	for i := range d1 {
		if d1[i] != d2[i] || f1[i] != f2[i] {
			t.Fatalf("same seed diverged at step %d: (%d,%v) vs (%d,%v)", i, d1[i], f1[i], d2[i], f2[i])
		}
	}
	_, _, s3 := run(8)
	if s1 == s3 {
		t.Fatal("different seeds produced identical stats (suspicious)")
	}
}

// TestConsecutiveFailureBound: even with TransferFailProb = 1 the injector
// never fails more than MaxConsecutiveFails transfers in a row, so every
// retry loop terminates.
func TestConsecutiveFailureBound(t *testing.T) {
	in := NewInjector(Scenario{TransferFailProb: 1, MaxConsecutiveFails: 3}, 1)
	consec, maxConsec := 0, 0
	for i := 0; i < 1000; i++ {
		_, fail := in.PerturbTransfer(0, sim.BlockSize, sim.HostToDevice, 1000)
		if fail {
			consec++
			if consec > maxConsec {
				maxConsec = consec
			}
		} else {
			consec = 0
		}
	}
	if maxConsec != 3 {
		t.Fatalf("max consecutive failures = %d, want exactly 3 (prob 1 capped by bound)", maxConsec)
	}
	if in.Stats.TransferFailures == 0 {
		t.Fatal("no failures recorded at probability 1")
	}
}

func TestBackoffBounded(t *testing.T) {
	var in *Injector
	prev := sim.Duration(0)
	for a := 0; a < 6; a++ {
		b := in.Backoff(a)
		if b <= prev {
			t.Fatalf("backoff not increasing: Backoff(%d) = %d after %d", a, b, prev)
		}
		prev = b
	}
	if in.Backoff(6) != in.Backoff(100) {
		t.Fatalf("backoff unbounded: Backoff(6)=%d, Backoff(100)=%d", in.Backoff(6), in.Backoff(100))
	}
	if in.Backoff(0) != RetryBackoffBase {
		t.Fatalf("Backoff(0) = %d, want %d", in.Backoff(0), RetryBackoffBase)
	}
}

func TestShrinkTablesFloor(t *testing.T) {
	cfg := correlation.DefaultBlockTableConfig()
	in := NewInjector(Scenario{TableRowsDivisor: 1 << 30}, 1)
	got := in.ShrinkTables(cfg)
	if got.NumRows != 1 {
		t.Fatalf("NumRows = %d, want floor of 1", got.NumRows)
	}
	if got.Assoc != cfg.Assoc || got.NumSuccs != cfg.NumSuccs {
		t.Fatal("ShrinkTables changed fields other than NumRows")
	}
	in16 := NewInjector(Scenario{TableRowsDivisor: 16}, 1)
	if got := in16.ShrinkTables(cfg); got.NumRows != cfg.NumRows/16 {
		t.Fatalf("NumRows = %d, want %d", got.NumRows, cfg.NumRows/16)
	}
}

func TestFaultBatchCap(t *testing.T) {
	in := NewInjector(Scenario{FaultBatchCap: 4}, 1)
	if got := in.FaultBatchCap(64); got != 4 {
		t.Fatalf("cap = %d, want 4", got)
	}
	if in.Stats.BatchCapHits != 1 {
		t.Fatalf("BatchCapHits = %d", in.Stats.BatchCapHits)
	}
	// A cap at or above the base is not a hit.
	if got := in.FaultBatchCap(3); got != 3 {
		t.Fatalf("cap = %d, want base 3 (cap above base)", got)
	}
	if in.Stats.BatchCapHits != 1 {
		t.Fatalf("BatchCapHits = %d after non-binding call", in.Stats.BatchCapHits)
	}
}

// TestHostPressureWindow: transfers inside the spike window slow by the
// factor; outside they are untouched.
func TestHostPressureWindow(t *testing.T) {
	period := sim.Duration(1_000_000)
	in := NewInjector(Scenario{
		HostPressureFactor:   5,
		HostPressurePeriod:   period,
		HostPressureDuration: sim.Duration(300_000),
	}, 1)
	base := sim.Duration(1000)
	if d, _ := in.PerturbTransfer(sim.Time(100_000), sim.BlockSize, sim.HostToDevice, base); d != 5*base {
		t.Fatalf("in-window transfer = %d, want %d", d, 5*base)
	}
	if d, _ := in.PerturbTransfer(sim.Time(500_000), sim.BlockSize, sim.HostToDevice, base); d != base {
		t.Fatalf("out-of-window transfer = %d, want %d", d, base)
	}
	// The window repeats every period.
	if d, _ := in.PerturbTransfer(sim.Time(period).Add(sim.Duration(100_000)), sim.BlockSize, sim.HostToDevice, base); d != 5*base {
		t.Fatalf("second-period in-window transfer = %d, want %d", d, 5*base)
	}
	if in.Stats.PressureWindows != 2 {
		t.Fatalf("PressureWindows = %d, want 2", in.Stats.PressureWindows)
	}
}

// TestPipelineInjectorConcurrent: the real-time injector serves multiple
// goroutines (fault handler, stage loops) without data races.
func TestPipelineInjectorConcurrent(t *testing.T) {
	sc, err := ByName("fault-storm")
	if err != nil {
		t.Fatal(err)
	}
	pi := NewPipelineInjector(sc, 1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				pi.DropFault()
				pi.DupFault()
				pi.StageDelay("migration")
			}
		}()
	}
	wg.Wait()
	_, drops, dups := pi.Counts()
	if drops == 0 || dups == 0 {
		t.Fatalf("counts = (%d, %d): injector never fired at 20%%/10%% over 4000 trials", drops, dups)
	}
}
