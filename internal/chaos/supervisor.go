package chaos

import "fmt"

// Supervisor-level chaos. The scenarios in scenario.go perturb the UM
// substrate inside one run; these perturb the layer above — the multi-run
// supervisor's worker pool, admission path, and crash recovery. They are
// deliberately structural rather than PRNG-knob driven: a worker panic is
// injected by probability, but kill-restart and admission storms are
// orchestration patterns the supervisor tests (and the supervisor-soak CI
// job) drive directly, so the registry documents their shape and the
// deterministic seeds live with the injection sites.
type SupervisorScenario struct {
	Name        string
	Description string

	// WorkerPanicProb is the per-run probability that the worker executing
	// the run panics mid-flight. The supervisor recovers the worker, marks
	// the run failed, releases its quota, and keeps serving.
	WorkerPanicProb float64

	// KillRestart marks the kill -9 pattern: the supervisor process dies
	// with the journal intact and a restarted supervisor must replay it,
	// resuming interrupted runs from their checkpoints. Driven by the
	// kill-restart equivalence tests via Supervisor.Kill.
	KillRestart bool

	// AdmissionBurst is the submission-storm size the admission-control
	// tests throw at a full queue: every rejection must be a typed error,
	// never a block or a panic.
	AdmissionBurst int

	// ShardKill marks the federation failover pattern: one shard of a
	// supervisor federation is kill-9'd mid-storm (journal intact) and a
	// successor peer must adopt its runs by journal handoff — queued runs
	// restart cold, interrupted runs resume from their latest checkpoint,
	// finished runs stay finished, no run ID lost or duplicated. Driven by
	// the federation failover tests and the deepum-soak -federation mode
	// via Federation.Kill / Federation.Handoff.
	ShardKill bool

	// DiskFault marks the checkpoint-store durability pattern: torn
	// writes, silent bit flips, refused fsyncs and ENOSPC injected under
	// the content-addressed store via FaultFS, plus crash-at-boundary
	// sweeps that kill the filesystem at every fsync/rename commit point.
	// Driven by the disk-fault tests and the store-durability CI job; the
	// contract is that no committed checkpoint is lost, every injected
	// corruption is detected and either repaired from a surviving replica
	// or degraded to a cold restart, and no run is lost or duplicated.
	DiskFault bool

	// ContentionStorm marks the multi-tenant oversubscription pattern:
	// concurrent runs whose aggregate memory demand is a multiple of the
	// GPU budget are admitted under the oversubscription arbiter, driving
	// sustained pressure through burst revocation into suspend-to-
	// checkpoint. Driven by the arbiter tests and the deepum-soak
	// -contention mode; the contract is that every admitted run completes
	// (no hard QuotaError for a run that fits the budget alone), at least
	// one run survives a suspend/resume cycle, no run is lost or
	// duplicated, and every AccessChecksum matches the solo oracle.
	ContentionStorm bool

	// RetryStorm marks the exactly-once admission pattern: aggressive-
	// timeout HTTP clients whose transport injects timeouts-after-send
	// (the server admitted the submission, the client never learned)
	// retry every submit under the same idempotency key, through a
	// mid-storm shard kill and journal handoff. Driven by FaultTransport
	// plus the deepum-soak -retry-storm mode; the contract is exactly one
	// execution per key, every response for a key naming the same run ID,
	// and the AccessChecksum oracle bit-identical to clean execution.
	RetryStorm bool
}

// Active reports whether the scenario injects anything into a live
// supervisor (kill-restart and admission storms are test-orchestrated and
// inject nothing by themselves).
func (s SupervisorScenario) Active() bool { return s.WorkerPanicProb > 0 }

// SupervisorScenarioNone is the name of the identity scenario.
const SupervisorScenarioNone = "none"

func builtinSupervisor() []SupervisorScenario {
	return []SupervisorScenario{
		{
			Name:        SupervisorScenarioNone,
			Description: "no injection (baseline)",
		},
		{
			Name:            "worker-panic",
			Description:     "each run's worker panics mid-run with 30% probability; pool recovers, run fails typed, quota released",
			WorkerPanicProb: 0.30,
		},
		{
			Name:        "kill-restart",
			Description: "supervisor killed mid-flight (journal intact); restart replays the journal and resumes interrupted runs from checkpoints",
			KillRestart: true,
		},
		{
			Name:           "admission-storm",
			Description:    "256 submissions against a full queue and exhausted quota; every rejection must be typed, non-blocking",
			AdmissionBurst: 256,
		},
		{
			Name:        "shard-kill",
			Description: "one federation shard kill-9'd mid-storm (journal intact); a successor peer adopts its queued and interrupted runs by journal handoff, nothing lost or duplicated",
			ShardKill:   true,
		},
		{
			Name:        "disk-fault",
			Description: "torn writes, bit flips, failed fsyncs, ENOSPC and crash-at-boundary kills injected under the checkpoint store; committed checkpoints survive, corruption is repaired or degraded to cold restart",
			DiskFault:   true,
		},
		{
			Name:            "contention-storm",
			Description:     "concurrent runs demanding a multiple of the GPU budget under the oversubscription arbiter; bursts revoked, victims suspended to checkpoint and resumed, every run completes with its solo checksum",
			ContentionStorm: true,
		},
		{
			Name:        "retry-storm",
			Description: "clients with injected timeouts-after-send retry every submit under idempotency keys through a mid-storm shard kill; exactly one execution per key, responses agree on the run ID, checksums match clean execution",
			RetryStorm:  true,
		},
	}
}

// SupervisorScenarios returns every named supervisor scenario, the
// identity scenario first.
func SupervisorScenarios() []SupervisorScenario { return builtinSupervisor() }

// SupervisorScenarioByName resolves a supervisor scenario; the empty
// string resolves to "none".
func SupervisorScenarioByName(name string) (SupervisorScenario, error) {
	if name == "" {
		name = SupervisorScenarioNone
	}
	names := make([]string, 0, len(builtinSupervisor()))
	for _, s := range builtinSupervisor() {
		if s.Name == name {
			return s, nil
		}
		names = append(names, s.Name)
	}
	return SupervisorScenario{}, fmt.Errorf("chaos: unknown supervisor scenario %q (have %v)", name, names)
}
