package chaos

import (
	"strings"
	"testing"

	"time"

	"deepum/internal/correlation"
	"deepum/internal/sim"
)

func ms(n int64) sim.Duration { return sim.Duration(n) * time.Millisecond }

func TestPhaseActivationWindow(t *testing.T) {
	p := Phase{Onset: ms(10), Duration: ms(5)}
	cases := []struct {
		at   sim.Time
		want bool
	}{
		{sim.Time(ms(9)), false},
		{sim.Time(ms(10)), true}, // onset inclusive
		{sim.Time(ms(12)), true},
		{sim.Time(ms(15)), false}, // end exclusive
		{sim.Time(ms(100)), false},
	}
	for _, tc := range cases {
		if got := p.active(tc.at); got != tc.want {
			t.Errorf("active(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	// Zero duration means open-ended.
	open := Phase{Onset: ms(10)}
	if open.active(sim.Time(ms(9))) || !open.active(sim.Time(ms(1_000_000))) {
		t.Error("zero-duration phase is not open-ended from its onset")
	}
}

func TestScheduledInjectorWindows(t *testing.T) {
	// A pure-degrade overlay (no jitter, no probabilities) is deterministic:
	// transfers run 8x slower exactly while the window is active.
	overlay := Scenario{Name: "slow", LinkDegradeFactor: 8}
	in, err := NewScheduledInjector(Scenario{Name: "base"},
		[]Phase{{Scenario: overlay, Onset: ms(10), Duration: ms(5)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.Duration(1000)
	for _, tc := range []struct {
		at   sim.Time
		want sim.Duration
	}{
		{sim.Time(ms(0)), base},
		{sim.Time(ms(10)), 8 * base},
		{sim.Time(ms(14)), 8 * base},
		{sim.Time(ms(15)), base},     // window closed
		{sim.Time(ms(11)), 8 * base}, // mask memo handles reactivation order
	} {
		got, fail := in.PerturbTransfer(tc.at, 1<<20, sim.HostToDevice, base)
		if fail {
			t.Fatalf("pure-degrade overlay failed a transfer at %v", tc.at)
		}
		if got != tc.want {
			t.Errorf("PerturbTransfer at %v = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestScheduledInjectorValidation(t *testing.T) {
	if _, err := NewScheduledInjector(Scenario{}, []Phase{
		{Scenario: Scenario{Name: "cancel", CancelAfterKernels: 5}, Onset: 0},
	}, 1); err == nil {
		t.Error("accepted an interrupting phase (CancelAfterKernels)")
	}
	if _, err := NewScheduledInjector(Scenario{}, []Phase{
		{Scenario: Scenario{Name: "deadline", VirtualDeadline: ms(1)}, Onset: 0},
	}, 1); err == nil {
		t.Error("accepted an interrupting phase (VirtualDeadline)")
	}
	if _, err := NewScheduledInjector(Scenario{}, []Phase{
		{Scenario: Scenario{Name: "x"}, Onset: -1},
	}, 1); err == nil {
		t.Error("accepted a negative onset")
	}
	long := make([]Phase, 65)
	for i := range long {
		long[i] = Phase{Scenario: Scenario{Name: "x"}}
	}
	if _, err := NewScheduledInjector(Scenario{}, long, 1); err == nil {
		t.Error("accepted 65 phases (mask is 64-bit)")
	}
	if in, err := NewScheduledInjector(Scenario{}, nil, 1); err != nil || in == nil {
		t.Errorf("rejected an empty schedule: %v", err)
	}
}

// TestMergeMonotone pins the composition law: folding a second fault source
// in never makes the effective scenario milder than either input.
func TestMergeMonotone(t *testing.T) {
	a := Scenario{
		LinkDegradeFactor: 4, LinkJitterFrac: 0.1, TransferFailProb: 0.2,
		MaxConsecutiveFails: 2, FaultBatchCap: 32, DropNotifyProb: 0.1,
		MigratorStallProb: 0.05, MigratorStallTime: ms(1),
	}
	b := Scenario{
		LinkDegradeFactor: 2, TransferFailProb: 0.5, MaxConsecutiveFails: 4,
		FaultBatchCap: 16, DupNotifyProb: 0.3, MigratorStallTime: ms(2),
		HostPressureFactor: 3, HostPressurePeriod: ms(10), HostPressureDuration: ms(2),
	}
	m := mergeScenario(a, b)
	if m.LinkDegradeFactor != 8 {
		t.Errorf("degrade factors did not multiply: %v", m.LinkDegradeFactor)
	}
	if m.TransferFailProb <= 0.5 || m.TransferFailProb >= 1 {
		t.Errorf("fail probs did not combine as complements: %v", m.TransferFailProb)
	}
	if want := 1 - (1-0.2)*(1-0.5); m.TransferFailProb != want {
		t.Errorf("TransferFailProb = %v, want %v", m.TransferFailProb, want)
	}
	if m.MaxConsecutiveFails != 4 {
		t.Errorf("MaxConsecutiveFails = %d, want max(2,4)", m.MaxConsecutiveFails)
	}
	if m.FaultBatchCap != 16 {
		t.Errorf("FaultBatchCap = %d, want tightest (16)", m.FaultBatchCap)
	}
	if m.DropNotifyProb != 0.1 || m.DupNotifyProb != 0.3 {
		t.Errorf("one-sided probs changed: drop %v dup %v", m.DropNotifyProb, m.DupNotifyProb)
	}
	if m.HostPressureFactor != 3 || m.HostPressurePeriod != ms(10) {
		t.Errorf("host pressure not taken from stronger source: %+v", m)
	}
	if m.MigratorStallTime != ms(2) {
		t.Errorf("MigratorStallTime = %v, want max", m.MigratorStallTime)
	}
	// Identity overlay changes nothing.
	if id := mergeScenario(a, Scenario{}); id != a {
		t.Errorf("identity merge changed the scenario:\n got %+v\nwant %+v", id, a)
	}
}

// TestScheduledDeterminism drives two identically-seeded scheduled injectors
// through the same query sequence and requires identical outputs and stats —
// the property the soak harness's bit-identical re-runs rest on.
func TestScheduledDeterminism(t *testing.T) {
	build := func() *Injector {
		in, err := NewScheduledInjector(Scenario{Name: "base", LinkJitterFrac: 0.2},
			[]Phase{
				{Scenario: Scenario{Name: "flaky", TransferFailProb: 0.3, MaxConsecutiveFails: 3}, Onset: ms(1), Duration: ms(3)},
				{Scenario: Scenario{Name: "stalls", MigratorStallProb: 0.5, MigratorStallTime: ms(1)}, Onset: ms(2), Duration: ms(4)},
			}, 42)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := build(), build()
	var now sim.Time
	a.SetClock(func() sim.Time { return now })
	b.SetClock(func() sim.Time { return now })
	for i := 0; i < 2000; i++ {
		now = sim.Time(sim.Duration(i) * 3 * time.Microsecond)
		da, fa := a.PerturbTransfer(now, 4096, sim.HostToDevice, 500)
		db, fb := b.PerturbTransfer(now, 4096, sim.HostToDevice, 500)
		if da != db || fa != fb {
			t.Fatalf("step %d: transfers diverged (%v,%v) vs (%v,%v)", i, da, fa, db, fb)
		}
		if sa, sb := a.MigratorStall(), b.MigratorStall(); sa != sb {
			t.Fatalf("step %d: stalls diverged %v vs %v", i, sa, sb)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged:\n a %+v\n b %+v", a.Stats, b.Stats)
	}
	if a.Stats.TransferFailures == 0 || a.Stats.MigratorStalls == 0 {
		t.Fatalf("schedule never fired its phases: %+v", a.Stats)
	}
}

func TestScheduledTablePressureIsWholeRun(t *testing.T) {
	// Correlation tables are sized once at startup, so a phase's table
	// pressure applies for the whole run even before its window opens.
	in, err := NewScheduledInjector(Scenario{}, []Phase{
		{Scenario: Scenario{Name: "tiny", TableRowsDivisor: 8}, Onset: ms(100)},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := in.ShrinkTables(correlation.BlockTableConfig{NumRows: 64, Assoc: 4})
	if cfg.NumRows != 8 {
		t.Fatalf("NumRows = %d, want 8", cfg.NumRows)
	}
}

func TestPhasesAccessorAndFormat(t *testing.T) {
	var nilIn *Injector
	if nilIn.Phases() != nil {
		t.Error("nil injector returned phases")
	}
	phases := []Phase{
		{Scenario: Scenario{Name: "flaky-link"}, Onset: ms(2), Duration: ms(1)},
		{Scenario: Scenario{Name: "fault-storm"}, Onset: ms(1), Duration: ms(3)},
	}
	in, err := NewScheduledInjector(Scenario{Name: "soak"}, phases, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := in.Phases()
	if len(got) != 2 || got[0].Scenario.Name != "fault-storm" {
		t.Fatalf("Phases() = %+v (want onset-sorted copy)", got)
	}
	got[0].Onset = ms(99) // the copy must not alias injector state
	if in.Phases()[0].Onset != ms(1) {
		t.Error("Phases() aliases injector state")
	}
	s := FormatPhases(in.Phases())
	if !strings.Contains(s, "fault-storm@1000us+3000us") ||
		!strings.Contains(s, "flaky-link@2000us+1000us") {
		t.Errorf("FormatPhases = %q", s)
	}
}
