package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"deepum/internal/store"
)

func ckBlob(i int) []byte {
	return bytes.Repeat([]byte{byte(i), 0x5A, byte(i >> 4)}, 30+i%5)
}

// reopenSurviving reopens the store on what a power cut would preserve.
func reopenSurviving(t *testing.T, f *FaultFS, replicas int) (*store.Store, store.OpenStats) {
	t.Helper()
	s, stats, err := store.Open("ck.store", store.Options{FS: f.Surviving(), Replicas: replicas})
	if err != nil {
		t.Fatalf("reopen on surviving state: %v", err)
	}
	return s, stats
}

func TestTornWriteRollsBackAndSurvives(t *testing.T) {
	// Write 1 is the header, write 2 the first put; tear the second put.
	f := NewFaultFS(DiskFaults{TornWriteAt: 3, TornKeep: 9})
	s, _, err := store.Open("ck.store", store.Options{FS: f})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := s.Put(ckBlob(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ckBlob(2)); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn put error = %v, want ErrTornWrite", err)
	}
	// The store rolled the torn frame back; the live store keeps working.
	k3, err := s.Put(ckBlob(3))
	if err != nil {
		t.Fatalf("put after torn write: %v", err)
	}
	for i, k := range map[int]store.Key{1: k1, 3: k3} {
		if got, err := s.Get(k); err != nil || !bytes.Equal(got, ckBlob(i)) {
			t.Fatalf("key %d after rollback: %v", i, err)
		}
	}
	s.Close()

	s2, stats, err := store.Open("ck.store", store.Options{FS: f.Inner()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.TornBytes != 0 || len(stats.CorruptRegions) != 0 || stats.Keys != 2 {
		t.Fatalf("reopen after rollback: %+v", stats)
	}
}

func TestBitFlipDetectedAndRepaired(t *testing.T) {
	f := NewFaultFS(DiskFaults{BitFlipAt: 2, BitFlipOff: 20, BitFlipMask: 0x40})
	s, _, err := store.Open("ck.store", store.Options{FS: f, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Write 2 (write 1 is the header): both replicas of k land in one
	// write, the flip corrupts exactly one frame.
	k, err := s.Put(ckBlob(4))
	if err != nil {
		t.Fatal(err)
	}
	// Silent corruption: Put reported success. Get falls through to the
	// intact replica; Scrub restores the replication factor.
	if got, err := s.Get(k); err != nil || !bytes.Equal(got, ckBlob(4)) {
		t.Fatalf("get past flipped replica: %v", err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 || len(rep.Lost) != 0 || rep.CorruptFrames == 0 {
		t.Fatalf("scrub after bit flip: %+v", rep)
	}
}

func TestBitFlipWithoutReplicaDegradesToColdRestart(t *testing.T) {
	f := NewFaultFS(DiskFaults{BitFlipAt: 2, BitFlipOff: 15})
	s, _, err := store.Open("ck.store", store.Options{FS: f}) // replicas=1
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k, err := s.Put(ckBlob(4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != k {
		t.Fatalf("scrub lost = %v, want [%s]", rep.Lost, k)
	}
	var nf *store.NotFoundError
	if _, err := s.Get(k); !errors.As(err, &nf) {
		t.Fatalf("degraded key error = %v, want *store.NotFoundError", err)
	}
}

func TestFailedSyncLeavesDataVolatile(t *testing.T) {
	f := NewFaultFS(DiskFaults{FailSyncAt: 2}) // sync 1 covers the header
	s, _, err := store.Open("ck.store", store.Options{FS: f})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(ckBlob(1)); !errors.Is(err, ErrSyncFail) {
		t.Fatalf("put error = %v, want ErrSyncFail", err)
	}
	s.Close()

	// The put failed, so the caller never journaled a reference; the
	// surviving (synced-prefix) state must reopen clean without the blob.
	s2, stats := reopenSurviving(t, f, 1)
	defer s2.Close()
	if stats.Keys != 0 || stats.TornBytes != 0 {
		t.Fatalf("surviving state after failed sync: %+v", stats)
	}
}

func TestNoSpaceRollsBack(t *testing.T) {
	f := NewFaultFS(DiskFaults{NoSpaceAt: 2, NoSpaceKeep: 5})
	s, _, err := store.Open("ck.store", store.Options{FS: f})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Put(ckBlob(1)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("put error = %v, want ErrNoSpace", err)
	}
	// Space pressure cleared (the script fires once): the store recovers.
	k, err := s.Put(ckBlob(2))
	if err != nil {
		t.Fatalf("put after ENOSPC: %v", err)
	}
	if got, err := s.Get(k); err != nil || !bytes.Equal(got, ckBlob(2)) {
		t.Fatalf("get after ENOSPC recovery: %v", err)
	}
}

// TestAppendCrashSweep kills the filesystem at every fsync boundary of an
// append-heavy workload and asserts the durability contract on reopen:
// every Put that returned success before the crash resolves bit-identically
// on the surviving state, and the file reopens without damage (a torn
// unsynced tail is healed, never misread).
func TestAppendCrashSweep(t *testing.T) {
	const puts = 6
	// First pass: count boundaries in a clean run.
	clean := NewFaultFS(DiskFaults{})
	s, _, err := store.Open("ck.store", store.Options{FS: clean, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < puts; i++ {
		if _, err := s.Put(ckBlob(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	total := clean.Boundaries()
	if total < puts {
		t.Fatalf("suspiciously few boundaries: %d", total)
	}

	for b := 1; b <= total; b++ {
		b := b
		t.Run(fmt.Sprintf("boundary=%d", b), func(t *testing.T) {
			f := NewFaultFS(DiskFaults{CrashAtBoundary: b})
			committed := map[store.Key][]byte{}
			s, _, err := store.Open("ck.store", store.Options{FS: f, Replicas: 2})
			if err == nil {
				for i := 0; i < puts; i++ {
					k, err := s.Put(ckBlob(i))
					if err != nil {
						break // crashed mid-workload
					}
					committed[k] = ckBlob(i)
				}
			}
			if !f.Crashed() {
				t.Fatalf("boundary %d of %d never hit", b, total)
			}

			s2, stats := reopenSurviving(t, f, 2)
			defer s2.Close()
			if len(stats.CorruptRegions) != 0 {
				t.Fatalf("corrupt regions on surviving state: %+v", stats.CorruptRegions)
			}
			for k, want := range committed {
				got, err := s2.Get(k)
				if err != nil {
					t.Fatalf("committed key %s lost at boundary %d: %v", k, b, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("committed key %s corrupted at boundary %d", k, b)
				}
			}
		})
	}
}

// TestCompactCrashSweep kills the filesystem at every fsync/rename
// boundary of a put-then-compact workload. The contract: on reopen the
// store is either entirely pre-compaction (all keys) or entirely
// post-compaction (exactly the live keys) — never a mix, and never a
// stale temp file left behind.
func TestCompactCrashSweep(t *testing.T) {
	const puts = 5
	blobs := make(map[int][]byte, puts)
	for i := 0; i < puts; i++ {
		blobs[i] = ckBlob(i)
	}

	run := func(f *FaultFS) (keys []store.Key, live map[store.Key]bool, compacted bool, err error) {
		s, _, err := store.Open("ck.store", store.Options{FS: f, Replicas: 2})
		if err != nil {
			return nil, nil, false, err
		}
		defer s.Close()
		live = map[store.Key]bool{}
		for i := 0; i < puts; i++ {
			k, err := s.Put(blobs[i])
			if err != nil {
				return keys, live, false, err
			}
			keys = append(keys, k)
			if i%2 == 0 {
				live[k] = true
			}
		}
		if _, err := s.Compact(func(k store.Key) bool { return live[k] }); err != nil {
			return keys, live, false, err
		}
		return keys, live, true, nil
	}

	clean := NewFaultFS(DiskFaults{})
	_, _, compacted, err := run(clean)
	if err != nil || !compacted {
		t.Fatalf("clean run: compacted=%v err=%v", compacted, err)
	}
	total := clean.Boundaries()

	for b := 1; b <= total; b++ {
		b := b
		t.Run(fmt.Sprintf("boundary=%d", b), func(t *testing.T) {
			f := NewFaultFS(DiskFaults{CrashAtBoundary: b})
			committed, live, compacted, _ := run(f)
			if !f.Crashed() {
				t.Fatalf("boundary %d of %d never hit", b, total)
			}

			s2, stats := reopenSurviving(t, f, 2)
			defer s2.Close()
			if len(stats.CorruptRegions) != 0 {
				t.Fatalf("corrupt regions on surviving state: %+v", stats.CorruptRegions)
			}
			// No intermediate state. The rename is the last boundary inside
			// Compact, so a false `compacted` means the old file is still
			// the truth: every committed put resolves. A true `compacted`
			// means the new file won: exactly the live subset resolves.
			for i, k := range committed {
				got, err := s2.Get(k)
				if compacted && !live[k] {
					if err == nil {
						t.Fatalf("dropped key %d survives committed compaction at boundary %d", i, b)
					}
					continue
				}
				if err != nil {
					t.Fatalf("key %d (%s) lost at boundary %d (compacted=%v): %v", i, k, b, compacted, err)
				}
				if !bytes.Equal(got, blobs[i]) {
					t.Fatalf("key %d corrupted at boundary %d", i, b)
				}
			}
			// The crash-interrupted temp file must not survive a reopen.
			for _, p := range f.Surviving().Paths() {
				if p != "ck.store" {
					// Open removed it from its own view; verify against a
					// fresh open's filesystem, not the crash snapshot.
					surv := f.Surviving()
					s3, _, err := store.Open("ck.store", store.Options{FS: surv, Replicas: 2})
					if err != nil {
						t.Fatal(err)
					}
					s3.Close()
					for _, p2 := range surv.Paths() {
						if p2 != "ck.store" {
							t.Fatalf("stale file after reopen: %s", p2)
						}
					}
					break
				}
			}
		})
	}
}

func TestDiskFaultScenarioRegistered(t *testing.T) {
	sc, err := SupervisorScenarioByName("disk-fault")
	if err != nil {
		t.Fatal(err)
	}
	if !sc.DiskFault {
		t.Fatalf("disk-fault scenario does not mark DiskFault: %+v", sc)
	}
}
