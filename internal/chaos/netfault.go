package chaos

// Network-fault injection for the HTTP serve path. FaultTransport wraps an
// http.RoundTripper and perturbs the CLIENT's view of a request without
// ever stopping the request from reaching the server:
//
//   - timeout-after-send: the wrapped round trip completes normally — the
//     server has admitted the submission — but the response is discarded
//     and the caller gets a net.Error with Timeout() == true, exactly what
//     a client whose deadline fired between send and receive observes.
//     This is the ambiguity idempotency keys exist to resolve: the client
//     cannot know whether its submit landed, so it must retry, and the
//     retry must dedup.
//   - slow response: the response is delivered after an injected delay,
//     pushing well-behaved clients into their timeout and retry path.
//   - torn body: the response arrives with a valid status line but the
//     body is cut mid-stream (io.ErrUnexpectedEOF), modelling a connection
//     reset after the server already committed the work.
//
// All draws come from a single seeded PRNG, so a storm replays its fault
// pattern bit-for-bit under a fixed seed.

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// NetFaultOptions configures a FaultTransport. Zero probabilities make the
// transport a pass-through.
type NetFaultOptions struct {
	// TimeoutAfterSendProb is the per-request probability that the round
	// trip completes on the wire but the response is discarded and replaced
	// with a timeout error. The server processed the request; the client
	// will never know.
	TimeoutAfterSendProb float64

	// SlowProb is the per-request probability that the response is held for
	// SlowDelay before being returned.
	SlowProb float64

	// SlowDelay is the injected response latency (default 20ms).
	SlowDelay time.Duration

	// TornBodyProb is the per-request probability that the response body is
	// truncated at half its length and ends in io.ErrUnexpectedEOF.
	TornBodyProb float64

	// Seed fixes the PRNG (0 means 1), so a storm's fault pattern replays
	// deterministically.
	Seed int64
}

// NetFaultStats counts what a FaultTransport injected.
type NetFaultStats struct {
	Requests          int64 // round trips attempted through the transport
	TimeoutsAfterSend int64 // responses discarded after the server answered
	Slowed            int64
	Torn              int64
}

// FaultTransport is an http.RoundTripper that injects client-visible
// network faults while guaranteeing the request itself reaches the server.
// Safe for concurrent use.
type FaultTransport struct {
	base http.RoundTripper
	opts NetFaultOptions

	mu  sync.Mutex // guards rng only
	rng *rand.Rand

	requests          atomic.Int64
	timeoutsAfterSend atomic.Int64
	slowed            atomic.Int64
	torn              atomic.Int64
}

// NewFaultTransport wraps base (nil means http.DefaultTransport).
func NewFaultTransport(base http.RoundTripper, opts NetFaultOptions) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	if opts.SlowDelay <= 0 {
		opts.SlowDelay = 20 * time.Millisecond
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &FaultTransport{base: base, opts: opts, rng: rand.New(rand.NewSource(seed))}
}

// timeoutError satisfies net.Error the way a fired client deadline does.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string {
	return fmt.Sprintf("chaos: injected client timeout (%s)", e.op)
}
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// tornBody delivers n bytes of the wrapped body, then fails the stream.
type tornBody struct {
	rc   io.ReadCloser
	left int64
}

func (t *tornBody) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.rc.Read(p)
	t.left -= int64(n)
	if err == io.EOF {
		// The real body ended before the tear point; tear anyway — the
		// caller must see a broken stream, not a clean EOF.
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *tornBody) Close() error { return t.rc.Close() }

// RoundTrip draws this request's faults, performs the REAL round trip
// unconditionally (the server always sees the request), then distorts what
// the client gets back.
func (f *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.requests.Add(1)
	f.mu.Lock()
	timeout := f.rng.Float64() < f.opts.TimeoutAfterSendProb
	slow := f.rng.Float64() < f.opts.SlowProb
	torn := f.rng.Float64() < f.opts.TornBodyProb
	f.mu.Unlock()

	resp, err := f.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if timeout {
		// The server answered; the client's deadline "fired" first. Drain
		// so the connection is reusable, then report the timeout.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		f.timeoutsAfterSend.Add(1)
		return nil, &timeoutError{op: req.Method + " " + req.URL.Path}
	}
	if slow {
		f.slowed.Add(1)
		time.Sleep(f.opts.SlowDelay)
	}
	if torn {
		f.torn.Add(1)
		n := resp.ContentLength / 2
		if n < 1 {
			n = 1
		}
		resp.Body = &tornBody{rc: resp.Body, left: n}
	}
	return resp, nil
}

// Stats snapshots the injected-fault counters.
func (f *FaultTransport) Stats() NetFaultStats {
	return NetFaultStats{
		Requests:          f.requests.Load(),
		TimeoutsAfterSend: f.timeoutsAfterSend.Load(),
		Slowed:            f.slowed.Load(),
		Torn:              f.torn.Load(),
	}
}
