package chaos

import (
	"fmt"

	"deepum/internal/sim"
	"deepum/internal/um"
)

// This file is the always-on invariant checker the engine runs under every
// scenario (and under no scenario at all): chaos may cost performance, but
// it must never corrupt state. The checks are O(resident blocks) and run at
// iteration boundaries; a violation surfaces as a typed *InvariantError the
// engine reports through the run result (RunStatus degraded) so supervised
// callers can decide policy instead of losing the whole run.

// InvariantError is a typed invariant-checker violation. Check names the
// audit that fired ("residency", "timeline", "driver", "served") and Detail
// describes the inconsistency. It is reported through the run result rather
// than aborting the run's caller, so a supervisor can choose between
// discarding the partial measurements, alerting, or retrying.
type InvariantError struct {
	Check  string
	Detail string
}

// Error implements the error interface.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("chaos: invariant violated (%s): %s", e.Check, e.Detail)
}

// violated builds a typed violation for the named check.
func violated(check, format string, args ...any) *InvariantError {
	return &InvariantError{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// CheckResidency verifies the residency manager's accounting is balanced:
// the used-byte and block counters equal what a walk of the LRM list
// observes, every listed block is actually resident, and usage is
// non-negative. Eviction or migration bugs (double-insert, missed removal,
// byte leaks) surface here.
func CheckResidency(r *um.Residency) error {
	var bytes int64
	var count int
	var bad error
	r.WalkLRM(func(b um.BlockID) bool {
		if !r.Resident(b) {
			bad = violated("residency", "block %d is on the LRM list but not resident", b)
			return false
		}
		bytes += r.BlockResidentBytes(b)
		count++
		return true
	})
	if bad != nil {
		return bad
	}
	if bytes != r.Used() {
		return violated("residency", "accounting leak: walked %d bytes, counter says %d", bytes, r.Used())
	}
	if count != r.Count() {
		return violated("residency", "count leak: walked %d blocks, counter says %d", count, r.Count())
	}
	if r.Used() < 0 || r.Count() < 0 {
		return violated("residency", "negative residency (used %d, count %d)", r.Used(), r.Count())
	}
	return nil
}

// CheckServed verifies every faulted block of one handling cycle was
// actually served: after HandleGroups returns, each group's block must be
// resident, be an unallocated region that maps to a zero page, or appear in
// evictedInCycle — served and then displaced by a later group's eviction
// under extreme pressure, which the real GPU replays as a fresh fault. This
// is the "every access eventually served" guarantee — under any chaos
// scenario a fault may be slow, but it may never be lost.
func CheckServed(space *um.Space, groups []um.FaultGroup, evictedInCycle map[um.BlockID]bool) error {
	for _, g := range groups {
		blk := space.Block(g.Block)
		if blk.AllocatedPages == 0 {
			continue
		}
		if !blk.Resident && !evictedInCycle[g.Block] {
			return violated("served", "faulted block %d left unserved after its handling cycle", g.Block)
		}
	}
	return nil
}

// CheckTimeline verifies the link timeline is well-formed (sorted,
// non-overlapping, busy-sum consistent) — the property the energy meter
// integrates over, and the one a racy double-reservation would break.
func CheckTimeline(tl *sim.Timeline) error {
	return tl.Validate()
}

// DriverChecker is implemented by driver state machines that can audit
// their own queue/protection bookkeeping (core.Driver does).
type DriverChecker interface {
	CheckInvariants() error
}

// CheckAll runs every applicable check and returns the first violation as a
// typed *InvariantError. drv may be nil (naive-UM and Ideal policies have no
// driver).
func CheckAll(r *um.Residency, tl *sim.Timeline, drv DriverChecker) error {
	if err := CheckResidency(r); err != nil {
		return err
	}
	if tl != nil {
		if err := CheckTimeline(tl); err != nil {
			return violated("timeline", "%v", err)
		}
	}
	if drv != nil {
		if err := drv.CheckInvariants(); err != nil {
			return violated("driver", "%v", err)
		}
	}
	return nil
}
