package chaos

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newCountingServer returns a server that counts every request it actually
// receives — the ground truth the fault transport must never perturb.
func newCountingServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

// TestFaultTransportTimeoutAfterSend: the defining property — the client
// sees a timeout, the server saw the request. Every injected timeout is an
// admitted submission the client must retry.
func TestFaultTransportTimeoutAfterSend(t *testing.T) {
	ts, hits := newCountingServer(t, "ok")
	ft := NewFaultTransport(nil, NetFaultOptions{TimeoutAfterSendProb: 1, Seed: 7})
	client := &http.Client{Transport: ft}

	for i := 0; i < 5; i++ {
		resp, err := client.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
			t.Fatalf("request %d: expected injected timeout, got status %d", i, resp.StatusCode)
		}
		var ne net.Error
		if !asNetError(err, &ne) || !ne.Timeout() {
			t.Fatalf("request %d: error %v is not a net.Error timeout", i, err)
		}
	}
	if got := hits.Load(); got != 5 {
		t.Fatalf("server saw %d requests, want 5 (faults must not stop delivery)", got)
	}
	if st := ft.Stats(); st.TimeoutsAfterSend != 5 || st.Requests != 5 {
		t.Fatalf("stats = %+v, want 5 timeouts over 5 requests", st)
	}
}

// asNetError mirrors errors.As for the url.Error wrapping http.Client does.
func asNetError(err error, target *net.Error) bool {
	for err != nil {
		if ne, ok := err.(net.Error); ok {
			*target = ne
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestFaultTransportTornBody: status arrives intact, the body tears
// mid-stream with io.ErrUnexpectedEOF.
func TestFaultTransportTornBody(t *testing.T) {
	ts, hits := newCountingServer(t, strings.Repeat("x", 1024))
	ft := NewFaultTransport(nil, NetFaultOptions{TornBodyProb: 1, Seed: 7})
	client := &http.Client{Transport: ft}

	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200 (tear is body-level)", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("body read error = %v, want io.ErrUnexpectedEOF", err)
	}
	if len(b) >= 1024 {
		t.Fatalf("read %d bytes, want a truncated body", len(b))
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestFaultTransportSlowResponse: the response is delayed but intact.
func TestFaultTransportSlowResponse(t *testing.T) {
	ts, _ := newCountingServer(t, "ok")
	const delay = 30 * time.Millisecond
	ft := NewFaultTransport(nil, NetFaultOptions{SlowProb: 1, SlowDelay: delay, Seed: 7})
	client := &http.Client{Transport: ft}

	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("response in %v, want >= %v injected delay", elapsed, delay)
	}
	if b, _ := io.ReadAll(resp.Body); string(b) != "ok" {
		t.Fatalf("slow body = %q, want intact %q", b, "ok")
	}
	if st := ft.Stats(); st.Slowed != 1 {
		t.Fatalf("stats = %+v, want 1 slowed", st)
	}
}

// TestFaultTransportPassthrough: zero probabilities mean zero interference.
func TestFaultTransportPassthrough(t *testing.T) {
	ts, hits := newCountingServer(t, "clean")
	ft := NewFaultTransport(nil, NetFaultOptions{Seed: 7})
	client := &http.Client{Transport: ft}

	for i := 0; i < 3; i++ {
		resp, err := client.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) != "clean" {
			t.Fatalf("body = %q, want %q", b, "clean")
		}
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
	if st := ft.Stats(); st.TimeoutsAfterSend+st.Slowed+st.Torn != 0 {
		t.Fatalf("passthrough injected faults: %+v", st)
	}
}

// TestFaultTransportDeterministic: two transports with the same seed draw
// the same fault pattern over the same request sequence.
func TestFaultTransportDeterministic(t *testing.T) {
	ts, _ := newCountingServer(t, "ok")
	pattern := func(seed int64) string {
		ft := NewFaultTransport(nil, NetFaultOptions{TimeoutAfterSendProb: 0.4, Seed: seed})
		client := &http.Client{Transport: ft}
		var sb strings.Builder
		for i := 0; i < 32; i++ {
			resp, err := client.Get(ts.URL)
			if err != nil {
				sb.WriteByte('T')
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sb.WriteByte('.')
		}
		return sb.String()
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed, different fault pattern:\n  %s\n  %s", a, b)
	}
	if !strings.Contains(a, "T") || !strings.Contains(a, ".") {
		t.Fatalf("pattern %s should mix timeouts and successes at p=0.4", a)
	}
	if c := pattern(43); c == a {
		t.Fatalf("different seeds drew identical patterns: %s", a)
	}
}
