package chaos

import (
	"math/rand"
	"sync"
	"time"
)

// PipelineInjector perturbs the concurrent four-goroutine pipeline
// (internal/pipeline) in real time: stage stalls (a descheduled kernel
// thread), and dropped or duplicated fault notifications on the lossy
// correlator path. Unlike Injector it is called from multiple goroutines,
// so its PRNG is mutex-protected; it satisfies pipeline.Chaos by method
// set, with no package dependency in either direction.
type PipelineInjector struct {
	mu  sync.Mutex
	rng *rand.Rand

	stallProb float64
	stall     time.Duration
	dropProb  float64
	dupProb   float64

	stalls int64
	drops  int64
	dups   int64
}

// NewPipelineInjector builds a real-time injector from the scenario's
// fault-path and migrator-stall settings, seeded deterministically (the
// decision sequence is deterministic; its interleaving with the pipeline's
// goroutines is not, which is exactly the regime the -race stress tests
// exercise).
func NewPipelineInjector(sc Scenario, seed int64) *PipelineInjector {
	sc = sc.withDefaults()
	return &PipelineInjector{
		rng:       rand.New(rand.NewSource(seed)),
		stallProb: sc.MigratorStallProb,
		stall:     time.Duration(sc.MigratorStallTime),
		dropProb:  sc.DropNotifyProb,
		dupProb:   sc.DupNotifyProb,
	}
}

func (p *PipelineInjector) roll(prob float64) bool {
	if p == nil || prob <= 0 {
		return false
	}
	p.mu.Lock()
	hit := p.rng.Float64() < prob
	p.mu.Unlock()
	return hit
}

// StageDelay returns how long the named stage ("correlator", "migration")
// should stall before its next unit of work; zero for no stall.
func (p *PipelineInjector) StageDelay(stage string) time.Duration {
	if p.roll(p.stallProb) {
		p.mu.Lock()
		p.stalls++
		p.mu.Unlock()
		return p.stall
	}
	return 0
}

// DropFault reports whether the next correlator-bound fault event is lost.
func (p *PipelineInjector) DropFault() bool {
	if p.roll(p.dropProb) {
		p.mu.Lock()
		p.drops++
		p.mu.Unlock()
		return true
	}
	return false
}

// DupFault reports whether the next correlator-bound fault event is
// delivered twice.
func (p *PipelineInjector) DupFault() bool {
	if p.roll(p.dupProb) {
		p.mu.Lock()
		p.dups++
		p.mu.Unlock()
		return true
	}
	return false
}

// Counts returns (stalls, drops, dups) delivered so far.
func (p *PipelineInjector) Counts() (stalls, drops, dups int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stalls, p.drops, p.dups
}
