package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func validProgram(t *testing.T) *Builder {
	t.Helper()
	b := NewBuilder("test", 4)
	w := b.Tensor("w", 1<<20, Weight, true)
	a := b.Tensor("a", 2<<20, Activation, false)
	b.Alloc(a)
	b.Launch(&Kernel{Name: "fwd", Args: []uint64{1}, FLOPs: 1e6,
		Accesses: []Access{{Tensor: w}, {Tensor: a, Write: true}}})
	b.Launch(&Kernel{Name: "bwd", Args: []uint64{2}, FLOPs: 1e6,
		Accesses: []Access{{Tensor: a}, {Tensor: w, Write: true}}})
	b.Free(a)
	return b
}

func TestBuildValid(t *testing.T) {
	p, err := validProgram(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "test" || p.BatchSize != 4 {
		t.Fatalf("program header = %+v", p)
	}
	if p.Kernels() != 2 {
		t.Fatalf("kernels = %d", p.Kernels())
	}
	if len(p.Setup) != 1 {
		t.Fatalf("setup steps = %d (persistent tensor must auto-allocate)", len(p.Setup))
	}
}

func TestBuildRejectsDanglingAccess(t *testing.T) {
	b := NewBuilder("bad", 1)
	a := b.Tensor("a", 1<<20, Activation, false)
	// Launch before Alloc: accesses a dead tensor.
	b.Launch(&Kernel{Name: "k", Accesses: []Access{{Tensor: a}}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "dead tensor") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsDoubleAlloc(t *testing.T) {
	b := NewBuilder("bad", 1)
	a := b.Tensor("a", 1<<20, Activation, false)
	b.Alloc(a)
	b.Alloc(a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "double-allocates") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsFreeOfDead(t *testing.T) {
	b := NewBuilder("bad", 1)
	a := b.Tensor("a", 1<<20, Activation, false)
	b.Free(a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "frees dead") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsFreeOfPersistent(t *testing.T) {
	b := NewBuilder("bad", 1)
	w := b.Tensor("w", 1<<20, Weight, true)
	b.Free(w)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "persistent") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsLeak(t *testing.T) {
	b := NewBuilder("bad", 1)
	a := b.Tensor("a", 1<<20, Activation, false)
	b.Alloc(a) // never freed
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "leaks") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsBadFraction(t *testing.T) {
	b := NewBuilder("bad", 1)
	w := b.Tensor("w", 1<<20, Weight, true)
	b.Launch(&Kernel{Name: "k", Accesses: []Access{{Tensor: w, Fraction: 1.5}}})
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "fraction") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildRejectsNilKernel(t *testing.T) {
	b := NewBuilder("bad", 1)
	b.Launch(nil)
	if _, err := b.Build(); err == nil {
		t.Fatal("nil kernel must fail")
	}
}

func TestFootprintBytes(t *testing.T) {
	p, err := validProgram(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	// Weight (1 MiB persistent) + peak transient (2 MiB activation).
	if got := p.FootprintBytes(); got != 3<<20 {
		t.Fatalf("footprint = %d, want 3MiB", got)
	}
}

func TestTouchedBytes(t *testing.T) {
	p, err := validProgram(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	// fwd touches w (1 MiB) + a (2 MiB); bwd the same: 6 MiB total.
	if got := p.TouchedBytes(); got != 6<<20 {
		t.Fatalf("touched = %d, want 6MiB", got)
	}
}

func TestTensorKindString(t *testing.T) {
	kinds := map[TensorKind]string{
		Weight: "weight", Gradient: "gradient", OptState: "optstate",
		Activation: "activation", Workspace: "workspace", Input: "input",
		TensorKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// TestFootprintQuick: the footprint is always at least the persistent bytes
// and at most the total of all tensors, for random well-formed alloc/free
// interleavings.
func TestFootprintQuick(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		b := NewBuilder("q", 1)
		var total, persistent int64
		var transient []TensorID
		for i, s := range sizes {
			bytes := int64(s%256+1) * 4096
			total += bytes
			if i%3 == 0 {
				persistent += bytes
				b.Tensor("p", bytes, Weight, true)
			} else {
				transient = append(transient, b.Tensor("t", bytes, Activation, false))
			}
		}
		for _, id := range transient {
			b.Alloc(id)
		}
		for _, id := range transient {
			b.Free(id)
		}
		p, err := b.Build()
		if err != nil {
			return false
		}
		fp := p.FootprintBytes()
		return fp >= persistent && fp <= total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
