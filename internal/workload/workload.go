// Package workload defines the representation of a DNN training run as the
// DeepUM stack sees it: a set of tensors, a one-time setup phase allocating
// the persistent state (weights, gradients, optimizer moments, embedding
// tables), and a per-iteration step sequence interleaving tensor
// allocation, kernel launches and tensor frees. The nine model generators in
// internal/models compile architectures into this form.
package workload

import "fmt"

// TensorID indexes a tensor within a Program.
type TensorID int32

// TensorKind classifies tensors by lifetime and role.
type TensorKind uint8

const (
	// Weight tensors persist across iterations and are read by forward and
	// optimizer kernels.
	Weight TensorKind = iota
	// Gradient tensors persist (PyTorch keeps .grad allocated) and are
	// rewritten every backward pass.
	Gradient
	// OptState tensors are optimizer moments, persistent.
	OptState
	// Activation tensors are produced in forward, consumed in backward, and
	// freed within the iteration.
	Activation
	// Workspace tensors are scratch buffers with kernel-local lifetime.
	Workspace
	// Input tensors hold the minibatch, rewritten each iteration.
	Input
)

func (k TensorKind) String() string {
	switch k {
	case Weight:
		return "weight"
	case Gradient:
		return "gradient"
	case OptState:
		return "optstate"
	case Activation:
		return "activation"
	case Workspace:
		return "workspace"
	case Input:
		return "input"
	}
	return "unknown"
}

// Tensor declares one memory object of the model.
type Tensor struct {
	ID    TensorID
	Name  string
	Bytes int64
	Kind  TensorKind
	// Persistent tensors are allocated in setup and never freed; transient
	// tensors are allocated and freed by iteration steps.
	Persistent bool
}

// Access is one tensor operand of a kernel.
type Access struct {
	Tensor TensorID
	Write  bool
	// Fraction, when in (0,1), makes the kernel touch only that fraction of
	// the tensor's UM blocks. Combined with Irregular it models
	// input-dependent sparse access (DLRM embedding lookups, §6.2).
	Fraction float64
	// PageFraction, when in (0,1), is the expected fraction of the tensor's
	// pages touched; within a touched block the engine faults
	// PageFraction/Fraction of the pages. Zero means dense (all pages of
	// every touched block).
	PageFraction float64
	// Irregular re-samples the touched block subset every iteration from
	// the engine's seeded stream, defeating history-based prefetching.
	Irregular bool
}

// Kernel is one CUDA kernel launch: its identity (name and argument words,
// hashed to an execution ID by the runtime), roofline cost inputs, and
// operand list.
type Kernel struct {
	Name  string
	Args  []uint64
	FLOPs float64
	// ExtraBytes adds device-memory traffic beyond the operand sizes (e.g.
	// multi-pass reads inside attention).
	ExtraBytes int64
	Accesses   []Access
}

// StepKind discriminates iteration steps.
type StepKind uint8

const (
	// StepAlloc allocates the step's tensor through the caching allocator.
	StepAlloc StepKind = iota
	// StepFree releases the step's tensor back to the allocator pool.
	StepFree
	// StepLaunch launches the step's kernel.
	StepLaunch
)

// Step is one element of the setup or iteration sequence.
type Step struct {
	Kind   StepKind
	Tensor TensorID // for StepAlloc / StepFree
	Kernel *Kernel  // for StepLaunch
}

// Program is a complete training workload.
type Program struct {
	Name      string
	BatchSize int64
	Tensors   []Tensor
	// Setup allocates persistent tensors (weights, grads, moments, tables).
	Setup []Step
	// Iteration is executed once per training iteration.
	Iteration []Step
}

// Builder accumulates a Program with checked references.
type Builder struct {
	p Program
}

// NewBuilder starts a program with the given name and batch size.
func NewBuilder(name string, batch int64) *Builder {
	return &Builder{p: Program{Name: name, BatchSize: batch}}
}

// Tensor declares a tensor and returns its ID. Persistent tensors get a
// setup allocation step automatically.
func (b *Builder) Tensor(name string, bytes int64, kind TensorKind, persistent bool) TensorID {
	id := TensorID(len(b.p.Tensors))
	b.p.Tensors = append(b.p.Tensors, Tensor{ID: id, Name: name, Bytes: bytes, Kind: kind, Persistent: persistent})
	if persistent {
		b.p.Setup = append(b.p.Setup, Step{Kind: StepAlloc, Tensor: id})
	}
	return id
}

// Alloc appends an iteration step allocating tensor id.
func (b *Builder) Alloc(id TensorID) {
	b.p.Iteration = append(b.p.Iteration, Step{Kind: StepAlloc, Tensor: id})
}

// Free appends an iteration step freeing tensor id.
func (b *Builder) Free(id TensorID) {
	b.p.Iteration = append(b.p.Iteration, Step{Kind: StepFree, Tensor: id})
}

// Launch appends a kernel-launch step.
func (b *Builder) Launch(k *Kernel) {
	b.p.Iteration = append(b.p.Iteration, Step{Kind: StepLaunch, Kernel: k})
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	p := b.p
	alive := map[TensorID]bool{}
	for _, t := range p.Tensors {
		if t.Persistent {
			alive[t.ID] = true
		}
	}
	check := func(steps []Step, phase string) error {
		for i, s := range steps {
			switch s.Kind {
			case StepAlloc:
				if int(s.Tensor) >= len(p.Tensors) {
					return fmt.Errorf("workload: %s step %d allocates unknown tensor %d", phase, i, s.Tensor)
				}
				if alive[s.Tensor] && !p.Tensors[s.Tensor].Persistent {
					return fmt.Errorf("workload: %s step %d double-allocates tensor %q", phase, i, p.Tensors[s.Tensor].Name)
				}
				alive[s.Tensor] = true
			case StepFree:
				if !alive[s.Tensor] {
					return fmt.Errorf("workload: %s step %d frees dead tensor %d", phase, i, s.Tensor)
				}
				if p.Tensors[s.Tensor].Persistent {
					return fmt.Errorf("workload: %s step %d frees persistent tensor %q", phase, i, p.Tensors[s.Tensor].Name)
				}
				delete(alive, s.Tensor)
			case StepLaunch:
				if s.Kernel == nil {
					return fmt.Errorf("workload: %s step %d has nil kernel", phase, i)
				}
				for _, a := range s.Kernel.Accesses {
					if !alive[a.Tensor] {
						return fmt.Errorf("workload: %s step %d kernel %q accesses dead tensor %d",
							phase, i, s.Kernel.Name, a.Tensor)
					}
					if a.Fraction < 0 || a.Fraction > 1 {
						return fmt.Errorf("workload: kernel %q has fraction %f out of range", s.Kernel.Name, a.Fraction)
					}
				}
			}
		}
		return nil
	}
	if err := check(p.Setup, "setup"); err != nil {
		return nil, err
	}
	if err := check(p.Iteration, "iteration"); err != nil {
		return nil, err
	}
	// Transient tensors must not leak across iterations: everything
	// allocated in the iteration must be freed in it.
	for id, live := range alive {
		if live && !p.Tensors[id].Persistent {
			return nil, fmt.Errorf("workload: transient tensor %q leaks across iterations", p.Tensors[id].Name)
		}
	}
	return &p, nil
}

// FootprintBytes returns the peak memory footprint of the program: the
// persistent bytes plus the maximum concurrently-live transient bytes over
// one iteration.
func (p *Program) FootprintBytes() int64 {
	var persistent int64
	live := map[TensorID]bool{}
	for _, t := range p.Tensors {
		if t.Persistent {
			persistent += t.Bytes
			live[t.ID] = true
		}
	}
	var cur, peak int64
	for _, s := range p.Iteration {
		switch s.Kind {
		case StepAlloc:
			if !live[s.Tensor] {
				live[s.Tensor] = true
				cur += p.Tensors[s.Tensor].Bytes
				if cur > peak {
					peak = cur
				}
			}
		case StepFree:
			if live[s.Tensor] {
				delete(live, s.Tensor)
				cur -= p.Tensors[s.Tensor].Bytes
			}
		}
	}
	return persistent + peak
}

// Kernels returns the number of kernel launches per iteration.
func (p *Program) Kernels() int {
	n := 0
	for _, s := range p.Iteration {
		if s.Kind == StepLaunch {
			n++
		}
	}
	return n
}

// TouchedBytes returns the total tensor bytes referenced by kernels in one
// iteration, counting fractions (irregular accesses use their expected
// coverage). It approximates the per-iteration data movement demand.
func (p *Program) TouchedBytes() int64 {
	var total float64
	for _, s := range p.Iteration {
		if s.Kind != StepLaunch {
			continue
		}
		for _, a := range s.Kernel.Accesses {
			f := a.Fraction
			if f == 0 {
				f = 1
			}
			total += f * float64(p.Tensors[a.Tensor].Bytes)
		}
	}
	return int64(total)
}
