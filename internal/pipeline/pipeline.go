package pipeline

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"deepum/internal/correlation"
	"deepum/internal/health"
	"deepum/internal/obs"
	"deepum/internal/um"
)

// FaultEvent is what the fault-handling thread publishes: the UM block of a
// faulted access together with the execution ID of the kernel that raised
// it.
type FaultEvent struct {
	Block um.BlockID
	Exec  correlation.ExecID
}

// MigrateCommand is what the migration thread consumes.
type MigrateCommand struct {
	Block um.BlockID
	Exec  correlation.ExecID
	// Demand marks fault-queue work (priority) as opposed to prefetch work.
	Demand bool
}

// Migrator performs the actual block movement; the simulation engine and
// tests plug in their own.
type Migrator interface {
	Migrate(cmd MigrateCommand)
}

// MigratorFunc adapts a function to the Migrator interface.
type MigratorFunc func(MigrateCommand)

// Migrate calls f.
func (f MigratorFunc) Migrate(cmd MigrateCommand) { f(cmd) }

// Chaos perturbs the pipeline's stages for resilience testing: stage
// stalls (a descheduled kernel thread) and lossy delivery on the
// correlator path. chaos.PipelineInjector implements it; the interface
// lives here so neither package imports the other.
type Chaos interface {
	// StageDelay returns how long the named stage ("correlator",
	// "migration") should sleep before its next unit of work.
	StageDelay(stage string) time.Duration
	// DropFault reports whether the next correlator-bound event is lost.
	DropFault() bool
	// DupFault reports whether the next correlator-bound event is
	// delivered twice.
	DupFault() bool
}

// Stats is a snapshot of the driver's degradation counters: how often the
// hardened paths fired. All zero on a healthy run.
type Stats struct {
	DemandMigrations    int64 // demand commands executed by the migration thread
	PrefetchMigrations  int64 // prefetch commands executed
	InlineMigrations    int64 // demand work served inline by the watchdog escape
	DiscardedPrefetches int64 // prefetch commands discarded at Stop
	DroppedCorrEvents   int64 // correlator events lost (bounded queue or chaos)
	StageRestarts       int64 // stage panics recovered (goroutine restarted)
}

// Driver runs the four threads of Figure 4. Faults enter through OnFault
// (the fault-handling thread's output side); kernel launches through
// KernelLaunch (the ioctl callback). The correlator thread consumes fault
// events and updates the correlation tables; the prefetching thread chains
// through the tables and fills the prefetch queue; the migration thread
// drains the fault queue first and the prefetch queue when it is empty.
//
// The driver is hardened to degrade rather than fail: the fault handler's
// wait on a full fault queue is bounded by a progress watchdog (a stalled
// migration thread triggers inline demand service instead of a livelock),
// stage goroutines recover from panics and restart, and Stop drains demand
// work while explicitly discarding queued prefetches.
type Driver struct {
	tables *correlation.Tables
	deg    int

	faultQ    *SPSC[FaultEvent] // fault handling -> migration (priority)
	corrQ     *SPSC[FaultEvent] // fault handling -> correlator
	prefetchQ *SPSC[MigrateCommand]

	launchMu sync.Mutex
	history  [correlation.HistoryLen]correlation.ExecID
	histPrev [correlation.HistoryLen]correlation.ExecID
	current  correlation.ExecID

	// corrMu guards the correlation tables between the correlator thread
	// and the prefetching logic.
	corrMu sync.Mutex

	migrator Migrator
	// migMu serializes Migrate calls: the migration thread owns the
	// migrator in steady state, but the watchdog's inline-demand escape and
	// Stop's late-arrival sweep must be able to call it safely too.
	migMu sync.Mutex

	chaos Chaos

	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	// stopOnce serializes shutdown; drained closes when Stop's drain pass
	// has completed, so EVERY Stop caller — the owner, a context watcher, a
	// concurrent duplicate — returns only after demand work is served and
	// prefetches are discarded.
	stopOnce sync.Once
	drained  chan struct{}
	// watcherDone closes when the StartContext watcher goroutine exits
	// (nil when Start was used), so shutdown can prove zero leaked
	// goroutines.
	watcherDone chan struct{}

	// progress counts migration-thread completions; the fault handler's
	// watchdog reads it to tell "slow" from "stalled".
	progress atomic.Uint64

	demandN    atomic.Int64
	prefetchN  atomic.Int64
	inlineN    atomic.Int64
	discardedN atomic.Int64
	droppedN   atomic.Int64
	restartsN  atomic.Int64

	// obsRec, when attached, samples queue depths per fault and marks
	// degradation events (stage restarts, inline migrations). The pipeline
	// runs on the wall clock, so timestamps are nanoseconds since obsEpoch.
	obsRec   *obs.Recorder
	obsEpoch time.Time

	// health, when attached, receives stage-restart impulses (wall-clock
	// timestamps on the obsEpoch origin).
	health *health.Controller
}

// NewDriver constructs the pipeline with the given correlation-table
// configuration, prefetch degree, and migrator.
func NewDriver(cfg correlation.BlockTableConfig, degree int, m Migrator) *Driver {
	d := &Driver{
		tables:    correlation.NewTables(cfg),
		deg:       degree,
		faultQ:    NewSPSC[FaultEvent](4096),
		corrQ:     NewSPSC[FaultEvent](4096),
		prefetchQ: NewSPSC[MigrateCommand](4096),
		current:   correlation.NoExec,
		migrator:  m,
		stop:      make(chan struct{}),
		drained:   make(chan struct{}),
	}
	for i := range d.history {
		d.history[i] = correlation.NoExec
	}
	return d
}

// SetChaos installs a stage perturber; call before Start.
func (d *Driver) SetChaos(c Chaos) { d.chaos = c }

// SetObserver attaches the tracing recorder; call before Start. Events are
// stamped in wall-clock nanoseconds relative to the moment of attachment.
func (d *Driver) SetObserver(rec *obs.Recorder) {
	d.obsRec = rec
	d.obsEpoch = time.Now()
}

func (d *Driver) obsNow() int64 { return time.Since(d.obsEpoch).Nanoseconds() }

// SetHealth attaches a health controller fed by stage restarts; call before
// Start. The controller is shared-state safe, so the same instance may also
// be fed by other (wall-clock) sources.
func (d *Driver) SetHealth(h *health.Controller) {
	d.health = h
	if d.obsEpoch.IsZero() {
		d.obsEpoch = time.Now()
	}
}

// Stats returns a snapshot of the degradation counters.
func (d *Driver) Stats() Stats {
	return Stats{
		DemandMigrations:    d.demandN.Load(),
		PrefetchMigrations:  d.prefetchN.Load(),
		InlineMigrations:    d.inlineN.Load(),
		DiscardedPrefetches: d.discardedN.Load(),
		DroppedCorrEvents:   d.droppedN.Load(),
		StageRestarts:       d.restartsN.Load(),
	}
}

// Start launches the correlator and migration threads. (The fault-handling
// thread is the caller of OnFault: on a real system it is woken by the GPU
// interrupt; the prefetching stage runs inline with it.)
func (d *Driver) Start() {
	d.wg.Add(2)
	go d.stageLoop("correlator", d.correlatorLoop)
	go d.stageLoop("migration", d.migrationLoop)
}

// StartContext is Start under a supervising context: when ctx is cancelled
// (or its deadline expires) a watcher goroutine invokes Stop, so the whole
// pipeline shuts down — demand drained, prefetches discarded — without the
// owner calling Stop itself. Stop remains safe to call as well (first
// shutdown wins; both block until the drain completes), and the watcher
// exits on either path: no goroutine outlives the pipeline.
func (d *Driver) StartContext(ctx context.Context) {
	d.Start()
	if ctx == nil || ctx.Done() == nil {
		return // never cancellable: no watcher needed
	}
	d.watcherDone = make(chan struct{})
	go func() {
		defer close(d.watcherDone)
		select {
		case <-ctx.Done():
			d.Stop()
		case <-d.stop:
			// Someone else is stopping the pipeline; nothing to supervise.
		}
	}()
}

// Stop terminates the threads and waits for them to drain. Policy: demand
// (fault-queue) work is always executed — a faulted access must be served
// even during shutdown — while queued prefetch commands are discarded and
// counted: they are a pure optimization and running them after the workload
// stopped is wasted link traffic.
//
// Stop is idempotent and safe to call concurrently (e.g. from the owner and
// from a StartContext watcher at once): exactly one caller performs the
// shutdown, and every caller blocks until the drain has completed, so
// counters read after Stop are final.
func (d *Driver) Stop() {
	d.stopOnce.Do(func() {
		d.stopped.Store(true)
		close(d.stop)
		d.wg.Wait()
		// Late arrivals pushed while the threads were exiting: serve
		// remaining demand work, discard remaining prefetch work.
		for {
			ev, ok := d.faultQ.Pop()
			if !ok {
				break
			}
			d.migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
			d.demandN.Add(1)
		}
		for {
			if _, ok := d.prefetchQ.Pop(); !ok {
				break
			}
			d.discardedN.Add(1)
		}
		close(d.drained)
	})
	<-d.drained
	// If a context watcher exists and is not the caller, it exits via
	// d.stop; waiting for it here would deadlock the watcher's own Stop
	// call, so leak tests wait on WatcherDone instead.
}

// WatcherDone exposes the StartContext watcher's exit signal (nil when the
// pipeline was started without a context). Tests use it to assert the
// watcher goroutine is gone after shutdown.
func (d *Driver) WatcherDone() <-chan struct{} { return d.watcherDone }

// stageLoop runs one stage body, recovering from panics and restarting the
// stage so a poisoned event cannot take the pipeline down. The body returns
// normally only when the stop signal is observed.
func (d *Driver) stageLoop(name string, body func()) {
	defer d.wg.Done()
	for {
		done := func() (done bool) {
			defer func() {
				if r := recover(); r != nil {
					d.restartsN.Add(1)
					if d.obsRec != nil {
						d.obsRec.Instant(obs.KindMark, obs.TrackPipeline, d.obsNow(),
							"stage-restart:"+name, 0, 0, 0)
					}
					d.health.ObservePipelineRestart(d.obsNow())
				}
			}()
			body()
			return true
		}()
		if done {
			return
		}
	}
}

// migrate serializes calls into the migrator (see migMu).
func (d *Driver) migrate(cmd MigrateCommand) {
	d.migMu.Lock()
	defer d.migMu.Unlock()
	d.migrator.Migrate(cmd)
}

// KernelLaunch is the runtime callback: it records the kernel transition in
// the execution table and rotates the launch history.
func (d *Driver) KernelLaunch(id correlation.ExecID) {
	defer d.recoverStage()
	d.launchMu.Lock()
	defer d.launchMu.Unlock()
	// Table accesses need corrMu too: the correlator thread reads and
	// lazily creates block tables concurrently. Lock order is always
	// launchMu -> corrMu (restartChain takes corrMu alone).
	d.corrMu.Lock()
	if d.current != correlation.NoExec {
		d.tables.Exec.Record(d.current, d.histPrev, id)
	}
	d.tables.Block(id).ResetCursor()
	d.corrMu.Unlock()
	d.histPrev = d.history
	copy(d.history[:], d.history[1:])
	d.history[correlation.HistoryLen-1] = d.current
	d.current = id
}

// recoverStage absorbs a panic on a caller-thread stage (fault handling,
// prefetching, kernel launch): the event is dropped, the process survives.
func (d *Driver) recoverStage() {
	if r := recover(); r != nil {
		d.restartsN.Add(1)
		d.health.ObservePipelineRestart(d.obsNow())
	}
}

// enqueueDemandSpins bounds the fault handler's wait on a full fault queue
// before the watchdog checks for migration-thread progress.
const enqueueDemandSpins = 4096

// OnFault is called by the fault-handling thread for each faulted UM block:
// it enqueues the demand migration with priority and feeds the correlator
// and prefetcher.
func (d *Driver) OnFault(b um.BlockID) {
	defer d.recoverStage()
	d.launchMu.Lock()
	cur := d.current
	hist := d.history
	d.launchMu.Unlock()
	ev := FaultEvent{Block: b, Exec: cur}
	d.enqueueDemand(ev)
	// Correlator updates are lossy under extreme pressure, like a real
	// bounded queue; dropping a history update is safe — and chaos can
	// force the same drop (or a duplicate delivery) to prove it.
	if d.chaos != nil && d.chaos.DropFault() {
		d.droppedN.Add(1)
	} else if !d.corrQ.Push(ev) {
		d.droppedN.Add(1)
	} else if d.chaos != nil && d.chaos.DupFault() {
		_ = d.corrQ.Push(ev)
	}
	// Restart chaining from the faulted block on the prefetching side.
	d.restartChain(cur, hist, b)
	if d.obsRec != nil {
		ts := d.obsNow()
		d.obsRec.Counter(obs.TrackPipeline, ts, "faultq", int64(d.faultQ.Len()))
		d.obsRec.Counter(obs.TrackPipeline, ts, "corrq", int64(d.corrQ.Len()))
		d.obsRec.Counter(obs.TrackPipeline, ts, "prefetchq", int64(d.prefetchQ.Len()))
	}
}

// enqueueDemand delivers one demand migration. In steady state it pushes
// onto the fault queue; when the queue stays full it spins with Gosched
// backoff for a bounded budget, and a watchdog on the migration thread's
// progress counter decides between waiting longer (the thread is slow but
// alive) and serving the migration inline (the thread is stalled or the
// pipeline is stopping) — a halted migration thread degrades the fault
// handler to synchronous service instead of livelocking it.
func (d *Driver) enqueueDemand(ev FaultEvent) {
	snap := d.progress.Load()
	spins := 0
	for {
		if d.stopped.Load() {
			// Stopping or stopped: the migration thread may be gone and the
			// Stop drain sweep may already have run, so an enqueued event
			// could sit forever. Demand work must be served even during (and
			// after) shutdown — do it inline.
			break
		}
		if d.faultQ.Push(ev) {
			return
		}
		if spins++; spins >= enqueueDemandSpins {
			cur := d.progress.Load()
			if cur == snap {
				break // watchdog: no progress across the whole budget
			}
			snap, spins = cur, 0 // alive: grant a fresh budget
		}
		runtime.Gosched()
	}
	d.migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
	d.inlineN.Add(1)
	if d.obsRec != nil {
		d.obsRec.Instant(obs.KindMark, obs.TrackPipeline, d.obsNow(), "inline-migration",
			int64(ev.Block), 0, 0)
	}
}

// correlatorLoop consumes fault events and updates the block tables; on
// stop it drains whatever is already queued (cheap, and the tables stay
// maximally informed for post-run inspection).
func (d *Driver) correlatorLoop() {
	for {
		if d.chaos != nil {
			if delay := d.chaos.StageDelay("correlator"); delay > 0 {
				time.Sleep(delay)
			}
		}
		ev, ok := d.corrQ.Pop()
		if !ok {
			select {
			case <-d.stop:
				for {
					ev, ok := d.corrQ.Pop()
					if !ok {
						return
					}
					d.recordMiss(ev)
				}
			default:
				runtime.Gosched()
				continue
			}
		}
		d.recordMiss(ev)
	}
}

func (d *Driver) recordMiss(ev FaultEvent) {
	if ev.Exec == correlation.NoExec {
		return
	}
	d.corrMu.Lock()
	d.tables.Block(ev.Exec).RecordMiss(ev.Block)
	d.corrMu.Unlock()
}

// restartChain runs the prefetching thread's work inline with the fault
// handler call (the prefetching thread wakes on the same event); commands
// land in the bounded prefetch queue.
func (d *Driver) restartChain(cur correlation.ExecID, hist [correlation.HistoryLen]correlation.ExecID, seed um.BlockID) {
	if cur == correlation.NoExec {
		return
	}
	d.corrMu.Lock()
	cursor := d.tables.NewChainCursor(cur, hist, seed)
	for cursor.Kernels() < d.deg {
		b, exec := cursor.Next()
		if b == um.NoBlock {
			break
		}
		if !d.prefetchQ.Push(MigrateCommand{Block: b, Exec: exec}) {
			break // queue full: the chain pauses
		}
	}
	d.corrMu.Unlock()
}

// migrationLoop drains the fault queue with priority, then the prefetch
// queue. On stop it drains remaining demand work and discards remaining
// prefetch work (see Stop for the policy).
func (d *Driver) migrationLoop() {
	for {
		if d.chaos != nil {
			if delay := d.chaos.StageDelay("migration"); delay > 0 {
				time.Sleep(delay)
			}
		}
		if ev, ok := d.faultQ.Pop(); ok {
			d.migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
			d.demandN.Add(1)
			d.progress.Add(1)
			continue
		}
		if cmd, ok := d.prefetchQ.Pop(); ok {
			d.migrate(cmd)
			d.prefetchN.Add(1)
			d.progress.Add(1)
			continue
		}
		select {
		case <-d.stop:
			for {
				ev, ok := d.faultQ.Pop()
				if !ok {
					break
				}
				d.migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
				d.demandN.Add(1)
				d.progress.Add(1)
			}
			for {
				if _, ok := d.prefetchQ.Pop(); !ok {
					return
				}
				d.discardedN.Add(1)
			}
		default:
			runtime.Gosched()
		}
	}
}

// Tables exposes the correlation tables for inspection after Stop.
func (d *Driver) Tables() *correlation.Tables { return d.tables }
