package pipeline

import (
	"runtime"
	"sync"

	"deepum/internal/correlation"
	"deepum/internal/um"
)

// FaultEvent is what the fault-handling thread publishes: the UM block of a
// faulted access together with the execution ID of the kernel that raised
// it.
type FaultEvent struct {
	Block um.BlockID
	Exec  correlation.ExecID
}

// MigrateCommand is what the migration thread consumes.
type MigrateCommand struct {
	Block um.BlockID
	Exec  correlation.ExecID
	// Demand marks fault-queue work (priority) as opposed to prefetch work.
	Demand bool
}

// Migrator performs the actual block movement; the simulation engine and
// tests plug in their own.
type Migrator interface {
	Migrate(cmd MigrateCommand)
}

// MigratorFunc adapts a function to the Migrator interface.
type MigratorFunc func(MigrateCommand)

// Migrate calls f.
func (f MigratorFunc) Migrate(cmd MigrateCommand) { f(cmd) }

// Driver runs the four threads of Figure 4. Faults enter through OnFault
// (the fault-handling thread's output side); kernel launches through
// KernelLaunch (the ioctl callback). The correlator thread consumes fault
// events and updates the correlation tables; the prefetching thread chains
// through the tables and fills the prefetch queue; the migration thread
// drains the fault queue first and the prefetch queue when it is empty.
type Driver struct {
	tables *correlation.Tables
	deg    int

	faultQ    *SPSC[FaultEvent] // fault handling -> migration (priority)
	corrQ     *SPSC[FaultEvent] // fault handling -> correlator
	prefetchQ *SPSC[MigrateCommand]

	launchMu sync.Mutex
	history  [correlation.HistoryLen]correlation.ExecID
	histPrev [correlation.HistoryLen]correlation.ExecID
	current  correlation.ExecID

	// corrMu guards the correlation tables between the correlator thread
	// and the prefetching logic.
	corrMu sync.Mutex

	migrator Migrator

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDriver constructs the pipeline with the given correlation-table
// configuration, prefetch degree, and migrator.
func NewDriver(cfg correlation.BlockTableConfig, degree int, m Migrator) *Driver {
	d := &Driver{
		tables:    correlation.NewTables(cfg),
		deg:       degree,
		faultQ:    NewSPSC[FaultEvent](4096),
		corrQ:     NewSPSC[FaultEvent](4096),
		prefetchQ: NewSPSC[MigrateCommand](4096),
		current:   correlation.NoExec,
		migrator:  m,
		stop:      make(chan struct{}),
	}
	for i := range d.history {
		d.history[i] = correlation.NoExec
	}
	return d
}

// Start launches the correlator, prefetching, and migration threads. (The
// fault-handling thread is the caller of OnFault: on a real system it is
// woken by the GPU interrupt.)
func (d *Driver) Start() {
	d.wg.Add(2)
	go d.correlator()
	go d.migration()
}

// Stop terminates the threads and waits for them to drain.
func (d *Driver) Stop() {
	close(d.stop)
	d.wg.Wait()
}

// KernelLaunch is the runtime callback: it records the kernel transition in
// the execution table and rotates the launch history.
func (d *Driver) KernelLaunch(id correlation.ExecID) {
	d.launchMu.Lock()
	defer d.launchMu.Unlock()
	if d.current != correlation.NoExec {
		d.tables.Exec.Record(d.current, d.histPrev, id)
	}
	d.histPrev = d.history
	copy(d.history[:], d.history[1:])
	d.history[correlation.HistoryLen-1] = d.current
	d.current = id
	d.tables.Block(id).ResetCursor()
}

// OnFault is called by the fault-handling thread for each faulted UM block:
// it enqueues the demand migration with priority and feeds the correlator
// and prefetcher.
func (d *Driver) OnFault(b um.BlockID) {
	d.launchMu.Lock()
	cur := d.current
	hist := d.history
	d.launchMu.Unlock()
	ev := FaultEvent{Block: b, Exec: cur}
	for !d.faultQ.Push(ev) {
		// The migration thread drains this queue; spin briefly.
	}
	// Correlator updates are lossy under extreme pressure, like a real
	// bounded queue; dropping a history update is safe.
	_ = d.corrQ.Push(ev)
	// Restart chaining from the faulted block on the prefetching side.
	d.restartChain(cur, hist, b)
}

// correlator consumes fault events and updates the block tables.
func (d *Driver) correlator() {
	defer d.wg.Done()
	for {
		ev, ok := d.corrQ.Pop()
		if !ok {
			select {
			case <-d.stop:
				return
			default:
				runtime.Gosched()
				continue
			}
		}
		if ev.Exec == correlation.NoExec {
			continue
		}
		d.corrMu.Lock()
		d.tables.Block(ev.Exec).RecordMiss(ev.Block)
		d.corrMu.Unlock()
	}
}

// restartChain runs the prefetching thread's work inline with the fault
// handler call (the prefetching thread wakes on the same event); commands
// land in the bounded prefetch queue.
func (d *Driver) restartChain(cur correlation.ExecID, hist [correlation.HistoryLen]correlation.ExecID, seed um.BlockID) {
	if cur == correlation.NoExec {
		return
	}
	d.corrMu.Lock()
	cursor := d.tables.NewChainCursor(cur, hist, seed)
	for cursor.Kernels() < d.deg {
		b, exec := cursor.Next()
		if b == um.NoBlock {
			break
		}
		if !d.prefetchQ.Push(MigrateCommand{Block: b, Exec: exec}) {
			break // queue full: the chain pauses
		}
	}
	d.corrMu.Unlock()
}

// migration drains the fault queue with priority, then the prefetch queue.
func (d *Driver) migration() {
	defer d.wg.Done()
	for {
		if ev, ok := d.faultQ.Pop(); ok {
			d.migrator.Migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
			continue
		}
		if cmd, ok := d.prefetchQ.Pop(); ok {
			d.migrator.Migrate(cmd)
			continue
		}
		select {
		case <-d.stop:
			// Drain remaining demand work before exiting.
			for {
				ev, ok := d.faultQ.Pop()
				if !ok {
					return
				}
				d.migrator.Migrate(MigrateCommand{Block: ev.Block, Exec: ev.Exec, Demand: true})
			}
		default:
			runtime.Gosched()
		}
	}
}

// Tables exposes the correlation tables for inspection after Stop.
func (d *Driver) Tables() *correlation.Tables { return d.tables }
