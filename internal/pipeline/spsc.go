// Package pipeline is a faithful concurrent realization of the DeepUM
// driver's thread structure (Figure 4, §3.1): four kernel threads — fault
// handling, correlator, prefetching, migration — connected by
// single-producer/single-consumer queues, with the fault queue taking
// priority over the prefetch queue at the migration thread.
//
// The deterministic state machine in internal/core is what the simulation
// engine measures; this package demonstrates (and tests, including under the
// race detector) that the same policy logic runs correctly in the
// asynchronous form the paper deploys.
package pipeline

import "sync/atomic"

// SPSC is a bounded lock-free single-producer/single-consumer ring queue,
// the queue type the DeepUM driver uses between its kernel threads.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	head atomic.Uint64 // consumer position
	tail atomic.Uint64 // producer position
}

// NewSPSC returns a queue with capacity rounded up to a power of two.
func NewSPSC[T any](capacity int) *SPSC[T] {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}
}

// Push enqueues v; it returns false when the queue is full. Only one
// goroutine may call Push.
func (q *SPSC[T]) Push(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Pop dequeues the oldest element; ok is false when the queue is empty.
// Only one goroutine may call Pop.
func (q *SPSC[T]) Pop() (v T, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return v, false
	}
	v = q.buf[head&q.mask]
	q.head.Store(head + 1)
	return v, true
}

// Len returns the approximate queue depth.
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }
