package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"deepum/internal/correlation"
	"deepum/internal/um"
)

func TestSPSCOrdering(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("cap = %d", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into a full queue succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	if NewSPSC[int](3).Cap() != 4 || NewSPSC[int](5).Cap() != 8 {
		t.Fatal("capacity not rounded to power of two")
	}
}

// TestSPSCConcurrent pushes a million integers through the queue from one
// goroutine to another; under -race this validates the memory ordering.
func TestSPSCConcurrent(t *testing.T) {
	q := NewSPSC[int](1024)
	const n = 200_000
	done := make(chan int64)
	go func() {
		var sum int64
		received := 0
		for received < n {
			v, ok := q.Pop()
			if !ok {
				runtime.Gosched()
				continue
			}
			sum += int64(v)
			received++
		}
		done <- sum
	}()
	var want int64
	for i := 0; i < n; i++ {
		for !q.Push(i) {
			runtime.Gosched()
		}
		want += int64(i)
	}
	if got := <-done; got != want {
		t.Fatalf("sum = %d, want %d (lost or duplicated elements)", got, want)
	}
}

// TestSPSCQuick: any interleaving of pushes and pops preserves FIFO order.
func TestSPSCQuick(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewSPSC[int](8)
		next := 0
		expect := 0
		for _, push := range ops {
			if push {
				if q.Push(next) {
					next++
				}
			} else if v, ok := q.Pop(); ok {
				if v != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// collectMigrator records migrated commands thread-safely.
type collectMigrator struct {
	mu      sync.Mutex
	demand  []um.BlockID
	prefet  []um.BlockID
	demandN atomic.Int64
}

func (c *collectMigrator) Migrate(cmd MigrateCommand) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cmd.Demand {
		c.demand = append(c.demand, cmd.Block)
		c.demandN.Add(1)
	} else {
		c.prefet = append(c.prefet, cmd.Block)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 8, m)
	d.Start()

	// Two warm-up iterations of a two-kernel pattern teach the tables.
	iteration := func() {
		d.KernelLaunch(0)
		for _, b := range []um.BlockID{10, 11, 12} {
			d.OnFault(b)
		}
		d.KernelLaunch(1)
		for _, b := range []um.BlockID{20, 21} {
			d.OnFault(b)
		}
	}
	iteration()
	// Give the correlator time to consume the first iteration before the
	// second, so successor edges form.
	time.Sleep(10 * time.Millisecond)
	iteration()
	time.Sleep(10 * time.Millisecond)

	// Third iteration: the fault on block 10 should produce prefetches.
	d.KernelLaunch(0)
	d.OnFault(10)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		n := len(m.prefet)
		m.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	d.Stop()

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.demand) == 0 {
		t.Fatal("no demand migrations reached the migration thread")
	}
	if len(m.prefet) == 0 {
		t.Fatal("no prefetch commands reached the migration thread")
	}
	// The chain from block 10 must predict a successor within kernel 0.
	found := false
	for _, b := range m.prefet {
		if b == 11 || b == 12 {
			found = true
		}
	}
	if !found {
		t.Fatalf("prefetches %v do not contain kernel 0 successors", m.prefet)
	}
}

func TestPipelineStopDrainsDemandQueue(t *testing.T) {
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	d.Start()
	d.KernelLaunch(0)
	for i := 0; i < 100; i++ {
		d.OnFault(um.BlockID(i))
	}
	d.Stop()
	if m.demandN.Load() != 100 {
		t.Fatalf("demand migrations = %d, want 100 (drained on stop)", m.demandN.Load())
	}
}
