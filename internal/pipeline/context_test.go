package pipeline

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/correlation"
	"deepum/internal/um"
)

// waitGoroutines waits for the goroutine count to drop back to the baseline
// (plus slack for the runtime's own helpers), failing the test otherwise.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestPipelineContextCancel: cancelling the supervising context shuts the
// whole pipeline down — every demand migration served (queued, inline, or
// drained), prefetches discarded or executed, watcher gone — without the
// owner ever calling Stop.
func TestPipelineContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 8, m)
	ctx, cancel := context.WithCancel(context.Background())
	d.StartContext(ctx)

	const faults = 5_000
	d.KernelLaunch(0)
	for i := 0; i < faults; i++ {
		d.OnFault(um.BlockID(i % 256))
	}
	cancel()
	select {
	case <-d.WatcherDone():
	case <-time.After(10 * time.Second):
		t.Fatal("context watcher did not shut the pipeline down")
	}
	// The watcher's Stop has fully drained by the time WatcherDone closes;
	// a redundant owner Stop must be a cheap no-op.
	d.Stop()

	st := d.Stats()
	if served := st.DemandMigrations + st.InlineMigrations; served != faults {
		t.Fatalf("demand conservation violated across cancel: %d served, want %d", served, faults)
	}
	if got := m.demandN.Load(); got != faults {
		t.Fatalf("migrator saw %d demand commands, want %d", got, faults)
	}
	waitGoroutines(t, before)
}

// TestPipelineContextCancelDuringStall: cancellation while the migration
// thread is chaos-stalled still drains every queued demand command — the
// shutdown path must not race the stalled stage into losing work.
func TestPipelineContextCancelDuringStall(t *testing.T) {
	before := runtime.NumGoroutine()
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 8, m)
	d.SetChaos(chaos.NewPipelineInjector(chaos.Scenario{
		MigratorStallProb: 1.0,
		MigratorStallTime: 200_000, // 200us stall before every unit of work
	}, 1))
	ctx, cancel := context.WithCancel(context.Background())
	d.StartContext(ctx)

	const faults = 512
	d.KernelLaunch(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < faults; i++ {
			d.OnFault(um.BlockID(i))
		}
	}()
	time.Sleep(2 * time.Millisecond) // land the cancel mid-stream
	cancel()
	wg.Wait()
	select {
	case <-d.WatcherDone():
	case <-time.After(30 * time.Second):
		t.Fatal("watcher never finished stopping a stalled pipeline")
	}
	st := d.Stats()
	if served := st.DemandMigrations + st.InlineMigrations; served != faults {
		t.Fatalf("stalled-cancel lost demand work: %d served, want %d", served, faults)
	}
	waitGoroutines(t, before)
}

// TestPipelineContextDeadline: an already-expired context deadline stops the
// pipeline the moment it starts; late demand pushes are still served by
// Stop's drain sweep.
func TestPipelineContextDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	d.StartContext(ctx)
	select {
	case <-d.WatcherDone():
	case <-time.After(10 * time.Second):
		t.Fatal("expired deadline never stopped the pipeline")
	}
	d.KernelLaunch(0)
	for i := 0; i < 16; i++ {
		d.OnFault(um.BlockID(i))
	}
	d.Stop()
	if got := m.demandN.Load(); got != 16 {
		t.Fatalf("post-deadline faults not served: %d, want 16", got)
	}
	waitGoroutines(t, before)
}

// TestPipelineContextOwnerStopFirst: when the owner calls Stop before any
// cancellation, the watcher exits via the stop channel — StartContext never
// leaks its watcher regardless of which side shuts down first.
func TestPipelineContextOwnerStopFirst(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 10; i++ {
		m := &collectMigrator{}
		d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
		d.StartContext(ctx)
		d.KernelLaunch(correlation.ExecID(i))
		for j := 0; j < 32; j++ {
			d.OnFault(um.BlockID(j))
		}
		d.Stop()
		select {
		case <-d.WatcherDone():
		case <-time.After(10 * time.Second):
			t.Fatal("watcher outlived an owner-initiated Stop")
		}
		if got := m.demandN.Load(); got != 32 {
			t.Fatalf("cycle %d served %d demand commands, want 32", i, got)
		}
	}
	waitGoroutines(t, before)
}

// TestPipelineContextConcurrentStops: the owner's Stop and the watcher's
// cancel-triggered Stop racing each other must both return only after the
// drain completed, exactly once.
func TestPipelineContextConcurrentStops(t *testing.T) {
	before := runtime.NumGoroutine()
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	ctx, cancel := context.WithCancel(context.Background())
	d.StartContext(ctx)
	d.KernelLaunch(0)
	for i := 0; i < 64; i++ {
		d.OnFault(um.BlockID(i))
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { defer wg.Done(); cancel() }()
	go func() { defer wg.Done(); d.Stop() }()
	go func() { defer wg.Done(); d.Stop() }()
	wg.Wait()
	select {
	case <-d.WatcherDone():
	case <-time.After(10 * time.Second):
		t.Fatal("watcher stuck after concurrent stops")
	}
	if got := m.demandN.Load(); got != 64 {
		t.Fatalf("served %d demand commands after racing stops, want 64", got)
	}
	waitGoroutines(t, before)
}

// TestPipelineContextUncancellable: a nil or never-cancellable context spawns
// no watcher at all — StartContext degrades to Start.
func TestPipelineContextUncancellable(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		m := &collectMigrator{}
		d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
		d.StartContext(ctx)
		if d.WatcherDone() != nil {
			t.Fatal("watcher spawned for an uncancellable context")
		}
		d.KernelLaunch(0)
		d.OnFault(1)
		d.Stop()
		if got := m.demandN.Load(); got != 1 {
			t.Fatalf("served %d, want 1", got)
		}
	}
}
