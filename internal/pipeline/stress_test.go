package pipeline

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/um"
)

// TestPipelineConcurrentStress drives OnFault, KernelLaunch, and Stop from
// separate goroutines (the process's real concurrency structure) under
// -race, and checks the conservation law the hardening must preserve: every
// fault produces exactly one demand migration — queued, inline via the
// watchdog, or drained at Stop — none lost, none duplicated.
func TestPipelineConcurrentStress(t *testing.T) {
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 8, m)
	d.SetChaos(chaos.NewPipelineInjector(chaos.Scenario{
		DropNotifyProb:    0.2,
		DupNotifyProb:     0.1,
		MigratorStallProb: 0.05,
		MigratorStallTime: 50_000, // 50us real-time stalls
	}, 1))
	d.Start()

	const faults = 20_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // the fault-handling thread
		defer wg.Done()
		for i := 0; i < faults; i++ {
			d.OnFault(um.BlockID(i % 512))
		}
	}()
	go func() { // the runtime's launch callback
		defer wg.Done()
		for i := 0; i < 2_000; i++ {
			d.KernelLaunch(correlation.ExecID(i % 16))
		}
	}()
	wg.Wait()
	d.Stop()

	st := d.Stats()
	served := st.DemandMigrations + st.InlineMigrations
	if served != faults {
		t.Fatalf("demand conservation violated: %d served (%d queued + %d inline), want %d",
			served, st.DemandMigrations, st.InlineMigrations, faults)
	}
	if got := m.demandN.Load(); got != faults {
		t.Fatalf("migrator saw %d demand commands, want %d", got, faults)
	}
}

// TestPipelineWatchdogInlineService: with no migration thread at all (Start
// never called — the hardest stall), OnFault must not livelock on the full
// fault queue. The watchdog observes zero progress across its spin budget
// and serves the overflow migrations inline.
func TestPipelineWatchdogInlineService(t *testing.T) {
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	// Deliberately not started.
	d.KernelLaunch(0)
	cap := d.faultQ.Cap()
	overflow := 10
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < cap+overflow; i++ {
			d.OnFault(um.BlockID(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("OnFault livelocked on a full queue with a dead migration thread")
	}
	st := d.Stats()
	if st.InlineMigrations != int64(overflow) {
		t.Fatalf("inline migrations = %d, want %d (queue overflow served synchronously)",
			st.InlineMigrations, overflow)
	}
	d.Stop() // drains the cap queued commands
	if got := m.demandN.Load(); got != int64(cap+overflow) {
		t.Fatalf("migrator saw %d demand commands, want %d", got, cap+overflow)
	}
}

// panicMigrator panics on one poisoned block and records the rest.
type panicMigrator struct {
	collectMigrator
	poison um.BlockID
}

func (p *panicMigrator) Migrate(cmd MigrateCommand) {
	if cmd.Block == p.poison {
		panic("poisoned block")
	}
	p.collectMigrator.Migrate(cmd)
}

// TestPipelinePanicRecovery: a migrator panic on one command restarts the
// migration stage instead of killing the process; subsequent faults are
// still served and the restart is counted.
func TestPipelinePanicRecovery(t *testing.T) {
	m := &panicMigrator{poison: 13}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	d.Start()
	d.KernelLaunch(0)
	d.OnFault(13) // consumed by the migration thread, panics, stage restarts
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().StageRestarts == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d.Stats().StageRestarts == 0 {
		t.Fatal("migrator panic was not recovered")
	}
	for i := 100; i < 120; i++ {
		d.OnFault(um.BlockID(i))
	}
	d.Stop()
	if got := m.demandN.Load(); got != 20 {
		t.Fatalf("served %d demand migrations after the panic, want 20", got)
	}
}

// TestPipelineStopIdempotent: Stop is safe to call repeatedly and from
// several goroutines at once.
func TestPipelineStopIdempotent(t *testing.T) {
	m := &collectMigrator{}
	d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
	d.Start()
	d.KernelLaunch(0)
	for i := 0; i < 32; i++ {
		d.OnFault(um.BlockID(i))
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); d.Stop() }()
	}
	wg.Wait()
	d.Stop()
}

// TestPipelineNoGoroutineLeak: repeated Start/Stop cycles leave no stage
// goroutines behind.
func TestPipelineNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		m := &collectMigrator{}
		d := NewDriver(correlation.DefaultBlockTableConfig(), 4, m)
		d.Start()
		d.KernelLaunch(correlation.ExecID(i))
		for j := 0; j < 64; j++ {
			d.OnFault(um.BlockID(j))
		}
		d.Stop()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after 25 start/stop cycles",
		before, runtime.NumGoroutine())
}

// TestPipelineMatchesCoreDriver: the concurrent pipeline and the
// deterministic core driver learn the same correlation state from the same
// fault/launch sequence — the chains they would prefetch from any seed
// block are identical. This pins the pipeline's lossy, asynchronous
// correlator to the reference semantics when nothing is actually lost.
func TestPipelineMatchesCoreDriver(t *testing.T) {
	cfg := correlation.DefaultBlockTableConfig()
	m := &collectMigrator{}
	pd := NewDriver(cfg, 8, m)
	pd.Start()
	cd := core.NewDriver(core.Options{Prefetch: true, Degree: 8, TableConfig: cfg})

	// Mirror the pipeline's launch-history rotation so both cursors get the
	// same context.
	var hist [correlation.HistoryLen]correlation.ExecID
	for i := range hist {
		hist[i] = correlation.NoExec
	}
	current := correlation.NoExec
	launch := func(id correlation.ExecID) {
		pd.KernelLaunch(id)
		cd.KernelLaunch(id)
		copy(hist[:], hist[1:])
		hist[correlation.HistoryLen-1] = current
		current = id
	}
	histories := map[correlation.ExecID][correlation.HistoryLen]correlation.ExecID{}

	for it := 0; it < 3; it++ {
		for k := 0; k < 4; k++ {
			id := correlation.ExecID(k)
			launch(id)
			histories[id] = hist
			for j := 0; j < 6; j++ {
				b := um.BlockID(100*k + j)
				pd.OnFault(b)
				cd.OnFault(b)
			}
			// Let the pipeline's correlator drain in order before the next
			// kernel, so no event is dropped and ordering matches the
			// synchronous reference.
			time.Sleep(5 * time.Millisecond)
		}
	}
	pd.Stop()

	for k := 0; k < 4; k++ {
		id := correlation.ExecID(k)
		seed := um.BlockID(100 * k)
		pc := pd.Tables().NewChainCursor(id, histories[id], seed)
		cc := cd.Tables().NewChainCursor(id, histories[id], seed)
		for step := 0; step < 32; step++ {
			pb, pe := pc.Next()
			cb, ce := cc.Next()
			if pb != cb || pe != ce {
				t.Fatalf("kernel %d chain diverges at step %d: pipeline (%d,%d) vs core (%d,%d)",
					k, step, pb, pe, cb, ce)
			}
			if pb == um.NoBlock {
				break
			}
		}
	}
}
