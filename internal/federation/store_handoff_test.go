package federation

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"deepum/internal/store"
	"deepum/internal/supervisor"
	"deepum/internal/supervisor/journal"
)

// TestStoreBackedHandoffEquivalence is the failover-equivalence drill with
// the shared content-addressed checkpoint store wired in: shard journals
// carry 16-byte references, a kill-9'd shard's runs are adopted by
// reference (no blob ever copied between journals), and every adopted
// run's AccessChecksum is bit-identical to an uninterrupted execution.
func TestStoreBackedHandoffEquivalence(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "ck.store")
	gate := make(chan struct{})
	f, err := New(Config{
		Shards: 3,
		Supervisor: supervisor.Config{
			Runner:        hangingRunner(gate),
			Workers:       1,
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: dir,
		StorePath:  storePath,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Drain(ctx)
	}()
	if f.Store() == nil {
		t.Fatal("federation did not open the shared store")
	}

	const iters = 8
	var seed int64
	specs := map[uint64]supervisor.RunSpec{}
	submit := func(chaos string) {
		t.Helper()
		seed++
		spec := supervisor.RunSpec{
			Model:           "bert-base",
			Batch:           8,
			Seed:            seed,
			Iterations:      iters,
			CheckpointEvery: 2,
		}
		if chaos == "hang" {
			spec.Chaos = "hang"
			spec.Warmup = 4
		}
		id, err := f.Submit(spec)
		if err != nil {
			t.Fatalf("Submit(seed %d): %v", seed, err)
		}
		specs[id] = spec
	}
	for i := 0; i < 9; i++ {
		submit("hang")
	}
	for i := 0; i < 6; i++ {
		submit("")
	}

	// Find a victim with a hung, checkpointed run plus queued backlog.
	victim := -1
	waitFor(t, "a loaded victim shard", func() bool {
		for _, sh := range f.Shards() {
			if sh.Running != 1 || sh.Queued < 1 {
				continue
			}
			for _, info := range f.Supervisor(sh.Ordinal).List() {
				if info.State == supervisor.StateRunning && info.Checkpoints >= 2 {
					victim = sh.Ordinal
					return true
				}
			}
		}
		return false
	})

	// Before the kill: the victim's journal must hold references, not
	// blobs (the wedge pins its worker, so the file is quiescent enough
	// for a read-only replay).
	vicJournal := filepath.Join(dir, fmt.Sprintf("shard-%d.journal", victim))
	refs := 0
	recs, _, err := journal.ReplayFile(vicJournal)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Type != journal.RecCheckpointed {
			continue
		}
		if _, ok := store.DecodeRef(rec.Data); !ok {
			t.Fatalf("victim journal checkpoint record holds %d inline bytes, want a reference", len(rec.Data))
		}
		refs++
	}
	if refs == 0 {
		t.Fatal("victim journal has no checkpoint references")
	}

	if err := f.Kill(victim); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Handoff(victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resumed == 0 {
		t.Fatalf("handoff resumed nothing: %+v", rep)
	}

	// Drain the storm; every run must finish with the oracle checksum.
	close(gate)
	for id, spec := range specs {
		info, err := f.Wait(id)
		if err != nil {
			t.Fatalf("Wait(%d): %v", id, err)
		}
		if info.State != supervisor.StateCompleted {
			t.Fatalf("run %d ended %s (%s)", id, info.State, info.Reason)
		}
		if want := expectChecksum(spec.Seed, iters); info.Outcome.AccessChecksum != want {
			t.Fatalf("run %d checksum %#x, want %#x (seed %d)", id, info.Outcome.AccessChecksum, want, spec.Seed)
		}
	}

	// Store integrity after the storm: scrub finds nothing to repair or
	// degrade, and dedup means far fewer keys than checkpoint records.
	srep, err := f.Store().Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(srep.Lost) != 0 || srep.Repaired != 0 || srep.CorruptFrames != 0 {
		t.Fatalf("post-storm scrub: %+v", srep)
	}
}
