// Package federation shards the run supervisor horizontally: a
// consistent-hash ring of supervisor.Supervisor shards behind one
// admission front-end. Every shard owns a slice of the run-ID space and
// journals its runs in its own crash-safe WAL, so when a shard is
// kill-9'd mid-storm the federation replays the dead shard's journal
// read-only and hands its runs to the surviving peers: finished runs stay
// finished, queued runs restart cold, interrupted runs resume from their
// latest journaled checkpoint — no run ID lost, none duplicated.
//
// The failure protocol is two explicit steps (Failover composes them):
//
//	Kill(n)    — shard n dies; its ID range rejects with *HandoffError
//	             (the serve layer turns that into 503 + Retry-After).
//	Handoff(n) — replay shard n's journal, re-hash each run onto the
//	             surviving ring, Adopt into the successors (each adoption
//	             is write-ahead journaled by the successor before it is
//	             accepted, so the handoff itself survives a further kill),
//	             then rename the dead journal to *.adopted so a replayed
//	             handoff is a no-op.
//
// Ownership is tracked per run ID, not recomputed from the ring: the ring
// decides placement at admission and succession at handoff; the owner map
// is the routing truth afterwards. That keeps already-placed runs pinned
// while the ring shrinks.
package federation

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"deepum/internal/admission"
	"deepum/internal/metrics"
	"deepum/internal/obs"
	"deepum/internal/store"
	"deepum/internal/supervisor"
)

// Config parameterizes a Federation.
type Config struct {
	// Shards is the shard count; defaults to 4.
	Shards int
	// Supervisor is the per-shard template config. JournalPath is ignored —
	// each shard journals to JournalDir/shard-<n>.journal.
	Supervisor supervisor.Config
	// JournalDir holds the per-shard journals; required (journal handoff is
	// the whole point — a journal-less shard would lose its runs on kill).
	JournalDir string
	// Replicas is the virtual-node count per shard on the hash ring
	// (default 64).
	Replicas int
	// StorePath, when set, opens one shared content-addressed checkpoint
	// store for the whole fleet and wires it into every shard's supervisor
	// (overriding Supervisor.Checkpoints). Shard journals then carry
	// 16-byte checkpoint references and a handoff moves references between
	// shards while the blobs stay put — adopting a dead shard's runs no
	// longer copies its checkpoint history. The federation owns the store
	// and closes it in Drain.
	StorePath string
	// StoreReplicas is the per-checkpoint frame replication inside the
	// shared store (scrub repairs from a surviving replica); default 2.
	StoreReplicas int
	// StoreScrubEvery starts the shared store's background scrubber at
	// this interval; 0 leaves scrubbing to explicit calls.
	StoreScrubEvery time.Duration
	// StoreNoSync skips the store's per-Put fsync. Only harnesses that
	// kill shards in-process (where the page cache survives) should set
	// it, for the same reason as JournalNoSync.
	StoreNoSync bool
	// Obs, when set, receives shard-lifecycle events (kill, adopt, handoff,
	// rebalance) on the shard track.
	Obs *obs.Recorder
}

// Federation is the sharded front-end. All methods are safe for
// concurrent use.
type Federation struct {
	cfg   Config
	epoch time.Time
	prom  *metrics.Registry

	store *store.Store // shared checkpoint store (nil without StorePath)

	mu     sync.Mutex
	shards []*shard
	ring   *ring
	nextID uint64
	owner  map[uint64]int
	// topo is closed (and replaced) when a handoff completes; blocked
	// waiters re-resolve ownership instead of polling.
	topo       chan struct{}
	handoffs   int
	rebalances int
	// keyBound is the federation-wide idempotency index: key -> run ID, fed
	// from fresh keyed submits, shard snapshots at restart, and adopted
	// keys at handoff (so a retry that lands after a kill still dedups).
	// keyPending singleflights concurrent submits carrying the same unbound
	// key: the first caller resolves, the rest wait on its entry instead of
	// racing two runs into different shards.
	keyBound   map[string]uint64
	keyPending map[string]*keyEntry
	// fedDedup counts retries resolved at the federation front door
	// (keyBound / keyPending) — these never reach a shard supervisor, so
	// shard counters cannot see them. Stats adds it to the shard totals.
	fedDedup atomic.Int64
}

// keyEntry is one in-flight keyed submission; done is closed once the
// resolver bound the key (err nil, id valid) or failed (err non-nil, the
// key is free again and a waiter may retry as the new resolver).
type keyEntry struct {
	done chan struct{}
	id   uint64
	err  error
}

type shard struct {
	ordinal int
	sup     *supervisor.Supervisor
	journal string
	alive   bool
	// handoff is non-nil from Kill until Handoff completes.
	handoff *handoffState
}

type handoffState struct {
	since      time.Time
	inProgress bool
}

// HandoffError rejects a request whose run (or fresh run ID) maps to a
// dead shard whose journal has not been handed off yet. It is retryable:
// once Handoff completes, the ID range belongs to a live successor.
type HandoffError struct {
	// Shard is the dead shard's ordinal.
	Shard int
	// Since is when the shard was declared dead.
	Since time.Time
}

func (e *HandoffError) Error() string {
	return fmt.Sprintf("federation: shard %d is dead awaiting journal handoff (since %s); retry after handoff",
		e.Shard, e.Since.Format(time.RFC3339))
}

// Retryable reports that waiting out the handoff clears the rejection.
func (e *HandoffError) Retryable() bool { return true }

// ShardError wraps a shard-local error with the owning shard's ordinal so
// callers (and HTTP error bodies) can say which shard rejected. Unwrap
// exposes the shard's typed error for errors.Is/As.
type ShardError struct {
	Shard int
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("federation: shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// New builds the shard fleet, replaying each shard's journal (a restarted
// federation self-recovers shard by shard), and seeds the global run-ID
// counter past everything the journals know.
func New(cfg Config) (*Federation, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Supervisor.Runner == nil {
		return nil, fmt.Errorf("federation: Config.Supervisor.Runner is required")
	}
	if cfg.JournalDir == "" {
		return nil, fmt.Errorf("federation: Config.JournalDir is required (journal handoff needs per-shard journals)")
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return nil, fmt.Errorf("federation: creating journal dir: %w", err)
	}
	f := &Federation{
		cfg:        cfg,
		epoch:      time.Now(),
		prom:       metrics.NewRegistry(),
		owner:      map[uint64]int{},
		topo:       make(chan struct{}),
		nextID:     1,
		keyBound:   map[string]uint64{},
		keyPending: map[string]*keyEntry{},
	}
	if cfg.StorePath != "" {
		replicas := cfg.StoreReplicas
		if replicas <= 0 {
			replicas = 2
		}
		st, _, err := store.Open(cfg.StorePath, store.Options{
			Replicas:   replicas,
			ScrubEvery: cfg.StoreScrubEvery,
			NoSync:     cfg.StoreNoSync,
		})
		if err != nil {
			return nil, fmt.Errorf("federation: opening checkpoint store: %w", err)
		}
		f.store = st
		cfg.Supervisor.Checkpoints = st
	}
	ordinals := make([]int, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		ordinals[i] = i
		scfg := cfg.Supervisor
		scfg.JournalPath = filepath.Join(cfg.JournalDir, fmt.Sprintf("shard-%d.journal", i))
		if f.store != nil {
			// Per-shard auto-GC is only safe for a store with one writer; a
			// shard compacting the shared store against its own live set
			// would drop its peers' checkpoints. The federation-level
			// StoreGC method compacts against the union instead.
			scfg.StoreGCThreshold = 0
		}
		sup, err := supervisor.New(scfg)
		if err != nil {
			for _, sh := range f.shards {
				sh.sup.Kill()
			}
			if f.store != nil {
				f.store.Close()
			}
			return nil, fmt.Errorf("federation: shard %d: %w", i, err)
		}
		f.shards = append(f.shards, &shard{ordinal: i, sup: sup, journal: scfg.JournalPath, alive: true})
	}
	f.ring = buildRing(ordinals, cfg.Replicas)
	// Rebuild the routing truth from the shards' replayed journals. A crash
	// inside a previous handoff (after some Adopts, before the *.adopted
	// rename) can leave a run on two journals; keep the first copy and
	// cancel the later one so exactly one shard ever executes it.
	for _, sh := range f.shards {
		for _, info := range sh.sup.List() {
			if _, dup := f.owner[info.ID]; dup {
				_ = sh.sup.Cancel(info.ID)
				continue
			}
			f.owner[info.ID] = sh.ordinal
			if info.ID >= f.nextID {
				f.nextID = info.ID + 1
			}
		}
		// Rebuild the global idempotency index from the shard's replayed key
		// table. A run duplicated across journals by a mid-handoff crash
		// binds its key to the same run ID on both copies, so first-wins is
		// consistent with the duplicate-cancel above.
		for key, id := range sh.sup.AdmissionKeys() {
			if _, dup := f.keyBound[key]; !dup {
				f.keyBound[key] = id
			}
		}
	}
	f.initMetrics()
	return f, nil
}

// Submit admits one run: a globally-unique ID is assigned, hashed onto the
// ring, and submitted to the owning shard. Rejections keep their shard-
// local types behind *ShardError; an ID landing on a dead shard mid-
// handoff rejects with *HandoffError. Rejected IDs are burned, never
// reused — IDs are identities, not a dense sequence.
func (f *Federation) Submit(spec supervisor.RunSpec) (uint64, error) {
	id, _, err := f.SubmitWithOptions(spec, supervisor.SubmitOptions{})
	return id, err
}

// SubmitWithOptions is Submit plus idempotency and deadline handling (see
// supervisor.SubmitOptions). A submission whose key is already bound —
// here, on a shard, or via an adopted handoff — returns the bound run's ID
// with dedup=true; concurrent submissions racing the same unbound key are
// singleflighted so exactly one run is ever created per key.
func (f *Federation) SubmitWithOptions(spec supervisor.RunSpec, opts supervisor.SubmitOptions) (uint64, bool, error) {
	if opts.Key == "" {
		id, dedup, err := f.submitFresh(spec, opts)
		return id, dedup, err
	}
	if err := admission.ValidateKey(opts.Key); err != nil {
		return 0, false, err
	}
	for {
		f.mu.Lock()
		if id, ok := f.keyBound[opts.Key]; ok {
			f.mu.Unlock()
			f.fedDedup.Add(1)
			f.prom.Counter(mDedupHits, "", nil).Inc()
			return id, true, nil
		}
		if e, ok := f.keyPending[opts.Key]; ok {
			f.mu.Unlock()
			<-e.done
			if e.err == nil {
				f.fedDedup.Add(1)
				f.prom.Counter(mDedupHits, "", nil).Inc()
				return e.id, true, nil
			}
			// The resolver failed without binding the key; this waiter loops
			// and becomes the new resolver — a transient rejection of the
			// first attempt must not poison the key.
			continue
		}
		e := &keyEntry{done: make(chan struct{})}
		f.keyPending[opts.Key] = e
		f.mu.Unlock()

		id, dedup, err := f.submitFresh(spec, opts)
		f.mu.Lock()
		delete(f.keyPending, opts.Key)
		if err == nil {
			f.keyBound[opts.Key] = id
		}
		f.mu.Unlock()
		e.id, e.err = id, err
		close(e.done)
		if err == nil && dedup {
			f.prom.Counter(mDedupHits, "", nil).Inc()
		}
		return id, dedup, err
	}
}

// submitFresh runs one admission attempt: assign a global ID, route it,
// submit to the owning shard. A shard-level dedup (the shard's replayed key
// table knew the key before the federation did) burns the fresh ID and
// resolves to the shard's binding.
func (f *Federation) submitFresh(spec supervisor.RunSpec, opts supervisor.SubmitOptions) (uint64, bool, error) {
	f.mu.Lock()
	id := f.nextID
	f.nextID++
	ord := f.ring.owner(id)
	sh := f.shards[ord]
	if !sh.alive {
		err := f.handoffErrLocked(sh)
		f.mu.Unlock()
		f.prom.Counter(mHandoffRejections, "", nil).Inc()
		return 0, false, err
	}
	f.owner[id] = ord
	f.mu.Unlock()
	got, dedup, err := sh.sup.SubmitWithOptions(id, spec, opts)
	if err != nil {
		f.mu.Lock()
		delete(f.owner, id)
		// Kill can land between the alive check above and the submit, making
		// the shard reject with its shutdown error. The caller must see the
		// same retryable handoff rejection it would have seen a microsecond
		// later, not a "federation draining" signal that is not true.
		if !sh.alive && errors.Is(err, supervisor.ErrShuttingDown) {
			herr := f.handoffErrLocked(sh)
			f.mu.Unlock()
			f.prom.Counter(mHandoffRejections, "", nil).Inc()
			return 0, false, herr
		}
		f.mu.Unlock()
		var shed *admission.ShedError
		if errors.As(err, &shed) {
			f.prom.Counter(mShedRejections, "", nil).Inc()
		}
		return 0, false, &ShardError{Shard: ord, Err: err}
	}
	if dedup {
		f.mu.Lock()
		delete(f.owner, id) // burned: the key resolved to an existing run
		f.mu.Unlock()
		return got, true, nil
	}
	f.prom.Counter(mShardSubmissions, "", shardLabel(ord)).Inc()
	return got, false, nil
}

// RetryAfterHint prices a jittered backoff hint from a live shard's drain
// model, for rejection paths with no typed Retry-After (drain, handoff
// windows). Falls back to one second when no shard is alive.
func (f *Federation) RetryAfterHint() time.Duration {
	f.mu.Lock()
	var sup *supervisor.Supervisor
	for _, sh := range f.shards {
		if sh.alive {
			sup = sh.sup
			break
		}
	}
	f.mu.Unlock()
	if sup == nil {
		return time.Second
	}
	return sup.RetryAfterHint()
}

// handoffErrLocked builds the rejection for a dead shard; caller holds mu.
func (f *Federation) handoffErrLocked(sh *shard) *HandoffError {
	e := &HandoffError{Shard: sh.ordinal}
	if sh.handoff != nil {
		e.Since = sh.handoff.since
	}
	return e
}

// route resolves a run ID to its live owning shard.
func (f *Federation) route(id uint64) (*shard, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ord, ok := f.owner[id]
	if !ok {
		return nil, &supervisor.NotFoundError{ID: id}
	}
	sh := f.shards[ord]
	if !sh.alive {
		return nil, f.handoffErrLocked(sh)
	}
	return sh, nil
}

// Get snapshots one run from its owning shard.
func (f *Federation) Get(id uint64) (supervisor.RunInfo, error) {
	sh, err := f.route(id)
	if err != nil {
		return supervisor.RunInfo{}, err
	}
	info, err := sh.sup.Get(id)
	if err != nil {
		return info, &ShardError{Shard: sh.ordinal, Err: err}
	}
	return info, nil
}

// Cancel stops a run on its owning shard.
func (f *Federation) Cancel(id uint64) error {
	sh, err := f.route(id)
	if err != nil {
		return err
	}
	if err := sh.sup.Cancel(id); err != nil {
		return &ShardError{Shard: sh.ordinal, Err: err}
	}
	return nil
}

// Resume force-resumes a suspended run on its owning shard, bypassing the
// arbiter's headroom gate (operator override).
func (f *Federation) Resume(id uint64) error {
	sh, err := f.route(id)
	if err != nil {
		return err
	}
	if err := sh.sup.Resume(id); err != nil {
		return &ShardError{Shard: sh.ordinal, Err: err}
	}
	return nil
}

// Wait blocks until the run is terminal on a live owner. If the owning
// shard is killed while waiting, Wait re-resolves after the handoff moves
// the run — the returned snapshot always comes from a shard that was the
// run's live owner at read time, never from a dead shard's untrustworthy
// in-memory state. A run on a killed shard that is never handed off keeps
// Wait blocked (there is no truthful answer until the journal is adopted).
func (f *Federation) Wait(id uint64) (supervisor.RunInfo, error) {
	for {
		f.mu.Lock()
		ord, ok := f.owner[id]
		if !ok {
			f.mu.Unlock()
			return supervisor.RunInfo{}, &supervisor.NotFoundError{ID: id}
		}
		sh := f.shards[ord]
		topo := f.topo
		alive := sh.alive
		f.mu.Unlock()
		if !alive {
			<-topo // handoff completion re-routes the run
			continue
		}
		done, err := sh.sup.Done(id)
		if err != nil {
			// Ownership says this shard, the shard disagrees: the owner map
			// moved between our read and the lookup. Re-resolve.
			select {
			case <-topo:
			case <-sh.sup.Killed():
			}
			continue
		}
		select {
		case <-done:
			info, gerr := sh.sup.Get(id)
			if gerr != nil {
				continue
			}
			f.mu.Lock()
			settled := f.shards[ord].alive && f.owner[id] == ord
			f.mu.Unlock()
			if settled {
				return info, nil
			}
			// The shard died (or the run moved) while we read; its snapshot
			// may disagree with the journal. Resolve again.
		case <-sh.sup.Killed():
			// The run will finish on whichever peer adopts it.
		}
	}
}

// List snapshots every run owned by a live shard, ascending by run ID.
// Runs stranded on a dead shard mid-handoff are omitted until adopted.
func (f *Federation) List() []supervisor.RunInfo {
	f.mu.Lock()
	type ref struct {
		id  uint64
		sup *supervisor.Supervisor
	}
	refs := make([]ref, 0, len(f.owner))
	for id, ord := range f.owner {
		if sh := f.shards[ord]; sh.alive {
			refs = append(refs, ref{id: id, sup: sh.sup})
		}
	}
	f.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	out := make([]supervisor.RunInfo, 0, len(refs))
	for _, r := range refs {
		if info, err := r.sup.Get(r.id); err == nil {
			out = append(out, info)
		}
	}
	return out
}

// Kill hard-stops one shard, simulating a process kill: nothing more is
// journaled there, in-flight runs are interrupted, and the shard's ID
// range rejects with *HandoffError until Handoff moves its journal to the
// survivors.
func (f *Federation) Kill(ordinal int) error {
	f.mu.Lock()
	if ordinal < 0 || ordinal >= len(f.shards) {
		f.mu.Unlock()
		return fmt.Errorf("federation: no shard %d", ordinal)
	}
	sh := f.shards[ordinal]
	if !sh.alive {
		f.mu.Unlock()
		return fmt.Errorf("federation: shard %d is already dead", ordinal)
	}
	sh.alive = false
	sh.handoff = &handoffState{since: time.Now()}
	f.mu.Unlock()
	f.note("kill", ordinal, 0, -1)
	sh.sup.Kill()
	return nil
}

// HandoffReport summarizes one journal handoff.
type HandoffReport struct {
	// Shard is the dead shard whose journal was adopted.
	Shard int `json:"shard"`
	// Runs is how many runs the dead journal held.
	Runs int `json:"runs"`
	// Queued counts non-terminal runs re-admitted on successors (Resumed of
	// them from a journaled checkpoint), Finished terminal history carried
	// over, Skipped runs a successor already knew (idempotent replay).
	Queued   int `json:"queued"`
	Resumed  int `json:"resumed"`
	Finished int `json:"finished"`
	Skipped  int `json:"skipped"`
	// Successors maps successor ordinal to how many of the dead shard's
	// runs it now owns.
	Successors map[int]int `json:"successors,omitempty"`
}

// Handoff adopts a dead shard's journal into the surviving peers: replay
// read-only, re-hash every run onto the shrunken ring, Adopt per
// successor (write-ahead journaled there), rename the dead journal to
// *.adopted, then flip ownership and the ring. A failed handoff leaves
// ownership untouched and may be retried — successors skip runs they
// already adopted.
func (f *Federation) Handoff(ordinal int) (HandoffReport, error) {
	rep := HandoffReport{Shard: ordinal, Successors: map[int]int{}}
	f.mu.Lock()
	if ordinal < 0 || ordinal >= len(f.shards) {
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: no shard %d", ordinal)
	}
	sh := f.shards[ordinal]
	switch {
	case sh.alive:
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: shard %d is alive; kill it before handing off its journal", ordinal)
	case sh.handoff == nil:
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: shard %d was already handed off", ordinal)
	case sh.handoff.inProgress:
		f.mu.Unlock()
		return rep, fmt.Errorf("federation: shard %d handoff already in progress", ordinal)
	}
	sh.handoff.inProgress = true
	var live []int
	for _, s := range f.shards {
		if s.alive {
			live = append(live, s.ordinal)
		}
	}
	f.mu.Unlock()
	fail := func(err error) (HandoffReport, error) {
		f.mu.Lock()
		sh.handoff.inProgress = false
		f.mu.Unlock()
		return rep, err
	}
	if len(live) == 0 {
		return fail(fmt.Errorf("federation: no live shard left to adopt shard %d's runs", ordinal))
	}
	newRing := buildRing(live, f.cfg.Replicas)

	adoptions, _, err := supervisor.ReplayJournal(sh.journal)
	if err != nil {
		return fail(fmt.Errorf("federation: replaying shard %d journal: %w", ordinal, err))
	}
	rep.Runs = len(adoptions)
	successor := make(map[uint64]int, len(adoptions))
	groups := map[int][]supervisor.Adoption{}
	for _, a := range adoptions {
		succ := newRing.owner(a.ID)
		successor[a.ID] = succ
		groups[succ] = append(groups[succ], a)
	}
	// Deterministic adoption order so a crashed-and-retried handoff replays
	// the same way.
	succs := make([]int, 0, len(groups))
	for s := range groups {
		succs = append(succs, s)
	}
	sort.Ints(succs)
	for _, succ := range succs {
		r, err := f.shards[succ].sup.Adopt(groups[succ])
		if err != nil {
			return fail(fmt.Errorf("federation: shard %d adopting from shard %d: %w", succ, ordinal, err))
		}
		rep.Queued += r.Queued
		rep.Resumed += r.Resumed
		rep.Finished += r.Finished
		rep.Skipped += r.Skipped
		rep.Successors[succ] = len(groups[succ])
		f.prom.Counter(mShardAdopted, "", shardLabel(succ)).Add(int64(r.Queued + r.Finished))
		f.note("adopt", ordinal, int64(len(groups[succ])), int64(succ))
	}
	// The rename is the handoff's commit point on disk: once the journal is
	// *.adopted, a federation restart will not resurrect the dead shard's
	// runs alongside the adopted copies.
	if err := os.Rename(sh.journal, sh.journal+".adopted"); err != nil {
		return fail(fmt.Errorf("federation: retiring shard %d journal: %w", ordinal, err))
	}
	f.mu.Lock()
	for id, succ := range successor {
		f.owner[id] = succ
	}
	// Adopted idempotency keys join the global index with ownership: a
	// retry arriving after the kill resolves to the adopted run instead of
	// admitting a duplicate on a survivor.
	for _, a := range adoptions {
		if a.Key != "" {
			if _, bound := f.keyBound[a.Key]; !bound {
				f.keyBound[a.Key] = a.ID
			}
		}
	}
	f.ring = newRing
	sh.handoff = nil
	f.handoffs++
	f.rebalances++
	close(f.topo)
	f.topo = make(chan struct{})
	f.mu.Unlock()
	f.prom.Counter(mHandoffs, "", nil).Inc()
	f.prom.Counter(mRebalances, "", nil).Inc()
	f.note("handoff", ordinal, int64(rep.Runs), -1)
	f.note("rebalance", ordinal, int64(len(live)), -1)
	return rep, nil
}

// Failover is Kill then Handoff — the whole shard-death drill in one call.
func (f *Federation) Failover(ordinal int) (HandoffReport, error) {
	if err := f.Kill(ordinal); err != nil {
		return HandoffReport{}, err
	}
	return f.Handoff(ordinal)
}

// Supervisor exposes one shard's supervisor (tests, inspection).
func (f *Federation) Supervisor(ordinal int) *supervisor.Supervisor {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ordinal < 0 || ordinal >= len(f.shards) {
		return nil
	}
	return f.shards[ordinal].sup
}

// Owner reports which shard currently owns the run ID.
func (f *Federation) Owner(id uint64) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ord, ok := f.owner[id]
	return ord, ok
}

// ShardStats is one shard's row in the /shards status endpoint.
type ShardStats struct {
	Ordinal int  `json:"ordinal"`
	Alive   bool `json:"alive"`
	// HandoffPending marks a dead shard whose journal has not been adopted
	// yet — its ID range is rejecting with 503s.
	HandoffPending bool   `json:"handoff_pending,omitempty"`
	Journal        string `json:"journal"`
	Queued         int    `json:"queued"`
	Running        int    `json:"running"`
	Suspended      int    `json:"suspended,omitempty"`
	Terminal       int    `json:"terminal"`
	// Recovered counts runs replayed from the shard's own journal at start;
	// Adopted counts runs taken over from dead peers.
	Recovered int `json:"recovered,omitempty"`
	Adopted   int `json:"adopted,omitempty"`
}

// Shards snapshots every shard.
func (f *Federation) Shards() []ShardStats {
	f.mu.Lock()
	shards := append([]*shard(nil), f.shards...)
	alive := make([]bool, len(shards))
	pending := make([]bool, len(shards))
	for i, sh := range shards {
		alive[i] = sh.alive
		pending[i] = sh.handoff != nil
	}
	f.mu.Unlock()
	out := make([]ShardStats, len(shards))
	for i, sh := range shards {
		st := sh.sup.Stats()
		out[i] = ShardStats{
			Ordinal:        sh.ordinal,
			Alive:          alive[i],
			HandoffPending: pending[i],
			Journal:        sh.journal,
			Queued:         st.Queued,
			Running:        st.Running,
			Suspended:      st.Suspended,
			Terminal:       st.Terminal,
			Recovered:      st.Recovered,
			Adopted:        st.Adopted,
		}
	}
	return out
}

// Stats is the federation-wide aggregate.
type Stats struct {
	Shards     int    `json:"shards"`
	Live       int    `json:"live"`
	Handoffs   int    `json:"handoffs"`
	Rebalances int    `json:"rebalances"`
	NextID     uint64 `json:"next_id"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Suspended  int    `json:"suspended"`
	Terminal   int    `json:"terminal"`
	// Suspends and Resumes total the arbiter suspend-to-checkpoint cycles
	// across live shards.
	Suspends int64 `json:"suspends"`
	Resumes  int64 `json:"resumes"`
	// Adopted totals runs adopted across all shards (non-terminal).
	Adopted int `json:"adopted"`
	// DedupHits and Sheds total the admission retry-safety counters across
	// live shards: retried submissions resolved by idempotency key, and
	// deadline-based rejections.
	DedupHits int64 `json:"dedup_hits"`
	Sheds     int64 `json:"sheds"`
}

// Stats aggregates across live shards.
func (f *Federation) Stats() Stats {
	f.mu.Lock()
	st := Stats{
		Shards:     len(f.shards),
		Handoffs:   f.handoffs,
		Rebalances: f.rebalances,
		NextID:     f.nextID,
	}
	var liveShards []*shard
	for _, sh := range f.shards {
		if sh.alive {
			liveShards = append(liveShards, sh)
		}
	}
	f.mu.Unlock()
	st.Live = len(liveShards)
	for _, sh := range liveShards {
		s := sh.sup.Stats()
		st.Queued += s.Queued
		st.Running += s.Running
		st.Suspended += s.Suspended
		st.Terminal += s.Terminal
		st.Adopted += s.Adopted
		st.DedupHits += s.DedupHits
		st.Sheds += s.Sheds
		st.Suspends += s.Suspends
		st.Resumes += s.Resumes
	}
	st.DedupHits += f.fedDedup.Load()
	return st
}

// Accepting reports whether any live shard still admits runs (the /readyz
// signal; a mid-handoff federation stays ready on its surviving shards).
func (f *Federation) Accepting() bool {
	f.mu.Lock()
	shards := append([]*shard(nil), f.shards...)
	f.mu.Unlock()
	for _, sh := range shards {
		if sh.alive && sh.sup.Accepting() {
			return true
		}
	}
	return false
}

// Drain shuts every shard down gracefully (killed shards no-op), honoring
// ctx the way supervisor.Drain does.
func (f *Federation) Drain(ctx context.Context) error {
	f.mu.Lock()
	shards := append([]*shard(nil), f.shards...)
	f.mu.Unlock()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if err := sh.sup.Drain(ctx); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", sh.ordinal, err)
			}
		}(i, sh)
	}
	wg.Wait()
	// Close the shared checkpoint store only after every shard stopped
	// journaling references into it.
	if f.store != nil {
		if err := f.store.Close(); err != nil {
			errs = append(errs, fmt.Errorf("checkpoint store: %w", err))
		}
	}
	return errors.Join(errs...)
}

// Store exposes the shared checkpoint store (nil unless Config.StorePath
// was set) for scrubbing, compaction, and audits.
func (f *Federation) Store() *store.Store { return f.store }

// StoreGC compacts the shared checkpoint store when its garbage ratio
// exceeds threshold, keeping the union of every live shard's live-key set
// (a key any non-terminal run on any shard may resume from). Dead shards
// awaiting handoff block the compaction: their journals still reference
// checkpoints the survivors have not adopted yet, so dropping "garbage"
// now could strand an interrupted run on a cold restart. Returns
// (zero, false, nil) when the ratio is at or under threshold.
func (f *Federation) StoreGC(threshold float64) (store.CompactStats, bool, error) {
	if f.store == nil {
		return store.CompactStats{}, false, fmt.Errorf("federation: no shared checkpoint store configured")
	}
	f.mu.Lock()
	sups := make([]*supervisor.Supervisor, 0, len(f.shards))
	for _, sh := range f.shards {
		if !sh.alive {
			if sh.handoff != nil {
				f.mu.Unlock()
				return store.CompactStats{}, false,
					fmt.Errorf("federation: shard %d awaits journal handoff; its checkpoint references are not yet adopted", sh.ordinal)
			}
			continue
		}
		sups = append(sups, sh.sup)
	}
	f.mu.Unlock()
	live := map[store.Key]bool{}
	for _, sup := range sups {
		for k := range sup.LiveCheckpointKeys() {
			live[k] = true
		}
	}
	if supervisor.GarbageRatio(f.store, live) <= threshold {
		return store.CompactStats{}, false, nil
	}
	st, err := f.store.Compact(func(k store.Key) bool { return live[k] })
	return st, err == nil, err
}

// Metrics exposes the federation's Prometheus registry (per-shard series
// plus ring/handoff counters). Shard supervisors keep their own
// registries; the federation registry is the one deepum-serve scrapes.
func (f *Federation) Metrics() *metrics.Registry { return f.prom }

// note emits one shard-lifecycle event: Name is the action, Block the
// shard ordinal, Arg the run count, Arg2 the peer ordinal (-1 if none).
func (f *Federation) note(action string, ordinal int, runs, peer int64) {
	if f.cfg.Obs == nil {
		return
	}
	f.cfg.Obs.Instant(obs.KindShard, obs.TrackShard,
		time.Since(f.epoch).Nanoseconds(), action, int64(ordinal), runs, peer)
}
