package federation

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Consistent-hash ring over shard ordinals. Each live shard contributes
// `replicas` virtual points; a run ID is owned by the first point
// clockwise from its hash. The construction is the standard one: removing
// a shard moves only the keys that hashed to its points (onto their
// clockwise successors), so a shard death redistributes the dead shard's
// runs across the survivors without reshuffling anything else.

// defaultReplicas is the virtual-node count per shard. 64 points keep the
// expected per-shard load imbalance within a few percent for small fleets
// while the ring stays tiny (a few KiB).
const defaultReplicas = 64

type ringPoint struct {
	hash  uint64
	shard int
}

type ring struct {
	points []ringPoint
}

// buildRing places replicas virtual points per shard on the ring.
// Deterministic: the same shard set always yields the same ring, so two
// front-ends (or a restart) agree on placement without coordination.
func buildRing(shards []int, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	points := make([]ringPoint, 0, len(shards)*replicas)
	for _, s := range shards {
		for v := 0; v < replicas; v++ {
			points = append(points, ringPoint{
				hash:  hashString(fmt.Sprintf("shard-%d/vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		// A full 64-bit collision between vnode labels is vanishingly
		// unlikely; break the tie deterministically anyway.
		return points[i].shard < points[j].shard
	})
	return &ring{points: points}
}

// owner returns the shard owning the given run ID.
func (r *ring) owner(id uint64) int {
	h := hashID(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].shard
}

// shards returns the distinct shard ordinals on the ring, ascending.
func (r *ring) shards() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	sort.Ints(out)
	return out
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
// Both ring inputs need it. Raw FNV-1a barely avalanches its final bytes,
// so the vnode labels — which differ only in their trailing digits — hash
// ~2^40 apart and each shard's 64 points collapse into one or two
// contiguous ring blocks; sequential run IDs cluster the same way. The
// observable failure was gross ownership skew (one shard under 10% of the
// keys) and a dead shard's runs all adopted by a single successor instead
// of spreading across the survivors.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

func hashID(id uint64) uint64 {
	return mix64(id + 0x9E3779B97F4A7C15)
}
