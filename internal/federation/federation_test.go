package federation

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"deepum/internal/supervisor"
)

// quickRunner completes instantly with a checksum derived from the seed,
// so tests can verify routing and recovery without simulating anything.
func quickRunner() supervisor.Runner {
	return supervisor.RunnerFunc(func(ctx context.Context, spec supervisor.RunSpec, resume []byte, progress func([]byte)) (supervisor.Outcome, error) {
		return supervisor.Outcome{
			Status:         string(supervisor.StateCompleted),
			Iterations:     spec.Iterations,
			AccessChecksum: expectChecksum(spec.Seed, spec.Iterations),
		}, nil
	})
}

func newTestFederation(t *testing.T, shards int, runner supervisor.Runner) *Federation {
	t.Helper()
	f, err := New(Config{
		Shards: shards,
		Supervisor: supervisor.Config{
			Runner:        runner,
			Workers:       2,
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Drain(ctx)
	})
	return f
}

func TestRingDeterminismAndMinimalMovement(t *testing.T) {
	all := []int{0, 1, 2, 3}
	r1 := buildRing(all, 0)
	r2 := buildRing(all, 0)
	moved, total := 0, 4096
	shrunk := buildRing([]int{0, 1, 3}, 0) // shard 2 died
	counts := map[int]int{}
	for id := uint64(1); id <= uint64(total); id++ {
		a, b := r1.owner(id), r2.owner(id)
		if a != b {
			t.Fatalf("ring not deterministic: id %d owned by %d then %d", id, a, b)
		}
		counts[a]++
		c := shrunk.owner(id)
		if a != 2 && c != a {
			t.Fatalf("id %d moved %d->%d though shard %d survived", id, a, c, a)
		}
		if a == 2 {
			moved++
			if c == 2 {
				t.Fatalf("id %d still owned by dead shard 2", id)
			}
		}
	}
	// Sanity: the load is spread, not piled on one shard.
	for s, n := range counts {
		if n == 0 || n == total {
			t.Fatalf("degenerate distribution: shard %d owns %d of %d", s, n, total)
		}
	}
	if moved == 0 {
		t.Fatalf("no id mapped to shard 2 across %d ids", total)
	}
	if got := shrunk.shards(); len(got) != 3 {
		t.Fatalf("shrunk ring shards = %v", got)
	}
}

func TestFederationRoutingAndLifecycle(t *testing.T) {
	f := newTestFederation(t, 4, quickRunner())
	ids := make([]uint64, 0, 20)
	for i := 0; i < 20; i++ {
		id, err := f.Submit(supervisor.RunSpec{Model: "bert-base", Batch: 8, Seed: int64(i), Iterations: 4})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	owners := map[int]int{}
	for _, id := range ids {
		info, err := f.Wait(id)
		if err != nil {
			t.Fatalf("Wait(%d): %v", id, err)
		}
		if info.State != supervisor.StateCompleted {
			t.Fatalf("run %d finished %s (%s)", id, info.State, info.Reason)
		}
		if want := expectChecksum(info.Spec.Seed, info.Spec.Iterations); info.Outcome.AccessChecksum != want {
			t.Fatalf("run %d checksum %#x, want %#x", id, info.Outcome.AccessChecksum, want)
		}
		ord, ok := f.Owner(id)
		if !ok {
			t.Fatalf("run %d has no owner", id)
		}
		owners[ord]++
		if got, err := f.Get(id); err != nil || got.ID != id {
			t.Fatalf("Get(%d) = %+v, %v", id, got, err)
		}
	}
	if len(owners) < 2 {
		t.Fatalf("all 20 runs landed on %d shard(s): %v", len(owners), owners)
	}
	if _, err := f.Get(9999); !errors.As(err, new(*supervisor.NotFoundError)) {
		t.Fatalf("Get(unknown) = %v, want NotFoundError", err)
	}
	list := f.List()
	if len(list) != 20 {
		t.Fatalf("List returned %d runs, want 20", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("List not ascending at %d: %d then %d", i, list[i-1].ID, list[i].ID)
		}
	}
	st := f.Stats()
	if st.Shards != 4 || st.Live != 4 || st.Terminal != 20 || st.Handoffs != 0 {
		t.Fatalf("Stats = %+v", st)
	}
	for _, sh := range f.Shards() {
		if !sh.Alive || sh.HandoffPending {
			t.Fatalf("shard %d not alive/clean: %+v", sh.Ordinal, sh)
		}
	}
	if !f.Accepting() {
		t.Fatal("federation not accepting")
	}
}

func TestFederationRestartRecoversAllShards(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Shards: 3,
		Supervisor: supervisor.Config{
			Runner:        quickRunner(),
			Workers:       2,
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: dir,
	}
	f1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ids []uint64
	for i := 0; i < 12; i++ {
		id, err := f1.Submit(supervisor.RunSpec{Model: "m", Batch: 1, Seed: int64(i), Iterations: 3})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := f1.Wait(id); err != nil {
			t.Fatalf("Wait(%d): %v", id, err)
		}
	}
	maxID := ids[len(ids)-1]
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f1.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	f2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer func() { _ = f2.Drain(context.Background()) }()
	for _, id := range ids {
		info, err := f2.Get(id)
		if err != nil {
			t.Fatalf("restarted Get(%d): %v", id, err)
		}
		if info.State != supervisor.StateCompleted {
			t.Fatalf("restarted run %d state %s", id, info.State)
		}
	}
	nid, err := f2.Submit(supervisor.RunSpec{Model: "m", Batch: 1, Iterations: 1})
	if err != nil {
		t.Fatalf("restarted Submit: %v", err)
	}
	if nid <= maxID {
		t.Fatalf("restarted federation reused id space: got %d, journals held up to %d", nid, maxID)
	}
}

func TestHandoffPreconditions(t *testing.T) {
	f := newTestFederation(t, 2, quickRunner())
	if _, err := f.Handoff(0); err == nil {
		t.Fatal("Handoff on a live shard succeeded")
	}
	if _, err := f.Handoff(7); err == nil {
		t.Fatal("Handoff on a nonexistent shard succeeded")
	}
	if err := f.Kill(7); err == nil {
		t.Fatal("Kill on a nonexistent shard succeeded")
	}
	if err := f.Kill(0); err != nil {
		t.Fatalf("Kill(0): %v", err)
	}
	if err := f.Kill(0); err == nil {
		t.Fatal("double Kill succeeded")
	}
	if _, err := f.Handoff(0); err != nil {
		t.Fatalf("Handoff(0): %v", err)
	}
	if _, err := f.Handoff(0); err == nil {
		t.Fatal("double Handoff succeeded")
	}
	// Killing the last live shard leaves no successor; handoff must refuse.
	if err := f.Kill(1); err != nil {
		t.Fatalf("Kill(1): %v", err)
	}
	if _, err := f.Handoff(1); err == nil {
		t.Fatal("Handoff with no live successor succeeded")
	}
}

func TestHandoffWindowErrors(t *testing.T) {
	f := newTestFederation(t, 2, quickRunner())
	// Park one run per shard so both have state to look up.
	byShard := map[int]uint64{}
	for len(byShard) < 2 {
		id, err := f.Submit(supervisor.RunSpec{Model: "m", Batch: 1, Iterations: 1})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := f.Wait(id); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		ord, _ := f.Owner(id)
		byShard[ord] = id
	}
	if err := f.Kill(0); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	var he *HandoffError
	if _, err := f.Get(byShard[0]); !errors.As(err, &he) {
		t.Fatalf("Get on dead shard's run = %v, want HandoffError", err)
	}
	if he.Shard != 0 || !he.Retryable() || he.Since.IsZero() {
		t.Fatalf("HandoffError = %+v", he)
	}
	// Fresh IDs hashing to the dead shard must reject the same way; IDs on
	// the live shard keep being admitted.
	sawHandoff, sawAccepted := false, false
	for i := 0; i < 200 && !(sawHandoff && sawAccepted); i++ {
		_, err := f.Submit(supervisor.RunSpec{Model: "m", Batch: 1, Iterations: 1})
		switch {
		case err == nil:
			sawAccepted = true
		case errors.As(err, &he):
			sawHandoff = true
		default:
			t.Fatalf("Submit: %v", err)
		}
	}
	if !sawHandoff || !sawAccepted {
		t.Fatalf("admission during handoff window: handoff-rejects=%v accepted=%v", sawHandoff, sawAccepted)
	}
	if !f.Accepting() {
		t.Fatal("federation stopped accepting with a live shard remaining")
	}
	rep, err := f.Handoff(0)
	if err != nil {
		t.Fatalf("Handoff: %v", err)
	}
	if rep.Runs == 0 || rep.Finished == 0 {
		t.Fatalf("HandoffReport = %+v, want adopted history", rep)
	}
	info, err := f.Get(byShard[0])
	if err != nil {
		t.Fatalf("Get after handoff: %v", err)
	}
	if info.State != supervisor.StateCompleted {
		t.Fatalf("adopted run state %s", info.State)
	}
	if ord, _ := f.Owner(byShard[0]); ord != 1 {
		t.Fatalf("adopted run owned by shard %d, want 1", ord)
	}
}

// TestShardErrorWrapsTypedRejections checks errors.Is/As work through the
// ShardError wrapper, so HTTP mapping keeps seeing the shard-local types.
func TestShardErrorWrapsTypedRejections(t *testing.T) {
	f := newTestFederation(t, 2, quickRunner())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := f.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	_, err := f.Submit(supervisor.RunSpec{Model: "m", Batch: 1})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("Submit after drain = %v, want ShardError", err)
	}
	if !errors.Is(err, supervisor.ErrShuttingDown) {
		t.Fatalf("ShardError does not unwrap to ErrShuttingDown: %v", err)
	}
}

func TestFederationMetricsPreRegistered(t *testing.T) {
	f := newTestFederation(t, 4, quickRunner())
	var buf bytes.Buffer
	if err := f.Metrics().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	// Every per-shard series must exist before any event touched it.
	for i := 0; i < 4; i++ {
		for _, name := range []string{mShardUp, mShardAdopted, mShardSubmissions, mShardQueued, mShardRunning} {
			want := fmt.Sprintf(`%s{shard="%d"}`, name, i)
			if !bytes.Contains(buf.Bytes(), []byte(want)) {
				t.Fatalf("first scrape missing %s\n%s", want, text)
			}
		}
	}
	for _, want := range []string{
		mHandoffs + " 0",
		mRebalances + " 0",
		mHandoffRejections + " 0",
		mShardsLive + " 4",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("first scrape missing %q\n%s", want, text)
		}
	}

	if _, err := f.Failover(2); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	buf.Reset()
	if err := f.Metrics().WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	for _, want := range []string{
		`deepum_shard_up{shard="2"} 0`,
		mHandoffs + " 1",
		mRebalances + " 1",
		mShardsLive + " 3",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("post-failover scrape missing %q\n%s", want, buf.String())
		}
	}
}

func TestHandoffRenamesJournal(t *testing.T) {
	f := newTestFederation(t, 2, quickRunner())
	id, err := f.Submit(supervisor.RunSpec{Model: "m", Batch: 1, Iterations: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := f.Wait(id); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	victim, _ := f.Owner(id)
	dead := f.Shards()[victim].Journal
	if _, err := f.Failover(victim); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	if _, err := filepath.Glob(dead + ".adopted"); err != nil {
		t.Fatalf("glob: %v", err)
	}
	matches, _ := filepath.Glob(dead + "*")
	if len(matches) != 1 || matches[0] != dead+".adopted" {
		t.Fatalf("dead journal not retired: %v", matches)
	}
}
