package federation

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"deepum/internal/supervisor"
)

// The failover-equivalence harness needs a runner whose entire state fits
// in a checkpoint, so that "resumed from the journal on another shard"
// and "ran uninterrupted on one node" are bit-identical by construction
// if — and only if — the handoff restored the right bytes. The run folds
// (seed, iter) into a rolling FNV-style hash; the checkpoint is the
// (iter, hash) pair; the final hash is the run's AccessChecksum.

type ckptState struct {
	Iter int    `json:"iter"`
	Hash uint64 `json:"hash"`
}

func seedBase(seed int64) uint64 {
	return 0xcbf29ce484222325 ^ uint64(seed)*0x100000001b3
}

func stepHash(h uint64, seed int64, iter int) uint64 {
	h ^= uint64(iter)*0x9E3779B97F4A7C15 + uint64(seed)
	return h * 0x100000001b3
}

// expectChecksum is the pure-function oracle: what any uninterrupted
// execution of (seed, iterations) must produce.
func expectChecksum(seed int64, iterations int) uint64 {
	h := seedBase(seed)
	for i := 0; i < iterations; i++ {
		h = stepHash(h, seed, i)
	}
	return h
}

// hangingRunner executes the fold. Runs with Chaos="hang" block at
// iteration Warmup until gate closes (or their context is cancelled — the
// shard-kill path), having already journaled checkpoints every
// CheckpointEvery iterations; so at kill time their latest durable state
// is exactly the (iter, hash) the successor must resume from.
func hangingRunner(gate <-chan struct{}) supervisor.Runner {
	return supervisor.RunnerFunc(func(ctx context.Context, spec supervisor.RunSpec, resume []byte, progress func([]byte)) (supervisor.Outcome, error) {
		st := ckptState{Hash: seedBase(spec.Seed)}
		if len(resume) > 0 {
			if err := json.Unmarshal(resume, &st); err != nil {
				return supervisor.Outcome{}, err
			}
		}
		for st.Iter < spec.Iterations {
			if spec.Chaos == "hang" && st.Iter == spec.Warmup {
				select {
				case <-gate:
				case <-ctx.Done():
					return supervisor.Outcome{
						Status:         string(supervisor.StateCancelled),
						Iterations:     st.Iter,
						AccessChecksum: st.Hash,
					}, nil
				}
			}
			st.Hash = stepHash(st.Hash, spec.Seed, st.Iter)
			st.Iter++
			if spec.CheckpointEvery > 0 && st.Iter%spec.CheckpointEvery == 0 && st.Iter < spec.Iterations {
				b, err := json.Marshal(st)
				if err != nil {
					return supervisor.Outcome{}, err
				}
				progress(b)
			}
		}
		return supervisor.Outcome{
			Status:         string(supervisor.StateCompleted),
			Iterations:     st.Iter,
			AccessChecksum: st.Hash,
		}, nil
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestShardFailoverEquivalence is the headline drill, generalizing the
// single-node TestKillRestartEquivalence to the federation: kill -9 one
// shard mid-storm and prove that every run it owned is adopted by a peer
// — finished runs stay finished, queued runs restart cold, interrupted
// runs resume from their latest journaled checkpoint — with no run ID
// lost or duplicated, and every adopted run's AccessChecksum bit-identical
// to its uninterrupted single-node execution.
func TestShardFailoverEquivalence(t *testing.T) {
	gate := make(chan struct{})
	f, err := New(Config{
		Shards: 4,
		Supervisor: supervisor.Config{
			Runner:        hangingRunner(gate),
			Workers:       1, // one hung run wedges the shard: queued stays queued
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = f.Drain(ctx)
	}()

	const iters = 8
	var seed int64
	specs := map[uint64]supervisor.RunSpec{} // every submitted run, by global ID
	submit := func(chaos string) uint64 {
		t.Helper()
		seed++
		spec := supervisor.RunSpec{
			Model:           "bert-base",
			Batch:           8,
			Seed:            seed,
			Iterations:      iters,
			CheckpointEvery: 2,
		}
		if chaos == "hang" {
			spec.Chaos = "hang"
			spec.Warmup = 4 // hang after the iteration-4 checkpoint
		}
		id, err := f.Submit(spec)
		if err != nil {
			t.Fatalf("Submit(seed %d): %v", seed, err)
		}
		specs[id] = spec
		return id
	}

	// Wave 1: runs that finish before the kill — the victim's journal must
	// carry them over as history, not re-execute them.
	var wave1 []uint64
	for i := 0; i < 16; i++ {
		wave1 = append(wave1, submit(""))
	}
	for _, id := range wave1 {
		if info, err := f.Wait(id); err != nil || info.State != supervisor.StateCompleted {
			t.Fatalf("wave1 run %d: %+v, %v", id, info, err)
		}
	}
	// Wave 2: hang runs. Each shard's single worker picks one, checkpoints
	// through iteration 4, and wedges at the gate. Wave 3 queues behind.
	for i := 0; i < 24; i++ {
		submit("hang")
	}
	for i := 0; i < 12; i++ {
		submit("")
	}

	// Pick a victim shard that exercises all three adoption classes:
	// finished history, a hung run with journaled checkpoints, queued runs.
	victim := -1
	waitFor(t, "a fully-loaded victim shard", func() bool {
		for _, sh := range f.Shards() {
			if sh.Running != 1 || sh.Queued < 1 || sh.Terminal < 1 {
				continue
			}
			for _, info := range f.Supervisor(sh.Ordinal).List() {
				if info.State == supervisor.StateRunning && info.Checkpoints >= 2 {
					victim = sh.Ordinal
					return true
				}
			}
		}
		return false
	})

	// Snapshot the victim pre-kill. Its single worker is wedged on the
	// gate, so this set cannot shift under us before the kill.
	type preRun struct {
		state       supervisor.RunState
		attempts    int
		checkpoints int
		checksum    uint64
	}
	pre := map[uint64]preRun{}
	for _, info := range f.Supervisor(victim).List() {
		p := preRun{state: info.State, attempts: info.Attempts, checkpoints: info.Checkpoints}
		if info.Outcome != nil {
			p.checksum = info.Outcome.AccessChecksum
		}
		pre[info.ID] = p
	}
	var preFinished, preRunning, preQueued int
	for _, p := range pre {
		switch {
		case p.state.Terminal():
			preFinished++
		case p.state == supervisor.StateRunning:
			preRunning++
		default:
			preQueued++
		}
	}
	if preFinished == 0 || preRunning == 0 || preQueued == 0 {
		t.Fatalf("victim %d snapshot lacks a class: finished=%d running=%d queued=%d",
			victim, preFinished, preRunning, preQueued)
	}

	if err := f.Kill(victim); err != nil {
		t.Fatalf("Kill(%d): %v", victim, err)
	}
	rep, err := f.Handoff(victim)
	if err != nil {
		t.Fatalf("Handoff(%d): %v", victim, err)
	}
	if rep.Runs != len(pre) {
		t.Fatalf("handoff saw %d runs, victim held %d", rep.Runs, len(pre))
	}
	if rep.Finished != preFinished {
		t.Fatalf("handoff carried %d finished runs, want %d", rep.Finished, preFinished)
	}
	if rep.Queued != preRunning+preQueued {
		t.Fatalf("handoff re-admitted %d runs, want %d", rep.Queued, preRunning+preQueued)
	}
	if rep.Resumed != preRunning {
		t.Fatalf("handoff resumed %d runs from checkpoints, want %d (the hung ones)", rep.Resumed, preRunning)
	}
	if rep.Skipped != 0 {
		t.Fatalf("first handoff skipped %d runs", rep.Skipped)
	}

	// Release the storm and wait out every run in the system.
	close(gate)
	for id := range specs {
		info, err := f.Wait(id)
		if err != nil {
			t.Fatalf("Wait(%d): %v", id, err)
		}
		if info.State != supervisor.StateCompleted {
			t.Fatalf("run %d ended %s (%s)", id, info.State, info.Reason)
		}
		// The bit-identity witness: adopted, resumed, or untouched, the
		// checksum must match the uninterrupted execution of the same spec.
		if want := expectChecksum(specs[id].Seed, iters); info.Outcome.AccessChecksum != want {
			t.Fatalf("run %d checksum %#x, want %#x (seed %d)", id, info.Outcome.AccessChecksum, want, specs[id].Seed)
		}
	}

	// Per-class adoption semantics on the victim's runs.
	for id, p := range pre {
		info, err := f.Get(id)
		if err != nil {
			t.Fatalf("adopted run %d lost: %v", id, err)
		}
		ord, ok := f.Owner(id)
		if !ok || ord == victim {
			t.Fatalf("run %d owner = %d, ok=%v after handoff from shard %d", id, ord, ok, victim)
		}
		switch {
		case p.state.Terminal():
			// History: same outcome, not re-executed.
			if info.Attempts != p.attempts || info.Outcome.AccessChecksum != p.checksum {
				t.Fatalf("finished run %d re-executed: attempts %d->%d, checksum %#x->%#x",
					id, p.attempts, info.Attempts, p.checksum, info.Outcome.AccessChecksum)
			}
		case p.state == supervisor.StateRunning:
			// Interrupted: second attempt, resumed from the journaled
			// checkpoint rather than started cold.
			if info.Attempts != p.attempts+1 {
				t.Fatalf("interrupted run %d attempts %d, want %d", id, info.Attempts, p.attempts+1)
			}
			if !info.Resumed {
				t.Fatalf("interrupted run %d restarted cold despite %d checkpoints", id, p.checkpoints)
			}
		default:
			// Queued at kill: starts cold on the successor, first attempt.
			if info.Attempts != 1 || info.Resumed {
				t.Fatalf("queued run %d adopted wrong: attempts=%d resumed=%v", id, info.Attempts, info.Resumed)
			}
		}
	}

	// No run lost, none duplicated: every submitted ID is owned by exactly
	// one live shard, and the live shards' rosters agree with the owner map.
	seen := map[uint64]int{}
	for _, sh := range f.Shards() {
		if sh.Ordinal == victim {
			continue
		}
		for _, info := range f.Supervisor(sh.Ordinal).List() {
			if ord, _ := f.Owner(info.ID); ord == sh.Ordinal {
				seen[info.ID]++
			}
		}
	}
	for id := range specs {
		if n := seen[id]; n != 1 {
			t.Fatalf("run %d appears on %d live shards, want exactly 1", id, n)
		}
	}
	if len(seen) != len(specs) {
		t.Fatalf("live shards hold %d runs, submitted %d", len(seen), len(specs))
	}

	st := f.Stats()
	if st.Live != 3 || st.Handoffs != 1 || st.Rebalances != 1 {
		t.Fatalf("Stats after failover = %+v", st)
	}
	if st.Terminal != len(specs) {
		t.Fatalf("terminal runs %d, want %d", st.Terminal, len(specs))
	}
}

// TestFailoverWaitRendezvous: a Wait blocked on a run while its shard is
// killed must survive the handoff and return the successor's truth, not
// the dead shard's in-memory snapshot.
func TestFailoverWaitRendezvous(t *testing.T) {
	gate := make(chan struct{})
	f, err := New(Config{
		Shards: 2,
		Supervisor: supervisor.Config{
			Runner:        hangingRunner(gate),
			Workers:       1,
			QueueDepth:    64,
			JournalNoSync: true,
		},
		JournalDir: t.TempDir(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		// gate is closed in the test body; a failing early exit leans on
		// Drain's escalation to cancel the still-hung runs.
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = f.Drain(ctx)
	}()

	// Park one hung run per shard so either can be the victim.
	var seed int64
	hung := map[int]uint64{}
	for len(hung) < 2 {
		seed++
		id, err := f.Submit(supervisor.RunSpec{
			Model: "m", Batch: 1, Seed: seed, Iterations: 8,
			CheckpointEvery: 2, Chaos: "hang", Warmup: 4,
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ord, _ := f.Owner(id)
		if _, dup := hung[ord]; !dup {
			hung[ord] = id
		}
	}
	victim := 0
	target := hung[victim]
	waitFor(t, "victim run to checkpoint", func() bool {
		info, err := f.Supervisor(victim).Get(target)
		return err == nil && info.State == supervisor.StateRunning && info.Checkpoints >= 2
	})

	got := make(chan supervisor.RunInfo, 1)
	go func() {
		info, err := f.Wait(target)
		if err != nil {
			t.Errorf("Wait(%d): %v", target, err)
		}
		got <- info
	}()
	if _, err := f.Failover(victim); err != nil {
		t.Fatalf("Failover: %v", err)
	}
	close(gate)
	select {
	case info := <-got:
		if info.State != supervisor.StateCompleted {
			t.Fatalf("waited run ended %s (%s)", info.State, info.Reason)
		}
		if want := expectChecksum(info.Spec.Seed, 8); info.Outcome.AccessChecksum != want {
			t.Fatalf("waited run checksum %#x, want %#x", info.Outcome.AccessChecksum, want)
		}
		if !info.Resumed || info.Attempts != 2 {
			t.Fatalf("waited run not resumed on successor: %+v", info)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait never returned after failover")
	}
}
