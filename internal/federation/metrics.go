package federation

import "strconv"

// Federation metric names. Every per-shard series is pre-registered at
// construction so the first scrape already shows the whole fleet at zero —
// a dashboard can alert on deepum_shard_up dropping without waiting for an
// event to create the series.
const (
	mShardUp           = "deepum_shard_up"
	mShardAdopted      = "deepum_shard_adopted_runs_total"
	mShardSubmissions  = "deepum_shard_submissions_total"
	mShardQueued       = "deepum_shard_queued_runs"
	mShardRunning      = "deepum_shard_running_runs"
	mHandoffs          = "deepum_federation_handoffs_total"
	mRebalances        = "deepum_federation_ring_rebalances_total"
	mHandoffRejections = "deepum_federation_handoff_rejections_total"
	mShardsLive        = "deepum_federation_shards_live"
	// Admission retry-safety series mirrored at the front-end (the shard
	// supervisors count their own; the federation registry is the one
	// deepum-serve scrapes in sharded mode).
	mDedupHits      = "deepum_admission_dedup_hits_total"
	mShedRejections = "deepum_admission_shed_total"
)

func shardLabel(ordinal int) map[string]string {
	return map[string]string{"shard": strconv.Itoa(ordinal)}
}

func (f *Federation) initMetrics() {
	for _, sh := range f.shards {
		sh := sh
		lbl := shardLabel(sh.ordinal)
		f.prom.GaugeFunc(mShardUp, "Shard liveness (1 = alive, 0 = killed).",
			lbl, func() float64 {
				f.mu.Lock()
				defer f.mu.Unlock()
				if sh.alive {
					return 1
				}
				return 0
			})
		f.prom.Counter(mShardAdopted,
			"Runs adopted by this shard from dead peers' journals (terminal history included).", lbl)
		f.prom.Counter(mShardSubmissions,
			"Runs admitted through the federation front-end, by owning shard.", lbl)
		f.prom.GaugeFunc(mShardQueued, "Admitted runs waiting for a worker, by shard.",
			lbl, func() float64 { return float64(sh.sup.Stats().Queued) })
		f.prom.GaugeFunc(mShardRunning, "Runs executing right now, by shard.",
			lbl, func() float64 { return float64(sh.sup.Stats().Running) })
	}
	f.prom.Counter(mDedupHits,
		"Retried submissions resolved to an existing run by idempotency key.", nil)
	f.prom.Counter(mShedRejections,
		"Submissions rejected because the propagated deadline cannot be met at current drain rate.", nil)
	f.prom.Counter(mHandoffs, "Completed journal handoffs from dead shards to live successors.", nil)
	f.prom.Counter(mRebalances, "Consistent-hash ring rebuilds after a shard handoff.", nil)
	f.prom.Counter(mHandoffRejections, "Requests rejected because the owning shard is dead awaiting handoff.", nil)
	f.prom.GaugeFunc(mShardsLive, "Live shards on the ring.", nil, func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		n := 0
		for _, sh := range f.shards {
			if sh.alive {
				n++
			}
		}
		return float64(n)
	})
}
