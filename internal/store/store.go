// Package store is a durable, single-file, append-only, content-addressed
// blob store — the checkpoint database behind the supervisor and the
// federation. A blob is addressed by its 64-bit content hash (Key), so
// identical warm-state checkpoints across runs are stored once (dedup) and
// a journal can record a 16-byte reference instead of re-inlining the blob
// on every checkpoint.
//
// Durability is adversarial by design: every frame is CRC-framed AND
// carries its content hash (two independent witnesses), the file is only
// touched through the pluggable FS seam so internal/chaos can inject torn
// writes, bit flips, failed fsyncs, and mid-append ENOSPC, a scrubber
// re-verifies frames and repairs damage from a surviving replica (or
// reports the key lost so the owning run degrades to a cold restart), and
// compaction commits through an atomic rename so a crash at any
// fsync/rename boundary leaves either the old file or the new one — never
// a hybrid. Open heals torn tails by truncation, exactly like the
// supervisor WAL it borrows its framing idiom from.
package store

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Options parameterize Open. The zero value is production-ready: OS
// filesystem, one replica per blob, fsync on every Put.
type Options struct {
	// FS is the filesystem seam; nil selects the OS.
	FS FS
	// Replicas is how many copies of each frame Put appends (and scrub
	// maintains). 1 stores each blob once; 2 lets the scrubber repair a
	// corrupted frame from its surviving twin instead of declaring the
	// key lost. Defaults to 1.
	Replicas int
	// NoSync skips the per-Put fsync. Only harnesses that "kill"
	// processes in-memory (where the page cache survives) should set it;
	// real durability needs the fsync before Put returns.
	NoSync bool
	// ScrubEvery, when positive, starts a background scrubber that
	// re-verifies every frame at this interval.
	ScrubEvery time.Duration
	// OnScrub receives every background scrub's report (manual Scrub
	// calls return theirs directly). Called from the scrubber goroutine.
	OnScrub func(ScrubReport, error)
}

// Store is the open store. All methods are safe for concurrent use.
type Store struct {
	path string
	fs   FS
	opts Options

	mu    sync.RWMutex
	f     File
	size  int64
	index map[Key][]frameRef
	// keys in first-Put order, for deterministic iteration/compaction.
	order  []Key
	closed bool

	// counters (under mu)
	puts       int64
	dedupHits  int64
	getCorrupt int64 // corrupt replicas skipped on the read path

	scrubStop chan struct{}
	scrubDone chan struct{}
}

// OpenStats describes what Open found on disk.
type OpenStats struct {
	// Frames and Keys count intact frames and distinct keys indexed.
	Frames int
	Keys   int
	// CorruptRegions are mid-file byte ranges the scan skipped (left in
	// place as dead bytes until compaction).
	CorruptRegions []CorruptRegion
	// TornBytes is how many trailing bytes were truncated away (a torn
	// append from a crash), 0 for a clean file.
	TornBytes int64
}

// Open opens (or creates) the store at path, rebuilds the in-memory index
// by scanning every frame (verifying CRC and content hash), truncates any
// torn tail, and removes leftovers of a crashed compaction. The returned
// stats describe what the scan found; mid-file damage does not fail Open —
// it is reported, skipped, and left for Scrub/Compact to deal with.
func Open(path string, opts Options) (*Store, OpenStats, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	var stats OpenStats

	// A crash between writing <path>.compacting and the commit rename
	// leaves the temp file behind; the old store is still the truth and
	// the leftover is garbage. Remove is idempotent, so this is safe
	// whether or not a crashed compaction happened.
	if err := opts.FS.Remove(path + compactSuffix); err != nil {
		return nil, stats, fmt.Errorf("store: removing stale compaction file: %w", err)
	}

	f, err := opts.FS.OpenFile(path)
	if err != nil {
		return nil, stats, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{path: path, fs: opts.FS, opts: opts, f: f, index: map[Key][]frameRef{}}

	data, err := readAll(f)
	if err != nil {
		f.Close()
		return nil, stats, fmt.Errorf("store: reading %s: %w", path, err)
	}
	if len(data) == 0 {
		hdr := appendHeader(nil)
		if _, err := f.Write(hdr); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, stats, fmt.Errorf("store: initializing %s: %w", path, err)
		}
		s.size = int64(len(hdr))
	} else {
		if err := checkHeader(data); err != nil {
			f.Close()
			return nil, stats, err
		}
		res := scanFrames(data)
		stats.CorruptRegions = res.corrupt
		end := int64(len(data))
		if res.torn >= 0 {
			stats.TornBytes = int64(len(data)) - res.torn
			if err := f.Truncate(res.torn); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("store: truncating torn tail of %s at %d: %w", path, res.torn, err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, stats, fmt.Errorf("store: syncing truncated %s: %w", path, err)
			}
			end = res.torn
		}
		s.size = end
		for _, fr := range res.frames {
			if len(s.index[fr.key]) == 0 {
				s.order = append(s.order, fr.key)
			}
			s.index[fr.key] = append(s.index[fr.key], fr)
		}
		stats.Frames = len(res.frames)
		stats.Keys = len(s.index)
	}

	if opts.ScrubEvery > 0 {
		s.scrubStop = make(chan struct{})
		s.scrubDone = make(chan struct{})
		go s.scrubLoop(opts.ScrubEvery)
	}
	return s, stats, nil
}

// NotFoundError reports a key the store has never held (or scrubbed away
// as unrecoverable).
type NotFoundError struct{ Key Key }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("store: no blob with key %s", e.Key)
}

// CorruptError reports a key whose every replica failed verification —
// the blob existed but cannot be recovered. Callers holding a reference
// should degrade (cold restart), never invent data.
type CorruptError struct{ Key Key }

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: every replica of key %s is corrupt", e.Key)
}

// CollisionError reports a Put whose blob hashes to a key already held by
// DIFFERENT content — a 64-bit hash collision. The store refuses the Put
// (content addressing cannot hold two blobs at one address); the caller
// falls back to storing the blob elsewhere (the supervisor inlines it in
// the journal).
type CollisionError struct{ Key Key }

func (e *CollisionError) Error() string {
	return fmt.Sprintf("store: content-hash collision on key %s", e.Key)
}

// ErrClosed rejects operations on a closed store.
var errClosed = fmt.Errorf("store: closed")

// Put stores blob and returns its content key. If the key is already
// present Put verifies the stored content actually matches (guarding
// against hash collisions) and returns without writing — dedup. The blob
// is durable (fsync'd, unless Options.NoSync) when Put returns nil.
// A failed append rolls the file back to its previous size so a torn
// frame never lingers past the call.
func (s *Store) Put(blob []byte) (Key, error) {
	if int64(len(blob)) > MaxBlobBytes {
		return 0, fmt.Errorf("store: blob %d bytes exceeds limit %d", len(blob), MaxBlobBytes)
	}
	key := HashBytes(blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	if refs := s.index[key]; len(refs) > 0 {
		// Dedup hit — but verify against a stored replica first: a 64-bit
		// collision silently aliasing two checkpoints would corrupt a
		// resume, which is worse than the read it costs here.
		stored, err := s.readGoodLocked(key, refs)
		if err != nil {
			// Every replica rotted since open; treat as absent and
			// re-append below (which also restores redundancy).
		} else if !bytes.Equal(stored, blob) {
			return 0, &CollisionError{Key: key}
		} else {
			s.dedupHits++
			return key, nil
		}
	}
	if err := s.appendLocked(key, blob, s.opts.Replicas); err != nil {
		return 0, err
	}
	s.puts++
	return key, nil
}

// appendLocked writes n replica frames for (key, blob) at the tail,
// fsyncs, and indexes them. On failure it truncates back to the pre-append
// size so the file never keeps a torn frame. Caller holds mu.
func (s *Store) appendLocked(key Key, blob []byte, n int) error {
	prev := s.size
	buf := make([]byte, 0, n*(frameOverhead+len(blob)))
	refs := make([]frameRef, 0, n)
	for i := 0; i < n; i++ {
		off := prev + int64(len(buf))
		buf = appendFrame(buf, key, blob)
		refs = append(refs, frameRef{off: off, n: prev + int64(len(buf)) - off, key: key})
	}
	_, werr := s.f.Write(buf)
	if werr == nil && !s.opts.NoSync {
		werr = s.f.Sync()
	}
	if werr != nil {
		// Roll back: a partial frame at the tail would cost the next Open
		// a torn-tail truncation; do it now while we know the clean size.
		if terr := s.f.Truncate(prev); terr == nil {
			_ = s.f.Sync()
		}
		return fmt.Errorf("store: appending key %s: %w", key, werr)
	}
	s.size = prev + int64(len(buf))
	if len(s.index[key]) == 0 {
		s.order = append(s.order, key)
	}
	s.index[key] = append(s.index[key], refs...)
	return nil
}

// readGoodLocked returns the first replica of key that verifies (CRC and
// content hash), counting corrupt replicas it had to skip. Caller holds
// mu (read or write).
func (s *Store) readGoodLocked(key Key, refs []frameRef) ([]byte, error) {
	var corrupt int
	for _, fr := range refs {
		frame := make([]byte, fr.n)
		if _, err := s.f.ReadAt(frame, fr.off); err != nil {
			corrupt++
			continue
		}
		// decodeFrame wants the frame at offset 0 of its slice; build a
		// fake image view so lengths line up.
		k, blob, _, ok := decodeFrame(frame, 0)
		if !ok || k != key {
			corrupt++
			continue
		}
		out := append([]byte(nil), blob...)
		return out, nil
	}
	if corrupt > 0 {
		return nil, &CorruptError{Key: key}
	}
	return nil, &NotFoundError{Key: key}
}

// Get returns the blob for key, verifying CRC and content hash on the
// way out. A corrupt replica is skipped in favor of a surviving one; if
// every replica is damaged Get returns *CorruptError, and an unknown key
// returns *NotFoundError.
func (s *Store) Get(key Key) ([]byte, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, errClosed
	}
	refs := s.index[key]
	if len(refs) == 0 {
		s.mu.RUnlock()
		return nil, &NotFoundError{Key: key}
	}
	blob, err := s.readGoodLocked(key, refs)
	s.mu.RUnlock()
	if _, bad := err.(*CorruptError); bad {
		s.mu.Lock()
		s.getCorrupt++
		s.mu.Unlock()
	}
	return blob, err
}

// Has reports whether the store indexes key (without verifying content).
func (s *Store) Has(key Key) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index[key]) > 0
}

// Keys returns every indexed key in first-Put order.
func (s *Store) Keys() []Key {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Key(nil), s.order...)
}

// Len reports the number of distinct keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Stats is a point-in-time aggregate of the store.
type Stats struct {
	// Keys and Frames count distinct blobs and on-disk frames (replicas
	// included).
	Keys   int   `json:"keys"`
	Frames int   `json:"frames"`
	Bytes  int64 `json:"bytes"`
	// Puts counts blobs actually appended; DedupHits counts Puts answered
	// from the index without writing.
	Puts      int64 `json:"puts"`
	DedupHits int64 `json:"dedup_hits"`
	// ReadCorrupt counts Gets that found at least one corrupt replica.
	ReadCorrupt int64 `json:"read_corrupt,omitempty"`
	// Replicas echoes the configured replication factor.
	Replicas int `json:"replicas"`
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{
		Keys:        len(s.index),
		Bytes:       s.size,
		Puts:        s.puts,
		DedupHits:   s.dedupHits,
		ReadCorrupt: s.getCorrupt,
		Replicas:    s.opts.Replicas,
	}
	for _, refs := range s.index {
		st.Frames += len(refs)
	}
	return st
}

// Sync flushes the file (a NoSync store can still checkpoint durability
// explicitly).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.f.Sync()
}

// Close stops the background scrubber (if any) and closes the file.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop, done := s.scrubStop, s.scrubDone
	f := s.f
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	return f.Close()
}

// sortedKeysLocked returns the index's keys ascending (deterministic
// compaction layout). Caller holds mu.
func (s *Store) sortedKeysLocked() []Key {
	keys := make([]Key, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
