package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame codec and file scanner. One store file is:
//
//	header  [8]byte  "DEEPUMCS"
//	version uint32   (currently 1)
//	frame*           appended content frames
//
// Each frame (little-endian):
//
//	length  uint32   bytes of payload (flags + key + blob)
//	payload flags(1) key(8) blob(length-9)
//	crc32   uint32   IEEE, over the length field and payload
//
// The key is the blob's content hash (FNV-1a finalized with splitmix64),
// stored redundantly so a scan can verify the frame twice over: the CRC
// catches transport damage, the key-vs-rehash comparison catches a frame
// whose CRC was recomputed over corrupted content (or a hostile file).
//
// Unlike the supervisor WAL — which stops replay at the first unreadable
// frame, because record ORDER is its semantics — the store's frames are
// independent facts, so the scanner resynchronizes past damage: a corrupt
// frame is skipped and the scan hunts forward for the next offset that
// decodes as a fully valid frame (plausible length, CRC match, key match).
// Only when no valid frame exists anywhere after the damage does the scan
// report a torn tail, which Open truncates away.

// fileMagic identifies a content store ("CS" vs the WAL's "WJ").
var fileMagic = [8]byte{'D', 'E', 'E', 'P', 'U', 'M', 'C', 'S'}

// Version is the current store encoding version. A reader rejects any
// other version rather than guessing at the frame layout.
const Version uint32 = 1

const (
	headerLen = 8 + 4
	// minPayload is flags + key: the smallest legal frame payload (an
	// empty blob is legal — the hash of zero bytes is still a key).
	minPayload = 1 + 8
	// frameOverhead is the fixed cost of one frame on disk.
	frameOverhead = 4 + minPayload + 4
)

// MaxBlobBytes bounds one blob so a corrupt length field can never drive
// a huge allocation during a scan (checkpoint payloads are a few MiB).
const MaxBlobBytes = 64 << 20

// Key is a blob's 64-bit content hash — the store's address space.
type Key uint64

func (k Key) String() string { return fmt.Sprintf("%016x", uint64(k)) }

// HashBytes computes a blob's key: FNV-1a over the bytes, then the
// splitmix64 finalizer. Raw FNV's weak tail avalanche makes near-identical
// blobs (checkpoints differ mostly in trailing counters) hash near each
// other; the finalizer restores full avalanche, the same fix the
// federation ring needed for its vnode labels.
func HashBytes(b []byte) Key {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return Key(mix64(h))
}

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// appendHeader writes the file header into buf.
func appendHeader(buf []byte) []byte {
	buf = append(buf, fileMagic[:]...)
	return binary.LittleEndian.AppendUint32(buf, Version)
}

// appendFrame encodes one frame into buf.
func appendFrame(buf []byte, key Key, blob []byte) []byte {
	start := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(minPayload+len(blob)))
	buf = append(buf, 0) // flags: reserved, must be zero in v1
	buf = binary.LittleEndian.AppendUint64(buf, uint64(key))
	buf = append(buf, blob...)
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// frameRef locates one intact frame inside the file.
type frameRef struct {
	off int64 // offset of the length field
	n   int64 // total frame bytes (length field through CRC)
	key Key
}

// decodeFrame validates the frame at data[off:]. It returns the frame's
// key, the blob (aliasing data — callers copy if they retain), and the
// total frame size. ok is false for any damage: implausible length, a
// frame extending past the buffer, CRC mismatch, non-zero flags, or a key
// that does not match the blob's content hash.
func decodeFrame(data []byte, off int64) (key Key, blob []byte, n int64, ok bool) {
	rest := data[off:]
	if len(rest) < frameOverhead {
		return 0, nil, 0, false
	}
	length := int64(binary.LittleEndian.Uint32(rest[:4]))
	if length < minPayload || length > minPayload+MaxBlobBytes {
		return 0, nil, 0, false
	}
	n = 4 + length + 4
	if int64(len(rest)) < n {
		return 0, nil, 0, false
	}
	if crc32.ChecksumIEEE(rest[:4+length]) != binary.LittleEndian.Uint32(rest[4+length:n]) {
		return 0, nil, 0, false
	}
	if rest[4] != 0 { // flags
		return 0, nil, 0, false
	}
	key = Key(binary.LittleEndian.Uint64(rest[5:13]))
	blob = rest[13 : 4+length]
	if HashBytes(blob) != key {
		return 0, nil, 0, false
	}
	return key, blob, n, true
}

// CorruptRegion is a byte range the scanner had to skip.
type CorruptRegion struct {
	Off int64 `json:"off"`
	Len int64 `json:"len"`
}

// scanResult is one pass over a store image.
type scanResult struct {
	frames  []frameRef
	corrupt []CorruptRegion
	// torn is the offset where the scan gave up (no valid frame anywhere
	// after it), or -1 when the file parsed to EOF (possibly skipping
	// mid-file corrupt regions).
	torn int64
}

// scanFrames walks data (a full store image including header, already
// header-validated) from headerLen, resynchronizing past damage.
func scanFrames(data []byte) scanResult {
	res := scanResult{torn: -1}
	off := int64(headerLen)
	for off < int64(len(data)) {
		key, _, n, ok := decodeFrame(data, off)
		if ok {
			res.frames = append(res.frames, frameRef{off: off, n: n, key: key})
			off += n
			continue
		}
		// Damage at off: hunt forward for the next fully valid frame.
		next := resync(data, off+1)
		if next < 0 {
			res.torn = off
			return res
		}
		res.corrupt = append(res.corrupt, CorruptRegion{Off: off, Len: next - off})
		off = next
	}
	return res
}

// resync finds the first offset >= from where a fully valid frame decodes,
// or -1. Validity includes the content-hash check, so garbage that happens
// to carry a self-consistent CRC still cannot fool the scan.
func resync(data []byte, from int64) int64 {
	for off := from; off+frameOverhead <= int64(len(data)); off++ {
		if _, _, _, ok := decodeFrame(data, off); ok {
			return off
		}
	}
	return -1
}

// checkHeader validates the file header, distinguishing "not a store at
// all" (error) from an empty-but-valid file.
func checkHeader(data []byte) error {
	if len(data) < headerLen {
		return fmt.Errorf("store: file too short for header (%d bytes)", len(data))
	}
	if string(data[:8]) != string(fileMagic[:]) {
		return fmt.Errorf("store: bad magic %q (not a checkpoint store)", data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:headerLen]); v != Version {
		return fmt.Errorf("store: unsupported version %d (want %d)", v, Version)
	}
	return nil
}

// readAll reads the file's full content through the File seam.
func readAll(f File) ([]byte, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	data := make([]byte, size)
	if size == 0 {
		return data, nil
	}
	n, err := f.ReadAt(data, 0)
	if int64(n) == size {
		return data, nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return nil, err
}
