package store

import "encoding/binary"

// Checkpoint references. With a store configured, the supervisor journals
// a 16-byte reference — magic + key — instead of inlining the checkpoint
// blob in every RecCheckpointed record. The journal stops bloating with
// checkpoint history, replay holds references instead of blobs, and a
// federation handoff moves references between shards while the blobs stay
// put in the shared store.
//
// A reference is distinguishable from an inline blob by construction:
// correlation checkpoints open with "DEEPUMCK", stub-runner checkpoints
// are JSON, and the reference magic "DEEPUMSR" collides with neither — so
// a journal may hold a mix of both encodings (e.g. after the store
// rejected a Put and the supervisor fell back to inlining) and replay
// resolves each record by sniffing.

// refMagic marks a store reference ("SR" = store reference).
var refMagic = [8]byte{'D', 'E', 'E', 'P', 'U', 'M', 'S', 'R'}

// RefBytes is the fixed encoded size of a reference.
const RefBytes = 8 + 8

// EncodeRef encodes a key as a 16-byte journalable reference.
func EncodeRef(key Key) []byte {
	out := make([]byte, 0, RefBytes)
	out = append(out, refMagic[:]...)
	return binary.LittleEndian.AppendUint64(out, uint64(key))
}

// DecodeRef reports whether data is a store reference and, if so, the key
// it names. Anything else — including a real checkpoint blob — returns
// false and should be treated as inline content.
func DecodeRef(data []byte) (Key, bool) {
	if len(data) != RefBytes || string(data[:8]) != string(refMagic[:]) {
		return 0, false
	}
	return Key(binary.LittleEndian.Uint64(data[8:])), true
}
