package store

import (
	"fmt"
	"sort"
)

// Crash-safe compaction. An append-only store accumulates garbage —
// corrupt regions skipped by the scanner, superseded checkpoints whose
// runs have moved on, repair appends — and compaction reclaims it by
// rewriting only the live keys into a fresh file and atomically swapping
// it in. The commit protocol is the journal handoff's *.adopted rename
// idiom, with exactly one commit point:
//
//	1. write <path>.compacting  (header + live frames, replicas restored)
//	2. fsync it                 — the new file is durable but not yet the store
//	3. rename over <path>       — THE commit point (atomic on POSIX; the
//	                              OS FS fsyncs the directory too)
//
// A crash before step 3 leaves the old file as the truth (Open removes
// the stale temp file); a crash after leaves the new file. There is no
// intermediate state, which is what the crash-point sweep test asserts by
// killing the filesystem at every fsync/rename boundary.

// compactSuffix names the in-progress compaction temp file.
const compactSuffix = ".compacting"

// CompactStats describes one compaction.
type CompactStats struct {
	// KeysKept survived the liveness filter; KeysDropped did not.
	KeysKept    int `json:"keys_kept"`
	KeysDropped int `json:"keys_dropped"`
	// Unreadable counts live keys that could not be carried over because
	// every replica was corrupt — they are gone from the compacted store
	// (their holders degrade to cold restart, same as a scrub loss).
	Unreadable int `json:"unreadable,omitempty"`
	// BytesBefore and BytesAfter measure the reclaim.
	BytesBefore int64 `json:"bytes_before"`
	BytesAfter  int64 `json:"bytes_after"`
}

// Compact rewrites the store keeping only keys for which live returns
// true (nil keeps every key — still worthwhile: it drops corrupt regions,
// dedups over-replication, and restores the replication factor). The swap
// is atomic: readers and writers observe either the old file or the new
// one, and a crash at any point preserves one of the two.
func (s *Store) Compact(live func(Key) bool) (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st CompactStats
	if s.closed {
		return st, errClosed
	}
	st.BytesBefore = s.size

	// Plan: keep live keys in ascending key order (deterministic layout —
	// two compactions of the same state produce byte-identical files).
	keys := s.sortedKeysLocked()
	var keep []Key
	for _, k := range keys {
		if live == nil || live(k) {
			keep = append(keep, k)
		} else {
			st.KeysDropped++
		}
	}

	// Build the new image in memory, reading each kept key through the
	// verifying path (a corrupt-everywhere key cannot be carried over).
	buf := appendHeader(nil)
	newIndex := make(map[Key][]frameRef, len(keep))
	var newOrder []Key
	for _, key := range keep {
		blob, err := s.readGoodLocked(key, s.index[key])
		if err != nil {
			st.Unreadable++
			continue
		}
		refs := make([]frameRef, 0, s.opts.Replicas)
		for i := 0; i < s.opts.Replicas; i++ {
			off := int64(len(buf))
			buf = appendFrame(buf, key, blob)
			refs = append(refs, frameRef{off: off, n: int64(len(buf)) - off, key: key})
		}
		newIndex[key] = refs
		newOrder = append(newOrder, key)
		st.KeysKept++
	}
	// First-Put order is not recoverable from a compacted file (it is
	// sorted by key); keep the in-memory order sorted too so reopen and
	// live store agree.
	sort.Slice(newOrder, func(i, j int) bool { return newOrder[i] < newOrder[j] })

	// 1+2: write and fsync the temp file.
	tmp := s.path + compactSuffix
	if err := s.fs.Remove(tmp); err != nil {
		return st, fmt.Errorf("store: compact: clearing temp file: %w", err)
	}
	nf, err := s.fs.OpenFile(tmp)
	if err != nil {
		return st, fmt.Errorf("store: compact: creating %s: %w", tmp, err)
	}
	abort := func(err error) (CompactStats, error) {
		nf.Close()
		_ = s.fs.Remove(tmp)
		return st, err
	}
	if err := nf.Truncate(0); err != nil {
		return abort(fmt.Errorf("store: compact: truncating temp file: %w", err))
	}
	if _, err := nf.Write(buf); err != nil {
		return abort(fmt.Errorf("store: compact: writing %s: %w", tmp, err))
	}
	if err := nf.Sync(); err != nil {
		return abort(fmt.Errorf("store: compact: syncing %s: %w", tmp, err))
	}

	// 3: the commit point.
	if err := s.fs.Rename(tmp, s.path); err != nil {
		return abort(fmt.Errorf("store: compact: committing rename: %w", err))
	}

	// The rename made nf's inode the store; retire the old handle and
	// swap the in-memory view. From here the compaction has happened —
	// errors closing the old handle are not undoable and not fatal.
	_ = s.f.Close()
	s.f = nf
	s.size = int64(len(buf))
	s.index = newIndex
	s.order = newOrder
	st.BytesAfter = s.size
	return st, nil
}
