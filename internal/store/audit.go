package store

import (
	"fmt"
	"os"
)

// Read-only audit, for deepum-inspect: scan a store file without opening
// it for writing — no torn-tail truncation, no leftover cleanup — and
// report everything the scanner can say about it.

// AuditReport is the read-only scan summary.
type AuditReport struct {
	// Bytes is the file size; Frames counts intact frames; Keys counts
	// distinct keys they address.
	Bytes  int64 `json:"bytes"`
	Frames int   `json:"frames"`
	Keys   int   `json:"keys"`
	// MinReplicas and MaxReplicas bound the per-key intact frame counts
	// (0 keys → both 0).
	MinReplicas int `json:"min_replicas"`
	MaxReplicas int `json:"max_replicas"`
	// CorruptRegions lists byte ranges the scanner skipped; TornOffset is
	// where the scan gave up (-1 when the file parses to EOF).
	CorruptRegions []CorruptRegion `json:"corrupt_regions,omitempty"`
	TornOffset     int64           `json:"torn_offset"`
	// Index maps every key to its intact replica count.
	Index map[Key]int `json:"-"`
}

// Clean reports whether the file had no damage at all.
func (r AuditReport) Clean() bool {
	return len(r.CorruptRegions) == 0 && r.TornOffset < 0
}

// Audit scans the store at path read-only. The file is left untouched,
// torn tail included; a file that is not a store at all (bad magic,
// unsupported version, too short for a header) is an error.
func Audit(path string) (AuditReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return AuditReport{TornOffset: -1}, fmt.Errorf("store: audit %s: %w", path, err)
	}
	return AuditBytes(data)
}

// AuditBytes audits an in-memory store image (the fuzz harness's entry
// point).
func AuditBytes(data []byte) (AuditReport, error) {
	rep := AuditReport{Bytes: int64(len(data)), TornOffset: -1, Index: map[Key]int{}}
	if err := checkHeader(data); err != nil {
		return rep, err
	}
	res := scanFrames(data)
	rep.Frames = len(res.frames)
	rep.CorruptRegions = res.corrupt
	rep.TornOffset = res.torn
	for _, fr := range res.frames {
		rep.Index[fr.key]++
	}
	rep.Keys = len(rep.Index)
	for _, n := range rep.Index {
		if rep.MinReplicas == 0 || n < rep.MinReplicas {
			rep.MinReplicas = n
		}
		if n > rep.MaxReplicas {
			rep.MaxReplicas = n
		}
	}
	return rep, nil
}
