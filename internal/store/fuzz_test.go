package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// hostileFrame hand-encodes one store frame from an arbitrary length
// field, flags byte, key, and blob — with a correct CRC — so the corpus
// can craft frames the write path would refuse: lying lengths the checksum
// cannot catch, nonzero flags, keys that do not hash-match their blob.
func hostileFrame(length uint32, flags byte, key Key, blob []byte) []byte {
	var buf bytes.Buffer
	var u [8]byte
	binary.LittleEndian.PutUint32(u[:4], length)
	buf.Write(u[:4])
	buf.WriteByte(flags)
	binary.LittleEndian.PutUint64(u[:], uint64(key))
	buf.Write(u[:])
	buf.Write(blob)
	binary.LittleEndian.PutUint32(u[:4], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(u[:4])
	return buf.Bytes()
}

// goodFrame encodes a frame exactly as Put would.
func goodFrame(blob []byte) []byte {
	return appendFrame(nil, HashBytes(blob), blob)
}

func storeImage(frames ...[]byte) []byte {
	buf := appendHeader(nil)
	for _, f := range frames {
		buf = append(buf, f...)
	}
	return buf
}

// FuzzOpenStore feeds the store decoder adversarial file images through
// both read paths — the read-only audit and a full Open on an in-memory
// filesystem. Whatever the input: no panic, no allocation sized from an
// unvalidated length, every surviving blob hash-verifies against its key,
// and two fixed points hold: re-encoding the intact frames yields a store
// that audits clean with identical content, and reopening after Open's
// torn-tail healing parses clean to the same frame set.
func FuzzOpenStore(f *testing.F) {
	blobA := bytes.Repeat([]byte{0xA1, 0x5C}, 40)
	blobB := []byte("checkpoint payload, the second")
	valid := storeImage(
		goodFrame(blobA),
		goodFrame(blobA), // replica: duplicate keys are legal
		goodFrame(blobB),
	)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("DEEPUMCS"))                 // header torn mid-version
	f.Add(storeImage())                       // header only
	f.Add([]byte("NOTSTORE\x01\x00\x00\x00")) // wrong magic
	f.Add(valid[:len(valid)-3])               // torn tail: truncated CRC
	f.Add(valid[:headerLen+2])                // torn tail: truncated length field
	flipped := bytes.Clone(valid)             // bit flip mid-blob: scanner must resync
	flipped[headerLen+20] ^= 0x08
	f.Add(flipped)
	// CRC-valid hostile frames: every defense must live in decodeFrame.
	f.Add(storeImage(hostileFrame(0xFFFFFFFF, 0, 1, nil)))                                             // length ~4 GiB
	f.Add(storeImage(hostileFrame(uint32(minPayload+MaxBlobBytes+1), 0, 1, nil)))                      // just over the cap
	f.Add(storeImage(hostileFrame(3, 0, 1, nil)))                                                      // length below flags+key
	f.Add(storeImage(hostileFrame(uint32(minPayload+3), 1, HashBytes([]byte("abc")), []byte("abc"))))  // nonzero flags
	f.Add(storeImage(hostileFrame(uint32(minPayload+3), 0, 12345, []byte("abc"))))                     // key != hash(blob)
	f.Add(storeImage(goodFrame(blobB), hostileFrame(uint32(minPayload), 0, 7, nil), goodFrame(blobA))) // damage between good frames

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		rep, err := AuditBytes(data)
		if err != nil {
			// Errors are reserved for "not a store at all"; they must never
			// come with counted frames.
			if rep.Frames != 0 {
				t.Fatalf("AuditBytes returned %d frames alongside error %v", rep.Frames, err)
			}
			return
		}
		total := 0
		for _, n := range rep.Index {
			total += n
			if n < rep.MinReplicas || n > rep.MaxReplicas {
				t.Fatalf("replica count %d outside [%d, %d]", n, rep.MinReplicas, rep.MaxReplicas)
			}
		}
		if total != rep.Frames || len(rep.Index) != rep.Keys {
			t.Fatalf("audit bookkeeping: %d frames vs %d indexed, %d keys vs %d", rep.Frames, total, rep.Keys, len(rep.Index))
		}

		// Full Open on the same image: it must succeed whenever the audit
		// did, index the same keys, and every Get hash-verifies.
		fs := NewMemFS()
		fs.WriteFile("f.store", data)
		s, stats, err := Open("f.store", Options{FS: fs})
		if err != nil {
			t.Fatalf("audit passed but Open failed: %v", err)
		}
		if stats.Keys != rep.Keys || stats.Frames != rep.Frames {
			t.Fatalf("Open saw %d keys / %d frames, audit saw %d / %d", stats.Keys, stats.Frames, rep.Keys, rep.Frames)
		}
		var frames [][]byte
		for _, key := range s.Keys() {
			blob, err := s.Get(key)
			if err != nil {
				t.Fatalf("indexed key %s does not read: %v", key, err)
			}
			if len(blob) > MaxBlobBytes {
				t.Fatalf("key %s blob %d bytes exceeds MaxBlobBytes", key, len(blob))
			}
			if HashBytes(blob) != key {
				t.Fatalf("key %s does not match its blob's hash", key)
			}
			frames = append(frames, goodFrame(blob))
		}
		s.Close()

		// Fixed point 1: re-encoding the surviving content audits clean
		// with the same key set.
		again, err := AuditBytes(storeImage(frames...))
		if err != nil {
			t.Fatalf("re-encoded store does not audit: %v", err)
		}
		if !again.Clean() || again.Keys != rep.Keys {
			t.Fatalf("re-encoded store: clean=%v keys=%d, want clean with %d keys", again.Clean(), again.Keys, rep.Keys)
		}

		// Fixed point 2: Open healed the torn tail in place — the file now
		// audits with no torn offset and the same frame set (mid-file
		// corrupt regions persist by design; only the tail is cut).
		healed, _ := fs.ReadFile("f.store")
		hrep, err := AuditBytes(healed)
		if err != nil {
			t.Fatalf("healed store does not audit: %v", err)
		}
		if hrep.TornOffset != -1 {
			t.Fatalf("healed store still reports torn offset %d", hrep.TornOffset)
		}
		if hrep.Frames != rep.Frames || hrep.Keys != rep.Keys {
			t.Fatalf("healing changed content: %d/%d frames, %d/%d keys", hrep.Frames, rep.Frames, hrep.Keys, rep.Keys)
		}
	})
}
