package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The filesystem seam. The store talks to disk only through the File and
// FS interfaces, so a test (or internal/chaos's disk-fault injector) can
// substitute an in-memory filesystem that tears writes at arbitrary
// offsets, fails fsyncs, runs out of space mid-append, or "crashes" at any
// fsync/rename boundary and hands back only what a real power cut would
// have preserved. Production uses OSFS, a thin wrapper over *os.File.

// File is one open store file. The store never seeks: reads are positioned
// (ReadAt) and writes always append at the current end.
type File interface {
	io.ReaderAt
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage. Durability claims in
	// the store's contract ("committed once Put returns") hold only through
	// this call.
	Sync() error
	// Truncate cuts the file to size bytes (torn-tail healing and
	// failed-append rollback).
	Truncate(size int64) error
	// Size reports the current length in bytes.
	Size() (int64, error)
}

// FS is the minimal filesystem surface the store needs: open-or-create,
// the atomic rename that commits a compaction, and removal of leftovers.
type FS interface {
	// OpenFile opens path read-write, creating it if absent. It never
	// truncates.
	OpenFile(path string) (File, error)
	// Rename atomically replaces newpath with oldpath — the compaction
	// commit point. Implementations must make the rename durable (on a
	// POSIX filesystem that means fsyncing the parent directory).
	Rename(oldpath, newpath string) error
	// Remove deletes path; removing a non-existent path is not an error
	// (leftover cleanup must be idempotent).
	Remove(path string) error
}

// --- OS-backed implementation ---

// OSFS is the production filesystem.
type OSFS struct{}

type osFile struct{ f *os.File }

func (o OSFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	// All writes append; position the write offset once.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &osFile{f: f}, nil
}

func (o OSFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	// Make the rename itself durable: fsync the parent directory so a
	// crash after Rename returns cannot resurrect the old file. Best
	// effort — not every filesystem supports fsync on directories.
	if dir, err := os.Open(filepath.Dir(newpath)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

func (o OSFS) Remove(path string) error {
	err := os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *osFile) Close() error                            { return f.f.Close() }
func (f *osFile) Sync() error                             { return f.f.Sync() }
func (f *osFile) Truncate(size int64) error {
	if err := f.f.Truncate(size); err != nil {
		return err
	}
	_, err := f.f.Seek(size, io.SeekStart)
	return err
}
func (f *osFile) Size() (int64, error) {
	info, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// --- in-memory implementation ---

// MemFS is an in-memory FS for tests and fault injection. It tracks, per
// file, which prefix has been fsync'd, so Clone(syncedOnly=true) can
// reconstruct exactly the state a power cut would preserve. Safe for
// concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
}

type memData struct {
	bytes  []byte
	synced int // bytes guaranteed durable (advanced by Sync)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memData{}}
}

type memFile struct {
	fs   *MemFS
	path string
	data *memData
}

func (m *MemFS) OpenFile(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d := m.files[path]
	if d == nil {
		d = &memData{}
		m.files[path] = d
	}
	return &memFile{fs: m, path: path, data: d}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[oldpath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: no such file", oldpath)
	}
	delete(m.files, oldpath)
	m.files[newpath] = d
	return nil
}

func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, path)
	return nil
}

// WriteFile installs raw, fully-synced content (corpus setup in tests).
func (m *MemFS) WriteFile(path string, b []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = &memData{bytes: append([]byte(nil), b...), synced: len(b)}
}

// CorruptByte XORs mask into the byte at off, in place — open handles see
// the damage, which is the point: it models bit-rot under a live store.
func (m *MemFS) CorruptByte(path string, off int64, mask byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[path]
	if !ok || off < 0 || off >= int64(len(d.bytes)) {
		return fmt.Errorf("memfs: corrupt %s at %d: out of range", path, off)
	}
	d.bytes[off] ^= mask
	return nil
}

// ReadFile returns a copy of the file's full content (false if absent).
func (m *MemFS) ReadFile(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), d.bytes...), true
}

// Paths lists the filesystem's file names, sorted.
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Clone snapshots the filesystem. With syncedOnly, each file keeps only
// its fsync'd prefix — the state a crash at this instant would preserve
// (an unsynced suffix may or may not hit the platter; syncedOnly models
// the pessimistic cut, a plain Clone the optimistic one).
func (m *MemFS) Clone(syncedOnly bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for p, d := range m.files {
		n := len(d.bytes)
		if syncedOnly && d.synced < n {
			n = d.synced
		}
		out.files[p] = &memData{bytes: append([]byte(nil), d.bytes[:n]...), synced: n}
	}
	return out
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 || off >= int64(len(f.data.bytes)) {
		return 0, io.EOF
	}
	n := copy(p, f.data.bytes[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.data.bytes = append(f.data.bytes, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.data.synced = len(f.data.bytes)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 || size > int64(len(f.data.bytes)) {
		return fmt.Errorf("memfs: truncate %s to %d (size %d)", f.path, size, len(f.data.bytes))
	}
	f.data.bytes = f.data.bytes[:size]
	if f.data.synced > int(size) {
		f.data.synced = int(size)
	}
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.data.bytes)), nil
}

func (f *memFile) Close() error { return nil }
