package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"
)

func blobFor(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8), 0xA5}, 20+i%7)
}

func TestPutGetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.store")
	s, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	keys := make([]Key, 10)
	for i := range keys {
		k, err := s.Put(blobFor(i))
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		keys[i] = k
	}
	for i, k := range keys {
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, blobFor(i)) {
			t.Fatalf("blob %d drifted", i)
		}
	}
	if _, err := s.Get(Key(12345)); err == nil {
		t.Fatal("unknown key did not error")
	} else if _, ok := err.(*NotFoundError); !ok {
		t.Fatalf("unknown key: got %T, want *NotFoundError", err)
	}
}

func TestDedup(t *testing.T) {
	s, _, err := Open(filepath.Join(t.TempDir(), "ck.store"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob := blobFor(1)
	k1, _ := s.Put(blob)
	sizeAfterFirst := s.Stats().Bytes
	k2, err := s.Put(append([]byte(nil), blob...))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("same content, different keys: %s vs %s", k1, k2)
	}
	st := s.Stats()
	if st.Bytes != sizeAfterFirst {
		t.Fatalf("dedup hit grew the file: %d -> %d", sizeAfterFirst, st.Bytes)
	}
	if st.DedupHits != 1 || st.Puts != 1 || st.Keys != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.store")
	s, _, err := Open(path, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 0; i < 5; i++ {
		k, err := s.Put(blobFor(i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, stats, err := Open(path, Options{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.Keys != 5 || stats.Frames != 10 || stats.TornBytes != 0 || len(stats.CorruptRegions) != 0 {
		t.Fatalf("reopen stats: %+v", stats)
	}
	for i, k := range keys {
		got, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, blobFor(i)) {
			t.Fatalf("key %d after reopen: %v", i, err)
		}
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	fs := NewMemFS()
	s, _, err := Open("ck.store", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	k, _ := s.Put(blobFor(3))
	s.Close()

	// Tear the tail: append half a frame's worth of garbage.
	img, _ := fs.ReadFile("ck.store")
	torn := append(img, 0xFF, 0x07, 0x00, 0x00, 0xDE, 0xAD)
	fs.WriteFile("ck.store", torn)

	s2, stats, err := Open("ck.store", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.TornBytes != 6 {
		t.Fatalf("torn bytes = %d, want 6", stats.TornBytes)
	}
	if got, err := s2.Get(k); err != nil || !bytes.Equal(got, blobFor(3)) {
		t.Fatalf("intact prefix lost: %v", err)
	}
	healed, _ := fs.ReadFile("ck.store")
	if len(healed) != len(img) {
		t.Fatalf("file not healed to %d bytes (got %d)", len(img), len(healed))
	}
}

// corruptNthFrame flips a bit inside the blob area of the n'th frame of a
// store image (frames located by a clean scan first).
func corruptNthFrame(t *testing.T, img []byte, n int) []byte {
	t.Helper()
	res := scanFrames(img)
	if n >= len(res.frames) {
		t.Fatalf("image has %d frames, wanted frame %d", len(res.frames), n)
	}
	fr := res.frames[n]
	out := append([]byte(nil), img...)
	out[fr.off+13] ^= 0x10 // first blob byte
	return out
}

// corruptLiveFrame bit-flips the n'th frame of an open MemFS-backed store
// in place, so the live handle observes the damage.
func corruptLiveFrame(t *testing.T, fs *MemFS, path string, n int) {
	t.Helper()
	img, ok := fs.ReadFile(path)
	if !ok {
		t.Fatalf("no such file %s", path)
	}
	res := scanFrames(img)
	if n >= len(res.frames) {
		t.Fatalf("image has %d frames, wanted frame %d", len(res.frames), n)
	}
	if err := fs.CorruptByte(path, res.frames[n].off+13, 0x10); err != nil {
		t.Fatal(err)
	}
}

func TestScanResyncsPastMidFileCorruption(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs})
	var keys []Key
	for i := 0; i < 4; i++ {
		k, _ := s.Put(blobFor(i))
		keys = append(keys, k)
	}
	s.Close()

	img, _ := fs.ReadFile("ck.store")
	fs.WriteFile("ck.store", corruptNthFrame(t, img, 1))

	s2, stats, err := Open("ck.store", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(stats.CorruptRegions) != 1 {
		t.Fatalf("corrupt regions: %+v", stats.CorruptRegions)
	}
	if stats.Keys != 3 {
		t.Fatalf("keys after mid-file corruption = %d, want 3", stats.Keys)
	}
	// Frames 0, 2, 3 survive; frame 1's key is gone until scrub/restore.
	for i, k := range keys {
		_, err := s2.Get(k)
		if i == 1 {
			if err == nil {
				t.Fatal("corrupted key still resolves")
			}
			continue
		}
		if err != nil {
			t.Fatalf("key %d lost to resync: %v", i, err)
		}
	}
}

func TestScrubRepairsFromSurvivingReplica(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 2})
	k, _ := s.Put(blobFor(7))
	s.Close()

	// Corrupt replica 0 of the key; replica 1 survives.
	img, _ := fs.ReadFile("ck.store")
	fs.WriteFile("ck.store", corruptNthFrame(t, img, 0))

	s2, _, err := Open("ck.store", Options{FS: fs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Repaired != 1 || len(rep.Lost) != 0 {
		t.Fatalf("scrub report: %+v", rep)
	}
	if got, err := s2.Get(k); err != nil || !bytes.Equal(got, blobFor(7)) {
		t.Fatalf("repaired key unreadable: %v", err)
	}
	// Redundancy restored: a fresh audit sees 2 intact replicas again.
	img2, _ := fs.ReadFile("ck.store")
	rep2, err := AuditBytes(img2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Index[k] != 2 {
		t.Fatalf("replicas after repair = %d, want 2", rep2.Index[k])
	}
}

func TestScrubDegradesLostKeyToNotFound(t *testing.T) {
	fs := NewMemFS()
	s2, _, err := Open("ck.store", Options{FS: fs}) // replicas=1: no repair possible
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	kGone, _ := s2.Put(blobFor(1))
	kKept, _ := s2.Put(blobFor(2))

	// Bit-rot lands while the store is open: scrub, not Open, must catch it.
	corruptLiveFrame(t, fs, "ck.store", 0)

	rep, err := s2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != kGone {
		t.Fatalf("scrub lost = %v, want [%s]", rep.Lost, kGone)
	}
	if _, err := s2.Get(kGone); err == nil {
		t.Fatal("lost key still resolves")
	} else if _, ok := err.(*NotFoundError); !ok {
		t.Fatalf("lost key error %T, want *NotFoundError", err)
	}
	if got, err := s2.Get(kKept); err != nil || !bytes.Equal(got, blobFor(2)) {
		t.Fatalf("surviving key: %v", err)
	}
}

func TestCompactReclaimsGarbageAndKeepsLive(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 2})
	var keys []Key
	for i := 0; i < 6; i++ {
		k, _ := s.Put(blobFor(i))
		keys = append(keys, k)
	}
	live := map[Key]bool{keys[0]: true, keys[3]: true, keys[5]: true}
	st, err := s.Compact(func(k Key) bool { return live[k] })
	if err != nil {
		t.Fatal(err)
	}
	if st.KeysKept != 3 || st.KeysDropped != 3 || st.Unreadable != 0 {
		t.Fatalf("compact stats: %+v", st)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("compaction reclaimed nothing: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
	for i, k := range keys {
		got, err := s.Get(k)
		if live[k] {
			if err != nil || !bytes.Equal(got, blobFor(i)) {
				t.Fatalf("live key %d after compact: %v", i, err)
			}
		} else if err == nil {
			t.Fatalf("dropped key %d still resolves", i)
		}
	}
	s.Close()

	// The compacted file reopens clean with exactly the live keys.
	s2, stats, err := Open("ck.store", Options{FS: fs, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.Keys != 3 || stats.Frames != 6 || stats.TornBytes != 0 {
		t.Fatalf("reopen after compact: %+v", stats)
	}
}

func TestCompactIsDeterministic(t *testing.T) {
	build := func() []byte {
		fs := NewMemFS()
		s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 2})
		// Insert in different orders; compaction sorts by key.
		order := []int{4, 1, 3, 0, 2}
		for _, i := range order {
			s.Put(blobFor(i))
		}
		if _, err := s.Compact(nil); err != nil {
			t.Fatal(err)
		}
		s.Close()
		img, _ := fs.ReadFile("ck.store")
		return img
	}
	a := build()

	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 2})
	for i := 0; i < 5; i++ {
		s.Put(blobFor(i))
	}
	if _, err := s.Compact(nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	b, _ := fs.ReadFile("ck.store")
	if !bytes.Equal(a, b) {
		t.Fatal("compaction is not deterministic across insertion orders")
	}
}

func TestOpenRemovesStaleCompactionFile(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs})
	k, _ := s.Put(blobFor(9))
	s.Close()
	fs.WriteFile("ck.store"+compactSuffix, []byte("half-written wreckage"))

	s2, _, err := Open("ck.store", Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get(k); err != nil {
		t.Fatal(err)
	}
	for _, p := range fs.Paths() {
		if p != "ck.store" {
			t.Fatalf("stale file survived open: %s", p)
		}
	}
}

func TestRefRoundTrip(t *testing.T) {
	key := HashBytes([]byte("warm state"))
	ref := EncodeRef(key)
	if len(ref) != RefBytes {
		t.Fatalf("ref is %d bytes, want %d", len(ref), RefBytes)
	}
	got, ok := DecodeRef(ref)
	if !ok || got != key {
		t.Fatalf("decode: %s %v", got, ok)
	}
	// Real checkpoint shapes must not sniff as references.
	for _, blob := range [][]byte{
		[]byte("DEEPUMCK........"),    // correlation checkpoint magic, right length
		[]byte(`{"iter":3,"hash":1}`), // stub JSON
		EncodeRef(key)[:RefBytes-1],   // short
		append(EncodeRef(key), 0),     // long
		nil,
	} {
		if _, ok := DecodeRef(blob); ok {
			t.Fatalf("false positive ref sniff on %q", blob)
		}
	}
}

func TestHashAvalanche(t *testing.T) {
	// Near-identical blobs (trailing counter differs) must land far apart:
	// the splitmix64 finalizer's whole job. Weak check: top bytes differ
	// across a small family.
	top := map[byte]bool{}
	for i := 0; i < 16; i++ {
		var b [32]byte
		binary.LittleEndian.PutUint32(b[28:], uint32(i))
		top[byte(uint64(HashBytes(b[:]))>>56)] = true
	}
	if len(top) < 8 {
		t.Fatalf("poor avalanche: %d distinct top bytes of 16", len(top))
	}
}

func TestPutRejectsOversizedBlob(t *testing.T) {
	s, _, _ := Open("ck.store", Options{FS: NewMemFS()})
	defer s.Close()
	if _, err := s.Put(make([]byte, MaxBlobBytes+1)); err == nil {
		t.Fatal("oversized blob accepted")
	}
}

func TestAuditCleanAndDamaged(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 2})
	for i := 0; i < 3; i++ {
		s.Put(blobFor(i))
	}
	s.Close()
	img, _ := fs.ReadFile("ck.store")

	rep, err := AuditBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Keys != 3 || rep.Frames != 6 || rep.MinReplicas != 2 || rep.MaxReplicas != 2 {
		t.Fatalf("clean audit: %+v", rep)
	}

	rep2, err := AuditBytes(corruptNthFrame(t, img, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Clean() || len(rep2.CorruptRegions) != 1 {
		t.Fatalf("damaged audit: %+v", rep2)
	}

	if _, err := AuditBytes([]byte("NOTASTOREATALL")); err == nil {
		t.Fatal("bad magic audited clean")
	}
}

func TestGetFallsThroughCorruptReplica(t *testing.T) {
	fs := NewMemFS()
	s, _, _ := Open("ck.store", Options{FS: fs, Replicas: 3})
	k, _ := s.Put(blobFor(5))
	s.Close()

	// Corrupt replicas 0 and 1 under the open store: Get must fall through
	// to the intact third replica.
	s2, _, err := Open("ck.store", Options{FS: fs, Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	img, _ := fs.ReadFile("ck.store")
	for _, fr := range scanFrames(img).frames[:2] {
		if err := fs.CorruptByte("ck.store", fr.off+13, 0x10); err != nil {
			t.Fatal(err)
		}
	}

	got, err := s2.Get(k)
	if err != nil || !bytes.Equal(got, blobFor(5)) {
		t.Fatalf("fall-through read: %v", err)
	}
}

func ExampleHashBytes() {
	fmt.Println(HashBytes([]byte("deepum")) == HashBytes([]byte("deepum")))
	// Output: true
}
