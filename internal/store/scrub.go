package store

import (
	"fmt"
	"time"
)

// The scrubber is the store's bit-rot defense: it re-reads the whole file
// and re-verifies every frame (CRC and content hash) against the live
// index, catching damage that arrived after Open's scan — a flipped bit
// under the page cache, a torn sector, a lying disk. For every damaged
// key it makes one of two moves, and only these two:
//
//   - REPAIR: at least one replica still verifies → append fresh replicas
//     from the surviving copy until the configured replication factor is
//     restored. The key keeps resolving; the dead frames become garbage
//     for the next compaction.
//   - DEGRADE: every replica is damaged → the key is dropped from the
//     index and reported Lost. A caller holding a reference observes
//     *NotFoundError and falls back to a cold restart — the run is slower,
//     never lost, and never resumed from corrupt state.
//
// The scrubber never invents data and never rewrites a frame in place;
// the file stays append-only.

// ScrubReport describes one scrub pass.
type ScrubReport struct {
	// Frames is the number of frames that verified clean; Keys the
	// distinct keys they cover.
	Frames int `json:"frames"`
	Keys   int `json:"keys"`
	// CorruptFrames counts frames that failed verification this pass
	// (including frames already known-dead from Open's scan).
	CorruptFrames int `json:"corrupt_frames"`
	// Repaired counts keys whose replication was restored from a
	// surviving replica.
	Repaired int `json:"repaired"`
	// Lost lists keys with no surviving replica, now dropped from the
	// index. Callers degrade those runs to cold restarts.
	Lost []Key `json:"lost,omitempty"`
	// TornBytes counts trailing bytes dropped because the tail no longer
	// parsed (damage landed after the last intact frame).
	TornBytes int64 `json:"torn_bytes,omitempty"`
	// BytesScanned is the file size the pass covered.
	BytesScanned int64 `json:"bytes_scanned"`
}

// Scrub re-verifies every frame and repairs or degrades damaged keys (see
// the package comment above). It holds the store's write lock for the
// duration — scrubbing a multi-GiB store pauses Puts; size the interval
// accordingly.
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rep ScrubReport
	if s.closed {
		return rep, errClosed
	}
	data, err := readAll(s.f)
	if err != nil {
		return rep, fmt.Errorf("store: scrub read: %w", err)
	}
	rep.BytesScanned = int64(len(data))
	if err := checkHeader(data); err != nil {
		// The header itself rotted. Nothing in the file is addressable
		// anymore; this is beyond scrub's repair power.
		return rep, fmt.Errorf("store: scrub: %w", err)
	}
	res := scanFrames(data)
	rep.Frames = len(res.frames)
	rep.CorruptFrames = len(res.corrupt)
	if res.torn >= 0 {
		// Tail damage: every intact frame precedes it (scan already tried
		// to resync). Truncate so future appends extend a clean file.
		rep.TornBytes = int64(len(data)) - res.torn
		if err := s.f.Truncate(res.torn); err != nil {
			return rep, fmt.Errorf("store: scrub truncating torn tail at %d: %w", res.torn, err)
		}
		if err := s.f.Sync(); err != nil {
			return rep, fmt.Errorf("store: scrub syncing truncated file: %w", err)
		}
		s.size = res.torn
	}

	// Rebuild the intact view and diff it against the index: repair what
	// has a surviving replica, degrade what does not.
	intact := map[Key][]frameRef{}
	for _, fr := range res.frames {
		intact[fr.key] = append(intact[fr.key], fr)
	}
	rep.Keys = len(intact)

	lostSet := map[Key]bool{}
	for _, key := range s.sortedKeysLocked() {
		refs := intact[key]
		if len(refs) == 0 {
			// DEGRADE: no surviving replica anywhere in the file.
			delete(s.index, key)
			lostSet[key] = true
			rep.Lost = append(rep.Lost, key)
			continue
		}
		if len(refs) >= s.opts.Replicas {
			// Healthy (or over-replicated from an earlier repair); adopt
			// the freshly verified view.
			s.index[key] = refs
			continue
		}
		// REPAIR: fewer intact replicas than configured. Re-append from a
		// surviving copy — the store stays append-only.
		blob, err := s.readGoodLocked(key, refs)
		if err != nil {
			// The replica rotted between the scan and this read; degrade.
			delete(s.index, key)
			lostSet[key] = true
			rep.Lost = append(rep.Lost, key)
			continue
		}
		s.index[key] = refs
		if err := s.appendLocked(key, blob, s.opts.Replicas-len(refs)); err != nil {
			return rep, fmt.Errorf("store: scrub repairing key %s: %w", key, err)
		}
		rep.Repaired++
	}
	if len(lostSet) > 0 {
		live := s.order[:0]
		for _, k := range s.order {
			if !lostSet[k] {
				live = append(live, k)
			}
		}
		s.order = live
	}
	return rep, nil
}

// scrubLoop is the background scrubber started by Open when
// Options.ScrubEvery is positive; Close stops it.
func (s *Store) scrubLoop(every time.Duration) {
	defer close(s.scrubDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.scrubStop:
			return
		case <-tick.C:
			rep, err := s.Scrub()
			if s.opts.OnScrub != nil {
				s.opts.OnScrub(rep, err)
			}
		}
	}
}
