// Package trace records and analyzes the event stream of a simulated
// training run: kernel launches, page faults, migrations, evictions,
// invalidations and prefetches, each stamped with virtual time. It is the
// observability layer a kernel-module developer would bolt onto the DeepUM
// driver — cmd/deepum-inspect uses it to print per-kernel stall breakdowns
// and fault heatmaps.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"deepum/internal/sim"
	"deepum/internal/um"
)

// Kind discriminates trace events.
type Kind uint8

// Event kinds.
const (
	KindLaunch     Kind = iota // a kernel launch; Arg = execution ID
	KindFault                  // a demand fault batch; Arg = pages, Block = first block
	KindMigrate                // a block arrived on the device (fault or prefetch)
	KindEvict                  // a block left the device with writeback
	KindInvalidate             // a victim dropped without writeback
	KindPrefetch               // a prefetch transfer started
	KindStall                  // GPU waited for an in-flight migration; Arg = ns
)

func (k Kind) String() string {
	switch k {
	case KindLaunch:
		return "launch"
	case KindFault:
		return "fault"
	case KindMigrate:
		return "migrate"
	case KindEvict:
		return "evict"
	case KindInvalidate:
		return "invalidate"
	case KindPrefetch:
		return "prefetch"
	case KindStall:
		return "stall"
	}
	return "unknown"
}

// Event is one timestamped occurrence.
type Event struct {
	At     sim.Time
	Kind   Kind
	Kernel string // name of the kernel active when the event occurred
	Block  um.BlockID
	Arg    int64
}

// Recorder accumulates events up to a cap (oldest dropped beyond it, with a
// drop count, so tracing a long run cannot exhaust memory).
type Recorder struct {
	events  []Event
	cap     int
	dropped int64
}

// NewRecorder returns a recorder retaining up to capacity events; cap <= 0
// selects 1<<20.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Recorder{cap: capacity}
}

// Record appends one event.
func (r *Recorder) Record(e Event) {
	if len(r.events) >= r.cap {
		// Drop the oldest half in one amortized move.
		half := len(r.events) / 2
		copy(r.events, r.events[half:])
		r.events = r.events[:len(r.events)-half]
		r.dropped += int64(half)
	}
	r.events = append(r.events, e)
}

// Events returns the retained events in order.
func (r *Recorder) Events() []Event { return r.events }

// Dropped returns how many old events were discarded.
func (r *Recorder) Dropped() int64 { return r.dropped }

// KernelProfile summarizes one kernel's memory behaviour over a trace.
type KernelProfile struct {
	Kernel      string
	Launches    int64
	FaultPages  int64
	Migrations  int64
	Evictions   int64
	Invalidates int64
	Prefetches  int64
	StallNanos  int64
}

// Summary is the per-kernel aggregation of a trace.
type Summary struct {
	Kernels []KernelProfile
	Span    sim.Duration
	Total   int64
}

// Summarize aggregates the trace per kernel name, ordered by fault pages
// descending — the heatmap view of where the memory system hurts.
func Summarize(events []Event) *Summary {
	byKernel := map[string]*KernelProfile{}
	get := func(name string) *KernelProfile {
		p, ok := byKernel[name]
		if !ok {
			p = &KernelProfile{Kernel: name}
			byKernel[name] = p
		}
		return p
	}
	var first, last sim.Time
	for i, e := range events {
		if i == 0 {
			first = e.At
		}
		last = e.At
		p := get(e.Kernel)
		switch e.Kind {
		case KindLaunch:
			p.Launches++
		case KindFault:
			p.FaultPages += e.Arg
		case KindMigrate:
			p.Migrations++
		case KindEvict:
			p.Evictions++
		case KindInvalidate:
			p.Invalidates++
		case KindPrefetch:
			p.Prefetches++
		case KindStall:
			p.StallNanos += e.Arg
		}
	}
	s := &Summary{Span: last.Sub(first), Total: int64(len(events))}
	for _, p := range byKernel {
		s.Kernels = append(s.Kernels, *p)
	}
	sort.Slice(s.Kernels, func(i, j int) bool {
		if s.Kernels[i].FaultPages != s.Kernels[j].FaultPages {
			return s.Kernels[i].FaultPages > s.Kernels[j].FaultPages
		}
		return s.Kernels[i].Kernel < s.Kernels[j].Kernel
	})
	return s
}

// String renders the summary as an aligned table of the top kernels.
func (s *Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events over %v\n", s.Total, s.Span)
	fmt.Fprintf(&b, "%-24s %8s %12s %10s %10s %10s %12s\n",
		"kernel", "launches", "fault pages", "migrated", "evicted", "prefetch", "stall")
	n := len(s.Kernels)
	if n > 20 {
		n = 20
	}
	for _, p := range s.Kernels[:n] {
		fmt.Fprintf(&b, "%-24s %8d %12d %10d %10d %10d %12v\n",
			p.Kernel, p.Launches, p.FaultPages, p.Migrations, p.Evictions,
			p.Prefetches, sim.Duration(p.StallNanos))
	}
	return b.String()
}

// BlockHeat counts events per UM block — the spatial heatmap.
func BlockHeat(events []Event) map[um.BlockID]int64 {
	heat := map[um.BlockID]int64{}
	for _, e := range events {
		switch e.Kind {
		case KindFault, KindMigrate, KindEvict, KindInvalidate, KindPrefetch:
			heat[e.Block]++
		}
	}
	return heat
}
