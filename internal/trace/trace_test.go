package trace_test

import (
	"strings"
	"testing"

	"deepum/internal/core"
	"deepum/internal/engine"
	"deepum/internal/models"
	"deepum/internal/sim"
	. "deepum/internal/trace"
)

func TestRecorderCapEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: sim.Time(i), Kind: KindFault})
	}
	if len(r.Events()) > 4 {
		t.Fatalf("recorder exceeded cap: %d", len(r.Events()))
	}
	if r.Dropped() == 0 {
		t.Fatal("no drops counted despite overflow")
	}
	// Retained events are the most recent ones, still ordered.
	ev := r.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatal("events out of order after compaction")
		}
	}
	// A zero capacity selects a large default: no overflow for small loads.
	big := NewRecorder(0)
	for i := 0; i < 100; i++ {
		big.Record(Event{At: sim.Time(i)})
	}
	if big.Dropped() != 0 || len(big.Events()) != 100 {
		t.Fatal("default-cap recorder dropped small load")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindLaunch: "launch", KindFault: "fault", KindMigrate: "migrate",
		KindEvict: "evict", KindInvalidate: "invalidate",
		KindPrefetch: "prefetch", KindStall: "stall", Kind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", k, k.String())
		}
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindLaunch, Kernel: "conv"},
		{At: 10, Kind: KindFault, Kernel: "conv", Arg: 100},
		{At: 20, Kind: KindMigrate, Kernel: "conv", Block: 1},
		{At: 30, Kind: KindStall, Kernel: "conv", Arg: 5000},
		{At: 40, Kind: KindLaunch, Kernel: "gemm"},
		{At: 50, Kind: KindFault, Kernel: "gemm", Arg: 700},
		{At: 60, Kind: KindEvict, Kernel: "gemm", Block: 2},
		{At: 70, Kind: KindInvalidate, Kernel: "gemm", Block: 3},
		{At: 80, Kind: KindPrefetch, Kernel: "gemm", Block: 4},
	}
	s := Summarize(events)
	if s.Total != 9 || s.Span != 80 {
		t.Fatalf("summary header = %+v", s)
	}
	if len(s.Kernels) != 2 {
		t.Fatalf("kernels = %d", len(s.Kernels))
	}
	// Ordered by fault pages descending: gemm (700) first.
	if s.Kernels[0].Kernel != "gemm" || s.Kernels[0].FaultPages != 700 {
		t.Fatalf("first profile = %+v", s.Kernels[0])
	}
	conv := s.Kernels[1]
	if conv.Launches != 1 || conv.Migrations != 1 || conv.StallNanos != 5000 {
		t.Fatalf("conv profile = %+v", conv)
	}
	out := s.String()
	if !strings.Contains(out, "gemm") || !strings.Contains(out, "conv") {
		t.Fatalf("rendering missing kernels:\n%s", out)
	}
}

func TestBlockHeat(t *testing.T) {
	events := []Event{
		{Kind: KindFault, Block: 7},
		{Kind: KindMigrate, Block: 7},
		{Kind: KindEvict, Block: 9},
		{Kind: KindLaunch, Block: 7}, // launches carry no block heat
	}
	heat := BlockHeat(events)
	if heat[7] != 2 || heat[9] != 1 {
		t.Fatalf("heat = %v", heat)
	}
}

// TestEngineIntegration: a traced DeepUM run emits every event kind and the
// summary reflects the run's fault count.
func TestEngineIntegration(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-large", Dataset: "wikitext"}, 16, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(1 << 18)
	_, err = engine.Run(engine.Config{
		Params:        sim.DefaultParams().Scale(64),
		Program:       p,
		Policy:        engine.PolicyDeepUM,
		DriverOptions: core.DefaultOptions(),
		Iterations:    2,
		Warmup:        2,
		Seed:          1,
		Tracer:        rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[Kind]bool{}
	for _, e := range rec.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []Kind{KindLaunch, KindFault, KindMigrate, KindEvict, KindPrefetch} {
		if !kinds[want] {
			t.Fatalf("traced run missing %v events (saw %v)", want, kinds)
		}
	}
	s := Summarize(rec.Events())
	if len(s.Kernels) == 0 || s.Span <= 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
	if len(BlockHeat(rec.Events())) == 0 {
		t.Fatal("empty block heatmap")
	}
}
