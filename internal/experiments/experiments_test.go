package experiments

import (
	"strings"
	"testing"
)

// quickOpts keeps experiment tests fast: scale 32, one batch per model.
func quickOpts() Options {
	return Options{Scale: 32, Iterations: 3, Warmup: 4, Quick: true, Seed: 1}
}

func TestAllRegistry(t *testing.T) {
	exps := All()
	if len(exps) != 11 {
		t.Fatalf("experiments = %d, want 11 (every table and figure)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("ByID(%q) = %v, %v", e.ID, got.ID, err)
		}
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestFig9aShape(t *testing.T) {
	tbl, err := Fig9a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 7 workloads + GMEAN
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	// Every DeepUM cell must be a number (DeepUM never OOMs here) and the
	// GMEAN row must show DeepUM ahead of naive UM (speedup > 1).
	gmean := tbl.Rows[len(tbl.Rows)-1]
	if gmean[0] != "GMEAN" {
		t.Fatalf("last row = %v", gmean)
	}
	if strings.HasPrefix(gmean[3], "0.") {
		t.Fatalf("DeepUM GMEAN below 1x: %v", gmean)
	}
	// The resnet rows must show LMS failing (OOM) where DeepUM runs — the
	// central Table 3 story.
	foundOOM := false
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r[0], "resnet") && r[1] == "-" && r[3] != "-" {
			foundOOM = true
		}
	}
	if !foundOOM {
		t.Fatal("expected LMS OOM on a resnet batch that DeepUM handles")
	}
}

func TestFig9bAndCShareMatrix(t *testing.T) {
	o := quickOpts()
	b, err := Fig9b(o)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fig9c(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 7 || len(c.Rows) != 8 {
		t.Fatalf("rows: fig9b=%d fig9c=%d", len(b.Rows), len(c.Rows))
	}
	// Energy ratios must be below 1 for DeepUM on oversubscribed models
	// (first row is gpt2-xl).
	if !strings.HasPrefix(c.Rows[0][2], "0.") {
		t.Fatalf("DeepUM energy ratio on gpt2-xl = %v, want < 1", c.Rows[0])
	}
}

func TestTable5FaultReduction(t *testing.T) {
	tbl, err := Table5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// On the transformer rows DeepUM must reduce faults by a large factor.
	for _, r := range tbl.Rows {
		if strings.HasPrefix(r[0], "gpt2") || strings.HasPrefix(r[0], "bert-large") {
			if r[3] == "-" {
				t.Fatalf("missing ratio for %v", r)
			}
		}
	}
}

func TestTable4Sizes(t *testing.T) {
	tbl, err := Table4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table 4")
	}
	for _, r := range tbl.Rows {
		if r[1] == "0" {
			t.Fatalf("zero correlation table size for %v", r)
		}
	}
}

func TestFig10AblationOrdering(t *testing.T) {
	o := quickOpts()
	tbl, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	gm := tbl.Rows[len(tbl.Rows)-1]
	// Normalized times must be below 1 (faster than UM) and cumulative
	// optimizations must not be slower on the geometric mean.
	parse := func(s string) float64 {
		var v float64
		if _, err := fmtSscan(s, &v); err != nil {
			t.Fatalf("bad gmean cell %q", s)
		}
		return v
	}
	p1, p2, p3 := parse(gm[1]), parse(gm[2]), parse(gm[3])
	if p1 >= 1 {
		t.Fatalf("prefetching alone did not beat UM: %v", gm)
	}
	if p3 > p2 || p2 > p1*1.05 {
		t.Fatalf("ablation ordering violated: %.2f %.2f %.2f", p1, p2, p3)
	}
}

func TestFig11DegreeSweep(t *testing.T) {
	o := quickOpts()
	tbl, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	// Two rows (speedup, energy) per workload; 3 quick workloads.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tbl.Rows))
	}
	// The N=8 column is the reference: all values exactly 1.00.
	for _, r := range tbl.Rows {
		if r[3] != "1.00" {
			t.Fatalf("reference column not 1.00: %v", r)
		}
	}
}

func TestFig13AndTable7Shapes(t *testing.T) {
	o := quickOpts()
	t13, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t13.Rows) != 5 { // 4 workloads + GMEAN
		t.Fatalf("fig13 rows = %d", len(t13.Rows))
	}
	// vDNN must fail on BERT (the "not work" of Table 7): its bert-large
	// cell is "-".
	bertRow := t13.Rows[1]
	if !strings.HasPrefix(bertRow[0], "bert-large") || bertRow[1] != "-" {
		t.Fatalf("vDNN should not work on BERT: %v", bertRow)
	}

	t7, err := Table7(o)
	if err != nil {
		t.Fatal(err)
	}
	// Quick mode: 2 searches; vDNN row must contain "not work" for BERT.
	for _, r := range t7.Rows {
		if r[0] == "vDNN" && r[2] != "not work" {
			t.Fatalf("vDNN table7 row = %v", r)
		}
	}
	// DeepUM row must be last and have numeric entries.
	last := t7.Rows[len(t7.Rows)-1]
	if last[0] != "DeepUM" || last[1] == "not work" {
		t.Fatalf("DeepUM table7 row = %v", last)
	}
}

func TestTable3MaxBatches(t *testing.T) {
	o := quickOpts()
	tbl, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 { // quick: gpt2-xl, gpt2-l
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// DeepUM's max batch must exceed LMS's on both transformers.
	for _, r := range tbl.Rows {
		lms, du := parseBatch(t, r[1]), parseBatch(t, r[2])
		if du <= lms {
			t.Fatalf("DeepUM max batch %d not above LMS %d for %s", du, lms, r[0])
		}
	}
}

func parseBatch(t *testing.T, s string) int64 {
	t.Helper()
	mult := int64(1)
	if strings.HasSuffix(s, "k") {
		mult = 1000
		s = strings.TrimSuffix(s, "k")
	}
	var v int64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("bad batch cell %q", s)
	}
	return v * mult
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 8 || o.Iterations != 4 || o.Warmup != 3 {
		t.Fatalf("normalized = %+v", o)
	}
}

func TestLabelFormatting(t *testing.T) {
	if label("dlrm", 96000) != "dlrm b96k" {
		t.Fatalf("label = %q", label("dlrm", 96000))
	}
	if label("gpt2-xl", 3) != "gpt2-xl b3" {
		t.Fatalf("label = %q", label("gpt2-xl", 3))
	}
}

func TestMaxFeasibleBatch(t *testing.T) {
	// Feasible below 37.
	got := maxFeasibleBatch(1, 100, func(b int64) bool { return b <= 37 })
	if got != 37 {
		t.Fatalf("max feasible = %d, want 37", got)
	}
	if maxFeasibleBatch(50, 100, func(b int64) bool { return b <= 37 }) != 0 {
		t.Fatal("infeasible floor must return 0")
	}
}
