// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a named function producing a
// metrics.Table whose rows mirror the paper artifact; DESIGN.md carries the
// experiment index and EXPERIMENTS.md the paper-versus-measured record.
package experiments

import (
	"fmt"

	"deepum/internal/baselines"
	"deepum/internal/chaos"
	"deepum/internal/core"
	"deepum/internal/engine"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/sim"
)

// Options scope an experiment run.
type Options struct {
	// Scale divides model and machine sizes; 8 keeps the full suite in
	// seconds, 1 runs paper-sized footprints.
	Scale int64
	// Iterations is the number of measured training iterations per run.
	// The paper reports 100-iteration times; results extrapolate linearly
	// from the steady-state iteration time.
	Iterations int
	// Warmup iterations run before measurement (correlation tables learn).
	Warmup int
	// Quick restricts each model to one batch size (for bench targets).
	Quick bool
	Seed  int64
	// Chaos names a fault-injection scenario (chaos.ByName) applied to the
	// UM-side runs; baseline (tensor-level) runs are never perturbed, so a
	// chaotic bench shows how far UM results degrade against clean
	// baselines. Empty or "none" runs clean.
	Chaos string
	// ChaosSeed seeds the injection PRNG; 0 reuses Seed.
	ChaosSeed int64
	// Policy names the prefetch policy for the DeepUM runs of each
	// experiment; empty keeps the paper's correlation prefetcher. The other
	// UM-side systems (naive UM, LMS, ideal) run no prefetch policy and are
	// unaffected.
	Policy string
}

// DefaultOptions returns the configuration used by the bench harness.
func DefaultOptions() Options {
	return Options{Scale: 8, Iterations: 4, Warmup: 3, Seed: 1}
}

func (o Options) normalize() Options {
	if o.Scale < 1 {
		o.Scale = 8
	}
	if o.Iterations < 1 {
		o.Iterations = 4
	}
	if o.Warmup < 1 {
		o.Warmup = 3
	}
	return o
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*metrics.Table, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig9a", "Speedup of LMS, DeepUM and Ideal over naive UM (V100-32GB)", Fig9a},
		{"fig9b", "Elapsed time (s) for 100 training iterations (V100-32GB)", Fig9b},
		{"fig9c", "Total energy consumption ratio over naive UM", Fig9c},
		{"table3", "Maximum possible batch sizes, LMS vs DeepUM", Table3},
		{"table4", "Correlation table sizes (MB)", Table4},
		{"table5", "Average page faults per training iteration", Table5},
		{"fig10", "Effects of prefetching and optimizations (normalized time)", Fig10},
		{"fig11", "Sensitivity to prefetch degree N (speedup and energy vs N=8)", Fig11},
		{"fig12", "UM block correlation table parameters (speedup over Config0)", Fig12},
		{"table7", "Maximum batch sizes vs TensorFlow-based approaches (V100-16GB)", Table7},
		{"fig13", "Speedup vs TensorFlow-based approaches over UM (V100-16GB)", Fig13},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// workloadCase is one (model, dataset, batch) cell of the paper's matrices.
type workloadCase struct {
	Model   string
	Dataset string
	Batches []int64
}

// fig9Cases is the model/batch matrix of Figure 9 and Tables 3-5.
func fig9Cases(quick bool) []workloadCase {
	cases := []workloadCase{
		{"gpt2-xl", "wikitext", []int64{3, 5, 7}},
		{"gpt2-l", "wikitext", []int64{3, 5, 7}},
		{"bert-large", "wikitext", []int64{14, 16, 18}},
		{"bert-base", "wikitext", []int64{29, 30, 31}},
		{"dlrm", "criteo", []int64{96000, 128000, 160000, 192000, 224000}},
		{"resnet152", "imagenet", []int64{1280, 1536, 1792}},
		{"resnet200", "imagenet", []int64{1024, 1280, 1536}},
	}
	if quick {
		for i := range cases {
			cases[i].Batches = cases[i].Batches[:1]
		}
	}
	return cases
}

// tf16Cases is the model/dataset matrix of the §6.4 comparison (Table 7 and
// Figure 13), evaluated on the V100-16GB configuration.
func tf16Cases() []workloadCase {
	return []workloadCase{
		{"resnet200", "cifar10", []int64{4200}},
		{"bert-large", "cola", []int64{25}},
		{"dcgan", "celeba", []int64{1400}},
		{"mobilenet", "cifar100", []int64{1200}},
	}
}

// runUM runs a workload under the given UM-side policy.
func runUM(o Options, params sim.Params, spec models.Spec, batch int64,
	policy engine.Policy, drv core.Options) (*engine.Result, error) {
	prog, err := models.Build(spec, batch, o.Scale)
	if err != nil {
		return nil, err
	}
	inj, err := o.injector()
	if err != nil {
		return nil, err
	}
	if o.Policy != "" && policy == engine.PolicyDeepUM {
		drv.Policy = o.Policy
	}
	return engine.Run(engine.Config{
		Params:        params,
		Program:       prog,
		Policy:        policy,
		DriverOptions: drv,
		Iterations:    o.Iterations,
		Warmup:        o.Warmup,
		Seed:          o.Seed,
		Chaos:         inj,
	})
}

// injector builds the per-run fault injector for UM-side runs, or nil when
// Options.Chaos is empty/"none". Each run gets a fresh injector so chaos
// draws stay reproducible per run rather than drifting across the suite.
func (o Options) injector() (*chaos.Injector, error) {
	scenario, err := chaos.ByName(o.Chaos)
	if err != nil {
		return nil, err
	}
	if !scenario.Active() {
		return nil, nil
	}
	seed := o.ChaosSeed
	if seed == 0 {
		seed = o.Seed
	}
	return chaos.NewInjector(scenario, seed), nil
}

// runBaseline runs a workload under a tensor-level baseline planner.
func runBaseline(o Options, params sim.Params, spec models.Spec, batch int64,
	pl baselines.Planner) (*baselines.Result, error) {
	prog, err := models.Build(spec, batch, o.Scale)
	if err != nil {
		return nil, err
	}
	return baselines.Run(baselines.Config{
		Params:     params,
		Program:    prog,
		Planner:    pl,
		Iterations: o.Iterations,
		Warmup:     o.Warmup,
	})
}

// speedupCell formats a speedup or "-" for a failed run (OOM), mirroring
// the missing bars of Figure 9.
func speedupCell(base sim.Duration, t sim.Duration, err error) (string, float64) {
	if err != nil || t <= 0 {
		return "-", 0
	}
	s := float64(base) / float64(t)
	return fmt.Sprintf("%.2f", s), s
}

// label renders "model b<batch>" row labels, using k-suffix for DLRM-sized
// batches.
func label(model string, batch int64) string {
	if batch >= 1000 && batch%1000 == 0 {
		return fmt.Sprintf("%s b%dk", model, batch/1000)
	}
	return fmt.Sprintf("%s b%d", model, batch)
}

// maxFeasibleBatch binary-searches the largest batch size for which feasible
// returns true, probing upward from lo first.
func maxFeasibleBatch(lo, hi int64, feasible func(b int64) bool) int64 {
	if !feasible(lo) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// fmtSscan wraps fmt.Sscan for the tests without importing fmt twice.
func fmtSscan(s string, args ...any) (int, error) { return fmt.Sscan(s, args...) }
