package experiments

import (
	"fmt"

	"deepum/internal/baselines"
	"deepum/internal/core"
	"deepum/internal/engine"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/sim"
)

// table3Cases are the Table 3 search ranges: (model, dataset, search floor
// and ceiling for the batch size).
type batchSearchCase struct {
	Model, Dataset string
	Lo, Hi         int64
}

// Table3 reproduces Table 3: the maximum batch size LMS and DeepUM can run
// on the V100-32GB with 512 GiB of host memory. Feasibility is decided by
// actually running one iteration: DeepUM fails on the host backing-store
// wall, LMS on device OOM (allocation failure after swapping everything
// swappable, including fragmentation failures of the caching pool).
func Table3(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.DefaultParams().Scale(o.Scale)
	cases := []batchSearchCase{
		{"gpt2-xl", "wikitext", 1, 64},
		{"gpt2-l", "wikitext", 1, 96},
		{"bert-large", "wikitext", 1, 512},
		{"bert-base", "wikitext", 1, 1024},
		{"dlrm", "criteo", 16000, 2048000},
		{"resnet200", "imagenet", 256, 4096},
		{"resnet152", "imagenet", 256, 4096},
	}
	if o.Quick {
		cases = cases[:2]
	}
	t := metrics.NewTable("table3", "Maximum possible batch sizes (V100-32GB, 512GiB host)",
		"model", "LMS", "DeepUM")
	// Feasibility probes only need to survive one iteration.
	probe := o
	probe.Iterations, probe.Warmup = 1, 1
	for _, c := range cases {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		feasLMS := func(b int64) bool {
			_, err := runBaseline(probe, params, spec, b, baselines.NewLMS())
			return err == nil
		}
		feasDU := func(b int64) bool {
			_, err := runUM(probe, params, spec, b, engine.PolicyDeepUM, core.DefaultOptions())
			return err == nil
		}
		lmsMax := maxFeasibleBatch(c.Lo, c.Hi, feasLMS)
		duMax := maxFeasibleBatch(c.Lo, c.Hi, feasDU)
		t.AddRow(c.Model, fmtBatch(lmsMax), fmtBatch(duMax))
	}
	t.Note = "paper: DeepUM runs 1.2x-13.7x larger batches than LMS"
	return t, nil
}

func fmtBatch(b int64) string {
	if b >= 1000 {
		return fmt.Sprintf("%dk", b/1000)
	}
	return fmt.Sprintf("%d", b)
}

// Table7 reproduces Table 7: maximum batch sizes of the TensorFlow-based
// approaches and DeepUM on a V100-16GB with host memory limited to 128 GiB
// (§6.4: "we limit the total CPU memory usage of DeepUM to 128GB to match
// the system configuration").
func Table7(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.V100_16GB()
	params.HostMemory = 128 * sim.GiB
	params = params.Scale(o.Scale)

	planners := []baselines.Planner{
		baselines.VDNN{}, baselines.AutoTM{}, baselines.NewSwapAdvisor(),
		baselines.Capuchin{}, baselines.Sentinel{},
	}
	searches := []batchSearchCase{
		{"resnet200", "cifar10", 256, 32768},
		{"bert-large", "cola", 1, 512},
		{"dcgan", "celeba", 64, 16384},
		{"mobilenet", "cifar100", 64, 16384},
	}
	if o.Quick {
		searches = searches[:2]
	}
	cols := []string{"system"}
	for _, s := range searches {
		cols = append(cols, fmt.Sprintf("%s(%s)", s.Model, s.Dataset))
	}
	t := metrics.NewTable("table7", "Maximum batch sizes (V100-16GB, 128GiB host)", cols...)
	probe := o
	probe.Iterations, probe.Warmup = 1, 1
	for _, pl := range planners {
		row := []any{pl.Name()}
		for _, c := range searches {
			spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
			feas := func(b int64) bool {
				_, err := runBaseline(probe, params, spec, b, pl)
				return err == nil
			}
			m := maxFeasibleBatch(c.Lo, c.Hi, feas)
			if m == 0 {
				row = append(row, "not work")
			} else {
				row = append(row, fmtBatch(m))
			}
		}
		t.AddRow(row...)
	}
	row := []any{"DeepUM"}
	for _, c := range searches {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		feas := func(b int64) bool {
			_, err := runUM(probe, params, spec, b, engine.PolicyDeepUM, core.DefaultOptions())
			return err == nil
		}
		row = append(row, fmtBatch(maxFeasibleBatch(c.Lo, c.Hi, feas)))
	}
	t.AddRow(row...)
	t.Note = "paper: DeepUM largest everywhere; vDNN 'not work' on BERT"
	return t, nil
}

// Fig13 reproduces Figure 13: speedup of the TensorFlow-based approaches,
// DeepUM and Ideal over naive UM on the V100-16GB configuration.
func Fig13(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.V100_16GB()
	params.HostMemory = 128 * sim.GiB
	params = params.Scale(o.Scale)

	planners := []baselines.Planner{
		baselines.VDNN{}, baselines.AutoTM{}, baselines.NewSwapAdvisor(),
		baselines.Capuchin{}, baselines.Sentinel{},
	}
	cols := []string{"workload"}
	for _, pl := range planners {
		cols = append(cols, pl.Name())
	}
	cols = append(cols, "DeepUM", "Ideal")
	t := metrics.NewTable("fig13", "Speedup over naive UM (V100-16GB)", cols...)

	sums := make([][]float64, len(planners)+2)
	for _, c := range tf16Cases() {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		b := c.Batches[0]
		um, err := runUM(o, params, spec, b, engine.PolicyUM, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("UM %s: %w", c.Model, err)
		}
		row := []any{label(c.Model, b)}
		for i, pl := range planners {
			res, err := runBaseline(o, params, spec, b, pl)
			var cell string
			var v float64
			if err != nil {
				cell = "-"
			} else {
				cell, v = speedupCell(um.IterTime(), res.IterTime(), nil)
			}
			row = append(row, cell)
			sums[i] = append(sums[i], v)
		}
		du, duErr := runUM(o, params, spec, b, engine.PolicyDeepUM, core.DefaultOptions())
		var dc string
		var dv float64
		if duErr != nil {
			dc = "-"
		} else {
			dc, dv = speedupCell(um.IterTime(), du.IterTime(), nil)
		}
		idl, err := runUM(o, params, spec, b, engine.PolicyIdeal, core.Options{})
		if err != nil {
			return nil, err
		}
		ic, iv := speedupCell(um.IterTime(), idl.IterTime(), nil)
		row = append(row, dc, ic)
		sums[len(planners)] = append(sums[len(planners)], dv)
		sums[len(planners)+1] = append(sums[len(planners)+1], iv)
		t.AddRow(row...)
	}
	gm := []any{"GMEAN"}
	for _, s := range sums {
		gm = append(gm, fmt.Sprintf("%.2f", metrics.Geomean(s)))
	}
	t.AddRow(gm...)
	t.Note = "paper: DeepUM faster than all but comparable to Sentinel"
	return t, nil
}
