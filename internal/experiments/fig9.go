package experiments

import (
	"fmt"

	"deepum/internal/baselines"
	"deepum/internal/core"
	"deepum/internal/engine"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/sim"
)

// fig9Row holds one (model,batch) cell's measurements across systems.
type fig9Row struct {
	label                    string
	um, lms, lmsMod, du, idl sim.Duration
	lmsErr, lmsModErr, duErr error
	umEnergy, lmsE, duE      float64
	umFaults, duFaults       int64
	duTableBytes             int64
}

// runFig9Matrix executes the Figure 9 workload matrix once and shares the
// measurements across fig9a/b/c and Tables 4-5.
func runFig9Matrix(o Options) ([]fig9Row, error) {
	o = o.normalize()
	params := sim.DefaultParams().Scale(o.Scale)
	var rows []fig9Row
	for _, c := range fig9Cases(o.Quick) {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		for _, b := range c.Batches {
			um, err := runUM(o, params, spec, b, engine.PolicyUM, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("UM %s b%d: %w", c.Model, b, err)
			}
			du, duErr := runUM(o, params, spec, b, engine.PolicyDeepUM, core.DefaultOptions())
			idl, err := runUM(o, params, spec, b, engine.PolicyIdeal, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("Ideal %s b%d: %w", c.Model, b, err)
			}
			lms, lmsErr := runBaseline(o, params, spec, b, baselines.NewLMS())
			lmsMod, lmsModErr := runBaseline(o, params, spec, b, baselines.NewLMSMod())

			row := fig9Row{
				label:     label(c.Model, b),
				um:        um.IterTime(),
				idl:       idl.IterTime(),
				lmsErr:    lmsErr,
				lmsModErr: lmsModErr,
				duErr:     duErr,
				umEnergy:  um.EnergyJoules,
				umFaults:  um.FaultsPerIter,
			}
			if lmsErr == nil {
				row.lms = lms.IterTime()
				row.lmsE = lms.EnergyJoules
			}
			if lmsModErr == nil {
				row.lmsMod = lmsMod.IterTime()
			}
			if duErr == nil {
				row.du = du.IterTime()
				row.duE = du.EnergyJoules
				row.duFaults = du.FaultsPerIter
				row.duTableBytes = du.DriverTableBytes
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Fig9a reproduces Figure 9(a): training-throughput speedup of LMS, LMS-mod,
// DeepUM and Ideal over naive UM on a V100-32GB.
func Fig9a(o Options) (*metrics.Table, error) {
	rows, err := runFig9Matrix(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("fig9a", "Speedup over naive UM (V100-32GB)",
		"workload", "LMS", "LMS-mod", "DeepUM", "Ideal")
	var lmsS, lmsModS, duS, idlS []float64
	for _, r := range rows {
		lc, lv := speedupCell(r.um, r.lms, r.lmsErr)
		mc, mv := speedupCell(r.um, r.lmsMod, r.lmsModErr)
		dc, dv := speedupCell(r.um, r.du, r.duErr)
		ic, iv := speedupCell(r.um, r.idl, nil)
		t.AddRow(r.label, lc, mc, dc, ic)
		lmsS = append(lmsS, lv)
		lmsModS = append(lmsModS, mv)
		duS = append(duS, dv)
		idlS = append(idlS, iv)
	}
	t.AddRow("GMEAN",
		fmt.Sprintf("%.2f", metrics.Geomean(lmsS)),
		fmt.Sprintf("%.2f", metrics.Geomean(lmsModS)),
		fmt.Sprintf("%.2f", metrics.Geomean(duS)),
		fmt.Sprintf("%.2f", metrics.Geomean(idlS)))
	t.Note = "paper: DeepUM 3.06x over UM and 1.11x over LMS on average; '-' = OOM"
	return t, nil
}

// Fig9b reproduces Figure 9(b): elapsed seconds for 100 training iterations.
func Fig9b(o Options) (*metrics.Table, error) {
	rows, err := runFig9Matrix(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("fig9b", "Elapsed time (s) for 100 training iterations",
		"workload", "UM", "LMS", "LMS-mod", "DeepUM")
	secs := func(d sim.Duration, err error) string {
		if err != nil || d <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", (100 * d).Seconds())
	}
	for _, r := range rows {
		t.AddRow(r.label, secs(r.um, nil), secs(r.lms, r.lmsErr), secs(r.lmsMod, r.lmsModErr), secs(r.du, r.duErr))
	}
	t.Note = "steady-state iteration time x100; scaled machine, compare ratios not absolutes"
	return t, nil
}

// Fig9c reproduces Figure 9(c): total energy consumption ratio over UM.
func Fig9c(o Options) (*metrics.Table, error) {
	rows, err := runFig9Matrix(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("fig9c", "Energy consumption ratio over naive UM (lower is better)",
		"workload", "LMS", "DeepUM")
	var lmsR, duR []float64
	for _, r := range rows {
		lc := "-"
		if r.lmsErr == nil && r.umEnergy > 0 {
			v := r.lmsE / r.umEnergy
			lc = fmt.Sprintf("%.2f", v)
			lmsR = append(lmsR, v)
		}
		dc := "-"
		if r.duErr == nil && r.umEnergy > 0 {
			v := r.duE / r.umEnergy
			dc = fmt.Sprintf("%.2f", v)
			duR = append(duR, v)
		}
		t.AddRow(r.label, lc, dc)
	}
	t.AddRow("GMEAN", fmt.Sprintf("%.2f", metrics.Geomean(lmsR)), fmt.Sprintf("%.2f", metrics.Geomean(duR)))
	t.Note = "paper: LMS 32% and DeepUM 35% of UM's energy on average"
	return t, nil
}

// Table4 reproduces Table 4: correlation-table memory per model and batch.
func Table4(o Options) (*metrics.Table, error) {
	rows, err := runFig9Matrix(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("table4", "Correlation table size",
		"workload", "table size (MB)")
	for _, r := range rows {
		if r.duErr != nil {
			t.AddRow(r.label, "-")
			continue
		}
		// Undo the scale divisor: table count scales with model size.
		t.AddRow(r.label, fmt.Sprintf("%d", r.duTableBytes*o.normalize().Scale>>20))
	}
	t.Note = "CPU-side memory; scaled back to paper-sized models"
	return t, nil
}

// Table5 reproduces Table 5: average page faults per training iteration for
// naive UM and DeepUM.
func Table5(o Options) (*metrics.Table, error) {
	rows, err := runFig9Matrix(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("table5", "Average page faults per training iteration",
		"workload", "UM faults", "DeepUM faults", "ratio")
	for _, r := range rows {
		ratio := "-"
		if r.duErr == nil && r.umFaults > 0 {
			v := 100 * float64(r.duFaults) / float64(r.umFaults)
			if v < 0.1 {
				ratio = "<0.1%"
			} else {
				ratio = fmt.Sprintf("%.1f%%", v)
			}
		}
		t.AddRow(r.label, r.umFaults, r.duFaults, ratio)
	}
	t.Note = "paper: DeepUM reduces faults to <0.1%-1.8% of UM's"
	return t, nil
}
