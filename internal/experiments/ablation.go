package experiments

import (
	"fmt"

	"deepum/internal/core"
	"deepum/internal/correlation"
	"deepum/internal/engine"
	"deepum/internal/metrics"
	"deepum/internal/models"
	"deepum/internal/sim"
)

// ablationCases restricts the Figure 10-12 sweeps to one representative
// batch per model so the sweeps stay tractable.
func ablationCases(quick bool) []workloadCase {
	cases := []workloadCase{
		{"gpt2-xl", "wikitext", []int64{5}},
		{"gpt2-l", "wikitext", []int64{5}},
		{"bert-large", "wikitext", []int64{16}},
		{"bert-base", "wikitext", []int64{31}},
		{"dlrm", "criteo", []int64{128000}},
		{"resnet152", "imagenet", []int64{1536}},
		{"resnet200", "imagenet", []int64{1280}},
	}
	if quick {
		cases = cases[:3]
	}
	return cases
}

// Fig10 reproduces Figure 10: execution time normalized to naive UM with
// prefetching, +pre-eviction, and +invalidation enabled cumulatively.
func Fig10(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.DefaultParams().Scale(o.Scale)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"Prefetch", core.Options{Prefetch: true, Degree: 32}},
		{"Prefetch+Preevict", core.Options{Prefetch: true, Preevict: true, Degree: 32}},
		{"Prefetch+Preevict+Invalidate", core.Options{Prefetch: true, Preevict: true, Invalidate: true, Degree: 32}},
	}
	t := metrics.NewTable("fig10", "Normalized execution time over naive UM (lower is better)",
		"workload", configs[0].name, configs[1].name, configs[2].name)
	sums := make([][]float64, len(configs))
	for _, c := range ablationCases(o.Quick) {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		b := c.Batches[0]
		um, err := runUM(o, params, spec, b, engine.PolicyUM, core.Options{})
		if err != nil {
			return nil, err
		}
		row := []any{label(c.Model, b)}
		for i, cfg := range configs {
			res, err := runUM(o, params, spec, b, engine.PolicyDeepUM, cfg.opts)
			if err != nil {
				return nil, err
			}
			v := metrics.Ratio(float64(res.IterTime()), float64(um.IterTime()))
			row = append(row, fmt.Sprintf("%.2f", v))
			sums[i] = append(sums[i], v)
		}
		t.AddRow(row...)
	}
	gm := []any{"GMEAN"}
	for _, s := range sums {
		gm = append(gm, fmt.Sprintf("%.2f", metrics.Geomean(s)))
	}
	t.AddRow(gm...)
	t.Note = "paper: 45.6% / 63.7% / 66.7% average execution-time reduction"
	return t, nil
}

// fig11Degrees is the prefetch-degree sweep of Figure 11.
var fig11Degrees = []int{1, 8, 16, 32, 64, 128}

// Fig11 reproduces Figure 11: speedup (a) and energy ratio (b) for varying
// prefetch degree N, both normalized to N=8.
func Fig11(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.DefaultParams().Scale(o.Scale)
	cols := []string{"workload", "metric"}
	for _, n := range fig11Degrees {
		cols = append(cols, fmt.Sprintf("N=%d", n))
	}
	t := metrics.NewTable("fig11", "Sensitivity to the degree of prefetching (vs N=8)", cols...)
	cases := ablationCases(o.Quick)
	for _, c := range cases {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		b := c.Batches[0]
		times := map[int]sim.Duration{}
		energy := map[int]float64{}
		for _, n := range fig11Degrees {
			opts := core.DefaultOptions()
			opts.Degree = n
			res, err := runUM(o, params, spec, b, engine.PolicyDeepUM, opts)
			if err != nil {
				return nil, err
			}
			times[n] = res.IterTime()
			energy[n] = res.EnergyJoules
		}
		speedRow := []any{label(c.Model, b), "speedup"}
		energyRow := []any{label(c.Model, b), "energy"}
		for _, n := range fig11Degrees {
			speedRow = append(speedRow, fmt.Sprintf("%.2f", metrics.Ratio(float64(times[8]), float64(times[n]))))
			energyRow = append(energyRow, fmt.Sprintf("%.2f", metrics.Ratio(energy[n], energy[8])))
		}
		t.AddRow(speedRow...)
		t.AddRow(energyRow...)
	}
	t.Note = "paper: sweet spot at N=32 (highest speedup, lowest energy)"
	return t, nil
}

// table6Configs are the Table 6 block-table configurations.
func table6Configs() []correlation.BlockTableConfig {
	mk := func(assoc, succs, rows int) correlation.BlockTableConfig {
		return correlation.BlockTableConfig{NumRows: rows, Assoc: assoc, NumSuccs: succs, NumLevels: 1}
	}
	return []correlation.BlockTableConfig{
		mk(2, 4, 128), mk(2, 8, 128), mk(4, 4, 128),
		mk(2, 4, 512), mk(2, 8, 512), mk(4, 4, 512),
		mk(2, 4, 1024), mk(2, 8, 1024), mk(4, 4, 1024),
		mk(2, 4, 2048), mk(2, 8, 2048), mk(4, 4, 2048),
		mk(2, 4, 4096),
	}
}

// Fig12 reproduces Table 6 + Figure 12: speedup of each UM-block correlation
// table configuration over Config0.
func Fig12(o Options) (*metrics.Table, error) {
	o = o.normalize()
	params := sim.DefaultParams().Scale(o.Scale)
	configs := table6Configs()
	cols := []string{"workload"}
	for i := range configs {
		cols = append(cols, fmt.Sprintf("Cfg%d", i))
	}
	t := metrics.NewTable("fig12", "Speedup over Config0 for block-table parameters (Table 6 configs)", cols...)
	cases := ablationCases(o.Quick)
	if o.Quick {
		cases = cases[:2]
	}
	sums := make([][]float64, len(configs))
	for _, c := range cases {
		spec := models.Spec{Model: c.Model, Dataset: c.Dataset}
		b := c.Batches[0]
		var base sim.Duration
		row := []any{label(c.Model, b)}
		for i, cfg := range configs {
			opts := core.DefaultOptions()
			opts.TableConfig = cfg
			res, err := runUM(o, params, spec, b, engine.PolicyDeepUM, opts)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = res.IterTime()
			}
			v := metrics.Ratio(float64(base), float64(res.IterTime()))
			row = append(row, fmt.Sprintf("%.2f", v))
			sums[i] = append(sums[i], v)
		}
		t.AddRow(row...)
	}
	gm := []any{"GMEAN"}
	for _, s := range sums {
		gm = append(gm, fmt.Sprintf("%.2f", metrics.Geomean(s)))
	}
	t.AddRow(gm...)
	t.Note = "paper: Config9 (2048 rows, 2-way, 4 successors) performs best"
	return t, nil
}
