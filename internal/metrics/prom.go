package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A minimal Prometheus client: counters, gauges, and histograms rendered in
// the text exposition format (version 0.0.4) that every Prometheus-family
// scraper understands. Only the features the supervisor and serve binary
// need are implemented — no dependency on the official client library,
// matching the repo's no-new-deps rule.

// Registry holds a set of named metric families and renders them with
// WriteText. All methods are safe for concurrent use; the get-or-create
// accessors return the existing metric when called twice with the same
// name and labels.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	}
	return "gauge"
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	order   []string // label signatures in creation order (sorted at render)
	series  map[string]any
	buckets []float64 // histogram families only
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) lookup(name, help string, kind metricKind) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]any{}}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s",
			name, f.kind.promType(), kind.promType()))
	}
	return f
}

// labelSig renders labels deterministically: sorted by key, escaped values.
func labelSig(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes backslash, double-quote, and newline exactly as the
		// text exposition format requires.
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the counter with the given name and labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindCounter)
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := &Counter{}
	f.series[sig] = c
	f.order = append(f.order, sig)
	return c
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGauge)
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	f.series[sig] = g
	f.order = append(f.order, sig)
	return g
}

// GaugeFunc registers a gauge whose value is sampled at scrape time, for
// values that already live elsewhere (queue depths, committed bytes).
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindGaugeFunc)
	sig := labelSig(labels)
	if _, ok := f.series[sig]; ok {
		return
	}
	f.series[sig] = fn
	f.order = append(f.order, sig)
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []int64   // per-bucket (non-cumulative) counts
	count   int64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.buckets {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// snapshot returns cumulative bucket counts, total count, and sum.
func (h *Histogram) snapshot() ([]int64, int64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]int64, len(h.counts))
	var run int64
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return cum, h.count, h.sum
}

// Histogram returns the histogram with the given name, labels, and upper
// bounds (ascending; the +Inf bucket is implicit), creating it on first
// use. Buckets are fixed by the first registration of the family; the
// family's first registration must supply at least one bound (a
// buckets-less histogram would be indistinguishable from one whose family
// was created empty, letting a later caller silently install different
// buckets), so an empty list panics like a kind mismatch.
func (r *Registry) Histogram(name, help string, labels map[string]string, buckets []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookup(name, help, kindHistogram)
	if f.buckets == nil {
		if len(buckets) == 0 {
			panic(fmt.Sprintf("metrics: %s: first histogram registration must supply buckets", name))
		}
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{buckets: f.buckets, counts: make([]int64, len(f.buckets))}
	f.series[sig] = h
	f.order = append(f.order, sig)
	return h
}

// famSnapshot is an immutable copy of one family's identity and series,
// taken under Registry.mu so rendering can proceed without the lock.
type famSnapshot struct {
	name   string
	help   string
	kind   metricKind
	sigs   []string
	series []any
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, families and series in sorted order so consecutive
// scrapes of unchanged values are byte-identical.
//
// The registry lock is held only while snapshotting family structure
// (sigs and series values); rendering — including GaugeFunc callbacks,
// which may take their owner's locks (e.g. the supervisor's) — happens
// outside r.mu. This keeps scrapes safe against concurrent lazy series
// creation and preserves the r.mu-before-owner-lock ordering.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	snaps := make([]famSnapshot, 0, len(names))
	for _, n := range names {
		f := r.fams[n]
		sigs := append([]string(nil), f.order...)
		sort.Strings(sigs)
		series := make([]any, len(sigs))
		for i, sig := range sigs {
			series[i] = f.series[sig]
		}
		snaps = append(snaps, famSnapshot{name: f.name, help: f.help, kind: f.kind, sigs: sigs, series: series})
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for i, sig := range f.sigs {
			if err := writeSeries(w, f, sig, f.series[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f famSnapshot, sig string, m any) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name, sig), m.(*Counter).Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, sig), fmtFloat(m.(*Gauge).Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name, sig), fmtFloat(m.(func() float64)()))
		return err
	case kindHistogram:
		h := m.(*Histogram)
		cum, count, sum := h.snapshot()
		for i, ub := range h.buckets {
			le := fmt.Sprintf("le=%q", fmtFloat(ub))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_bucket", joinSig(sig, le)), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_bucket", joinSig(sig, `le="+Inf"`)), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(f.name+"_sum", sig), fmtFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", seriesName(f.name+"_count", sig), count)
		return err
	}
	return nil
}

func seriesName(name, sig string) string {
	if sig == "" {
		return name
	}
	return name + "{" + sig + "}"
}

func joinSig(sig, extra string) string {
	if sig == "" {
		return extra
	}
	return sig + "," + extra
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
