package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("t1", "A test table", "name", "value")
	tbl.AddRow("alpha", 1.2345)
	tbl.AddRow("beta", "raw")
	tbl.AddRow("gamma", 42)
	tbl.Note = "a note"
	out := tbl.String()
	for _, want := range []string{"== t1: A test table ==", "alpha", "1.23", "raw", "42", "note: a note", "name", "value"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	// Column alignment: all data rows render at equal width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 6 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %f, want 4", g)
	}
	// Non-positive entries (missing data) are ignored, like the paper's
	// absent LMS bars.
	if g := Geomean([]float64{2, 0, 8, -1}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean with gaps = %f, want 4", g)
	}
	if g := Geomean([]float64{0, -3}); g != 0 {
		t.Fatalf("geomean of only-invalid = %f, want 0", g)
	}
}

// TestGeomeanQuick: the geometric mean always lies between min and max of
// the positive inputs.
func TestGeomeanQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		var vals []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r%1000) / 10
			vals = append(vals, v)
			if v > 0 {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		g := Geomean(vals)
		if math.IsInf(lo, 1) {
			return g == 0
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio broken")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("ratio by zero must be 0")
	}
}
