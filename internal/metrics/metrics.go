// Package metrics holds the result-table representation shared by the
// experiment harness, the bench targets, and the CLI tools: simple tables
// with aligned text rendering, plus the geometric-mean helper the paper uses
// for its summary bars (GMEAN in Figures 9, 12, 13).
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Table is one reproduced paper artifact: a title, column headers, and rows.
type Table struct {
	ID    string
	Title string
	Note  string
	Cols  []string
	Rows  [][]string
}

// NewTable constructs a table with the given identity and columns.
func NewTable(id, title string, cols ...string) *Table {
	return &Table{ID: id, Title: title, Cols: cols}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Geomean returns the geometric mean of the values, ignoring non-positive
// entries (missing data points, like the paper's absent LMS bars).
func Geomean(vals []float64) float64 {
	var sum float64
	n := 0
	for _, v := range vals {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b guarding against division by zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
