package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestTransitionLogRecordAndCount(t *testing.T) {
	var l TransitionLog
	if l.Len() != 0 || l.Transitions() != nil || l.Count("", "") != 0 {
		t.Fatal("zero-value log not empty")
	}
	l.Record(100, "closed", "open", "8 consecutive failures")
	l.Record(600, "open", "half-open", "cooldown elapsed")
	l.Record(650, "half-open", "open", "probe failed")
	l.Record(1200, "open", "half-open", "cooldown elapsed")
	l.Record(1250, "half-open", "closed", "probe delivered")

	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	tr := l.Transitions()
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatalf("transitions out of order at %d: %v", i, tr)
		}
	}
	if got := l.Count("", "open"); got != 2 {
		t.Fatalf("Count(any->open) = %d, want 2", got)
	}
	if got := l.Count("half-open", ""); got != 2 {
		t.Fatalf("Count(half-open->any) = %d, want 2", got)
	}
	if got := l.Count("closed", "open"); got != 1 {
		t.Fatalf("Count(closed->open) = %d, want 1", got)
	}
	if got := l.Count("open", "closed"); got != 0 {
		t.Fatalf("Count(open->closed) = %d, want 0", got)
	}
}

func TestTransitionLogNilSafe(t *testing.T) {
	var l *TransitionLog
	if l.Len() != 0 || l.Transitions() != nil || l.Count("a", "b") != 0 {
		t.Fatal("nil log reads are not inert")
	}
	if l.String() != "(no transitions)" {
		t.Fatalf("nil String = %q", l.String())
	}
}

func TestTransitionLogString(t *testing.T) {
	var l TransitionLog
	if l.String() != "(no transitions)" {
		t.Fatalf("empty String = %q", l.String())
	}
	l.Record(42, "closed", "open", "link wedged")
	s := l.String()
	for _, want := range []string{"42ns", "closed->open", "link wedged"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

// TestSyncTransitionLogConcurrent hammers the concurrent log from many
// goroutines (run under -race in CI) and checks nothing is lost and
// snapshots are copies.
func TestSyncTransitionLogConcurrent(t *testing.T) {
	var l SyncTransitionLog
	const writers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Record(int64(i), "queued", "running", "worker")
			}
		}(w)
	}
	// Concurrent reads while writers run.
	for i := 0; i < 10; i++ {
		_ = l.Transitions()
		_ = l.Count("queued", "running")
	}
	wg.Wait()
	if l.Len() != writers*each {
		t.Fatalf("Len = %d, want %d", l.Len(), writers*each)
	}
	if l.Count("queued", "running") != writers*each {
		t.Fatalf("Count = %d, want %d", l.Count("queued", "running"), writers*each)
	}
	snap := l.Transitions()
	snap[0].From = "mutated"
	if l.Transitions()[0].From != "queued" {
		t.Fatal("Transitions returned a shared slice, not a copy")
	}
}

// TestSyncTransitionLogNil: nil reads are inert, matching TransitionLog.
func TestSyncTransitionLogNil(t *testing.T) {
	var l *SyncTransitionLog
	if l.Transitions() != nil || l.Len() != 0 || l.Count("", "") != 0 {
		t.Fatal("nil SyncTransitionLog reads are not inert")
	}
}
