package metrics

import (
	"strings"
	"testing"
)

func TestTransitionLogRecordAndCount(t *testing.T) {
	var l TransitionLog
	if l.Len() != 0 || l.Transitions() != nil || l.Count("", "") != 0 {
		t.Fatal("zero-value log not empty")
	}
	l.Record(100, "closed", "open", "8 consecutive failures")
	l.Record(600, "open", "half-open", "cooldown elapsed")
	l.Record(650, "half-open", "open", "probe failed")
	l.Record(1200, "open", "half-open", "cooldown elapsed")
	l.Record(1250, "half-open", "closed", "probe delivered")

	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	tr := l.Transitions()
	for i := 1; i < len(tr); i++ {
		if tr[i].At < tr[i-1].At {
			t.Fatalf("transitions out of order at %d: %v", i, tr)
		}
	}
	if got := l.Count("", "open"); got != 2 {
		t.Fatalf("Count(any->open) = %d, want 2", got)
	}
	if got := l.Count("half-open", ""); got != 2 {
		t.Fatalf("Count(half-open->any) = %d, want 2", got)
	}
	if got := l.Count("closed", "open"); got != 1 {
		t.Fatalf("Count(closed->open) = %d, want 1", got)
	}
	if got := l.Count("open", "closed"); got != 0 {
		t.Fatalf("Count(open->closed) = %d, want 0", got)
	}
}

func TestTransitionLogNilSafe(t *testing.T) {
	var l *TransitionLog
	if l.Len() != 0 || l.Transitions() != nil || l.Count("a", "b") != 0 {
		t.Fatal("nil log reads are not inert")
	}
	if l.String() != "(no transitions)" {
		t.Fatalf("nil String = %q", l.String())
	}
}

func TestTransitionLogString(t *testing.T) {
	var l TransitionLog
	if l.String() != "(no transitions)" {
		t.Fatalf("empty String = %q", l.String())
	}
	l.Record(42, "closed", "open", "link wedged")
	s := l.String()
	for _, want := range []string{"42ns", "closed->open", "link wedged"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}
