package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("deepum_submissions_total", "Run submissions by result.",
		map[string]string{"result": "accepted"})
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	r.Counter("deepum_submissions_total", "Run submissions by result.",
		map[string]string{"result": "queue_full"}).Inc()
	g := r.Gauge("deepum_committed_bytes", "GPU memory committed to admitted runs.", nil)
	g.Set(1024)
	g.Add(512)
	r.GaugeFunc("deepum_runs", "Runs by state.", map[string]string{"state": "running"},
		func() float64 { return 3 })
	h := r.Histogram("deepum_run_seconds", "Run wall time.", nil, []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(100)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP deepum_committed_bytes GPU memory committed to admitted runs.",
		"# TYPE deepum_committed_bytes gauge",
		"deepum_committed_bytes 1536",
		"# TYPE deepum_run_seconds histogram",
		`deepum_run_seconds_bucket{le="0.1"} 1`,
		`deepum_run_seconds_bucket{le="1"} 2`,
		`deepum_run_seconds_bucket{le="10"} 2`,
		`deepum_run_seconds_bucket{le="+Inf"} 3`,
		"deepum_run_seconds_sum 100.55",
		"deepum_run_seconds_count 3",
		"# TYPE deepum_runs gauge",
		`deepum_runs{state="running"} 3`,
		"# TYPE deepum_submissions_total counter",
		`deepum_submissions_total{result="accepted"} 3`,
		`deepum_submissions_total{result="queue_full"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Families must appear in sorted order and scrapes must be stable.
	if i, j := strings.Index(out, "deepum_committed_bytes"), strings.Index(out, "deepum_submissions_total"); i > j {
		t.Errorf("families not sorted:\n%s", out)
	}
	var b2 strings.Builder
	if err := r.WriteText(&b2); err != nil {
		t.Fatalf("second WriteText: %v", err)
	}
	if b2.String() != out {
		t.Error("two scrapes of unchanged registry differ")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", map[string]string{"l": "v"})
	b := r.Counter("x_total", "", map[string]string{"l": "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "", map[string]string{"l": "w"}); c == a {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("y_total", "", nil)
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("c_total", "", nil).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", nil, []float64{1, 10}).Observe(float64(i))
				// Lazily create fresh series while other goroutines scrape,
				// mimicking per-state/per-route series appearing at runtime.
				r.Counter("lazy_total", "",
					map[string]string{"g": string(rune('a' + g)), "i": string(rune('a' + i%26))}).Inc()
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "", nil).Value(); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
}

func TestHistogramEmptyBucketsPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("first histogram registration with no buckets did not panic")
		}
	}()
	r.Histogram("z_seconds", "", nil, nil)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("e_total", "", map[string]string{"path": `a"b\c`}).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `e_total{path="a\"b\\c"} 1`) {
		t.Errorf("bad escaping:\n%s", b.String())
	}
}
