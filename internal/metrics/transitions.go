package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// StateTransition records one state-machine transition with the virtual
// timestamp (nanoseconds of simulated time) at which it happened. The engine's
// prefetch circuit breaker logs its closed/open/half-open transitions here so
// a degraded run can be audited after the fact.
type StateTransition struct {
	At     int64 // virtual nanoseconds since run start
	From   string
	To     string
	Reason string
}

// String renders the transition for logs and CLI output.
func (t StateTransition) String() string {
	return fmt.Sprintf("%dns %s->%s (%s)", t.At, t.From, t.To, t.Reason)
}

// TransitionLog accumulates state transitions in occurrence order. The zero
// value is ready to use; it is not safe for concurrent use (the discrete-event
// engine is single-threaded).
type TransitionLog struct {
	transitions []StateTransition
}

// Record appends one transition.
func (l *TransitionLog) Record(at int64, from, to, reason string) {
	l.transitions = append(l.transitions, StateTransition{At: at, From: from, To: to, Reason: reason})
}

// Transitions returns the recorded transitions in order. The slice is shared;
// callers must not modify it.
func (l *TransitionLog) Transitions() []StateTransition {
	if l == nil {
		return nil
	}
	return l.transitions
}

// Len returns how many transitions were recorded.
func (l *TransitionLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.transitions)
}

// Count returns how many recorded transitions went from `from` to `to`; an
// empty string matches any state on that side.
func (l *TransitionLog) Count(from, to string) int64 {
	if l == nil {
		return 0
	}
	var n int64
	for _, t := range l.transitions {
		if (from == "" || t.From == from) && (to == "" || t.To == to) {
			n++
		}
	}
	return n
}

// String renders the full log, one transition per line.
func (l *TransitionLog) String() string {
	if l == nil || len(l.transitions) == 0 {
		return "(no transitions)"
	}
	var b strings.Builder
	for _, t := range l.transitions {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SyncTransitionLog is a TransitionLog safe for concurrent use. The
// single-threaded engine keeps the lock-free variant; the multi-run
// supervisor, whose workers record run-state transitions from many
// goroutines, uses this one. The zero value is ready to use.
type SyncTransitionLog struct {
	mu  sync.Mutex
	log TransitionLog
}

// Record appends one transition.
func (l *SyncTransitionLog) Record(at int64, from, to, reason string) {
	l.mu.Lock()
	l.log.Record(at, from, to, reason)
	l.mu.Unlock()
}

// Transitions returns a copy of the recorded transitions in order (a copy,
// unlike TransitionLog.Transitions, so the caller holds no reference into
// a log that other goroutines keep appending to).
func (l *SyncTransitionLog) Transitions() []StateTransition {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]StateTransition(nil), l.log.transitions...)
}

// Len returns how many transitions were recorded.
func (l *SyncTransitionLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Len()
}

// Count returns how many recorded transitions went from `from` to `to`; an
// empty string matches any state on that side.
func (l *SyncTransitionLog) Count(from, to string) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Count(from, to)
}
