package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenEvents is a hand-built stream exercising every phase the writer
// emits (M metadata, X spans, i instants, C counters) across multiple
// tracks, with a deliberate out-of-order record to prove the writer sorts.
func goldenEvents() []Event {
	return []Event{
		{TS: 0, Dur: 20_000, Kind: KindIteration, Track: TrackRun, Block: 0, Arg: 24},
		{TS: 1_000, Dur: 6_000, Kind: KindKernel, Track: TrackGPU, Name: "conv1"},
		{TS: 1_500, Dur: 2_500, Kind: KindFaultBatch, Track: TrackFaultHandler, Arg: 96, Arg2: 3},
		{TS: 1_800, Dur: 1_200, Kind: KindLinkTransfer, Track: TrackLinkH2D, Name: "h2d", Arg: 2 << 20},
		// Recorded out of timestamp order on purpose.
		{TS: 1_600, Kind: KindPrefetchIssue, Track: TrackDriver, Block: 4},
		{TS: 3_200, Dur: 800, Kind: KindPrefetch, Track: TrackDriver, Block: 4, Arg: 2 << 20},
		{TS: 4_500, Kind: KindPrefetchHit, Track: TrackGPU, Block: 4, Arg: 500},
		{TS: 5_000, Kind: KindEvict, Track: TrackFaultHandler, Block: 9, Arg: 2 << 20, Arg2: EvictCritical},
		{TS: 5_200, Dur: 700, Kind: KindLinkTransfer, Track: TrackLinkD2H, Name: "d2h", Arg: 2 << 20},
		{TS: 6_000, Kind: KindStall, Track: TrackGPU, Block: 5, Arg: 250},
		{TS: 7_000, Kind: KindBreaker, Track: TrackBreaker, Name: "closed->open"},
		{TS: 8_000, Kind: KindQueueDepth, Track: TrackPipeline, Name: "faultq", Arg: 5},
		{TS: 9_000, Kind: KindMark, Track: TrackRun, Name: "checkpoint"},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output drifted from golden file; run `go test ./internal/obs -run Golden -update` if the change is intended\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestChromeTraceSchema decodes the written JSON generically and checks the
// trace-event contract field by field: phase/ts/pid/tid on every event,
// dur on complete events, and monotonically non-decreasing timestamps.
func TestChromeTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var top struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	lastTS := -1.0
	for i, ce := range top.TraceEvents {
		ph, _ := ce["ph"].(string)
		switch ph {
		case "M", "X", "i", "C":
		default:
			t.Fatalf("event %d: bad phase %v", i, ce["ph"])
		}
		if _, ok := ce["name"].(string); !ok {
			t.Fatalf("event %d: missing name", i)
		}
		if pid, ok := ce["pid"].(float64); !ok || pid != tracePID {
			t.Fatalf("event %d: pid = %v, want %d", i, ce["pid"], tracePID)
		}
		tid, ok := ce["tid"].(float64)
		if !ok || tid < 0 || tid >= float64(numTracks) {
			t.Fatalf("event %d: tid = %v out of range", i, ce["tid"])
		}
		if ph == "M" {
			continue
		}
		ts, ok := ce["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d: ts = %v", i, ce["ts"])
		}
		if ts < lastTS {
			t.Fatalf("event %d: ts %v goes backwards (previous %v)", i, ts, lastTS)
		}
		lastTS = ts
		if ph == "X" {
			if dur, ok := ce["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("event %d: complete event with dur = %v", i, ce["dur"])
			}
		}
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	in := goldenEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	out, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost events: %d -> %d", len(in), len(out))
	}
	// The writer sorts by TS; compare against the sorted view of the input.
	byTS := append([]Event(nil), in...)
	for i := 1; i < len(byTS); i++ {
		for j := i; j > 0 && byTS[j].TS < byTS[j-1].TS; j-- {
			byTS[j], byTS[j-1] = byTS[j-1], byTS[j]
		}
	}
	for i := range out {
		if out[i] != byTS[i] {
			t.Errorf("event %d: got %+v, want %+v", i, out[i], byTS[i])
		}
	}
}

func TestReadChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [`,
		"empty":         `{"traceEvents": []}`,
		"missing name":  `{"traceEvents": [{"ph":"i","ts":1,"pid":1,"tid":0,"s":"t","args":{"k":"mark"}}]}`,
		"bad pid":       `{"traceEvents": [{"name":"m","ph":"i","ts":1,"pid":7,"tid":0,"args":{"k":"mark"}}]}`,
		"bad tid":       `{"traceEvents": [{"name":"m","ph":"i","ts":1,"pid":1,"tid":99,"args":{"k":"mark"}}]}`,
		"bad phase":     `{"traceEvents": [{"name":"m","ph":"Z","ts":1,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		"negative ts":   `{"traceEvents": [{"name":"m","ph":"i","ts":-1,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		"ts backwards":  `{"traceEvents": [{"name":"m","ph":"i","ts":5,"pid":1,"tid":0,"args":{"k":"mark"}},{"name":"m","ph":"i","ts":4,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		"X without dur": `{"traceEvents": [{"name":"m","ph":"X","ts":1,"pid":1,"tid":0,"args":{"k":"kernel"}}]}`,
		"negative dur":  `{"traceEvents": [{"name":"m","ph":"X","ts":1,"dur":-2,"pid":1,"tid":0,"args":{"k":"kernel"}}]}`,
		"missing kind":  `{"traceEvents": [{"name":"m","ph":"i","ts":1,"pid":1,"tid":0}]}`,
		"unknown kind":  `{"traceEvents": [{"name":"m","ph":"i","ts":1,"pid":1,"tid":0,"args":{"k":"warp-drive"}}]}`,
		"only metadata": `{"traceEvents": [{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"deepum"}}]}`,
	}
	for name, in := range cases {
		if _, err := ReadChromeTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		} else {
			var se *SchemaError
			if !errors.As(err, &se) {
				t.Errorf("%s: error %v is not a *SchemaError", name, err)
			}
		}
	}
}
