package obs

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestRecorderAppendsInOrder(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Instant(KindMark, TrackRun, int64(i*100), "m", 0, int64(i), 0)
	}
	ev := r.Events()
	if len(ev) != 5 || r.Len() != 5 {
		t.Fatalf("got %d events, Len %d, want 5", len(ev), r.Len())
	}
	for i, e := range ev {
		if e.TS != int64(i*100) || e.Arg != int64(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", r.Dropped())
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Instant(KindMark, TrackRun, int64(i), "m", 0, int64(i), 0)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	// Oldest-first: the last 4 recorded, in recording order.
	for i, e := range ev {
		if want := int64(6 + i); e.Arg != want {
			t.Fatalf("event %d: Arg = %d, want %d", i, e.Arg, want)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestRecorderSpan(t *testing.T) {
	r := NewRecorder(4)
	r.Span(KindKernel, TrackGPU, 1000, 4000, "conv1", 7, 2, 3)
	ev := r.Events()
	want := Event{TS: 1000, Dur: 3000, Kind: KindKernel, Track: TrackGPU,
		Name: "conv1", Block: 7, Arg: 2, Arg2: 3}
	if len(ev) != 1 || !reflect.DeepEqual(ev[0], want) {
		t.Fatalf("got %+v, want %+v", ev, want)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Instant(KindMark, TrackPipeline, int64(i), "w", int64(g), int64(i), 0)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Len() + int(r.Dropped()); got != 800 {
		t.Fatalf("retained+dropped = %d, want 800", got)
	}
}

func TestKindAndTrackNamesRoundTrip(t *testing.T) {
	for k := KindIteration; k <= KindMark; k++ {
		got, ok := kindByName(k.String())
		if !ok || got != k {
			t.Fatalf("kindByName(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := kindByName("no-such-kind"); ok {
		t.Fatal("kindByName accepted an unknown name")
	}
	seen := map[string]bool{}
	for tr := Track(0); tr < numTracks; tr++ {
		s := tr.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("track %d has bad or duplicate name %q", tr, s)
		}
		seen[s] = true
	}
}

func TestAnalyze(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 10_000, Kind: KindIteration, Track: TrackRun, Block: 0, Arg: 12},
		{TS: 0, Dur: 4_000, Kind: KindKernel, Track: TrackGPU, Name: "conv1"},
		{TS: 500, Dur: 2_000, Kind: KindFaultBatch, Track: TrackFaultHandler, Arg: 96, Arg2: 3},
		{TS: 600, Dur: 1_000, Kind: KindLinkTransfer, Track: TrackLinkH2D, Name: "h2d", Arg: 1 << 20},
		{TS: 1_700, Dur: 500, Kind: KindLinkTransfer, Track: TrackLinkD2H, Name: "d2h", Arg: 1 << 19},
		{TS: 1_700, Kind: KindEvict, Track: TrackFaultHandler, Block: 9, Arg: 1 << 19, Arg2: EvictCritical},
		{TS: 2_000, Kind: KindEvict, Track: TrackDriver, Block: 10, Arg2: EvictInvalidated},
		{TS: 2_100, Kind: KindEvict, Track: TrackDriver, Block: 11, Arg: 1 << 19},
		{TS: 3_000, Kind: KindPrefetchIssue, Track: TrackDriver, Block: 4},
		{TS: 3_100, Dur: 900, Kind: KindPrefetch, Track: TrackDriver, Block: 4, Arg: 1 << 21},
		{TS: 4_200, Dur: 600, Kind: KindPrefetch, Track: TrackDriver, Block: 5, Arg: 1 << 20},
		{TS: 5_000, Kind: KindPrefetchHit, Track: TrackGPU, Block: 4, Arg: 1_000},
		{TS: 5_500, Kind: KindPrefetchHit, Track: TrackGPU, Block: 5, Arg: -200},
		{TS: 6_000, Kind: KindPrefetchWaste, Track: TrackDriver, Block: 6},
		{TS: 6_500, Kind: KindStall, Track: TrackGPU, Block: 5, Arg: 200},
		{TS: 7_000, Kind: KindBreaker, Track: TrackBreaker, Name: "closed->open"},
		{TS: 7_500, Kind: KindQueueDepth, Track: TrackPipeline, Name: "faultq", Arg: 3},
		{TS: 8_000, Kind: KindQueueDepth, Track: TrackPipeline, Name: "faultq", Arg: 7},
	}
	a := Analyze(events)
	if a.SpanNs != 10_000 {
		t.Errorf("SpanNs = %d, want 10000", a.SpanNs)
	}
	if a.Iterations != 1 || a.Kernels != 1 {
		t.Errorf("iterations/kernels = %d/%d, want 1/1", a.Iterations, a.Kernels)
	}
	if a.FaultBatches != 1 || a.FaultPages != 96 || a.FaultBatchNs != 2_000 {
		t.Errorf("fault batch stats = %+v", a)
	}
	if a.LinkBusyH2DNs != 1_000 || a.LinkBusyD2HNs != 500 {
		t.Errorf("link busy = %d/%d", a.LinkBusyH2DNs, a.LinkBusyD2HNs)
	}
	if a.LinkUtilH2DPct != 10 || a.LinkUtilD2HPct != 5 {
		t.Errorf("link util = %v/%v, want 10/5", a.LinkUtilH2DPct, a.LinkUtilD2HPct)
	}
	if a.EvictCritical != 1 || a.EvictBackground != 1 || a.EvictInvalidated != 1 {
		t.Errorf("evictions = %d/%d/%d, want 1/1/1", a.EvictCritical, a.EvictBackground, a.EvictInvalidated)
	}
	if a.PrefetchIssued != 1 || a.PrefetchTransfers != 2 || a.PrefetchHits != 2 || a.PrefetchWasted != 1 {
		t.Errorf("prefetch lifecycle = %+v", a)
	}
	if a.PrefetchLateHits != 1 || a.LeadNsMin != -200 || a.LeadNsMax != 1_000 {
		t.Errorf("lead stats: late=%d min=%d max=%d", a.PrefetchLateHits, a.LeadNsMin, a.LeadNsMax)
	}
	if a.Stalls != 1 || a.StallNs != 200 {
		t.Errorf("stalls = %d/%d ns", a.Stalls, a.StallNs)
	}
	if len(a.BreakerTransitions) != 1 || a.BreakerTransitions[0] != "closed->open" {
		t.Errorf("breaker = %v", a.BreakerTransitions)
	}
	if a.QueueDepthMax["faultq"] != 7 {
		t.Errorf("queue depth max = %d, want 7", a.QueueDepthMax["faultq"])
	}
	if len(a.BatchSizeHist) == 0 {
		t.Fatal("no batch-size histogram")
	}
	last := a.BatchSizeHist[len(a.BatchSizeHist)-1]
	if last.Lo != 64 || last.Hi != 127 || last.Count != 1 {
		t.Errorf("top histogram bucket = %+v, want 64-127 x1", last)
	}
	if err := Check(events); err != nil {
		t.Errorf("Check: %v", err)
	}
	out := a.String()
	for _, want := range []string{"link utilisation", "fault handling", "prefetch", "closed->open", "faultq=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCheckCatchesOverlappingTransfers(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 1_000, Kind: KindLinkTransfer, Track: TrackLinkH2D, Name: "h2d", Arg: 64},
		{TS: 500, Dur: 1_000, Kind: KindLinkTransfer, Track: TrackLinkH2D, Name: "h2d", Arg: 64},
	}
	if err := Check(events); err == nil {
		t.Fatal("Check accepted overlapping transfers on one lane")
	}
}

func TestCheckCatchesEmptyFaultBatch(t *testing.T) {
	events := []Event{{TS: 0, Dur: 100, Kind: KindFaultBatch, Track: TrackFaultHandler, Arg: 0}}
	if err := Check(events); err == nil {
		t.Fatal("Check accepted a zero-page fault batch")
	}
}
