package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Analysis is the offline digest of an event trace: the timing-overlap
// questions the aggregate counters cannot answer. Link utilisation tells
// whether the claimed prefetch/demand overlap actually happened; the
// fault-batch histogram shows whether faults arrive in the large batches
// the handler amortizes over (Fig. 3); the prefetch lead-time distribution
// separates prefetches that truly hid latency from those the GPU still
// stalled on; the critical-path eviction count is the direct measure of
// what pre-eviction (§5.1) failed to move off the fault path.
type Analysis struct {
	Events  int
	SpanNs  int64 // first to last event timestamp
	Dropped int64 // ring overwrites reported by the recorder (0 if unknown)

	Iterations int
	Kernels    int64

	// Link occupancy per lane: busy ns, bytes, utilisation percent of the
	// trace span, and transiently failed reservation attempts.
	LinkBusyH2DNs, LinkBusyD2HNs   int64
	LinkBytesH2D, LinkBytesD2H     int64
	LinkUtilH2DPct, LinkUtilD2HPct float64
	FailedTransfers                int64

	// Fault-handling pipeline.
	FaultBatches     int64
	FaultPages       int64
	FaultBatchNs     int64        // total time inside fault-handling cycles
	BatchSizeHist    []HistBucket // pages per batch, power-of-two buckets
	EvictCritical    int64        // synchronous evictions on the fault path
	EvictBackground  int64        // pre-evictions off the critical path
	EvictInvalidated int64        // victims dropped without writeback

	// Prefetch lifecycle.
	PrefetchIssued    int64
	PrefetchTransfers int64
	PrefetchHits      int64
	PrefetchWasted    int64
	PrefetchLateHits  int64 // hits whose lead time was negative (stalled)
	LeadNsMin         int64
	LeadNsP50         int64
	LeadNsP90         int64
	LeadNsMax         int64

	// GPU stalls on in-flight migrations.
	Stalls  int64
	StallNs int64

	// Breaker transitions, in order.
	BreakerTransitions []string

	// Health-controller timeline: degradation-ladder transitions in order
	// ("L0->L1" labels), the highest level reached, the final level, and
	// the per-component peak score (0..1) sampled from the trace.
	HealthTransitions []string
	HealthMaxLevel    int64
	HealthFinalLevel  int64
	HealthScorePeak   map[string]float64

	// QueueDepthMax holds the maximum sampled depth per queue name.
	QueueDepthMax map[string]int64
}

// HistBucket is one bucket of a power-of-two histogram: counts of samples
// in [Lo, Hi].
type HistBucket struct {
	Lo, Hi int64
	Count  int64
}

// Analyze digests an event stream (live from a Recorder or round-tripped
// through ReadChromeTrace).
func Analyze(events []Event) *Analysis {
	a := &Analysis{Events: len(events), QueueDepthMax: map[string]int64{},
		HealthScorePeak: map[string]float64{}}
	if len(events) == 0 {
		return a
	}
	first, last := events[0].TS, events[0].TS
	var batchPages []int64
	var leads []int64
	for _, e := range events {
		if e.TS < first {
			first = e.TS
		}
		if end := e.TS + e.Dur; end > last {
			last = end
		}
		switch e.Kind {
		case KindIteration:
			a.Iterations++
		case KindKernel:
			a.Kernels++
		case KindFaultBatch:
			a.FaultBatches++
			a.FaultPages += e.Arg
			a.FaultBatchNs += e.Dur
			batchPages = append(batchPages, e.Arg)
		case KindEvict:
			switch {
			case e.Arg2&EvictInvalidated != 0:
				a.EvictInvalidated++
			case e.Arg2&EvictCritical != 0:
				a.EvictCritical++
			default:
				a.EvictBackground++
			}
		case KindLinkTransfer:
			if e.Track == TrackLinkH2D {
				a.LinkBusyH2DNs += e.Dur
				a.LinkBytesH2D += e.Arg
			} else {
				a.LinkBusyD2HNs += e.Dur
				a.LinkBytesD2H += e.Arg
			}
			if e.Arg2 != 0 {
				a.FailedTransfers++
			}
		case KindPrefetchIssue:
			a.PrefetchIssued++
		case KindPrefetch:
			a.PrefetchTransfers++
		case KindPrefetchHit:
			a.PrefetchHits++
			if e.Arg < 0 {
				a.PrefetchLateHits++
			}
			leads = append(leads, e.Arg)
		case KindPrefetchWaste:
			a.PrefetchWasted++
		case KindStall:
			a.Stalls++
			a.StallNs += e.Arg
		case KindBreaker:
			a.BreakerTransitions = append(a.BreakerTransitions, e.Name)
		case KindHealth:
			if strings.Contains(e.Name, "->") {
				a.HealthTransitions = append(a.HealthTransitions, e.Name)
				a.HealthFinalLevel = e.Arg
				if e.Arg > a.HealthMaxLevel {
					a.HealthMaxLevel = e.Arg
				}
			} else if s := float64(e.Arg) / 1e6; s > a.HealthScorePeak[e.Name] {
				a.HealthScorePeak[e.Name] = s
			}
		case KindQueueDepth:
			if e.Arg > a.QueueDepthMax[e.Name] {
				a.QueueDepthMax[e.Name] = e.Arg
			}
		}
	}
	a.SpanNs = last - first
	if a.SpanNs > 0 {
		a.LinkUtilH2DPct = 100 * float64(a.LinkBusyH2DNs) / float64(a.SpanNs)
		a.LinkUtilD2HPct = 100 * float64(a.LinkBusyD2HNs) / float64(a.SpanNs)
	}
	a.BatchSizeHist = pow2Hist(batchPages)
	if len(leads) > 0 {
		sort.Slice(leads, func(i, j int) bool { return leads[i] < leads[j] })
		a.LeadNsMin = leads[0]
		a.LeadNsMax = leads[len(leads)-1]
		a.LeadNsP50 = leads[len(leads)/2]
		a.LeadNsP90 = leads[len(leads)*9/10]
	}
	return a
}

// pow2Hist buckets positive samples into power-of-two ranges [2^k, 2^(k+1)-1].
func pow2Hist(samples []int64) []HistBucket {
	if len(samples) == 0 {
		return nil
	}
	counts := map[int]int64{}
	maxB := 0
	for _, s := range samples {
		if s < 1 {
			s = 1
		}
		b := bits.Len64(uint64(s)) - 1
		counts[b]++
		if b > maxB {
			maxB = b
		}
	}
	out := make([]HistBucket, 0, maxB+1)
	for b := 0; b <= maxB; b++ {
		lo := int64(1) << b
		hi := lo*2 - 1
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: counts[b]})
	}
	return out
}

// Check audits trace-level invariants that a well-formed run must satisfy.
// It returns the first violation, or nil. These are the semantic checks on
// top of ReadChromeTrace's syntactic schema validation: per-lane link
// spans must not overlap (each lane is a serialized resource), fault
// batches must fault at least one page, utilisation cannot exceed 100%,
// and prefetch hits cannot outnumber prefetch transfers.
func Check(events []Event) error {
	type laneEnd struct {
		end int64
		set bool
	}
	var lanes [numTracks]laneEnd
	healthLevel := int64(0)
	for i, e := range events {
		if e.Dur < 0 {
			return fmt.Errorf("trace invariant: event %d (%s) has negative duration %d", i, e.Kind, e.Dur)
		}
		switch e.Kind {
		case KindHealth:
			if !strings.Contains(e.Name, "->") {
				break // score sample, not a transition
			}
			// The ladder is graduated: every transition moves exactly one
			// level, inside [L0, L3].
			to := e.Arg
			if to < 0 || to > 3 {
				return fmt.Errorf("trace invariant: health transition %q at %d ns targets level %d outside [0,3]",
					e.Name, e.TS, to)
			}
			if d := to - healthLevel; d != 1 && d != -1 {
				return fmt.Errorf("trace invariant: health transition %q at %d ns jumps from L%d to L%d (must move one level)",
					e.Name, e.TS, healthLevel, to)
			}
			healthLevel = to
		case KindFaultBatch:
			if e.Arg <= 0 {
				return fmt.Errorf("trace invariant: fault batch at %d ns faults %d pages (must be >= 1)", e.TS, e.Arg)
			}
		case KindLinkTransfer:
			if e.Arg <= 0 {
				return fmt.Errorf("trace invariant: link transfer at %d ns moves %d bytes (must be >= 1)", e.TS, e.Arg)
			}
			l := &lanes[e.Track]
			if l.set && e.TS < l.end {
				return fmt.Errorf("trace invariant: overlapping transfers on %s: one starts at %d ns before the previous ends at %d ns",
					e.Track, e.TS, l.end)
			}
			if end := e.TS + e.Dur; !l.set || end > l.end {
				l.end, l.set = end, true
			}
		}
	}
	a := Analyze(events)
	if a.LinkUtilH2DPct > 100.000001 || a.LinkUtilD2HPct > 100.000001 {
		return fmt.Errorf("trace invariant: link utilisation over 100%% (h2d %.2f%%, d2h %.2f%%)",
			a.LinkUtilH2DPct, a.LinkUtilD2HPct)
	}
	if a.PrefetchHits > a.PrefetchTransfers && a.PrefetchTransfers > 0 {
		return fmt.Errorf("trace invariant: %d prefetch hits exceed %d prefetch transfers",
			a.PrefetchHits, a.PrefetchTransfers)
	}
	return nil
}

// String renders the analysis as an aligned human-readable report.
func (a *Analysis) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events spanning %s", a.Events, fmtNs(a.SpanNs))
	if a.Dropped > 0 {
		fmt.Fprintf(&b, " (%d oldest overwritten)", a.Dropped)
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "run: %d iterations, %d kernel launches\n", a.Iterations, a.Kernels)
	fmt.Fprintf(&b, "\nlink utilisation\n")
	fmt.Fprintf(&b, "  h2d  %6.2f%%  busy %-12s %10.2f MiB, %d failed attempts\n",
		a.LinkUtilH2DPct, fmtNs(a.LinkBusyH2DNs), float64(a.LinkBytesH2D)/(1<<20), a.FailedTransfers)
	fmt.Fprintf(&b, "  d2h  %6.2f%%  busy %-12s %10.2f MiB\n",
		a.LinkUtilD2HPct, fmtNs(a.LinkBusyD2HNs), float64(a.LinkBytesD2H)/(1<<20))
	fmt.Fprintf(&b, "\nfault handling: %d batches, %d pages, %s inside the handler\n",
		a.FaultBatches, a.FaultPages, fmtNs(a.FaultBatchNs))
	if len(a.BatchSizeHist) > 0 {
		fmt.Fprintf(&b, "  batch size (pages)  count\n")
		for _, h := range a.BatchSizeHist {
			fmt.Fprintf(&b, "  %6d-%-6d %11d\n", h.Lo, h.Hi, h.Count)
		}
	}
	fmt.Fprintf(&b, "evictions: %d critical-path, %d background, %d invalidated\n",
		a.EvictCritical, a.EvictBackground, a.EvictInvalidated)
	fmt.Fprintf(&b, "\nprefetch: %d issued, %d transferred, %d hits (%d late), %d wasted\n",
		a.PrefetchIssued, a.PrefetchTransfers, a.PrefetchHits, a.PrefetchLateHits, a.PrefetchWasted)
	if a.PrefetchHits > 0 {
		fmt.Fprintf(&b, "  lead time: min %s  p50 %s  p90 %s  max %s\n",
			fmtNs(a.LeadNsMin), fmtNs(a.LeadNsP50), fmtNs(a.LeadNsP90), fmtNs(a.LeadNsMax))
	}
	fmt.Fprintf(&b, "gpu stalls on in-flight migrations: %d for %s\n", a.Stalls, fmtNs(a.StallNs))
	if len(a.BreakerTransitions) > 0 {
		fmt.Fprintf(&b, "breaker: %s\n", strings.Join(a.BreakerTransitions, ", "))
	}
	if len(a.HealthTransitions) > 0 || len(a.HealthScorePeak) > 0 {
		fmt.Fprintf(&b, "health: max L%d, final L%d", a.HealthMaxLevel, a.HealthFinalLevel)
		if len(a.HealthTransitions) > 0 {
			fmt.Fprintf(&b, "; ladder %s", strings.Join(a.HealthTransitions, ", "))
		}
		fmt.Fprintf(&b, "\n")
		if len(a.HealthScorePeak) > 0 {
			comps := make([]string, 0, len(a.HealthScorePeak))
			for c := range a.HealthScorePeak {
				comps = append(comps, c)
			}
			sort.Strings(comps)
			fmt.Fprintf(&b, "  peak scores:")
			for _, c := range comps {
				fmt.Fprintf(&b, " %s=%.2f", c, a.HealthScorePeak[c])
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if len(a.QueueDepthMax) > 0 {
		names := make([]string, 0, len(a.QueueDepthMax))
		for n := range a.QueueDepthMax {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "queue depth maxima:")
		for _, n := range names {
			fmt.Fprintf(&b, " %s=%d", n, a.QueueDepthMax[n])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns int64) string {
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%s%.3fs", neg, float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%s%.3fms", neg, float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%s%.3fus", neg, float64(ns)/1e3)
	}
	return fmt.Sprintf("%s%dns", neg, ns)
}
