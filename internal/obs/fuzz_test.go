package obs

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadChromeTrace feeds arbitrary bytes to the trace reader. The
// contract under fuzzing:
//
//  1. No input may panic the reader or make it allocate unboundedly —
//     hostile ts/dur/arg values (NaN via 1e999, infinities, 1e308,
//     non-integral or overflowing args) must come back as *SchemaError,
//     not as implementation-defined float→int conversions.
//  2. Accept-or-reject is total: an error means no events, success means
//     at least one event (metadata-only files are rejected).
//  3. Accepted traces are canonical: re-writing the parsed events with
//     WriteChromeTrace and re-reading them reproduces the exact same
//     event stream. This is what pins the 2^51 ns precision bound — a
//     looser bound lets the µs round-trip drift by 1 ns near the top.
func FuzzReadChromeTrace(f *testing.F) {
	// A writer-produced trace covering every phase ("M", "X", "i", "C")
	// and every track, plus a health-ladder stream like the soak emits.
	var golden bytes.Buffer
	if err := WriteChromeTrace(&golden, goldenEvents()); err != nil {
		f.Fatalf("write golden: %v", err)
	}
	f.Add(golden.Bytes())
	var health bytes.Buffer
	err := WriteChromeTrace(&health, []Event{
		{TS: 10, Kind: KindHealth, Track: TrackRun, Name: "prefetcher", Arg: 412_000},
		{TS: 20, Kind: KindHealth, Track: TrackRun, Name: "L0->L1", Arg: 1, Arg2: 3},
		{TS: 30, Kind: KindHealth, Track: TrackRun, Name: "L1->L0", Arg2: 1},
	})
	if err != nil {
		f.Fatalf("write health: %v", err)
	}
	f.Add(health.Bytes())

	// Structurally broken inputs.
	f.Add([]byte{})
	f.Add([]byte("{}"))
	f.Add([]byte(`{"traceEvents": []}`))
	f.Add(golden.Bytes()[:golden.Len()/2]) // truncated mid-array
	flipped := append([]byte(nil), golden.Bytes()...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)

	// Hostile but well-formed JSON: values the schema checks must catch
	// before they reach a float→int conversion.
	hostile := []string{
		// ts far past the precision bound.
		`{"traceEvents":[{"name":"m","ph":"i","ts":1e308,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		// ts just over the bound (2^51 ns = 2251799813685.248 µs).
		`{"traceEvents":[{"name":"m","ph":"i","ts":2251799813686,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		// Negative and non-finite durations.
		`{"traceEvents":[{"name":"k","ph":"X","ts":1,"dur":-5,"pid":1,"tid":1,"args":{"k":"kernel"}}]}`,
		`{"traceEvents":[{"name":"k","ph":"X","ts":1,"dur":1e999,"pid":1,"tid":1,"args":{"k":"kernel"}}]}`,
		// Args outside the exact-integer range, and fractional args.
		`{"traceEvents":[{"name":"k","ph":"i","ts":1,"pid":1,"tid":1,"args":{"k":"kernel","a":1e300}}]}`,
		`{"traceEvents":[{"name":"k","ph":"i","ts":1,"pid":1,"tid":1,"args":{"k":"kernel","block":0.5}}]}`,
		// Counter kind hiding under a complete event (dur would be lost
		// on re-write) and the converse.
		`{"traceEvents":[{"name":"q","ph":"X","ts":1,"dur":2,"pid":1,"tid":5,"args":{"k":"queue-depth","value":3}}]}`,
		`{"traceEvents":[{"name":"k","ph":"C","ts":1,"pid":1,"tid":1,"args":{"k":"kernel"}}]}`,
		// Valid shape, sub-ns fractional timestamp (rounds, must stay
		// canonical on re-read).
		`{"traceEvents":[{"name":"m","ph":"i","ts":0.0004,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
		// Timestamp right at the precision bound.
		`{"traceEvents":[{"name":"m","ph":"i","ts":2251799813685.248,"pid":1,"tid":0,"args":{"k":"mark"}}]}`,
	}
	for _, h := range hostile {
		f.Add([]byte(h))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // cap decode cost; a 1 MiB trace already covers the schema
		}
		events, err := ReadChromeTrace(bytes.NewReader(data))
		if err != nil {
			if events != nil {
				t.Fatalf("error %v but returned %d events", err, len(events))
			}
			return
		}
		if len(events) == 0 {
			t.Fatal("accepted a trace with zero events")
		}

		// Accepted traces must be canonical under one more write/read.
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, events); err != nil {
			t.Fatalf("re-write of accepted trace failed: %v", err)
		}
		again, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-written trace failed: %v\ntrace: %s", err, buf.Bytes())
		}
		if !reflect.DeepEqual(events, again) {
			t.Fatalf("round trip diverged:\n first: %+v\nsecond: %+v", events, again)
		}
	})
}
