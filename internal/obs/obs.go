// Package obs is the structured event-tracing layer of the UM substrate:
// typed, timestamped events covering the fault-handling pipeline, the
// prefetch lifecycle, evictions, link occupancy, circuit-breaker
// transitions, and queue depths, accumulated in a lock-light bounded ring
// buffer and exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) or as an offline analysis report.
//
// The package is deliberately dependency-free: timestamps are plain int64
// nanoseconds so the same event stream carries the engine's virtual
// (simulated) time and the pipeline's wall-clock time without importing
// either clock. Attachment is designed to be zero-cost when disabled —
// every emit site in the substrate guards on a nil *Recorder, so a run
// without tracing pays one predictable branch per site and allocates
// nothing.
package obs

import "sync"

// Kind discriminates trace events. The taxonomy follows the paper's
// anatomy of a UM training iteration: kernel launches on the GPU, fault
// batches through the nine-step handling pipeline (Fig. 3), the prefetch
// lifecycle issue -> transfer -> hit/waste (§4), evictions on and off the
// critical path (§5.1), link occupancy (§3.1), and the run-level
// supervision machinery layered on top.
type Kind uint8

// Event kinds. The comment on each kind documents the payload convention
// (which fields of Event carry what).
const (
	// KindNone is the zero value; never recorded.
	KindNone Kind = iota
	// KindIteration is a per-training-iteration span. Block = iteration
	// index, Arg = page faults in the iteration, Arg2 = 1 for warmup.
	KindIteration
	// KindKernel is one kernel's span from launch to completion (faulting
	// walk plus compute). Name = kernel name.
	KindKernel
	// KindFaultBatch is one fault-handling cycle (steps 1-9 of the
	// pipeline) from interrupt to replay. Arg = distinct faulted pages,
	// Arg2 = UM blocks in the batch.
	KindFaultBatch
	// KindEvict is one victim leaving device memory. Block = victim,
	// Arg = bytes written back (0 when invalidated), Arg2 = flag bits
	// (EvictCritical, EvictInvalidated).
	KindEvict
	// KindLinkTransfer is one link reservation. Name = "h2d" or "d2h",
	// Arg = bytes, Arg2 = 1 when the transfer transiently failed.
	KindLinkTransfer
	// KindPrefetchIssue marks the driver enqueueing a prefetch command.
	// Block = predicted UM block.
	KindPrefetchIssue
	// KindPrefetch is a prefetch migration span from transfer start to the
	// block becoming ready on the device. Block = block, Arg = bytes.
	KindPrefetch
	// KindPrefetchHit marks a kernel access served by an earlier prefetch.
	// Block = block, Arg = lead time in ns (ready-before-access; negative
	// means the access had to stall on the in-flight transfer).
	KindPrefetchHit
	// KindPrefetchWaste marks a prefetched block evicted before any access
	// used it. Block = block.
	KindPrefetchWaste
	// KindStall marks the GPU waiting on an in-flight migration.
	// Block = block, Arg = stall ns.
	KindStall
	// KindBreaker is a prefetch circuit-breaker transition. Name =
	// "from->to" state names.
	KindBreaker
	// KindQueueDepth is a counter sample. Name = queue name, Arg = depth.
	KindQueueDepth
	// KindMark is a generic instant annotation. Name = label.
	KindMark
	// KindHealth is a health-controller sample. Ladder transitions carry
	// Name = "L<from>-><L<to>" with Arg = new level and Arg2 = the driving
	// component; score samples carry Name = component name with Arg = score
	// in parts-per-million and Arg2 = the component.
	KindHealth
	// KindShard is a federation shard-lifecycle event. Name = the action
	// ("kill", "handoff", "adopt", "rebalance"), Block = the shard ordinal
	// the action concerns, Arg = the action's count payload (runs adopted,
	// live shards after a rebalance), Arg2 = the peer shard ordinal for
	// "adopt" (the successor that took the runs).
	KindShard
	// KindPressure is a memory-arbiter grant event under oversubscription.
	// Name = the arbiter action ("grant", "release", "revoke", "restore",
	// "suspend"), Block = the run ID the action concerns, Arg = the grant
	// bytes the action moved, Arg2 = the smoothed pressure in
	// parts-per-million.
	KindPressure
)

// Evict flag bits for KindEvict.Arg2.
const (
	// EvictCritical marks a synchronous eviction on the fault-handling
	// critical path (the GPU is stalled behind the writeback).
	EvictCritical int64 = 1 << iota
	// EvictInvalidated marks a victim dropped without writeback (its PT
	// block was inactive).
	EvictInvalidated
)

func (k Kind) String() string {
	switch k {
	case KindIteration:
		return "iteration"
	case KindKernel:
		return "kernel"
	case KindFaultBatch:
		return "fault-batch"
	case KindEvict:
		return "evict"
	case KindLinkTransfer:
		return "link-transfer"
	case KindPrefetchIssue:
		return "prefetch-issue"
	case KindPrefetch:
		return "prefetch"
	case KindPrefetchHit:
		return "prefetch-hit"
	case KindPrefetchWaste:
		return "prefetch-waste"
	case KindStall:
		return "stall"
	case KindBreaker:
		return "breaker"
	case KindQueueDepth:
		return "queue-depth"
	case KindMark:
		return "mark"
	case KindHealth:
		return "health"
	case KindShard:
		return "shard"
	case KindPressure:
		return "pressure"
	}
	return "none"
}

// kindByName is the inverse of Kind.String, used by the trace reader.
func kindByName(s string) (Kind, bool) {
	for k := KindIteration; k <= KindPressure; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return KindNone, false
}

// Track assigns an event to a logical timeline (a Perfetto thread row).
type Track uint8

// Tracks. The numbering is stable: it is the tid of the exported Chrome
// trace events, so reordering would silently re-label existing traces.
const (
	// TrackRun carries iteration spans and run-level marks.
	TrackRun Track = iota
	// TrackGPU carries kernel spans, stalls, and prefetch hits.
	TrackGPU
	// TrackFaultHandler carries fault-batch spans and critical evictions.
	TrackFaultHandler
	// TrackLinkH2D and TrackLinkD2H carry per-lane link occupancy.
	TrackLinkH2D
	TrackLinkD2H
	// TrackDriver carries the prefetch lifecycle and queue depths.
	TrackDriver
	// TrackBreaker carries circuit-breaker transitions.
	TrackBreaker
	// TrackPipeline carries the concurrent pipeline's wall-clock samples.
	TrackPipeline
	// TrackHealth carries degradation-ladder transitions and component
	// score samples.
	TrackHealth
	// TrackShard carries federation shard-lifecycle events (kills,
	// handoffs, adoptions, ring rebalances) on the wall clock.
	TrackShard
	// TrackArbiter carries memory-arbiter grant events (KindPressure) on
	// the wall clock. Appended after TrackShard: tids are stable.
	TrackArbiter
	numTracks
)

func (t Track) String() string {
	switch t {
	case TrackRun:
		return "run"
	case TrackGPU:
		return "gpu"
	case TrackFaultHandler:
		return "fault-handler"
	case TrackLinkH2D:
		return "link-h2d"
	case TrackLinkD2H:
		return "link-d2h"
	case TrackDriver:
		return "driver"
	case TrackBreaker:
		return "breaker"
	case TrackPipeline:
		return "pipeline"
	case TrackHealth:
		return "health"
	case TrackShard:
		return "shard"
	case TrackArbiter:
		return "arbiter"
	}
	return "unknown"
}

// Event is one timestamped occurrence. TS and Dur are nanoseconds on the
// recorder's clock (virtual time for the simulation, wall time for the
// concurrent pipeline); Dur is zero for instants and counter samples.
// The per-kind payload conventions are documented on the Kind constants.
type Event struct {
	TS    int64
	Dur   int64
	Kind  Kind
	Track Track
	Name  string
	Block int64
	Arg   int64
	Arg2  int64
}

// Recorder accumulates events in a bounded ring: beyond the capacity the
// oldest events are overwritten (and counted), so tracing an arbitrarily
// long run uses constant memory. Record is safe for concurrent use; the
// critical section is a few stores (no allocation once the ring is full),
// which keeps the enabled path cheap and the disabled path — a nil
// *Recorder checked at every emit site — free.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	next    int // ring cursor once len(buf) == cap
	dropped int64
}

// DefaultCapacity is the ring size NewRecorder uses for capacity <= 0.
const DefaultCapacity = 1 << 20

// NewRecorder returns a recorder retaining up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity}
}

// Record appends one event. Safe for concurrent use.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == r.cap {
			r.next = 0
		}
		r.dropped++
	}
	r.mu.Unlock()
}

// Span records a [start, end) span of the given kind.
func (r *Recorder) Span(kind Kind, track Track, start, end int64, name string, block, arg, arg2 int64) {
	r.Record(Event{TS: start, Dur: end - start, Kind: kind, Track: track,
		Name: name, Block: block, Arg: arg, Arg2: arg2})
}

// Instant records a zero-duration event.
func (r *Recorder) Instant(kind Kind, track Track, ts int64, name string, block, arg, arg2 int64) {
	r.Record(Event{TS: ts, Kind: kind, Track: track, Name: name, Block: block, Arg: arg, Arg2: arg2})
}

// Counter records a counter sample (exported as a Chrome "C" event).
func (r *Recorder) Counter(track Track, ts int64, name string, value int64) {
	r.Record(Event{TS: ts, Kind: KindQueueDepth, Track: track, Name: name, Arg: value})
}

// Events returns the retained events oldest-first. The returned slice is a
// copy; it is safe to keep across further recording.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) == r.cap {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len returns how many events are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped returns how many old events the ring overwrote.
func (r *Recorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
