package obs

import (
	"strings"
	"testing"
)

// healthTransition builds a ladder-transition event as the health
// controller emits it: Name "Lx->Ly", Arg = destination level.
func healthTransition(ts int64, name string, to int64) Event {
	return Event{TS: ts, Kind: KindHealth, Track: TrackHealth, Name: name, Arg: to}
}

// healthScore builds a score-sample event: Name = component, Arg = score
// scaled by 1e6.
func healthScore(ts int64, comp string, scaled int64) Event {
	return Event{TS: ts, Kind: KindHealth, Track: TrackHealth, Name: comp, Arg: scaled}
}

func TestAnalyzeHealthTimeline(t *testing.T) {
	events := []Event{
		{TS: 0, Dur: 10_000, Kind: KindIteration, Track: TrackRun},
		healthScore(100, "link", 310_000),
		healthTransition(200, "L0->L1", 1),
		healthScore(250, "link", 720_000),
		healthTransition(300, "L1->L2", 2),
		healthScore(400, "prefetcher", 150_000),
		healthTransition(5_000, "L2->L1", 1),
		healthTransition(9_000, "L1->L0", 0),
		healthScore(9_500, "link", 50_000),
	}
	a := Analyze(events)
	wantLadder := []string{"L0->L1", "L1->L2", "L2->L1", "L1->L0"}
	if len(a.HealthTransitions) != len(wantLadder) {
		t.Fatalf("transitions %v, want %v", a.HealthTransitions, wantLadder)
	}
	for i, w := range wantLadder {
		if a.HealthTransitions[i] != w {
			t.Fatalf("transition %d = %q, want %q", i, a.HealthTransitions[i], w)
		}
	}
	if a.HealthMaxLevel != 2 {
		t.Errorf("max level %d, want 2", a.HealthMaxLevel)
	}
	if a.HealthFinalLevel != 0 {
		t.Errorf("final level %d, want 0", a.HealthFinalLevel)
	}
	// Peak score is the per-component maximum, unscaled back to [0,1].
	if got := a.HealthScorePeak["link"]; got != 0.72 {
		t.Errorf("link peak %.3f, want 0.72", got)
	}
	if got := a.HealthScorePeak["prefetcher"]; got != 0.15 {
		t.Errorf("prefetcher peak %.3f, want 0.15", got)
	}

	// The rendered report carries the timeline for deepum-inspect.
	s := a.String()
	if !strings.Contains(s, "health: max L2, final L0") {
		t.Errorf("report missing health summary:\n%s", s)
	}
	if !strings.Contains(s, "ladder L0->L1, L1->L2, L2->L1, L1->L0") {
		t.Errorf("report missing ladder timeline:\n%s", s)
	}
	if !strings.Contains(s, "link=0.72") || !strings.Contains(s, "prefetcher=0.15") {
		t.Errorf("report missing peak scores:\n%s", s)
	}
}

func TestAnalyzeNoHealthEventsNoSection(t *testing.T) {
	a := Analyze([]Event{{TS: 0, Dur: 10_000, Kind: KindIteration, Track: TrackRun}})
	if len(a.HealthTransitions) != 0 || len(a.HealthScorePeak) != 0 {
		t.Fatalf("phantom health data: %+v", a)
	}
	if strings.Contains(a.String(), "health:") {
		t.Errorf("health section rendered without health events:\n%s", a.String())
	}
}

func TestCheckHealthLadderGraduated(t *testing.T) {
	ok := []Event{
		healthScore(50, "link", 700_000), // samples are not transitions
		healthTransition(100, "L0->L1", 1),
		healthTransition(200, "L1->L2", 2),
		healthTransition(300, "L2->L1", 1),
		healthTransition(400, "L1->L0", 0),
	}
	if err := Check(ok); err != nil {
		t.Fatalf("valid ladder rejected: %v", err)
	}

	jump := []Event{healthTransition(100, "L0->L2", 2)}
	if err := Check(jump); err == nil || !strings.Contains(err.Error(), "jumps") {
		t.Fatalf("two-rung jump not caught: %v", err)
	}

	// A descent that skips a rung is just as invalid as an ascent.
	skipDown := []Event{
		healthTransition(100, "L0->L1", 1),
		healthTransition(200, "L1->L2", 2),
		healthTransition(300, "L2->L0", 0),
	}
	if err := Check(skipDown); err == nil || !strings.Contains(err.Error(), "jumps") {
		t.Fatalf("two-rung descent not caught: %v", err)
	}

	outOfRange := []Event{healthTransition(100, "L3->L4", 4)}
	if err := Check(outOfRange); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range level not caught: %v", err)
	}

	repeat := []Event{
		healthTransition(100, "L0->L1", 1),
		healthTransition(300, "L1->L1", 1), // no-op "transition"
	}
	if err := Check(repeat); err == nil || !strings.Contains(err.Error(), "jumps") {
		t.Fatalf("self-transition not caught: %v", err)
	}
}
