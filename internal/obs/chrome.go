package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// The Chrome trace-event exchange format (the JSON flavour Perfetto and
// chrome://tracing load). Every event carries the standard phase/ts/dur/
// pid/tid fields; the deepum-specific payload rides in args so a written
// trace round-trips losslessly through ReadChromeTrace:
//
//	args.k     event kind (Kind.String())
//	args.block UM block ID (omitted when zero)
//	args.a     Arg  (omitted when zero)
//	args.b     Arg2 (omitted when zero)
//
// Timestamps are microseconds (the format's unit) with nanosecond
// precision preserved in the fractional part. Both timestamps and args
// ride through JSON numbers (float64), so the exact round-trip holds for
// timestamps below 2^51 ns (~26 days of simulated time) and arg values
// below 2^53; larger values lose low-order bits. (Args convert directly,
// so they are exact up to 2^53; timestamps pass through a /1e3 then *1e3,
// whose two half-ulp rounding errors stay under the 0.5 ns rounding
// threshold only while ts/1e3 < 2^42 — the 2^51 bound keeps a margin
// under that.) Simulated clocks start at zero and block IDs/arg payloads
// are small, so the bound is not reachable at simulation scale.

// tracePID is the single simulated process all events belong to.
const tracePID = 1

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace serializes events as Chrome trace-event JSON. Events
// are sorted by timestamp (ties keep recording order), so the output
// satisfies the format's monotonicity expectation regardless of how the
// tracks interleaved at emit time.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	out := chromeTrace{DisplayTimeUnit: "ns"}
	out.TraceEvents = make([]chromeEvent, 0, len(sorted)+int(numTracks)+1)

	// Metadata: name the process and the tracks that actually appear.
	used := [numTracks]bool{}
	for _, e := range sorted {
		if e.Track < numTracks {
			used[e.Track] = true
		}
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID, TID: 0,
		Args: map[string]any{"name": "deepum"},
	})
	for t := Track(0); t < numTracks; t++ {
		if !used[t] {
			continue
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: int(t),
			Args: map[string]any{"name": t.String()},
		})
	}

	for _, e := range sorted {
		ce := chromeEvent{
			Name: e.Name,
			TS:   usec(e.TS),
			PID:  tracePID,
			TID:  int(e.Track),
			Args: map[string]any{"k": e.Kind.String()},
		}
		if ce.Name == "" {
			ce.Name = e.Kind.String()
		}
		if e.Block != 0 {
			ce.Args["block"] = e.Block
		}
		if e.Arg != 0 {
			ce.Args["a"] = e.Arg
		}
		if e.Arg2 != 0 {
			ce.Args["b"] = e.Arg2
		}
		switch {
		case e.Kind == KindQueueDepth:
			ce.Ph = "C"
			// Counter events render args as series; keep the sample value
			// under the series name and the kind tag for the reader.
			ce.Args = map[string]any{"k": e.Kind.String(), "value": e.Arg}
		case e.Dur != 0:
			ce.Ph = "X"
			d := usec(e.Dur)
			ce.Dur = &d
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SchemaError reports a malformed trace file: missing required fields,
// unknown phases or kinds, or non-monotonic timestamps.
type SchemaError struct {
	Index int // index into traceEvents (-1 for file-level problems)
	Msg   string
}

func (e *SchemaError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("trace schema: %s", e.Msg)
	}
	return fmt.Sprintf("trace schema: event %d: %s", e.Index, e.Msg)
}

func schemaErr(i int, format string, a ...any) error {
	return &SchemaError{Index: i, Msg: fmt.Sprintf(format, a...)}
}

// ReadChromeTrace parses a trace written by WriteChromeTrace back into
// events, validating the schema on the way: every event must carry
// name/ph/pid/tid, timestamps must be non-negative and monotonically
// non-decreasing, durations non-negative, and phases limited to the
// M/X/i/C set the writer emits. Unknown args.k kinds are rejected — they
// indicate a file this version cannot analyze faithfully.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	var tr chromeTrace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tr); err != nil {
		return nil, &SchemaError{Index: -1, Msg: fmt.Sprintf("not valid trace JSON: %v", err)}
	}
	if len(tr.TraceEvents) == 0 {
		return nil, &SchemaError{Index: -1, Msg: "empty traceEvents array"}
	}
	var events []Event
	lastTS := -1.0
	for i, ce := range tr.TraceEvents {
		if ce.Name == "" {
			return nil, schemaErr(i, "missing name")
		}
		if ce.PID != tracePID {
			return nil, schemaErr(i, "pid = %d, want %d", ce.PID, tracePID)
		}
		if ce.TID < 0 || ce.TID >= int(numTracks) {
			return nil, schemaErr(i, "tid %d out of track range [0,%d)", ce.TID, int(numTracks))
		}
		switch ce.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "i", "C":
		default:
			return nil, schemaErr(i, "unsupported phase %q", ce.Ph)
		}
		if err := checkTimeField(i, "ts", ce.TS); err != nil {
			return nil, err
		}
		if ce.TS < lastTS {
			return nil, schemaErr(i, "ts %v goes backwards (previous %v)", ce.TS, lastTS)
		}
		lastTS = ce.TS
		e := Event{TS: int64(math.Round(ce.TS * 1e3)), Track: Track(ce.TID)}
		if ce.Ph == "X" {
			if ce.Dur == nil {
				return nil, schemaErr(i, "complete event without dur")
			}
			if err := checkTimeField(i, "dur", *ce.Dur); err != nil {
				return nil, err
			}
			e.Dur = int64(math.Round(*ce.Dur * 1e3))
		}
		ks, _ := ce.Args["k"].(string)
		if ks == "" {
			return nil, schemaErr(i, "missing args.k kind tag")
		}
		k, ok := kindByName(ks)
		if !ok {
			return nil, schemaErr(i, "unknown kind %q", ks)
		}
		// Counter samples and the "C" phase imply each other; a mismatch
		// (e.g. a queue-depth sample written as a complete event with a
		// duration) has no faithful in-memory form — the writer would drop
		// the duration on the way back out.
		if (k == KindQueueDepth) != (ce.Ph == "C") {
			return nil, schemaErr(i, "phase %q does not match kind %q", ce.Ph, ks)
		}
		e.Kind = k
		var argErr error
		if k == KindQueueDepth {
			e.Name = ce.Name
			e.Arg, argErr = argInt(ce.Args, "value")
		} else {
			if ce.Name != k.String() {
				e.Name = ce.Name
			}
			if e.Block, argErr = argInt(ce.Args, "block"); argErr == nil {
				if e.Arg, argErr = argInt(ce.Args, "a"); argErr == nil {
					e.Arg2, argErr = argInt(ce.Args, "b")
				}
			}
		}
		if argErr != nil {
			return nil, schemaErr(i, "%v", argErr)
		}
		events = append(events, e)
	}
	if len(events) == 0 {
		return nil, &SchemaError{Index: -1, Msg: "trace holds only metadata events"}
	}
	return events, nil
}

// Precision bounds (see the package comment above): JSON numbers are
// float64, so timestamps/durations are exact only below 2^51 ns and args
// below 2^53. The reader rejects values outside those bounds — together
// with NaN/Inf, which would otherwise sail through the sign checks (every
// comparison against NaN is false) and hit implementation-defined behavior
// in the float-to-int conversion. Inside the bound, read→write→read is a
// fixed point: the rounded ns value survives the µs conversion exactly,
// which the fuzz harness leans on.
const (
	maxExactNs  = float64(int64(1) << 51) // in ns, i.e. µs field * 1e3
	maxExactArg = float64(int64(1) << 53)
)

// checkTimeField validates a µs-denominated ts/dur field: finite,
// non-negative, and inside the exact-round-trip precision bound.
func checkTimeField(i int, name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return schemaErr(i, "%s %v is not finite", name, v)
	}
	if v < 0 {
		return schemaErr(i, "negative %s %v", name, v)
	}
	if v*1e3 > maxExactNs {
		return schemaErr(i, "%s %v exceeds the 2^51 ns precision bound", name, v)
	}
	return nil
}

func argInt(args map[string]any, key string) (int64, error) {
	v, ok := args[key].(float64)
	if !ok {
		return 0, nil
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v > maxExactArg || v < -maxExactArg {
		return 0, fmt.Errorf("args.%s %v outside the exact integer range", key, v)
	}
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("args.%s %v is not an integer", key, v)
	}
	return int64(v), nil
}
