// Package models compiles the nine DNN architectures of the paper's
// evaluation (Table 2) into workload programs: GPT-2 XL/L, BERT Large/Base,
// DLRM, ResNet152/200, DCGAN and MobileNet. The generators reproduce the
// *memory behaviour* of training — tensor sizes, lifetimes, kernel launch
// repetition, and access order — not numerical content. FLOP counts follow
// the architectures so the roofline compute/transfer balance is realistic.
//
// A scale divisor shrinks every tensor (and FLOP count) by the same factor;
// paired with sim.Params.Scale it preserves all footprint-to-capacity ratios
// while letting the full experiment suite run in seconds.
package models

import (
	"fmt"
	"math"

	"deepum/internal/workload"
)

const f32 = 4 // bytes per float32 element

// scaled divides a byte size by the scale, keeping at least one 512-byte
// granule so tiny tensors survive scaling.
func scaled(bytes int64, scale int64) int64 {
	if scale <= 1 {
		return bytes
	}
	s := bytes / scale
	if s < 512 {
		s = 512
	}
	return s
}

// gen carries shared state for a model generator.
type gen struct {
	b     *workload.Builder
	scale int64
	seq   uint64 // argument counter making kernel args unique per site
}

func newGen(name string, batch, scale int64) *gen {
	if scale < 1 {
		scale = 1
	}
	return &gen{b: workload.NewBuilder(name, batch), scale: scale}
}

// tensor declares a tensor with scaled size.
func (g *gen) tensor(name string, bytes int64, kind workload.TensorKind, persistent bool) workload.TensorID {
	return g.b.Tensor(name, scaled(bytes, g.scale), kind, persistent)
}

// launch appends a kernel whose identity is (name, site counter, batch-shape
// args): the same site in every iteration produces the same execution ID,
// as the PyTorch launch stream does.
func (g *gen) launch(name string, flops float64, accesses ...workload.Access) {
	g.seq++
	g.b.Launch(&workload.Kernel{
		Name:     name,
		Args:     []uint64{g.seq},
		FLOPs:    flops / float64(g.scale),
		Accesses: accesses,
	})
}

// r builds a read access.
func r(t workload.TensorID) workload.Access { return workload.Access{Tensor: t} }

// w builds a write access.
func w(t workload.TensorID) workload.Access { return workload.Access{Tensor: t, Write: true} }

// rw builds a read-write access.
func rw(t workload.TensorID) workload.Access { return workload.Access{Tensor: t, Write: true} }

// sparse builds an irregular access touching block fraction f (and page
// fraction pf) of the tensor.
func sparse(t workload.TensorID, f, pf float64, write bool) workload.Access {
	if f > 1 {
		f = 1
	}
	if pf > f || pf <= 0 {
		pf = f
	}
	return workload.Access{Tensor: t, Write: write, Fraction: f, PageFraction: pf, Irregular: true}
}

// adamState declares the persistent training state for a weight tensor:
// gradient plus two Adam moments, all weight-sized, and returns them.
func (g *gen) adamState(name string, weightBytes int64) (wt, gr, m1, m2 workload.TensorID) {
	wt = g.tensor(name+".w", weightBytes, workload.Weight, true)
	gr = g.tensor(name+".g", weightBytes, workload.Gradient, true)
	m1 = g.tensor(name+".m", weightBytes, workload.OptState, true)
	m2 = g.tensor(name+".v", weightBytes, workload.OptState, true)
	return
}

// adamStep appends the optimizer kernel for one parameter group.
func (g *gen) adamStep(name string, wt, gr, m1, m2 workload.TensorID, elems float64) {
	g.launch(name+".adam", 8*elems, rw(wt), r(gr), rw(m1), rw(m2))
}

// touchedFraction returns the expected fraction of a table's UM blocks hit
// by `draws` uniform row draws when the table spans `blocks` blocks:
// 1-(1-1/B)^draws. Used for DLRM's input-dependent embedding lookups.
func touchedFraction(blocks, draws float64) float64 {
	if blocks <= 0 {
		return 1
	}
	f := 1 - math.Exp(-draws/blocks)
	if f > 1 {
		f = 1
	}
	if f <= 0 {
		f = 1e-6
	}
	return f
}

// Spec identifies a model+dataset pair from Table 2 of the paper.
type Spec struct {
	Model   string
	Dataset string
}

// Build constructs the program for a Table 2 model/dataset pair at the given
// batch size and scale divisor. Supported names follow the paper: "gpt2-xl",
// "gpt2-l", "bert-large", "bert-base", "dlrm", "resnet152", "resnet200",
// "dcgan", "mobilenet".
func Build(spec Spec, batch, scale int64) (*workload.Program, error) {
	if batch < 1 {
		return nil, fmt.Errorf("models: batch size %d out of range", batch)
	}
	switch spec.Model {
	case "gpt2-xl":
		return Transformer(GPT2XLConfig(), batch, scale)
	case "gpt2-l":
		return Transformer(GPT2LConfig(), batch, scale)
	case "bert-large":
		cfg := BERTLargeConfig()
		if spec.Dataset == "cola" {
			cfg = BERTLargeCoLAConfig()
		}
		return Transformer(cfg, batch, scale)
	case "bert-base":
		return Transformer(BERTBaseConfig(), batch, scale)
	case "dlrm":
		return DLRM(DLRMConfig(), batch, scale)
	case "resnet152":
		return ResNet(ResNet152Config(), batch, scale)
	case "resnet200":
		cfg := ResNet200Config()
		if spec.Dataset == "cifar10" {
			cfg = ResNet200CIFARConfig()
		}
		return ResNet(cfg, batch, scale)
	case "dcgan":
		return DCGAN(DCGANConfig(), batch, scale)
	case "mobilenet":
		return MobileNet(MobileNetConfig(), batch, scale)
	}
	return nil, fmt.Errorf("models: unknown model %q", spec.Model)
}

// Names returns the supported model names.
func Names() []string {
	return []string{"gpt2-xl", "gpt2-l", "bert-large", "bert-base", "dlrm",
		"resnet152", "resnet200", "dcgan", "mobilenet"}
}
