package models

import (
	"fmt"

	"deepum/internal/workload"
)

// ResNetConfig parameterizes the bottleneck-ResNet generator.
type ResNetConfig struct {
	Name string
	// Blocks is the bottleneck count per stage (e.g. {3,8,36,3} = ResNet152).
	Blocks [4]int
	// Image is the input resolution (224 for ImageNet, 32 for CIFAR).
	Image int64
	// Classes is the classifier width.
	Classes int64
	// ActSave multiplies activation sizes (BN saved inputs, ReLU masks).
	ActSave float64
}

// ResNet152Config is ResNet-152 on ImageNet (PyTorch examples, Table 2).
func ResNet152Config() ResNetConfig {
	return ResNetConfig{Name: "resnet152", Blocks: [4]int{3, 8, 36, 3}, Image: 224, Classes: 1000, ActSave: 2.6}
}

// ResNet200Config is ResNet-200 on ImageNet: {3,24,36,3} bottlenecks.
func ResNet200Config() ResNetConfig {
	return ResNetConfig{Name: "resnet200", Blocks: [4]int{3, 24, 36, 3}, Image: 224, Classes: 1000, ActSave: 2.6}
}

// ResNet200CIFARConfig is ResNet-200 on CIFAR-10 (32x32), the configuration
// of the §6.4 TensorFlow-based comparison.
func ResNet200CIFARConfig() ResNetConfig {
	cfg := ResNet200Config()
	cfg.Name = "resnet200-cifar"
	cfg.Image = 32
	cfg.Classes = 10
	return cfg
}

// stageChannels are the bottleneck output channels per stage.
var stageChannels = [4]int64{256, 512, 1024, 2048}

// ResNet builds the training program of a bottleneck ResNet: stem, four
// stages of bottleneck blocks (each three convolutions fused with BN/ReLU),
// classifier, backward pass and SGD-with-momentum steps.
func ResNet(cfg ResNetConfig, batch, scale int64) (*workload.Program, error) {
	if cfg.Image < 8 {
		return nil, fmt.Errorf("models: invalid resnet config %+v", cfg)
	}
	g := newGen(cfg.Name, batch, scale)
	b := batch
	act := func(n int64) int64 { return int64(float64(n) * cfg.ActSave) }

	// Stem: 7x7/2 conv + pool; spatial /4.
	stemW, stemG, stemM, _ := g.adamState("stem", 64*3*49*f32)
	images := g.tensor("input.images", b*3*cfg.Image*cfg.Image*f32, workload.Input, true)
	spatial := cfg.Image / 4
	stemOut := g.tensor("stem.out", act(b*64*spatial*spatial*f32), workload.Activation, false)

	type blockState struct {
		w, gr, m1     workload.TensorID
		a1, a2, a3    workload.TensorID // conv outputs saved for backward
		hw, mid, cout int64
		flops         float64
	}
	var blocks []blockState
	cin := int64(64)
	for stage := 0; stage < 4; stage++ {
		cout := stageChannels[stage]
		mid := cout / 4
		if stage > 0 {
			spatial /= 2
		}
		for blk := 0; blk < cfg.Blocks[stage]; blk++ {
			name := fmt.Sprintf("s%db%d", stage, blk)
			// Weights: 1x1 cin->mid, 3x3 mid->mid, 1x1 mid->cout (+ projection
			// on the first block of a stage).
			wBytes := (cin*mid + 9*mid*mid + mid*cout) * f32
			if blk == 0 {
				wBytes += cin * cout * f32
			}
			w8, gr, m1, _ := g.adamState(name, wBytes)
			hw := spatial * spatial
			bs := blockState{
				w: w8, gr: gr, m1: m1,
				a1: g.tensor(name+".a1", act(b*mid*hw*f32), workload.Activation, false),
				a2: g.tensor(name+".a2", act(b*mid*hw*f32), workload.Activation, false),
				a3: g.tensor(name+".a3", act(b*cout*hw*f32), workload.Activation, false),
				hw: hw, mid: mid, cout: cout,
				flops: 2 * float64(b*hw) * float64(cin*mid+9*mid*mid+mid*cout),
			}
			blocks = append(blocks, bs)
			cin = cout
		}
	}
	pooled := g.tensor("pooled", b*2048*f32, workload.Activation, false)
	fcW, fcG, fcM, _ := g.adamState("fc", 2048*cfg.Classes*f32)
	logits := g.tensor("logits", b*cfg.Classes*f32, workload.Activation, false)
	dx := make([]workload.TensorID, len(blocks)+1)
	for i := range dx {
		var bytes int64
		if i == 0 {
			bytes = b * 64 * (cfg.Image / 4) * (cfg.Image / 4) * f32
		} else {
			bs := blocks[i-1]
			bytes = b * bs.cout * bs.hw * f32
		}
		dx[i] = g.tensor(fmt.Sprintf("dx%d", i), act(bytes), workload.Activation, false)
	}

	// --- Forward -----------------------------------------------------------
	g.b.Alloc(stemOut)
	g.launch("stem_conv", 2*float64(b)*float64(3*64*49)*float64((cfg.Image/2)*(cfg.Image/2)),
		r(images), r(stemW), w(stemOut))
	prev := stemOut
	for i := range blocks {
		bs := &blocks[i]
		g.b.Alloc(bs.a1)
		g.launch("conv1x1_bn_relu", bs.flops*0.2, r(prev), r(bs.w), w(bs.a1))
		g.b.Alloc(bs.a2)
		g.launch("conv3x3_bn_relu", bs.flops*0.6, r(bs.a1), r(bs.w), w(bs.a2))
		g.b.Alloc(bs.a3)
		g.launch("conv1x1_bn_add", bs.flops*0.2, r(bs.a2), r(bs.w), r(prev), w(bs.a3))
		prev = bs.a3
	}
	g.b.Alloc(pooled)
	g.launch("avgpool", float64(b*2048*49), r(prev), w(pooled))
	g.b.Alloc(logits)
	g.launch("fc_xent", 2*float64(b)*2048*float64(cfg.Classes), r(pooled), r(fcW), w(logits))

	// --- Backward ----------------------------------------------------------
	g.launch("fc_bwd", 4*float64(b)*2048*float64(cfg.Classes), r(logits), r(pooled), r(fcW), rw(fcG), w(pooled))
	g.b.Free(logits)
	g.b.Alloc(dx[len(blocks)])
	g.launch("avgpool_bwd", float64(b*2048*49), r(pooled), w(dx[len(blocks)]))
	g.b.Free(pooled)
	for i := len(blocks) - 1; i >= 0; i-- {
		bs := &blocks[i]
		var prevAct workload.TensorID
		if i == 0 {
			prevAct = stemOut
		} else {
			prevAct = blocks[i-1].a3
		}
		g.b.Alloc(dx[i])
		g.launch("bottleneck_bwd", 2*bs.flops,
			r(dx[i+1]), r(bs.a1), r(bs.a2), r(bs.a3), r(prevAct), r(bs.w), rw(bs.gr), w(dx[i]))
		g.b.Free(dx[i+1])
		g.b.Free(bs.a1)
		g.b.Free(bs.a2)
		g.b.Free(bs.a3)
	}
	g.launch("stem_bwd", 2*2*float64(b)*float64(3*64*49)*float64((cfg.Image/2)*(cfg.Image/2)),
		r(dx[0]), r(images), r(stemW), rw(stemG))
	g.b.Free(dx[0])
	g.b.Free(stemOut)

	// --- Optimizer: SGD with momentum -------------------------------------
	sgd := func(name string, wt, gr, m1 workload.TensorID, elems float64) {
		g.launch(name+".sgd", 4*elems, rw(wt), r(gr), rw(m1))
	}
	sgd("stem", stemW, stemG, stemM, 64*3*49)
	for i, bs := range blocks {
		sgd(fmt.Sprintf("block%d", i), bs.w, bs.gr, bs.m1, bs.flops/float64(b)/2)
	}
	sgd("fc", fcW, fcG, fcM, 2048*float64(cfg.Classes))
	return g.b.Build()
}
