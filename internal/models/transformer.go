package models

import (
	"fmt"

	"deepum/internal/workload"
)

// TransformerConfig parameterizes the GPT-2 and BERT generators.
type TransformerConfig struct {
	Name   string
	Layers int
	Hidden int64 // model dimension d
	Heads  int64
	Seq    int64 // sequence length
	Vocab  int64
	// ActSave multiplies activation tensor sizes to account for the saved
	// intermediates (dropout masks, layernorm statistics, softmax inputs)
	// that real autograd keeps alongside the main activations.
	ActSave float64
}

// GPT2XLConfig is GPT-2 XL (1.5B parameters) on Wikitext: 48 layers, d=1600,
// 25 heads, sequence 1024.
func GPT2XLConfig() TransformerConfig {
	return TransformerConfig{Name: "gpt2-xl", Layers: 48, Hidden: 1600, Heads: 25, Seq: 1024, Vocab: 50257, ActSave: 1.6}
}

// GPT2LConfig is GPT-2 Large (774M parameters): 36 layers, d=1280, 20 heads.
func GPT2LConfig() TransformerConfig {
	return TransformerConfig{Name: "gpt2-l", Layers: 36, Hidden: 1280, Heads: 20, Seq: 1024, Vocab: 50257, ActSave: 1.6}
}

// BERTLargeConfig is BERT Large (340M parameters) on Wikitext: 24 layers,
// d=1024, 16 heads, sequence 512.
func BERTLargeConfig() TransformerConfig {
	return TransformerConfig{Name: "bert-large", Layers: 24, Hidden: 1024, Heads: 16, Seq: 512, Vocab: 30522, ActSave: 1.6}
}

// BERTLargeCoLAConfig is BERT Large fine-tuning on GLUE CoLA, used in the
// §6.4 TensorFlow-based comparison with sequence length 384.
func BERTLargeCoLAConfig() TransformerConfig {
	cfg := BERTLargeConfig()
	cfg.Name = "bert-large-cola"
	cfg.Seq = 384
	return cfg
}

// BERTBaseConfig is BERT Base (110M parameters): 12 layers, d=768, 12 heads.
func BERTBaseConfig() TransformerConfig {
	return TransformerConfig{Name: "bert-base", Layers: 12, Hidden: 768, Heads: 12, Seq: 512, Vocab: 30522, ActSave: 1.6}
}

// Transformer builds the training program of a decoder/encoder transformer:
// embedding, L blocks of self-attention plus MLP, a tied LM head, full
// backward pass, and a per-layer Adam step. Activation tensors live from
// their forward producer to their backward consumer, the lifetime structure
// DeepUM's invalidation optimization exploits.
func Transformer(cfg TransformerConfig, batch, scale int64) (*workload.Program, error) {
	if cfg.Layers < 1 || cfg.Hidden < 1 || cfg.Seq < 1 {
		return nil, fmt.Errorf("models: invalid transformer config %+v", cfg)
	}
	g := newGen(cfg.Name, batch, scale)
	d, S, h, V, b := cfg.Hidden, cfg.Seq, cfg.Heads, cfg.Vocab, batch
	act := func(n int64) int64 { return int64(float64(n) * cfg.ActSave) }

	// Persistent state.
	embW, embG, embM, embV := g.adamState("emb", V*d*f32)
	type layerState struct{ w, gr, m1, m2 workload.TensorID }
	layers := make([]layerState, cfg.Layers)
	for l := range layers {
		wBytes := 12 * d * d * f32 // qkv(3d²) + proj(d²) + mlp(8d²)
		lw, lg, lm, lv := g.adamState(fmt.Sprintf("layer%d", l), wBytes)
		layers[l] = layerState{lw, lg, lm, lv}
	}

	ids := g.tensor("input.ids", b*S*8, workload.Input, true)

	// Per-layer transient activations, declared once, allocated in forward
	// and freed in backward.
	type layerActs struct {
		ln1, qkv, scores, probs, ctx, proj, ln2, fc1, gelu, out workload.TensorID
	}
	acts := make([]layerActs, cfg.Layers)
	for l := range acts {
		p := fmt.Sprintf("l%d.", l)
		acts[l] = layerActs{
			ln1:    g.tensor(p+"ln1", act(b*S*d*f32), workload.Activation, false),
			qkv:    g.tensor(p+"qkv", act(3*b*S*d*f32), workload.Activation, false),
			scores: g.tensor(p+"scores", act(b*h*S*S*f32), workload.Activation, false),
			probs:  g.tensor(p+"probs", act(b*h*S*S*f32), workload.Activation, false),
			ctx:    g.tensor(p+"ctx", act(b*S*d*f32), workload.Activation, false),
			proj:   g.tensor(p+"proj", act(b*S*d*f32), workload.Activation, false),
			ln2:    g.tensor(p+"ln2", act(b*S*d*f32), workload.Activation, false),
			fc1:    g.tensor(p+"fc1", act(4*b*S*d*f32), workload.Activation, false),
			gelu:   g.tensor(p+"gelu", act(4*b*S*d*f32), workload.Activation, false),
			out:    g.tensor(p+"out", act(b*S*d*f32), workload.Activation, false),
		}
	}
	embOut := g.tensor("emb.out", act(b*S*d*f32), workload.Activation, false)
	logits := g.tensor("logits", b*S*V*f32, workload.Activation, false)
	dLogits := g.tensor("dlogits", b*S*V*f32, workload.Activation, false)
	// Backward activation-gradient buffers: one flowing dX reused per layer.
	dx := make([]workload.TensorID, cfg.Layers+1)
	for l := range dx {
		dx[l] = g.tensor(fmt.Sprintf("dx%d", l), act(b*S*d*f32), workload.Activation, false)
	}

	// --- Forward -----------------------------------------------------------
	g.b.Alloc(embOut)
	g.launch("embedding_fwd", float64(b*S*d), r(ids), r(embW), w(embOut))
	prev := embOut
	gemm := func(m, k, n int64) float64 { return 2 * float64(m) * float64(k) * float64(n) }
	for l := 0; l < cfg.Layers; l++ {
		a := acts[l]
		ls := layers[l]
		g.b.Alloc(a.ln1)
		g.launch("layernorm_fwd", float64(8*b*S*d), r(prev), w(a.ln1))
		g.b.Alloc(a.qkv)
		g.launch("qkv_gemm", gemm(b*S, d, 3*d), r(a.ln1), r(ls.w), w(a.qkv))
		g.b.Alloc(a.scores)
		g.launch("attn_scores", gemm(b*h*S, d/h, S), r(a.qkv), w(a.scores))
		g.b.Alloc(a.probs)
		g.launch("softmax_fwd", float64(8*b*h*S*S), r(a.scores), w(a.probs))
		g.b.Alloc(a.ctx)
		g.launch("attn_ctx", gemm(b*h*S, S, d/h), r(a.probs), r(a.qkv), w(a.ctx))
		g.b.Alloc(a.proj)
		g.launch("attn_proj", gemm(b*S, d, d), r(a.ctx), r(ls.w), r(prev), w(a.proj))
		g.b.Alloc(a.ln2)
		g.launch("layernorm2_fwd", float64(8*b*S*d), r(a.proj), w(a.ln2))
		g.b.Alloc(a.fc1)
		g.launch("mlp_fc1", gemm(b*S, d, 4*d), r(a.ln2), r(ls.w), w(a.fc1))
		g.b.Alloc(a.gelu)
		g.launch("gelu_fwd", float64(8*b*S*4*d), r(a.fc1), w(a.gelu))
		g.b.Alloc(a.out)
		g.launch("mlp_fc2", gemm(b*S, 4*d, d), r(a.gelu), r(ls.w), r(a.proj), w(a.out))
		prev = a.out
	}
	g.b.Alloc(logits)
	g.launch("lm_head_fwd", gemm(b*S, d, V), r(prev), r(embW), w(logits))
	g.b.Alloc(dLogits)
	g.launch("softmax_xent", float64(10*b*S*V), r(logits), r(ids), w(dLogits))
	g.b.Free(logits)

	// --- Backward ----------------------------------------------------------
	g.b.Alloc(dx[cfg.Layers])
	g.launch("lm_head_bwd", 2*gemm(b*S, d, V), r(dLogits), r(prev), rw(embG), r(embW), w(dx[cfg.Layers]))
	g.b.Free(dLogits)
	for l := cfg.Layers - 1; l >= 0; l-- {
		a := acts[l]
		ls := layers[l]
		dIn := dx[l]
		dOut := dx[l+1]
		g.b.Alloc(dIn)
		g.launch("mlp_bwd", 2*(gemm(b*S, 4*d, d)+gemm(b*S, d, 4*d)),
			r(dOut), r(a.gelu), r(a.fc1), r(a.ln2), r(ls.w), rw(ls.gr), w(dIn))
		g.b.Free(a.gelu)
		g.b.Free(a.fc1)
		g.b.Free(a.ln2)
		g.b.Free(a.out)
		g.launch("attn_bwd", 2*(gemm(b*S, d, d)+2*gemm(b*h*S, S, d/h)),
			r(dIn), r(a.probs), r(a.scores), r(a.ctx), r(a.qkv), r(ls.w), rw(ls.gr), w(dIn))
		g.b.Free(a.probs)
		g.b.Free(a.scores)
		g.b.Free(a.ctx)
		g.b.Free(a.proj)
		g.launch("qkv_bwd", 2*gemm(b*S, d, 3*d), r(dIn), r(a.qkv), r(a.ln1), r(ls.w), rw(ls.gr), w(dIn))
		g.b.Free(a.qkv)
		g.b.Free(a.ln1)
		g.b.Free(dOut)
	}
	g.launch("embedding_bwd", float64(b*S*d), r(dx[0]), r(ids), rw(embG))
	g.b.Free(dx[0])
	g.b.Free(embOut)

	// --- Optimizer ----------------------------------------------------------
	g.adamStep("emb", embW, embG, embM, embV, float64(V*d))
	for l, ls := range layers {
		g.adamStep(fmt.Sprintf("layer%d", l), ls.w, ls.gr, ls.m1, ls.m2, float64(12*d*d))
	}
	return g.b.Build()
}
