package models

import (
	"testing"

	"deepum/internal/sim"
	"deepum/internal/workload"
)

func TestBuildAllModels(t *testing.T) {
	cases := []struct {
		spec  Spec
		batch int64
	}{
		{Spec{"gpt2-xl", "wikitext"}, 3},
		{Spec{"gpt2-l", "wikitext"}, 3},
		{Spec{"bert-large", "wikitext"}, 14},
		{Spec{"bert-large", "cola"}, 25},
		{Spec{"bert-base", "wikitext"}, 29},
		{Spec{"dlrm", "criteo"}, 96000},
		{Spec{"resnet152", "imagenet"}, 1280},
		{Spec{"resnet200", "imagenet"}, 1024},
		{Spec{"resnet200", "cifar10"}, 4200},
		{Spec{"dcgan", "celeba"}, 1400},
		{Spec{"mobilenet", "cifar100"}, 1200},
	}
	for _, c := range cases {
		p, err := Build(c.spec, c.batch, 16)
		if err != nil {
			t.Fatalf("%v: %v", c.spec, err)
		}
		if p.Kernels() < 10 {
			t.Errorf("%v: only %d kernels per iteration", c.spec, p.Kernels())
		}
		if p.FootprintBytes() <= 0 {
			t.Errorf("%v: non-positive footprint", c.spec)
		}
		if p.TouchedBytes() <= 0 {
			t.Errorf("%v: no bytes touched", c.spec)
		}
	}
}

func TestBuildUnknownModel(t *testing.T) {
	if _, err := Build(Spec{"alexnet", "imagenet"}, 8, 1); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := Build(Spec{"gpt2-xl", "wikitext"}, 0, 1); err == nil {
		t.Fatal("zero batch must error")
	}
}

func TestNamesCoverRegistry(t *testing.T) {
	for _, n := range Names() {
		if _, err := Build(Spec{Model: n}, 2, 64); err != nil {
			t.Fatalf("registry name %q does not build: %v", n, err)
		}
	}
}

// TestFootprintOversubscription checks the calibration that drives every
// experiment's shape: at the paper's evaluated batch sizes, footprints must
// oversubscribe a V100-32GB in roughly the paper's regimes.
func TestFootprintOversubscription(t *testing.T) {
	gpu := float64(32 * sim.GiB)
	cases := []struct {
		spec     Spec
		batch    int64
		min, max float64 // footprint / GPU memory bounds
	}{
		{Spec{"gpt2-xl", "wikitext"}, 3, 1.5, 4.5},
		{Spec{"gpt2-xl", "wikitext"}, 7, 3.0, 8.5},
		{Spec{"gpt2-l", "wikitext"}, 3, 1.05, 2.5},
		{Spec{"bert-large", "wikitext"}, 14, 1.05, 2.0},
		{Spec{"bert-base", "wikitext"}, 29, 0.9, 1.35},
		{Spec{"dlrm", "criteo"}, 96000, 1.5, 3.0},
		{Spec{"resnet152", "imagenet"}, 1280, 6.0, 14.0},
		{Spec{"resnet200", "imagenet"}, 1024, 6.0, 16.0},
	}
	for _, c := range cases {
		p, err := Build(c.spec, c.batch, 1)
		if err != nil {
			t.Fatalf("%v: %v", c.spec, err)
		}
		ratio := float64(p.FootprintBytes()) / gpu
		if ratio < c.min || ratio > c.max {
			t.Errorf("%s b%d: footprint %.1f GiB = %.2fx GPU, want in [%.2f, %.2f]",
				c.spec.Model, c.batch, float64(p.FootprintBytes())/float64(sim.GiB), ratio, c.min, c.max)
		}
	}
}

// TestScalePreservesRatios: scaling model and GPU by the same factor keeps
// the oversubscription ratio within a few percent.
func TestScalePreservesRatios(t *testing.T) {
	full, err := Build(Spec{"bert-large", "wikitext"}, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Build(Spec{"bert-large", "wikitext"}, 16, 8)
	if err != nil {
		t.Fatal(err)
	}
	fullRatio := float64(full.FootprintBytes()) / float64(32*sim.GiB)
	scaledRatio := float64(scaled.FootprintBytes()) / float64(4*sim.GiB)
	if scaledRatio < fullRatio*0.9 || scaledRatio > fullRatio*1.1 {
		t.Fatalf("scaling distorted ratio: full %.3f scaled %.3f", fullRatio, scaledRatio)
	}
}

func TestTransformerStructure(t *testing.T) {
	p, err := Transformer(BERTBaseConfig(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Every transient tensor allocated must be freed (checked by Build), and
	// kernels must repeat exactly across iterations (same launch list).
	if p.Kernels() < BERTBaseConfig().Layers*10 {
		t.Fatalf("kernels = %d, want at least 10 per layer", p.Kernels())
	}
	var weightBytes int64
	for _, tn := range p.Tensors {
		if tn.Kind == workload.Weight {
			weightBytes += tn.Bytes
		}
	}
	// BERT Base: ~110M params x 4B / scale 8 ~ 55MB.
	if weightBytes < 40<<20 || weightBytes > 80<<20 {
		t.Fatalf("scaled weight bytes = %d MiB", weightBytes>>20)
	}
}

func TestDLRMIrregularAccesses(t *testing.T) {
	p, err := DLRM(DLRMConfig(), 96000, 8)
	if err != nil {
		t.Fatal(err)
	}
	irregular := 0
	for _, s := range p.Iteration {
		if s.Kind != workload.StepLaunch {
			continue
		}
		for _, a := range s.Kernel.Accesses {
			if a.Irregular {
				if a.Fraction <= 0 || a.Fraction > 1 {
					t.Fatalf("irregular fraction %f out of range", a.Fraction)
				}
				irregular++
			}
		}
	}
	// 26 lookup + 26 scatter accesses.
	if irregular != 52 {
		t.Fatalf("irregular accesses = %d, want 52", irregular)
	}
}

func TestTouchedFraction(t *testing.T) {
	if f := touchedFraction(0, 100); f != 1 {
		t.Fatalf("zero blocks fraction = %f", f)
	}
	if f := touchedFraction(1000, 1); f > 0.01 {
		t.Fatalf("one draw over 1000 blocks = %f", f)
	}
	if f := touchedFraction(100, 1e9); f != 1 {
		t.Fatalf("saturated fraction = %f", f)
	}
	// Monotone in draws.
	if touchedFraction(100, 50) >= touchedFraction(100, 500) {
		t.Fatal("fraction not monotone in draws")
	}
}

func TestScaledFloor(t *testing.T) {
	if scaled(100, 64) != 512 {
		t.Fatalf("scaled floor broken: %d", scaled(100, 64))
	}
	if scaled(1<<20, 1) != 1<<20 {
		t.Fatal("scale 1 must be identity")
	}
	if scaled(64<<20, 64) != 1<<20 {
		t.Fatal("even scaling broken")
	}
}
