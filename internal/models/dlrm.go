package models

import (
	"fmt"

	"deepum/internal/sim"
	"deepum/internal/workload"
)

// DLRMSpec parameterizes the recommendation-model generator. The Criteo
// Kaggle configuration of MLPerf uses 26 categorical features, each with its
// own embedding table; the tables dominate the memory footprint and the
// lookups are input-dependent — the irregular access pattern for which
// "prefetching strategies of both LMS and DeepUM do not work well" (§6.2).
type DLRMSpec struct {
	Name      string
	Tables    int
	RowsPer   int64 // rows per embedding table
	EmbDim    int64
	DenseIn   int64
	BottomMLP []int64
	TopMLP    []int64
}

// DLRMConfig returns the Criteo Kaggle configuration sized so that the 26
// tables total roughly 60 GiB.
func DLRMConfig() DLRMSpec {
	return DLRMSpec{
		Name:      "dlrm",
		Tables:    26,
		RowsPer:   9_000_000, // 9M rows x 64 dims x 4B = 2.3GiB per table
		EmbDim:    64,
		DenseIn:   13,
		BottomMLP: []int64{512, 256, 64},
		TopMLP:    []int64{512, 256, 1},
	}
}

// DLRM builds a training iteration: per-table irregular embedding lookups,
// bottom MLP over dense features, feature interaction, top MLP, backward
// pass with irregular gradient scatter into the tables, and optimizer steps
// (sparse SGD on tables, Adam on the MLPs).
func DLRM(spec DLRMSpec, batch, scale int64) (*workload.Program, error) {
	if spec.Tables < 1 || spec.RowsPer < 1 {
		return nil, fmt.Errorf("models: invalid dlrm spec %+v", spec)
	}
	g := newGen(spec.Name, batch, scale)
	b := batch

	// Embedding tables: persistent weights only (sparse SGD, no moments —
	// matching the MLPerf reference which uses SGD for embeddings).
	tableBytes := spec.RowsPer * spec.EmbDim * f32
	tables := make([]workload.TensorID, spec.Tables)
	for i := range tables {
		tables[i] = g.tensor(fmt.Sprintf("table%d.w", i), tableBytes, workload.Weight, true)
	}
	// Expected fraction of each table's UM blocks (and pages) touched by b
	// row draws; rows are far smaller than pages, so page coverage is much
	// sparser than block coverage. Draws scale down with the tables so the
	// sparsity — the property that defeats prefetching (§6.2) — is
	// scale-invariant.
	scaledTable := float64(scaled(tableBytes, scale))
	draws := float64(b) / float64(scale)
	blocksPerTable := scaledTable / float64(sim.BlockSize)
	pagesPerTable := scaledTable / float64(sim.PageSize)
	frac := touchedFraction(blocksPerTable, draws)
	pageFrac := touchedFraction(pagesPerTable, draws)

	// Dense MLPs with Adam state.
	type mlpLayer struct {
		w, gr, m1, m2 workload.TensorID
		in, out       int64
	}
	buildMLP := func(name string, in int64, widths []int64) []mlpLayer {
		var ls []mlpLayer
		for i, out := range widths {
			w8, gr, m1, m2 := g.adamState(fmt.Sprintf("%s%d", name, i), in*out*f32)
			ls = append(ls, mlpLayer{w8, gr, m1, m2, in, out})
			in = out
		}
		return ls
	}
	bottom := buildMLP("bot", spec.DenseIn, spec.BottomMLP)
	nInter := int64(spec.Tables+1) * spec.EmbDim
	top := buildMLP("top", nInter, spec.TopMLP)

	dense := g.tensor("input.dense", b*spec.DenseIn*f32, workload.Input, true)
	indices := g.tensor("input.indices", b*int64(spec.Tables)*8, workload.Input, true)

	lookups := make([]workload.TensorID, spec.Tables)
	for i := range lookups {
		lookups[i] = g.tensor(fmt.Sprintf("lookup%d", i), b*spec.EmbDim*f32, workload.Activation, false)
	}
	botActs := make([]workload.TensorID, len(bottom))
	for i, l := range bottom {
		botActs[i] = g.tensor(fmt.Sprintf("bot.act%d", i), b*l.out*f32, workload.Activation, false)
	}
	interact := g.tensor("interact", b*nInter*f32, workload.Activation, false)
	topActs := make([]workload.TensorID, len(top))
	for i, l := range top {
		topActs[i] = g.tensor(fmt.Sprintf("top.act%d", i), b*l.out*f32, workload.Activation, false)
	}
	dInter := g.tensor("dinteract", b*nInter*f32, workload.Activation, false)

	// --- Forward -----------------------------------------------------------
	for i, tbl := range tables {
		g.b.Alloc(lookups[i])
		g.launch("emb_lookup", float64(b*spec.EmbDim),
			sparse(tbl, frac, pageFrac, false), r(indices), w(lookups[i]))
	}
	prev := dense
	for i, l := range bottom {
		g.b.Alloc(botActs[i])
		g.launch("bot_fc_relu", 2*float64(b*l.in*l.out), r(prev), r(l.w), w(botActs[i]))
		prev = botActs[i]
	}
	g.b.Alloc(interact)
	g.launch("interaction", float64(b*nInter*spec.EmbDim), r(prev), w(interact))
	tprev := interact
	for i, l := range top {
		g.b.Alloc(topActs[i])
		g.launch("top_fc", 2*float64(b*l.in*l.out), r(tprev), r(l.w), w(topActs[i]))
		tprev = topActs[i]
	}
	g.launch("bce_loss", float64(8*b), r(tprev), w(tprev))

	// --- Backward ----------------------------------------------------------
	g.b.Alloc(dInter)
	for i := len(top) - 1; i >= 0; i-- {
		l := top[i]
		in := interact
		if i > 0 {
			in = topActs[i-1]
		}
		g.launch("top_fc_bwd", 4*float64(b*l.in*l.out), r(topActs[i]), r(in), r(l.w), rw(l.gr), w(dInter))
		g.b.Free(topActs[i])
	}
	g.launch("interaction_bwd", float64(b*nInter*spec.EmbDim), r(dInter), r(interact), w(dInter))
	g.b.Free(interact)
	for i := len(bottom) - 1; i >= 0; i-- {
		l := bottom[i]
		in := dense
		if i > 0 {
			in = botActs[i-1]
		}
		g.launch("bot_fc_bwd", 4*float64(b*l.in*l.out), r(botActs[i]), r(in), r(l.w), rw(l.gr), w(dInter))
		g.b.Free(botActs[i])
	}
	// Gradient scatter into the tables: irregular writes to the same rows.
	for i, tbl := range tables {
		g.launch("emb_grad_scatter", float64(b*spec.EmbDim),
			r(dInter), r(indices), sparse(tbl, frac, pageFrac, true), r(lookups[i]))
		g.b.Free(lookups[i])
	}
	g.b.Free(dInter)

	// --- Optimizer ----------------------------------------------------------
	// Sparse SGD updates happen inside emb_grad_scatter on real DLRM; the
	// dense MLPs use Adam.
	for i, l := range bottom {
		g.adamStep(fmt.Sprintf("bot%d", i), l.w, l.gr, l.m1, l.m2, float64(l.in*l.out))
	}
	for i, l := range top {
		g.adamStep(fmt.Sprintf("top%d", i), l.w, l.gr, l.m1, l.m2, float64(l.in*l.out))
	}
	return g.b.Build()
}
