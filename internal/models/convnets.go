package models

import (
	"fmt"

	"deepum/internal/workload"
)

// DCGANSpec parameterizes the GAN generator (celebA, 64x64 images).
type DCGANSpec struct {
	Name    string
	Image   int64
	ZDim    int64
	BaseCh  int64
	ActSave float64
}

// DCGANConfig is the PyTorch-examples DCGAN on celebA.
func DCGANConfig() DCGANSpec {
	return DCGANSpec{Name: "dcgan", Image: 64, ZDim: 100, BaseCh: 64, ActSave: 2.0}
}

// DCGAN builds one GAN training iteration: discriminator forward on real
// images, generator forward, discriminator forward on fakes, both backward
// passes and Adam steps — the launch pattern alternates between the two
// networks, giving the correlation tables two interleaved kernel streams.
func DCGAN(spec DCGANSpec, batch, scale int64) (*workload.Program, error) {
	if spec.Image < 16 {
		return nil, fmt.Errorf("models: invalid dcgan spec %+v", spec)
	}
	g := newGen(spec.Name, batch, scale)
	b := batch
	act := func(n int64) int64 { return int64(float64(n) * spec.ActSave) }

	// Discriminator: 4 strided convs 64->4 spatial, channels C..8C.
	// Generator: mirror with transposed convs.
	type convLayer struct {
		w, gr, m1, m2 workload.TensorID
		cin, cout, hw int64
		flops         float64
	}
	mkNet := func(name string, gen bool) ([]convLayer, []workload.TensorID) {
		var layers []convLayer
		var outs []workload.TensorID
		spatial := spec.Image / 2
		cin := int64(3)
		cout := spec.BaseCh
		if gen {
			spatial = 4
			cin = spec.ZDim
			cout = spec.BaseCh * 8
		}
		for i := 0; i < 4; i++ {
			wBytes := cin * cout * 16 * f32 // 4x4 kernels
			w8, gr, m1, m2 := g.adamState(fmt.Sprintf("%s.conv%d", name, i), wBytes)
			hw := spatial * spatial
			layers = append(layers, convLayer{w8, gr, m1, m2, cin, cout, hw,
				2 * float64(b*hw) * float64(cin*cout*16)})
			outs = append(outs, g.tensor(fmt.Sprintf("%s.act%d", name, i),
				act(b*cout*hw*f32), workload.Activation, false))
			cin = cout
			if gen {
				spatial *= 2
				cout /= 2
			} else {
				spatial /= 2
				cout *= 2
			}
		}
		return layers, outs
	}
	dLayers, dActs := mkNet("disc", false)
	gLayers, gActs := mkNet("gen", true)

	real := g.tensor("input.real", b*3*spec.Image*spec.Image*f32, workload.Input, true)
	noise := g.tensor("input.z", b*spec.ZDim*f32, workload.Input, true)
	fake := g.tensor("gen.fake", act(b*3*spec.Image*spec.Image*f32), workload.Activation, false)
	dActsFake := make([]workload.TensorID, len(dLayers))
	for i := range dActsFake {
		dActsFake[i] = g.tensor(fmt.Sprintf("disc.fakeact%d", i),
			act(b*dLayers[i].cout*dLayers[i].hw*f32), workload.Activation, false)
	}

	fwd := func(name string, layers []convLayer, outs []workload.TensorID, in workload.TensorID) {
		prev := in
		for i, l := range layers {
			g.b.Alloc(outs[i])
			g.launch(name+"_conv_fwd", l.flops, r(prev), r(l.w), w(outs[i]))
			prev = outs[i]
		}
	}
	bwd := func(name string, layers []convLayer, outs []workload.TensorID, in workload.TensorID, freeActs bool) {
		for i := len(layers) - 1; i >= 0; i-- {
			l := layers[i]
			prev := in
			if i > 0 {
				prev = outs[i-1]
			}
			g.launch(name+"_conv_bwd", 2*l.flops, r(outs[i]), r(prev), r(l.w), rw(l.gr))
			if freeActs {
				g.b.Free(outs[i])
			}
		}
	}

	// D on real, D on fake (after G), D backward twice, G backward.
	fwd("disc_real", dLayers, dActs, real)
	fwd("gen", gLayers, gActs, noise)
	g.b.Alloc(fake)
	g.launch("gen_tanh", float64(8*b*3*spec.Image*spec.Image), r(gActs[len(gActs)-1]), w(fake))
	fwd("disc_fake", dLayers, dActsFake, fake)
	g.launch("d_loss", float64(8*b), r(dActs[len(dActs)-1]), r(dActsFake[len(dActsFake)-1]),
		w(dActs[len(dActs)-1]))
	bwd("disc_real", dLayers, dActs, real, true)
	bwd("disc_fake", dLayers, dActsFake, fake, true)
	bwd("gen", gLayers, gActs, noise, true)
	g.b.Free(fake)

	for i, l := range dLayers {
		g.adamStep(fmt.Sprintf("disc%d", i), l.w, l.gr, l.m1, l.m2, float64(l.cin*l.cout*16))
	}
	for i, l := range gLayers {
		g.adamStep(fmt.Sprintf("gen%d", i), l.w, l.gr, l.m1, l.m2, float64(l.cin*l.cout*16))
	}
	return g.b.Build()
}

// MobileNetSpec parameterizes the depthwise-separable generator.
type MobileNetSpec struct {
	Name    string
	Image   int64
	Classes int64
	Width   float64
	ActSave float64
}

// MobileNetConfig is MobileNetV1 on CIFAR-100 (PyTorch examples, Table 2).
func MobileNetConfig() MobileNetSpec {
	return MobileNetSpec{Name: "mobilenet", Image: 32, Classes: 100, Width: 1.0, ActSave: 3.0}
}

// mobileNetPlan is (output channels, stride) per depthwise-separable block.
var mobileNetPlan = [][2]int64{
	{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
	{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
}

// MobileNet builds MobileNetV1 training: stem, 13 depthwise-separable
// blocks (depthwise + pointwise kernels), classifier, backward, SGD.
func MobileNet(spec MobileNetSpec, batch, scale int64) (*workload.Program, error) {
	if spec.Image < 16 {
		return nil, fmt.Errorf("models: invalid mobilenet spec %+v", spec)
	}
	g := newGen(spec.Name, batch, scale)
	b := batch
	act := func(n int64) int64 { return int64(float64(n) * spec.ActSave) }
	ch := func(c int64) int64 { return int64(float64(c) * spec.Width) }

	images := g.tensor("input.images", b*3*spec.Image*spec.Image*f32, workload.Input, true)
	stemW, stemG, stemM, _ := g.adamState("stem", 3*ch(32)*9*f32)
	spatial := spec.Image / 2
	stemOut := g.tensor("stem.out", act(b*ch(32)*spatial*spatial*f32), workload.Activation, false)

	type dsBlock struct {
		dwW, dwG, dwM workload.TensorID
		pwW, pwG, pwM workload.TensorID
		dwOut, pwOut  workload.TensorID
		cin, cout, hw int64
		flops         float64
	}
	var dsBlocks []dsBlock
	cin := ch(32)
	for i, p := range mobileNetPlan {
		cout, stride := ch(p[0]), p[1]
		spatial /= stride
		if spatial < 1 {
			spatial = 1
		}
		hw := spatial * spatial
		name := fmt.Sprintf("ds%d", i)
		dwW, dwG, dwM, _ := g.adamState(name+".dw", cin*9*f32)
		pwW, pwG, pwM, _ := g.adamState(name+".pw", cin*cout*f32)
		dsBlocks = append(dsBlocks, dsBlock{
			dwW: dwW, dwG: dwG, dwM: dwM, pwW: pwW, pwG: pwG, pwM: pwM,
			dwOut: g.tensor(name+".dwout", act(b*cin*hw*f32), workload.Activation, false),
			pwOut: g.tensor(name+".pwout", act(b*cout*hw*f32), workload.Activation, false),
			cin:   cin, cout: cout, hw: hw,
			flops: 2 * float64(b*hw) * float64(cin*9+cin*cout),
		})
		cin = cout
	}
	pooled := g.tensor("pooled", b*cin*f32, workload.Activation, false)
	fcW, fcG, fcM, _ := g.adamState("fc", cin*spec.Classes*f32)
	logits := g.tensor("logits", b*spec.Classes*f32, workload.Activation, false)

	// --- Forward -----------------------------------------------------------
	g.b.Alloc(stemOut)
	g.launch("stem_conv", 2*float64(b)*float64(3*ch(32)*9)*float64(spatial*spatial*4), r(images), r(stemW), w(stemOut))
	prev := stemOut
	for i := range dsBlocks {
		d := &dsBlocks[i]
		g.b.Alloc(d.dwOut)
		g.launch("dw_conv", 2*float64(b*d.hw)*float64(d.cin*9), r(prev), r(d.dwW), w(d.dwOut))
		g.b.Alloc(d.pwOut)
		g.launch("pw_conv", 2*float64(b*d.hw)*float64(d.cin*d.cout), r(d.dwOut), r(d.pwW), w(d.pwOut))
		prev = d.pwOut
	}
	g.b.Alloc(pooled)
	g.launch("avgpool", float64(b*cin), r(prev), w(pooled))
	g.b.Alloc(logits)
	g.launch("fc_xent", 2*float64(b)*float64(cin)*float64(spec.Classes), r(pooled), r(fcW), w(logits))

	// --- Backward ----------------------------------------------------------
	g.launch("fc_bwd", 4*float64(b)*float64(cin)*float64(spec.Classes), r(logits), r(pooled), r(fcW), rw(fcG), w(pooled))
	g.b.Free(logits)
	g.launch("avgpool_bwd", float64(b*cin), r(pooled), w(pooled))
	for i := len(dsBlocks) - 1; i >= 0; i-- {
		d := &dsBlocks[i]
		prevAct := stemOut
		if i > 0 {
			prevAct = dsBlocks[i-1].pwOut
		}
		g.launch("pw_conv_bwd", 4*float64(b*d.hw)*float64(d.cin*d.cout), r(d.pwOut), r(d.dwOut), r(d.pwW), rw(d.pwG))
		g.launch("dw_conv_bwd", 4*float64(b*d.hw)*float64(d.cin*9), r(d.dwOut), r(prevAct), r(d.dwW), rw(d.dwG))
		g.b.Free(d.pwOut)
		g.b.Free(d.dwOut)
	}
	g.launch("stem_bwd", 4*float64(b)*float64(3*ch(32)*9)*float64(spatial*spatial*4), r(stemOut), r(images), r(stemW), rw(stemG))
	g.b.Free(stemOut)
	g.b.Free(pooled)

	// --- Optimizer: SGD with momentum -------------------------------------
	sgd := func(name string, wt, gr, m1 workload.TensorID, elems float64) {
		g.launch(name+".sgd", 4*elems, rw(wt), r(gr), rw(m1))
	}
	sgd("stem", stemW, stemG, stemM, float64(3*ch(32)*9))
	for i, d := range dsBlocks {
		sgd(fmt.Sprintf("ds%d.dw", i), d.dwW, d.dwG, d.dwM, float64(d.cin*9))
		sgd(fmt.Sprintf("ds%d.pw", i), d.pwW, d.pwG, d.pwM, float64(d.cin*d.cout))
	}
	sgd("fc", fcW, fcG, fcM, float64(cin)*float64(spec.Classes))
	return g.b.Build()
}
