package baselines

import (
	"errors"
	"testing"

	"deepum/internal/models"
	"deepum/internal/sim"
	"deepum/internal/workload"
)

func smallParams() sim.Params {
	p := sim.DefaultParams()
	p.GPUMemory = 64 * sim.MiB
	p.HostMemory = 2 * sim.GiB
	return p
}

// convToy builds a small CNN-shaped workload oversubscribing 64 MiB.
func convToy(t *testing.T) *workload.Program {
	t.Helper()
	b := workload.NewBuilder("convtoy", 1)
	w1 := b.Tensor("w1", 8<<20, workload.Weight, true)
	w2 := b.Tensor("w2", 8<<20, workload.Weight, true)
	g1 := b.Tensor("g1", 8<<20, workload.Gradient, true)
	g2 := b.Tensor("g2", 8<<20, workload.Gradient, true)
	in := b.Tensor("in", 4<<20, workload.Input, true)
	a1 := b.Tensor("a1", 20<<20, workload.Activation, false)
	a2 := b.Tensor("a2", 20<<20, workload.Activation, false)

	b.Alloc(a1)
	b.Launch(&workload.Kernel{Name: "conv1_fwd", Args: []uint64{1}, FLOPs: 5e9,
		Accesses: []workload.Access{{Tensor: in}, {Tensor: w1}, {Tensor: a1, Write: true}}})
	b.Alloc(a2)
	b.Launch(&workload.Kernel{Name: "conv2_fwd", Args: []uint64{2}, FLOPs: 5e9,
		Accesses: []workload.Access{{Tensor: a1}, {Tensor: w2}, {Tensor: a2, Write: true}}})
	b.Launch(&workload.Kernel{Name: "conv2_bwd", Args: []uint64{3}, FLOPs: 1e10,
		Accesses: []workload.Access{{Tensor: a2}, {Tensor: a1}, {Tensor: w2}, {Tensor: g2, Write: true}}})
	b.Free(a2)
	b.Launch(&workload.Kernel{Name: "conv1_bwd", Args: []uint64{4}, FLOPs: 1e10,
		Accesses: []workload.Access{{Tensor: a1}, {Tensor: in}, {Tensor: w1}, {Tensor: g1, Write: true}}})
	b.Free(a1)
	b.Launch(&workload.Kernel{Name: "sgd", Args: []uint64{5}, FLOPs: 1e8,
		Accesses: []workload.Access{{Tensor: w1, Write: true}, {Tensor: g1}, {Tensor: w2, Write: true}, {Tensor: g2}}})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runBaseline(t *testing.T, p *workload.Program, pl Planner) *Result {
	t.Helper()
	res, err := Run(Config{Params: smallParams(), Program: p, Planner: pl, Iterations: 4, Warmup: 2})
	if err != nil {
		t.Fatalf("%s: %v", pl.Name(), err)
	}
	return res
}

func TestAllPlannersRunConvNet(t *testing.T) {
	p := convToy(t)
	planners := []Planner{NewLMS(), NewLMSMod(), VDNN{}, AutoTM{}, NewSwapAdvisor(), Capuchin{}, Sentinel{}}
	for _, pl := range planners {
		res := runBaseline(t, p, pl)
		if res.TotalTime <= 0 {
			t.Errorf("%s: no time elapsed", pl.Name())
		}
		if res.SwapIns == 0 {
			t.Errorf("%s: no swap-ins on an oversubscribed device", pl.Name())
		}
		if res.EnergyJoules <= 0 {
			t.Errorf("%s: no energy", pl.Name())
		}
	}
}

func TestVDNNRejectsTransformer(t *testing.T) {
	p, err := models.Build(models.Spec{Model: "bert-base", Dataset: "wikitext"}, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Params: smallParams(), Program: p, Planner: VDNN{}, Iterations: 1})
	if !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("vDNN on BERT: err = %v, want ErrUnsupportedModel", err)
	}
}

func TestLMSNames(t *testing.T) {
	if NewLMS().Name() != "LMS" || NewLMSMod().Name() != "LMS-mod" {
		t.Fatal("LMS names broken")
	}
}

func TestOOMSurfacesWhenUnswappable(t *testing.T) {
	// One kernel needing three 30 MiB tensors at once cannot fit 64 MiB no
	// matter what the planner does.
	b := workload.NewBuilder("big", 1)
	x := b.Tensor("x", 30<<20, workload.Weight, true)
	y := b.Tensor("y", 30<<20, workload.Weight, true)
	z := b.Tensor("z", 30<<20, workload.Weight, true)
	b.Launch(&workload.Kernel{Name: "huge", Args: []uint64{1}, FLOPs: 1e9,
		Accesses: []workload.Access{{Tensor: x}, {Tensor: y}, {Tensor: z, Write: true}}})
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(Config{Params: smallParams(), Program: p, Planner: NewLMS(), Iterations: 1})
	if !errors.Is(err, ErrOOM) {
		t.Fatalf("err = %v, want ErrOOM", err)
	}
}

func TestCapuchinRecomputesCheapTensors(t *testing.T) {
	p := convToy(t)
	plan, err := Capuchin{}.Plan(p, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	res := runBaseline(t, p, Capuchin{})
	// Either recompute decisions exist in the plan or everything was deemed
	// cheaper to swap; in the former case executions must recompute.
	if len(plan.Recompute) > 0 && res.Recomputes == 0 {
		t.Fatalf("plan has %d recompute tensors but none recomputed", len(plan.Recompute))
	}
}

func TestSwapAdvisorDeterministic(t *testing.T) {
	p := convToy(t)
	a := runBaseline(t, p, NewSwapAdvisor())
	b := runBaseline(t, p, NewSwapAdvisor())
	if a.TotalTime != b.TotalTime {
		t.Fatalf("GA with fixed seed nondeterministic: %v vs %v", a.TotalTime, b.TotalTime)
	}
}

func TestBaselinesSlowerThanNoSwap(t *testing.T) {
	// With a big enough GPU, swapping systems should hit near-zero swap
	// traffic after warmup.
	p := convToy(t)
	params := smallParams()
	params.GPUMemory = 1 * sim.GiB
	res, err := Run(Config{Params: params, Program: p, Planner: NewLMS(), Iterations: 3, Warmup: 2})
	if err != nil {
		t.Fatal(err)
	}
	small := runBaseline(t, p, NewLMS())
	if res.IterTime() > small.IterTime() {
		t.Fatalf("bigger GPU slower: %v vs %v", res.IterTime(), small.IterTime())
	}
}

func TestPlanHelpers(t *testing.T) {
	p := convToy(t)
	uses := kernelUses(p)
	// a1 is used by conv1_fwd(0), conv2_fwd(1), conv2_bwd(2), conv1_bwd(3).
	var a1 workload.TensorID = -1
	for _, tn := range p.Tensors {
		if tn.Name == "a1" {
			a1 = tn.ID
		}
	}
	if got := uses[a1]; len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Fatalf("uses(a1) = %v", got)
	}
	ids := sortedTensorsBySize(p)
	for i := 1; i < len(ids); i++ {
		if p.Tensors[ids[i-1]].Bytes < p.Tensors[ids[i]].Bytes {
			t.Fatal("sortedTensorsBySize not descending")
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil program/planner must fail")
	}
}
