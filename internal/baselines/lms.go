package baselines

import (
	"deepum/internal/sim"
	"deepum/internal/workload"
)

// LMS is IBM Large Model Support for PyTorch: fully reactive tensor
// swapping with a one-operation swap-in lookahead obtained by rewiring the
// execution order, and no modification of the framework's caching pool —
// which is why it hits fragmentation OOMs at batch sizes that LMS-mod (and
// DeepUM) still run (§6.2).
type LMS struct {
	// Lookahead is how many kernels ahead swap-ins are issued.
	Lookahead int
	// FlushEvery, when positive, periodically frees cached PT blocks — the
	// LMS-mod variant of §6.2. Zero keeps stock LMS behaviour.
	FlushEvery int
}

// NewLMS returns stock IBM LMS.
func NewLMS() *LMS { return &LMS{Lookahead: 1} }

// NewLMSMod returns LMS-mod: LMS modified to periodically free cached PT
// blocks in the PyTorch memory pool (§6.2), reducing fragmentation OOMs at
// the cost of extra allocation work.
func NewLMSMod() *LMS { return &LMS{Lookahead: 1, FlushEvery: 50} }

// Name identifies the variant.
func (l *LMS) Name() string {
	if l.FlushEvery > 0 {
		return "LMS-mod"
	}
	return "LMS"
}

// Plan returns the reactive schedule: no precomputed swap decisions, only
// the lookahead and the optional periodic flush.
func (l *LMS) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	plan := NewPlan()
	plan.ReactiveLookahead = l.Lookahead
	plan.FlushEvery = l.FlushEvery
	// Tensors freed by the program are dead on release.
	for _, s := range p.Iteration {
		if s.Kind == workload.StepFree {
			plan.Drop[s.Tensor] = true
		}
	}
	return plan, nil
}
