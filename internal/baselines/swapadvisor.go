package baselines

import (
	"math/rand"

	"deepum/internal/sim"
	"deepum/internal/workload"
)

// SwapAdvisor approximates SwapAdvisor (Huang et al., ASPLOS'20): a genetic
// algorithm searches the space of swap decisions. The original evolves
// operator schedules, memory allocation and swap sets jointly; this
// reproduction evolves the swap set and prefetch lead over the fixed
// execution order, evaluating candidates with an analytic overlap model of
// the same duplex link used by the executor.
type SwapAdvisor struct {
	// Population and Generations bound the search; the defaults keep the
	// planner deterministic and fast.
	Population  int
	Generations int
	Seed        int64
}

// NewSwapAdvisor returns the default GA configuration.
func NewSwapAdvisor() *SwapAdvisor {
	return &SwapAdvisor{Population: 16, Generations: 12, Seed: 42}
}

// Name returns "SwapAdvisor".
func (s *SwapAdvisor) Name() string { return "SwapAdvisor" }

type gaCandidate struct {
	swap []bool // per multi-use transient tensor: swap out after first use?
	lead int    // prefetch lead in kernels (1..4)
}

// Plan runs the GA and converts the best candidate into a schedule.
func (s *SwapAdvisor) Plan(p *workload.Program, params sim.Params) (*Plan, error) {
	if s.Population < 2 {
		s.Population = 16
	}
	if s.Generations < 1 {
		s.Generations = 12
	}
	uses := kernelUses(p)
	// Candidate genes: transient multi-use tensors, largest first.
	var genes []workload.TensorID
	for _, id := range sortedTensorsBySize(p) {
		if len(uses[id]) >= 2 {
			genes = append(genes, id)
		}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	pop := make([]gaCandidate, s.Population)
	for i := range pop {
		pop[i] = gaCandidate{swap: make([]bool, len(genes)), lead: 1 + rng.Intn(4)}
		for j := range pop[i].swap {
			pop[i].swap[j] = rng.Intn(2) == 0
		}
	}
	fitness := func(c gaCandidate) float64 { return s.estimate(p, params, genes, uses, c) }
	for gen := 0; gen < s.Generations; gen++ {
		type scored struct {
			c gaCandidate
			f float64
		}
		scoredPop := make([]scored, len(pop))
		for i, c := range pop {
			scoredPop[i] = scored{c, fitness(c)}
		}
		// Tournament selection + single-point crossover + mutation.
		next := make([]gaCandidate, 0, len(pop))
		best := scoredPop[0]
		for _, sc := range scoredPop {
			if sc.f < best.f {
				best = sc
			}
		}
		next = append(next, best.c) // elitism
		for len(next) < len(pop) {
			a := scoredPop[rng.Intn(len(scoredPop))]
			b := scoredPop[rng.Intn(len(scoredPop))]
			if b.f < a.f {
				a = b
			}
			c := scoredPop[rng.Intn(len(scoredPop))]
			d := scoredPop[rng.Intn(len(scoredPop))]
			if d.f < c.f {
				c = d
			}
			child := gaCandidate{swap: make([]bool, len(genes)), lead: a.c.lead}
			cut := 0
			if len(genes) > 0 {
				cut = rng.Intn(len(genes) + 1)
			}
			copy(child.swap[:cut], a.c.swap[:cut])
			copy(child.swap[cut:], c.c.swap[cut:])
			if rng.Intn(4) == 0 && len(genes) > 0 {
				child.swap[rng.Intn(len(genes))] = !child.swap[rng.Intn(len(genes))]
			}
			if rng.Intn(4) == 0 {
				child.lead = 1 + rng.Intn(4)
			}
			next = append(next, child)
		}
		pop = next
	}
	best := pop[0]
	bestF := fitness(best)
	for _, c := range pop[1:] {
		if f := fitness(c); f < bestF {
			best, bestF = c, f
		}
	}
	return s.toPlan(p, genes, uses, best), nil
}

// estimate is the GA fitness: an analytic model of iteration time. Swapped
// tensors free device space but add transfer time that overlaps compute up
// to the prefetch lead; insufficient residual memory is penalized as
// thrashing.
func (s *SwapAdvisor) estimate(p *workload.Program, params sim.Params,
	genes []workload.TensorID, uses map[workload.TensorID][]int, c gaCandidate) float64 {
	var resident int64
	for _, t := range p.Tensors {
		resident += t.Bytes
	}
	var transfer sim.Duration
	var compute sim.Duration
	for _, st := range p.Iteration {
		if st.Kind == workload.StepLaunch {
			var bytes int64
			for _, a := range st.Kernel.Accesses {
				bytes += p.Tensors[a.Tensor].Bytes
			}
			compute += params.KernelTime(st.Kernel.FLOPs, bytes)
		}
	}
	for i, id := range genes {
		if !c.swap[i] {
			continue
		}
		t := p.Tensors[id]
		resident -= t.Bytes
		transfer += 2 * params.TransferTime(t.Bytes) * sim.Duration(len(uses[id])-1)
	}
	// Overlap factor grows with lead: more lead hides more transfer.
	overlap := 0.4 + 0.15*float64(c.lead)
	if overlap > 0.95 {
		overlap = 0.95
	}
	hidden := sim.Duration(float64(transfer) * overlap)
	exposed := transfer - hidden
	cost := float64(compute + exposed)
	if resident > params.GPUMemory*9/10 {
		// Doesn't fit: thrashing penalty proportional to the overflow.
		over := float64(resident-params.GPUMemory*9/10) / float64(params.GPUMemory)
		cost *= 1 + 10*over
	}
	return cost
}

func (s *SwapAdvisor) toPlan(p *workload.Program, genes []workload.TensorID,
	uses map[workload.TensorID][]int, c gaCandidate) *Plan {
	plan := NewPlan()
	for i, id := range genes {
		if !c.swap[i] {
			continue
		}
		ks := uses[id]
		for j, k := range ks {
			if j == len(ks)-1 {
				continue
			}
			plan.ReleaseAfter[k] = append(plan.ReleaseAfter[k], id)
			lead := ks[j+1] - c.lead
			if lead <= k {
				lead = k + 1
			}
			plan.PrefetchAt[lead] = append(plan.PrefetchAt[lead], id)
		}
	}
	for _, st := range p.Iteration {
		if st.Kind == workload.StepFree {
			plan.Drop[st.Tensor] = true
		}
	}
	return plan
}
